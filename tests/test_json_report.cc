/**
 * @file
 * End-to-end tests for the JSON reporting subsystem: the
 * BENCH_<name>.json document written by bench::JsonReport, the
 * machine-level statsJson() document, and the invariant that the
 * abort-reason breakdown sums to the total abort count.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>

#include "../bench/json_report.hh"
#include "workload/update_bench.hh"
#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using workload::SyncMethod;
using workload::UpdateBenchConfig;

/** Read a whole file into a string. */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** A contended update-bench run on the small test machine. */
workload::UpdateBenchResult
contendedRun()
{
    UpdateBenchConfig cfg;
    cfg.cpus = 8;
    cfg.poolSize = 2;
    cfg.varsPerOp = 2;
    cfg.method = SyncMethod::TBegin;
    cfg.iterations = 200;
    cfg.machine = smallConfig(8);
    return workload::runUpdateBench(cfg);
}

TEST(JsonReportPath, DisabledWithoutEnvOrFlag)
{
    unsetenv("ZTX_BENCH_JSON");
    EXPECT_EQ(bench::jsonReportPath("x", 0, nullptr), "");
    bench::JsonReport report("x");
    EXPECT_FALSE(report.enabled());
    EXPECT_TRUE(report.write()); // disabled write is a no-op success
}

TEST(JsonReportPath, EnvVarNamesTheFile)
{
    setenv("ZTX_BENCH_JSON", "/some/dir", 1);
    EXPECT_EQ(bench::jsonReportPath("fig", 0, nullptr),
              "/some/dir/BENCH_fig.json");
    unsetenv("ZTX_BENCH_JSON");
}

TEST(JsonReportPath, FlagBeatsEnvVar)
{
    setenv("ZTX_BENCH_JSON", "/some/dir", 1);
    const char *argv1[] = {"bench", "--json", "/tmp/out.json"};
    EXPECT_EQ(bench::jsonReportPath("fig", 3,
                                    const_cast<char **>(argv1)),
              "/tmp/out.json");
    const char *argv2[] = {"bench", "--json=/tmp/eq.json"};
    EXPECT_EQ(bench::jsonReportPath("fig", 2,
                                    const_cast<char **>(argv2)),
              "/tmp/eq.json");
    unsetenv("ZTX_BENCH_JSON");
}

TEST(JsonReport, WritesSchemaConformingDocument)
{
    const std::string path =
        ::testing::TempDir() + "BENCH_unit.json";
    std::remove(path.c_str());
    const char *argv[] = {"bench", "--json", path.c_str()};
    bench::JsonReport report("unit", 3,
                             const_cast<char **>(argv));
    ASSERT_TRUE(report.enabled());
    report.setMachineConfig(smallConfig(2));
    report.meta()["iterations"] = 7u;

    const auto res = contendedRun();
    report.addSimWork(res.elapsedCycles, res.instructions);
    Json rec = bench::resultJson(res);
    rec["cpus"] = 2u;
    rec["variant"] = "tbegin";
    report.addRecord(std::move(rec));
    ASSERT_TRUE(report.write());

    const auto doc = Json::parse(slurp(path));
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("kind")->str(), "ztx.bench");
    EXPECT_EQ(doc->find("schema_version")->asUint(), 1u);
    EXPECT_EQ(doc->find("bench")->str(), "unit");

    const Json *meta = doc->find("meta");
    ASSERT_NE(meta, nullptr);
    EXPECT_EQ(meta->find("iterations")->asUint(), 7u);
    const Json *machine = meta->find("machine");
    ASSERT_NE(machine, nullptr);
    EXPECT_EQ(machine->find("seed")->asUint(), 12345u);
    EXPECT_EQ(machine->find("topology")
                  ->find("total_cpus")
                  ->asUint(),
              8u);

    const Json *records = doc->find("records");
    ASSERT_NE(records, nullptr);
    ASSERT_EQ(records->size(), 1u);
    const Json &r = records->at(0);
    EXPECT_EQ(r.find("variant")->str(), "tbegin");
    EXPECT_GT(r.find("throughput")->number(), 0.0);
    EXPECT_GT(r.find("sim_cycles")->asUint(), 0u);
    EXPECT_GT(r.find("instructions")->asUint(), 0u);
    ASSERT_NE(r.find("aborts_by_reason"), nullptr);

    const Json *speed = doc->find("sim_speed");
    ASSERT_NE(speed, nullptr);
    EXPECT_GT(speed->find("host_seconds")->number(), 0.0);
    EXPECT_EQ(speed->find("sim_cycles")->asUint(),
              std::uint64_t(res.elapsedCycles));
    EXPECT_EQ(speed->find("instructions")->asUint(),
              res.instructions);
    EXPECT_GT(speed->find("sim_cycles_per_host_second")->number(),
              0.0);
    EXPECT_GT(
        speed->find("instructions_per_host_second")->number(),
        0.0);
    std::remove(path.c_str());
}

TEST(JsonReport, AbortBreakdownSumsToTotalAborts)
{
    const auto res = contendedRun();
    ASSERT_GT(res.txAborts, 0u) << "workload must contend";
    std::uint64_t by_reason = 0;
    for (const auto &[reason, n] : res.abortsByReason) {
        EXPECT_FALSE(reason.empty());
        by_reason += n;
    }
    EXPECT_EQ(by_reason, res.txAborts);

    const Json rec = bench::resultJson(res);
    std::uint64_t json_sum = 0;
    for (const auto &[reason, n] :
         rec.find("aborts_by_reason")->items())
        json_sum += n.asUint();
    EXPECT_EQ(json_sum, res.txAborts);
    EXPECT_EQ(rec.find("aborts")->asUint(), res.txAborts);
}

TEST(MachineStatsJson, CoversAllComponents)
{
    isa::Assembler as;
    as.lhi(5, 0);
    as.lhi(8, 50);
    as.label("loop");
    as.tbegin(0x00);
    as.jnz("skip");
    as.ahi(5, 1);
    as.tend();
    as.label("skip");
    as.brct(8, "loop");
    as.halt();
    const isa::Program p = as.finish();

    sim::Machine m(smallConfig(2));
    m.setProgramAll(&p);
    m.run();

    std::ostringstream os;
    m.dumpStatsJson(os);
    const auto doc = Json::parse(os.str());
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("kind")->str(), "ztx.machine.stats");

    const Json *meta = doc->find("meta");
    ASSERT_NE(meta, nullptr);
    EXPECT_EQ(meta->find("seed")->asUint(), 12345u);
    EXPECT_EQ(meta->find("instantiated_cpus")->asUint(), 2u);
    EXPECT_GT(meta->find("elapsed_cycles")->asUint(), 0u);
    EXPECT_EQ(meta->find("topology")->find("total_cpus")->asUint(),
              8u);
    EXPECT_TRUE(meta->find("tm")->contains("store_cache_entries"));

    for (const char *group : {"machine", "hierarchy", "os"})
        EXPECT_TRUE(doc->contains(group)) << group;
    EXPECT_FALSE(doc->contains("io")); // not enabled

    const Json *cpus = doc->find("cpus");
    ASSERT_NE(cpus, nullptr);
    ASSERT_EQ(cpus->size(), 2u);
    const Json *counters = cpus->at(0).find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_GT(counters->find("instructions")->asUint(), 0u);
    EXPECT_GT(counters->find("tx.commits")->asUint(), 0u);
    // The scheduler's own stats ride along in the machine group.
    EXPECT_GT(doc->find("machine")
                  ->find("counters")
                  ->find("scheduler.steps")
                  ->asUint(),
              0u);
}

} // namespace
