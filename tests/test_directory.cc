/** @file Unit tests for the global coherence directory. */

#include <gtest/gtest.h>

#include "mem/directory.hh"

namespace {

using ztx::Addr;
using ztx::CpuId;
using ztx::invalidCpu;
using ztx::mem::CoherenceDirectory;

constexpr Addr lineA = 0x1000;
constexpr Addr lineB = 0x2000;

TEST(Directory, UnknownLineIsIdle)
{
    CoherenceDirectory d;
    EXPECT_TRUE(d.lookup(lineA).idle());
    EXPECT_FALSE(d.holds(0, lineA));
}

TEST(Directory, ExclusiveOwnership)
{
    CoherenceDirectory d;
    d.setExclusive(lineA, 3);
    EXPECT_EQ(d.lookup(lineA).owner, CpuId(3));
    EXPECT_TRUE(d.holds(3, lineA));
    EXPECT_FALSE(d.holds(2, lineA));
}

TEST(Directory, SharersAccumulate)
{
    CoherenceDirectory d;
    d.addSharer(lineA, 1);
    d.addSharer(lineA, 2);
    EXPECT_TRUE(d.holds(1, lineA));
    EXPECT_TRUE(d.holds(2, lineA));
    EXPECT_EQ(d.lookup(lineA).owner, invalidCpu);
}

TEST(Directory, DemoteOwnerBecomesSharer)
{
    CoherenceDirectory d;
    d.setExclusive(lineA, 5);
    d.demoteOwner(lineA);
    EXPECT_EQ(d.lookup(lineA).owner, invalidCpu);
    EXPECT_TRUE(d.holds(5, lineA));
    d.addSharer(lineA, 6);
    EXPECT_TRUE(d.holds(6, lineA));
}

TEST(Directory, SetExclusiveDropsOldSharers)
{
    CoherenceDirectory d;
    d.addSharer(lineA, 1);
    d.addSharer(lineA, 2);
    d.setExclusive(lineA, 7);
    EXPECT_FALSE(d.holds(1, lineA));
    EXPECT_FALSE(d.holds(2, lineA));
    EXPECT_TRUE(d.holds(7, lineA));
}

TEST(Directory, RemoveOwnerAndSharers)
{
    CoherenceDirectory d;
    d.setExclusive(lineA, 4);
    d.remove(lineA, 4);
    EXPECT_TRUE(d.lookup(lineA).idle());
}

TEST(Directory, RemoveLeavesIdleEntriesUntracked)
{
    // Never-erase contract: remove() leaves the slot in place (the
    // sharded scheduler reads entries concurrently), but idle
    // entries stop counting as tracked lines.
    CoherenceDirectory d;
    d.addSharer(lineA, 0);
    d.addSharer(lineB, 0);
    EXPECT_EQ(d.trackedLines(), 2u);
    d.remove(lineA, 0);
    EXPECT_EQ(d.trackedLines(), 1u);
    EXPECT_TRUE(d.lookup(lineA).idle());
}

TEST(Directory, L3ResidencyMaskTracksChips)
{
    CoherenceDirectory d;
    d.setL3Resident(lineA, 0);
    d.setL3Resident(lineA, 3);
    EXPECT_EQ(d.lookup(lineA).l3Mask, 0b1001u);
    d.clearL3Resident(lineA, 0);
    EXPECT_EQ(d.lookup(lineA).l3Mask, 0b1000u);
    d.clearL3Resident(lineA, 3);
    EXPECT_EQ(d.lookup(lineA).l3Mask, 0u);
    // Lines the mask never saw read as not resident anywhere.
    EXPECT_EQ(d.lookup(lineB).l3Mask, 0u);
}

TEST(Directory, L3MaskSurvivesHolderRemoval)
{
    // The residency mask outlives the holders: an L3 line with no
    // current CPU holder is exactly the case the shard-local fast
    // path resolves in-phase.
    CoherenceDirectory d;
    d.addSharer(lineA, 2);
    d.setL3Resident(lineA, 1);
    d.remove(lineA, 2);
    EXPECT_TRUE(d.lookup(lineA).idle());
    EXPECT_EQ(d.lookup(lineA).l3Mask, 0b10u);
}

TEST(Directory, ConcurrentPhaseMutatesExistingSlots)
{
    // During a parallel phase existing entries may be mutated, only
    // entry *creation* is forbidden (it would rehash the map under
    // concurrent readers).
    CoherenceDirectory d;
    d.addSharer(lineA, 1);
    d.setConcurrentPhase(true);
    d.addSharer(lineA, 2);
    d.remove(lineA, 1);
    d.setConcurrentPhase(false);
    EXPECT_TRUE(d.holds(2, lineA));
    EXPECT_FALSE(d.holds(1, lineA));
}

TEST(Directory, SharersExceptSkipsSelfAndOwner)
{
    CoherenceDirectory d;
    d.addSharer(lineA, 1);
    d.addSharer(lineA, 2);
    d.addSharer(lineA, 3);
    const auto others = d.sharersExcept(lineA, 2);
    EXPECT_EQ(others.size(), 2u);
    EXPECT_EQ(others[0], CpuId(1));
    EXPECT_EQ(others[1], CpuId(3));
}

TEST(Directory, IndependentLines)
{
    CoherenceDirectory d;
    d.setExclusive(lineA, 1);
    d.setExclusive(lineB, 2);
    EXPECT_TRUE(d.holds(1, lineA));
    EXPECT_FALSE(d.holds(1, lineB));
}

} // namespace
