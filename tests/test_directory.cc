/** @file Unit tests for the global coherence directory. */

#include <gtest/gtest.h>

#include "mem/directory.hh"

namespace {

using ztx::Addr;
using ztx::CpuId;
using ztx::invalidCpu;
using ztx::mem::CoherenceDirectory;

constexpr Addr lineA = 0x1000;
constexpr Addr lineB = 0x2000;

TEST(Directory, UnknownLineIsIdle)
{
    CoherenceDirectory d;
    EXPECT_TRUE(d.lookup(lineA).idle());
    EXPECT_FALSE(d.holds(0, lineA));
}

TEST(Directory, ExclusiveOwnership)
{
    CoherenceDirectory d;
    d.setExclusive(lineA, 3);
    EXPECT_EQ(d.lookup(lineA).owner, CpuId(3));
    EXPECT_TRUE(d.holds(3, lineA));
    EXPECT_FALSE(d.holds(2, lineA));
}

TEST(Directory, SharersAccumulate)
{
    CoherenceDirectory d;
    d.addSharer(lineA, 1);
    d.addSharer(lineA, 2);
    EXPECT_TRUE(d.holds(1, lineA));
    EXPECT_TRUE(d.holds(2, lineA));
    EXPECT_EQ(d.lookup(lineA).owner, invalidCpu);
}

TEST(Directory, DemoteOwnerBecomesSharer)
{
    CoherenceDirectory d;
    d.setExclusive(lineA, 5);
    d.demoteOwner(lineA);
    EXPECT_EQ(d.lookup(lineA).owner, invalidCpu);
    EXPECT_TRUE(d.holds(5, lineA));
    d.addSharer(lineA, 6);
    EXPECT_TRUE(d.holds(6, lineA));
}

TEST(Directory, SetExclusiveDropsOldSharers)
{
    CoherenceDirectory d;
    d.addSharer(lineA, 1);
    d.addSharer(lineA, 2);
    d.setExclusive(lineA, 7);
    EXPECT_FALSE(d.holds(1, lineA));
    EXPECT_FALSE(d.holds(2, lineA));
    EXPECT_TRUE(d.holds(7, lineA));
}

TEST(Directory, RemoveOwnerAndSharers)
{
    CoherenceDirectory d;
    d.setExclusive(lineA, 4);
    d.remove(lineA, 4);
    EXPECT_TRUE(d.lookup(lineA).idle());
}

TEST(Directory, RemoveErasesIdleEntries)
{
    CoherenceDirectory d;
    d.addSharer(lineA, 0);
    d.addSharer(lineB, 0);
    EXPECT_EQ(d.trackedLines(), 2u);
    d.remove(lineA, 0);
    EXPECT_EQ(d.trackedLines(), 1u);
}

TEST(Directory, SharersExceptSkipsSelfAndOwner)
{
    CoherenceDirectory d;
    d.addSharer(lineA, 1);
    d.addSharer(lineA, 2);
    d.addSharer(lineA, 3);
    const auto others = d.sharersExcept(lineA, 2);
    EXPECT_EQ(others.size(), 2u);
    EXPECT_EQ(others[0], CpuId(1));
    EXPECT_EQ(others[1], CpuId(3));
}

TEST(Directory, IndependentLines)
{
    CoherenceDirectory d;
    d.setExclusive(lineA, 1);
    d.setExclusive(lineB, 2);
    EXPECT_TRUE(d.holds(1, lineA));
    EXPECT_FALSE(d.holds(1, lineB));
}

} // namespace
