/** @file Unit tests for the global coherence directory. */

#include <cstddef>
#include <cstdint>

#include <gtest/gtest.h>

#include "mem/directory.hh"

namespace {

using ztx::Addr;
using ztx::CpuId;
using ztx::invalidCpu;
using ztx::mem::CoherenceDirectory;

constexpr Addr lineA = 0x1000;
constexpr Addr lineB = 0x2000;

TEST(Directory, UnknownLineIsIdle)
{
    CoherenceDirectory d;
    EXPECT_TRUE(d.lookup(lineA).idle());
    EXPECT_FALSE(d.holds(0, lineA));
}

TEST(Directory, ExclusiveOwnership)
{
    CoherenceDirectory d;
    d.setExclusive(lineA, 3);
    EXPECT_EQ(d.lookup(lineA).owner, CpuId(3));
    EXPECT_TRUE(d.holds(3, lineA));
    EXPECT_FALSE(d.holds(2, lineA));
}

TEST(Directory, SharersAccumulate)
{
    CoherenceDirectory d;
    d.addSharer(lineA, 1);
    d.addSharer(lineA, 2);
    EXPECT_TRUE(d.holds(1, lineA));
    EXPECT_TRUE(d.holds(2, lineA));
    EXPECT_EQ(d.lookup(lineA).owner, invalidCpu);
}

TEST(Directory, DemoteOwnerBecomesSharer)
{
    CoherenceDirectory d;
    d.setExclusive(lineA, 5);
    d.demoteOwner(lineA);
    EXPECT_EQ(d.lookup(lineA).owner, invalidCpu);
    EXPECT_TRUE(d.holds(5, lineA));
    d.addSharer(lineA, 6);
    EXPECT_TRUE(d.holds(6, lineA));
}

TEST(Directory, SetExclusiveDropsOldSharers)
{
    CoherenceDirectory d;
    d.addSharer(lineA, 1);
    d.addSharer(lineA, 2);
    d.setExclusive(lineA, 7);
    EXPECT_FALSE(d.holds(1, lineA));
    EXPECT_FALSE(d.holds(2, lineA));
    EXPECT_TRUE(d.holds(7, lineA));
}

TEST(Directory, RemoveOwnerAndSharers)
{
    CoherenceDirectory d;
    d.setExclusive(lineA, 4);
    d.remove(lineA, 4);
    EXPECT_TRUE(d.lookup(lineA).idle());
}

TEST(Directory, RemoveLeavesIdleEntriesUntracked)
{
    // Never-erase contract: remove() leaves the slot in place (the
    // sharded scheduler reads entries concurrently), but idle
    // entries stop counting as tracked lines.
    CoherenceDirectory d;
    d.addSharer(lineA, 0);
    d.addSharer(lineB, 0);
    EXPECT_EQ(d.trackedLines(), 2u);
    d.remove(lineA, 0);
    EXPECT_EQ(d.trackedLines(), 1u);
    EXPECT_TRUE(d.lookup(lineA).idle());
}

TEST(Directory, L3ResidencyMaskTracksChips)
{
    CoherenceDirectory d;
    d.setL3Resident(lineA, 0);
    d.setL3Resident(lineA, 3);
    EXPECT_EQ(d.lookup(lineA).l3Mask, 0b1001u);
    d.clearL3Resident(lineA, 0);
    EXPECT_EQ(d.lookup(lineA).l3Mask, 0b1000u);
    d.clearL3Resident(lineA, 3);
    EXPECT_EQ(d.lookup(lineA).l3Mask, 0u);
    // Lines the mask never saw read as not resident anywhere.
    EXPECT_EQ(d.lookup(lineB).l3Mask, 0u);
}

TEST(Directory, L3MaskSurvivesHolderRemoval)
{
    // The residency mask outlives the holders: an L3 line with no
    // current CPU holder is exactly the case the shard-local fast
    // path resolves in-phase.
    CoherenceDirectory d;
    d.addSharer(lineA, 2);
    d.setL3Resident(lineA, 1);
    d.remove(lineA, 2);
    EXPECT_TRUE(d.lookup(lineA).idle());
    EXPECT_EQ(d.lookup(lineA).l3Mask, 0b10u);
}

TEST(Directory, ConcurrentPhaseMutatesExistingSlots)
{
    // During a parallel phase existing entries may be mutated, only
    // entry *creation* is forbidden (it would rehash the map under
    // concurrent readers).
    CoherenceDirectory d;
    d.addSharer(lineA, 1);
    d.setConcurrentPhase(true);
    d.addSharer(lineA, 2);
    d.remove(lineA, 1);
    d.setConcurrentPhase(false);
    EXPECT_TRUE(d.holds(2, lineA));
    EXPECT_FALSE(d.holds(1, lineA));
}

TEST(Directory, SharersExceptSkipsSelfAndOwner)
{
    CoherenceDirectory d;
    d.addSharer(lineA, 1);
    d.addSharer(lineA, 2);
    d.addSharer(lineA, 3);
    const auto others = d.sharersExcept(lineA, 2);
    EXPECT_EQ(others.size(), 2u);
    EXPECT_EQ(others[0], CpuId(1));
    EXPECT_EQ(others[1], CpuId(3));
}

TEST(Directory, IndependentLines)
{
    CoherenceDirectory d;
    d.setExclusive(lineA, 1);
    d.setExclusive(lineB, 2);
    EXPECT_TRUE(d.holds(1, lineA));
    EXPECT_FALSE(d.holds(1, lineB));
}

TEST(Directory, RehashMigratesSlotsIntact)
{
    // Push far past the initial capacity so the flat table grows
    // several times; every entry's owner, sharers, and residency
    // mask must survive each slot migration.
    CoherenceDirectory d;
    const std::size_t cap0 = d.capacity();
    constexpr unsigned n = 3000;
    const auto lineOf = [](unsigned i) {
        return Addr(0x10000) + Addr(i) * 0x100;
    };
    for (unsigned i = 0; i < n; ++i) {
        if (i % 3 == 0)
            d.setExclusive(lineOf(i), CpuId(i % 64));
        else
            d.addSharer(lineOf(i), CpuId(i % 64));
        if (i % 2 == 0)
            d.setL3Resident(lineOf(i), i % 8);
    }
    EXPECT_GT(d.capacity(), cap0);
    EXPECT_EQ(d.size(), std::size_t(n)); // never-erase: all keys live
    for (unsigned i = 0; i < n; ++i) {
        const auto e = d.lookup(lineOf(i));
        if (i % 3 == 0)
            EXPECT_EQ(e.owner, CpuId(i % 64)) << i;
        else
            EXPECT_TRUE(e.sharers[i % 64]) << i;
        EXPECT_EQ(e.l3Mask,
                  i % 2 == 0 ? std::uint64_t(1) << (i % 8) : 0u)
            << i;
    }
    // Growth keeps the table under its 3/4 load bound.
    EXPECT_LE(d.size() * 4, d.capacity() * 3);
}

TEST(Directory, ConcurrentPhaseEntryCreationPanics)
{
    // Entry creation rehashes under concurrent readers; the guard
    // must turn a fast-path access that escaped its shard into a
    // deterministic panic, and mutation of existing entries must
    // keep the table size fixed (no hidden insert path).
    CoherenceDirectory d;
    d.addSharer(lineA, 1);
    d.setConcurrentPhase(true);
    const std::size_t sz = d.size();
    d.setExclusive(lineA, 2);
    d.remove(lineA, 2);
    EXPECT_EQ(d.size(), sz);
    EXPECT_DEATH(d.addSharer(lineB, 1), "parallel phase");
    EXPECT_DEATH(d.setExclusive(lineB, 1), "parallel phase");
    EXPECT_DEATH(d.setL3Resident(lineB, 0), "parallel phase");
}

TEST(Directory, ConfigureSizesSharerWords)
{
    // Small machines track sharers in one 64-bit word instead of
    // the compile-time worst case; CPUs beyond the configured count
    // are rejected rather than silently dropped.
    CoherenceDirectory d;
    d.configure(8);
    EXPECT_EQ(d.sharerWords(), 1u);
    d.addSharer(lineA, 7);
    EXPECT_TRUE(d.holds(7, lineA));
    EXPECT_DEATH(d.addSharer(lineB, 64), "cannot track");

    CoherenceDirectory wide;
    wide.configure(1024);
    EXPECT_EQ(wide.sharerWords(), 16u);
    wide.setExclusive(lineA, 1023);
    EXPECT_TRUE(wide.holds(1023, lineA));
    EXPECT_TRUE(wide.lookup(lineA).owner == CpuId(1023));
}

} // namespace
