/**
 * @file
 * Chaos stress gates: the paper's robustness claims under hostile
 * injection mixes. Constrained transactions must complete (eventual
 * success, §II.D/§III.E) and committed state must stay consistent
 * under every mix — including the harshest one combining XI storms,
 * capacity squeezes, and interrupt storms — with the forward-
 * progress watchdog armed the whole time.
 */

#include <gtest/gtest.h>

#include "inject/fault_plan.hh"
#include "workload/hashtable.hh"
#include "workload/list_set.hh"
#include "workload/queue.hh"
#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using namespace ztx::workload;

/** Every fault kind at once, deliberately harsh. */
inject::FaultPlan
harshestMix()
{
    inject::FaultPlan plan;
    plan.xiStormRate = 0.005;
    plan.capacitySqueezeRate = 0.001;
    plan.squeezeDuration = 2'000;
    plan.interruptStormRate = 0.001;
    return plan;
}

/** Watchdog window for the stress runs. */
constexpr Cycles watchdogWindow = 2'000'000;

sim::MachineConfig
chaosMachine(const inject::FaultPlan &plan)
{
    sim::MachineConfig cfg = smallConfig(4);
    cfg.faults = plan;
    cfg.watchdogCycles = watchdogWindow;
    return cfg;
}

TEST(ChaosStress, ConstrainedQueueSurvivesHarshestMix)
{
    // The acceptance gate: constrained transactions complete under
    // XI storms + capacity squeezes + interrupt storms combined,
    // and the queue stays linearizable.
    QueueBenchConfig cfg;
    cfg.cpus = 4;
    cfg.useConstrainedTx = true;
    cfg.iterations = 40;
    cfg.machine = chaosMachine(harshestMix());
    const auto res = runQueueBench(cfg);

    EXPECT_FALSE(res.watchdogFired);
    EXPECT_TRUE(res.oracle.ok) << res.oracle.summary();
    EXPECT_GT(res.txCommits, 0u);
    EXPECT_EQ(res.finalLength,
              4u * cfg.iterations - res.dequeuedNonEmpty);
}

TEST(ChaosStress, ConstrainedQueueSurvivesSpuriousAbortMix)
{
    inject::FaultPlan plan;
    plan.spuriousAbortRate = 0.01;
    QueueBenchConfig cfg;
    cfg.cpus = 4;
    cfg.useConstrainedTx = true;
    cfg.iterations = 40;
    cfg.machine = chaosMachine(plan);
    const auto res = runQueueBench(cfg);

    EXPECT_FALSE(res.watchdogFired);
    EXPECT_TRUE(res.oracle.ok) << res.oracle.summary();
}

TEST(ChaosStress, ElidedListSetStaysConsistentUnderAllFaults)
{
    inject::FaultPlan plan = harshestMix();
    plan.spuriousAbortRate = 0.002;
    plan.delayedXiRate = 0.1;
    plan.xiDelayMax = 200;

    ListSetBenchConfig cfg;
    cfg.cpus = 4;
    cfg.useElision = true;
    cfg.iterations = 40;
    cfg.machine = chaosMachine(plan);
    const auto res = runListSetBench(cfg);

    EXPECT_FALSE(res.watchdogFired);
    EXPECT_TRUE(res.sorted);
    EXPECT_TRUE(res.lengthConsistent);
    EXPECT_TRUE(res.oracle.ok) << res.oracle.summary();
}

TEST(ChaosStress, ElidedHashTableStaysConsistentUnderAllFaults)
{
    inject::FaultPlan plan = harshestMix();
    plan.spuriousAbortRate = 0.002;
    plan.delayedXiRate = 0.1;
    plan.xiDelayMax = 200;

    HashTableBenchConfig cfg;
    cfg.cpus = 4;
    cfg.useElision = true;
    cfg.iterations = 40;
    cfg.machine = chaosMachine(plan);
    const auto res = runHashTableBench(cfg);

    EXPECT_FALSE(res.watchdogFired);
    EXPECT_TRUE(res.oracle.ok) << res.oracle.summary();
}

} // namespace
