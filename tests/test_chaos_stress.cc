/**
 * @file
 * Chaos stress gates: the paper's robustness claims under hostile
 * injection mixes. Constrained transactions must complete (eventual
 * success, §II.D/§III.E) and committed state must stay consistent
 * under every mix — including the harshest one combining XI storms,
 * capacity squeezes, and interrupt storms — with the forward-
 * progress watchdog armed the whole time. Every run records an
 * operation history and the lincheck verdict must come back
 * linearizable: faults may slow operations down but never produce a
 * lost update, duplicate dequeue, or stale read.
 */

#include <gtest/gtest.h>

#include "inject/fault_plan.hh"
#include "workload/hashtable.hh"
#include "workload/list_set.hh"
#include "workload/queue.hh"
#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using namespace ztx::workload;

/** Every fault kind at once, deliberately harsh. */
inject::FaultPlan
harshestMix()
{
    inject::FaultPlan plan;
    plan.xiStormRate = 0.005;
    plan.capacitySqueezeRate = 0.001;
    plan.squeezeDuration = 2'000;
    plan.interruptStormRate = 0.001;
    return plan;
}

/** Watchdog window for the stress runs. */
constexpr Cycles watchdogWindow = 2'000'000;

sim::MachineConfig
chaosMachine(const inject::FaultPlan &plan)
{
    sim::MachineConfig cfg = smallConfig(4);
    cfg.faults = plan;
    cfg.watchdogCycles = watchdogWindow;
    return cfg;
}

TEST(ChaosStress, ConstrainedQueueSurvivesHarshestMix)
{
    // The acceptance gate: constrained transactions complete under
    // XI storms + capacity squeezes + interrupt storms combined,
    // and the queue stays linearizable.
    QueueBenchConfig cfg;
    cfg.cpus = 4;
    cfg.useConstrainedTx = true;
    cfg.iterations = 40;
    cfg.opLog = true;
    cfg.machine = chaosMachine(harshestMix());
    const auto res = runQueueBench(cfg);

    EXPECT_FALSE(res.watchdogFired);
    EXPECT_TRUE(res.oracle.ok) << res.oracle.summary();
    EXPECT_GT(res.txCommits, 0u);
    EXPECT_EQ(res.finalLength,
              4u * cfg.iterations - res.dequeuedNonEmpty);
    ASSERT_TRUE(res.lincheck.checked) << res.lincheck.reason;
    EXPECT_TRUE(res.lincheck.linearizable) << res.lincheck.reason;
    EXPECT_EQ(res.lincheck.numOps, 8u * cfg.iterations);
}

TEST(ChaosStress, ConstrainedQueueSurvivesSpuriousAbortMix)
{
    inject::FaultPlan plan;
    plan.spuriousAbortRate = 0.01;
    QueueBenchConfig cfg;
    cfg.cpus = 4;
    cfg.useConstrainedTx = true;
    cfg.iterations = 40;
    cfg.opLog = true;
    cfg.machine = chaosMachine(plan);
    const auto res = runQueueBench(cfg);

    EXPECT_FALSE(res.watchdogFired);
    EXPECT_TRUE(res.oracle.ok) << res.oracle.summary();
    ASSERT_TRUE(res.lincheck.checked) << res.lincheck.reason;
    EXPECT_TRUE(res.lincheck.linearizable) << res.lincheck.reason;
}

TEST(ChaosStress, ElidedListSetStaysConsistentUnderAllFaults)
{
    inject::FaultPlan plan = harshestMix();
    plan.spuriousAbortRate = 0.002;
    plan.delayedXiRate = 0.1;
    plan.xiDelayMax = 200;

    ListSetBenchConfig cfg;
    cfg.cpus = 4;
    cfg.useElision = true;
    cfg.iterations = 40;
    cfg.opLog = true;
    cfg.machine = chaosMachine(plan);
    const auto res = runListSetBench(cfg);

    EXPECT_FALSE(res.watchdogFired);
    EXPECT_TRUE(res.sorted);
    EXPECT_TRUE(res.lengthConsistent);
    EXPECT_TRUE(res.oracle.ok) << res.oracle.summary();
    ASSERT_TRUE(res.lincheck.checked) << res.lincheck.reason;
    EXPECT_TRUE(res.lincheck.linearizable) << res.lincheck.reason;
    EXPECT_EQ(res.lincheck.numOps, 4u * cfg.iterations);
}

TEST(ChaosStress, ElidedHashTableStaysConsistentUnderAllFaults)
{
    inject::FaultPlan plan = harshestMix();
    plan.spuriousAbortRate = 0.002;
    plan.delayedXiRate = 0.1;
    plan.xiDelayMax = 200;

    HashTableBenchConfig cfg;
    cfg.cpus = 4;
    cfg.useElision = true;
    cfg.iterations = 40;
    cfg.opLog = true;
    cfg.machine = chaosMachine(plan);
    const auto res = runHashTableBench(cfg);

    EXPECT_FALSE(res.watchdogFired);
    EXPECT_TRUE(res.oracle.ok) << res.oracle.summary();
    ASSERT_TRUE(res.lincheck.checked) << res.lincheck.reason;
    EXPECT_TRUE(res.lincheck.linearizable) << res.lincheck.reason;
    EXPECT_EQ(res.lincheck.numOps, 4u * cfg.iterations);
}

TEST(ChaosStress, SpuriousAbortHistoriesStayLinearizable)
{
    // Spurious-abort mix for the two elision workloads (the queue
    // variant is covered above): retried operations must still log
    // exactly one invoke/response pair and a linearizable history.
    inject::FaultPlan plan;
    plan.spuriousAbortRate = 0.01;

    ListSetBenchConfig lcfg;
    lcfg.cpus = 4;
    lcfg.useElision = true;
    lcfg.iterations = 40;
    lcfg.opLog = true;
    lcfg.machine = chaosMachine(plan);
    const auto lres = runListSetBench(lcfg);
    EXPECT_FALSE(lres.watchdogFired);
    EXPECT_TRUE(lres.oracle.ok) << lres.oracle.summary();
    ASSERT_TRUE(lres.lincheck.checked) << lres.lincheck.reason;
    EXPECT_TRUE(lres.lincheck.linearizable) << lres.lincheck.reason;
    EXPECT_EQ(lres.lincheck.numOps, 4u * lcfg.iterations);

    HashTableBenchConfig hcfg;
    hcfg.cpus = 4;
    hcfg.useElision = true;
    hcfg.iterations = 40;
    hcfg.opLog = true;
    hcfg.machine = chaosMachine(plan);
    const auto hres = runHashTableBench(hcfg);
    EXPECT_FALSE(hres.watchdogFired);
    EXPECT_TRUE(hres.oracle.ok) << hres.oracle.summary();
    ASSERT_TRUE(hres.lincheck.checked) << hres.lincheck.reason;
    EXPECT_TRUE(hres.lincheck.linearizable) << hres.lincheck.reason;
    EXPECT_EQ(hres.lincheck.numOps, 4u * hcfg.iterations);
}

TEST(ChaosStress, WatchdogHaltLeavesPendingOpsCheckable)
{
    // A 100% spurious-abort rate livelocks the constrained path, so
    // the watchdog fires mid-operation. The history must still be
    // checkable, with the stuck operations reported as pending
    // (maybe completed) rather than invented or dropped.
    inject::FaultPlan plan;
    plan.spuriousAbortRate = 1.0;
    QueueBenchConfig cfg;
    cfg.cpus = 4;
    cfg.useConstrainedTx = true;
    cfg.iterations = 10;
    cfg.opLog = true;
    cfg.machine = chaosMachine(plan);
    cfg.machine.watchdogCycles = 200'000;
    const auto res = runQueueBench(cfg);

    EXPECT_TRUE(res.watchdogFired);
    EXPECT_FALSE(res.oracle.ok); // the watchdog itself fails it
    ASSERT_TRUE(res.lincheck.checked) << res.lincheck.reason;
    EXPECT_TRUE(res.lincheck.linearizable) << res.lincheck.reason;
    EXPECT_GE(res.lincheck.numPending, 1u);
}

} // namespace
