/**
 * @file
 * Workload harness tests: correctness of every synchronization
 * method under the update benchmark, the hash table, the queue, and
 * the footprint Monte-Carlo — plus coarse qualitative checks of the
 * performance relations the paper reports.
 */

#include <gtest/gtest.h>

#include "workload/footprint.hh"
#include "workload/hashtable.hh"
#include "workload/layout.hh"
#include "workload/queue.hh"
#include "workload/update_bench.hh"
#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using namespace ztx::workload;

UpdateBenchConfig
baseConfig(SyncMethod method, unsigned cpus, unsigned pool,
           unsigned vars)
{
    UpdateBenchConfig cfg;
    cfg.method = method;
    cfg.cpus = cpus;
    cfg.poolSize = pool;
    cfg.varsPerOp = vars;
    cfg.iterations = 100;
    cfg.machine = smallConfig(cpus);
    return cfg;
}

class UpdateBenchCorrectness
    : public ::testing::TestWithParam<SyncMethod>
{
};

TEST_P(UpdateBenchCorrectness, NoLostUpdates)
{
    // Every synchronized method must produce exactly
    // cpus * iterations * varsPerOp increments.
    const auto cfg = baseConfig(GetParam(), 4, 10, 4);
    const auto res = runUpdateBench(cfg);
    EXPECT_EQ(res.poolSum, 4u * 100u * 4u);
    EXPECT_GT(res.throughput, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Methods, UpdateBenchCorrectness,
                         ::testing::Values(SyncMethod::CoarseLock,
                                           SyncMethod::TBegin,
                                           SyncMethod::TBeginc),
                         [](const auto &info) {
                             std::string n =
                                 syncMethodName(info.param);
                             for (auto &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(UpdateBench, FineLockSingleVarIsCorrect)
{
    const auto cfg = baseConfig(SyncMethod::FineLock, 4, 10, 1);
    const auto res = runUpdateBench(cfg);
    EXPECT_EQ(res.poolSum, 4u * 100u);
}

TEST(UpdateBench, UnsynchronizedLosesUpdatesUnderContention)
{
    const auto cfg = baseConfig(SyncMethod::None, 4, 1, 1);
    const auto res = runUpdateBench(cfg);
    EXPECT_LT(res.poolSum, 4u * 100u);
}

TEST(UpdateBench, ReadOnlyLeavesPoolUntouched)
{
    auto cfg = baseConfig(SyncMethod::RwLock, 2, 10, 4);
    cfg.readOnly = true;
    const auto res = runUpdateBench(cfg);
    EXPECT_EQ(res.poolSum, 0u);
    EXPECT_GT(res.throughput, 0.0);
}

TEST(UpdateBench, TBegincReadOnly)
{
    auto cfg = baseConfig(SyncMethod::TBeginc, 2, 10, 4);
    cfg.readOnly = true;
    const auto res = runUpdateBench(cfg);
    EXPECT_EQ(res.poolSum, 0u);
    EXPECT_GT(res.txCommits, 0u);
}

TEST(UpdateBench, DeterministicForSeed)
{
    const auto cfg = baseConfig(SyncMethod::TBegin, 4, 10, 4);
    const auto a = runUpdateBench(cfg);
    const auto b = runUpdateBench(cfg);
    EXPECT_EQ(a.meanRegionCycles, b.meanRegionCycles);
    EXPECT_EQ(a.txAborts, b.txAborts);
}

TEST(UpdateBench, SingleCpuTxFasterThanLock)
{
    // Paper §IV: with one CPU and an L1-resident lock, transactions
    // outperform lock/unlock by about 30% (shorter path length).
    auto lock_cfg = baseConfig(SyncMethod::CoarseLock, 1, 1, 1);
    lock_cfg.iterations = 400;
    auto tx_cfg = baseConfig(SyncMethod::TBegin, 1, 1, 1);
    tx_cfg.iterations = 400;
    const auto lock_res = runUpdateBench(lock_cfg);
    const auto tx_res = runUpdateBench(tx_cfg);
    EXPECT_GT(tx_res.throughput, lock_res.throughput);
    // The advantage should be substantial but bounded.
    EXPECT_LT(tx_res.throughput, 2.0 * lock_res.throughput);
}

TEST(UpdateBench, ConstrainedAndUnconstrainedComparable)
{
    // Paper: ~0.4% apart. The in-order scalar cost model charges
    // the figure-1 preamble (retry-count init + fallback-lock test)
    // explicitly, which a 3-wide OOO core hides almost entirely, so
    // our gap is larger; we assert "same small envelope" (<35%) and
    // record the deviation in EXPERIMENTS.md.
    auto a = baseConfig(SyncMethod::TBegin, 1, 1, 1);
    a.iterations = 400;
    auto b = baseConfig(SyncMethod::TBeginc, 1, 1, 1);
    b.iterations = 400;
    const double ta = runUpdateBench(a).throughput;
    const double tb = runUpdateBench(b).throughput;
    EXPECT_LT(std::abs(ta - tb) / ta, 0.35);
}

TEST(UpdateBench, TxScalesBetterThanCoarseLock)
{
    // Low contention (pool 1000): transactional throughput at 8
    // CPUs should clearly beat the coarse lock's.
    auto lock_cfg = baseConfig(SyncMethod::CoarseLock, 8, 1000, 4);
    auto tx_cfg = baseConfig(SyncMethod::TBeginc, 8, 1000, 4);
    const auto lock_res = runUpdateBench(lock_cfg);
    const auto tx_res = runUpdateBench(tx_cfg);
    EXPECT_GT(tx_res.throughput, 1.5 * lock_res.throughput);
}

TEST(UpdateBench, ReferenceThroughputPositive)
{
    const double ref = referenceThroughput(smallConfig(2), 200);
    EXPECT_GT(ref, 0.0);
}

TEST(HashTable, LockAndElisionAgreeFunctionally)
{
    for (const bool elide : {false, true}) {
        HashTableBenchConfig cfg;
        cfg.cpus = 4;
        cfg.iterations = 150;
        cfg.useElision = elide;
        cfg.machine = smallConfig(4);
        const auto res = runHashTableBench(cfg);
        EXPECT_GT(res.throughput, 0.0) << elide;
        // The pre-filled keys stay present.
        EXPECT_GE(res.occupiedBuckets, cfg.keySpace / 2) << elide;
        if (elide) {
            EXPECT_GT(res.txCommits, 0u);
        }
    }
}

TEST(HashTable, ElisionScalesBetterThanLock)
{
    HashTableBenchConfig lock_cfg;
    lock_cfg.cpus = 8;
    lock_cfg.iterations = 150;
    lock_cfg.useElision = false;
    lock_cfg.machine = smallConfig(8);
    HashTableBenchConfig tx_cfg = lock_cfg;
    tx_cfg.useElision = true;
    const auto lock_res = runHashTableBench(lock_cfg);
    const auto tx_res = runHashTableBench(tx_cfg);
    EXPECT_GT(tx_res.throughput, 1.3 * lock_res.throughput);
}

TEST(Queue, CountsConsistentUnderLock)
{
    QueueBenchConfig cfg;
    cfg.cpus = 4;
    cfg.iterations = 200;
    cfg.useConstrainedTx = false;
    cfg.machine = smallConfig(4);
    const auto res = runQueueBench(cfg);
    const std::uint64_t enqueued = 4ull * 200;
    EXPECT_EQ(enqueued - res.dequeuedNonEmpty, res.finalLength);
}

TEST(Queue, CountsConsistentUnderConstrainedTx)
{
    QueueBenchConfig cfg;
    cfg.cpus = 4;
    cfg.iterations = 200;
    cfg.useConstrainedTx = true;
    cfg.machine = smallConfig(4);
    const auto res = runQueueBench(cfg);
    const std::uint64_t enqueued = 4ull * 200;
    EXPECT_EQ(enqueued - res.dequeuedNonEmpty, res.finalLength);
    EXPECT_GT(res.txCommits, 0u);
}

TEST(Queue, ConstrainedTxFasterThanLock)
{
    QueueBenchConfig lock_cfg;
    lock_cfg.cpus = 4;
    lock_cfg.iterations = 200;
    lock_cfg.useConstrainedTx = false;
    lock_cfg.machine = smallConfig(4);
    QueueBenchConfig tx_cfg = lock_cfg;
    tx_cfg.useConstrainedTx = true;
    const auto lock_res = runQueueBench(lock_cfg);
    const auto tx_res = runQueueBench(tx_cfg);
    EXPECT_GT(tx_res.throughput, lock_res.throughput);
}

TEST(Footprint, SmallTransactionsNeverAbort)
{
    FootprintConfig cfg;
    cfg.trials = 30;
    EXPECT_EQ(measureFootprintAbortRate(20, cfg), 0.0);
}

TEST(Footprint, ExtensionMovesTheWall)
{
    FootprintConfig with;
    with.trials = 40;
    FootprintConfig without = with;
    without.lruExtension = false;
    // At 300 lines the L1-limited machine aborts nearly always; the
    // L2-limited (extension) machine nearly never.
    const double r_without = measureFootprintAbortRate(300, without);
    const double r_with = measureFootprintAbortRate(300, with);
    EXPECT_GT(r_without, 0.8);
    EXPECT_LT(r_with, 0.2);
}

} // namespace
