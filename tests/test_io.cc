/**
 * @file
 * The I/O subsystem as a coherence participant: DMA transfers, and
 * the architected isolation between transactions and I/O in both
 * directions (paper §II.A).
 */

#include <gtest/gtest.h>

#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using isa::Assembler;
using isa::Program;

sim::MachineConfig
ioConfig(unsigned cpus)
{
    auto cfg = smallConfig(cpus);
    cfg.enableIo = true; // occupies topology slot 7
    return cfg;
}

TEST(IoSubsystem, DmaWriteReachesMemory)
{
    sim::Machine m(ioConfig(1));
    m.io().submit({.write = true, .addr = dataBase, .length = 1024,
                   .pattern = 0xAB});
    m.drainIo();
    EXPECT_TRUE(m.io().idle());
    EXPECT_EQ(m.io().completed(), 1u);
    EXPECT_EQ(m.memory().readByte(dataBase), 0xAB);
    EXPECT_EQ(m.memory().readByte(dataBase + 1023), 0xAB);
    EXPECT_EQ(m.memory().readByte(dataBase + 1024), 0x00);
}

TEST(IoSubsystem, DmaDoesNotObservePendingTxStores)
{
    // A CPU stores transactionally; an I/O read of the line must
    // see the pre-transaction value (isolation toward I/O).
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(1, 99);
    as.tbegin(0xFF);
    as.jnz("done");
    as.stg(1, 9);
    as.label("spin");
    as.j("spin");
    as.label("done");
    as.halt();
    const Program p = as.finish();

    sim::Machine m(ioConfig(1));
    m.memory().write(dataBase, 7, 8);
    m.setProgram(0, &p);
    for (int i = 0; i < 8; ++i)
        m.cpu(0).step();
    ASSERT_TRUE(m.cpu(0).inTx());

    // The device reads the line: the CPU stiff-arms for a while
    // (bounded), but memory never shows 99 before commit/abort.
    m.io().submit({.write = false, .addr = dataBase, .length = 8});
    for (int i = 0; i < 300 && !m.io().idle(); ++i)
        m.io().pump();
    EXPECT_EQ(m.io().deviceRead(dataBase, 8), 7u);
}

TEST(IoSubsystem, DmaWriteAbortsConflictingTransaction)
{
    // Strong atomicity toward I/O: a DMA write into a line that a
    // transaction has read aborts the transaction.
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.tbegin(0xFF);
    as.jnz("done");
    as.lg(1, 9);
    as.label("spin");
    as.j("spin");
    as.label("done");
    as.halt();
    const Program p = as.finish();

    sim::Machine m(ioConfig(1));
    m.setProgram(0, &p);
    for (int i = 0; i < 6; ++i)
        m.cpu(0).step();
    ASSERT_TRUE(m.cpu(0).inTx());

    m.io().submit({.write = true, .addr = dataBase, .length = 8,
                   .pattern = 0x55});
    for (int i = 0; i < 300 && !m.io().idle(); ++i)
        m.io().pump();
    EXPECT_TRUE(m.io().idle());
    EXPECT_FALSE(m.cpu(0).inTx());
    EXPECT_EQ(m.cpu(0)
                  .stats()
                  .counter("tx.abort.fetch-conflict")
                  .value(),
              1u);
}

TEST(IoSubsystem, DmaInterleavesWithRunningProgram)
{
    // CPUs and the channel make progress together under run().
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase + 0x10000));
    as.lhi(8, 200);
    as.label("loop");
    as.tbeginc(0x00);
    as.lgfo(1, 9);
    as.ahi(1, 1);
    as.stg(1, 9);
    as.tend();
    as.brct(8, "loop");
    as.halt();
    const Program p = as.finish();

    sim::Machine m(ioConfig(2));
    m.setProgramAll(&p);
    m.io().submit({.write = true, .addr = dataBase,
                   .length = 16 * 1024, .pattern = 0x11});
    m.run();
    m.drainIo();
    EXPECT_EQ(m.io().completed(), 1u);
    EXPECT_EQ(m.peekMem(dataBase + 0x10000, 8), 400u);
    EXPECT_EQ(m.memory().readByte(dataBase + 16 * 1024 - 1), 0x11);
}

TEST(IoSubsystem, TransactionalWorkSurvivesHeavyIo)
{
    // Constrained increments against a stream of DMA writes into
    // the same line: the guarantee must hold and no increments are
    // lost (the DMA pattern writes other bytes of the line).
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(8, 100);
    as.label("loop");
    as.tbeginc(0x00);
    as.lgfo(1, 9);
    as.ahi(1, 1);
    as.stg(1, 9);
    as.tend();
    as.brct(8, "loop");
    as.halt();
    const Program p = as.finish();

    sim::Machine m(ioConfig(2));
    m.setProgramAll(&p);
    // DMA hammers a *neighbouring* line, plus occasional hits on
    // the counter's line tail (not the counter doubleword).
    for (int i = 0; i < 20; ++i) {
        m.io().submit({.write = true, .addr = dataBase + 128,
                       .length = 64, .pattern = 0x77});
    }
    m.run();
    m.drainIo();
    EXPECT_EQ(m.peekMem(dataBase, 8), 200u);
    EXPECT_EQ(m.memory().readByte(dataBase + 128), 0x77);
}

} // namespace
