/**
 * @file
 * Shared helpers for zTX tests: small machines and common programs.
 */

#ifndef ZTX_TESTS_ZTX_TEST_UTIL_HH
#define ZTX_TESTS_ZTX_TEST_UTIL_HH

#include "isa/assembler.hh"
#include "sim/machine.hh"

namespace ztx::test {

/** A machine with @p cpus CPUs on a 2-cores/2-chips/2-MCMs shape. */
inline sim::MachineConfig
smallConfig(unsigned cpus = 2)
{
    sim::MachineConfig cfg;
    cfg.topology = mem::Topology(2, 2, 2);
    cfg.activeCpus = cpus;
    cfg.seed = 12345;
    return cfg;
}

/** Data addresses used by the mini programs below. */
inline constexpr Addr dataBase = 0x40'0000;

} // namespace ztx::test

#endif // ZTX_TESTS_ZTX_TEST_UTIL_HH
