/** @file Unit tests for SMP topology and the latency model. */

#include <gtest/gtest.h>

#include "mem/latency_model.hh"
#include "mem/topology.hh"

namespace {

using ztx::mem::DataSource;
using ztx::mem::Distance;
using ztx::mem::LatencyModel;
using ztx::mem::Topology;

TEST(Topology, DefaultSizes)
{
    Topology t;
    EXPECT_EQ(t.numCpus(), 120u);
    EXPECT_EQ(t.numChips(), 20u);
    EXPECT_EQ(t.numMcms(), 5u);
}

TEST(Topology, ChipAndMcmMapping)
{
    Topology t(6, 4, 5);
    EXPECT_EQ(t.chipOf(0), 0u);
    EXPECT_EQ(t.chipOf(5), 0u);
    EXPECT_EQ(t.chipOf(6), 1u);
    EXPECT_EQ(t.mcmOf(0), 0u);
    EXPECT_EQ(t.mcmOf(23), 0u);
    EXPECT_EQ(t.mcmOf(24), 1u);
}

TEST(Topology, Distances)
{
    Topology t(6, 4, 5);
    EXPECT_EQ(t.distance(3, 3), Distance::SameCpu);
    EXPECT_EQ(t.distance(0, 5), Distance::SameChip);
    EXPECT_EQ(t.distance(0, 6), Distance::SameMcm);
    EXPECT_EQ(t.distance(0, 23), Distance::SameMcm);
    EXPECT_EQ(t.distance(0, 24), Distance::CrossMcm);
    EXPECT_EQ(t.distance(24, 0), Distance::CrossMcm);
}

TEST(Topology, CustomShape)
{
    Topology t(2, 2, 2);
    EXPECT_EQ(t.numCpus(), 8u);
    EXPECT_EQ(t.distance(0, 1), Distance::SameChip);
    EXPECT_EQ(t.distance(0, 2), Distance::SameMcm);
    EXPECT_EQ(t.distance(0, 4), Distance::CrossMcm);
}

TEST(LatencyModel, HierarchyOrdering)
{
    LatencyModel lat;
    EXPECT_LT(lat.fetch(DataSource::L1), lat.fetch(DataSource::L2));
    EXPECT_LT(lat.fetch(DataSource::L2), lat.fetch(DataSource::L3));
    EXPECT_LT(lat.fetch(DataSource::L3), lat.fetch(DataSource::L4));
    EXPECT_LT(lat.fetch(DataSource::L4),
              lat.fetch(DataSource::RemoteMcm));
    EXPECT_LT(lat.fetch(DataSource::RemoteMcm),
              lat.fetch(DataSource::Memory));
}

TEST(LatencyModel, PaperGivenLatencies)
{
    LatencyModel lat;
    // The paper states 4-cycle L1 use latency and a 7-cycle L1-miss
    // penalty to the L2.
    EXPECT_EQ(lat.fetch(DataSource::L1), 4u);
    EXPECT_EQ(lat.fetch(DataSource::L2), 11u);
}

TEST(LatencyModel, InterventionGrowsWithDistance)
{
    LatencyModel lat;
    EXPECT_EQ(lat.intervention(Distance::SameCpu), 0u);
    EXPECT_LT(lat.intervention(Distance::SameChip),
              lat.intervention(Distance::SameMcm));
    EXPECT_LT(lat.intervention(Distance::SameMcm),
              lat.intervention(Distance::CrossMcm));
}

TEST(LatencyModel, RejectRetryIsPositive)
{
    LatencyModel lat;
    EXPECT_GT(lat.rejectRetry(Distance::SameChip), 0u);
}

} // namespace
