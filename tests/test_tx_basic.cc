/**
 * @file
 * Transactional-execution semantics: atomicity, rollback, condition
 * codes, register save masks, nesting, NTSTG, footprint limits, and
 * isolation against other CPUs.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "tx/tdb.hh"
#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using isa::Assembler;
using isa::Program;

std::unique_ptr<sim::Machine>
runProgram(const Program &program,
           std::function<void(sim::Machine &)> setup = {})
{
    auto m = std::make_unique<sim::Machine>(smallConfig(1));
    if (setup)
        setup(*m);
    m->setProgram(0, &program);
    m->run();
    return m;
}

TEST(TxBasic, CommitMakesStoresVisible)
{
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(1, 11);
    as.lhi(2, 22);
    as.tbegin(0xFF);
    as.jnz("failed");
    as.stg(1, 9, 0);
    as.stg(2, 9, 256);
    as.tend();
    as.label("failed");
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->peekMem(dataBase, 8), 11u);
    EXPECT_EQ(m->peekMem(dataBase + 256, 8), 22u);
    EXPECT_EQ(m->cpu(0).stats().counter("tx.commits").value(), 1u);
    EXPECT_EQ(m->cpu(0).stats().counter("tx.aborts").value(), 0u);
}

TEST(TxBasic, TBeginSetsCcZero)
{
    Assembler as;
    as.lhi(1, 3); // pollute CC via LTR
    as.ltr(1, 1); // CC2
    as.tbegin(0xFF);
    as.jnz("failed");
    as.tend();
    as.label("failed");
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).stats().counter("tx.commits").value(), 1u);
}

TEST(TxBasic, TAbortRollsBackStores)
{
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(1, 99);
    as.tbegin(0xFF);
    as.jnz("aborted");
    as.stg(1, 9, 0);
    as.tabort(0, 256);
    as.label("aborted");
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p, [](sim::Machine &mm) {
        mm.memory().write(dataBase, 5, 8);
    });
    EXPECT_EQ(m->peekMem(dataBase, 8), 5u); // original value intact
    EXPECT_EQ(m->cpu(0).stats().counter("tx.aborts").value(), 1u);
}

TEST(TxBasic, TAbortConditionCodeFromCodeParity)
{
    // Even code -> CC2 (transient); odd -> CC3 (permanent).
    for (const auto &[code, expected_cc] :
         {std::pair<int, int>{256, 2}, std::pair<int, int>{257, 3}}) {
        Assembler as;
        as.tbegin(0xFF);
        as.jnz("aborted");
        as.tabort(0, code);
        as.label("aborted");
        as.halt();
        const Program p = as.finish();
        auto m = runProgram(p);
        EXPECT_EQ(m->cpu(0).psw().cc, expected_cc) << code;
    }
}

TEST(TxBasic, AbortResumesAfterTBegin)
{
    Assembler as;
    as.lhi(5, 0);
    as.tbegin(0x00); // do not save/restore GR pair of 5!
    as.jnz("handler");
    as.lhi(5, 1); // only on the initial (pre-abort) pass
    as.tabort(0, 256);
    as.label("handler");
    as.ahi(5, 10);
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    // GR5 survived the abort with its in-TX value (not in the save
    // mask): 1 + 10.
    EXPECT_EQ(m->cpu(0).gr(5), 11u);
}

TEST(TxBasic, GrsmRestoresSelectedPairsOnly)
{
    Assembler as;
    as.lhi(2, 100); // pair 1 (GRs 2,3) -> saved below
    as.lhi(3, 101);
    as.lhi(4, 200); // pair 2 (GRs 4,5) -> not saved
    // Save mask: bit 1 of the left-to-right mask covers GRs 2-3.
    as.tbegin(0x40);
    as.jnz("handler");
    as.lhi(2, 1);
    as.lhi(3, 2);
    as.lhi(4, 3);
    as.tabort(0, 256);
    as.label("handler");
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).gr(2), 100u); // restored
    EXPECT_EQ(m->cpu(0).gr(3), 101u); // restored
    EXPECT_EQ(m->cpu(0).gr(4), 3u);   // survives with TX value
}

TEST(TxBasic, NestingDepthViaEtnd)
{
    Assembler as;
    as.etnd(1); // depth 0 outside
    as.tbegin(0xFF);
    as.jnz("out");
    as.etnd(2); // 1
    as.tbegin(0xFF);
    as.jnz("out");
    as.etnd(3); // 2
    as.tend();
    as.etnd(4); // 1
    as.tend();
    as.etnd(5); // 0
    as.label("out");
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).gr(1), 0u);
    EXPECT_EQ(m->cpu(0).gr(2), 1u);
    EXPECT_EQ(m->cpu(0).gr(3), 2u);
    EXPECT_EQ(m->cpu(0).gr(4), 1u);
    EXPECT_EQ(m->cpu(0).gr(5), 0u);
    // Only the outermost TEND commits.
    EXPECT_EQ(m->cpu(0).stats().counter("tx.commits").value(), 1u);
}

TEST(TxBasic, NestedAbortFlattensToOutermost)
{
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(1, 7);
    as.tbegin(0xFF);
    as.jnz("handler");
    as.stg(1, 9, 0); // outer-level store
    as.tbegin(0xFF);
    as.jnz("handler");
    as.stg(1, 9, 256); // inner-level store
    as.tabort(0, 256); // aborts the WHOLE nest
    as.label("handler");
    as.etnd(6);
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    // Both levels rolled back; nesting depth reset to 0; execution
    // resumed after the outermost TBEGIN.
    EXPECT_EQ(m->peekMem(dataBase, 8), 0u);
    EXPECT_EQ(m->peekMem(dataBase + 256, 8), 0u);
    EXPECT_EQ(m->cpu(0).gr(6), 0u);
    EXPECT_EQ(m->cpu(0).stats().counter("tx.aborts").value(), 1u);
}

TEST(TxBasic, MaxNestingDepthExceededAborts)
{
    Assembler as;
    as.lhi(1, 20); // more than the architected 16
    as.label("nest");
    as.tbegin(0xFF);
    as.jnz("handler");
    as.brct(1, "nest");
    as.label("handler");
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).psw().cc, 3); // permanent
    EXPECT_EQ(m->cpu(0)
                  .stats()
                  .counter("tx.abort.nesting-depth-exceeded")
                  .value(),
              1u);
    EXPECT_EQ(m->cpu(0).nestingDepth(), 0u);
}

TEST(TxBasic, TendOutsideTxSetsCc2)
{
    Assembler as;
    as.tend();
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).psw().cc, 2);
}

TEST(TxBasic, RestrictedInstructionAbortsPermanently)
{
    Assembler as;
    as.tbegin(0xFF);
    as.jnz("handler");
    as.lpswe(); // privileged -> restricted in TX
    as.tend();
    as.label("handler");
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).psw().cc, 3);
    EXPECT_EQ(m->cpu(0)
                  .stats()
                  .counter("tx.abort.restricted-instruction")
                  .value(),
              1u);
}

TEST(TxBasic, ArModificationBlockedByControl)
{
    Assembler as;
    as.lhi(1, 5);
    as.tbegin(0xFF, {.allowArMod = false});
    as.jnz("handler");
    as.sar(2, 1); // AR modification with A control 0
    as.tend();
    as.label("handler");
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).psw().cc, 3);
    EXPECT_EQ(m->cpu(0).stats().counter("tx.commits").value(), 0u);
}

TEST(TxBasic, FprModificationBlockedByControl)
{
    Assembler as;
    as.lhi(1, 5);
    as.tbegin(0xFF, {.allowFprMod = false});
    as.jnz("handler");
    as.ldgr(0, 1);
    as.tend();
    as.label("handler");
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).psw().cc, 3);
}

TEST(TxBasic, FprModificationAllowedWhenControlSet)
{
    Assembler as;
    as.lhi(1, 5);
    as.tbegin(0xFF, {.allowFprMod = true});
    as.jnz("handler");
    as.ldgr(0, 1);
    as.tend();
    as.label("handler");
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).stats().counter("tx.commits").value(), 1u);
    EXPECT_EQ(m->cpu(0).fpr(0), 5u);
}

TEST(TxBasic, NestedControlsAreAnded)
{
    // Outer allows AR mods, inner does not: the effective control is
    // the AND, so SAR after the inner TBEGIN aborts.
    Assembler as;
    as.lhi(1, 5);
    as.tbegin(0xFF, {.allowArMod = true});
    as.jnz("handler");
    as.tbegin(0xFF, {.allowArMod = false});
    as.jnz("handler");
    as.sar(2, 1);
    as.tend();
    as.tend();
    as.label("handler");
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).stats().counter("tx.commits").value(), 0u);
    EXPECT_EQ(m->cpu(0).psw().cc, 3);
}

TEST(TxBasic, NtstgSurvivesAbort)
{
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(1, 42);
    as.lhi(2, 77);
    as.tbegin(0xFF);
    as.jnz("handler");
    as.stg(1, 9, 0);      // normal TX store: rolled back
    as.ntstg(2, 9, 512);  // NTSTG breadcrumb: survives
    as.tabort(0, 256);
    as.label("handler");
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->peekMem(dataBase, 8), 0u);
    EXPECT_EQ(m->peekMem(dataBase + 512, 8), 77u);
}

TEST(TxBasic, NtstgIsolatedUntilAbortOrCommit)
{
    // NTSTG data commits on TEND as well.
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(2, 88);
    as.tbegin(0xFF);
    as.jnz("handler");
    as.ntstg(2, 9, 512);
    as.tend();
    as.label("handler");
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->peekMem(dataBase + 512, 8), 88u);
}

TEST(TxBasic, TdbStoredOnAbort)
{
    constexpr Addr tdb_addr = dataBase + 0x1000;
    Assembler as;
    as.la(8, 0, std::int64_t(tdb_addr));
    as.lhi(7, 1234); // visible in the TDB GR snapshot
    as.tbegin(0xFF, {.tdbBase = 8});
    as.jnz("handler");
    as.lhi(7, 5678);
    as.tabort(0, 258);
    as.label("handler");
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    const tx::Tdb tdb = tx::Tdb::load(m->memory(), tdb_addr);
    EXPECT_EQ(tdb.format, 1);
    EXPECT_EQ(tdb.abortCode, 258u);
    // GR7 at the time of abort (before restore) was 5678.
    EXPECT_EQ(tdb.grs[7], 5678u);
    // GR7 after the abort is restored to its pre-TX value.
    EXPECT_EQ(m->cpu(0).gr(7), 1234u);
}

TEST(TxBasic, NoTdbStoreWithoutAddress)
{
    Assembler as;
    as.tbegin(0xFF); // no TDB operand
    as.jnz("handler");
    as.tabort(0, 256);
    as.label("handler");
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    // The would-be TDB region is untouched.
    EXPECT_EQ(m->peekMem(dataBase + 0x1000 + 8, 8), 0u);
}

TEST(TxBasic, StoreFootprintOverflowAborts)
{
    // The gathering store cache holds 64 x 128-byte entries; storing
    // to 70 distinct 128-byte blocks must abort with CC3.
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(1, 70);
    as.lhi(2, 1);
    as.tbegin(0xFF);
    as.jnz("handler");
    as.label("loop");
    as.stg(2, 9, 0);
    as.la(9, 9, 128);
    as.brct(1, "loop");
    as.tend();
    as.label("handler");
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).psw().cc, 3);
    EXPECT_EQ(m->cpu(0)
                  .stats()
                  .counter("tx.abort.store-overflow")
                  .value(),
              1u);
    // Nothing leaked to memory.
    EXPECT_EQ(m->peekMem(dataBase, 8), 0u);
    EXPECT_EQ(m->peekMem(dataBase + 128 * 32, 8), 0u);
}

TEST(TxBasic, StoreFootprintWithinLimitCommits)
{
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(1, 60);
    as.lhi(2, 1);
    as.tbegin(0xFF);
    as.jnz("handler");
    as.label("loop");
    as.stg(2, 9, 0);
    as.la(9, 9, 128);
    as.brct(1, "loop");
    as.tend();
    as.label("handler");
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).stats().counter("tx.commits").value(), 1u);
    EXPECT_EQ(m->peekMem(dataBase + 128 * 59, 8), 1u);
}

TEST(TxBasic, TxStoresInvisibleToOtherCpuUntilCommit)
{
    // CPU0 stores transactionally and spins; CPU1 reads the line.
    // CPU0 stiff-arms the XI while it can, then hang avoidance
    // aborts it; CPU1 must read the pre-transaction value.
    Assembler w;
    w.la(9, 0, std::int64_t(dataBase));
    w.lhi(1, 99);
    w.tbegin(0xFF);
    w.jnz("done");
    w.stg(1, 9, 0);
    w.label("spin");
    w.j("spin");
    w.label("done");
    w.halt();
    const Program writer = w.finish();

    Assembler r;
    r.la(9, 0, std::int64_t(dataBase));
    r.lg(2, 9);
    r.halt();
    const Program reader = r.finish();

    sim::Machine m(smallConfig(2));
    m.memory().write(dataBase, 7, 8);
    m.setProgram(0, &writer);
    m.setProgram(1, &reader);

    // Drive the writer into its transaction, past the store.
    for (int i = 0; i < 8; ++i)
        m.cpu(0).step();
    ASSERT_TRUE(m.cpu(0).inTx());

    // The reader's fetch is stiff-armed for as long as the zombie
    // transaction lives: it must never observe the uncommitted 99.
    for (int i = 0; i < 50; ++i)
        m.cpu(1).step();
    EXPECT_FALSE(m.cpu(1).halted());
    EXPECT_GT(m.cpu(0).stats().counter("xi.rejects_sent").value(),
              0u);

    // A timer tick eventually ends the spinning transaction (this
    // is what bounds such transactions on the real machine); the
    // reader then sees the pre-transaction value.
    m.cpu(0).deliverExternalInterrupt();
    ASSERT_FALSE(m.cpu(0).inTx());
    int steps = 0;
    while (!m.cpu(1).halted() && steps++ < 200)
        m.cpu(1).step();
    ASSERT_TRUE(m.cpu(1).halted());
    EXPECT_EQ(m.cpu(1).gr(2), 7u); // pre-TX value, never 99
    EXPECT_EQ(m.cpu(0)
                  .stats()
                  .counter("tx.abort.external-interrupt")
                  .value(),
              1u);
}

TEST(TxBasic, WriterConflictAbortsReaderTx)
{
    // CPU0 transactionally reads a line and spins; CPU1 stores to
    // it non-transactionally (strong atomicity): CPU0's transaction
    // must abort with a fetch conflict.
    Assembler r;
    r.la(9, 0, std::int64_t(dataBase));
    r.tbegin(0xFF);
    r.jnz("done");
    r.lg(1, 9);
    r.label("spin");
    r.j("spin");
    r.label("done");
    r.halt();
    const Program reader = r.finish();

    Assembler w;
    w.la(9, 0, std::int64_t(dataBase));
    w.lhi(1, 55);
    w.stg(1, 9);
    w.halt();
    const Program writer = w.finish();

    sim::Machine m(smallConfig(2));
    m.setProgram(0, &reader);
    m.setProgram(1, &writer);

    for (int i = 0; i < 8; ++i)
        m.cpu(0).step();
    ASSERT_TRUE(m.cpu(0).inTx());

    int steps = 0;
    while (!m.cpu(1).halted() && steps++ < 200)
        m.cpu(1).step();
    ASSERT_TRUE(m.cpu(1).halted());
    EXPECT_FALSE(m.cpu(0).inTx());
    EXPECT_EQ(m.cpu(0)
                  .stats()
                  .counter("tx.abort.fetch-conflict")
                  .value(),
              1u);
    EXPECT_EQ(m.peekMem(dataBase, 8), 55u);
}

TEST(TxBasic, ReadSharingDoesNotConflict)
{
    // Two CPUs transactionally reading the same line both commit.
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.tbegin(0xFF);
    as.jnz("done");
    as.lg(1, 9);
    as.tend();
    as.label("done");
    as.halt();
    const Program p = as.finish();

    sim::Machine m(smallConfig(2));
    m.setProgram(0, &p);
    m.setProgram(1, &p);
    m.run();
    EXPECT_EQ(m.cpu(0).stats().counter("tx.commits").value(), 1u);
    EXPECT_EQ(m.cpu(1).stats().counter("tx.commits").value(), 1u);
    EXPECT_EQ(m.cpu(0).stats().counter("tx.aborts").value(), 0u);
    EXPECT_EQ(m.cpu(1).stats().counter("tx.aborts").value(), 0u);
}

TEST(TxBasic, ConflictTokenRecordedInTdb)
{
    constexpr Addr tdb_addr = dataBase + 0x4000;
    Assembler r;
    r.la(8, 0, std::int64_t(tdb_addr));
    r.la(9, 0, std::int64_t(dataBase));
    r.tbegin(0xFF, {.tdbBase = 8});
    r.jnz("done");
    r.lg(1, 9);
    r.label("spin");
    r.j("spin");
    r.label("done");
    r.halt();
    const Program reader = r.finish();

    Assembler w;
    w.la(9, 0, std::int64_t(dataBase));
    w.lhi(1, 5);
    w.stg(1, 9);
    w.halt();
    const Program writer = w.finish();

    sim::Machine m(smallConfig(2));
    m.setProgram(0, &reader);
    m.setProgram(1, &writer);
    for (int i = 0; i < 8; ++i)
        m.cpu(0).step();
    int steps = 0;
    while (!m.cpu(1).halted() && steps++ < 200)
        m.cpu(1).step();

    const tx::Tdb tdb = tx::Tdb::load(m.memory(), tdb_addr);
    EXPECT_TRUE(tdb.conflictTokenValid);
    EXPECT_EQ(tdb.conflictToken, lineAlign(dataBase));
    EXPECT_EQ(tdb.abortCode,
              std::uint64_t(tx::AbortReason::FetchConflict));
}

} // namespace
