/**
 * @file
 * Program-interruption filtering (paper §II.C): PIFC semantics per
 * exception group, nesting (max), the never-filter rules for
 * instruction fetch and constrained transactions, and the pitfall
 * the paper warns about (a filtered page fault never gets resolved
 * unless the fallback path touches the page).
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "tx/tdb.hh"
#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using isa::Assembler;
using isa::Program;

std::unique_ptr<sim::Machine>
runProgram(const Program &program,
           std::function<void(sim::Machine &)> setup = {})
{
    auto m = std::make_unique<sim::Machine>(smallConfig(1));
    if (setup)
        setup(*m);
    m->setProgram(0, &program);
    m->run();
    return m;
}

/**
 * A transaction that divides GR1 by GR2 with the given PIFC; the
 * handler gives up immediately and records CC in GR6.
 */
Program
divideTxProgram(std::uint8_t pifc)
{
    Assembler as;
    as.lhi(1, 42);
    as.lhi(2, 0);
    as.tbegin(0xFF, {.pifc = pifc});
    as.jnz("handler");
    as.dsgr(1, 2);
    as.tend();
    as.label("handler");
    as.halt();
    return as.finish();
}

TEST(Filtering, UnfilteredArithmeticGoesToOs)
{
    auto m = runProgram(divideTxProgram(0));
    EXPECT_EQ(m->os().countOf(tx::InterruptCode::FixedPointDivide),
              1u);
    EXPECT_EQ(m->cpu(0)
                  .stats()
                  .counter("tx.abort.program-interrupt")
                  .value(),
              1u);
    // Transient: the program-old PSW carries CC2 (paper §II.C).
    EXPECT_EQ(m->cpu(0).psw().cc, 2);
    EXPECT_TRUE(m->os().records()[0].fromTx);
}

TEST(Filtering, Pifc1FiltersArithmetic)
{
    auto m = runProgram(divideTxProgram(1));
    EXPECT_EQ(m->os().countOf(tx::InterruptCode::FixedPointDivide),
              0u);
    EXPECT_EQ(m->cpu(0)
                  .stats()
                  .counter("tx.abort.filtered-program-interrupt")
                  .value(),
              1u);
    EXPECT_EQ(m->cpu(0).psw().cc, 2);
}

TEST(Filtering, Pifc2FiltersArithmeticToo)
{
    auto m = runProgram(divideTxProgram(2));
    EXPECT_EQ(m->os().countOf(tx::InterruptCode::FixedPointDivide),
              0u);
}

TEST(Filtering, DecimalDataFilteredAtPifc1)
{
    Assembler as;
    as.lhi(1, 0xF); // invalid decimal digit
    as.lhi(2, 1);
    as.tbegin(0xFF, {.pifc = 1});
    as.jnz("handler");
    as.ap(1, 2);
    as.tend();
    as.label("handler");
    as.halt();
    auto m = runProgram(as.finish());
    EXPECT_EQ(m->os().countOf(tx::InterruptCode::DecimalData), 0u);
    EXPECT_EQ(m->cpu(0)
                  .stats()
                  .counter("tx.abort.filtered-program-interrupt")
                  .value(),
              1u);
}

/** TX page-fault program: loads from dataBase inside the TX. */
Program
pageFaultTxProgram(std::uint8_t pifc, bool fallback_touches_page)
{
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(0, 0); // retry count
    as.label("loop");
    as.tbegin(0xFF, {.pifc = pifc});
    as.jnz("handler");
    as.lg(1, 9);
    as.tend();
    as.j("done");
    as.label("handler");
    as.ahi(0, 1);
    as.cijnl(0, 6, "fallback");
    as.j("loop");
    as.label("fallback");
    if (fallback_touches_page)
        as.lg(1, 9); // non-transactional access resolves the fault
    as.label("done");
    as.halt();
    return as.finish();
}

TEST(Filtering, Pifc1DoesNotFilterPageFaults)
{
    // Group 3 needs PIFC 2; at PIFC 1 the OS sees the fault, pages
    // in, and the immediate retry succeeds.
    auto m = runProgram(pageFaultTxProgram(1, false),
                        [](sim::Machine &mm) {
                            mm.memory().write(dataBase, 9, 8);
                            mm.pageTable().markAbsent(dataBase);
                        });
    EXPECT_EQ(m->os().countOf(tx::InterruptCode::PageFault), 1u);
    EXPECT_EQ(m->cpu(0).gr(1), 9u);
    EXPECT_EQ(m->cpu(0).gr(0), 1u); // exactly one retry
}

TEST(Filtering, Pifc2FilteredFaultNeedsFallbackToResolve)
{
    // The paper's §II.C pitfall: a filtered page fault is never
    // reported, so the transaction keeps aborting until the
    // fallback path touches the page non-transactionally.
    auto m = runProgram(pageFaultTxProgram(2, true),
                        [](sim::Machine &mm) {
                            mm.memory().write(dataBase, 9, 8);
                            mm.pageTable().markAbsent(dataBase);
                        });
    // 6 filtered aborts, no TX page-fault reports, then the
    // fallback's plain LG faults into the OS once and resolves.
    EXPECT_EQ(m->cpu(0).gr(0), 6u);
    EXPECT_EQ(m->cpu(0)
                  .stats()
                  .counter("tx.abort.filtered-program-interrupt")
                  .value(),
              6u);
    EXPECT_EQ(m->os().countOf(tx::InterruptCode::PageFault), 1u);
    EXPECT_FALSE(m->os().records()[0].fromTx);
    EXPECT_EQ(m->cpu(0).gr(1), 9u);
}

TEST(Filtering, NestedPifcIsMax)
{
    // Outer PIFC 0, inner PIFC 1: the effective control is 1, so
    // the divide exception is filtered.
    Assembler as;
    as.lhi(1, 42);
    as.lhi(2, 0);
    as.tbegin(0xFF, {.pifc = 0});
    as.jnz("handler");
    as.tbegin(0xFF, {.pifc = 1});
    as.jnz("handler");
    as.dsgr(1, 2);
    as.tend();
    as.tend();
    as.label("handler");
    as.halt();
    auto m = runProgram(as.finish());
    EXPECT_EQ(m->os().countOf(tx::InterruptCode::FixedPointDivide),
              0u);
}

TEST(Filtering, InstructionFetchFaultsNeverFiltered)
{
    // Mark the page holding part of the transaction body absent:
    // even at PIFC 2 the ifetch fault must reach the OS (which
    // pages the text in so the retry can run).
    Assembler as;
    as.lhi(0, 0);
    as.label("loop");
    as.tbegin(0xFF, {.pifc = 2});
    as.jnz("handler");
    // Body landing on the next page (pad across the 4K boundary).
    for (int i = 0; i < 2100; ++i)
        as.nop();
    as.lhi(3, 77);
    as.tend();
    as.j("done");
    as.label("handler");
    as.ahi(0, 1);
    as.cijnl(0, 6, "done");
    as.j("loop");
    as.label("done");
    as.halt();
    const Program p = as.finish();
    // The LHI(3,77) sits well past the first page of the program.
    const Addr far_addr = p.labelAddr("done") - 8;
    auto m = runProgram(p, [&](sim::Machine &mm) {
        mm.pageTable().markAbsent(far_addr);
    });
    EXPECT_EQ(m->cpu(0).gr(3), 77u);
    EXPECT_GE(m->os().countOf(tx::InterruptCode::PageFault), 1u);
}

TEST(Filtering, ConstrainedTransactionsNeverFilter)
{
    // All exceptions in a constrained TX interrupt into the OS
    // (implicit PIFC 0); the OS pages in and the retry succeeds.
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.tbeginc(0xFF);
    as.lg(1, 9);
    as.tend();
    as.halt();
    auto m = runProgram(as.finish(), [](sim::Machine &mm) {
        mm.memory().write(dataBase, 3, 8);
        mm.pageTable().markAbsent(dataBase);
    });
    EXPECT_TRUE(m->cpu(0).halted());
    EXPECT_EQ(m->cpu(0).gr(1), 3u);
    EXPECT_EQ(m->os().countOf(tx::InterruptCode::PageFault), 1u);
    EXPECT_TRUE(m->os().records()[0].fromConstrained);
}

TEST(Filtering, TdbAccessibilityTestedAtTbegin)
{
    // TBEGIN performs an accessibility test for the TDB (paper
    // §III.B): a fault on the TDB page is taken before the
    // transaction starts, the OS resolves it, and the TBEGIN
    // re-executes.
    constexpr Addr tdb_addr = dataBase + 0x2000;
    Assembler as;
    as.la(8, 0, std::int64_t(tdb_addr));
    as.tbegin(0xFF, {.tdbBase = 8});
    as.jnz("handler");
    as.lhi(1, 5);
    as.tend();
    as.label("handler");
    as.halt();
    auto m = runProgram(as.finish(), [&](sim::Machine &mm) {
        mm.pageTable().markAbsent(tdb_addr);
    });
    EXPECT_EQ(m->cpu(0).gr(1), 5u);
    EXPECT_EQ(m->cpu(0).stats().counter("tx.commits").value(), 1u);
    EXPECT_EQ(m->os().countOf(tx::InterruptCode::PageFault), 1u);
    EXPECT_FALSE(m->os().records()[0].fromTx);
}

TEST(Filtering, PrefixAreaTdbCopyOnProgramInterrupt)
{
    // On an abort caused by an (unfiltered) program interruption, a
    // second TDB copy lands in the CPU prefix area (paper §II.E.1).
    auto m = runProgram(divideTxProgram(0));
    const tx::Tdb prefix =
        tx::Tdb::load(m->memory(), m->cpu(0).prefixTdbAddr());
    EXPECT_EQ(prefix.interruptCode,
              tx::InterruptCode::FixedPointDivide);
    EXPECT_EQ(prefix.abortCode,
              std::uint64_t(tx::AbortReason::ProgramInterrupt));
}

} // namespace
