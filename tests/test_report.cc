/** @file Unit tests for the bench report table and stat collection. */

#include <gtest/gtest.h>

#include <sstream>

#include "workload/report.hh"
#include "ztx_test_util.hh"

namespace {

using ztx::workload::SeriesTable;

TEST(SeriesTable, StoresValuesByRowAndSeries)
{
    SeriesTable t("CPUs", {"a", "b"});
    t.addRow(2, {1.0, 2.0});
    t.addRow(4, {3.0, 4.0});
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_DOUBLE_EQ(t.value(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(t.value(1, 1), 4.0);
}

TEST(SeriesTable, PrintsHeaderAndAlignedRows)
{
    SeriesTable t("CPUs", {"Lock", "TX"});
    t.addRow(2, {10.5, 20.25});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("CPUs"), std::string::npos);
    EXPECT_NE(out.find("Lock"), std::string::npos);
    EXPECT_NE(out.find("TX"), std::string::npos);
    EXPECT_NE(out.find("10.5"), std::string::npos);
    EXPECT_NE(out.find("20.25"), std::string::npos);
    // Two lines: header + one row.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(SeriesTable, EmptyTablePrintsHeaderOnly)
{
    SeriesTable t("x", {"y"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
}

TEST(CollectTxStats, SumsPerCpuCounters)
{
    using namespace ztx;
    using namespace ztx::test;

    isa::Assembler as;
    as.lhi(8, 20);
    as.label("loop");
    as.tbegin(0x00);
    as.jnz("skip");
    as.ahi(5, 1);
    as.tend();
    as.label("skip");
    as.brct(8, "loop");
    as.halt();
    const isa::Program p = as.finish();

    sim::Machine m(smallConfig(2));
    m.setProgramAll(&p);
    m.run();

    const auto tx = workload::collectTxStats(m);
    EXPECT_GE(tx.commits, 40u); // 20 committed regions per CPU
    EXPECT_GT(tx.instructions, 0u);
    std::uint64_t by_reason = 0;
    for (const auto &[reason, n] : tx.abortsByReason) {
        EXPECT_FALSE(reason.empty());
        by_reason += n;
    }
    EXPECT_EQ(by_reason, tx.aborts);
}

} // namespace
