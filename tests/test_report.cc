/** @file Unit tests for the bench report table. */

#include <gtest/gtest.h>

#include <sstream>

#include "workload/report.hh"

namespace {

using ztx::workload::SeriesTable;

TEST(SeriesTable, StoresValuesByRowAndSeries)
{
    SeriesTable t("CPUs", {"a", "b"});
    t.addRow(2, {1.0, 2.0});
    t.addRow(4, {3.0, 4.0});
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_DOUBLE_EQ(t.value(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(t.value(1, 1), 4.0);
}

TEST(SeriesTable, PrintsHeaderAndAlignedRows)
{
    SeriesTable t("CPUs", {"Lock", "TX"});
    t.addRow(2, {10.5, 20.25});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("CPUs"), std::string::npos);
    EXPECT_NE(out.find("Lock"), std::string::npos);
    EXPECT_NE(out.find("TX"), std::string::npos);
    EXPECT_NE(out.find("10.5"), std::string::npos);
    EXPECT_NE(out.find("20.25"), std::string::npos);
    // Two lines: header + one row.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(SeriesTable, EmptyTablePrintsHeaderOnly)
{
    SeriesTable t("x", {"y"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
}

} // namespace
