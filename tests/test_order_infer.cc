/**
 * @file
 * The version-order inference oracle (inject/order_infer): directed
 * accept/violation histories per ADT, every fallback route (pending
 * operations, missing version batches, duplicated and gapped write
 * versions, reads of uninstalled versions, cyclic edges, real-time
 * contradictions, corrupt-log replay failures refuted by the DFS),
 * DFS/order-infer equivalence and version-log jitter property
 * tests, the OPLOGV recording plumbing (zero cycle cost, commit
 * footprints, constrained-region legality, lock-path ordering), and
 * end-to-end workload runs asserting the inferred path is taken
 * deterministically — plus the op-log truncation and watchdog
 * pending-op regressions.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"
#include "inject/fault_plan.hh"
#include "inject/lincheck.hh"
#include "inject/order_infer.hh"
#include "isa/assembler.hh"
#include "workload/hashtable.hh"
#include "workload/list_set.hh"
#include "workload/op_log.hh"
#include "workload/queue.hh"
#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using inject::LinOp;
using inject::LinOpCode;
using inject::LinVerdict;
using inject::OrderInferReport;
using inject::VersionAccess;

/** Shared object ids for the hand-built histories. */
constexpr Addr objA = 0x1000;
constexpr Addr objB = 0x2000;

LinOp
mk(CpuId cpu, std::uint32_t seq, Cycles inv, Cycles resp,
   LinOpCode code, std::uint64_t arg, std::uint64_t result,
   std::vector<VersionAccess> accesses)
{
    LinOp op;
    op.cpu = cpu;
    op.seq = seq;
    op.invoke = inv;
    op.response = resp;
    op.code = code;
    op.arg = arg;
    op.result = result;
    op.accesses = std::move(accesses);
    return op;
}

LinOp
mkPending(CpuId cpu, std::uint32_t seq, Cycles inv, LinOpCode code,
          std::uint64_t arg)
{
    LinOp op;
    op.cpu = cpu;
    op.seq = seq;
    op.invoke = inv;
    op.pending = true;
    op.code = code;
    op.arg = arg;
    return op;
}

/** Read access of @p obj at @p ver. */
VersionAccess
rd(Addr obj, std::uint64_t ver)
{
    return {obj, ver, false};
}

/** Write access installing @p ver of @p obj. */
VersionAccess
wr(Addr obj, std::uint64_t ver)
{
    return {obj, ver, true};
}

// ---------------------------------------------------------------
// Directed histories: inference accepts and detects violations.
// ---------------------------------------------------------------

TEST(OrderInferSet, SequentialHistoryInfersAndAccepts)
{
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 10, LinOpCode::SetInsert, 5, 1, {wr(objA, 1)}),
        mk(0, 1, 20, 30, LinOpCode::SetLookup, 5, 1, {rd(objA, 1)}),
        mk(0, 2, 40, 50, LinOpCode::SetDelete, 5, 1, {wr(objA, 2)}),
        mk(0, 3, 60, 70, LinOpCode::SetLookup, 5, 0, {rd(objA, 2)}),
    };
    const OrderInferReport r = inject::inferSetLinearizable(h, {});
    EXPECT_TRUE(r.inferred) << r.fallbackReason;
    ASSERT_TRUE(r.verdict.checked) << r.verdict.reason;
    EXPECT_TRUE(r.verdict.linearizable) << r.verdict.reason;
    EXPECT_EQ(r.orderLength, 4u);
    EXPECT_EQ(r.versionRecords, 4u);
    EXPECT_EQ(r.programEdges, 3u);
    // W1->R1, R1->W2, W1->W2, W2->R2.
    EXPECT_EQ(r.versionEdges, 4u);
    // Replay is one spec apply per operation: linear, not a search.
    EXPECT_EQ(r.verdict.statesExplored, 4u);
}

TEST(OrderInferSet, EmptyHistoryAccepts)
{
    const OrderInferReport r =
        inject::inferSetLinearizable({}, {1, 2});
    EXPECT_TRUE(r.inferred);
    ASSERT_TRUE(r.verdict.checked);
    EXPECT_TRUE(r.verdict.linearizable);
}

TEST(OrderInferSet, VersionsResolveOverlappingWindows)
{
    // The lookup runs entirely inside the insert's window; the DFS
    // must branch to discover the order, the versions simply state
    // it: the lookup read version 1, so the insert came first.
    const std::vector<LinOp> first = {
        mk(0, 0, 0, 100, LinOpCode::SetInsert, 5, 1,
           {wr(objA, 1)}),
        mk(1, 0, 10, 20, LinOpCode::SetLookup, 5, 1,
           {rd(objA, 1)}),
    };
    const OrderInferReport a =
        inject::inferSetLinearizable(first, {});
    EXPECT_TRUE(a.inferred) << a.fallbackReason;
    EXPECT_TRUE(a.verdict.linearizable) << a.verdict.reason;
    ASSERT_EQ(a.order.size(), 2u);
    EXPECT_EQ(a.order[0], 0u); // insert linearized first

    // Same windows, lookup read version 0: it came first and the
    // miss is the only correct result.
    const std::vector<LinOp> second = {
        mk(0, 0, 0, 100, LinOpCode::SetInsert, 5, 1,
           {wr(objA, 1)}),
        mk(1, 0, 10, 20, LinOpCode::SetLookup, 5, 0,
           {rd(objA, 0)}),
    };
    const OrderInferReport b =
        inject::inferSetLinearizable(second, {});
    EXPECT_TRUE(b.inferred) << b.fallbackReason;
    EXPECT_TRUE(b.verdict.linearizable) << b.verdict.reason;
    ASSERT_EQ(b.order.size(), 2u);
    EXPECT_EQ(b.order[0], 1u); // lookup linearized first
}

TEST(OrderInferSet, LostUpdateIsADefinitiveViolation)
{
    // Both inserts of the same key claim they applied and the
    // version chain orders them: replaying the inferred order hits
    // the impossible second insert. The DFS refutation also fails
    // (no order explains it), so the violation stands as inferred.
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 10, LinOpCode::SetInsert, 7, 1, {wr(objA, 1)}),
        mk(1, 0, 20, 30, LinOpCode::SetInsert, 7, 1,
           {wr(objA, 2)}),
    };
    const OrderInferReport r = inject::inferSetLinearizable(h, {});
    EXPECT_TRUE(r.inferred) << r.fallbackReason;
    ASSERT_TRUE(r.verdict.checked);
    EXPECT_FALSE(r.verdict.linearizable);
    EXPECT_NE(r.verdict.reason.find("inferred serial order"),
              std::string::npos);
    ASSERT_FALSE(r.verdict.window.empty());
    EXPECT_EQ(r.verdict.window.front().cpu, 1u);
}

TEST(OrderInferQueue, FifoInfersAndViolationDetected)
{
    const std::vector<LinOp> fifo = {
        mk(0, 0, 0, 10, LinOpCode::QueueEnqueue, 1, 1,
           {wr(objA, 1)}),
        mk(0, 1, 20, 30, LinOpCode::QueueEnqueue, 2, 2,
           {wr(objA, 2)}),
        mk(1, 0, 40, 50, LinOpCode::QueueDequeue, 0, 1,
           {wr(objA, 3)}),
        mk(1, 1, 60, 70, LinOpCode::QueueDequeue, 0, 2,
           {wr(objA, 4)}),
        mk(1, 2, 80, 90, LinOpCode::QueueDequeue, 0, 0,
           {rd(objA, 4)}),
    };
    const OrderInferReport ok =
        inject::inferQueueLinearizable(fifo, {});
    EXPECT_TRUE(ok.inferred) << ok.fallbackReason;
    EXPECT_TRUE(ok.verdict.linearizable) << ok.verdict.reason;

    // Duplicate dequeue: one element observed twice.
    const std::vector<LinOp> dup = {
        mk(0, 0, 0, 10, LinOpCode::QueueEnqueue, 7, 7,
           {wr(objA, 1)}),
        mk(1, 0, 20, 30, LinOpCode::QueueDequeue, 0, 7,
           {wr(objA, 2)}),
        mk(2, 0, 40, 50, LinOpCode::QueueDequeue, 0, 7,
           {wr(objA, 3)}),
    };
    const OrderInferReport bad =
        inject::inferQueueLinearizable(dup, {});
    ASSERT_TRUE(bad.verdict.checked);
    EXPECT_FALSE(bad.verdict.linearizable);
}

TEST(OrderInferMap, PutGetInfers)
{
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 10, LinOpCode::MapPut, 3, 1, {wr(objA, 1)}),
        mk(1, 0, 20, 30, LinOpCode::MapGet, 3, 3, {rd(objA, 1)}),
        mk(1, 1, 40, 50, LinOpCode::MapGet, 4, 0, {rd(objB, 0)}),
    };
    const OrderInferReport r = inject::inferMapLinearizable(
        h, std::vector<std::uint64_t>(10, 0), 8, 2,
        [](std::uint64_t k) { return k % 8; });
    EXPECT_TRUE(r.inferred) << r.fallbackReason;
    ASSERT_TRUE(r.verdict.checked) << r.verdict.reason;
    EXPECT_TRUE(r.verdict.linearizable) << r.verdict.reason;
}

// ---------------------------------------------------------------
// Fallback routes: every history inference cannot vouch for must
// reach the DFS (and say why), never produce a wrong verdict.
// ---------------------------------------------------------------

TEST(OrderInferFallback, PendingOperationRoutesToDfs)
{
    const std::vector<LinOp> h = {
        mkPending(0, 0, 0, LinOpCode::SetInsert, 5),
        mk(1, 0, 10, 20, LinOpCode::SetLookup, 5, 1,
           {rd(objA, 1)}),
    };
    const OrderInferReport r = inject::inferSetLinearizable(h, {});
    EXPECT_FALSE(r.inferred);
    EXPECT_NE(r.fallbackReason.find("pending"), std::string::npos);
    // The DFS still produces the verdict: the in-flight insert may
    // have committed, which explains the lookup hit.
    ASSERT_TRUE(r.verdict.checked) << r.verdict.reason;
    EXPECT_TRUE(r.verdict.linearizable) << r.verdict.reason;
    EXPECT_EQ(r.verdict.numPending, 1u);
}

TEST(OrderInferFallback, MissingVersionBatchRoutesToDfs)
{
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 10, LinOpCode::SetInsert, 5, 1, {}),
    };
    const OrderInferReport r = inject::inferSetLinearizable(h, {});
    EXPECT_FALSE(r.inferred);
    EXPECT_NE(r.fallbackReason.find("no version records"),
              std::string::npos);
    EXPECT_TRUE(r.verdict.checked);
    EXPECT_TRUE(r.verdict.linearizable);
}

TEST(OrderInferFallback, DuplicateInstalledVersionRoutesToDfs)
{
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 10, LinOpCode::SetInsert, 5, 1, {wr(objA, 1)}),
        mk(1, 0, 20, 30, LinOpCode::SetDelete, 5, 1,
           {wr(objA, 1)}),
    };
    const OrderInferReport r = inject::inferSetLinearizable(h, {});
    EXPECT_FALSE(r.inferred);
    EXPECT_NE(r.fallbackReason.find("installed twice"),
              std::string::npos);
    EXPECT_TRUE(r.verdict.checked);
    EXPECT_TRUE(r.verdict.linearizable);
}

TEST(OrderInferFallback, VersionGapRoutesToDfs)
{
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 10, LinOpCode::SetInsert, 5, 1, {wr(objA, 1)}),
        mk(1, 0, 20, 30, LinOpCode::SetDelete, 5, 1,
           {wr(objA, 3)}),
    };
    const OrderInferReport r = inject::inferSetLinearizable(h, {});
    EXPECT_FALSE(r.inferred);
    EXPECT_NE(r.fallbackReason.find("1..W write chain"),
              std::string::npos);
}

TEST(OrderInferFallback, ReadOfUninstalledVersionRoutesToDfs)
{
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 10, LinOpCode::SetInsert, 5, 1, {wr(objA, 1)}),
        mk(1, 0, 20, 30, LinOpCode::SetLookup, 5, 1,
           {rd(objA, 5)}),
    };
    const OrderInferReport r = inject::inferSetLinearizable(h, {});
    EXPECT_FALSE(r.inferred);
    EXPECT_NE(r.fallbackReason.find("uninstalled version"),
              std::string::npos);
}

TEST(OrderInferFallback, VersionCycleRoutesToDfs)
{
    // op0 wrote A before op1 read it; op1 wrote B before op0 read
    // it: the version edges form a cycle no commit order satisfies.
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 100, LinOpCode::SetInsert, 1, 1,
           {wr(objA, 1), rd(objB, 1)}),
        mk(1, 0, 0, 100, LinOpCode::SetInsert, 2, 1,
           {wr(objB, 1), rd(objA, 1)}),
    };
    const OrderInferReport r = inject::inferSetLinearizable(h, {});
    EXPECT_FALSE(r.inferred);
    EXPECT_NE(r.fallbackReason.find("cycle"), std::string::npos);
    EXPECT_TRUE(r.verdict.checked);
    EXPECT_TRUE(r.verdict.linearizable);
}

TEST(OrderInferFallback, RealTimeContradictionRoutesToDfs)
{
    // The versions claim the insert committed before the lookup,
    // but the lookup responded before the insert was invoked. The
    // emission-time real-time check catches the contradiction and
    // the DFS (which trusts windows, not versions) decides.
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 10, LinOpCode::SetLookup, 5, 0, {rd(objA, 1)}),
        mk(1, 0, 20, 30, LinOpCode::SetInsert, 5, 1,
           {wr(objA, 1)}),
    };
    const OrderInferReport r = inject::inferSetLinearizable(h, {});
    EXPECT_FALSE(r.inferred);
    EXPECT_NE(r.fallbackReason.find("real-time"), std::string::npos);
    ASSERT_TRUE(r.verdict.checked);
    EXPECT_TRUE(r.verdict.linearizable);
}

TEST(OrderInferFallback, CorruptLogReplayFailureRefutedByDfs)
{
    // The history is genuinely linearizable (insert then lookup),
    // but a corrupted version log orders the lookup first, so the
    // replay fails. The DFS refutes the false violation and its
    // verdict wins, flagged as a version-log inconsistency.
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 100, LinOpCode::SetInsert, 5, 1,
           {wr(objA, 1)}),
        mk(1, 0, 10, 20, LinOpCode::SetLookup, 5, 1,
           {rd(objA, 0)}),
    };
    const OrderInferReport r = inject::inferSetLinearizable(h, {});
    EXPECT_FALSE(r.inferred);
    EXPECT_NE(r.fallbackReason.find("inconsistent"),
              std::string::npos);
    ASSERT_TRUE(r.verdict.checked);
    EXPECT_TRUE(r.verdict.linearizable);
}

TEST(OrderInferFallback, DfsChecksOversizedHistoriesIteratively)
{
    // The old recursive engine refused histories beyond a 20k-op
    // cap to protect the host stack. The iterative engine keeps its
    // branch frames on an explicit heap stack: a history well past
    // that cap comes back with a real verdict. Overlapping pairs
    // force a branch frame every other operation, driving the
    // stack thousands of frames deep — far beyond safe recursion.
    std::vector<LinOp> h;
    for (unsigned i = 0; i < 12'000; ++i) {
        const Cycles base = 40 * i;
        h.push_back(mk(0, i, base, base + 20,
                       LinOpCode::SetLookup, 7, 0, {}));
        h.push_back(mk(1, i, base + 10, base + 30,
                       LinOpCode::SetLookup, 7, 0, {}));
    }
    const LinVerdict dfs = inject::checkSetLinearizable(h, {});
    EXPECT_TRUE(dfs.checked) << dfs.reason;
    EXPECT_TRUE(dfs.linearizable);
}

TEST(OrderInferFallback, DfsGivesPendingHistoriesRealVerdicts)
{
    // An all-pending history branches at every operation — exactly
    // the shape the old size cap guarded against. It now returns a
    // real verdict, bounded by maxStates alone.
    std::vector<LinOp> big;
    for (unsigned i = 0; i < 1'000; ++i)
        big.push_back(mkPending(i, 0, i, LinOpCode::SetLookup, 7));
    const LinVerdict ok = inject::checkSetLinearizable(big, {});
    EXPECT_TRUE(ok.checked) << ok.reason;
    EXPECT_TRUE(ok.linearizable);

    // Refutation still works among pending noise: the second
    // lookup misses a key the first one saw, and the only insert
    // that could explain the hit has no matching delete — no
    // branch over the pending insert explains both results.
    const std::vector<LinOp> bad = {
        mkPending(0, 0, 0, LinOpCode::SetInsert, 42),
        mk(1, 0, 10, 20, LinOpCode::SetLookup, 42, 1, {}),
        mk(1, 1, 30, 40, LinOpCode::SetLookup, 42, 0, {}),
    };
    const LinVerdict v = inject::checkSetLinearizable(bad, {});
    ASSERT_TRUE(v.checked) << v.reason;
    EXPECT_FALSE(v.linearizable);
}

// ---------------------------------------------------------------
// Property tests: DFS equivalence and version-log jitter safety.
// ---------------------------------------------------------------

/** One generated operation of a serial set execution. */
struct SeqOp
{
    Cycles t = 0;
    LinOpCode code = LinOpCode::SetLookup;
    std::uint64_t arg = 0, result = 0;
};

/** A random valid serial set history against @p initial. */
std::vector<SeqOp>
generateSerial(Rng &rng, unsigned num_ops,
               std::vector<std::uint64_t> &initial)
{
    std::set<std::uint64_t> model;
    for (std::uint64_t k = 1; k <= 8; ++k) {
        if (rng.nextBool(0.5)) {
            model.insert(k);
            initial.push_back(k);
        }
    }
    std::vector<SeqOp> seq;
    for (unsigned i = 0; i < num_ops; ++i) {
        SeqOp op;
        op.t = 100 + 10 * Cycles(i);
        op.code = LinOpCode(rng.nextBounded(3));
        op.arg = 1 + rng.nextBounded(12);
        const bool present = model.count(op.arg) != 0;
        switch (op.code) {
          case LinOpCode::SetLookup:
            op.result = present ? 1 : 0;
            break;
          case LinOpCode::SetInsert:
            op.result = present ? 0 : 1;
            model.insert(op.arg);
            break;
          default:
            op.result = present ? 1 : 0;
            model.erase(op.arg);
            break;
        }
        seq.push_back(op);
    }
    return seq;
}

/**
 * Spread @p seq across CPUs with windows jittered up to +-15
 * cycles (overlapping neighbours) and a faithful version log:
 * every operation writes the shared object, so the version chain
 * pins the true serial order the windows no longer do.
 */
std::vector<LinOp>
concurrentWithVersions(Rng &rng, const std::vector<SeqOp> &seq)
{
    std::vector<LinOp> ops;
    std::vector<Cycles> cpu_last;
    std::vector<std::uint32_t> cpu_seq;
    std::uint64_t version = 0;
    for (const SeqOp &op : seq) {
        const Cycles inv = op.t - rng.nextBounded(16);
        const Cycles resp = op.t + rng.nextBounded(16);
        std::size_t cpu = cpu_last.size();
        for (std::size_t c = 0; c < cpu_last.size(); ++c) {
            if (cpu_last[c] <= inv) {
                cpu = c;
                break;
            }
        }
        if (cpu == cpu_last.size()) {
            cpu_last.push_back(0);
            cpu_seq.push_back(0);
        }
        cpu_last[cpu] = resp;
        ops.push_back(mk(CpuId(cpu), cpu_seq[cpu]++, inv, resp,
                         op.code, op.arg, op.result,
                         {wr(objA, ++version)}));
    }
    return ops;
}

TEST(OrderInferProperty, AgreesWithDfsOnSmallHistories)
{
    constexpr unsigned numOps = 24;
    constexpr unsigned rounds = 12;
    for (std::uint64_t round = 1; round <= rounds; ++round) {
        Rng rng(round * 0x9E3779B97F4A7C15ULL);
        std::vector<std::uint64_t> initial;
        const auto seq = generateSerial(rng, numOps, initial);
        const auto ops = concurrentWithVersions(rng, seq);

        const OrderInferReport inf =
            inject::inferSetLinearizable(ops, initial);
        const LinVerdict dfs =
            inject::checkSetLinearizable(ops, initial);
        ASSERT_TRUE(inf.inferred)
            << "round " << round << ": " << inf.fallbackReason;
        ASSERT_TRUE(inf.verdict.checked && dfs.checked)
            << "round " << round;
        EXPECT_TRUE(inf.verdict.linearizable)
            << "round " << round << ": " << inf.verdict.reason;
        EXPECT_EQ(inf.verdict.linearizable, dfs.linearizable)
            << "round " << round;

        // One flipped result: both oracles must reject.
        auto mutated = ops;
        mutated[rng.nextBounded(numOps)].result ^= 1;
        const OrderInferReport bad_inf =
            inject::inferSetLinearizable(mutated, initial);
        const LinVerdict bad_dfs =
            inject::checkSetLinearizable(mutated, initial);
        ASSERT_TRUE(bad_inf.verdict.checked && bad_dfs.checked)
            << "round " << round;
        EXPECT_FALSE(bad_inf.verdict.linearizable)
            << "round " << round;
        EXPECT_FALSE(bad_dfs.linearizable) << "round " << round;
    }
}

TEST(OrderInferProperty, JitteredVersionLogNeverWrongVerdict)
{
    // Corrupt the version log of a known-linearizable history in
    // every way the recorder could malfunction. Whatever route the
    // oracle takes — fallback, refuted replay, or an inferred order
    // that happens to survive — a checked verdict must never call
    // the (linearizable) history a violation.
    constexpr unsigned numOps = 20;
    constexpr unsigned rounds = 12;
    for (std::uint64_t round = 1; round <= rounds; ++round) {
        Rng rng(round * 0xD1B54A32D192ED03ULL);
        std::vector<std::uint64_t> initial;
        const auto seq = generateSerial(rng, numOps, initial);
        const auto ops = concurrentWithVersions(rng, seq);

        for (const char *mode :
             {"reorder", "duplicate", "gap", "drop"}) {
            auto jittered = ops;
            const std::string m = mode;
            if (m == "reorder") {
                // Swap the versions two operations recorded.
                const unsigned a = rng.nextBounded(numOps);
                const unsigned b = rng.nextBounded(numOps);
                std::swap(jittered[a].accesses[0].version,
                          jittered[b].accesses[0].version);
            } else if (m == "duplicate") {
                const unsigned a = rng.nextBounded(numOps);
                jittered[a].accesses.push_back(
                    jittered[a].accesses[0]);
            } else if (m == "gap") {
                // Re-install the top version one higher.
                unsigned top = 0;
                for (unsigned i = 1; i < numOps; ++i) {
                    if (jittered[i].accesses[0].version >
                        jittered[top].accesses[0].version)
                        top = i;
                }
                ++jittered[top].accesses[0].version;
            } else {
                jittered[rng.nextBounded(numOps)].accesses.clear();
            }

            const OrderInferReport r =
                inject::inferSetLinearizable(jittered, initial);
            if (r.verdict.checked) {
                EXPECT_TRUE(r.verdict.linearizable)
                    << "round " << round << " mode " << mode
                    << ": " << r.verdict.reason;
            } else {
                ADD_FAILURE_AT(__FILE__, __LINE__)
                    << "round " << round << " mode " << mode
                    << ": unchecked: " << r.verdict.reason;
            }
        }
    }
}

// ---------------------------------------------------------------
// OPLOGV recording plumbing through a real machine.
// ---------------------------------------------------------------

TEST(OpLogVIsa, CommitRecordsFootprintVersionsAtZeroCost)
{
    // Inside a (constrained) transaction OPLOGV arms footprint
    // reporting: the commit batches the region's lines onto the
    // bracketing operation record. The pseudo-ops are free.
    const auto build = [](bool logged) {
        isa::Assembler as;
        as.la(9, 0, std::int64_t(dataBase));
        if (logged)
            as.oplogb(1, 9);
        as.tbeginc(0x00);
        as.lhi(3, 7);
        as.stg(3, 9, 0);
        if (logged)
            as.oplogv(9, 0);
        as.tend();
        if (logged)
            as.oploge(3);
        as.halt();
        return as.finish();
    };

    const isa::Program plain = build(false);
    const isa::Program logged = build(true);

    sim::Machine m1(smallConfig(1));
    m1.setProgram(0, &plain);
    const Cycles base = m1.run();

    workload::OpLog log(1);
    sim::Machine m2(smallConfig(1));
    m2.cpu(0).setOpRecorder(&log);
    m2.setProgram(0, &logged);
    const Cycles with_log = m2.run();

    EXPECT_EQ(base, with_log);
    EXPECT_EQ(log.protocolErrors(), 0u);
    ASSERT_EQ(log.ops(0).size(), 1u);
    const workload::OpRecord &rec = log.ops(0).front();
    EXPECT_TRUE(rec.completed);
    ASSERT_FALSE(rec.accesses.empty());
    bool wrote_line = false;
    for (const VersionAccess &a : rec.accesses) {
        if (a.objid == dataBase && a.write && a.version == 1)
            wrote_line = true;
    }
    EXPECT_TRUE(wrote_line)
        << "stored line missing from the commit footprint";
    EXPECT_EQ(log.versionRecords(), rec.accesses.size());
}

TEST(OpLogVIsa, OutsideTxRecordsLockLineWrite)
{
    // On the lock path OPLOGV records a single write of the lock
    // line: lock regions join the lock's version chain, totally
    // ordering them against each other and against elided regions
    // (which read the lock word into their footprint).
    isa::Assembler as;
    as.la(10, 0, std::int64_t(dataBase + 0x1000));
    as.oplogb(1, 10);
    as.oplogv(10, 0);
    as.oploge(10);
    as.oplogb(1, 10);
    as.oplogv(10, 0);
    as.oploge(10);
    as.halt();
    const isa::Program p = as.finish();

    workload::OpLog log(1);
    sim::Machine m(smallConfig(1));
    m.cpu(0).setOpRecorder(&log);
    m.setProgram(0, &p);
    m.run();

    ASSERT_EQ(log.ops(0).size(), 2u);
    std::uint64_t want = 1;
    for (const workload::OpRecord &rec : log.ops(0)) {
        ASSERT_EQ(rec.accesses.size(), 1u);
        EXPECT_EQ(rec.accesses[0].objid, dataBase + 0x1000);
        EXPECT_TRUE(rec.accesses[0].write);
        EXPECT_EQ(rec.accesses[0].version, want++);
    }
}

TEST(OpLogVIsa, WithoutRecorderIsANop)
{
    isa::Assembler as;
    as.lhi(1, 5);
    as.oplogv(1, 0);
    as.halt();
    const isa::Program p = as.finish();

    sim::Machine m(smallConfig(1));
    m.setProgram(0, &p);
    m.run();
    EXPECT_TRUE(m.allHalted());
    EXPECT_EQ(m.cpu(0).gr(1), 5u);
}

TEST(OpLogVIsa, PendingAtWatchdogHaltRoutesToDfsFallback)
{
    // Halt the machine mid-operation: the op is pending, there is
    // no commit record, and the order-inference oracle must hand
    // the history to the DFS, which branches over both outcomes.
    isa::Assembler as;
    as.lhi(1, 5);
    as.oplogb(std::uint32_t(inject::LinOpCode::SetInsert), 1);
    as.label("spin");
    as.j("spin"); // livelock inside the operation
    const isa::Program p = as.finish();

    sim::MachineConfig cfg = smallConfig(1);
    cfg.watchdogCycles = 5'000;
    sim::Machine m(cfg);
    workload::OpLog log(1);
    m.cpu(0).setOpRecorder(&log);
    m.setProgram(0, &p);
    m.run(1'000'000);
    ASSERT_TRUE(m.watchdogFired());

    const auto history = log.history(
        [](const workload::OpRecord &rec, LinOp &op) {
            op.code = LinOpCode(rec.code);
            op.arg = rec.a0;
            op.result = rec.result;
        });
    ASSERT_EQ(history.size(), 1u);
    EXPECT_TRUE(history[0].pending);

    const OrderInferReport r = workload::checkLoggedHistoryOrdered(
        log,
        [&] { return inject::inferSetLinearizable(history, {}); });
    EXPECT_FALSE(r.inferred);
    EXPECT_NE(r.fallbackReason.find("pending"), std::string::npos);
    ASSERT_TRUE(r.verdict.checked) << r.verdict.reason;
    EXPECT_TRUE(r.verdict.linearizable) << r.verdict.reason;
    EXPECT_EQ(r.verdict.numPending, 1u);
}

// ---------------------------------------------------------------
// End-to-end workload runs.
// ---------------------------------------------------------------

TEST(OrderInferWorkload, ListSetElisionInfersDeterministically)
{
    workload::ListSetBenchConfig cfg;
    cfg.cpus = 4;
    cfg.useElision = true;
    cfg.iterations = 60;
    cfg.opLog = true;
    cfg.machine = smallConfig(4);

    const auto a = workload::runListSetBench(cfg);
    EXPECT_TRUE(a.oracle.ok) << a.oracle.summary();
    EXPECT_TRUE(a.orderInfer.inferred)
        << a.orderInfer.fallbackReason;
    ASSERT_TRUE(a.lincheck.checked) << a.lincheck.reason;
    EXPECT_TRUE(a.lincheck.linearizable) << a.lincheck.reason;
    EXPECT_EQ(a.orderInfer.orderLength, 4u * cfg.iterations);
    EXPECT_GT(a.orderInfer.versionRecords, 0u);
    EXPECT_GT(a.orderInfer.versionEdges, 0u);

    // Same seed, same machine: the inferred schedule is
    // bit-identical across runs.
    const auto b = workload::runListSetBench(cfg);
    EXPECT_EQ(a.orderInfer.order, b.orderInfer.order);
    EXPECT_EQ(a.orderInfer.versionEdges, b.orderInfer.versionEdges);
}

TEST(OrderInferWorkload, ListSetLockPathInfers)
{
    // The spin-lock path has no transactions at all: the lock-line
    // writes OPLOGV records are the entire version order.
    workload::ListSetBenchConfig cfg;
    cfg.cpus = 4;
    cfg.useElision = false;
    cfg.iterations = 40;
    cfg.opLog = true;
    cfg.machine = smallConfig(4);
    const auto res = workload::runListSetBench(cfg);
    EXPECT_TRUE(res.oracle.ok) << res.oracle.summary();
    EXPECT_TRUE(res.orderInfer.inferred)
        << res.orderInfer.fallbackReason;
    EXPECT_TRUE(res.lincheck.linearizable) << res.lincheck.reason;
}

TEST(OrderInferWorkload, ConstrainedQueueInfers)
{
    // OPLOGV inside TBEGINC: the pseudo-op must stay legal in
    // constrained regions (unlike OPLOGB/OPLOGE) or enabling the
    // log would change which regions are constrained-legal.
    workload::QueueBenchConfig cfg;
    cfg.cpus = 4;
    cfg.useConstrainedTx = true;
    cfg.iterations = 50;
    cfg.opLog = true;
    cfg.machine = smallConfig(4);
    const auto res = workload::runQueueBench(cfg);
    EXPECT_TRUE(res.oracle.ok) << res.oracle.summary();
    EXPECT_TRUE(res.orderInfer.inferred)
        << res.orderInfer.fallbackReason;
    ASSERT_TRUE(res.lincheck.checked) << res.lincheck.reason;
    EXPECT_TRUE(res.lincheck.linearizable) << res.lincheck.reason;
    EXPECT_EQ(res.orderInfer.orderLength, 8u * cfg.iterations);
}

TEST(OrderInferWorkload, HashTableElisionInfers)
{
    workload::HashTableBenchConfig cfg;
    cfg.cpus = 4;
    cfg.useElision = true;
    cfg.iterations = 60;
    cfg.opLog = true;
    cfg.machine = smallConfig(4);
    const auto res = workload::runHashTableBench(cfg);
    EXPECT_TRUE(res.oracle.ok) << res.oracle.summary();
    EXPECT_TRUE(res.orderInfer.inferred)
        << res.orderInfer.fallbackReason;
    ASSERT_TRUE(res.lincheck.checked) << res.lincheck.reason;
    EXPECT_TRUE(res.lincheck.linearizable) << res.lincheck.reason;
}

TEST(OrderInferWorkload, RingOverflowUnderChaosYieldsTruncated)
{
    // Satellite regression: a dropped() > 0 history must come back
    // as the explicit `truncated` verdict — never ok, never a
    // violation — and must not reach either oracle.
    inject::FaultPlan plan;
    plan.spuriousAbortRate = 0.01;
    workload::ListSetBenchConfig cfg;
    cfg.cpus = 4;
    cfg.useElision = true;
    cfg.iterations = 100;
    cfg.opLog = true;
    cfg.opLogCapacity = 8; // 100 ops/cpu: guaranteed overflow
    cfg.machine = smallConfig(4);
    cfg.machine.faults = plan;
    cfg.machine.watchdogCycles = 2'000'000;
    const auto res = workload::runListSetBench(cfg);

    EXPECT_TRUE(res.lincheck.truncated);
    EXPECT_FALSE(res.lincheck.checked);
    EXPECT_FALSE(res.lincheck.linearizable);
    EXPECT_FALSE(res.orderInfer.inferred);
    EXPECT_NE(res.orderInfer.fallbackReason.find("truncated"),
              std::string::npos);
    // Truncation is not a structural violation: the state oracle
    // still passes.
    EXPECT_TRUE(res.oracle.ok) << res.oracle.summary();
}

} // namespace
