/** @file Lock generators: mutual exclusion and reader concurrency. */

#include <gtest/gtest.h>

#include "locks/lock_gen.hh"
#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using isa::Assembler;
using isa::Program;

constexpr Addr lockAddr = dataBase + 0x10000;

/** Locked increment loop: GR9 data, GR10 lock. */
Program
lockedIncrementProgram(unsigned iterations)
{
    locks::LockRegs regs;
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.la(10, 0, std::int64_t(lockAddr));
    as.lhi(8, std::int64_t(iterations));
    as.label("loop");
    locks::SpinLock::emitAcquire(as, 10, 0, regs, "lk");
    as.lg(3, 9);
    as.ahi(3, 1);
    as.stg(3, 9);
    locks::SpinLock::emitRelease(as, 10, 0, regs);
    as.brct(8, "loop");
    as.halt();
    return as.finish();
}

TEST(SpinLock, SingleCpuIncrements)
{
    const Program p = lockedIncrementProgram(50);
    sim::Machine m(smallConfig(1));
    m.setProgram(0, &p);
    m.run();
    EXPECT_EQ(m.peekMem(dataBase, 8), 50u);
    EXPECT_EQ(m.peekMem(lockAddr, 8), 0u); // released
}

TEST(SpinLock, MutualExclusionAcrossCpus)
{
    constexpr unsigned iters = 300;
    const Program p = lockedIncrementProgram(iters);
    for (const unsigned cpus : {2u, 4u, 8u}) {
        sim::Machine m(smallConfig(cpus));
        for (unsigned i = 0; i < cpus; ++i)
            m.setProgram(i, &p);
        m.run();
        EXPECT_TRUE(m.allHalted()) << cpus;
        EXPECT_EQ(m.peekMem(dataBase, 8), Addr(cpus) * iters)
            << cpus;
        EXPECT_EQ(m.peekMem(lockAddr, 8), 0u);
    }
}

/** RW-lock writer increment / reader observe programs. */
Program
rwWriterProgram(unsigned iterations)
{
    locks::LockRegs regs;
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.la(10, 0, std::int64_t(lockAddr));
    as.lhi(8, std::int64_t(iterations));
    as.label("loop");
    locks::RwLock::emitWriteAcquire(as, 10, 0, regs, "w");
    // Update two lines under the write lock; readers must never see
    // them out of sync.
    as.lg(3, 9);
    as.ahi(3, 1);
    as.stg(3, 9);
    as.stg(3, 9, 256);
    locks::RwLock::emitWriteRelease(as, 10, 0, regs);
    as.brct(8, "loop");
    as.halt();
    return as.finish();
}

Program
rwReaderProgram(unsigned iterations)
{
    locks::LockRegs regs;
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.la(10, 0, std::int64_t(lockAddr));
    as.lhi(8, std::int64_t(iterations));
    as.lhi(7, 0); // mismatch counter
    as.label("loop");
    locks::RwLock::emitReadAcquire(as, 10, 0, regs, "r");
    as.lg(3, 9);
    as.lg(4, 9, 256);
    locks::RwLock::emitReadRelease(as, 10, 0, regs, "rr");
    as.sgr(3, 4);
    as.cghi(3, 0);
    as.jz("ok");
    as.ahi(7, 1);
    as.label("ok");
    as.brct(8, "loop");
    as.halt();
    return as.finish();
}

TEST(RwLock, ReadersNeverSeeTornWrites)
{
    const Program writer = rwWriterProgram(200);
    const Program reader = rwReaderProgram(200);
    sim::Machine m(smallConfig(4));
    m.setProgram(0, &writer);
    m.setProgram(1, &reader);
    m.setProgram(2, &reader);
    m.setProgram(3, &reader);
    m.run();
    EXPECT_TRUE(m.allHalted());
    EXPECT_EQ(m.peekMem(dataBase, 8), 200u);
    EXPECT_EQ(m.peekMem(dataBase + 256, 8), 200u);
    EXPECT_EQ(m.cpu(1).gr(7), 0u);
    EXPECT_EQ(m.cpu(2).gr(7), 0u);
    EXPECT_EQ(m.cpu(3).gr(7), 0u);
    EXPECT_EQ(m.peekMem(lockAddr, 8), 0u);
}

TEST(RwLock, WriterExcludesWriters)
{
    const Program writer = rwWriterProgram(200);
    sim::Machine m(smallConfig(2));
    m.setProgram(0, &writer);
    m.setProgram(1, &writer);
    m.run();
    EXPECT_EQ(m.peekMem(dataBase, 8), 400u);
}

} // namespace
