/**
 * @file
 * The fault-injection subsystem (src/inject): consistency-oracle
 * unit tests on hand-built structures (including corrupted ones),
 * seeded bit-identical replay of chaotic runs, the forward-progress
 * watchdog, the constrained-retry escalation ladder under injected
 * aborts, capacity squeezes, delayed XI responses, and the bounded
 * PPA delay window.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "inject/fault_injector.hh"
#include "inject/fault_plan.hh"
#include "inject/oracle.hh"
#include "mem/main_memory.hh"
#include "millicode/millicode.hh"
#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using isa::Assembler;
using isa::Program;

/** Constrained increment of a shared counter, @p iterations times. */
Program
constrainedIncrementProgram(unsigned iterations)
{
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(8, std::int64_t(iterations));
    as.label("loop");
    as.tbeginc(0xFF);
    as.lg(1, 9);
    as.ahi(1, 1);
    as.stg(1, 9);
    as.tend();
    as.brct(8, "loop");
    as.halt();
    return as.finish();
}

// ---------------------------------------------------------------
// Consistency oracle: hand-built structures, valid and corrupted.
// ---------------------------------------------------------------

class OracleListSet : public ::testing::Test
{
  protected:
    static constexpr Addr sentinel = 0x1000;
    static constexpr Addr nodeA = 0x2000;
    static constexpr Addr nodeB = 0x3000;

    void
    SetUp() override
    {
        // sentinel -> (10) -> (20) -> null
        mem.write(sentinel + 8, nodeA, 8);
        mem.write(nodeA + 0, 10, 8);
        mem.write(nodeA + 8, nodeB, 8);
        mem.write(nodeB + 0, 20, 8);
        mem.write(nodeB + 8, 0, 8);
    }

    mem::MainMemory mem;
};

TEST_F(OracleListSet, ValidListPasses)
{
    const auto rep = inject::checkListSet(mem, true, sentinel, 2);
    EXPECT_TRUE(rep.ok) << rep.summary();
    EXPECT_EQ(rep.summary(), "ok");
}

TEST_F(OracleListSet, UnsortedKeysCaught)
{
    mem.write(nodeA + 0, 30, 8); // 30 before 20: not ascending
    const auto rep = inject::checkListSet(mem, true, sentinel, 2);
    EXPECT_FALSE(rep.ok);
}

TEST_F(OracleListSet, DuplicateKeyCaught)
{
    mem.write(nodeB + 0, 10, 8); // strict ascent also rejects ties
    EXPECT_FALSE(inject::checkListSet(mem, true, sentinel, 2).ok);
}

TEST_F(OracleListSet, WrongLengthCaught)
{
    EXPECT_FALSE(inject::checkListSet(mem, true, sentinel, 3).ok);
}

TEST_F(OracleListSet, CycleCaughtWithoutHanging)
{
    mem.write(nodeB + 8, nodeA, 8); // B -> A: a cycle
    EXPECT_FALSE(inject::checkListSet(mem, true, sentinel, 2).ok);
}

class OracleQueue : public ::testing::Test
{
  protected:
    static constexpr Addr headPtr = 0x100;
    static constexpr Addr tailPtr = 0x108;
    static constexpr Addr dummy = 0x1000;
    static constexpr Addr nodeA = 0x2000;
    static constexpr Addr nodeB = 0x3000;

    void
    SetUp() override
    {
        // dummy -> A -> B -> null; head = dummy, tail = B.
        mem.write(headPtr, dummy, 8);
        mem.write(tailPtr, nodeB, 8);
        mem.write(dummy + 8, nodeA, 8);
        mem.write(nodeA + 0, 1, 8);
        mem.write(nodeA + 8, nodeB, 8);
        mem.write(nodeB + 0, 2, 8);
        mem.write(nodeB + 8, 0, 8);
    }

    mem::MainMemory mem;
};

TEST_F(OracleQueue, ValidQueuePasses)
{
    const auto rep = inject::checkQueue(mem, true, headPtr, tailPtr, 2);
    EXPECT_TRUE(rep.ok) << rep.summary();
}

TEST_F(OracleQueue, NullHeadCaught)
{
    mem.write(headPtr, 0, 8);
    EXPECT_FALSE(inject::checkQueue(mem, true, headPtr, tailPtr, 2).ok);
}

TEST_F(OracleQueue, StaleTailCaught)
{
    mem.write(tailPtr, nodeA, 8); // tail is not the last node
    EXPECT_FALSE(inject::checkQueue(mem, true, headPtr, tailPtr, 2).ok);
}

TEST_F(OracleQueue, DanglingTailNextCaught)
{
    mem.write(nodeB + 8, 0xDEAD00, 8); // tail->next != null
    EXPECT_FALSE(inject::checkQueue(mem, true, headPtr, tailPtr, 2).ok);
}

TEST_F(OracleQueue, WrongLengthCaught)
{
    EXPECT_FALSE(inject::checkQueue(mem, true, headPtr, tailPtr, 1).ok);
}

TEST_F(OracleQueue, CycleCaughtWithoutHanging)
{
    mem.write(nodeB + 8, dummy, 8);
    EXPECT_FALSE(inject::checkQueue(mem, true, headPtr, tailPtr, 2).ok);
}

class OracleHashTable : public ::testing::Test
{
  protected:
    static constexpr Addr base = 0x10000;
    static constexpr unsigned buckets = 8;
    static constexpr unsigned maxProbes = 2;

    static std::uint64_t
    bucketOf(std::uint64_t key)
    {
        return key % buckets;
    }

    void
    put(unsigned slot, std::uint64_t key, std::uint64_t value)
    {
        mem.write(base + Addr(slot) * 256 + 0, key, 8);
        mem.write(base + Addr(slot) * 256 + 8, value, 8);
    }

    inject::OracleReport
    check(std::int64_t min_occ, std::int64_t max_occ)
    {
        return inject::checkHashTable(mem, true, base, buckets,
                                      maxProbes,
                                      bucketOf, min_occ, max_occ);
    }

    mem::MainMemory mem;
};

TEST_F(OracleHashTable, ValidTablePasses)
{
    put(3, 3, 3);
    put(4, 3 + buckets, 3 + buckets); // probed one past bucket 3
    const auto rep = check(2, 2);
    EXPECT_TRUE(rep.ok) << rep.summary();
}

TEST_F(OracleHashTable, CorruptValueCaught)
{
    put(3, 3, 99); // workload invariant is value == key
    EXPECT_FALSE(check(0, 8).ok);
}

TEST_F(OracleHashTable, DuplicateKeyCaught)
{
    put(3, 3, 3);
    put(4, 3, 3); // same key claimed twice (lost isolation)
    EXPECT_FALSE(check(0, 8).ok);
}

TEST_F(OracleHashTable, KeyOutsideProbeWindowCaught)
{
    put(6, 3, 3); // bucket 3, window [3, 5)
    EXPECT_FALSE(check(0, 8).ok);
}

TEST_F(OracleHashTable, OccupancyBoundsEnforced)
{
    put(3, 3, 3);
    EXPECT_FALSE(check(2, 8).ok); // fewer than the prefill floor
    EXPECT_FALSE(check(0, 0).ok); // more than the key space
}

// A structural walk over a machine with CPUs still running would
// see mid-flight transactional state: every checker must refuse it
// outright, even when the structure itself happens to be valid.
TEST(OracleHaltGuard, MidFlightWalkRejected)
{
    mem::MainMemory mem;
    // Valid one-node list: sentinel -> (10) -> null.
    mem.write(0x1000 + 8, 0x2000, 8);
    mem.write(0x2000 + 0, 10, 8);
    mem.write(0x2000 + 8, 0, 8);
    ASSERT_TRUE(inject::checkListSet(mem, true, 0x1000, 1).ok);
    const auto list = inject::checkListSet(mem, false, 0x1000, 1);
    EXPECT_FALSE(list.ok);
    EXPECT_NE(list.summary().find("still running"),
              std::string::npos);

    // Valid empty queue: head = tail = dummy, dummy->next = null.
    mem.write(0x100, 0x3000, 8);
    mem.write(0x108, 0x3000, 8);
    mem.write(0x3000 + 8, 0, 8);
    ASSERT_TRUE(inject::checkQueue(mem, true, 0x100, 0x108, 0).ok);
    EXPECT_FALSE(inject::checkQueue(mem, false, 0x100, 0x108, 0).ok);

    // Valid empty hash table.
    const auto mod8 = [](std::uint64_t k) { return k % 8; };
    ASSERT_TRUE(
        inject::checkHashTable(mem, true, 0x10000, 8, 2, mod8, 0, 8)
            .ok);
    EXPECT_FALSE(
        inject::checkHashTable(mem, false, 0x10000, 8, 2, mod8, 0, 8)
            .ok);
}

// ---------------------------------------------------------------
// Seeded replay: a chaotic run is bit-identical across machines.
// ---------------------------------------------------------------

TEST(Inject, ChaoticRunReplaysBitIdentically)
{
    inject::FaultPlan plan;
    plan.spuriousAbortRate = 0.01;
    plan.xiStormRate = 0.01;
    plan.capacitySqueezeRate = 0.002;
    plan.squeezeDuration = 500;
    plan.interruptStormRate = 0.002;
    plan.delayedXiRate = 0.3;

    const Program p = constrainedIncrementProgram(40);
    const auto run = [&] {
        sim::MachineConfig cfg = smallConfig(2);
        cfg.faults = plan;
        cfg.watchdogCycles = 2'000'000;
        sim::Machine m(cfg);
        m.setProgram(0, &p);
        m.setProgram(1, &p);
        m.run();
        EXPECT_TRUE(m.allHalted());
        EXPECT_EQ(m.peekMem(dataBase, 8), 80u);
        std::ostringstream out;
        m.dumpStatsJson(out);
        return out.str();
    };

    const std::string first = run();
    const std::string second = run();
    EXPECT_EQ(first, second);
    // The dump proves the injector actually did something.
    EXPECT_NE(first.find("\"inject\""), std::string::npos);
}

TEST(Inject, PlanSeedOverridesMachineDerivation)
{
    inject::FaultPlan plan;
    plan.spuriousAbortRate = 0.05;

    const Program p = constrainedIncrementProgram(30);
    const auto spuriousAborts = [&](std::uint64_t plan_seed,
                                    std::uint64_t machine_seed) {
        sim::MachineConfig cfg = smallConfig(1);
        cfg.faults = plan;
        cfg.faults.seed = plan_seed;
        cfg.seed = machine_seed;
        sim::Machine m(cfg);
        m.setProgram(0, &p);
        m.run();
        EXPECT_EQ(m.peekMem(dataBase, 8), 30u);
        return m.cpu(0)
            .stats()
            .counter("inject.spurious_aborts")
            .value();
    };

    // An explicit plan seed pins the fault sequence regardless of
    // the machine seed; with seed 0 the machine seed matters.
    EXPECT_EQ(spuriousAborts(77, 1), spuriousAborts(77, 2));
}

// ---------------------------------------------------------------
// Forward-progress watchdog.
// ---------------------------------------------------------------

TEST(Watchdog, FiresOnLivelockAndDumpsDiagnosis)
{
    Assembler as;
    as.label("spin");
    as.j("spin"); // no commit, no region close, no halt: livelock
    const Program p = as.finish();

    sim::MachineConfig cfg = smallConfig(1);
    cfg.watchdogCycles = 5'000;
    sim::Machine m(cfg);
    m.setProgram(0, &p);
    const Cycles elapsed = m.run(1'000'000);

    EXPECT_TRUE(m.watchdogFired());
    EXPECT_FALSE(m.allHalted());
    EXPECT_LT(elapsed, 1'000'000u); // stopped, not timed out
    EXPECT_GE(elapsed, 5'000u);
    EXPECT_EQ(m.stats().counter("watchdog.fired").value(), 1u);

    const std::string report = m.watchdogReport().dump();
    EXPECT_NE(report.find("ztx.watchdog"), std::string::npos);
    EXPECT_NE(report.find("progress_events"), std::string::npos);
    EXPECT_NE(report.find("ladder"), std::string::npos);
}

TEST(Watchdog, StaysQuietOnHealthyRun)
{
    const Program p = constrainedIncrementProgram(50);
    sim::MachineConfig cfg = smallConfig(2);
    cfg.watchdogCycles = 50'000;
    sim::Machine m(cfg);
    m.setProgram(0, &p);
    m.setProgram(1, &p);
    m.run();
    EXPECT_TRUE(m.allHalted());
    EXPECT_FALSE(m.watchdogFired());
    EXPECT_EQ(m.peekMem(dataBase, 8), 100u);
}

TEST(Watchdog, CatchesIntentionallyBrokenInjection)
{
    // Negative test for the whole harness: an injection campaign so
    // broken it denies progress entirely (every transactional step
    // spuriously aborted) must be caught by the watchdog rather
    // than hang — proving the safety nets are actually armed.
    inject::FaultPlan plan;
    plan.spuriousAbortRate = 1.0;

    const Program p = constrainedIncrementProgram(5);
    sim::MachineConfig cfg = smallConfig(1);
    cfg.faults = plan;
    cfg.watchdogCycles = 20'000;
    sim::Machine m(cfg);
    m.setProgram(0, &p);
    m.run(10'000'000);

    EXPECT_TRUE(m.watchdogFired());
    EXPECT_EQ(m.peekMem(dataBase, 8), 0u); // never committed
    const std::string report = m.watchdogReport().dump();
    EXPECT_NE(report.find("fault_plan"), std::string::npos);
}

// ---------------------------------------------------------------
// Escalation ladder under injected aborts (paper §III.E).
// ---------------------------------------------------------------

TEST(Inject, ConstrainedLadderEscalatesAndRecovers)
{
    // Heavy spurious-abort pressure forces constrained retries all
    // the way up the ladder: random delays, reduced speculation,
    // then broadcast-stop (solo). Eventual success must still hold,
    // and every rung must be released afterwards.
    inject::FaultPlan plan;
    plan.spuriousAbortRate = 0.3;

    const Program p = constrainedIncrementProgram(30);
    sim::MachineConfig cfg = smallConfig(2);
    cfg.faults = plan;
    cfg.watchdogCycles = 2'000'000;
    sim::Machine m(cfg);
    m.setProgram(0, &p);
    m.setProgram(1, &p);
    m.run();

    ASSERT_TRUE(m.allHalted());
    EXPECT_FALSE(m.watchdogFired());
    EXPECT_EQ(m.peekMem(dataBase, 8), 60u); // no lost increments

    std::uint64_t delays = 0, reduced = 0, solos = 0, releases = 0;
    for (unsigned i = 0; i < m.numCpus(); ++i) {
        auto &st = m.cpu(i).stats();
        delays += st.counter("millicode.constrained_delays").value();
        reduced +=
            st.counter("millicode.speculation_reduced").value();
        solos += st.counter("millicode.solo_requests").value();
        releases += st.counter("millicode.solo_releases").value();
    }
    EXPECT_GT(delays, 0u);
    EXPECT_GT(reduced, 0u);
    EXPECT_GT(solos, 0u);
    EXPECT_EQ(solos, releases); // every broadcast-stop released

    // constrainedSuccess reset the ladder on both CPUs.
    EXPECT_EQ(m.soloHolder(), invalidCpu);
    for (unsigned i = 0; i < m.numCpus(); ++i) {
        EXPECT_EQ(m.cpu(i).constrainedAbortCount(), 0u);
        EXPECT_FALSE(m.cpu(i).soloHeld());
        EXPECT_FALSE(m.cpu(i).speculationReduced());
    }
}

// ---------------------------------------------------------------
// Capacity squeeze: scheduled fault shrinks effective ways.
// ---------------------------------------------------------------

namespace {

/**
 * A transaction reading four lines 128 KB apart: all in one L2 row
 * (512 rows x 256 B lines), comfortably within the full 8-way L2
 * but impossible in a single way. On abort CC != 0 branches out.
 */
Program
rowConflictProgram()
{
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(7, 0);
    as.tbegin(0xFF);
    as.jnz("aborted");
    as.lg(1, 9, 0);
    as.lg(2, 9, 128 * 1024);
    as.lg(3, 9, 256 * 1024);
    as.lg(4, 9, 384 * 1024);
    as.tend();
    as.lhi(7, 1); // committed
    as.label("aborted");
    as.halt();
    return as.finish();
}

} // namespace

TEST(Inject, CapacitySqueezeForcesCacheAborts)
{
    // Without the squeeze the row-conflict transaction commits.
    {
        sim::Machine m(smallConfig(1));
        const Program p = rowConflictProgram();
        m.setProgram(0, &p);
        m.run();
        EXPECT_EQ(m.cpu(0).gr(7), 1u);
    }

    // With L1/L2 squeezed to one way the four-line read set cannot
    // be kept: the LRU eviction XIs the tx line and aborts with a
    // cache-related reason.
    sim::MachineConfig cfg = smallConfig(1);
    cfg.faults.schedule.push_back(
        {.at = 0, .kind = inject::FaultKind::CapacitySqueeze,
         .target = 0});
    cfg.faults.squeezeL1Ways = 1;
    cfg.faults.squeezeL2Ways = 1;
    cfg.faults.squeezeDuration = 100'000'000;
    sim::Machine m(cfg);
    const Program p = rowConflictProgram();
    m.setProgram(0, &p);
    m.run();

    EXPECT_TRUE(m.allHalted());
    EXPECT_EQ(m.cpu(0).gr(7), 0u); // aborted, fell through
    auto &st = m.cpu(0).stats();
    EXPECT_GT(st.counter("tx.abort.cache-fetch").value(), 0u);
    ASSERT_NE(m.injector(), nullptr);
    EXPECT_EQ(
        m.injector()->stats().counter("squeeze.fired").value(), 1u);
}

TEST(Inject, CapacitySqueezeExpiresAndRestoresWays)
{
    // A short squeeze on a long-running workload: progress resumes
    // after expiry and the restore is observable in the stats.
    inject::FaultPlan plan;
    plan.capacitySqueezeRate = 0.01;
    plan.squeezeDuration = 200;

    const Program p = constrainedIncrementProgram(40);
    sim::MachineConfig cfg = smallConfig(2);
    cfg.faults = plan;
    cfg.watchdogCycles = 2'000'000;
    sim::Machine m(cfg);
    m.setProgram(0, &p);
    m.setProgram(1, &p);
    m.run();

    EXPECT_TRUE(m.allHalted());
    EXPECT_EQ(m.peekMem(dataBase, 8), 80u);
    ASSERT_NE(m.injector(), nullptr);
    auto &st = m.injector()->stats();
    const std::uint64_t fired = st.counter("squeeze.fired").value();
    const std::uint64_t restored =
        st.counter("squeeze.restored").value();
    EXPECT_GT(fired, 0u);
    EXPECT_GT(restored, 0u); // at least one squeeze ran its course
    // A squeeze still pending at halt is never restored; at most
    // one such straggler per CPU.
    EXPECT_LE(restored, fired);
    EXPECT_LE(fired - restored, std::uint64_t(m.numCpus()));
}

// ---------------------------------------------------------------
// Delayed XI responses: pure timing perturbation.
// ---------------------------------------------------------------

TEST(Inject, DelayedXiSlowsConflictsWithoutChangingResults)
{
    const Program p = constrainedIncrementProgram(40);
    const auto elapsedWith = [&](double rate) {
        sim::MachineConfig cfg = smallConfig(2);
        cfg.faults.delayedXiRate = rate;
        cfg.faults.xiDelayMax = 200;
        sim::Machine m(cfg);
        m.setProgram(0, &p);
        m.setProgram(1, &p);
        const Cycles elapsed = m.run();
        EXPECT_TRUE(m.allHalted());
        EXPECT_EQ(m.peekMem(dataBase, 8), 80u);
        if (rate > 0) {
            EXPECT_GT(m.injector()
                          ->stats()
                          .counter("xi_delay.fired")
                          .value(),
                      0u);
        }
        return elapsed;
    };

    // Same final state, strictly more cycles under delay.
    EXPECT_GT(elapsedWith(1.0), elapsedWith(0.0));
}

// ---------------------------------------------------------------
// PPA delay window stays bounded (millicode hardening).
// ---------------------------------------------------------------

TEST(Millicode, PpaDelayClampsExtremeShifts)
{
    // A pathological calibration: a huge base delay with the shift
    // cap at 63 would overflow a 64-bit window without clamping.
    sim::MachineConfig cfg = smallConfig(1);
    cfg.tm.ppaBaseDelay = Cycles(1) << 40;
    cfg.tm.ppaMaxShift = 63;
    sim::Machine m(cfg);

    const Cycles delay =
        millicode::MillicodeEngine::ppaDelay(m.cpu(0), ~0ULL);
    EXPECT_GE(delay, cfg.tm.ppaBaseDelay); // no wraparound to tiny
}

TEST(Millicode, PpaDelayZeroBaseMeansNoDelay)
{
    sim::MachineConfig cfg = smallConfig(1);
    cfg.tm.ppaBaseDelay = 0;
    sim::Machine m(cfg);
    EXPECT_EQ(millicode::MillicodeEngine::ppaDelay(m.cpu(0), 50),
              0u);
}

TEST(Millicode, PpaDelayBoundedUnderDefaultConfig)
{
    sim::MachineConfig cfg = smallConfig(1);
    sim::Machine m(cfg);
    const auto &tm = cfg.tm;
    for (std::uint64_t count = 0; count < 100; ++count) {
        const Cycles delay =
            millicode::MillicodeEngine::ppaDelay(m.cpu(0), count);
        EXPECT_LE(delay, (tm.ppaBaseDelay << tm.ppaMaxShift) +
                             tm.ppaBaseDelay)
            << "abort count " << count;
    }
}

} // namespace
