/** @file Disassembler unit tests. */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/disasm.hh"

namespace {

using namespace ztx::isa;

/** Assemble one instruction and disassemble it. */
template <typename EmitFn>
std::string
roundTrip(EmitFn &&emit)
{
    Assembler as;
    emit(as);
    as.halt();
    const Program p = as.finish();
    return disassemble(p.slots()[0].inst);
}

TEST(Disasm, ImmediateForms)
{
    EXPECT_EQ(roundTrip([](Assembler &a) { a.lhi(1, 42); }),
              "LHI R1,42");
    EXPECT_EQ(roundTrip([](Assembler &a) { a.ahi(3, -7); }),
              "AHI R3,-7");
    EXPECT_EQ(roundTrip([](Assembler &a) { a.cghi(5, 6); }),
              "CGHI R5,6");
}

TEST(Disasm, RegisterRegisterForms)
{
    EXPECT_EQ(roundTrip([](Assembler &a) { a.agr(1, 2); }),
              "AGR R1,R2");
    EXPECT_EQ(roundTrip([](Assembler &a) { a.sllg(1, 2, 8); }),
              "SLLG R1,R2,8");
}

TEST(Disasm, StorageForms)
{
    EXPECT_EQ(roundTrip([](Assembler &a) { a.lg(1, 9, 16); }),
              "LG R1,16(R9)");
    EXPECT_EQ(roundTrip([](Assembler &a) { a.lg(1, 9, 0, 12); }),
              "LG R1,0(R12,R9)");
    EXPECT_EQ(roundTrip([](Assembler &a) { a.stg(2, 9, 8); }),
              "STG R2,8(R9)");
    EXPECT_EQ(roundTrip([](Assembler &a) { a.lgfo(1, 9); }),
              "LGFO R1,0(R9)");
    EXPECT_EQ(roundTrip([](Assembler &a) { a.cs(1, 3, 9, 0); }),
              "CS R1,R3,0(R9)");
    EXPECT_EQ(roundTrip([](Assembler &a) { a.ntstg(7, 10, 8); }),
              "NTSTG R7,8(R10)");
}

TEST(Disasm, TransactionalForms)
{
    EXPECT_EQ(roundTrip([](Assembler &a) { a.tend(); }), "TEND");
    EXPECT_EQ(roundTrip([](Assembler &a) { a.tbeginc(0x80); }),
              "TBEGINC GRSM=0x80,A");
    EXPECT_EQ(roundTrip([](Assembler &a) { a.tabort(0, 256); }),
              "TABORT 256(R0)");
    EXPECT_EQ(roundTrip([](Assembler &a) { a.etnd(4); }), "ETND R4");
    EXPECT_EQ(roundTrip([](Assembler &a) { a.ppa(0); }), "PPA R0");
    const std::string tb = roundTrip([](Assembler &a) {
        a.tbegin(0xFF, {.pifc = 2});
    });
    EXPECT_NE(tb.find("TBEGIN"), std::string::npos);
    EXPECT_NE(tb.find("GRSM=0xff"), std::string::npos);
    EXPECT_NE(tb.find("PIFC=2"), std::string::npos);
}

TEST(Disasm, BranchesShowResolvedTargets)
{
    Assembler as;
    as.label("top");
    as.j("top");
    as.halt();
    const Program p = as.finish();
    const std::string text = disassemble(p.slots()[0].inst);
    EXPECT_NE(text.find("J 0x"), std::string::npos);
}

TEST(Disasm, ListingHasOneLinePerInstruction)
{
    Assembler as;
    as.lhi(1, 1);
    as.tbeginc(0);
    as.tend();
    as.halt();
    const Program p = as.finish();
    const std::string text = listing(p);
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
    EXPECT_NE(text.find("LHI R1,1"), std::string::npos);
    EXPECT_NE(text.find("HALT"), std::string::npos);
}

TEST(Disasm, EveryOpcodeDisassemblesNonEmpty)
{
    // Smoke: every opcode has a printable mnemonic.
    for (unsigned op = 0; op <= unsigned(Opcode::HALT); ++op) {
        Instruction inst;
        inst.op = Opcode(op);
        EXPECT_FALSE(disassemble(inst).empty()) << op;
    }
}

} // namespace
