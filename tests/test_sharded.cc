/**
 * @file
 * The sharded quantum scheduler (hostThreads >= 1): bit-identical
 * stats across host-thread counts — with and without fault
 * injection — architectural agreement with the legacy scheduler,
 * no lost work under real host concurrency, and the event-driven
 * watchdog counting I/O completions as forward progress.
 */

#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "inject/fault_plan.hh"
#include "mem/latency_model.hh"
#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using isa::Assembler;
using isa::Program;

/**
 * Contended transactional increments on random slots plus a local
 * counter: exercises TM conflicts, the millicode ladder, and the
 * per-CPU RNG streams. GR5 counts committed outer iterations.
 */
Program
contendedTxProgram(unsigned iterations)
{
    Assembler as;
    as.lhi(5, 0);
    as.lhi(7, std::int64_t(iterations));
    as.la(9, 0, std::int64_t(dataBase));
    as.label("outer");
    as.lhi(0, 0);
    as.label("retry");
    as.tbegin(0xFF);
    as.jnz("abort");
    as.rnd(1, 8);
    as.sllg(1, 1, 8); // slot -> line offset
    as.agr(1, 9);
    as.lr(2, 1);
    as.lg(3, 1);
    as.ahi(3, 1);
    as.stg(3, 2);
    as.tend();
    as.ahi(5, 1);
    as.j("next");
    as.label("abort");
    as.jo("next"); // persistent abort: skip this iteration
    as.ahi(0, 1);
    as.cijnl(0, 6, "next");
    as.j("retry");
    as.label("next");
    as.brct(7, "outer");
    as.halt();
    return as.finish();
}

/** Full-topology config (8 CPUs on 2x2x2 = 4 chips -> 4 shards). */
sim::MachineConfig
shardedConfig(std::uint64_t seed, unsigned host_threads)
{
    auto cfg = smallConfig(8);
    cfg.seed = seed;
    cfg.hostThreads = host_threads;
    return cfg;
}

/** One run: the full stats JSON plus a memory checksum. */
std::pair<std::string, std::uint64_t>
runOnce(const sim::MachineConfig &cfg, const Program &p)
{
    sim::Machine m(cfg);
    m.setProgramAll(&p);
    m.run();
    EXPECT_TRUE(m.allHalted());
    std::ostringstream os;
    m.dumpStatsJson(os);
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < 8; ++i)
        sum += m.peekMem(dataBase + i * 256, 8) * (i + 1);
    return {os.str(), sum};
}

TEST(Sharded, BitIdenticalAcrossHostThreadCounts)
{
    // The acceptance gate of the sharded scheduler: for any seed,
    // the entire stats document (every counter of every component)
    // and the final memory state are byte-identical for 1, 2, and 4
    // host threads. hostThreads is excluded from the config JSON,
    // so the documents can be compared verbatim.
    const Program p = contendedTxProgram(40);
    for (const std::uint64_t seed : {7ull, 21ull, 99ull}) {
        const auto ref = runOnce(shardedConfig(seed, 1), p);
        for (const unsigned threads : {2u, 4u}) {
            const auto got =
                runOnce(shardedConfig(seed, threads), p);
            EXPECT_EQ(ref.first, got.first)
                << "stats diverged: seed " << seed << ", "
                << threads << " host threads";
            EXPECT_EQ(ref.second, got.second)
                << "memory diverged: seed " << seed << ", "
                << threads << " host threads";
        }
    }
}

TEST(Sharded, BitIdenticalUnderChaosInjection)
{
    // Same contract with the fault injector fully engaged: rates,
    // a pinned schedule, and the watchdog armed. Per-CPU RNG
    // streams and barrier-merged storms keep chaos a pure function
    // of (program, config, seed).
    inject::FaultPlan plan;
    plan.spuriousAbortRate = 0.002;
    plan.xiStormRate = 0.004;
    plan.capacitySqueezeRate = 0.001;
    plan.squeezeDuration = 1'500;
    plan.interruptStormRate = 0.001;
    plan.delayedXiRate = 0.05;
    plan.xiDelayMax = 100;
    plan.schedule = {
        {2'000, inject::FaultKind::XiStorm, 1},
        {5'000, inject::FaultKind::CapacitySqueeze, 2},
        {9'000, inject::FaultKind::InterruptStorm, invalidCpu},
    };

    const Program p = contendedTxProgram(30);
    for (const std::uint64_t seed : {7ull, 21ull, 99ull}) {
        auto make = [&](unsigned threads) {
            auto cfg = shardedConfig(seed, threads);
            cfg.faults = plan;
            cfg.watchdogCycles = 2'000'000;
            return cfg;
        };
        const auto ref = runOnce(make(1), p);
        for (const unsigned threads : {2u, 4u}) {
            const auto got = runOnce(make(threads), p);
            EXPECT_EQ(ref.first, got.first)
                << "chaos stats diverged: seed " << seed << ", "
                << threads << " host threads";
            EXPECT_EQ(ref.second, got.second)
                << "chaos memory diverged: seed " << seed << ", "
                << threads << " host threads";
        }
    }
}

TEST(Sharded, NoLostWorkAtFourThreads)
{
    // Every CPU must retire its full iteration count when shards
    // really run on multiple host threads.
    Assembler as;
    as.lhi(5, 0);
    as.lhi(8, 400);
    as.label("loop");
    as.ahi(5, 1);
    as.brct(8, "loop");
    as.halt();
    const Program p = as.finish();

    sim::Machine m(shardedConfig(11, 4));
    m.setProgramAll(&p);
    m.run();
    ASSERT_TRUE(m.allHalted());
    for (unsigned i = 0; i < m.numCpus(); ++i)
        EXPECT_EQ(m.cpu(i).gr(5), 400u) << "cpu " << i;
}

TEST(Sharded, AgreesArchitecturallyWithLegacyScheduler)
{
    // The two schedulers interleave differently (timing is not
    // comparable), but constrained transactions make the shared
    // counter's final value schedule-independent: both must land on
    // exactly cpus * iterations.
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(8, 50);
    as.label("loop");
    as.tbeginc(0xFF);
    as.lg(1, 9);
    as.ahi(1, 1);
    as.stg(1, 9);
    as.tend();
    as.brct(8, "loop");
    as.halt();
    const Program p = as.finish();

    auto final_count = [&](unsigned host_threads) {
        auto cfg = shardedConfig(5, host_threads);
        sim::Machine m(cfg);
        m.setProgramAll(&p);
        m.run();
        EXPECT_TRUE(m.allHalted());
        return m.peekMem(dataBase, 8);
    };
    const std::uint64_t legacy = final_count(0);
    const std::uint64_t sharded = final_count(1);
    EXPECT_EQ(legacy, 8u * 50u);
    EXPECT_EQ(sharded, legacy);
}

TEST(Sharded, BoundedRunStopsAndResumes)
{
    Assembler as;
    as.label("spin");
    as.ahi(5, 1);
    as.j("spin");
    const Program p = as.finish();
    sim::Machine m(shardedConfig(3, 2));
    m.setProgramAll(&p);
    const Cycles elapsed = m.run(10'000);
    EXPECT_FALSE(m.allHalted());
    EXPECT_LE(elapsed, 10'000u);
    const std::uint64_t first = m.cpu(0).gr(5);
    EXPECT_GT(first, 0u);
    m.run(10'000);
    EXPECT_GT(m.cpu(0).gr(5), first);
}

TEST(Sharded, SoloModeParksOtherCpusAcrossShards)
{
    Assembler as;
    as.label("spin");
    as.ahi(5, 1);
    as.j("spin");
    const Program p = as.finish();
    sim::Machine m(shardedConfig(3, 2));
    m.setProgramAll(&p);
    m.requestSolo(0);
    m.run(20'000);
    EXPECT_GT(m.cpu(0).gr(5), 100u);
    // CPU 5 lives on a different chip (shard) than the holder and
    // must still be parked.
    EXPECT_EQ(m.cpu(5).gr(5), 0u);
    m.releaseSolo(0);
    m.run(20'000);
    EXPECT_GT(m.cpu(5).gr(5), 100u);
}

/**
 * Miss-heavy private sweeps: each CPU repeatedly walks its own
 * @p lines cache lines. With shrunken L1/L2 geometry the region
 * overflows the private levels, so steady-state accesses are
 * chip-local L3 hits — the traffic the shard-local fast path
 * resolves inside the parallel phase.
 */
Program
missHeavyProgram(Addr base, unsigned lines, unsigned sweeps)
{
    Assembler as;
    as.lhi(7, std::int64_t(sweeps));
    as.label("sweep");
    as.lhi(6, std::int64_t(lines));
    as.la(9, 0, std::int64_t(base));
    as.label("walk");
    as.lg(3, 9);
    as.ahi(3, 1);
    as.stg(3, 9);
    as.la(9, 9, 256);
    as.brct(6, "walk");
    as.brct(7, "sweep");
    as.halt();
    return as.finish();
}

/** shardedConfig with caches small enough to force L3 traffic. */
sim::MachineConfig
missHeavyConfig(std::uint64_t seed, unsigned host_threads,
                unsigned shards_per_chip)
{
    auto cfg = shardedConfig(seed, host_threads);
    cfg.hostShardsPerChip = shards_per_chip;
    cfg.geometry.l1 = {4 * 1024, 2};
    cfg.geometry.l2 = {16 * 1024, 4};
    cfg.geometry.l3 = {1024 * 1024, 8};
    cfg.geometry.l4 = {8 * 1024 * 1024, 8};
    return cfg;
}

/** One miss-heavy run: full stats JSON plus a region checksum. */
std::pair<std::string, std::uint64_t>
runMissHeavy(const sim::MachineConfig &cfg)
{
    sim::Machine m(cfg);
    std::vector<Program> programs;
    programs.reserve(m.numCpus());
    for (unsigned i = 0; i < m.numCpus(); ++i)
        programs.push_back(missHeavyProgram(
            dataBase + Addr(i) * 0x2'0000, 128, 3));
    for (unsigned i = 0; i < m.numCpus(); ++i)
        m.setProgram(i, &programs[i]);
    m.run();
    EXPECT_TRUE(m.allHalted());
    std::ostringstream os;
    m.dumpStatsJson(os);
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < m.numCpus(); ++i)
        for (unsigned k = 0; k < 128; k += 16)
            sum += m.peekMem(dataBase + Addr(i) * 0x2'0000 +
                                 k * 256,
                             8) *
                   (i * 131 + k + 1);
    return {os.str(), sum};
}

TEST(Sharded, MissHeavyDeterminismMatrix)
{
    // The fast path's acceptance gate: with capacity misses forcing
    // L3 traffic through the shard-local path, the stats document
    // and final memory stay byte-identical across host-thread
    // counts for every sub-chip partition, with and without chaos.
    inject::FaultPlan chaos;
    chaos.spuriousAbortRate = 0.002;
    chaos.delayedXiRate = 0.05;
    chaos.xiDelayMax = 60;

    for (const unsigned spc : {1u, 2u}) {
        for (const bool inject_chaos : {false, true}) {
            auto make = [&](unsigned threads) {
                auto cfg = missHeavyConfig(31, threads, spc);
                if (inject_chaos) {
                    cfg.faults = chaos;
                    cfg.watchdogCycles = 2'000'000;
                }
                return cfg;
            };
            const auto ref = runMissHeavy(make(1));
            for (const unsigned threads : {2u, 4u}) {
                const auto got = runMissHeavy(make(threads));
                EXPECT_EQ(ref.first, got.first)
                    << "stats diverged: spc " << spc << ", "
                    << threads << " host threads, chaos="
                    << inject_chaos;
                EXPECT_EQ(ref.second, got.second)
                    << "memory diverged: spc " << spc << ", "
                    << threads << " host threads, chaos="
                    << inject_chaos;
            }
        }
    }
}

TEST(Sharded, ShardLocalFastPathResolvesL3HitsInPhase)
{
    // Directed: steady-state L3 re-hits on private regions must be
    // resolved inside the parallel phase (sched.l3_local_hits),
    // not deferred to the barrier — and disabling the fast path
    // must push exactly that traffic back to the serial path.
    auto run_counters = [](bool fast_path) {
        auto cfg = missHeavyConfig(31, 1, 1);
        cfg.shardLocalFastPath = fast_path;
        sim::Machine m(cfg);
        std::vector<Program> programs;
        for (unsigned i = 0; i < m.numCpus(); ++i)
            programs.push_back(missHeavyProgram(
                dataBase + Addr(i) * 0x2'0000, 128, 3));
        for (unsigned i = 0; i < m.numCpus(); ++i)
            m.setProgram(i, &programs[i]);
        m.run();
        EXPECT_TRUE(m.allHalted());
        auto &st = m.stats();
        return std::array<std::uint64_t, 3>{
            st.counter("sched.l3_local_hits").value(),
            st.counter("sched.steps_deferred").value(),
            st.counter("sched.steps_total").value()};
    };
    const auto on = run_counters(true);
    const auto off = run_counters(false);
    EXPECT_GT(on[0], 0u) << "no shard-local L3 hits recorded";
    EXPECT_EQ(off[0], 0u) << "fast path fired while disabled";
    EXPECT_LT(on[1], off[1])
        << "fast path did not reduce deferred steps";
    EXPECT_GT(on[2], 0u);
}

TEST(Sharded, OverflowBufferAdmitsSubChipInstalls)
{
    // Sub-chip shards may not evict from the L2 in-phase; without
    // the overflow buffer the no-evict rule shuts the fast path off
    // once the L2 warms up. The miss-heavy sweep at spc=2 must show
    // both buffer admissions and in-phase L3 resolutions.
    auto cfg = missHeavyConfig(31, 1, 2);
    sim::Machine m(cfg);
    std::vector<Program> programs;
    for (unsigned i = 0; i < m.numCpus(); ++i)
        programs.push_back(missHeavyProgram(
            dataBase + Addr(i) * 0x2'0000, 128, 3));
    for (unsigned i = 0; i < m.numCpus(); ++i)
        m.setProgram(i, &programs[i]);
    m.run();
    ASSERT_TRUE(m.allHalted());
    EXPECT_GT(m.hierarchy()
                  .stats()
                  .counter("l2.overflow_admit")
                  .value(),
              0u)
        << "no install ever used the overflow buffer";
    EXPECT_GT(m.stats().counter("sched.l3_local_hits").value(), 0u)
        << "sub-chip fast path never resolved an access in-phase";
}

/** zEC12-like full topology: 6 cores x 6 chips x 4 MCMs = 144. */
sim::MachineConfig
fullTopologyConfig(std::uint64_t seed, unsigned host_threads)
{
    sim::MachineConfig cfg;
    cfg.topology = mem::Topology(6, 6, 4);
    cfg.seed = seed;
    cfg.hostThreads = host_threads;
    cfg.hostShardsPerChip = 2; // sub-chip shards: hardest case
    cfg.geometry.l1 = {4 * 1024, 2};
    cfg.geometry.l2 = {16 * 1024, 4};
    cfg.geometry.l3 = {8 * 1024 * 1024, 12};
    cfg.geometry.l4 = {32 * 1024 * 1024, 24};
    return cfg;
}

TEST(Sharded, FullTopologyDeterminismMatrix)
{
    // The scale campaign's correctness gate on the real 144-CPU
    // zEC12 topology: stats and memory bit-identical across host
    // threads with sub-chip shards (and thus the overflow buffer)
    // engaged. Shorter sweeps than the 8-CPU matrix keep 9 runs of
    // 144 CPUs inside the test timeout.
    auto run = [](const sim::MachineConfig &cfg) {
        sim::Machine m(cfg);
        std::vector<Program> programs;
        programs.reserve(m.numCpus());
        for (unsigned i = 0; i < m.numCpus(); ++i)
            programs.push_back(missHeavyProgram(
                dataBase + Addr(i) * 0x2'0000, 64, 2));
        for (unsigned i = 0; i < m.numCpus(); ++i)
            m.setProgram(i, &programs[i]);
        m.run();
        EXPECT_TRUE(m.allHalted());
        std::ostringstream os;
        m.dumpStatsJson(os);
        std::uint64_t sum = 0;
        for (unsigned i = 0; i < m.numCpus(); ++i)
            sum += m.peekMem(dataBase + Addr(i) * 0x2'0000, 8) *
                   (i + 1);
        return std::pair<std::string, std::uint64_t>{os.str(),
                                                     sum};
    };
    for (const std::uint64_t seed : {17ull, 29ull, 63ull}) {
        const auto ref = run(fullTopologyConfig(seed, 1));
        for (const unsigned threads : {2u, 4u}) {
            const auto got = run(fullTopologyConfig(seed, threads));
            EXPECT_EQ(ref.first, got.first)
                << "stats diverged: seed " << seed << ", "
                << threads << " host threads";
            EXPECT_EQ(ref.second, got.second)
                << "memory diverged: seed " << seed << ", "
                << threads << " host threads";
        }
    }
}

TEST(Sharded, LegacyArchStatsMatchShardedFullTopology)
{
    // hostThreads = 0 (legacy serial scheduler) completes the
    // determinism matrix: it is compared architecturally, not on
    // the raw document (MachineConfig doc) — but "architecturally"
    // is in fact everything except the scheduler's own bookkeeping.
    // Strip the sched.* / scheduler.* counters and the
    // shards_per_chip config echo and the remaining stats document
    // must be byte-identical between the two schedulers.
    auto arch_stats = [](const sim::MachineConfig &cfg) {
        sim::Machine m(cfg);
        std::vector<Program> programs;
        programs.reserve(m.numCpus());
        for (unsigned i = 0; i < m.numCpus(); ++i)
            programs.push_back(missHeavyProgram(
                dataBase + Addr(i) * 0x2'0000, 64, 2));
        for (unsigned i = 0; i < m.numCpus(); ++i)
            m.setProgram(i, &programs[i]);
        m.run();
        EXPECT_TRUE(m.allHalted());
        std::ostringstream os;
        m.dumpStatsJson(os);
        std::istringstream in(os.str());
        std::string filtered;
        std::string line;
        while (std::getline(in, line)) {
            if (line.find("\"sched.") != std::string::npos ||
                line.find("\"scheduler.") != std::string::npos ||
                line.find("\"shards_per_chip\"") !=
                    std::string::npos)
                continue;
            filtered += line;
            filtered += '\n';
        }
        return filtered;
    };
    for (const std::uint64_t seed : {17ull, 29ull, 63ull}) {
        const std::string legacy =
            arch_stats(fullTopologyConfig(seed, 0));
        const std::string sharded =
            arch_stats(fullTopologyConfig(seed, 1));
        EXPECT_EQ(legacy, sharded)
            << "architectural stats diverged between the legacy "
               "and sharded schedulers: seed "
            << seed;
    }
}

TEST(Sharded, SameShardXiAbortMatchesLegacy)
{
    // A conflict abort delivered by a same-shard XI inside the
    // parallel phase must leave the same architectural state (TDB
    // block, abort-handler path, final memory) as the legacy serial
    // scheduler resolving the same conflict.
    constexpr Addr shared = dataBase;
    constexpr Addr tdb_addr = dataBase + 0x1000;

    // CPU 0: open a transaction, tx-read the shared line, then sit
    // in the transaction long enough for CPU 1's stores to land.
    Assembler a0;
    a0.la(8, 0, std::int64_t(tdb_addr));
    a0.la(9, 0, std::int64_t(shared));
    a0.lhi(5, 0);
    a0.tbegin(0xFF, {.tdbBase = 8});
    a0.jnz("handler");
    a0.lg(3, 9);
    a0.lhi(1, 4'000);
    a0.delay(1);
    a0.tend();
    a0.lhi(5, 1); // committed
    a0.halt();
    a0.label("handler");
    a0.lhi(5, 2); // aborted
    a0.halt();
    const Program p0 = a0.finish();

    // CPU 1 (same chip, same shard): wait, then hammer the line
    // with exclusive stores until the reject ladder gives up.
    Assembler a1;
    a1.la(9, 0, std::int64_t(shared));
    a1.lhi(1, 500);
    a1.delay(1);
    a1.lhi(8, 64);
    a1.label("hammer");
    a1.lg(3, 9);
    a1.ahi(3, 1);
    a1.stg(3, 9);
    a1.brct(8, "hammer");
    a1.halt();
    const Program p1 = a1.finish();

    auto outcome = [&](unsigned host_threads) {
        auto cfg = shardedConfig(13, host_threads);
        cfg.activeCpus = 2; // both CPUs on chip 0 -> one shard
        sim::Machine m(cfg);
        m.setProgram(0, &p0);
        m.setProgram(1, &p1);
        m.run();
        EXPECT_TRUE(m.allHalted());
        std::uint64_t tdb_sum = 0;
        for (unsigned off = 0; off < 256; off += 8)
            tdb_sum += m.peekMem(tdb_addr + off, 8) * (off + 1);
        return std::tuple<std::uint64_t, std::uint64_t,
                          std::uint64_t>{
            m.cpu(0).gr(5), tdb_sum, m.peekMem(shared, 8)};
    };

    const auto legacy = outcome(0);
    const auto sharded = outcome(1);
    // The conflict must actually abort CPU 0 (not be ridden out),
    // and every architectural artifact must agree bit-for-bit.
    EXPECT_EQ(std::get<0>(legacy), 2u) << "legacy run committed";
    EXPECT_EQ(legacy, sharded);
}

TEST(Sharded, HeapCarriesAcrossQuantaAndRuns)
{
    // The per-shard event heap is built once and carried: after the
    // initial seeding (one reinsert per live CPU), later quanta and
    // resumed runs must not rebuild it.
    Assembler as;
    as.label("spin");
    as.ahi(5, 1);
    as.j("spin");
    const Program p = as.finish();

    sim::Machine m(shardedConfig(3, 2));
    m.setProgramAll(&p);
    m.run(10'000);
    auto &st = m.stats();
    const std::uint64_t seeded =
        st.counter("sched.heap_reinserts").value();
    EXPECT_EQ(seeded, m.numCpus())
        << "initial seeding should insert each CPU exactly once";
    m.run(10'000);
    EXPECT_EQ(st.counter("sched.heap_reinserts").value(), seeded)
        << "resumed run rebuilt the carried heap";
}

TEST(Sharded, QuantumLatencyBounds)
{
    // The quantum bounds the fast path relies on: the cheapest
    // same-chip interaction (sub-chip shard quantum) and the
    // cheapest cross-chip interaction (whole-chip quantum with the
    // fast path on) at default latencies.
    const mem::LatencyModel lat;
    EXPECT_EQ(lat.minIntraChipLatency(), 28u);
    EXPECT_EQ(lat.minCrossChipLatency(), 68u);
    EXPECT_EQ(lat.minFabricLatency(), 28u);
}

/** Spin forever: no commit, no region close, no halt. */
Program
spinProgram()
{
    Assembler as;
    as.label("spin");
    as.ahi(5, 1);
    as.j("spin");
    return as.finish();
}

TEST(Watchdog, IoCompletionsCountAsForwardProgress)
{
    // Regression: a machine whose only work is DMA traffic (CPUs
    // spin uselessly) is making forward progress; the watchdog must
    // not fire while transfers keep completing — in both the legacy
    // and the sharded scheduler.
    for (const unsigned host_threads : {0u, 1u}) {
        auto cfg = smallConfig(1);
        cfg.hostThreads = host_threads;
        cfg.enableIo = true;
        cfg.watchdogCycles = 30'000;
        sim::Machine m(cfg);
        const Program p = spinProgram();
        m.setProgram(0, &p);
        for (unsigned i = 0; i < 1'000; ++i)
            m.io().submit({.write = true,
                           .addr = dataBase + i * 4096,
                           .length = 4096,
                           .pattern = 0x5A});
        m.run(2'000'000);
        EXPECT_FALSE(m.watchdogFired())
            << "fired with " << host_threads
            << " host threads despite live I/O";
        EXPECT_GT(m.io().completed(), 0u);
    }
}

TEST(Watchdog, FiresWithoutAnyProgressSource)
{
    // Counter-check for the test above: the same spinning machine
    // with no I/O traffic must trip the watchdog in both schedulers.
    for (const unsigned host_threads : {0u, 1u}) {
        auto cfg = smallConfig(1);
        cfg.hostThreads = host_threads;
        cfg.watchdogCycles = 30'000;
        sim::Machine m(cfg);
        const Program p = spinProgram();
        m.setProgram(0, &p);
        m.run(2'000'000);
        EXPECT_TRUE(m.watchdogFired())
            << host_threads << " host threads";
    }
}

} // namespace
