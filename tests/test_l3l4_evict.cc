/**
 * @file
 * Inclusivity LRU-XIs from the shared cache levels: evictions in the
 * L3/L4 (driven by *other* cores' capacity pressure) invalidate
 * lower-level copies and abort transactions whose footprint they
 * hit — one of the abort sources the paper lists for very large and
 * long transactions (§IV: "LRU evictions from higher level caches").
 */

#include <gtest/gtest.h>

#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using isa::Assembler;
using isa::Program;

/** Tiny shared levels so a handful of lines overflow them. */
sim::MachineConfig
tinySharedConfig(unsigned cpus)
{
    auto cfg = smallConfig(cpus);
    cfg.geometry.l1 = {2 * 2 * lineSizeBytes, 2};   // 2 rows x 2
    cfg.geometry.l2 = {4 * 4 * lineSizeBytes, 4};   // 16 lines
    cfg.geometry.l3 = {4 * 4 * lineSizeBytes, 4};   // 16 lines
    cfg.geometry.l4 = {16 * 8 * lineSizeBytes, 8};  // 128 lines
    return cfg;
}

TEST(SharedEviction, NeighborPressureAbortsTransaction)
{
    // CPU0 transactionally reads one line, then spins; CPU1 (same
    // chip, same L3) streams through enough lines to evict CPU0's
    // line from the shared L3 -> inclusivity LRU-XI -> abort.
    Assembler t;
    t.la(9, 0, std::int64_t(dataBase));
    t.tbegin(0xFF);
    t.jnz("done");
    t.lg(1, 9);
    t.label("spin");
    t.j("spin");
    t.label("done");
    t.halt();
    const Program txprog = t.finish();

    Assembler s;
    s.la(9, 0, std::int64_t(dataBase) + 0x100000);
    s.lhi(8, 64); // far more than the 16-line L3
    s.label("loop");
    s.lg(1, 9);
    s.la(9, 9, 256);
    s.brct(8, "loop");
    s.halt();
    const Program streamer = s.finish();

    sim::Machine m(tinySharedConfig(2));
    m.setProgram(0, &txprog);
    m.setProgram(1, &streamer);

    for (int i = 0; i < 6; ++i)
        m.cpu(0).step();
    ASSERT_TRUE(m.cpu(0).inTx());

    int steps = 0;
    while (!m.cpu(1).halted() && steps++ < 2000)
        m.cpu(1).step();
    ASSERT_TRUE(m.cpu(1).halted());

    EXPECT_FALSE(m.cpu(0).inTx());
    EXPECT_GE(m.cpu(0)
                  .stats()
                  .counter("tx.abort.cache-fetch")
                  .value(),
              1u);
    EXPECT_GT(m.hierarchy().stats().counter("l3.evict").value(),
              0u);
}

TEST(SharedEviction, TxDirtyLineLostToL3EvictionAborts)
{
    // Same pressure pattern, but the transactional footprint is a
    // *store*: losing the line is a cache-store abort.
    Assembler t;
    t.la(9, 0, std::int64_t(dataBase));
    t.lhi(1, 5);
    t.tbegin(0xFF);
    t.jnz("done");
    t.stg(1, 9);
    t.label("spin");
    t.j("spin");
    t.label("done");
    t.halt();
    const Program txprog = t.finish();

    Assembler s;
    s.la(9, 0, std::int64_t(dataBase) + 0x100000);
    s.lhi(8, 64);
    s.label("loop");
    s.lg(1, 9);
    s.la(9, 9, 256);
    s.brct(8, "loop");
    s.halt();
    const Program streamer = s.finish();

    sim::Machine m(tinySharedConfig(2));
    m.memory().write(dataBase, 1, 8);
    m.setProgram(0, &txprog);
    m.setProgram(1, &streamer);
    for (int i = 0; i < 7; ++i)
        m.cpu(0).step();
    ASSERT_TRUE(m.cpu(0).inTx());
    int steps = 0;
    while (!m.cpu(1).halted() && steps++ < 2000)
        m.cpu(1).step();

    EXPECT_FALSE(m.cpu(0).inTx());
    EXPECT_GE(m.cpu(0)
                  .stats()
                  .counter("tx.abort.cache-store")
                  .value(),
              1u);
    // The speculative store never reached memory.
    EXPECT_EQ(m.peekMem(dataBase, 8), 1u);
}

TEST(SharedEviction, L4EvictionCascadesThroughL3)
{
    // A single CPU streaming past the L4 capacity forces L4
    // evictions that cascade invalidations through L3/L2/L1 while
    // keeping every inclusivity invariant intact.
    Assembler s;
    s.la(9, 0, std::int64_t(dataBase));
    s.lhi(8, 300); // 300 lines >> 128-line L4
    s.label("loop");
    s.lg(1, 9);
    s.la(9, 9, 256);
    s.brct(8, "loop");
    s.halt();
    const Program streamer = s.finish();

    sim::Machine m(tinySharedConfig(1));
    m.setProgram(0, &streamer);
    m.run();
    EXPECT_TRUE(m.cpu(0).halted());
    EXPECT_GT(m.hierarchy().stats().counter("l4.evict").value(),
              0u);
    m.hierarchy().checkInvariants();
}

TEST(SharedEviction, NonTxWorkUnaffectedByLruXis)
{
    // The same pressure against non-transactional state is
    // harmless: data survives via memory, nothing aborts.
    Assembler p;
    p.la(9, 0, std::int64_t(dataBase));
    p.lhi(1, 77);
    p.stg(1, 9);
    p.la(10, 0, std::int64_t(dataBase) + 0x100000);
    p.lhi(8, 64);
    p.label("loop");
    p.lg(2, 10);
    p.la(10, 10, 256);
    p.brct(8, "loop");
    p.lg(3, 9); // reload the (long-evicted) first line
    p.halt();
    const Program prog = p.finish();

    sim::Machine m(tinySharedConfig(1));
    m.setProgram(0, &prog);
    m.run();
    EXPECT_EQ(m.cpu(0).gr(3), 77u);
    m.hierarchy().checkInvariants();
}

} // namespace
