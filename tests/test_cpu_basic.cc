/** @file Interpreter tests: arithmetic, branches, memory, CS. */

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using isa::Assembler;
using isa::Program;

/** Run @p program on a fresh 1-CPU machine; returns the machine. */
std::unique_ptr<sim::Machine>
runProgram(const Program &program,
           std::function<void(sim::Machine &)> setup = {})
{
    auto m = std::make_unique<sim::Machine>(smallConfig(1));
    if (setup)
        setup(*m);
    m->setProgram(0, &program);
    m->run();
    return m;
}

TEST(CpuBasic, ImmediateAndRegisterMoves)
{
    Assembler as;
    as.lhi(1, 42);
    as.lr(2, 1);
    as.lhi(3, -7);
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).gr(1), 42u);
    EXPECT_EQ(m->cpu(0).gr(2), 42u);
    EXPECT_EQ(std::int64_t(m->cpu(0).gr(3)), -7);
    EXPECT_TRUE(m->cpu(0).halted());
}

TEST(CpuBasic, ArithmeticAndConditionCodes)
{
    Assembler as;
    as.lhi(1, 10);
    as.lhi(2, 3);
    as.agr(1, 2);  // 13, CC2
    as.sgr(1, 2);  // 10, CC2
    as.msgr(1, 2); // 30
    as.lhi(3, 30);
    as.sgr(1, 3);  // 0, CC0
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).gr(1), 0u);
    EXPECT_EQ(m->cpu(0).psw().cc, 0);
}

TEST(CpuBasic, LogicalOpsAndShifts)
{
    Assembler as;
    as.lhi(1, 0b1100);
    as.lhi(2, 0b1010);
    as.ngr(1, 2);     // 0b1000
    as.lhi(3, 0b0001);
    as.ogr(1, 3);     // 0b1001
    as.sllg(4, 1, 4); // 0b10010000
    as.srlg(5, 4, 2); // 0b100100
    as.xgr(4, 4);     // 0, CC0
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).gr(1), 0b1001u);
    EXPECT_EQ(m->cpu(0).gr(5), 0b100100u);
    EXPECT_EQ(m->cpu(0).gr(4), 0u);
    EXPECT_EQ(m->cpu(0).psw().cc, 0);
}

TEST(CpuBasic, LoadAddressArithmetic)
{
    Assembler as;
    as.lhi(2, 0x100);
    as.lhi(3, 0x10);
    as.la(1, 2, 8, 3); // 0x100 + 0x10 + 8
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).gr(1), 0x118u);
}

TEST(CpuBasic, StoreThenLoadRoundTrip)
{
    Assembler as;
    as.lhi(1, 1234);
    as.lhi(2, 0);
    as.la(2, 0, std::int64_t(dataBase));
    as.stg(1, 2);
    as.lg(3, 2);
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).gr(3), 1234u);
    EXPECT_EQ(m->peekMem(dataBase, 8), 1234u);
}

TEST(CpuBasic, LoadAndTestSetsCc)
{
    Assembler as;
    as.la(2, 0, std::int64_t(dataBase));
    as.lt(1, 2); // memory is zero -> CC0
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).gr(1), 0u);
    EXPECT_EQ(m->cpu(0).psw().cc, 0);
}

TEST(CpuBasic, ConditionalBranchTaken)
{
    Assembler as;
    as.lhi(1, 5);
    as.cghi(1, 5); // CC0
    as.jz("skip");
    as.lhi(2, 111);
    as.label("skip");
    as.lhi(3, 222);
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).gr(2), 0u);
    EXPECT_EQ(m->cpu(0).gr(3), 222u);
}

TEST(CpuBasic, LoopWithBrct)
{
    Assembler as;
    as.lhi(1, 10); // counter
    as.lhi(2, 0);  // accumulator
    as.label("loop");
    as.ahi(2, 3);
    as.brct(1, "loop");
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).gr(2), 30u);
    EXPECT_EQ(m->cpu(0).gr(1), 0u);
}

TEST(CpuBasic, CompareImmediateAndJump)
{
    Assembler as;
    as.lhi(1, 7);
    as.cijnl(1, 6, "big"); // 7 >= 6 -> branch
    as.lhi(2, 1);
    as.label("big");
    as.lhi(3, 9);
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).gr(2), 0u);
    EXPECT_EQ(m->cpu(0).gr(3), 9u);
}

TEST(CpuBasic, CompareAndSwapSuccess)
{
    Assembler as;
    as.la(2, 0, std::int64_t(dataBase));
    as.lhi(1, 0);   // expected old value
    as.lhi(3, 77);  // new value
    as.cs(1, 3, 2);
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).psw().cc, 0);
    EXPECT_EQ(m->peekMem(dataBase, 8), 77u);
}

TEST(CpuBasic, CompareAndSwapFailureLoadsCurrent)
{
    Assembler as;
    as.la(2, 0, std::int64_t(dataBase));
    as.lhi(1, 5);  // wrong expectation
    as.lhi(3, 77);
    as.cs(1, 3, 2);
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p, [](sim::Machine &mm) {
        mm.memory().write(dataBase, 42, 8);
    });
    EXPECT_EQ(m->cpu(0).psw().cc, 1);
    EXPECT_EQ(m->cpu(0).gr(1), 42u); // loaded the actual value
    EXPECT_EQ(m->peekMem(dataBase, 8), 42u);
}

TEST(CpuBasic, DivideWorks)
{
    Assembler as;
    as.lhi(1, 42);
    as.lhi(2, 6);
    as.dsgr(1, 2);
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).gr(1), 7u);
}

TEST(CpuBasic, DivideByZeroOutsideTxTerminates)
{
    Assembler as;
    as.lhi(1, 42);
    as.lhi(2, 0);
    as.dsgr(1, 2);
    as.lhi(3, 1); // never reached
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_TRUE(m->cpu(0).halted());
    EXPECT_EQ(m->cpu(0).gr(3), 0u);
    EXPECT_EQ(m->os().countOf(tx::InterruptCode::FixedPointDivide),
              1u);
}

TEST(CpuBasic, FprAndArMoves)
{
    Assembler as;
    as.lhi(1, 99);
    as.ldgr(2, 1); // fpr2 = 99 (raw bits)
    as.sar(3, 1);  // ar3 = 99
    as.ear(4, 3);  // gr4 = ar3
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).fpr(2), 99u);
    EXPECT_EQ(m->cpu(0).ar(3), 99u);
    EXPECT_EQ(m->cpu(0).gr(4), 99u);
}

TEST(CpuBasic, StckReadsAdvancingClock)
{
    Assembler as;
    as.stck(1);
    as.la(9, 0, std::int64_t(dataBase)); // some work
    as.lg(5, 9);
    as.stck(2);
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_GT(m->cpu(0).gr(2), m->cpu(0).gr(1));
}

TEST(CpuBasic, RandStaysBounded)
{
    Assembler as;
    as.lhi(5, 0);
    as.lhi(1, 100); // loop count
    as.label("loop");
    as.rnd(2, 10);
    as.agr(5, 2);
    as.brct(1, "loop");
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    // Sum of 100 draws from [0,10): strictly less than 1000 and
    // (overwhelmingly) more than 100.
    EXPECT_LT(m->cpu(0).gr(5), 1000u);
    EXPECT_GT(m->cpu(0).gr(5), 100u);
}

TEST(CpuBasic, RegionMeasurement)
{
    Assembler as;
    as.markb();
    as.la(9, 0, std::int64_t(dataBase));
    as.lg(1, 9);
    as.marke();
    as.markb();
    as.lg(1, 9);
    as.marke();
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).regionCycles().count(), 2u);
    EXPECT_GT(m->cpu(0).regionCycles().mean(), 0.0);
    // Second region is an L1 hit: cheaper than the cold first one.
    EXPECT_LT(m->cpu(0).regionCycles().min(),
              m->cpu(0).regionCycles().max());
}

TEST(CpuBasic, InvalidOpcodeTerminates)
{
    Assembler as;
    as.invalidOp();
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_TRUE(m->cpu(0).halted());
    EXPECT_EQ(m->os().countOf(tx::InterruptCode::Operation), 1u);
}

TEST(CpuBasic, PageFaultResolvedByOsAndRetried)
{
    Assembler as;
    as.la(2, 0, std::int64_t(dataBase));
    as.lg(1, 2);
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p, [](sim::Machine &mm) {
        mm.memory().write(dataBase, 55, 8);
        mm.pageTable().markAbsent(dataBase);
    });
    EXPECT_TRUE(m->cpu(0).halted());
    EXPECT_EQ(m->cpu(0).gr(1), 55u); // retry after page-in succeeded
    EXPECT_EQ(m->os().countOf(tx::InterruptCode::PageFault), 1u);
}

TEST(CpuBasic, DelayCostsCycles)
{
    Assembler as;
    as.stck(1);
    as.lhi(2, 500);
    as.delay(2);
    as.stck(3);
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_GE(m->cpu(0).gr(3) - m->cpu(0).gr(1), 500u);
}

} // namespace
