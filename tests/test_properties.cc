/**
 * @file
 * Property tests: invariants that must hold for every seed,
 * interleaving, synchronization method, and machine shape —
 * serializability (no lost updates), opacity (no torn reads, even
 * transiently), conservation under transfers, and determinism.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "workload/layout.hh"
#include "workload/update_bench.hh"
#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using isa::Assembler;
using isa::Program;
using workload::SyncMethod;

// ---------------------------------------------------------------
// Serializability: counters never lose updates, any method, any
// seed, any CPU count.
// ---------------------------------------------------------------

using SerParam = std::tuple<SyncMethod, unsigned, unsigned>;

class Serializability : public ::testing::TestWithParam<SerParam>
{
};

TEST_P(Serializability, NoLostUpdates)
{
    const auto [method, cpus, seed] = GetParam();
    workload::UpdateBenchConfig cfg;
    cfg.method = method;
    cfg.cpus = cpus;
    cfg.poolSize = 8;
    cfg.varsPerOp = method == SyncMethod::FineLock ? 1 : 4;
    cfg.iterations = 60;
    cfg.seed = seed;
    cfg.machine = smallConfig(cpus);
    const auto res = workload::runUpdateBench(cfg);
    EXPECT_EQ(res.poolSum,
              std::uint64_t(cpus) * cfg.iterations * cfg.varsPerOp);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Serializability,
    ::testing::Combine(
        ::testing::Values(SyncMethod::CoarseLock,
                          SyncMethod::FineLock, SyncMethod::TBegin,
                          SyncMethod::TBeginc),
        ::testing::Values(2u, 5u, 8u),
        ::testing::Values(1u, 42u, 31337u)),
    [](const auto &info) {
        std::string name =
            workload::syncMethodName(std::get<0>(info.param));
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name + "_c" + std::to_string(std::get<1>(info.param)) +
               "_s" + std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------
// Opacity / atomicity: writers keep two lines equal inside one
// transaction; transactional readers must never observe them
// different — not even transiently on a path that later aborts.
// ---------------------------------------------------------------

Program
pairWriterProgram(unsigned iterations)
{
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(8, std::int64_t(iterations));
    as.label("loop");
    as.tbeginc(0x00);
    as.lgfo(1, 9, 0);
    as.ahi(1, 1);
    as.stg(1, 9, 0);
    as.lgfo(2, 9, 256);
    as.ahi(2, 1);
    as.stg(2, 9, 256);
    as.tend();
    as.brct(8, "loop");
    as.halt();
    return as.finish();
}

Program
pairCheckerProgram(unsigned iterations)
{
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(8, std::int64_t(iterations));
    as.lhi(7, 0); // mismatch counter
    as.label("loop");
    as.label("retry");
    as.tbegin(0x00);
    as.jnz("retry");
    as.lg(1, 9, 0);
    as.lg(2, 9, 256);
    as.tend();
    as.sgr(1, 2);
    as.cghi(1, 0);
    as.jz("ok");
    as.ahi(7, 1);
    as.label("ok");
    as.brct(8, "loop");
    as.halt();
    return as.finish();
}

class Opacity : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(Opacity, PairedUpdatesNeverTearUnderTx)
{
    const unsigned seed = GetParam();
    auto cfg = smallConfig(4);
    cfg.seed = seed;
    sim::Machine m(cfg);
    const Program writer = pairWriterProgram(150);
    const Program checker = pairCheckerProgram(150);
    m.setProgram(0, &writer);
    m.setProgram(1, &writer);
    m.setProgram(2, &checker);
    m.setProgram(3, &checker);
    m.run();
    ASSERT_TRUE(m.allHalted());
    EXPECT_EQ(m.cpu(2).gr(7), 0u);
    EXPECT_EQ(m.cpu(3).gr(7), 0u);
    EXPECT_EQ(m.peekMem(dataBase, 8), 300u);
    EXPECT_EQ(m.peekMem(dataBase + 256, 8), 300u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Opacity,
                         ::testing::Values(1u, 7u, 99u, 12345u,
                                           777777u));

// ---------------------------------------------------------------
// Conservation: random transfers between accounts preserve the
// total balance exactly.
// ---------------------------------------------------------------

Program
transferProgram(unsigned accounts, unsigned iterations)
{
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(8, std::int64_t(iterations));
    as.label("loop");
    as.rnd(4, accounts); // from
    as.rnd(5, accounts); // to
    as.sllg(4, 4, 8);
    as.sllg(5, 5, 8);
    as.agr(4, 9);
    as.agr(5, 9);
    as.rnd(6, 10); // amount
    as.tbeginc(0x00);
    as.lgfo(1, 4);
    as.sgr(1, 6);
    as.stg(1, 4);
    as.lgfo(2, 5);
    as.agr(2, 6);
    as.stg(2, 5);
    as.tend();
    as.brct(8, "loop");
    as.halt();
    return as.finish();
}

class Conservation : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(Conservation, TransfersPreserveTotalBalance)
{
    const unsigned seed = GetParam();
    constexpr unsigned accounts = 12;
    constexpr std::uint64_t initial = 1000;
    auto cfg = smallConfig(6);
    cfg.seed = seed;
    sim::Machine m(cfg);
    for (unsigned a = 0; a < accounts; ++a)
        m.memory().write(dataBase + Addr(a) * 256, initial, 8);
    const Program p = transferProgram(accounts, 120);
    m.setProgramAll(&p);
    m.run();
    ASSERT_TRUE(m.allHalted());
    std::uint64_t total = 0;
    for (unsigned a = 0; a < accounts; ++a)
        total += m.peekMem(dataBase + Addr(a) * 256, 8);
    EXPECT_EQ(total, accounts * initial);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Conservation,
                         ::testing::Values(3u, 17u, 2026u, 555u));

// ---------------------------------------------------------------
// Determinism: identical configurations produce identical machine
// histories (elapsed cycles and all architected outcomes).
// ---------------------------------------------------------------

class Determinism
    : public ::testing::TestWithParam<std::tuple<SyncMethod, unsigned>>
{
};

TEST_P(Determinism, RepeatRunsAreBitIdentical)
{
    const auto [method, cpus] = GetParam();
    workload::UpdateBenchConfig cfg;
    cfg.method = method;
    cfg.cpus = cpus;
    cfg.poolSize = 6;
    cfg.varsPerOp = 1;
    cfg.iterations = 80;
    cfg.machine = smallConfig(cpus);
    const auto a = workload::runUpdateBench(cfg);
    const auto b = workload::runUpdateBench(cfg);
    EXPECT_EQ(a.elapsedCycles, b.elapsedCycles);
    EXPECT_EQ(a.meanRegionCycles, b.meanRegionCycles);
    EXPECT_EQ(a.txAborts, b.txAborts);
    EXPECT_EQ(a.xiRejects, b.xiRejects);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Determinism,
    ::testing::Combine(::testing::Values(SyncMethod::TBegin,
                                         SyncMethod::TBeginc),
                       ::testing::Values(3u, 8u)),
    [](const auto &info) {
        std::string name =
            workload::syncMethodName(std::get<0>(info.param));
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name + "_c" +
               std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------
// Strong atomicity: a non-transactional reader polling a pair of
// transactionally-updated lines never observes them torn either.
// ---------------------------------------------------------------

TEST(StrongAtomicity, NonTxReaderSeesNoTornPairs)
{
    // Non-transactional reads are individually atomic but a pair of
    // reads is not; so the checker re-reads until stable, verifying
    // that every *stable snapshot* satisfies the invariant.
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(8, 200);
    as.lhi(7, 0);
    as.label("loop");
    as.lg(1, 9, 0);
    as.lg(2, 9, 256);
    as.lg(3, 9, 0);
    as.cgr(1, 3);
    as.jnz("unstable"); // racing with a commit: skip the check
    as.sgr(1, 2);
    as.cghi(1, 0);
    as.jz("unstable");
    as.ahi(7, 1);
    as.label("unstable");
    as.brct(8, "loop");
    as.halt();
    const Program checker = as.finish();

    const Program writer = pairWriterProgram(200);
    sim::Machine m(smallConfig(3));
    m.setProgram(0, &writer);
    m.setProgram(1, &writer);
    m.setProgram(2, &checker);
    m.run();
    ASSERT_TRUE(m.allHalted());
    EXPECT_EQ(m.cpu(2).gr(7), 0u);
    EXPECT_EQ(m.peekMem(dataBase, 8), 400u);
}

// ---------------------------------------------------------------
// Mixed transactional and I/O traffic keeps hierarchy invariants.
// ---------------------------------------------------------------

TEST(MixedTraffic, HierarchyInvariantsHoldUnderTxAndIo)
{
    auto cfg = smallConfig(4);
    cfg.enableIo = true;
    sim::Machine m(cfg);
    const Program p = transferProgram(8, 80);
    for (unsigned a = 0; a < 8; ++a)
        m.memory().write(dataBase + Addr(a) * 256, 100, 8);
    m.setProgramAll(&p);
    for (int i = 0; i < 10; ++i) {
        m.io().submit({.write = true,
                       .addr = dataBase + 0x8000 + Addr(i) * 512,
                       .length = 512,
                       .pattern = std::uint8_t(i)});
    }
    m.run(400'000);
    m.hierarchy().checkInvariants();
    m.drainIo();
    EXPECT_TRUE(m.allHalted());
    std::uint64_t total = 0;
    for (unsigned a = 0; a < 8; ++a)
        total += m.peekMem(dataBase + Addr(a) * 256, 8);
    EXPECT_EQ(total, 800u);
    m.hierarchy().checkInvariants();
}

} // namespace
