/**
 * @file
 * Constrained transactions (paper §II.D): the programming
 * constraints, automatic retry at TBEGINC, the eventual-success
 * guarantee, and the millicode escalation ladder.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using isa::Assembler;
using isa::Program;

std::unique_ptr<sim::Machine>
runProgram(const Program &program,
           std::function<void(sim::Machine &)> setup = {})
{
    auto m = std::make_unique<sim::Machine>(smallConfig(1));
    if (setup)
        setup(*m);
    m->setProgram(0, &program);
    m->run();
    return m;
}

/** Constrained increment of a shared counter, @p iterations times. */
Program
constrainedIncrementProgram(unsigned iterations)
{
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(8, std::int64_t(iterations));
    as.label("loop");
    as.tbeginc(0xFF);
    as.lg(1, 9);
    as.ahi(1, 1);
    as.stg(1, 9);
    as.tend();
    as.brct(8, "loop");
    as.halt();
    return as.finish();
}

TEST(Constrained, SimpleCommit)
{
    const Program p = constrainedIncrementProgram(1);
    auto m = runProgram(p);
    EXPECT_EQ(m->peekMem(dataBase, 8), 1u);
    EXPECT_EQ(m->cpu(0)
                  .stats()
                  .counter("tx.commits_constrained")
                  .value(),
              1u);
}

TEST(Constrained, TwoCpusNeverLoseAnIncrement)
{
    // The headline guarantee: constrained transactions need no
    // fallback path and still never lose an update.
    constexpr unsigned iters = 200;
    const Program p = constrainedIncrementProgram(iters);
    sim::Machine m(smallConfig(2));
    m.setProgram(0, &p);
    m.setProgram(1, &p);
    m.run();
    EXPECT_TRUE(m.allHalted());
    EXPECT_EQ(m.peekMem(dataBase, 8), 2 * iters);
}

TEST(Constrained, FourCpusAcrossChipsNeverLoseAnIncrement)
{
    constexpr unsigned iters = 100;
    const Program p = constrainedIncrementProgram(iters);
    sim::Machine m(smallConfig(4)); // spans two chips
    for (unsigned i = 0; i < 4; ++i)
        m.setProgram(i, &p);
    m.run();
    EXPECT_TRUE(m.allHalted());
    EXPECT_EQ(m.peekMem(dataBase, 8), 4 * iters);
}

TEST(Constrained, AbortRetriesAtTbeginc)
{
    // Drive a constrained reader into its transaction, then make
    // another CPU write the line: the constrained TX aborts and the
    // PSW points back at the TBEGINC itself.
    Assembler c;
    c.la(9, 0, std::int64_t(dataBase));
    c.nop();
    c.label("tbc");
    c.tbeginc(0xFF);
    c.lg(1, 9);
    c.lg(2, 9, 512); // second access: window for the conflict
    c.tend();
    c.halt();
    const Program constrained = c.finish();

    Assembler w;
    w.la(9, 0, std::int64_t(dataBase));
    w.lhi(1, 5);
    w.stg(1, 9);
    w.halt();
    const Program writer = w.finish();

    sim::Machine m(smallConfig(2));
    m.setProgram(0, &constrained);
    m.setProgram(1, &writer);

    // Step CPU0 through LA/NOP/TBEGINC/first LG.
    for (int i = 0; i < 4; ++i)
        m.cpu(0).step();
    ASSERT_TRUE(m.cpu(0).inConstrainedTx());

    // CPU1 writes the tx-read line; CPU0 stiff-arms then aborts.
    int steps = 0;
    while (!m.cpu(1).halted() && steps++ < 200)
        m.cpu(1).step();
    ASSERT_FALSE(m.cpu(0).inTx());
    EXPECT_EQ(m.cpu(0).psw().ia, constrained.labelAddr("tbc"));

    // Let CPU0 finish: the retry must succeed.
    steps = 0;
    while (!m.cpu(0).halted() && steps++ < 500)
        m.cpu(0).step();
    EXPECT_TRUE(m.cpu(0).halted());
    EXPECT_EQ(m.cpu(0).gr(1), 5u);
}

/** Expect the program to be terminated with a constraint violation. */
void
expectViolation(const Program &p, const char *which)
{
    auto m = runProgram(p);
    EXPECT_TRUE(m->cpu(0).halted()) << which;
    EXPECT_EQ(m->os().countOf(tx::InterruptCode::ConstraintViolation),
              1u)
        << which;
    EXPECT_EQ(m->cpu(0).stats().counter("tx.commits").value(), 0u)
        << which;
}

TEST(Constrained, TooManyInstructionsViolates)
{
    Assembler as;
    as.tbeginc(0xFF);
    for (int i = 0; i < 33; ++i)
        as.nop();
    as.tend();
    as.halt();
    expectViolation(as.finish(), "instruction count");
}

TEST(Constrained, ThirtyTwoInstructionsCommit)
{
    Assembler as;
    as.tbeginc(0xFF);
    for (int i = 0; i < 32; ++i)
        as.nop();
    as.tend();
    as.halt();
    auto m = runProgram(as.finish());
    EXPECT_EQ(m->cpu(0)
                  .stats()
                  .counter("tx.commits_constrained")
                  .value(),
              1u);
}

TEST(Constrained, TextFootprintBeyond256BytesViolates)
{
    Assembler as;
    as.tbeginc(0xFF);
    as.j("far");
    // Padding (never executed) pushing "far" past 256 bytes from
    // the TBEGINC.
    for (int i = 0; i < 140; ++i)
        as.nop();
    as.label("far");
    as.tend();
    as.halt();
    expectViolation(as.finish(), "text footprint");
}

TEST(Constrained, BackwardBranchViolates)
{
    Assembler as;
    as.lhi(1, 2);
    as.label("back");
    as.tbeginc(0xFF);
    as.nop();
    as.brct(1, "back"); // backward branch inside the TX
    as.tend();
    as.halt();
    expectViolation(as.finish(), "backward branch");
}

TEST(Constrained, RestrictedOperationViolates)
{
    Assembler as;
    as.lhi(1, 1);
    as.tbeginc(0xFF);
    as.ldgr(0, 1); // FP op: not in the constrained subset
    as.tend();
    as.halt();
    expectViolation(as.finish(), "restricted op");
}

TEST(Constrained, NtstgViolates)
{
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(1, 1);
    as.tbeginc(0xFF);
    as.ntstg(1, 9);
    as.tend();
    as.halt();
    expectViolation(as.finish(), "NTSTG");
}

TEST(Constrained, NestedTbeginViolates)
{
    Assembler as;
    as.tbeginc(0xFF);
    as.tbegin(0xFF);
    as.tend();
    as.tend();
    as.halt();
    expectViolation(as.finish(), "nested TBEGIN");
}

TEST(Constrained, DataFootprintFiveOctowordsViolates)
{
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.tbeginc(0xFF);
    as.lg(1, 9, 0);
    as.lg(2, 9, 32);
    as.lg(3, 9, 64);
    as.lg(4, 9, 96);
    as.lg(5, 9, 128); // fifth distinct octoword
    as.tend();
    as.halt();
    expectViolation(as.finish(), "data footprint");
}

TEST(Constrained, FourOctowordsCommit)
{
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.tbeginc(0xFF);
    as.lg(1, 9, 0);
    as.lg(2, 9, 32);
    as.lg(3, 9, 64);
    as.lg(4, 9, 96);
    as.lg(5, 9, 0); // repeat touches no new octoword
    as.tend();
    as.halt();
    auto m = runProgram(as.finish());
    EXPECT_EQ(m->cpu(0)
                  .stats()
                  .counter("tx.commits_constrained")
                  .value(),
              1u);
}

TEST(Constrained, StraddlingAccessCountsBothOctowords)
{
    // An 8-byte access at offset 28 touches octowords 0 and 1.
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.tbeginc(0xFF);
    as.lg(1, 9, 28);
    as.lg(2, 9, 64);
    as.lg(3, 9, 96);
    as.lg(4, 9, 128); // would be the fifth octoword
    as.tend();
    as.halt();
    expectViolation(as.finish(), "straddle");
}

TEST(Constrained, TbegincInsideTbeginNestsAsNormal)
{
    // Paper §II.D: TBEGINC within a non-constrained transaction is
    // treated as a new non-constrained nesting level.
    Assembler as;
    as.tbegin(0xFF);
    as.jnz("out");
    as.tbeginc(0xFF);
    as.etnd(1); // depth 2, non-constrained semantics
    // A loop would violate constrained rules; here it must be fine.
    as.lhi(2, 2);
    as.label("loop");
    as.brct(2, "loop");
    as.tend();
    as.tend();
    as.label("out");
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).gr(1), 2u);
    EXPECT_EQ(m->cpu(0).stats().counter("tx.commits").value(), 1u);
    EXPECT_EQ(m->cpu(0)
                  .stats()
                  .counter("tx.commits_constrained")
                  .value(),
              0u);
}

TEST(Constrained, TbegincImplicitFprControlBlocksFpOps)
{
    // TBEGINC has no F control; it reads as zero, so when nested
    // inside a TBEGIN that allowed FPR mods, the effective control
    // still blocks them.
    Assembler as;
    as.lhi(1, 1);
    as.tbegin(0xFF, {.allowFprMod = true});
    as.jnz("out");
    as.tbeginc(0xFF);
    as.ldgr(0, 1);
    as.tend();
    as.tend();
    as.label("out");
    as.halt();
    const Program p = as.finish();
    auto m = runProgram(p);
    EXPECT_EQ(m->cpu(0).stats().counter("tx.commits").value(), 0u);
    EXPECT_EQ(m->cpu(0).psw().cc, 3);
}

TEST(Constrained, EscalationDelaysUnderDiagnosticAborts)
{
    // TDC Random forces repeated constrained aborts; millicode's
    // escalating random delays must kick in, and the transaction
    // must still eventually succeed (TDC Always is treated as
    // Random for constrained TXs).
    const Program p = constrainedIncrementProgram(20);
    auto m = std::make_unique<sim::Machine>(smallConfig(1));
    m->cpu(0).tdcControl().mode = debug::TdcMode::Always;
    m->cpu(0).tdcControl().abortProbability = 0.4;
    m->setProgram(0, &p);
    m->run();
    EXPECT_TRUE(m->cpu(0).halted());
    EXPECT_EQ(m->peekMem(dataBase, 8), 20u);
    EXPECT_GT(m->cpu(0).stats().counter("tx.aborts").value(), 0u);
    EXPECT_GT(m->cpu(0)
                  .stats()
                  .counter("millicode.constrained_delays")
                  .value(),
              0u);
}

TEST(Constrained, SoloModeLastResortEngages)
{
    const Program p = constrainedIncrementProgram(60);
    auto m = std::make_unique<sim::Machine>(smallConfig(2));
    // High diagnostic abort pressure on CPU 0 only.
    m->cpu(0).tdcControl().mode = debug::TdcMode::Random;
    m->cpu(0).tdcControl().abortProbability = 0.5;
    m->setProgram(0, &p);
    m->setProgram(1, &p);
    m->run();
    EXPECT_TRUE(m->allHalted());
    EXPECT_EQ(m->peekMem(dataBase, 8), 120u);
    // With p=0.5 per instruction over many aborts the 12-abort solo
    // threshold is reached (deterministic for the fixed seed).
    EXPECT_GT(m->cpu(0)
                  .stats()
                  .counter("millicode.solo_requests")
                  .value(),
              0u);
}

} // namespace
