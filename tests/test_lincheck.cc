/**
 * @file
 * The operation-history linearizability checker (inject/lincheck):
 * directed accept/reject histories per ADT (lost update, duplicate
 * dequeue, stale read, FIFO violations, probe-bound puts), pending
 * (maybe-completed) operation semantics, malformed-history and
 * state-limit handling, a property test over randomly generated
 * sequential histories with jittered windows, and the ISA-level
 * OPLOGB/OPLOGE recording plumbing (zero cycle cost, watchdog
 * pending-op diagnostics).
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"
#include "inject/lincheck.hh"
#include "isa/assembler.hh"
#include "workload/op_log.hh"
#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using inject::LinOp;
using inject::LinOpCode;
using inject::LinVerdict;

LinOp
mk(CpuId cpu, std::uint32_t seq, Cycles inv, Cycles resp,
   LinOpCode code, std::uint64_t arg, std::uint64_t result)
{
    LinOp op;
    op.cpu = cpu;
    op.seq = seq;
    op.invoke = inv;
    op.response = resp;
    op.code = code;
    op.arg = arg;
    op.result = result;
    return op;
}

LinOp
mkPending(CpuId cpu, std::uint32_t seq, Cycles inv, LinOpCode code,
          std::uint64_t arg)
{
    LinOp op;
    op.cpu = cpu;
    op.seq = seq;
    op.invoke = inv;
    op.pending = true;
    op.code = code;
    op.arg = arg;
    return op;
}

// ---------------------------------------------------------------
// Set histories.
// ---------------------------------------------------------------

TEST(LincheckSet, SequentialHistoryAccepts)
{
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 10, LinOpCode::SetInsert, 5, 1),
        mk(0, 1, 20, 30, LinOpCode::SetLookup, 5, 1),
        mk(0, 2, 40, 50, LinOpCode::SetDelete, 5, 1),
        mk(0, 3, 60, 70, LinOpCode::SetLookup, 5, 0),
    };
    const LinVerdict v = inject::checkSetLinearizable(h, {});
    ASSERT_TRUE(v.checked) << v.reason;
    EXPECT_TRUE(v.linearizable) << v.reason;
    EXPECT_EQ(v.numOps, 4u);
    EXPECT_EQ(v.numPending, 0u);
    // A fully sequential history is one forced pass: one
    // specification apply per operation, no branching.
    EXPECT_EQ(v.statesExplored, 4u);
    EXPECT_TRUE(v.window.empty());
}

TEST(LincheckSet, EmptyHistoryAccepts)
{
    const LinVerdict v = inject::checkSetLinearizable({}, {1, 2});
    ASSERT_TRUE(v.checked);
    EXPECT_TRUE(v.linearizable);
}

TEST(LincheckSet, OverlappingReadResolvedByOrderChoice)
{
    // The lookup runs entirely inside the insert's window; it can
    // only return 1 if the insert linearizes first — which the
    // checker must discover.
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 100, LinOpCode::SetInsert, 5, 1),
        mk(1, 0, 10, 20, LinOpCode::SetLookup, 5, 1),
    };
    const LinVerdict v = inject::checkSetLinearizable(h, {});
    ASSERT_TRUE(v.checked) << v.reason;
    EXPECT_TRUE(v.linearizable) << v.reason;
}

TEST(LincheckSet, LostUpdateRejected)
{
    // Two non-overlapping inserts of the same key both claim they
    // applied: the second must have observed the first (classic
    // lost-update signature).
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 10, LinOpCode::SetInsert, 7, 1),
        mk(1, 0, 20, 30, LinOpCode::SetInsert, 7, 1),
    };
    const LinVerdict v = inject::checkSetLinearizable(h, {});
    ASSERT_TRUE(v.checked) << v.reason;
    EXPECT_FALSE(v.linearizable);
    EXPECT_FALSE(v.reason.empty());
    EXPECT_FALSE(v.window.empty());
}

TEST(LincheckSet, StaleReadRejected)
{
    // The insert committed (responded) before the lookup was even
    // invoked, yet the lookup missed the key.
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 10, LinOpCode::SetInsert, 9, 1),
        mk(1, 0, 20, 30, LinOpCode::SetLookup, 9, 0),
    };
    const LinVerdict v = inject::checkSetLinearizable(h, {});
    ASSERT_TRUE(v.checked) << v.reason;
    EXPECT_FALSE(v.linearizable);
}

TEST(LincheckSet, InitialStateRespected)
{
    const std::vector<LinOp> hit = {
        mk(0, 0, 0, 10, LinOpCode::SetLookup, 3, 1),
    };
    EXPECT_TRUE(inject::checkSetLinearizable(hit, {3}).linearizable);

    const std::vector<LinOp> dup = {
        mk(0, 0, 0, 10, LinOpCode::SetInsert, 3, 1),
    };
    const LinVerdict v = inject::checkSetLinearizable(dup, {3});
    ASSERT_TRUE(v.checked);
    EXPECT_FALSE(v.linearizable); // already present: must return 0
}

TEST(LincheckSet, PendingInsertExplainsEitherOutcome)
{
    // An insert in flight at the halt may or may not have taken
    // effect: a later lookup is allowed to see both worlds.
    for (const std::uint64_t seen : {0u, 1u}) {
        const std::vector<LinOp> h = {
            mkPending(0, 0, 0, LinOpCode::SetInsert, 5),
            mk(1, 0, 10, 20, LinOpCode::SetLookup, 5, seen),
        };
        const LinVerdict v = inject::checkSetLinearizable(h, {});
        ASSERT_TRUE(v.checked) << v.reason;
        EXPECT_TRUE(v.linearizable)
            << "lookup result " << seen << ": " << v.reason;
        EXPECT_EQ(v.numPending, 1u);
    }
}

TEST(LincheckSet, PendingDeleteExplainsDoubleInsert)
{
    // A pending delete whose window overlaps the second insert can
    // linearize between the two inserts and explain the history...
    const std::vector<LinOp> ok = {
        mk(0, 0, 0, 10, LinOpCode::SetInsert, 5, 1),
        mk(1, 0, 20, 30, LinOpCode::SetInsert, 5, 1),
        mkPending(2, 0, 5, LinOpCode::SetDelete, 5),
    };
    EXPECT_TRUE(inject::checkSetLinearizable(ok, {}).linearizable);

    // ... but not when it was invoked only after the second insert
    // responded: real-time order pins it too late to help.
    const std::vector<LinOp> bad = {
        mk(0, 0, 0, 10, LinOpCode::SetInsert, 5, 1),
        mk(1, 0, 20, 30, LinOpCode::SetInsert, 5, 1),
        mkPending(2, 0, 40, LinOpCode::SetDelete, 5),
    };
    const LinVerdict v = inject::checkSetLinearizable(bad, {});
    ASSERT_TRUE(v.checked) << v.reason;
    EXPECT_FALSE(v.linearizable);
}

TEST(LincheckSet, MalformedOverlapOnOneCpuUnchecked)
{
    // One CPU cannot have two operations in flight at once; such a
    // history is a recording bug, not a linearizability verdict.
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 50, LinOpCode::SetInsert, 1, 1),
        mk(0, 1, 10, 60, LinOpCode::SetInsert, 2, 1),
    };
    const LinVerdict v = inject::checkSetLinearizable(h, {});
    EXPECT_FALSE(v.checked);
    EXPECT_NE(v.reason.find("malformed"), std::string::npos);
}

TEST(LincheckSet, BackwardsWindowUnchecked)
{
    const std::vector<LinOp> h = {
        mk(0, 0, 50, 10, LinOpCode::SetLookup, 1, 0),
    };
    EXPECT_FALSE(inject::checkSetLinearizable(h, {}).checked);
}

TEST(LincheckSet, StateLimitGivesUpUnchecked)
{
    // Eight fully-overlapping inserts plus one impossible lookup:
    // no linearization exists, and finding that out costs far more
    // than a ten-state budget.
    std::vector<LinOp> h;
    for (unsigned i = 0; i < 8; ++i) {
        h.push_back(mk(i, 0, 0, 1000, LinOpCode::SetInsert,
                       100 + i, 1));
    }
    h.push_back(mk(8, 0, 2000, 2100, LinOpCode::SetLookup, 99, 1));
    inject::LinCheckLimits limits;
    limits.maxStates = 10;
    const LinVerdict v = inject::checkSetLinearizable(h, {}, limits);
    EXPECT_FALSE(v.checked);
    EXPECT_NE(v.reason.find("state limit"), std::string::npos);
}

// ---------------------------------------------------------------
// Queue histories.
// ---------------------------------------------------------------

TEST(LincheckQueue, FifoAccepts)
{
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 10, LinOpCode::QueueEnqueue, 1, 1),
        mk(0, 1, 20, 30, LinOpCode::QueueEnqueue, 2, 2),
        mk(1, 0, 40, 50, LinOpCode::QueueDequeue, 0, 1),
        mk(1, 1, 60, 70, LinOpCode::QueueDequeue, 0, 2),
        mk(1, 2, 80, 90, LinOpCode::QueueDequeue, 0, 0), // empty
    };
    const LinVerdict v = inject::checkQueueLinearizable(h, {});
    ASSERT_TRUE(v.checked) << v.reason;
    EXPECT_TRUE(v.linearizable) << v.reason;
}

TEST(LincheckQueue, DuplicateDequeueRejected)
{
    // One enqueue of 7, two dequeues both observing 7: atomicity of
    // the head advance was broken.
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 10, LinOpCode::QueueEnqueue, 7, 7),
        mk(1, 0, 20, 30, LinOpCode::QueueDequeue, 0, 7),
        mk(2, 0, 40, 50, LinOpCode::QueueDequeue, 0, 7),
    };
    const LinVerdict v = inject::checkQueueLinearizable(h, {});
    ASSERT_TRUE(v.checked) << v.reason;
    EXPECT_FALSE(v.linearizable);
}

TEST(LincheckQueue, FifoOrderViolationRejected)
{
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 10, LinOpCode::QueueEnqueue, 1, 1),
        mk(0, 1, 20, 30, LinOpCode::QueueEnqueue, 2, 2),
        mk(1, 0, 40, 50, LinOpCode::QueueDequeue, 0, 2), // skipped 1
    };
    const LinVerdict v = inject::checkQueueLinearizable(h, {});
    ASSERT_TRUE(v.checked) << v.reason;
    EXPECT_FALSE(v.linearizable);
}

TEST(LincheckQueue, FalseEmptyRejected)
{
    const std::vector<LinOp> deq0 = {
        mk(0, 0, 0, 10, LinOpCode::QueueDequeue, 0, 0),
    };
    // Initial value present: claiming empty is a lost element.
    const LinVerdict v = inject::checkQueueLinearizable(deq0, {5});
    ASSERT_TRUE(v.checked) << v.reason;
    EXPECT_FALSE(v.linearizable);

    const std::vector<LinOp> deq5 = {
        mk(0, 0, 0, 10, LinOpCode::QueueDequeue, 0, 5),
    };
    EXPECT_TRUE(
        inject::checkQueueLinearizable(deq5, {5}).linearizable);
}

TEST(LincheckQueue, ConcurrentEnqueueOrderIsFree)
{
    // Two overlapping enqueues may linearize either way; the
    // dequeues observing 2 then 1 force the non-program order.
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 100, LinOpCode::QueueEnqueue, 1, 1),
        mk(1, 0, 0, 100, LinOpCode::QueueEnqueue, 2, 2),
        mk(2, 0, 200, 210, LinOpCode::QueueDequeue, 0, 2),
        mk(2, 1, 220, 230, LinOpCode::QueueDequeue, 0, 1),
    };
    const LinVerdict v = inject::checkQueueLinearizable(h, {});
    ASSERT_TRUE(v.checked) << v.reason;
    EXPECT_TRUE(v.linearizable) << v.reason;
}

TEST(LincheckQueue, PendingDequeueMayHaveTakenValue)
{
    // A dequeue in flight at the halt may have removed the only
    // element, so a later dequeue legitimately finds the queue
    // empty — and equally legitimately finds the value.
    for (const std::uint64_t later : {0u, 5u}) {
        const std::vector<LinOp> h = {
            mk(0, 0, 0, 10, LinOpCode::QueueEnqueue, 5, 5),
            mkPending(1, 0, 20, LinOpCode::QueueDequeue, 0),
            mk(2, 0, 40, 50, LinOpCode::QueueDequeue, 0, later),
        };
        const LinVerdict v = inject::checkQueueLinearizable(h, {});
        ASSERT_TRUE(v.checked) << v.reason;
        EXPECT_TRUE(v.linearizable)
            << "later dequeue " << later << ": " << v.reason;
    }
}

// ---------------------------------------------------------------
// Open-addressed map histories.
// ---------------------------------------------------------------

LinVerdict
checkMap(const std::vector<LinOp> &h,
         std::vector<std::uint64_t> slots = std::vector<
             std::uint64_t>(10, 0))
{
    // 8 buckets + 2 probe-tail slots, home slot = key % 8.
    return inject::checkMapLinearizable(
        h, slots, 8, 2,
        [](std::uint64_t k) { return k % 8; });
}

TEST(LincheckMap, PutThenGetAccepts)
{
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 10, LinOpCode::MapPut, 3, 1),
        mk(0, 1, 20, 30, LinOpCode::MapGet, 3, 3),
        mk(0, 2, 40, 50, LinOpCode::MapGet, 4, 0), // miss
    };
    const LinVerdict v = checkMap(h);
    ASSERT_TRUE(v.checked) << v.reason;
    EXPECT_TRUE(v.linearizable) << v.reason;
}

TEST(LincheckMap, StaleGetRejected)
{
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 10, LinOpCode::MapPut, 3, 1),
        mk(1, 0, 20, 30, LinOpCode::MapGet, 3, 0), // missed the put
    };
    const LinVerdict v = checkMap(h);
    ASSERT_TRUE(v.checked) << v.reason;
    EXPECT_FALSE(v.linearizable);
}

TEST(LincheckMap, TornValueRejected)
{
    // The workload stores value == key; any other observed value is
    // a torn or lost update.
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 10, LinOpCode::MapPut, 3, 1),
        mk(1, 0, 20, 30, LinOpCode::MapGet, 3, 99),
    };
    const LinVerdict v = checkMap(h);
    ASSERT_TRUE(v.checked) << v.reason;
    EXPECT_FALSE(v.linearizable);
}

TEST(LincheckMap, ProbeBoundDropsPut)
{
    // Keys 3, 11, 19 all hash to bucket 3 with a 2-slot probe
    // window: the third put must report it was dropped.
    const std::vector<LinOp> dropped = {
        mk(0, 0, 0, 10, LinOpCode::MapPut, 3, 1),
        mk(0, 1, 20, 30, LinOpCode::MapPut, 11, 1),
        mk(0, 2, 40, 50, LinOpCode::MapPut, 19, 0),
    };
    EXPECT_TRUE(checkMap(dropped).linearizable);

    const std::vector<LinOp> claimed = {
        mk(0, 0, 0, 10, LinOpCode::MapPut, 3, 1),
        mk(0, 1, 20, 30, LinOpCode::MapPut, 11, 1),
        mk(0, 2, 40, 50, LinOpCode::MapPut, 19, 1), // impossible
    };
    const LinVerdict v = checkMap(claimed);
    ASSERT_TRUE(v.checked) << v.reason;
    EXPECT_FALSE(v.linearizable);
}

TEST(LincheckMap, InitialSlotsRespected)
{
    std::vector<std::uint64_t> slots(10, 0);
    slots[5] = 5; // key 5 prefilled in its home slot
    const std::vector<LinOp> h = {
        mk(0, 0, 0, 10, LinOpCode::MapGet, 5, 5),
    };
    EXPECT_TRUE(checkMap(h, slots).linearizable);
}

// ---------------------------------------------------------------
// Property test: generated sequential set histories.
// ---------------------------------------------------------------

TEST(LincheckProperty, JitterAcceptsAndMutationRejects)
{
    constexpr unsigned numOps = 24;
    constexpr unsigned rounds = 12;

    for (std::uint64_t round = 1; round <= rounds; ++round) {
        Rng rng(round * 0x9E3779B97F4A7C15ULL);

        // A random initial set and a random valid sequential
        // history against it, one operation every 10 cycles.
        std::set<std::uint64_t> model;
        std::vector<std::uint64_t> initial;
        for (std::uint64_t k = 1; k <= 8; ++k) {
            if (rng.nextBool(0.5)) {
                model.insert(k);
                initial.push_back(k);
            }
        }
        struct SeqOp
        {
            Cycles t;
            LinOpCode code;
            std::uint64_t arg, result;
        };
        std::vector<SeqOp> seq;
        for (unsigned i = 0; i < numOps; ++i) {
            SeqOp op;
            op.t = 100 + 10 * Cycles(i);
            op.code = LinOpCode(rng.nextBounded(3));
            op.arg = 1 + rng.nextBounded(12);
            const bool present = model.count(op.arg) != 0;
            switch (op.code) {
              case LinOpCode::SetLookup:
                op.result = present ? 1 : 0;
                break;
              case LinOpCode::SetInsert:
                op.result = present ? 0 : 1;
                model.insert(op.arg);
                break;
              default:
                op.result = present ? 1 : 0;
                model.erase(op.arg);
                break;
            }
            seq.push_back(op);
        }

        // Accept variant: widen every window by up to 15 cycles on
        // each side (overlapping neighbours), spread across CPUs so
        // per-CPU operations stay sequential. The true order is
        // still a valid linearization, so this must accept.
        std::vector<LinOp> jittered;
        std::vector<Cycles> cpu_last;
        std::vector<std::uint32_t> cpu_seq;
        for (const SeqOp &op : seq) {
            const Cycles inv = op.t - rng.nextBounded(16);
            const Cycles resp = op.t + rng.nextBounded(16);
            std::size_t cpu = cpu_last.size();
            for (std::size_t c = 0; c < cpu_last.size(); ++c) {
                if (cpu_last[c] <= inv) {
                    cpu = c;
                    break;
                }
            }
            if (cpu == cpu_last.size()) {
                cpu_last.push_back(0);
                cpu_seq.push_back(0);
            }
            cpu_last[cpu] = resp;
            jittered.push_back(mk(CpuId(cpu), cpu_seq[cpu]++, inv,
                                  resp, op.code, op.arg,
                                  op.result));
        }
        const LinVerdict ok =
            inject::checkSetLinearizable(jittered, initial);
        ASSERT_TRUE(ok.checked) << "round " << round << ": "
                                << ok.reason;
        EXPECT_TRUE(ok.linearizable)
            << "round " << round << ": " << ok.reason;

        // Reject variant: disjoint windows force the one true order,
        // then a single flipped result makes it inexplicable.
        std::vector<LinOp> mutated;
        for (unsigned i = 0; i < numOps; ++i) {
            const SeqOp &op = seq[i];
            mutated.push_back(mk(0, i, op.t - rng.nextBounded(5),
                                 op.t + rng.nextBounded(5), op.code,
                                 op.arg, op.result));
        }
        mutated[rng.nextBounded(numOps)].result ^= 1;
        const LinVerdict bad =
            inject::checkSetLinearizable(mutated, initial);
        ASSERT_TRUE(bad.checked) << "round " << round << ": "
                                 << bad.reason;
        EXPECT_FALSE(bad.linearizable) << "round " << round;
        EXPECT_FALSE(bad.window.empty());
    }
}

// ---------------------------------------------------------------
// Recording plumbing: OPLOGB/OPLOGE through a real machine.
// ---------------------------------------------------------------

TEST(OpLogIsa, RecordsWithZeroCycleCost)
{
    const auto build = [](bool logged) {
        isa::Assembler as;
        as.lhi(1, 5);
        if (logged)
            as.oplogb(2, 1, 3);
        as.lhi(2, 6);
        if (logged)
            as.oploge(2);
        as.halt();
        return as.finish();
    };

    const isa::Program plain = build(false);
    const isa::Program logged = build(true);

    sim::Machine m1(smallConfig(1));
    m1.setProgram(0, &plain);
    const Cycles base = m1.run();

    workload::OpLog log(1);
    sim::Machine m2(smallConfig(1));
    m2.cpu(0).setOpRecorder(&log);
    m2.setProgram(0, &logged);
    const Cycles withLog = m2.run();

    // The pseudo-ops are free: identical cycle counts.
    EXPECT_EQ(base, withLog);

    ASSERT_EQ(log.ops(0).size(), 1u);
    const workload::OpRecord &rec = log.ops(0).front();
    EXPECT_TRUE(rec.completed);
    EXPECT_EQ(rec.code, 2u);
    EXPECT_EQ(rec.a0, 5u); // R1 at invoke
    EXPECT_EQ(rec.result, 6u); // R2 at response
    EXPECT_LE(rec.invoke, rec.response);
    EXPECT_EQ(log.protocolErrors(), 0u);
    EXPECT_FALSE(log.truncated());
}

TEST(OpLogIsa, WithoutRecorderOpLogIsNop)
{
    isa::Assembler as;
    as.lhi(1, 5);
    as.oplogb(0, 1);
    as.oploge(1);
    as.halt();
    const isa::Program p = as.finish();

    sim::Machine m(smallConfig(1));
    m.setProgram(0, &p);
    m.run();
    EXPECT_TRUE(m.allHalted());
    EXPECT_EQ(m.cpu(0).gr(1), 5u);
}

TEST(OpLogIsa, PendingOpSurfacesInWatchdogDiagnosis)
{
    // An operation invoked but never responded when the watchdog
    // halts the machine must appear as the CPU's pending window in
    // the diagnosis bundle.
    isa::Assembler as;
    as.lhi(1, 42);
    as.oplogb(1, 1);
    as.label("spin");
    as.j("spin"); // livelock inside the operation
    const isa::Program p = as.finish();

    sim::MachineConfig cfg = smallConfig(1);
    cfg.watchdogCycles = 5'000;
    sim::Machine m(cfg);
    workload::OpLog log(1);
    m.cpu(0).setOpRecorder(&log);
    m.setProgram(0, &p);
    m.run(1'000'000);

    EXPECT_TRUE(m.watchdogFired());
    ASSERT_EQ(log.ops(0).size(), 1u);
    EXPECT_FALSE(log.ops(0).front().completed);

    const std::string report = m.watchdogReport().dump();
    EXPECT_NE(report.find("pending_op"), std::string::npos);
    EXPECT_NE(report.find("invoke_cycle"), std::string::npos);
}

TEST(OpLogIsa, ProtocolErrorsCounted)
{
    isa::Assembler as;
    as.lhi(1, 1);
    as.oploge(1); // response with nothing in flight
    as.oplogb(0, 1);
    as.oplogb(0, 1); // double invoke
    as.halt();
    const isa::Program p = as.finish();

    workload::OpLog log(1);
    sim::Machine m(smallConfig(1));
    m.cpu(0).setOpRecorder(&log);
    m.setProgram(0, &p);
    m.run();
    EXPECT_EQ(log.protocolErrors(), 2u);

    // A tainted log must refuse to produce a verdict.
    const LinVerdict v = workload::checkLoggedHistory(log, [] {
        return inject::checkSetLinearizable({}, {});
    });
    EXPECT_FALSE(v.checked);
    EXPECT_NE(v.reason.find("protocol"), std::string::npos);
}

TEST(OpLogIsa, OverflowMarksTruncation)
{
    workload::OpLog log(1, 2); // capacity two records
    for (unsigned i = 0; i < 3; ++i) {
        log.opInvoke(0, Cycles(10 * i), 0, i, 0);
        log.opResponse(0, Cycles(10 * i + 5), 1);
    }
    EXPECT_TRUE(log.truncated());
    EXPECT_EQ(log.dropped(0), 1u);
    EXPECT_EQ(log.ops(0).size(), 2u);

    const LinVerdict v = workload::checkLoggedHistory(log, [] {
        return inject::checkSetLinearizable({}, {});
    });
    EXPECT_FALSE(v.checked);
    EXPECT_NE(v.reason.find("truncated"), std::string::npos);
}

} // namespace
