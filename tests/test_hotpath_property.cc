/**
 * @file
 * Randomized equivalence of the indexed per-access hot path against
 * naive reference models.
 *
 * The production GatheringStoreCache answers overlay/findOpen/XI
 * queries from a block index (open-addressed map + occupancy
 * bitmaps + line summary); the production CacheArray keeps a
 * SoA layout with per-set valid masks and fused probes. Both claim
 * bit-identical semantics to the historical linear scans. These
 * tests drive thousands of randomized mixed operations through the
 * production structures and through straight-line reference models
 * (a scan-based store cache, a true-LRU map array) and compare every
 * observable — query results, victim choices, live counts, and the
 * full memory image — after every operation, plus the structures'
 * own indexCheck() ground-truth verification.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <bitset>
#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.hh"
#include "core/store_cache.hh"
#include "mem/cache_array.hh"
#include "mem/main_memory.hh"

namespace {

using namespace ztx;
using core::GatheringStoreCache;
using core::storeCacheBlockAlign;
using core::storeCacheBlockBytes;
using mem::CacheArray;
using mem::CacheGeometry;
using mem::MainMemory;

/**
 * The historical gathering store cache: a flat entry array with
 * linear scans everywhere, mirroring the pre-index implementation
 * operation for operation (same eviction choice, same overflow
 * condition, same write-back order).
 */
class RefStoreCache
{
  public:
    explicit RefStoreCache(unsigned num_entries)
        : entries_(num_entries)
    {
    }

    bool
    store(Addr addr, const std::uint8_t *bytes, unsigned len,
          bool transactional, bool ntstg, MainMemory &memory)
    {
        while (len > 0) {
            const Addr block = storeCacheBlockAlign(addr);
            const unsigned in_block = unsigned(std::min<std::uint64_t>(
                len, block + storeCacheBlockBytes - addr));
            Entry *entry = nullptr;
            for (auto &e : entries_) {
                if (e.live && !e.closed && e.block == block &&
                    e.transactional == transactional) {
                    entry = &e;
                    break;
                }
            }
            if (!entry) {
                for (auto &e : entries_) {
                    if (!e.live) {
                        entry = &e;
                        break;
                    }
                }
                if (!entry) {
                    Entry *oldest = nullptr;
                    for (auto &e : entries_) {
                        if (!e.transactional &&
                            (!oldest || e.seq < oldest->seq))
                            oldest = &e;
                    }
                    if (!oldest)
                        return false; // all-transactional overflow
                    writeBack(*oldest, memory);
                    oldest->live = false;
                    entry = oldest;
                }
                entry->live = true;
                entry->transactional = transactional;
                entry->closed = false;
                entry->block = block;
                entry->seq = ++seq_;
                entry->valid.reset();
                entry->ntstg.reset();
            }
            const std::uint64_t off = addr - entry->block;
            for (unsigned i = 0; i < in_block; ++i) {
                const std::uint64_t b = off + i;
                entry->data[b] = bytes[i];
                entry->valid.set(b);
                if (ntstg)
                    entry->ntstg.set(b / 8);
            }
            addr += in_block;
            bytes += in_block;
            len -= in_block;
        }
        return true;
    }

    void
    overlay(Addr addr, unsigned len, std::uint8_t *buf) const
    {
        std::vector<const Entry *> hits;
        for (const auto &e : entries_) {
            if (e.live && e.block < addr + len &&
                addr < e.block + storeCacheBlockBytes)
                hits.push_back(&e);
        }
        std::sort(hits.begin(), hits.end(),
                  [](const Entry *a, const Entry *b) {
                      return a->seq < b->seq;
                  });
        for (const Entry *e : hits) {
            const Addr lo = std::max(addr, e->block);
            const Addr hi = std::min(addr + len,
                                     e->block + storeCacheBlockBytes);
            for (Addr b = lo; b < hi; ++b) {
                if (e->valid[b - e->block])
                    buf[b - addr] = e->data[b - e->block];
            }
        }
    }

    void
    closeAllEntries(MainMemory &memory)
    {
        for (auto &e : entries_) {
            if (!e.live)
                continue;
            writeBack(e, memory);
            e.live = false;
        }
    }

    void
    commitTransaction(MainMemory &memory)
    {
        for (auto &e : entries_) {
            if (!e.live || !e.transactional)
                continue;
            writeBack(e, memory);
            e.transactional = false;
            e.ntstg.reset();
        }
    }

    void
    abortTransaction(MainMemory &memory)
    {
        for (auto &e : entries_) {
            if (!e.live || !e.transactional)
                continue;
            for (std::uint64_t dw = 0;
                 dw < storeCacheBlockBytes / 8; ++dw) {
                if (!e.ntstg[dw])
                    continue;
                for (std::uint64_t b = dw * 8; b < dw * 8 + 8; ++b)
                    if (e.valid[b])
                        memory.writeByte(e.block + b, e.data[b]);
            }
            e.live = false;
        }
    }

    bool
    hasTransactionalLine(Addr line) const
    {
        for (const auto &e : entries_)
            if (e.live && e.transactional &&
                lineAlign(e.block) == line)
                return true;
        return false;
    }

    bool
    hasAnyLine(Addr line) const
    {
        for (const auto &e : entries_)
            if (e.live && lineAlign(e.block) == line)
                return true;
        return false;
    }

    void
    drainLine(Addr line, MainMemory &memory)
    {
        for (auto &e : entries_) {
            if (e.live && !e.transactional &&
                lineAlign(e.block) == line) {
                writeBack(e, memory);
                e.live = false;
            }
        }
    }

    void
    drainAll(MainMemory &memory)
    {
        for (auto &e : entries_) {
            if (e.live && !e.transactional) {
                writeBack(e, memory);
                e.live = false;
            }
        }
    }

    unsigned
    liveEntries() const
    {
        unsigned n = 0;
        for (const auto &e : entries_)
            n += e.live ? 1 : 0;
        return n;
    }

    unsigned
    liveTransactionalEntries() const
    {
        unsigned n = 0;
        for (const auto &e : entries_)
            n += (e.live && e.transactional) ? 1 : 0;
        return n;
    }

  private:
    struct Entry
    {
        bool live = false;
        bool transactional = false;
        bool closed = false;
        Addr block = 0;
        std::uint64_t seq = 0;
        std::array<std::uint8_t, storeCacheBlockBytes> data{};
        std::bitset<storeCacheBlockBytes> valid;
        std::bitset<storeCacheBlockBytes / 8> ntstg;
    };

    static void
    writeBack(const Entry &entry, MainMemory &memory)
    {
        for (std::uint64_t b = 0; b < storeCacheBlockBytes; ++b)
            if (entry.valid[b])
                memory.writeByte(entry.block + b, entry.data[b]);
    }

    std::vector<Entry> entries_;
    std::uint64_t seq_ = 0;
};

/** Addresses confined to a few lines so entries collide heavily. */
Addr
pickAddr(Rng &rng, unsigned lines)
{
    return Addr(rng.nextBounded(lines)) * lineSizeBytes +
           rng.nextBounded(lineSizeBytes);
}

TEST(HotPathProperty, StoreCacheMatchesScanReference)
{
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
        Rng rng(seed);
        // 8 entries against 6 lines (12 blocks): gather, evict, and
        // all-transactional overflow paths are all reachable.
        GatheringStoreCache dut(8);
        RefStoreCache ref(8);
        MainMemory dut_mem;
        MainMemory ref_mem;
        constexpr unsigned kLines = 6;
        bool in_tx = false;

        for (unsigned op = 0; op < 4000; ++op) {
            const unsigned kind = unsigned(rng.nextBounded(100));
            if (kind < 55) {
                // Mixed-size store, transactional only inside a tx,
                // NTSTG on a transactional minority.
                const Addr addr = pickAddr(rng, kLines);
                const unsigned len =
                    1u + unsigned(rng.nextBounded(16));
                std::uint8_t bytes[16];
                for (unsigned i = 0; i < len; ++i)
                    bytes[i] = std::uint8_t(rng.next());
                const bool tx = in_tx && rng.nextBool(0.7);
                const bool ntstg = tx && rng.nextBool(0.15);
                const bool ok = dut.store(addr, bytes, len, tx,
                                          ntstg, dut_mem);
                const bool ref_ok = ref.store(addr, bytes, len, tx,
                                              ntstg, ref_mem);
                ASSERT_EQ(ok, ref_ok) << "store overflow diverged";
                if (!ok) {
                    // Footprint overflow: the architecture aborts.
                    dut.abortTransaction(dut_mem);
                    ref.abortTransaction(ref_mem);
                    in_tx = false;
                }
            } else if (kind < 70) {
                // Load overlay across a random window.
                const Addr addr = pickAddr(rng, kLines);
                const unsigned len =
                    1u + unsigned(rng.nextBounded(32));
                std::uint8_t dut_buf[32];
                std::uint8_t ref_buf[32];
                dut_mem.readBlock(addr, dut_buf, len);
                ref_mem.readBlock(addr, ref_buf, len);
                dut.overlay(addr, len, dut_buf);
                ref.overlay(addr, len, ref_buf);
                for (unsigned i = 0; i < len; ++i)
                    ASSERT_EQ(dut_buf[i], ref_buf[i])
                        << "overlay byte " << i << " diverged";
            } else if (kind < 80) {
                // Incoming-XI queries (aligned and unaligned).
                Addr line = lineAlign(pickAddr(rng, kLines));
                if (rng.nextBool(0.2))
                    line += 1 + rng.nextBounded(lineSizeBytes - 1);
                ASSERT_EQ(dut.hasTransactionalLine(line),
                          ref.hasTransactionalLine(line));
                ASSERT_EQ(dut.hasAnyLine(line),
                          ref.hasAnyLine(line));
            } else if (kind < 86) {
                const Addr line = lineAlign(pickAddr(rng, kLines));
                dut.drainLine(line, dut_mem);
                ref.drainLine(line, ref_mem);
            } else if (kind < 90) {
                dut.drainAll(dut_mem);
                ref.drainAll(ref_mem);
            } else if (kind < 96) {
                // Transaction boundary: a new outermost TBEGIN
                // closes+drains, TEND commits, abort discards.
                if (!in_tx) {
                    dut.closeAllEntries(dut_mem);
                    ref.closeAllEntries(ref_mem);
                    in_tx = true;
                } else if (rng.nextBool(0.5)) {
                    dut.commitTransaction(dut_mem);
                    ref.commitTransaction(ref_mem);
                    in_tx = false;
                } else {
                    dut.abortTransaction(dut_mem);
                    ref.abortTransaction(ref_mem);
                    in_tx = false;
                }
            } else {
                ASSERT_EQ(dut.liveEntries(), ref.liveEntries());
                ASSERT_EQ(dut.liveTransactionalEntries(),
                          ref.liveTransactionalEntries());
            }
            ASSERT_EQ(dut.indexCheck(), "") << "after op " << op;
        }

        // Flush both and compare the full memory images.
        if (in_tx) {
            dut.commitTransaction(dut_mem);
            ref.commitTransaction(ref_mem);
        }
        dut.drainAll(dut_mem);
        ref.drainAll(ref_mem);
        for (Addr a = 0; a < Addr(kLines) * lineSizeBytes; ++a)
            ASSERT_EQ(dut_mem.read(a, 1), ref_mem.read(a, 1))
                << "memory byte " << a << " diverged (seed "
                << seed << ")";
    }
}

/** True-LRU reference: per-set vector ordered by insertion slot. */
class RefCacheArray
{
  public:
    RefCacheArray(std::uint64_t rows, unsigned assoc)
        : rows_(rows), assoc_(assoc), effAssoc_(assoc),
          sets_(rows)
    {
    }

    struct Way
    {
        bool valid = false;
        Addr line = 0;
        std::uint8_t flags = 0;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t row(Addr line) const
    {
        return (line >> lineSizeLog2) % rows_;
    }

    Way *
    find(Addr line)
    {
        for (auto &w : sets_[row(line)])
            if (w.valid && w.line == line)
                return &w;
        return nullptr;
    }

    bool
    touch(Addr line)
    {
        Way *w = find(line);
        if (!w)
            return false;
        w->lastUse = ++useTick_;
        return true;
    }

    CacheArray::Victim
    insert(Addr line, std::uint8_t flags)
    {
        auto &set = sets_[row(line)];
        if (set.size() < assoc_)
            set.resize(assoc_);
        unsigned valid_ways = 0;
        for (const auto &w : set)
            valid_ways += w.valid ? 1 : 0;
        Way *slot = nullptr;
        if (valid_ways < effAssoc_) {
            for (auto &w : set) {
                if (!w.valid) {
                    slot = &w;
                    break;
                }
            }
        }
        CacheArray::Victim victim;
        if (!slot) {
            for (auto &w : set) {
                if (!w.valid)
                    continue;
                if (!slot || w.lastUse < slot->lastUse)
                    slot = &w;
            }
            victim.valid = true;
            victim.line = slot->line;
            victim.flags = slot->flags;
        }
        slot->valid = true;
        slot->line = line;
        slot->flags = flags;
        slot->lastUse = ++useTick_;
        return victim;
    }

    bool
    invalidate(Addr line)
    {
        Way *w = find(line);
        if (!w)
            return false;
        w->valid = false;
        w->flags = 0;
        return true;
    }

    void
    clearFlagsAll(std::uint8_t bits)
    {
        for (auto &set : sets_)
            for (auto &w : set)
                if (w.valid)
                    w.flags &= std::uint8_t(~bits);
    }

    void setEffectiveAssoc(unsigned ways)
    {
        effAssoc_ = (ways == 0 || ways >= assoc_) ? assoc_ : ways;
    }

    std::size_t
    validCount() const
    {
        std::size_t n = 0;
        for (const auto &set : sets_)
            for (const auto &w : set)
                n += w.valid ? 1 : 0;
        return n;
    }

  private:
    std::uint64_t rows_;
    unsigned assoc_;
    unsigned effAssoc_;
    std::vector<std::vector<Way>> sets_;
    std::uint64_t useTick_ = 0;
};

TEST(HotPathProperty, CacheArrayMatchesTrueLruReference)
{
    for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
        Rng rng(seed);
        constexpr std::uint64_t kRows = 8;
        constexpr unsigned kAssoc = 4;
        CacheArray dut(
            CacheGeometry{kRows * kAssoc * lineSizeBytes, kAssoc},
            "dut");
        RefCacheArray ref(kRows, kAssoc);
        constexpr unsigned kLines = 64; // 8 tags per set

        const auto pickLine = [&] {
            return Addr(rng.nextBounded(kLines)) * lineSizeBytes;
        };

        for (unsigned op = 0; op < 6000; ++op) {
            const unsigned kind = unsigned(rng.nextBounded(100));
            const Addr line = pickLine();
            if (kind < 35) {
                if (dut.contains(line))
                    continue; // insert requires absence
                const std::uint8_t flags =
                    std::uint8_t(rng.nextBounded(4));
                // Exercise both the classic and the fused path; the
                // probe must agree with insertWouldEvict.
                CacheArray::Victim dv;
                if (rng.nextBool(0.5)) {
                    const auto p = dut.probeForInsert(line);
                    ASSERT_FALSE(p.hit);
                    ASSERT_EQ(p.wouldEvict,
                              dut.insertWouldEvict(line));
                    dv = dut.insertAt(p, line, flags);
                } else {
                    dv = dut.insert(line, flags);
                }
                const auto rv = ref.insert(line, flags);
                ASSERT_EQ(dv.valid, rv.valid);
                if (dv.valid) {
                    ASSERT_EQ(dv.line, rv.line);
                    ASSERT_EQ(dv.flags, rv.flags);
                }
            } else if (kind < 60) {
                // Fused find+touch against the reference's touch.
                const bool hit = rng.nextBool(0.5)
                                     ? dut.findAndTouch(line)
                                     : dut.touch(line);
                ASSERT_EQ(hit, ref.touch(line));
            } else if (kind < 72) {
                const auto *w = ref.find(line);
                ASSERT_EQ(dut.contains(line), w != nullptr);
                ASSERT_EQ(dut.flagsOf(line),
                          w ? w->flags : std::uint8_t(0));
            } else if (kind < 82) {
                if (dut.contains(line)) {
                    const std::uint8_t bits =
                        std::uint8_t(1 + rng.nextBounded(3));
                    dut.setFlags(line, bits);
                    ref.find(line)->flags |= bits;
                } else {
                    const std::uint8_t bits =
                        std::uint8_t(1 + rng.nextBounded(3));
                    dut.clearFlags(line, bits);
                    ASSERT_EQ(ref.find(line), nullptr);
                }
            } else if (kind < 90) {
                ASSERT_EQ(dut.invalidate(line),
                          ref.invalidate(line));
            } else if (kind < 95) {
                const std::uint8_t bits =
                    std::uint8_t(1 + rng.nextBounded(3));
                dut.clearFlagsAll(bits);
                ref.clearFlagsAll(bits);
            } else if (kind < 98) {
                // XI-style capacity squeeze and release.
                const unsigned ways =
                    unsigned(1 + rng.nextBounded(kAssoc));
                dut.setEffectiveAssoc(ways);
                ref.setEffectiveAssoc(ways);
            } else {
                ASSERT_EQ(dut.validCount(), ref.validCount());
            }
            ASSERT_EQ(dut.indexCheck(), "") << "after op " << op;
        }

        // Final sweep: every possible tag agrees.
        for (unsigned k = 0; k < kLines; ++k) {
            const Addr line = Addr(k) * lineSizeBytes;
            const auto *w = ref.find(line);
            ASSERT_EQ(dut.contains(line), w != nullptr);
            ASSERT_EQ(dut.flagsOf(line),
                      w ? w->flags : std::uint8_t(0));
        }
    }
}

} // namespace
