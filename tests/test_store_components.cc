/** @file Unit tests for the store queue and gathering store cache. */

#include <gtest/gtest.h>

#include "core/store_cache.hh"
#include "core/store_queue.hh"
#include "mem/main_memory.hh"

namespace {

using namespace ztx;
using core::GatheringStoreCache;
using core::StoreQueue;
using core::StoreQueueEntry;
using mem::MainMemory;

TEST(StoreQueue, ForwardingOverlaysNewestWins)
{
    StoreQueue q;
    q.push({0x100, 8, 0x1111111111111111ULL, false, false});
    q.push({0x104, 4, 0x22222222ULL, false, false});
    std::uint8_t buf[8] = {};
    q.overlay(0x100, 8, buf);
    EXPECT_EQ(buf[0], 0x11);
    EXPECT_EQ(buf[3], 0x11);
    EXPECT_EQ(buf[4], 0x22);
    EXPECT_EQ(buf[7], 0x22);
}

TEST(StoreQueue, PopIsFifo)
{
    StoreQueue q;
    q.push({0x10, 8, 1, false, false});
    q.push({0x20, 8, 2, false, false});
    EXPECT_EQ(q.pop().value, 1u);
    EXPECT_EQ(q.pop().value, 2u);
    EXPECT_TRUE(q.empty());
}

TEST(StoreQueue, DropTransactionalKeepsNtstgAndNormal)
{
    StoreQueue q;
    q.push({0x10, 8, 1, true, false});  // tx store: dropped
    q.push({0x20, 8, 2, false, false}); // normal: kept
    q.push({0x30, 8, 3, true, true});   // NTSTG: kept
    q.dropTransactional();
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.pop().value, 2u);
    EXPECT_EQ(q.pop().value, 3u);
}

TEST(StoreQueue, ClearMarksTurnsTxIntoNormal)
{
    StoreQueue q;
    q.push({0x10, 8, 1, true, false});
    q.clearTransactionalMarks();
    q.dropTransactional();
    EXPECT_EQ(q.size(), 1u);
}

class StoreCacheTest : public ::testing::Test
{
  protected:
    /** Store a big-endian 8-byte value. */
    bool
    store8(Addr addr, std::uint64_t value, bool tx,
           bool ntstg = false)
    {
        std::uint8_t bytes[8];
        for (unsigned i = 0; i < 8; ++i)
            bytes[i] = std::uint8_t(value >> (8 * (7 - i)));
        return sc.store(addr, bytes, 8, tx, ntstg, memory);
    }

    std::uint64_t
    read8(Addr addr)
    {
        std::uint8_t buf[8] = {};
        memory.readBlock(addr, buf, 8);
        sc.overlay(addr, 8, buf);
        std::uint64_t v = 0;
        for (const auto b : buf)
            v = (v << 8) | b;
        return v;
    }

    MainMemory memory;
    GatheringStoreCache sc{8, "t"}; // small: 8 entries
};

TEST_F(StoreCacheTest, GatherIntoSameBlock)
{
    EXPECT_TRUE(store8(0x100, 1, false));
    EXPECT_TRUE(store8(0x108, 2, false));
    EXPECT_EQ(sc.liveEntries(), 1u); // gathered
    EXPECT_EQ(sc.stats().counter("gathers").value(), 1u);
    EXPECT_EQ(read8(0x100), 1u);
    EXPECT_EQ(read8(0x108), 2u);
}

TEST_F(StoreCacheTest, DistinctBlocksAllocate)
{
    store8(0x000, 1, false);
    store8(0x080, 2, false); // next 128-byte block
    EXPECT_EQ(sc.liveEntries(), 2u);
}

TEST_F(StoreCacheTest, StoreStraddlingBlocksSplits)
{
    EXPECT_TRUE(store8(0x7C, 0x1122334455667788ULL, false));
    EXPECT_EQ(sc.liveEntries(), 2u);
    EXPECT_EQ(read8(0x7C), 0x1122334455667788ULL);
}

TEST_F(StoreCacheTest, CapacityEvictsOldestNonTx)
{
    for (unsigned i = 0; i < 9; ++i)
        store8(Addr(i) * 128, i, false);
    EXPECT_EQ(sc.liveEntries(), 8u);
    // Entry 0 was written back to memory.
    EXPECT_EQ(memory.read(0, 8), 0u);
    EXPECT_EQ(sc.stats().counter("evictions").value(), 1u);
    EXPECT_EQ(read8(8 * 128), 8u);
}

TEST_F(StoreCacheTest, OverflowWhenFullOfTxEntries)
{
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_TRUE(store8(Addr(i) * 128, i, true));
    EXPECT_FALSE(store8(Addr(8) * 128, 8, true));
    EXPECT_EQ(sc.stats().counter("overflows").value(), 1u);
}

TEST_F(StoreCacheTest, TxDataInvisibleToMemoryUntilCommit)
{
    store8(0x100, 42, true);
    EXPECT_EQ(memory.read(0x100, 8), 0u);
    sc.commitTransaction(memory);
    EXPECT_EQ(memory.read(0x100, 8), 42u);
}

TEST_F(StoreCacheTest, AbortDiscardsTxData)
{
    memory.write(0x100, 7, 8);
    store8(0x100, 42, true);
    sc.abortTransaction(memory);
    EXPECT_EQ(memory.read(0x100, 8), 7u);
    EXPECT_EQ(read8(0x100), 7u); // overlay gone too
    EXPECT_EQ(sc.liveTransactionalEntries(), 0u);
}

TEST_F(StoreCacheTest, AbortCommitsNtstgDoublewords)
{
    store8(0x100, 42, true);        // regular tx store
    store8(0x110, 99, true, true);  // NTSTG doubleword
    sc.abortTransaction(memory);
    EXPECT_EQ(memory.read(0x100, 8), 0u);
    EXPECT_EQ(memory.read(0x110, 8), 99u);
}

TEST_F(StoreCacheTest, NtstgOverlapDetected)
{
    store8(0x100, 42, true);
    store8(0x100, 43, true, true); // NTSTG over a tx store
    EXPECT_GE(sc.stats().counter("ntstg_overlap").value(), 1u);
}

TEST_F(StoreCacheTest, CloseAllEntriesDrainsAndStopsGathering)
{
    store8(0x100, 1, false);
    sc.closeAllEntries(memory);
    EXPECT_EQ(sc.liveEntries(), 0u);
    EXPECT_EQ(memory.read(0x100, 8), 1u);
    // A new store after closing allocates a fresh entry.
    store8(0x108, 2, true);
    EXPECT_EQ(sc.liveEntries(), 1u);
    EXPECT_TRUE(sc.hasTransactionalLine(0x100));
}

TEST_F(StoreCacheTest, CommitKeepsEntriesOpenForGathering)
{
    store8(0x100, 1, true);
    sc.commitTransaction(memory);
    store8(0x108, 2, false);
    // Gathered into the now-normal entry.
    EXPECT_EQ(sc.liveEntries(), 1u);
}

TEST_F(StoreCacheTest, LineQueries)
{
    store8(0x100, 1, true);
    EXPECT_TRUE(sc.hasTransactionalLine(0x100));
    EXPECT_TRUE(sc.hasAnyLine(0x100));
    EXPECT_FALSE(sc.hasTransactionalLine(0x200));
    store8(0x200, 2, false);
    EXPECT_FALSE(sc.hasTransactionalLine(0x200));
    EXPECT_TRUE(sc.hasAnyLine(0x200));
}

TEST_F(StoreCacheTest, DrainLineWritesBackNonTxOnly)
{
    store8(0x100, 1, false);
    store8(0x180, 2, true); // same 256-byte line, tx
    sc.drainLine(0x100, memory);
    EXPECT_EQ(memory.read(0x100, 8), 1u);
    EXPECT_EQ(memory.read(0x180, 8), 0u); // tx data stays buffered
    EXPECT_TRUE(sc.hasTransactionalLine(0x100));
}

TEST_F(StoreCacheTest, TxOverlayWinsOverOlderNonTxEntry)
{
    store8(0x100, 1, false);
    sc.closeAllEntries(memory);
    store8(0x100, 2, true);
    EXPECT_EQ(read8(0x100), 2u);
}

} // namespace
