/**
 * @file
 * Debug architecture: PER (ranges, TX event suppression, the TEND
 * event), the Transaction Diagnostic Control random/forced aborts,
 * and the OS policies around them (paper §II.E).
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using isa::Assembler;
using isa::Program;

/** Lock-elision-style loop: TX increment with lock fallback. */
Program
elisionProgram(unsigned iterations)
{
    constexpr std::int64_t lock_off = 0x2000;
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));     // data
    as.la(10, 0, std::int64_t(dataBase) + lock_off); // lock line
    as.lhi(8, std::int64_t(iterations));
    as.label("next");
    as.lhi(0, 0); // retry counter
    as.label("loop");
    as.tbegin(0xFF);
    as.jnz("abort");
    as.lt(1, 10); // lock must be free
    as.jnz("lockbusy");
    as.lg(1, 9);
    as.ahi(1, 1);
    as.stg(1, 9);
    as.tend();
    as.j("iter_done");
    as.label("lockbusy");
    as.tabort(0, 256);
    as.label("abort");
    as.jo("fallback"); // CC3: permanent
    as.ahi(0, 1);
    as.cijnl(0, 6, "fallback");
    as.ppa(0);
    as.j("loop");
    as.label("fallback");
    // Single-CPU tests: the lock is always free; take it, update,
    // release.
    as.lhi(1, 0);
    as.lhi(2, 1);
    as.cs(1, 2, 10);
    as.jnz("fallback");
    as.lg(1, 9);
    as.ahi(1, 1);
    as.stg(1, 9);
    as.lhi(1, 0);
    as.stg(1, 10);
    as.label("iter_done");
    as.brct(8, "next");
    as.halt();
    return as.finish();
}

std::unique_ptr<sim::Machine>
runProgram(const Program &program,
           std::function<void(sim::Machine &)> setup = {})
{
    auto m = std::make_unique<sim::Machine>(smallConfig(1));
    if (setup)
        setup(*m);
    m->setProgram(0, &program);
    m->run();
    return m;
}

TEST(Per, StoreEventOutsideTxInterruptsAndResumes)
{
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(1, 5);
    as.stg(1, 9);       // watched
    as.stg(1, 9, 4096); // not watched
    as.halt();
    auto m = runProgram(as.finish(), [](sim::Machine &mm) {
        auto &per = mm.cpu(0).perControls();
        per.storeRange = {true, dataBase, dataBase + 255};
    });
    EXPECT_TRUE(m->cpu(0).halted());
    EXPECT_EQ(m->os().countOf(tx::InterruptCode::PerEvent), 1u);
    EXPECT_EQ(m->peekMem(dataBase, 8), 5u); // store completed
}

TEST(Per, StoreEventInsideTxAbortsThenFallbackCompletes)
{
    auto m = runProgram(elisionProgram(1), [](sim::Machine &mm) {
        auto &per = mm.cpu(0).perControls();
        per.storeRange = {true, dataBase, dataBase + 255};
    });
    EXPECT_TRUE(m->cpu(0).halted());
    EXPECT_EQ(m->peekMem(dataBase, 8), 1u);
    // Every transactional attempt aborted on the PER event; the
    // update went through the fallback lock.
    EXPECT_EQ(m->cpu(0).stats().counter("tx.commits").value(), 0u);
    EXPECT_GT(m->os().countOf(tx::InterruptCode::PerEvent), 0u);
}

TEST(Per, EventSuppressionLetsTransactionsComplete)
{
    auto m = runProgram(elisionProgram(5), [](sim::Machine &mm) {
        auto &per = mm.cpu(0).perControls();
        per.storeRange = {true, dataBase, dataBase + 255};
        per.suppressInTx = true;
    });
    EXPECT_EQ(m->peekMem(dataBase, 8), 5u);
    EXPECT_EQ(m->cpu(0).stats().counter("tx.commits").value(), 5u);
    EXPECT_EQ(m->os().countOf(tx::InterruptCode::PerEvent), 0u);
}

TEST(Per, TendEventFiresOnOutermostCompletion)
{
    auto m = runProgram(elisionProgram(3), [](sim::Machine &mm) {
        auto &per = mm.cpu(0).perControls();
        per.suppressInTx = true;
        per.tendEvent = true;
    });
    EXPECT_EQ(m->cpu(0).stats().counter("tx.commits").value(), 3u);
    // One PER TEND event per successful outermost TEND.
    EXPECT_EQ(m->os().countOf(tx::InterruptCode::PerEvent), 3u);
    EXPECT_EQ(m->peekMem(dataBase, 8), 3u);
}

TEST(Per, IfetchEventOutsideTx)
{
    Assembler as;
    as.lhi(1, 1);
    as.label("watched");
    as.lhi(2, 2);
    as.halt();
    const Program p = as.finish();
    const Addr watch = p.labelAddr("watched");
    auto m = runProgram(p, [&](sim::Machine &mm) {
        mm.cpu(0).perControls().ifetchRange = {true, watch, watch};
    });
    EXPECT_TRUE(m->cpu(0).halted());
    EXPECT_EQ(m->cpu(0).gr(2), 2u);
    EXPECT_EQ(m->os().countOf(tx::InterruptCode::PerEvent), 1u);
}

TEST(Per, ConstrainedAutoSuppressionPolicy)
{
    // A constrained TX storing into a watched range aborts on the
    // PER event; the OS policy enables suppression so the retry can
    // complete (paper §II.E.2).
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(1, 7);
    as.tbeginc(0xFF);
    as.stg(1, 9);
    as.tend();
    as.halt();
    auto m = runProgram(as.finish(), [](sim::Machine &mm) {
        mm.cpu(0).perControls().storeRange =
            {true, dataBase, dataBase + 255};
        mm.os().autoSuppressPerForConstrained = true;
    });
    EXPECT_TRUE(m->cpu(0).halted());
    EXPECT_EQ(m->peekMem(dataBase, 8), 7u);
    EXPECT_GE(m->os().countOf(tx::InterruptCode::PerEvent), 1u);
    EXPECT_TRUE(m->cpu(0).perControls().suppressInTx);
    EXPECT_EQ(m->cpu(0)
                  .stats()
                  .counter("tx.commits_constrained")
                  .value(),
              1u);
}

TEST(Tdc, RandomAbortsExerciseRetryPath)
{
    auto m = runProgram(elisionProgram(50), [](sim::Machine &mm) {
        mm.cpu(0).tdcControl().mode = debug::TdcMode::Random;
        mm.cpu(0).tdcControl().abortProbability = 0.05;
    });
    EXPECT_EQ(m->peekMem(dataBase, 8), 50u);
    EXPECT_GT(m->cpu(0)
                  .stats()
                  .counter("tx.abort.diagnostic")
                  .value(),
              0u);
}

TEST(Tdc, AlwaysModeForcesFallbackPath)
{
    // Mode 2 aborts every transaction at latest before the
    // outermost TEND: zero commits, all updates via the fallback.
    auto m = runProgram(elisionProgram(10), [](sim::Machine &mm) {
        mm.cpu(0).tdcControl().mode = debug::TdcMode::Always;
        mm.cpu(0).tdcControl().abortProbability = 0.02;
    });
    EXPECT_EQ(m->peekMem(dataBase, 8), 10u);
    EXPECT_EQ(m->cpu(0).stats().counter("tx.commits").value(), 0u);
    EXPECT_GE(m->cpu(0)
                  .stats()
                  .counter("tx.abort.diagnostic")
                  .value(),
              10u);
}

TEST(Tdc, OffMeansNoDiagnosticAborts)
{
    auto m = runProgram(elisionProgram(20));
    EXPECT_EQ(m->cpu(0)
                  .stats()
                  .counter("tx.abort.diagnostic")
                  .value(),
              0u);
    EXPECT_EQ(m->cpu(0).stats().counter("tx.commits").value(), 20u);
}

TEST(ExternalInterrupts, AbortTransactionsButWorkCompletes)
{
    auto cfg = smallConfig(1);
    cfg.externalInterruptPeriod = 400; // aggressive timer
    const Program p = elisionProgram(50);
    sim::Machine m(cfg);
    m.setProgram(0, &p);
    m.run();
    EXPECT_TRUE(m.allHalted());
    EXPECT_EQ(m.peekMem(dataBase, 8), 50u);
    EXPECT_GT(m.cpu(0)
                  .stats()
                  .counter("external_interrupts")
                  .value(),
              0u);
}

} // namespace
