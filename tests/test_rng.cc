/** @file Unit tests for the deterministic PRNG. */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"

namespace {

using ztx::Rng;

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, BoundedOneAlwaysZero)
{
    Rng r(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.nextBounded(1), 0u);
}

TEST(Rng, BoundedCoversAllValues)
{
    Rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.nextBounded(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BoundedRoughlyUniform)
{
    Rng r(5);
    constexpr int buckets = 10;
    constexpr int draws = 100000;
    int counts[buckets] = {};
    for (int i = 0; i < draws; ++i)
        ++counts[r.nextBounded(buckets)];
    for (const int c : counts) {
        EXPECT_GT(c, draws / buckets * 0.9);
        EXPECT_LT(c, draws / buckets * 1.1);
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BoolProbabilityZeroAndOne)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.nextBool(0.0));
        EXPECT_TRUE(r.nextBool(1.0));
    }
}

TEST(Rng, BoolProbabilityHalf)
{
    Rng r(17);
    int trues = 0;
    for (int i = 0; i < 100000; ++i)
        trues += r.nextBool(0.5) ? 1 : 0;
    EXPECT_GT(trues, 48000);
    EXPECT_LT(trues, 52000);
}

} // namespace
