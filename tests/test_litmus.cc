/**
 * @file
 * Litmus subsystem tests: DSL parsing and validation, compilation
 * to programs/fault plans, the exhaustive enumerator's verdicts on
 * the whole corpus, byte-identity of results across host-thread
 * counts and seeds (steered machines force the serial scheduler),
 * the randomized-steer subset property, the OnFootprint-inside-
 * enumeration regression, the frontier-cap contract (a capped
 * enumeration never reports "ok"), and witness rendering for a
 * deliberately wrong spec.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hh"
#include "debug/litmus_dump.hh"
#include "litmus/corpus.hh"
#include "litmus/dsl.hh"
#include "litmus/enumerate.hh"

namespace {

using namespace ztx;

litmus::Test
parseOk(const std::string &src)
{
    const litmus::ParseResult pr = litmus::parse(src);
    EXPECT_TRUE(pr.ok) << pr.error;
    return pr.test;
}

std::string
parseError(const std::string &src)
{
    const litmus::ParseResult pr = litmus::parse(src);
    EXPECT_FALSE(pr.ok) << "expected a parse error";
    return pr.error;
}

litmus::EnumResult
enumerateSrc(const std::string &src,
             const litmus::EnumOptions &opt = {})
{
    const litmus::Compiled c = litmus::compile(parseOk(src));
    return litmus::enumerate(c, opt);
}

// ---------------------------------------------------------------
// DSL

TEST(LitmusDsl, ParsesClassicShape)
{
    const litmus::Test t = parseOk(R"(
litmus sb
init x=0 y=0
thread P0 { st x 1  ld y r0 }
thread P1 { st y 1  ld x r0 }
forbidden P0.r0=0 & P1.r0=0
allowed *
)");
    EXPECT_EQ(t.name, "sb");
    ASSERT_EQ(t.threads.size(), 2u);
    EXPECT_EQ(t.threads[0].name, "P0");
    EXPECT_EQ(t.threads[0].ops.size(), 2u);
    EXPECT_EQ(t.threads[0].numRegs, 1u);
    EXPECT_FALSE(t.threads[0].hasTx);
    ASSERT_EQ(t.locs.size(), 2u);
    EXPECT_TRUE(t.allowAll);
    ASSERT_EQ(t.forbidden.size(), 1u);
    EXPECT_EQ(t.forbidden[0].eqs.size(), 2u);
}

TEST(LitmusDsl, ParsesTxBlocksAndFaults)
{
    const litmus::Test t = parseOk(R"(
litmus f
retries 1
thread P0 { tx { st x 1  ntst y 2  abort 3 } }
fault on_footprint x conflict x
fault on_abort P0 1 spurious P0
)");
    EXPECT_EQ(t.retries, 1u);
    EXPECT_TRUE(t.threads[0].hasTx);
    EXPECT_TRUE(t.threads[0].hasUnconstrainedTx);
    ASSERT_EQ(t.faults.size(), 2u);
    EXPECT_EQ(t.faults[0].trigger,
              litmus::Fault::Trigger::OnFootprint);
    EXPECT_EQ(t.faults[0].kind, litmus::Fault::Kind::Conflict);
    EXPECT_EQ(t.faults[1].trigger,
              litmus::Fault::Trigger::OnAbort);
    EXPECT_EQ(t.faults[1].watchThread, 0);
    EXPECT_EQ(t.faults[1].target, 0);
}

TEST(LitmusDsl, RejectsNestedTx)
{
    parseError("litmus t thread P0 { tx { tx { st x 1 } } }");
}

TEST(LitmusDsl, RejectsNtstOutsideTx)
{
    parseError("litmus t thread P0 { ntst x 1 }");
}

TEST(LitmusDsl, RejectsAbortOutsideTx)
{
    parseError("litmus t thread P0 { abort }");
}

TEST(LitmusDsl, RejectsCtxBodyOverFootprintLimit)
{
    // 5 distinct locations exceed the constrained-tx octoword
    // limit (tx/constraints.hh: 4 aligned octowords).
    parseError("litmus t thread P0 { ctx { st a 1  st b 1  st c 1"
               "  st d 1  st e 1 } }");
}

TEST(LitmusDsl, RejectsEqOnUnloadedRegister)
{
    parseError("litmus t thread P0 { ld x r0 } allowed P0.r3=0");
}

TEST(LitmusDsl, RejectsOkEqOnThreadWithoutTx)
{
    parseError("litmus t thread P0 { st x 1 } allowed P0.ok=1");
}

TEST(LitmusDsl, RejectsFootprintFaultOnOtherLocation)
{
    // An on_footprint trigger must aim its fault at the watched
    // location — anything else can never fire coherently.
    parseError("litmus t thread P0 { tx { ld x r0 } }"
               " fault on_footprint x conflict y");
}

// ---------------------------------------------------------------
// Compilation

TEST(LitmusCompile, LocationsGetTheirOwnLines)
{
    const litmus::Compiled c = litmus::compile(parseOk(
        "litmus t thread P0 { st x 1  st y 2  st z 3 }"));
    ASSERT_EQ(c.locAddr.size(), 3u);
    EXPECT_EQ(c.locAddr[0], litmus::litmusDataBase);
    EXPECT_EQ(c.locAddr[1] - c.locAddr[0], Addr(lineSizeBytes));
    EXPECT_EQ(c.locAddr[2] - c.locAddr[1], Addr(lineSizeBytes));
    ASSERT_EQ(c.programs.size(), 1u);
    EXPECT_EQ(c.config.activeCpus, 1u);
}

TEST(LitmusCompile, FaultStepsTargetTheCompiledLines)
{
    const litmus::Compiled c = litmus::compile(parseOk(
        "litmus t thread P0 { tx { ld x r0  st y 1 } }"
        " fault on_footprint y conflict y"));
    ASSERT_EQ(c.plan.scenario.size(), 1u);
    const inject::ScenarioStep &s = c.plan.scenario[0];
    EXPECT_EQ(s.trigger, inject::TriggerKind::OnFootprint);
    EXPECT_EQ(s.kind, inject::FaultKind::TargetedConflict);
    EXPECT_EQ(s.line, c.locAddr[1]);
}

// ---------------------------------------------------------------
// The corpus

TEST(LitmusCorpus, HasAtLeastTwentyFiveTests)
{
    EXPECT_GE(litmus::corpus().size(), 25u);
}

TEST(LitmusCorpus, EveryTestEnumeratesToOk)
{
    for (const litmus::CorpusTest &ct : litmus::corpus()) {
        const litmus::ParseResult pr = litmus::parse(ct.src);
        ASSERT_TRUE(pr.ok) << ct.name << ": " << pr.error;
        EXPECT_EQ(pr.test.name, ct.name);
        const litmus::Compiled c = litmus::compile(pr.test);
        const litmus::EnumResult res = litmus::enumerate(c);
        EXPECT_EQ(res.verdict, "ok")
            << ct.name << ": " << res.capReason
            << (res.violations.empty() ? ""
                                       : " viol: " +
                                             res.violations[0]);
        EXPECT_FALSE(res.capped) << ct.name;
        EXPECT_GT(res.schedulesExplored, 0u) << ct.name;
        EXPECT_FALSE(res.outcomes.empty()) << ct.name;
    }
}

// ---------------------------------------------------------------
// Directed matrix: byte-identical verdicts across host threads and
// seeds. Steered machines force the serial legacy scheduler, so
// hostThreads must be a no-op; seeds move cycle values only, and
// enumResultJson excludes every cycle-valued quantity.

TEST(LitmusMatrix, ResultJsonByteIdenticalAcrossHostThreadsAndSeeds)
{
    const std::vector<std::string> names = {
        "sb", "sb_tx", "inc_ctx", "mp_tx_both",
        "conflict_directed", "tabort_rollback"};
    for (const litmus::CorpusTest &ct : litmus::corpus()) {
        if (std::find(names.begin(), names.end(), ct.name) ==
            names.end())
            continue;
        const litmus::Compiled c = litmus::compile(parseOk(ct.src));
        litmus::EnumOptions base;
        const std::string golden =
            litmus::enumResultJson(c, litmus::enumerate(c, base))
                .dump();
        for (const unsigned hostThreads : {0u, 1u, 2u, 4u}) {
            for (const std::uint64_t seed :
                 {std::uint64_t(1), std::uint64_t(7),
                  std::uint64_t(12345)}) {
                litmus::EnumOptions opt;
                opt.hostThreads = hostThreads;
                opt.seed = seed;
                const std::string got =
                    litmus::enumResultJson(
                        c, litmus::enumerate(c, opt))
                        .dump();
                EXPECT_EQ(got, golden)
                    << ct.name << " hostThreads=" << hostThreads
                    << " seed=" << seed;
            }
        }
    }
}

// ---------------------------------------------------------------
// Property: randomized-steer outcomes are a subset of the
// exhaustive outcome set — never a superset.

void
expectRandomSubset(const litmus::Compiled &c, const char *what)
{
    const litmus::EnumResult ex = litmus::enumerate(c);
    ASSERT_EQ(ex.verdict, "ok") << what;
    const litmus::RandomResult rr =
        litmus::runRandom(c, 200, 0xfeed);
    EXPECT_EQ(rr.runs + rr.cappedRuns, 200u) << what;
    EXPECT_GT(rr.runs, 0u) << what;
    for (const auto &[state, count] : rr.outcomes)
        EXPECT_TRUE(ex.outcomes.count(state))
            << what << ": random-only outcome " << state;
}

TEST(LitmusProperty, RandomOutcomesSubsetOfExhaustiveCorpus)
{
    for (const char *name :
         {"sb", "sb_tx", "inc_tx", "mp_ntstg", "iriw"}) {
        for (const litmus::CorpusTest &ct : litmus::corpus()) {
            if (std::string(ct.name) != name)
                continue;
            expectRandomSubset(litmus::compile(parseOk(ct.src)),
                               name);
        }
    }
}

TEST(LitmusProperty, RandomOutcomesSubsetForGeneratedPrograms)
{
    // Random 2-3 thread programs over two locations: st/ld/add
    // bodies, some transactional. Fixed generator seed keeps the
    // suite deterministic.
    Rng gen(0xC0FFEE);
    for (unsigned p = 0; p < 6; ++p) {
        const unsigned nthreads = 2 + unsigned(gen.nextBounded(2));
        std::string src = "litmus gen" + std::to_string(p) +
                          "\nretries 1\n";
        for (unsigned t = 0; t < nthreads; ++t) {
            src += "thread T" + std::to_string(t) + " { ";
            const bool tx = gen.nextBounded(2) == 0;
            if (tx)
                src += "tx { ";
            const unsigned nops = 1 + unsigned(gen.nextBounded(2));
            unsigned reg = 0;
            for (unsigned o = 0; o < nops; ++o) {
                const char *loc = gen.nextBounded(2) ? "y" : "x";
                switch (gen.nextBounded(3)) {
                  case 0:
                    src += std::string("st ") + loc + " " +
                           std::to_string(1 + t) + " ";
                    break;
                  case 1:
                    src += std::string("ld ") + loc + " r" +
                           std::to_string(reg++) + " ";
                    break;
                  default:
                    src += std::string("add ") + loc + " 1 ";
                    break;
                }
            }
            if (tx)
                src += "} ";
            src += "}\n";
        }
        src += "allowed *\n";
        expectRandomSubset(litmus::compile(parseOk(src)),
                           src.c_str());
    }
}

// ---------------------------------------------------------------
// Regression: a scenario trigger (OnFootprint) fires *inside* the
// enumerated schedules — trigger evaluation points coincide with
// enumeration decision points (the injector's beforeStep runs
// before every steered step).

TEST(LitmusRegression, OnFootprintFiresInEveryEnumeratedSchedule)
{
    const litmus::EnumResult res = enumerateSrc(R"(
litmus reg_onfp
retries 1
thread P0 { tx { ld x r0  st y 1 } }
thread P1 { st z 3 }
fault on_footprint x conflict x
allowed *
)");
    EXPECT_EQ(res.verdict, "ok");
    EXPECT_GT(res.schedulesExplored, 1u);
    // The watched location enters P0's footprint in every schedule
    // (P0 always runs its transaction), so the directed conflict
    // must have fired in every single enumerated run...
    EXPECT_GE(res.scenarioFiredMin, 1u);
    EXPECT_GE(res.scenarioFiredTotal, res.schedulesExplored);
    // ...and a fired targeted conflict aborts the transaction at
    // least once somewhere in the frontier.
    EXPECT_GT(res.abortsTotal, 0u);
}

// ---------------------------------------------------------------
// Frontier caps: hitting any cap forces "frontier-capped" (or
// "violation"), never "ok".

TEST(LitmusFrontier, ScheduleCapNeverReportsOk)
{
    for (const litmus::CorpusTest &ct : litmus::corpus()) {
        if (std::string(ct.name) != "iriw_tx_readers")
            continue;
        litmus::EnumOptions opt;
        opt.maxSchedules = 10;
        const litmus::EnumResult res =
            litmus::enumerate(litmus::compile(parseOk(ct.src)),
                              opt);
        EXPECT_EQ(res.verdict, "frontier-capped");
        EXPECT_TRUE(res.capped);
        EXPECT_EQ(res.capReason, "schedules");
        EXPECT_EQ(res.schedulesExplored, 10u);
    }
}

TEST(LitmusFrontier, StepCapNeverReportsOk)
{
    litmus::EnumOptions opt;
    opt.maxStepsPerRun = 4;
    const litmus::EnumResult res = enumerateSrc(
        "litmus tiny thread P0 { st x 1 } allowed x=1", opt);
    EXPECT_EQ(res.verdict, "frontier-capped");
    EXPECT_TRUE(res.capped);
    EXPECT_EQ(res.capReason, "steps");
}

// ---------------------------------------------------------------
// Violations: a deliberately wrong spec yields a violation verdict
// with a renderable witness schedule.

TEST(LitmusViolation, WrongForbiddenProducesRenderedWitness)
{
    const litmus::ParseResult pr = litmus::parse(R"(
litmus wrong
thread P0 { st x 1 }
thread P1 { ld x r0 }
forbidden x=1
allowed *
)");
    ASSERT_TRUE(pr.ok) << pr.error;
    const litmus::Compiled c = litmus::compile(pr.test);
    const litmus::EnumResult res = litmus::enumerate(c);
    EXPECT_EQ(res.verdict, "violation");
    ASSERT_FALSE(res.violations.empty());
    ASSERT_TRUE(res.witness.has_value());
    EXPECT_FALSE(res.witness->steps.empty());
    EXPECT_FALSE(res.witness->events.empty());
    const std::string dump =
        debug::litmusWitnessDump(c, *res.witness);
    EXPECT_NE(dump.find("wrong"), std::string::npos);
    EXPECT_NE(dump.find("x=1"), std::string::npos);
    EXPECT_NE(dump.find("schedule"), std::string::npos);
    EXPECT_NE(dump.find("P0"), std::string::npos);
}

TEST(LitmusViolation, ExactAllowedSetConstrains)
{
    // The exact outcome is x=1; claiming only x=0 must violate.
    const litmus::EnumResult res = enumerateSrc(
        "litmus bad_exact thread P0 { st x 1 } allowed x=0");
    EXPECT_EQ(res.verdict, "violation");
    EXPECT_FALSE(res.violations.empty());
}

} // namespace
