/** @file Unit tests for counters, distributions, and histograms. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hh"
#include "common/stats.hh"

namespace {

using ztx::Counter;
using ztx::Distribution;
using ztx::Histogram;
using ztx::Json;
using ztx::StatGroup;

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(5);
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Distribution, MeanMinMax)
{
    Distribution d;
    d.sample(2.0);
    d.sample(4.0);
    d.sample(9.0);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_EQ(d.count(), 3u);
}

TEST(Distribution, EmptyIsZero)
{
    Distribution d;
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
}

TEST(Distribution, ResetForgets)
{
    Distribution d;
    d.sample(100.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    d.sample(1.0);
    EXPECT_DOUBLE_EQ(d.max(), 1.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4, 10.0); // [0,10) [10,20) [20,30) [30,40) + overflow
    h.sample(0.0);
    h.sample(9.9);
    h.sample(10.0);
    h.sample(35.0);
    h.sample(40.0);  // overflow
    h.sample(999.0); // overflow
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.bucketCount(4), 2u);
    EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, NegativeClampsToFirstBucket)
{
    Histogram h(2, 1.0);
    h.sample(-5.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
}

TEST(StatGroup, NamedCountersPersist)
{
    StatGroup g("cpu0");
    g.counter("aborts").inc(3);
    EXPECT_EQ(g.counter("aborts").value(), 3u);
}

TEST(StatGroup, DumpFormat)
{
    StatGroup g("l1");
    g.counter("hits").inc(7);
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "l1.hits 7\n");
}

TEST(StatGroup, ResetAllClearsEverything)
{
    StatGroup g("x");
    g.counter("a").inc(2);
    g.distribution("d").sample(1.0);
    g.histogram("h", 4, 10.0).sample(5.0);
    g.resetAll();
    EXPECT_EQ(g.counter("a").value(), 0u);
    EXPECT_EQ(g.distribution("d").count(), 0u);
    EXPECT_EQ(g.histogram("h", 4, 10.0).total(), 0u);
}

TEST(StatGroup, DumpDistributionEmitsFullSummary)
{
    StatGroup g("cpu");
    g.distribution("lat").sample(2.0);
    g.distribution("lat").sample(6.0);
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "cpu.lat.mean 4\n"
                        "cpu.lat.count 2\n"
                        "cpu.lat.min 2\n"
                        "cpu.lat.max 6\n"
                        "cpu.lat.sum 8\n");
}

TEST(StatGroup, DumpHistogramEmitsBuckets)
{
    StatGroup g("cpu");
    Histogram &h = g.histogram("reg", 2, 10.0);
    h.sample(5.0);
    h.sample(15.0);
    h.sample(99.0);
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "cpu.reg.bucket0 1\n"
                        "cpu.reg.bucket1 1\n"
                        "cpu.reg.overflow 1\n"
                        "cpu.reg.total 3\n");
}

TEST(StatGroup, HistogramFirstRegistrationWins)
{
    StatGroup g("x");
    Histogram &a = g.histogram("h", 4, 10.0);
    Histogram &b = g.histogram("h", 99, 1.0);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.buckets(), 4u);
    EXPECT_DOUBLE_EQ(b.bucketWidth(), 10.0);
}

TEST(StatGroup, JsonRoundTrip)
{
    StatGroup g("cpu0");
    g.counter("tx.commits").inc(41);
    g.distribution("region").sample(10.0);
    g.distribution("region").sample(30.0);
    g.histogram("hist", 2, 16.0).sample(3.0);
    g.histogram("hist", 2, 16.0).sample(100.0);

    std::ostringstream os;
    g.dumpJson(os, 2);
    const auto parsed = Json::parse(os.str());
    ASSERT_TRUE(parsed.has_value());

    EXPECT_EQ(parsed->find("name")->str(), "cpu0");
    const Json *counters = parsed->find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->find("tx.commits")->asUint(), 41u);

    const Json *dist =
        parsed->find("distributions")->find("region");
    ASSERT_NE(dist, nullptr);
    EXPECT_EQ(dist->find("count")->asUint(), 2u);
    EXPECT_DOUBLE_EQ(dist->find("mean")->number(), 20.0);
    EXPECT_DOUBLE_EQ(dist->find("min")->number(), 10.0);
    EXPECT_DOUBLE_EQ(dist->find("max")->number(), 30.0);
    EXPECT_DOUBLE_EQ(dist->find("sum")->number(), 40.0);

    const Json *hist = parsed->find("histograms")->find("hist");
    ASSERT_NE(hist, nullptr);
    EXPECT_DOUBLE_EQ(hist->find("bucket_width")->number(), 16.0);
    ASSERT_EQ(hist->find("buckets")->size(), 2u);
    EXPECT_EQ(hist->find("buckets")->at(0).asUint(), 1u);
    EXPECT_EQ(hist->find("buckets")->at(1).asUint(), 0u);
    EXPECT_EQ(hist->find("overflow")->asUint(), 1u);
    EXPECT_EQ(hist->find("total")->asUint(), 2u);
}

TEST(Json, ScalarsRoundTrip)
{
    Json j = Json::object();
    j["u"] = std::uint64_t(18446744073709551615ull);
    j["neg"] = -42;
    j["pi"] = 3.25;
    j["s"] = "quote \" backslash \\ newline \n";
    j["t"] = true;
    j["n"] = nullptr;
    Json arr = Json::array();
    arr.push(1u);
    arr.push("two");
    j["arr"] = std::move(arr);

    const auto parsed = Json::parse(j.dump(2));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->find("u")->asUint(),
              18446744073709551615ull);
    EXPECT_DOUBLE_EQ(parsed->find("neg")->number(), -42.0);
    EXPECT_DOUBLE_EQ(parsed->find("pi")->number(), 3.25);
    EXPECT_EQ(parsed->find("s")->str(),
              "quote \" backslash \\ newline \n");
    EXPECT_TRUE(parsed->find("t")->boolean());
    EXPECT_TRUE(parsed->find("n")->isNull());
    EXPECT_EQ(parsed->find("arr")->size(), 2u);
    EXPECT_EQ(parsed->find("arr")->at(1).str(), "two");
}

TEST(Json, ParseRejectsMalformed)
{
    EXPECT_FALSE(Json::parse("").has_value());
    EXPECT_FALSE(Json::parse("{").has_value());
    EXPECT_FALSE(Json::parse("{\"a\":1,}").has_value());
    EXPECT_FALSE(Json::parse("[1, 2").has_value());
    EXPECT_FALSE(Json::parse("true false").has_value());
    EXPECT_FALSE(Json::parse("\"unterminated").has_value());
    EXPECT_TRUE(Json::parse("{\"a\": [1, 2.5, null]}").has_value());
}

} // namespace
