/** @file Unit tests for counters, distributions, and histograms. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

namespace {

using ztx::Counter;
using ztx::Distribution;
using ztx::Histogram;
using ztx::StatGroup;

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(5);
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Distribution, MeanMinMax)
{
    Distribution d;
    d.sample(2.0);
    d.sample(4.0);
    d.sample(9.0);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_EQ(d.count(), 3u);
}

TEST(Distribution, EmptyIsZero)
{
    Distribution d;
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
}

TEST(Distribution, ResetForgets)
{
    Distribution d;
    d.sample(100.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    d.sample(1.0);
    EXPECT_DOUBLE_EQ(d.max(), 1.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4, 10.0); // [0,10) [10,20) [20,30) [30,40) + overflow
    h.sample(0.0);
    h.sample(9.9);
    h.sample(10.0);
    h.sample(35.0);
    h.sample(40.0);  // overflow
    h.sample(999.0); // overflow
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.bucketCount(4), 2u);
    EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, NegativeClampsToFirstBucket)
{
    Histogram h(2, 1.0);
    h.sample(-5.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
}

TEST(StatGroup, NamedCountersPersist)
{
    StatGroup g("cpu0");
    g.counter("aborts").inc(3);
    EXPECT_EQ(g.counter("aborts").value(), 3u);
}

TEST(StatGroup, DumpFormat)
{
    StatGroup g("l1");
    g.counter("hits").inc(7);
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "l1.hits 7\n");
}

TEST(StatGroup, ResetAllClearsEverything)
{
    StatGroup g("x");
    g.counter("a").inc(2);
    g.distribution("d").sample(1.0);
    g.resetAll();
    EXPECT_EQ(g.counter("a").value(), 0u);
    EXPECT_EQ(g.distribution("d").count(), 0u);
}

} // namespace
