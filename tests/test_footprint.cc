/**
 * @file
 * Read-footprint behaviour: the L1 LRU-extension scheme that grows
 * the supported transactional fetch footprint from L1 capacity to L2
 * capacity (paper §III.C, evaluated in figure 5(f)).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>

#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using isa::Assembler;
using isa::Program;

/**
 * A transaction reading @p lines cache lines with stride
 * @p stride_bytes, with a retry/fallback skeleton. GR3 == 1 when the
 * transactional path succeeded, 2 when the fallback ran.
 */
Program
readFootprintProgram(unsigned lines, std::uint64_t stride_bytes)
{
    Assembler as;
    as.lhi(0, 0);
    as.label("loop");
    as.tbegin(0xFF);
    as.jnz("abort");
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(8, std::int64_t(lines));
    as.label("reads");
    as.lg(1, 9);
    as.la(9, 9, std::int64_t(stride_bytes));
    as.brct(8, "reads");
    as.tend();
    as.lhi(3, 1);
    as.j("done");
    as.label("abort");
    as.jo("fallback");
    as.ahi(0, 1);
    as.cijnl(0, 4, "fallback");
    as.j("loop");
    as.label("fallback");
    as.lhi(3, 2);
    as.label("done");
    as.halt();
    return as.finish();
}

/** Default geometry: L1 is 64 rows x 6 ways, L2 512 rows x 8 ways. */
constexpr std::uint64_t l1RowStride = 64 * lineSizeBytes;  // 16 KiB
constexpr std::uint64_t l2RowStride = 512 * lineSizeBytes; // 128 KiB

TEST(Footprint, WithinL1AssociativityCommits)
{
    const Program p = readFootprintProgram(6, l1RowStride);
    sim::Machine m(smallConfig(1));
    m.setProgram(0, &p);
    m.run();
    EXPECT_EQ(m.cpu(0).gr(3), 1u);
    EXPECT_EQ(m.cpu(0).stats().counter("tx.aborts").value(), 0u);
}

TEST(Footprint, LruExtensionCarriesBeyondL1Associativity)
{
    // 12 lines in one L1 row exceed its 6 ways; the LRU extension
    // must keep the transaction alive (footprint promise = L2).
    const Program p = readFootprintProgram(12, l1RowStride);
    sim::Machine m(smallConfig(1));
    m.setProgram(0, &p);
    m.run();
    EXPECT_EQ(m.cpu(0).gr(3), 1u);
    EXPECT_EQ(m.cpu(0).stats().counter("tx.aborts").value(), 0u);
    EXPECT_GT(m.cpu(0)
                  .stats()
                  .counter("l1.tx_read_evicted")
                  .value(),
              0u);
    EXPECT_GT(
        m.hierarchy().stats().counter("l1.lru_ext_set").value(), 0u);
}

TEST(Footprint, WithoutLruExtensionL1OverflowAborts)
{
    auto cfg = smallConfig(1);
    cfg.tm.lruExtensionEnabled = false;
    const Program p = readFootprintProgram(12, l1RowStride);
    sim::Machine m(cfg);
    m.setProgram(0, &p);
    m.run();
    EXPECT_EQ(m.cpu(0).gr(3), 2u); // fell back
    EXPECT_GT(m.cpu(0)
                  .stats()
                  .counter("tx.abort.cache-fetch")
                  .value(),
              0u);
}

TEST(Footprint, BeyondL2AssociativityAbortsEvenWithExtension)
{
    // 12 lines in one L2 row exceed its 8 ways: an L2 LRU-XI hits
    // the (imprecise) extension row and kills the transaction.
    const Program p = readFootprintProgram(12, l2RowStride);
    sim::Machine m(smallConfig(1));
    m.setProgram(0, &p);
    m.run();
    EXPECT_EQ(m.cpu(0).gr(3), 2u);
    EXPECT_GT(m.cpu(0)
                  .stats()
                  .counter("tx.abort.cache-fetch")
                  .value(),
              0u);
}

TEST(Footprint, ExtensionClearedBetweenTransactions)
{
    // First TX overflows a row (sets extension bits); the next TX
    // touches the same row lightly and must not abort.
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.tbegin(0xFF);
    as.jnz("out");
    for (int i = 0; i < 8; ++i)
        as.lg(1, 9, std::int64_t(i * l1RowStride));
    as.tend();
    as.tbegin(0xFF);
    as.jnz("out");
    as.lg(1, 9, 0);
    as.tend();
    as.lhi(3, 1);
    as.label("out");
    as.halt();
    sim::Machine m(smallConfig(1));
    const Program p = as.finish();
    m.setProgram(0, &p);
    m.run();
    EXPECT_EQ(m.cpu(0).gr(3), 1u);
    EXPECT_EQ(m.cpu(0).stats().counter("tx.commits").value(), 2u);
    EXPECT_FALSE(m.hierarchy().lruExtensionAny(0));
}

TEST(Footprint, EvictedTrackedLinesStayInAttackableFootprint)
{
    // An adversary must be able to aim at the *whole* promised
    // footprint: tx-read lines displaced from the L1 under an
    // LRU-extension row are remembered in a per-CPU shadow list,
    // surface through txFootprintLines(), and a conflict XI on one
    // of them still kills the transaction (the extension row is
    // row-granular, so the hit is imprecise but fatal).
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.tbegin(0xFF);
    as.jnz("out");
    for (int i = 0; i < 12; ++i)
        as.lg(1, 9, std::int64_t(i * l1RowStride));
    as.label("spin");
    as.j("spin"); // hold the transaction open
    as.label("out");
    as.halt();
    const Program p = as.finish();
    sim::Machine m(smallConfig(1));
    m.setProgram(0, &p);
    m.run(20'000);
    ASSERT_TRUE(m.cpu(0).inTx());

    const auto &tracked = m.hierarchy().lruTrackedLines(0);
    ASSERT_FALSE(tracked.empty());
    const auto footprint = m.hierarchy().txFootprintLines(0);
    for (const Addr line : tracked) {
        EXPECT_NE(std::find(footprint.begin(), footprint.end(),
                            line),
                  footprint.end())
            << "evicted tracked line missing from footprint";
        EXPECT_FALSE(m.hierarchy().inL1(0, line));
        EXPECT_TRUE(m.hierarchy().lruExtensionHit(0, line));
    }

    // Attacking a tracked (L1-evicted) line aborts the transaction.
    EXPECT_TRUE(m.hierarchy().injectAdversarialXi(0, tracked[0]));
    EXPECT_FALSE(m.cpu(0).inTx());
}

TEST(Footprint, TxDirtyLinesMayLeaveL1WithoutAbort)
{
    // Store footprint does not rely on the LRU extension: tx-dirty
    // lines can be evicted from L1 (they stay in L2 / the store
    // cache). 8 stores to one L1 row (6 ways) must commit.
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(1, 7);
    as.tbegin(0xFF);
    as.jnz("out");
    for (int i = 0; i < 8; ++i)
        as.stg(1, 9, std::int64_t(i * l1RowStride));
    as.tend();
    as.lhi(3, 1);
    as.label("out");
    as.halt();
    sim::Machine m(smallConfig(1));
    const Program p = as.finish();
    m.setProgram(0, &p);
    m.run();
    EXPECT_EQ(m.cpu(0).gr(3), 1u);
    EXPECT_EQ(m.peekMem(dataBase + 7 * l1RowStride, 8), 7u);
}

} // namespace
