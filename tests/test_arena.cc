/** @file Unit tests for the quantum-scoped bump allocator. */

#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sim/arena.hh"

namespace {

using ztx::sim::Arena;
using ztx::sim::ArenaVector;

TEST(Arena, AllocationsAreDisjointAndAligned)
{
    Arena arena(1024);
    auto *a = arena.allocArray<std::uint64_t>(4);
    auto *b = arena.allocArray<std::uint32_t>(3);
    auto *c = arena.allocArray<std::uint64_t>(2);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 4, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 8, 0u);
    // Writes land where they were made: no overlap between blocks.
    for (unsigned i = 0; i < 4; ++i)
        a[i] = 0xA0 + i;
    for (unsigned i = 0; i < 3; ++i)
        b[i] = 0xB0 + i;
    for (unsigned i = 0; i < 2; ++i)
        c[i] = 0xC0 + i;
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(a[i], 0xA0 + i);
    for (unsigned i = 0; i < 3; ++i)
        EXPECT_EQ(b[i], 0xB0 + i);
}

TEST(Arena, ResetRecyclesChunksWithoutNewAllocation)
{
    Arena arena(512);
    // Warm up: allocate well past one chunk.
    std::vector<std::uint8_t *> blocks;
    for (unsigned i = 0; i < 16; ++i)
        blocks.push_back(arena.allocArray<std::uint8_t>(128));
    const std::size_t warm_chunks = arena.chunks();
    const std::size_t warm_bytes = arena.retainedBytes();
    EXPECT_GT(warm_chunks, 1u);

    // Steady state: the same allocation pattern after reset() reuses
    // the retained chunks — chunk count and bytes never move again.
    for (unsigned round = 0; round < 8; ++round) {
        arena.reset();
        for (unsigned i = 0; i < 16; ++i) {
            auto *p = arena.allocArray<std::uint8_t>(128);
            ASSERT_NE(p, nullptr);
            p[0] = std::uint8_t(round); // memory is writable
        }
        EXPECT_EQ(arena.chunks(), warm_chunks) << "round " << round;
        EXPECT_EQ(arena.retainedBytes(), warm_bytes);
    }
    // The first post-reset block reuses the first chunk's storage.
    arena.reset();
    EXPECT_EQ(arena.allocArray<std::uint8_t>(128), blocks[0]);
}

TEST(Arena, OversizeRequestGetsDedicatedRetainedChunk)
{
    Arena arena(256);
    auto *big = arena.allocArray<std::uint8_t>(4096);
    ASSERT_NE(big, nullptr);
    big[0] = 1;
    big[4095] = 2;
    EXPECT_GE(arena.retainedBytes(), 4096u);
    const std::size_t chunks = arena.chunks();
    arena.reset();
    // The oversize chunk is retained, not freed.
    EXPECT_EQ(arena.chunks(), chunks);
    EXPECT_EQ(arena.allocArray<std::uint8_t>(4096), big);
}

TEST(ArenaVector, GrowsAndPreservesContents)
{
    Arena arena;
    ArenaVector<int> v;
    v.bind(arena);
    EXPECT_TRUE(v.empty());
    for (int i = 0; i < 1000; ++i)
        v.push_back(i * 3);
    ASSERT_EQ(v.size(), 1000u);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(v[std::size_t(i)], i * 3);
    int expect = 0;
    for (const int x : v)
        EXPECT_EQ(x, 3 * expect++);
}

TEST(ArenaVector, ReleaseSurvivesArenaReset)
{
    Arena arena;
    ArenaVector<int> v;
    v.bind(arena);
    for (int i = 0; i < 100; ++i)
        v.push_back(i);
    v.release();
    arena.reset();
    EXPECT_TRUE(v.empty());
    // Reusable after the rewind: storage is re-acquired on demand.
    for (int i = 0; i < 50; ++i)
        v.push_back(-i);
    ASSERT_EQ(v.size(), 50u);
    EXPECT_EQ(v[49], -49);
}

TEST(ArenaVector, ClearKeepsCapacityAcrossRounds)
{
    Arena arena(64 * 1024);
    ArenaVector<std::uint64_t> v;
    v.bind(arena);
    for (unsigned i = 0; i < 512; ++i)
        v.push_back(i);
    const std::size_t chunks = arena.chunks();
    // clear() (no arena reset) must not re-grow on the same fill.
    for (unsigned round = 0; round < 4; ++round) {
        v.clear();
        for (unsigned i = 0; i < 512; ++i)
            v.push_back(i + round);
        EXPECT_EQ(arena.chunks(), chunks) << "round " << round;
    }
    EXPECT_EQ(v.size(), 512u);
}

} // namespace
