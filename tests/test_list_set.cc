/** @file Sorted linked-list set workload: structure integrity. */

#include <gtest/gtest.h>

#include "workload/list_set.hh"
#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using namespace ztx::workload;

ListSetBenchConfig
base(unsigned cpus, bool elide)
{
    ListSetBenchConfig cfg;
    cfg.cpus = cpus;
    cfg.useElision = elide;
    cfg.iterations = 120;
    cfg.machine = smallConfig(cpus);
    return cfg;
}

TEST(ListSet, SingleCpuLockKeepsStructure)
{
    const auto res = runListSetBench(base(1, false));
    EXPECT_TRUE(res.sorted);
    EXPECT_TRUE(res.lengthConsistent);
    EXPECT_GT(res.throughput, 0.0);
}

TEST(ListSet, SingleCpuElisionKeepsStructure)
{
    const auto res = runListSetBench(base(1, true));
    EXPECT_TRUE(res.sorted);
    EXPECT_TRUE(res.lengthConsistent);
    EXPECT_GT(res.txCommits, 0u);
}

class ListSetConcurrent
    : public ::testing::TestWithParam<std::tuple<bool, unsigned>>
{
};

TEST_P(ListSetConcurrent, SortedAndConsistentUnderContention)
{
    const bool elide = std::get<0>(GetParam());
    const unsigned seed = std::get<1>(GetParam());
    auto cfg = base(4, elide);
    cfg.seed = seed;
    const auto res = runListSetBench(cfg);
    EXPECT_TRUE(res.sorted);
    EXPECT_TRUE(res.lengthConsistent);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ListSetConcurrent,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(1u, 99u, 777u)),
    [](const auto &info) {
        return std::string(std::get<0>(info.param) ? "elision"
                                                   : "lock") +
               "_s" + std::to_string(std::get<1>(info.param));
    });

TEST(ListSet, ElisionScalesBetterThanLock)
{
    auto lock_cfg = base(8, false);
    auto tx_cfg = base(8, true);
    const auto lock_res = runListSetBench(lock_cfg);
    const auto tx_res = runListSetBench(tx_cfg);
    EXPECT_TRUE(tx_res.sorted);
    EXPECT_GT(tx_res.throughput, lock_res.throughput);
}

TEST(ListSet, OperationMixRespected)
{
    // Lookup-only mix: the structure must be exactly the prefill.
    auto cfg = base(4, true);
    cfg.lookupPercent = 100;
    cfg.insertPercent = 0;
    const auto res = runListSetBench(cfg);
    EXPECT_TRUE(res.lengthConsistent);
    // With no writers there are no conflicts at all.
    EXPECT_EQ(res.txAborts, 0u);
}

TEST(ListSet, LongTraversalsUseLruExtension)
{
    // A big key space makes traversal read sets exceed single L1
    // rows; the extension machinery must carry them.
    auto cfg = base(2, true);
    cfg.keySpace = 400;
    cfg.prefillPercent = 80;
    cfg.iterations = 40;
    const auto res = runListSetBench(cfg);
    EXPECT_TRUE(res.sorted);
    EXPECT_TRUE(res.lengthConsistent);
}

} // namespace
