/**
 * @file
 * Speculative over-marking of tx-read bits and the millicode
 * escalation stage that reduces speculation for constrained
 * retries (paper §III.C execution-time marking, §III.E escalation).
 */

#include <gtest/gtest.h>

#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using isa::Assembler;
using isa::Program;

TEST(Overmark, DisabledByDefault)
{
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.tbegin(0xFF);
    as.jnz("out");
    for (int i = 0; i < 8; ++i)
        as.lg(1, 9, i * 256);
    as.tend();
    as.label("out");
    as.halt();
    const Program p = as.finish();
    sim::Machine m(smallConfig(1));
    m.setProgram(0, &p);
    m.run();
    EXPECT_EQ(m.cpu(0).stats().counter("tx.overmarks").value(), 0u);
}

TEST(Overmark, MarksNeighbouringLine)
{
    auto cfg = smallConfig(1);
    cfg.tm.speculativeOvermarkProb = 1.0;
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.tbegin(0xFF);
    as.jnz("out");
    as.lg(1, 9);
    as.label("spin");
    as.j("spin");
    as.label("out");
    as.halt();
    const Program p = as.finish();
    sim::Machine m(cfg);
    m.setProgram(0, &p);
    for (int i = 0; i < 6; ++i)
        m.cpu(0).step();
    ASSERT_TRUE(m.cpu(0).inTx());
    EXPECT_TRUE(m.hierarchy().txRead(0, dataBase));
    EXPECT_TRUE(m.hierarchy().txRead(0, dataBase + 256));
    EXPECT_GE(m.cpu(0).stats().counter("tx.overmarks").value(), 1u);
}

TEST(Overmark, EscalationReducesSpeculationAndRecovers)
{
    // CPU1 hammers the line *next to* the one CPU0's constrained
    // transaction reads. With over-marking at probability 1 the
    // transaction keeps aborting on a line it never uses; after the
    // escalation threshold, millicode suppresses speculation and
    // the retry commits.
    auto cfg = smallConfig(2);
    cfg.tm.speculativeOvermarkProb = 1.0;

    Assembler c;
    c.la(9, 0, std::int64_t(dataBase));
    c.tbeginc(0x00);
    c.lg(1, 9); // over-marks dataBase + 256
    c.tend();
    c.halt();
    const Program constrained = c.finish();

    Assembler w;
    w.la(9, 0, std::int64_t(dataBase) + 256);
    w.lhi(8, 2000);
    w.lhi(1, 1);
    w.label("loop");
    w.stg(1, 9);
    w.brct(8, "loop");
    w.halt();
    const Program writer = w.finish();

    sim::Machine m(cfg);
    m.setProgram(0, &constrained);
    m.setProgram(1, &writer);
    m.run();
    ASSERT_TRUE(m.allHalted());
    EXPECT_EQ(m.cpu(0)
                  .stats()
                  .counter("tx.commits_constrained")
                  .value(),
              1u);
    EXPECT_GE(m.cpu(0).stats().counter("tx.aborts").value(), 2u);
    EXPECT_GE(m.cpu(0)
                  .stats()
                  .counter("millicode.speculation_reduced")
                  .value(),
              1u);
}

TEST(Overmark, SpeculationRestoredAfterSuccess)
{
    // After the constrained transaction finally commits, speculation
    // resumes for later transactions (the counter and flag reset).
    auto cfg = smallConfig(1);
    cfg.tm.speculativeOvermarkProb = 1.0;
    cfg.tm.constrainedSpeculationThreshold = 1;
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    // First constrained TX aborts once via TDC... instead force a
    // single abort with a diagnostic control on the first attempt:
    as.tbeginc(0x00);
    as.lg(1, 9);
    as.tend();
    // Second, separate transaction: must over-mark again.
    as.tbegin(0xFF);
    as.jnz("out");
    as.lg(2, 9, 4096);
    as.tend();
    as.label("out");
    as.halt();
    const Program p = as.finish();
    sim::Machine m(cfg);
    m.setProgram(0, &p);
    m.run();
    EXPECT_GE(m.cpu(0).stats().counter("tx.overmarks").value(), 2u);
}

} // namespace
