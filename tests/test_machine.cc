/** @file Machine scheduler: determinism, bounds, solo mode. */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using isa::Assembler;
using isa::Program;

/** Counts iterations into GR5 until halted externally. */
Program
counterProgram(unsigned iterations)
{
    Assembler as;
    as.lhi(5, 0);
    as.lhi(8, std::int64_t(iterations));
    as.label("loop");
    as.ahi(5, 1);
    as.brct(8, "loop");
    as.halt();
    return as.finish();
}

TEST(Machine, RunsToCompletion)
{
    const Program p = counterProgram(100);
    sim::Machine m(smallConfig(2));
    m.setProgramAll(&p);
    const Cycles elapsed = m.run();
    EXPECT_TRUE(m.allHalted());
    EXPECT_GT(elapsed, 0u);
    EXPECT_EQ(m.cpu(0).gr(5), 100u);
    EXPECT_EQ(m.cpu(1).gr(5), 100u);
}

TEST(Machine, BoundedRunStops)
{
    Assembler as;
    as.label("spin");
    as.ahi(5, 1);
    as.j("spin");
    const Program p = as.finish();
    sim::Machine m(smallConfig(1));
    m.setProgram(0, &p);
    const Cycles elapsed = m.run(10'000);
    EXPECT_FALSE(m.allHalted());
    EXPECT_LE(elapsed, 10'000u);
    const std::uint64_t first = m.cpu(0).gr(5);
    EXPECT_GT(first, 0u);
    // Resumable: more progress on the next run call.
    m.run(10'000);
    EXPECT_GT(m.cpu(0).gr(5), first);
}

TEST(Machine, DeterministicAcrossIdenticalRuns)
{
    auto run_once = [](std::uint64_t seed) {
        Assembler as;
        as.la(9, 0, std::int64_t(dataBase));
        as.lhi(8, 50);
        as.label("loop");
        as.rnd(1, 16);
        as.sllg(1, 1, 8); // line offset
        as.agr(1, 9);
        as.lr(2, 1);
        as.lg(3, 1);
        as.ahi(3, 1);
        as.stg(3, 2);
        as.brct(8, "loop");
        as.halt();
        const Program p = as.finish();
        auto cfg = smallConfig(4);
        cfg.seed = seed;
        sim::Machine m(cfg);
        for (unsigned i = 0; i < 4; ++i)
            m.setProgram(i, &p);
        const Cycles elapsed = m.run();
        std::uint64_t sum = 0;
        for (unsigned i = 0; i < 16; ++i)
            sum += m.peekMem(dataBase + i * 256, 8) * (i + 1);
        return std::pair(elapsed, sum);
    };
    const auto a = run_once(42);
    const auto b = run_once(42);
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
    const auto c = run_once(43);
    EXPECT_NE(a, c); // different seed, different interleaving
}

TEST(Machine, SoloModeParksOtherCpus)
{
    Assembler as;
    as.label("spin");
    as.ahi(5, 1);
    as.j("spin");
    const Program p = as.finish();
    sim::Machine m(smallConfig(2));
    m.setProgram(0, &p);
    m.setProgram(1, &p);
    m.requestSolo(0);
    m.run(20'000);
    EXPECT_GT(m.cpu(0).gr(5), 100u);
    EXPECT_EQ(m.cpu(1).gr(5), 0u); // parked
    m.releaseSolo(0);
    m.run(20'000);
    EXPECT_GT(m.cpu(1).gr(5), 100u);
}

TEST(Machine, SoloRequestsSerializeWithoutDeadlock)
{
    // The first requester wins; the loser's request is dropped (it
    // will re-request on its next abort). Solo also auto-releases
    // when the holder halts, so competing requests cannot wedge the
    // machine.
    sim::Machine m(smallConfig(2));
    m.requestSolo(0);
    m.requestSolo(1); // loser: ignored
    const Program p = counterProgram(10);
    m.setProgram(0, &p);
    m.setProgram(1, &p);
    m.run();
    EXPECT_TRUE(m.cpu(0).halted());
    EXPECT_TRUE(m.cpu(1).halted());
}

TEST(Machine, ParkedCpuDoesNotGetInterruptBurst)
{
    // Regression: a CPU parked behind solo mode falls many external
    // interrupt periods behind. On release it must skip the missed
    // period boundaries, not work through them as a back-to-back
    // burst of one interrupt per step (each delivery only advanced
    // the deadline by one period, far less than the 800-cycle
    // service stall it charges).
    auto cfg = smallConfig(2);
    cfg.externalInterruptPeriod = 2000; // > osInterruptCost (800)
    const Program p = counterProgram(50'000);
    sim::Machine m(cfg);
    m.setProgram(0, &p);
    m.setProgram(1, &p);
    m.requestSolo(0); // parks CPU1 until CPU0 halts
    m.run();
    ASSERT_TRUE(m.allHalted());
    EXPECT_EQ(m.cpu(1).gr(5), 50'000u);

    const std::uint64_t ints0 =
        m.cpu(0).stats().counter("external_interrupts").value();
    const std::uint64_t ints1 =
        m.cpu(1).stats().counter("external_interrupts").value();
    // Both CPUs run the same program for about the same number of
    // running cycles, so with per-period delivery their interrupt
    // counts are close; the parked backlog collapses into a single
    // delivery. Working through the backlog one period per 800+
    // cycle service stall would inflate CPU1's count several-fold.
    EXPECT_GT(ints0, 0u);
    EXPECT_LT(ints1, ints0 + ints0 / 2 + 10);
    // The missed boundaries are accounted, not delivered.
    EXPECT_GT(m.stats().counter("external.periods_skipped").value(),
              0u);
}

TEST(Machine, StatsDumpContainsComponents)
{
    const Program p = counterProgram(5);
    sim::Machine m(smallConfig(1));
    m.setProgram(0, &p);
    m.run();
    std::ostringstream os;
    m.dumpStats(os);
    const std::string dump = os.str();
    EXPECT_NE(dump.find("cpu0.instructions"), std::string::npos);
}

TEST(Machine, ActiveCpusBoundedByTopology)
{
    auto cfg = smallConfig(8); // exactly the topology capacity
    sim::Machine m(cfg);
    EXPECT_EQ(m.numCpus(), 8u);
}

TEST(Machine, InterleavingProducesRaces)
{
    // Unsynchronized read-modify-write on a shared counter from two
    // CPUs loses updates — evidence the scheduler interleaves at
    // sub-operation granularity (and the baseline for why TX/locks
    // are needed at all).
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(8, 400);
    as.label("loop");
    as.lg(1, 9);
    as.ahi(1, 1);
    as.stg(1, 9);
    as.brct(8, "loop");
    as.halt();
    const Program p = as.finish();
    sim::Machine m(smallConfig(2));
    m.setProgram(0, &p);
    m.setProgram(1, &p);
    m.run();
    EXPECT_LT(m.peekMem(dataBase, 8), 800u);
    EXPECT_GE(m.peekMem(dataBase, 8), 400u);
}

} // namespace
