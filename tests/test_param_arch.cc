/**
 * @file
 * Parameterized architectural sweeps: every GR-save-mask pair
 * position, every legal nesting depth, and the full PIFC x
 * exception-group filtering matrix.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using isa::Assembler;
using isa::Program;

// ---------------------------------------------------------------
// GRSM: each mask bit restores exactly its even/odd GR pair.
// ---------------------------------------------------------------

class GrsmPair : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(GrsmPair, MaskBitRestoresExactlyItsPair)
{
    const unsigned pair = GetParam(); // 0..7, GRs (2p, 2p+1)
    const std::uint8_t mask = std::uint8_t(0x80u >> pair);

    Assembler as;
    // Give every GR a recognizable pre-TX value, transactionally
    // clobber all of them, abort, and check the aftermath.
    for (unsigned r = 0; r < 16; ++r)
        as.lhi(r, 100 + std::int64_t(r));
    as.tbegin(mask);
    as.jnz("handler");
    for (unsigned r = 0; r < 16; ++r) {
        if (r == 15)
            continue; // keep a base register... not needed: TABORT
        as.lhi(r, 200 + std::int64_t(r));
    }
    as.lhi(15, 215);
    as.tabort(0, 256);
    as.label("handler");
    as.halt();
    const Program p = as.finish();
    sim::Machine m(smallConfig(1));
    m.setProgram(0, &p);
    m.run();

    for (unsigned r = 0; r < 16; ++r) {
        const bool in_pair = r / 2 == pair;
        const std::uint64_t expected =
            in_pair ? 100 + r : 200 + r;
        EXPECT_EQ(m.cpu(0).gr(r), expected) << "GR" << r;
    }
}

INSTANTIATE_TEST_SUITE_P(AllPairs, GrsmPair,
                         ::testing::Range(0u, 8u));

// ---------------------------------------------------------------
// Nesting: every depth up to the architected 16 commits; ETND
// reports the depth at the innermost level.
// ---------------------------------------------------------------

class NestingDepth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(NestingDepth, DepthCommitsAndEtndReports)
{
    const unsigned depth = GetParam();
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(1, 7);
    for (unsigned d = 0; d < depth; ++d)
        as.tbegin(0xFF); // CC0 falls through; aborts land on halt
    as.jnz("out");
    as.etnd(5);
    as.stg(1, 9);
    for (unsigned d = 0; d < depth; ++d)
        as.tend();
    as.label("out");
    as.halt();
    const Program p = as.finish();
    sim::Machine m(smallConfig(1));
    m.setProgram(0, &p);
    m.run();
    EXPECT_EQ(m.cpu(0).gr(5), depth);
    EXPECT_EQ(m.cpu(0).stats().counter("tx.commits").value(), 1u);
    EXPECT_EQ(m.peekMem(dataBase, 8), 7u);
    EXPECT_EQ(m.cpu(0).nestingDepth(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Depths, NestingDepth,
                         ::testing::Values(1u, 2u, 3u, 8u, 15u,
                                           16u));

// ---------------------------------------------------------------
// Filtering matrix: PIFC {0,1,2} x exception {arith, decimal,
// access}. Expected: arithmetic/decimal filtered at PIFC >= 1,
// access filtered only at PIFC 2.
// ---------------------------------------------------------------

enum class ExcKind
{
    Divide,
    Decimal,
    Access
};

using FilterParam = std::tuple<unsigned, ExcKind>;

class FilterMatrix : public ::testing::TestWithParam<FilterParam>
{
};

TEST_P(FilterMatrix, FilteredExactlyPerArchitecture)
{
    const unsigned pifc = std::get<0>(GetParam());
    const ExcKind kind = std::get<1>(GetParam());

    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(1, 42);
    as.lhi(2, 0);
    as.lhi(3, 0xF);
    as.tbegin(0xFF, {.pifc = std::uint8_t(pifc)});
    as.jnz("handler");
    switch (kind) {
      case ExcKind::Divide:
        as.dsgr(1, 2);
        break;
      case ExcKind::Decimal:
        as.ap(1, 3);
        break;
      case ExcKind::Access:
        as.lg(4, 9);
        break;
    }
    as.tend();
    as.label("handler");
    as.halt();
    const Program p = as.finish();

    sim::Machine m(smallConfig(1));
    if (kind == ExcKind::Access)
        m.pageTable().markAbsent(dataBase);
    m.setProgram(0, &p);
    m.run();

    const bool expect_filtered =
        kind == ExcKind::Access ? pifc >= 2 : pifc >= 1;
    const auto filtered =
        m.cpu(0)
            .stats()
            .counter("tx.abort.filtered-program-interrupt")
            .value();
    const auto unfiltered = m.cpu(0)
                                .stats()
                                .counter("tx.abort.program-interrupt")
                                .value();
    if (expect_filtered) {
        EXPECT_GE(filtered, 1u);
        EXPECT_EQ(m.os().records().size(), 0u);
    } else {
        EXPECT_GE(unfiltered, 1u);
        EXPECT_GE(m.os().records().size(), 1u);
    }
    // Either way the abort is transient: CC2.
    EXPECT_EQ(m.cpu(0).psw().cc, 2);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FilterMatrix,
    ::testing::Combine(::testing::Values(0u, 1u, 2u),
                       ::testing::Values(ExcKind::Divide,
                                         ExcKind::Decimal,
                                         ExcKind::Access)),
    [](const auto &info) {
        const char *kind = "";
        switch (std::get<1>(info.param)) {
          case ExcKind::Divide: kind = "divide"; break;
          case ExcKind::Decimal: kind = "decimal"; break;
          case ExcKind::Access: kind = "access"; break;
        }
        return std::string("pifc") +
               std::to_string(std::get<0>(info.param)) + "_" + kind;
    });

} // namespace
