/**
 * @file
 * RAS / scripted-chaos layer (src/inject + the poison model in
 * src/mem): line-poisoning injection, propagation and recovery
 * (scrub vs workload restart), the abort-before-commit guarantee
 * for poisoned transactional footprints, the scenario engine's
 * trigger grammar and step assertions, targeted conflict injection
 * driving the millicode escalation ladder, the pinned semantics of
 * untargeted scheduled faults, and bit-identical replay of full RAS
 * chaos plans across host-thread counts.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "debug/os_model.hh"
#include "inject/fault_injector.hh"
#include "inject/fault_plan.hh"
#include "mem/hierarchy.hh"
#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using isa::Assembler;
using isa::Program;

/** Constrained increment of a shared counter, @p iterations times. */
Program
constrainedIncrementProgram(unsigned iterations)
{
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lhi(8, std::int64_t(iterations));
    as.label("loop");
    as.tbeginc(0xFF);
    as.lg(1, 9);
    as.ahi(1, 1);
    as.stg(1, 9);
    as.tend();
    as.brct(8, "loop");
    as.halt();
    return as.finish();
}

/** One non-transactional load of the shared counter. */
Program
plainLoadProgram()
{
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.lg(1, 9);
    as.halt();
    return as.finish();
}

/** Sum of one per-CPU counter over the whole machine. */
std::uint64_t
cpuCounterSum(sim::Machine &m, const char *name)
{
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < m.numCpus(); ++i)
        sum += m.cpu(i).stats().counter(name).value();
    return sum;
}

/** An injector counter's value (0 when never registered). */
std::uint64_t
injectCounter(sim::Machine &m, const std::string &name)
{
    const auto &counters = m.injector()->stats().counters();
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second.value();
}

// ---------------------------------------------------------------
// Poison state machine on the hierarchy itself.
// ---------------------------------------------------------------

TEST(Poison, CachedPoisonScrubsClean)
{
    sim::Machine m(smallConfig(1));
    auto &h = m.hierarchy();
    EXPECT_FALSE(h.anyPoisoned());

    h.poisonLine(dataBase + 17, false); // any byte poisons its line
    EXPECT_TRUE(h.anyPoisoned());
    EXPECT_TRUE(h.poisonedCached(dataBase));
    EXPECT_FALSE(h.poisonedMemory(dataBase));
    EXPECT_EQ(h.poisonState(dataBase), mem::Hierarchy::poisonCached);

    // A clean copy exists in memory: the scrub succeeds.
    EXPECT_TRUE(h.scrubLine(dataBase));
    EXPECT_FALSE(h.anyPoisoned());
    EXPECT_EQ(h.poisonState(dataBase), 0u);
    // Scrubbing an unpoisoned line is vacuously successful.
    EXPECT_TRUE(h.scrubLine(dataBase));
}

TEST(Poison, MemorySidePoisonNeedsReload)
{
    sim::Machine m(smallConfig(1));
    auto &h = m.hierarchy();

    h.poisonLine(dataBase, true);
    EXPECT_TRUE(h.poisonedCached(dataBase));
    EXPECT_TRUE(h.poisonedMemory(dataBase));

    // No clean copy anywhere: the scrub must refuse.
    EXPECT_FALSE(h.scrubLine(dataBase));
    EXPECT_TRUE(h.anyPoisoned());

    // Only a reload (fresh data after a workload restart) clears it.
    h.reloadLine(dataBase);
    EXPECT_FALSE(h.anyPoisoned());
    EXPECT_EQ(h.poisonState(dataBase), 0u);
}

// ---------------------------------------------------------------
// Recovery semantics through a running CPU.
// ---------------------------------------------------------------

TEST(Poison, TransactionalFetchAbortsBeforeCommit)
{
    // The acceptance property: a transaction whose footprint touches
    // a poisoned line always aborts before any commit — poisoned
    // data is never silently committed.
    const Program p = constrainedIncrementProgram(10);
    sim::MachineConfig cfg = smallConfig(1);
    sim::Machine m(cfg);
    m.hierarchy().poisonLine(dataBase, false);
    m.setProgram(0, &p);
    m.run();

    ASSERT_TRUE(m.allHalted());
    // The poisoned access aborted, the machine check scrubbed the
    // line, and the retry went on to commit every increment: no
    // increment was lost to — or computed from — poisoned data.
    EXPECT_EQ(m.peekMem(dataBase, 8), 10u);
    EXPECT_GE(m.cpu(0).stats()
                  .counter("tx.abort.data-poisoned").value(), 1u);
    EXPECT_GE(m.cpu(0).stats().counter("machine_checks").value(),
              1u);
    EXPECT_EQ(m.cpu(0).stats().counter("workload_restarts").value(),
              0u);
    EXPECT_FALSE(m.hierarchy().anyPoisoned());

    ASSERT_FALSE(m.os().machineCheckRecords().empty());
    const auto &rec = m.os().machineCheckRecords().front();
    EXPECT_TRUE(rec.fromTx);
    EXPECT_TRUE(rec.scrubbed);
    EXPECT_EQ(rec.cpu, 0u);
    EXPECT_EQ(rec.line, Addr(dataBase));
}

TEST(Poison, NonTxAccessMachineChecksAndResumes)
{
    const Program p = plainLoadProgram();
    sim::MachineConfig cfg = smallConfig(1);
    sim::Machine m(cfg);
    m.hierarchy().poisonLine(dataBase, false);
    m.setProgram(0, &p);
    m.run();

    ASSERT_TRUE(m.allHalted());
    EXPECT_EQ(m.cpu(0).stats().counter("machine_checks").value(),
              1u);
    EXPECT_EQ(m.cpu(0).stats().counter("workload_restarts").value(),
              0u);
    ASSERT_EQ(m.os().machineCheckRecords().size(), 1u);
    EXPECT_FALSE(m.os().machineCheckRecords()[0].fromTx);
    EXPECT_TRUE(m.os().machineCheckRecords()[0].scrubbed);
}

TEST(Poison, MemorySidePoisonRestartsWorkload)
{
    // Memory image corrupt too: no refresh source, so the OS kills
    // and restarts the workload item. The restarted run starts from
    // the program entry with reloaded (modelled-fresh) data and
    // completes normally.
    const Program p = constrainedIncrementProgram(5);
    sim::MachineConfig cfg = smallConfig(1);
    sim::Machine m(cfg);
    m.hierarchy().poisonLine(dataBase, true);
    m.setProgram(0, &p);
    m.run();

    ASSERT_TRUE(m.allHalted());
    EXPECT_EQ(m.peekMem(dataBase, 8), 5u);
    EXPECT_EQ(m.cpu(0).stats().counter("workload_restarts").value(),
              1u);
    EXPECT_EQ(m.os().stats().counter("machine_check.restarts")
                  .value(), 1u);
    EXPECT_FALSE(m.hierarchy().anyPoisoned());
}

TEST(Poison, MidTransactionPoisonCaughtAtCommit)
{
    // Poison lands while the line already sits in a transactional
    // footprint (OnFootprint trigger): the access-time check missed
    // it, so the commit-time sweep must catch it — the transaction
    // aborts and nothing poisoned commits.
    inject::FaultPlan plan;
    inject::ScenarioStep s;
    s.trigger = inject::TriggerKind::OnFootprint;
    s.line = dataBase;
    s.kind = inject::FaultKind::PoisonLine;
    plan.scenario.push_back(s);

    const Program p = constrainedIncrementProgram(10);
    sim::MachineConfig cfg = smallConfig(1);
    cfg.faults = plan;
    cfg.watchdogCycles = 2'000'000;
    sim::Machine m(cfg);
    m.setProgram(0, &p);
    m.run();

    ASSERT_TRUE(m.allHalted());
    EXPECT_FALSE(m.watchdogFired());
    EXPECT_EQ(m.peekMem(dataBase, 8), 10u);
    EXPECT_GE(m.cpu(0).stats()
                  .counter("tx.abort.data-poisoned").value(), 1u);
    EXPECT_EQ(injectCounter(m, "scenario.fired"), 1u);
    EXPECT_EQ(injectCounter(m, "poison_line.fired"), 1u);
}

// ---------------------------------------------------------------
// Scenario engine: triggers, chaining, assertions.
// ---------------------------------------------------------------

TEST(Scenario, AtCycleFiresOnceAndChecksAssertion)
{
    // A step pinned to cycle 0 fires on the very first evaluation,
    // when no CPU can possibly be in a transaction: the TargetInTx
    // assertion must fail (counted, not fatal) and the fault itself
    // (a spurious abort against a non-transacting CPU) is a no-op.
    inject::FaultPlan plan;
    inject::ScenarioStep s;
    s.trigger = inject::TriggerKind::AtCycle;
    s.at = 0;
    s.kind = inject::FaultKind::SpuriousAbort;
    s.target = 0;
    s.check = inject::StepAssert::TargetInTx;
    plan.scenario.push_back(s);

    const Program p = constrainedIncrementProgram(5);
    sim::MachineConfig cfg = smallConfig(1);
    cfg.faults = plan;
    sim::Machine m(cfg);
    m.setProgram(0, &p);
    m.run();

    ASSERT_TRUE(m.allHalted());
    EXPECT_EQ(m.peekMem(dataBase, 8), 5u);
    EXPECT_EQ(injectCounter(m, "scenario.fired"), 1u);
    EXPECT_EQ(injectCounter(m, "scenario.assert_failed"), 1u);
    EXPECT_EQ(m.injector()->scenarioAssertFailures(), 1u);
}

TEST(Scenario, PeriodicStepFiresExactlyRepeatTimes)
{
    inject::FaultPlan plan;
    inject::ScenarioStep s;
    s.trigger = inject::TriggerKind::AtCycle;
    s.at = 100;
    s.period = 2000;
    s.repeat = 3;
    s.kind = inject::FaultKind::InterruptStorm;
    s.target = 0;
    plan.scenario.push_back(s);
    plan.interruptBurst = 2;

    const Program p = constrainedIncrementProgram(60);
    sim::MachineConfig cfg = smallConfig(1);
    cfg.faults = plan;
    cfg.watchdogCycles = 2'000'000;
    sim::Machine m(cfg);
    m.setProgram(0, &p);
    m.run();

    ASSERT_TRUE(m.allHalted());
    EXPECT_EQ(m.peekMem(dataBase, 8), 60u);
    EXPECT_EQ(injectCounter(m, "scenario.fired"), 3u);
    EXPECT_EQ(m.cpu(0).stats().counter("external_interrupts")
                  .value(), 6u); // 3 fires x burst of 2
}

TEST(Scenario, OnAbortAndAfterStepChain)
{
    // Step 0 arms on the third abort anywhere; step 1 fires a fixed
    // delay after step 0 did. Spurious-abort pressure supplies the
    // aborts.
    inject::FaultPlan plan;
    plan.spuriousAbortRate = 0.2;

    inject::ScenarioStep on_abort;
    on_abort.trigger = inject::TriggerKind::OnAbort;
    on_abort.count = 3;
    on_abort.kind = inject::FaultKind::CapacitySqueeze;
    plan.scenario.push_back(on_abort);

    inject::ScenarioStep chained;
    chained.trigger = inject::TriggerKind::AfterStep;
    chained.after = 0;
    chained.at = 500;
    chained.kind = inject::FaultKind::InterruptStorm;
    chained.target = 0;
    plan.scenario.push_back(chained);

    const Program p = constrainedIncrementProgram(40);
    sim::MachineConfig cfg = smallConfig(2);
    cfg.faults = plan;
    cfg.watchdogCycles = 2'000'000;
    sim::Machine m(cfg);
    m.setProgram(0, &p);
    m.setProgram(1, &p);
    m.run();

    ASSERT_TRUE(m.allHalted());
    EXPECT_FALSE(m.watchdogFired());
    EXPECT_EQ(m.peekMem(dataBase, 8), 80u);
    EXPECT_EQ(injectCounter(m, "scenario.fired"), 2u);
    EXPECT_GE(injectCounter(m, "squeeze.fired"), 1u);
    EXPECT_GE(cpuCounterSum(m, "external_interrupts"), 2u);
}

TEST(Scenario, OnFootprintResolvesHolderAndPassesAssertion)
{
    inject::FaultPlan plan;
    inject::ScenarioStep s;
    s.trigger = inject::TriggerKind::OnFootprint;
    s.line = dataBase;
    s.kind = inject::FaultKind::TargetedConflict;
    s.check = inject::StepAssert::LineInTargetFootprint;
    plan.scenario.push_back(s);

    const Program p = constrainedIncrementProgram(20);
    sim::MachineConfig cfg = smallConfig(2);
    cfg.faults = plan;
    cfg.watchdogCycles = 2'000'000;
    sim::Machine m(cfg);
    m.setProgram(0, &p);
    m.setProgram(1, &p);
    m.run();

    ASSERT_TRUE(m.allHalted());
    EXPECT_EQ(m.peekMem(dataBase, 8), 40u);
    EXPECT_EQ(injectCounter(m, "scenario.fired"), 1u);
    // The resolved target held the line in its footprint, so the
    // assertion passed and the conflict XI had a real victim.
    EXPECT_EQ(injectCounter(m, "scenario.assert_failed"), 0u);
    EXPECT_EQ(injectCounter(m, "targeted_conflict.fired"), 1u);
    EXPECT_EQ(injectCounter(m, "targeted_conflict.no_holder"), 0u);
}

TEST(Scenario, RejectsBackwardAfterStepReference)
{
    inject::FaultPlan plan;
    inject::ScenarioStep s;
    s.trigger = inject::TriggerKind::AfterStep;
    s.after = 0; // step 0 referencing itself: invalid
    plan.scenario.push_back(s);
    sim::MachineConfig cfg = smallConfig(1);
    cfg.faults = plan;
    EXPECT_DEATH({ sim::Machine m(cfg); }, "earlier step");
}

// ---------------------------------------------------------------
// Targeted conflicts: escalation ladder to solo with progress.
// ---------------------------------------------------------------

TEST(Targeted, PersistentConflictDrivesLadderToSolo)
{
    // A relentless single-line adversary: every step, with high
    // probability, one conflict XI lands on whoever holds the
    // shared counter line. Constrained retries must climb the
    // ladder (reduced speculation, then broadcast-stop), the solo
    // holder must be shielded from the adversary (fairness rule),
    // and the run must still complete with nothing lost.
    inject::FaultPlan plan;
    plan.targetedConflictRate = 0.5;
    plan.targetedLine = dataBase;

    const Program p = constrainedIncrementProgram(30);
    sim::MachineConfig cfg = smallConfig(2);
    cfg.faults = plan;
    cfg.watchdogCycles = 2'000'000;
    sim::Machine m(cfg);
    m.setProgram(0, &p);
    m.setProgram(1, &p);
    m.run();

    ASSERT_TRUE(m.allHalted());
    EXPECT_FALSE(m.watchdogFired());
    EXPECT_EQ(m.peekMem(dataBase, 8), 60u); // forward progress

    EXPECT_GT(injectCounter(m, "targeted_conflict.fired"), 0u);
    EXPECT_GT(injectCounter(m, "targeted_conflict.taken"), 0u);
    EXPECT_GT(injectCounter(m, "targeted_conflict.suppressed_solo"),
              0u);
    EXPECT_GT(cpuCounterSum(m, "millicode.speculation_reduced"), 0u);
    EXPECT_GT(cpuCounterSum(m, "millicode.solo_requests"), 0u);
    EXPECT_EQ(cpuCounterSum(m, "millicode.solo_requests"),
              cpuCounterSum(m, "millicode.solo_releases"));
}

TEST(Targeted, NoHolderMeansNoVictim)
{
    // Aim at a line nobody caches: the fault fizzles, counted.
    inject::FaultPlan plan;
    inject::ScheduledFault f;
    f.at = 100;
    f.kind = inject::FaultKind::TargetedConflict;
    f.line = 0x7700'0000; // never touched by the program
    plan.schedule.push_back(f);

    const Program p = constrainedIncrementProgram(5);
    sim::MachineConfig cfg = smallConfig(1);
    cfg.faults = plan;
    sim::Machine m(cfg);
    m.setProgram(0, &p);
    m.run();

    ASSERT_TRUE(m.allHalted());
    EXPECT_EQ(m.peekMem(dataBase, 8), 5u);
    EXPECT_EQ(injectCounter(m, "targeted_conflict.no_holder"), 1u);
    EXPECT_EQ(injectCounter(m, "targeted_conflict.fired"), 0u);
}

// ---------------------------------------------------------------
// Watchdog diagnosis bundles carry injector activity.
// ---------------------------------------------------------------

TEST(Watchdog, BundleReportsInjectorFires)
{
    inject::FaultPlan plan;
    plan.spuriousAbortRate = 1.0; // denies all progress

    const Program p = constrainedIncrementProgram(5);
    sim::MachineConfig cfg = smallConfig(1);
    cfg.faults = plan;
    cfg.watchdogCycles = 20'000;
    sim::Machine m(cfg);
    m.setProgram(0, &p);
    m.run(10'000'000);

    ASSERT_TRUE(m.watchdogFired());
    const std::string report = m.watchdogReport().dump();
    EXPECT_NE(report.find("inject_fired"), std::string::npos);
    EXPECT_NE(report.find("inject_recent"), std::string::npos);
    EXPECT_NE(report.find("spurious_abort"), std::string::npos);

    // The fired-counts object is zero-filled per kind and the
    // recent list is non-empty under a plan this hostile.
    const Json &doc = m.watchdogReport();
    const Json *fired = doc.find("inject_fired");
    ASSERT_NE(fired, nullptr);
    for (std::size_t k = 0; k < inject::faultKindCount; ++k)
        EXPECT_TRUE(fired->contains(
            inject::faultKindName(inject::FaultKind(k))));
    const Json *recent = doc.find("inject_recent");
    ASSERT_NE(recent, nullptr);
    EXPECT_GT(recent->size(), 0u);
}

// ---------------------------------------------------------------
// Pinned semantics: untargeted scheduled faults per scheduler.
// ---------------------------------------------------------------

TEST(Sharded, UntargetedScheduledFaultPinnedSemantics)
{
    // ScheduledFault with target == invalidCpu resolves differently
    // per scheduler mode (documented in fault_plan.hh): the legacy
    // scheduler hits the CPU about to step; the sharded scheduler
    // consumes the schedule at the quantum barrier and hits CPU 0.
    // Each mode must be deterministic in itself, and every sharded
    // host-thread count must agree bit-for-bit.
    inject::FaultPlan plan;
    inject::ScheduledFault f;
    f.at = 500;
    f.kind = inject::FaultKind::InterruptStorm;
    plan.schedule.push_back(f);

    const Program p = constrainedIncrementProgram(25);
    const auto dump = [&](unsigned host_threads) {
        sim::MachineConfig cfg = smallConfig(2);
        cfg.faults = plan;
        cfg.hostThreads = host_threads;
        cfg.watchdogCycles = 2'000'000;
        sim::Machine m(cfg);
        m.setProgram(0, &p);
        m.setProgram(1, &p);
        m.run();
        EXPECT_TRUE(m.allHalted());
        EXPECT_EQ(m.peekMem(dataBase, 8), 50u);
        EXPECT_EQ(injectCounter(m, "scheduled.fired"), 1u);
        std::ostringstream out;
        m.dumpStatsJson(out);
        return out.str();
    };

    const std::string legacy_a = dump(0);
    const std::string legacy_b = dump(0);
    EXPECT_EQ(legacy_a, legacy_b); // legacy self-consistent

    const std::string sharded_1 = dump(1);
    EXPECT_EQ(sharded_1, dump(2));
    EXPECT_EQ(sharded_1, dump(4)); // hostThreads-invariant
}

// ---------------------------------------------------------------
// Full RAS chaos plan: deterministic across host threads.
// ---------------------------------------------------------------

TEST(RasChaos, FullPlanBitIdenticalAcrossHostThreads)
{
    // Poison, targeted conflicts, spurious aborts, and a scripted
    // scenario all at once: the acceptance bar is zero watchdog
    // halts and bit-identical stats for every sharded host-thread
    // count (legacy mode is its own reference, replayed twice).
    inject::FaultPlan plan;
    plan.spuriousAbortRate = 0.01;
    plan.targetedConflictRate = 0.05;
    plan.targetedLine = dataBase;
    plan.poisonRate = 0.01;

    inject::ScenarioStep poison;
    poison.trigger = inject::TriggerKind::AtCycle;
    poison.at = 1'000;
    poison.kind = inject::FaultKind::PoisonLine;
    poison.line = dataBase;
    plan.scenario.push_back(poison);

    inject::ScenarioStep conflict;
    conflict.trigger = inject::TriggerKind::OnAbort;
    conflict.count = 2;
    conflict.kind = inject::FaultKind::TargetedConflict;
    conflict.line = dataBase;
    plan.scenario.push_back(conflict);

    const Program p = constrainedIncrementProgram(20);
    const auto dump = [&](unsigned host_threads) {
        sim::MachineConfig cfg = smallConfig(4);
        cfg.faults = plan;
        cfg.hostThreads = host_threads;
        cfg.watchdogCycles = 2'000'000;
        sim::Machine m(cfg);
        for (unsigned i = 0; i < 4; ++i)
            m.setProgram(i, &p);
        m.run();
        EXPECT_TRUE(m.allHalted());
        EXPECT_FALSE(m.watchdogFired());
        EXPECT_EQ(m.peekMem(dataBase, 8), 80u); // nothing lost
        std::ostringstream out;
        m.dumpStatsJson(out);
        return out.str();
    };

    const std::string legacy_a = dump(0);
    EXPECT_EQ(legacy_a, dump(0));

    const std::string sharded_1 = dump(1);
    EXPECT_EQ(sharded_1, dump(2));
    EXPECT_EQ(sharded_1, dump(4));

    // The plan actually did RAS work (visible in either mode).
    EXPECT_NE(legacy_a.find("data-poisoned"), std::string::npos);
    EXPECT_NE(sharded_1.find("poison.injected"), std::string::npos);
}

} // namespace
