/** @file Trace facility and PER branch events. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/trace.hh"
#include "ztx_test_util.hh"

namespace {

using namespace ztx;
using namespace ztx::test;
using isa::Assembler;
using isa::Program;

/** RAII: capture trace output and restore global state. */
class TraceCapture
{
  public:
    TraceCapture() { trace::setSink(&stream_); }

    ~TraceCapture()
    {
        trace::setSink(nullptr);
        trace::disableAll();
    }

    std::string text() const { return stream_.str(); }

  private:
    std::ostringstream stream_;
};

Program
txProgram()
{
    Assembler as;
    as.la(9, 0, std::int64_t(dataBase));
    as.tbegin(0xFF);
    as.jnz("out");
    as.lgfo(1, 9);
    as.ahi(1, 1);
    as.stg(1, 9);
    as.tend();
    as.label("out");
    as.halt();
    return as.finish();
}

TEST(Trace, DisabledByDefaultEmitsNothing)
{
    TraceCapture cap;
    const Program p = txProgram();
    sim::Machine m(smallConfig(1));
    m.setProgram(0, &p);
    m.run();
    EXPECT_TRUE(cap.text().empty());
}

TEST(Trace, TxCategoryShowsBeginAndCommit)
{
    TraceCapture cap;
    trace::enable(trace::Category::Tx);
    const Program p = txProgram();
    sim::Machine m(smallConfig(1));
    m.setProgram(0, &p);
    m.run();
    const std::string text = cap.text();
    EXPECT_NE(text.find("[tx] cpu0 TBEGIN"), std::string::npos);
    EXPECT_NE(text.find("[tx] cpu0 TEND commit"), std::string::npos);
}

TEST(Trace, MillicodeCategoryShowsAborts)
{
    TraceCapture cap;
    trace::enable(trace::Category::Millicode);
    Assembler as;
    as.tbegin(0xFF);
    as.jnz("out");
    as.tabort(0, 256);
    as.label("out");
    as.halt();
    const Program p = as.finish();
    sim::Machine m(smallConfig(1));
    m.setProgram(0, &p);
    m.run();
    EXPECT_NE(cap.text().find("abort tabort"), std::string::npos);
}

TEST(Trace, XiCategoryShowsInterrogates)
{
    TraceCapture cap;
    trace::enable(trace::Category::Xi);
    Assembler w;
    w.la(9, 0, std::int64_t(dataBase));
    w.lhi(1, 1);
    w.stg(1, 9);
    w.halt();
    const Program writer = w.finish();
    sim::Machine m(smallConfig(2));
    // CPU1 reads the line first so CPU0's store must interrogate.
    Assembler r;
    r.la(9, 0, std::int64_t(dataBase));
    r.lg(1, 9);
    r.halt();
    const Program reader = r.finish();
    m.setProgram(1, &reader);
    while (!m.cpu(1).halted())
        m.cpu(1).step();
    m.setProgram(0, &writer);
    while (!m.cpu(0).halted())
        m.cpu(0).step();
    EXPECT_NE(cap.text().find("read-only XI to cpu1"),
              std::string::npos);
}

TEST(Trace, EnableFromStringParsesLists)
{
    trace::disableAll();
    trace::enableFromString("tx,io");
    EXPECT_TRUE(trace::enabled(trace::Category::Tx));
    EXPECT_TRUE(trace::enabled(trace::Category::Io));
    EXPECT_FALSE(trace::enabled(trace::Category::Xi));
    trace::disableAll();
}

TEST(Trace, CategoryNamesRoundTrip)
{
    EXPECT_STREQ(trace::categoryName(trace::Category::Cache),
                 "cache");
    EXPECT_STREQ(trace::categoryName(trace::Category::Exec), "exec");
}

TEST(PerBranch, EventOnBranchIntoRange)
{
    Assembler as;
    as.lhi(1, 5);
    as.cghi(1, 5);
    as.jz("target"); // taken branch into the watched range
    as.lhi(2, 1);
    as.label("target");
    as.lhi(3, 9);
    as.halt();
    const Program p = as.finish();
    const Addr target = p.labelAddr("target");

    sim::Machine m(smallConfig(1));
    m.cpu(0).perControls().branchRange = {true, target, target};
    m.setProgram(0, &p);
    m.run();
    EXPECT_TRUE(m.cpu(0).halted());
    EXPECT_EQ(m.cpu(0).gr(3), 9u);
    EXPECT_EQ(m.os().countOf(tx::InterruptCode::PerEvent), 1u);
}

TEST(PerBranch, NoEventWhenBranchNotTaken)
{
    Assembler as;
    as.lhi(1, 5);
    as.cghi(1, 6); // CC != 0
    as.jz("target");
    as.lhi(2, 1);
    as.label("target");
    as.halt();
    const Program p = as.finish();
    sim::Machine m(smallConfig(1));
    m.cpu(0).perControls().branchRange =
        {true, p.labelAddr("target"), p.labelAddr("target")};
    m.setProgram(0, &p);
    m.run();
    EXPECT_EQ(m.os().countOf(tx::InterruptCode::PerEvent), 0u);
}

TEST(PerBranch, SuppressedInsideTransaction)
{
    Assembler as;
    as.tbegin(0xFF);
    as.jnz("out");
    as.lhi(1, 1);
    as.cghi(1, 1);
    as.jz("inside");
    as.label("inside");
    as.tend();
    as.label("out");
    as.halt();
    const Program p = as.finish();
    sim::Machine m(smallConfig(1));
    m.cpu(0).perControls().branchRange =
        {true, p.labelAddr("inside"), p.labelAddr("inside")};
    m.cpu(0).perControls().suppressInTx = true;
    m.setProgram(0, &p);
    m.run();
    EXPECT_EQ(m.os().countOf(tx::InterruptCode::PerEvent), 0u);
    EXPECT_EQ(m.cpu(0).stats().counter("tx.commits").value(), 1u);
}

TEST(PerBranch, InsideTxWithoutSuppressionAborts)
{
    Assembler as;
    as.lhi(0, 0);
    as.label("retry");
    as.tbegin(0xFF);
    as.jnz("handler");
    as.lhi(1, 1);
    as.cghi(1, 1);
    as.jz("inside");
    as.label("inside");
    as.tend();
    as.j("out");
    as.label("handler");
    as.ahi(0, 1);
    as.cijnl(0, 3, "out");
    as.j("retry");
    as.label("out");
    as.halt();
    const Program p = as.finish();
    sim::Machine m(smallConfig(1));
    m.cpu(0).perControls().branchRange =
        {true, p.labelAddr("inside"), p.labelAddr("inside")};
    m.setProgram(0, &p);
    m.run();
    EXPECT_GT(m.os().countOf(tx::InterruptCode::PerEvent), 0u);
    EXPECT_EQ(m.cpu(0).stats().counter("tx.commits").value(), 0u);
}

} // namespace
