/** @file Unit tests for the functional backing store. */

#include <gtest/gtest.h>

#include "mem/main_memory.hh"

namespace {

using ztx::mem::MainMemory;

TEST(MainMemory, ReadsZeroWhenUntouched)
{
    MainMemory m;
    EXPECT_EQ(m.read(0x1000, 8), 0u);
    EXPECT_EQ(m.readByte(0xdeadbeef), 0u);
}

TEST(MainMemory, ByteRoundTrip)
{
    MainMemory m;
    m.writeByte(0x42, 0xab);
    EXPECT_EQ(m.readByte(0x42), 0xab);
    EXPECT_EQ(m.readByte(0x41), 0u);
    EXPECT_EQ(m.readByte(0x43), 0u);
}

TEST(MainMemory, BigEndianWordLayout)
{
    MainMemory m;
    m.write(0x100, 0x0102030405060708ULL, 8);
    EXPECT_EQ(m.readByte(0x100), 0x01);
    EXPECT_EQ(m.readByte(0x107), 0x08);
    EXPECT_EQ(m.read(0x100, 8), 0x0102030405060708ULL);
    EXPECT_EQ(m.read(0x100, 4), 0x01020304ULL);
    EXPECT_EQ(m.read(0x104, 4), 0x05060708ULL);
}

TEST(MainMemory, CrossLineAccess)
{
    MainMemory m;
    // 8-byte write straddling a 256-byte line boundary.
    m.write(0xFC, 0x1122334455667788ULL, 8);
    EXPECT_EQ(m.read(0xFC, 8), 0x1122334455667788ULL);
    EXPECT_EQ(m.readByte(0xFF), 0x44);
    EXPECT_EQ(m.readByte(0x100), 0x55);
}

TEST(MainMemory, BlockRoundTrip)
{
    MainMemory m;
    std::uint8_t in[300];
    for (int i = 0; i < 300; ++i)
        in[i] = std::uint8_t(i * 7);
    m.writeBlock(0x1F0, in, sizeof(in));
    std::uint8_t out[300] = {};
    m.readBlock(0x1F0, out, sizeof(out));
    for (int i = 0; i < 300; ++i)
        EXPECT_EQ(out[i], in[i]) << "offset " << i;
}

TEST(MainMemory, SmallSizes)
{
    MainMemory m;
    m.write(0x10, 0xbeef, 2);
    EXPECT_EQ(m.read(0x10, 2), 0xbeefu);
    m.write(0x20, 0x7f, 1);
    EXPECT_EQ(m.read(0x20, 1), 0x7fu);
}

TEST(MainMemory, LinesAllocatedCountsDistinctLines)
{
    MainMemory m;
    m.writeByte(0, 1);
    m.writeByte(255, 1);   // same line
    m.writeByte(256, 1);   // next line
    EXPECT_EQ(m.linesAllocated(), 2u);
}

} // namespace
