/**
 * @file
 * Memory-subsystem property tests: the cache array against a golden
 * reference LRU model, and the coherence hierarchy under random
 * traffic with randomly rejecting clients.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "mem/hierarchy.hh"

namespace {

using namespace ztx;
using namespace ztx::mem;

// ---------------------------------------------------------------
// CacheArray versus a golden set-associative true-LRU model.
// ---------------------------------------------------------------

/** Straightforward reference implementation. */
class GoldenLru
{
  public:
    GoldenLru(std::uint64_t rows, unsigned assoc)
        : rows_(rows), assoc_(assoc), sets_(rows)
    {
    }

    bool
    contains(Addr line) const
    {
        const auto &set = sets_[row(line)];
        for (const Addr l : set)
            if (l == line)
                return true;
        return false;
    }

    void
    touch(Addr line)
    {
        auto &set = sets_[row(line)];
        set.remove(line);
        set.push_back(line); // back = most recent
    }

    /** @return evicted line, or nullopt. */
    std::optional<Addr>
    insert(Addr line)
    {
        auto &set = sets_[row(line)];
        std::optional<Addr> victim;
        if (set.size() == assoc_) {
            victim = set.front();
            set.pop_front();
        }
        set.push_back(line);
        return victim;
    }

    void
    invalidate(Addr line)
    {
        sets_[row(line)].remove(line);
    }

  private:
    std::uint64_t
    row(Addr line) const
    {
        return (line >> lineSizeLog2) % rows_;
    }

    std::uint64_t rows_;
    unsigned assoc_;
    std::vector<std::list<Addr>> sets_;
};

class CacheArrayFuzz : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CacheArrayFuzz, MatchesGoldenLruModel)
{
    const CacheGeometry geo{8 * 4 * lineSizeBytes, 4}; // 8 rows
    CacheArray dut(geo, "fuzz");
    GoldenLru golden(geo.rows(), geo.assoc);
    Rng rng(GetParam());

    for (int step = 0; step < 20000; ++step) {
        const Addr line = rng.nextBounded(64) * lineSizeBytes;
        switch (rng.nextBounded(4)) {
          case 0: // lookup + touch
            ASSERT_EQ(dut.touch(line), golden.contains(line))
                << "step " << step;
            if (golden.contains(line))
                golden.touch(line);
            break;
          case 1: { // insert if absent
            if (!golden.contains(line)) {
                const auto dut_victim = dut.insert(line);
                const auto gold_victim = golden.insert(line);
                ASSERT_EQ(dut_victim.valid,
                          gold_victim.has_value())
                    << "step " << step;
                if (gold_victim) {
                    ASSERT_EQ(dut_victim.line, *gold_victim)
                        << "step " << step;
                }
            }
            break;
          }
          case 2: // invalidate
            ASSERT_EQ(dut.invalidate(line), golden.contains(line))
                << "step " << step;
            golden.invalidate(line);
            break;
          case 3: // pure membership query
            ASSERT_EQ(dut.contains(line), golden.contains(line))
                << "step " << step;
            break;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheArrayFuzz,
                         ::testing::Values(1u, 2u, 3u, 99u, 1234u));

// ---------------------------------------------------------------
// Hierarchy under random traffic with randomly rejecting clients.
// ---------------------------------------------------------------

/** Client that rejects rejectable XIs with some probability. */
class FlakyClient : public CacheClient
{
  public:
    explicit FlakyClient(std::uint64_t seed, double reject_p)
        : rng_(seed), rejectP_(reject_p)
    {
    }

    XiResponse
    incomingXi(const XiContext &ctx) override
    {
        if ((ctx.kind == XiKind::Demote ||
             ctx.kind == XiKind::Exclusive) &&
            rng_.nextBool(rejectP_)) {
            return XiResponse::Reject;
        }
        return XiResponse::Accept;
    }

    void l1Evicted(Addr, std::uint8_t) override {}

  private:
    Rng rng_;
    double rejectP_;
};

class HierarchyFuzz : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(HierarchyFuzz, InvariantsHoldWithRejectingClients)
{
    HierarchyGeometry geo;
    geo.l1 = CacheGeometry{2 * 2 * lineSizeBytes, 2};
    geo.l2 = CacheGeometry{4 * 4 * lineSizeBytes, 4};
    geo.l3 = CacheGeometry{32 * 8 * lineSizeBytes, 8};
    geo.l4 = CacheGeometry{128 * 8 * lineSizeBytes, 8};
    const Topology topo(2, 2, 2);
    Hierarchy hier(topo, LatencyModel{}, geo);

    std::vector<std::unique_ptr<FlakyClient>> clients;
    for (unsigned i = 0; i < topo.numCpus(); ++i) {
        clients.push_back(
            std::make_unique<FlakyClient>(GetParam() * 100 + i,
                                          0.3));
        hier.setClient(i, clients.back().get());
    }

    Rng rng(GetParam());
    unsigned rejected = 0;
    for (int step = 0; step < 8000; ++step) {
        const CpuId cpu = CpuId(rng.nextBounded(topo.numCpus()));
        const Addr line = rng.nextBounded(48) * lineSizeBytes;
        const auto res =
            hier.fetch(cpu, line, rng.nextBool(0.4));
        rejected += res.rejected ? 1 : 0;
        if (!res.rejected) {
            // After a successful fetch the line is locally present.
            ASSERT_TRUE(hier.inL1(cpu, line)) << "step " << step;
            ASSERT_TRUE(hier.directory().holds(cpu, line))
                << "step " << step;
        }
        if (step % 400 == 0)
            hier.checkInvariants();
    }
    hier.checkInvariants();
    // With p = 0.3 rejection, a healthy fraction of the exclusive
    // traffic must actually have been stiff-armed.
    EXPECT_GT(rejected, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchyFuzz,
                         ::testing::Values(11u, 22u, 33u));

} // namespace
