/** @file Unit tests for opcodes, the assembler, and programs. */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/opcodes.hh"
#include "isa/program.hh"
#include "isa/registers.hh"

namespace {

using namespace ztx;
using namespace ztx::isa;

TEST(OpcodeInfo, LengthsAreZLike)
{
    EXPECT_EQ(opcodeInfo(Opcode::LR).length, 2u);
    EXPECT_EQ(opcodeInfo(Opcode::LHI).length, 4u);
    EXPECT_EQ(opcodeInfo(Opcode::LG).length, 6u);
    EXPECT_EQ(opcodeInfo(Opcode::TBEGIN).length, 6u);
    EXPECT_EQ(opcodeInfo(Opcode::TEND).length, 4u);
}

TEST(OpcodeInfo, ClassificationFlags)
{
    EXPECT_TRUE(opcodeInfo(Opcode::LG).isLoad);
    EXPECT_TRUE(opcodeInfo(Opcode::STG).isStore);
    EXPECT_TRUE(opcodeInfo(Opcode::CS).isLoad);
    EXPECT_TRUE(opcodeInfo(Opcode::CS).isStore);
    EXPECT_TRUE(opcodeInfo(Opcode::BRC).isBranch);
    EXPECT_TRUE(opcodeInfo(Opcode::ADB).modifiesFpr);
    EXPECT_TRUE(opcodeInfo(Opcode::SAR).modifiesAr);
    EXPECT_FALSE(opcodeInfo(Opcode::SAR).restrictedInTx);
    EXPECT_TRUE(opcodeInfo(Opcode::LPSWE).restrictedInTx);
}

TEST(OpcodeInfo, ConstrainedSubset)
{
    // The constrained subset includes loads, stores, CS, branches,
    // simple arithmetic -- and excludes FP/decimal/complex ops.
    EXPECT_FALSE(opcodeInfo(Opcode::LG).restrictedInConstrained);
    EXPECT_FALSE(opcodeInfo(Opcode::STG).restrictedInConstrained);
    EXPECT_FALSE(opcodeInfo(Opcode::CS).restrictedInConstrained);
    EXPECT_FALSE(opcodeInfo(Opcode::AGR).restrictedInConstrained);
    EXPECT_FALSE(opcodeInfo(Opcode::BRC).restrictedInConstrained);
    EXPECT_TRUE(opcodeInfo(Opcode::ADB).restrictedInConstrained);
    EXPECT_TRUE(opcodeInfo(Opcode::AP).restrictedInConstrained);
    EXPECT_TRUE(opcodeInfo(Opcode::DSGR).restrictedInConstrained);
    EXPECT_TRUE(opcodeInfo(Opcode::TBEGIN).restrictedInConstrained);
    EXPECT_TRUE(opcodeInfo(Opcode::TBEGINC).restrictedInConstrained);
    EXPECT_TRUE(opcodeInfo(Opcode::NTSTG).restrictedInConstrained);
}

TEST(OpcodeInfo, ExceptionGroups)
{
    EXPECT_EQ(opcodeInfo(Opcode::LG).exceptionGroup,
              ExceptionGroup::Access);
    EXPECT_EQ(opcodeInfo(Opcode::DSGR).exceptionGroup,
              ExceptionGroup::Arithmetic);
    EXPECT_EQ(opcodeInfo(Opcode::INVALID).exceptionGroup,
              ExceptionGroup::Always);
    EXPECT_EQ(opcodeInfo(Opcode::LR).exceptionGroup,
              ExceptionGroup::None);
}

TEST(OpcodeInfo, NamesMatch)
{
    EXPECT_STREQ(opcodeName(Opcode::TBEGIN), "TBEGIN");
    EXPECT_STREQ(opcodeName(Opcode::NTSTG), "NTSTG");
    EXPECT_STREQ(opcodeName(Opcode::HALT), "HALT");
}

TEST(ConditionMasks, Selection)
{
    EXPECT_TRUE(ccSelected(maskZero, 0));
    EXPECT_FALSE(ccSelected(maskZero, 1));
    EXPECT_TRUE(ccSelected(maskNotZero, 1));
    EXPECT_TRUE(ccSelected(maskNotZero, 3));
    EXPECT_FALSE(ccSelected(maskNotZero, 0));
    EXPECT_TRUE(ccSelected(maskOnes, 3));
    for (std::uint8_t cc = 0; cc < 4; ++cc)
        EXPECT_TRUE(ccSelected(maskAlways, cc));
}

TEST(ConditionHelpers, SignedAndCompare)
{
    EXPECT_EQ(ccOfSigned(0), 0);
    EXPECT_EQ(ccOfSigned(-5), 1);
    EXPECT_EQ(ccOfSigned(5), 2);
    EXPECT_EQ(ccOfCompare(1, 1), 0);
    EXPECT_EQ(ccOfCompare(0, 1), 1);
    EXPECT_EQ(ccOfCompare(2, 1), 2);
}

TEST(Assembler, AddressesAdvanceByLength)
{
    Assembler as(0x1000);
    as.lr(1, 2);    // 2 bytes
    as.lhi(3, 7);   // 4 bytes
    as.lg(4, 5, 8); // 6 bytes
    as.halt();
    const Program p = as.finish();
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p.slots()[0].addr, 0x1000u);
    EXPECT_EQ(p.slots()[1].addr, 0x1002u);
    EXPECT_EQ(p.slots()[2].addr, 0x1006u);
    EXPECT_EQ(p.slots()[3].addr, 0x100Cu);
}

TEST(Assembler, FetchByAddress)
{
    Assembler as(0x2000);
    as.lhi(0, 42);
    as.halt();
    const Program p = as.finish();
    const auto *slot = p.fetch(0x2000);
    ASSERT_NE(slot, nullptr);
    EXPECT_EQ(slot->inst.op, Opcode::LHI);
    EXPECT_EQ(slot->inst.imm, 42);
    EXPECT_EQ(p.fetch(0x2001), nullptr);
    EXPECT_EQ(p.entry(), 0x2000u);
}

TEST(Assembler, ForwardAndBackwardLabels)
{
    Assembler as;
    as.label("top");
    as.lhi(1, 0);
    as.j("done");     // forward reference
    as.j("top");      // backward reference
    as.label("done");
    as.halt();
    const Program p = as.finish();
    EXPECT_EQ(p.slots()[1].inst.target, p.labelAddr("done"));
    EXPECT_EQ(p.slots()[2].inst.target, p.labelAddr("top"));
    EXPECT_EQ(p.labelAddr("top"), p.entry());
}

TEST(Assembler, BranchHelpersSetMasks)
{
    Assembler as;
    as.label("t");
    as.jnz("t");
    as.jz("t");
    as.jo("t");
    as.cijnl(0, 6, "t");
    as.halt();
    const Program p = as.finish();
    EXPECT_EQ(p.slots()[0].inst.mask, maskNotZero);
    EXPECT_EQ(p.slots()[1].inst.mask, maskZero);
    EXPECT_EQ(p.slots()[2].inst.mask, maskOnes);
    EXPECT_EQ(p.slots()[3].inst.mask, maskCc0 | maskCc2);
}

TEST(Assembler, TBeginFields)
{
    Assembler as;
    as.tbegin(0xFF, {.tdbBase = 8, .tdbDisp = 0x40,
                     .allowArMod = false, .allowFprMod = false,
                     .pifc = 2});
    as.tend();
    as.halt();
    const Program p = as.finish();
    const auto &tb = p.slots()[0].inst;
    EXPECT_EQ(tb.grsm, 0xFF);
    EXPECT_EQ(tb.base, 8);
    EXPECT_EQ(tb.disp, 0x40);
    EXPECT_FALSE(tb.allowArMod);
    EXPECT_FALSE(tb.allowFprMod);
    EXPECT_EQ(tb.pifc, 2);
}

TEST(Assembler, TBeginCForcesControls)
{
    Assembler as;
    as.tbeginc(0x80);
    as.tend();
    as.halt();
    const Program p = as.finish();
    const auto &tb = p.slots()[0].inst;
    EXPECT_EQ(tb.grsm, 0x80);
    // TBEGINC has no F or PIFC fields; controls read as zero.
    EXPECT_FALSE(tb.allowFprMod);
    EXPECT_EQ(tb.pifc, 0);
    EXPECT_TRUE(tb.allowArMod);
}

TEST(Program, LabelAddrForData)
{
    Assembler as(0x100);
    as.nop();
    as.label("after");
    as.halt();
    const Program p = as.finish();
    EXPECT_EQ(p.labelAddr("after"), 0x102u);
}

} // namespace
