/** @file Unit and invariant tests for the coherent cache hierarchy. */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "mem/hierarchy.hh"

namespace {

using namespace ztx;
using namespace ztx::mem;

/** Scripted XI client: counts XIs, optionally rejects a few. */
class StubClient : public CacheClient
{
  public:
    XiResponse
    incomingXi(const XiContext &ctx) override
    {
        received.push_back(ctx);
        if (rejectBudget > 0 && (ctx.kind == XiKind::Demote ||
                                 ctx.kind == XiKind::Exclusive)) {
            --rejectBudget;
            return XiResponse::Reject;
        }
        return XiResponse::Accept;
    }

    void
    l1Evicted(Addr line, std::uint8_t flags) override
    {
        evicted.emplace_back(line, flags);
    }

    std::vector<XiContext> received;
    std::vector<std::pair<Addr, std::uint8_t>> evicted;
    int rejectBudget = 0;
};

/** Hierarchy + stub clients, small topology, configurable geometry. */
struct Rig
{
    explicit Rig(HierarchyGeometry geo = HierarchyGeometry{},
                 Topology topo = Topology(2, 2, 2))
        : hier(topo, LatencyModel{}, geo)
    {
        for (unsigned i = 0; i < topo.numCpus(); ++i) {
            clients.push_back(std::make_unique<StubClient>());
            hier.setClient(i, clients.back().get());
        }
    }

    Hierarchy hier;
    std::vector<std::unique_ptr<StubClient>> clients;
};

constexpr Addr lineA = 0x10000;
constexpr Addr lineB = 0x20000;

TEST(Hierarchy, ColdFetchComesFromMemory)
{
    Rig rig;
    const auto res = rig.hier.fetch(0, lineA, false);
    EXPECT_FALSE(res.rejected);
    EXPECT_EQ(res.source, DataSource::Memory);
    EXPECT_TRUE(rig.hier.inL1(0, lineA));
    EXPECT_TRUE(rig.hier.inL2(0, lineA));
    EXPECT_TRUE(rig.hier.inL3(0, lineA));
    EXPECT_TRUE(rig.hier.inL4(0, lineA));
    rig.hier.checkInvariants();
}

TEST(Hierarchy, SecondFetchHitsL1)
{
    Rig rig;
    rig.hier.fetch(0, lineA, false);
    const auto res = rig.hier.fetch(0, lineA, false);
    EXPECT_EQ(res.source, DataSource::L1);
    EXPECT_EQ(res.latency, rig.hier.latencyModel().l1Hit);
}

TEST(Hierarchy, ReadSharingSendsNoXi)
{
    Rig rig;
    rig.hier.fetch(0, lineA, false);
    rig.hier.fetch(1, lineA, false);
    EXPECT_TRUE(rig.clients[0]->received.empty());
    EXPECT_TRUE(rig.hier.directory().holds(0, lineA));
    EXPECT_TRUE(rig.hier.directory().holds(1, lineA));
}

TEST(Hierarchy, ReadOfExclusiveLineSendsDemoteXi)
{
    Rig rig;
    rig.hier.fetch(0, lineA, true);
    EXPECT_EQ(rig.hier.directory().lookup(lineA).owner, CpuId(0));
    const auto res = rig.hier.fetch(1, lineA, false);
    EXPECT_FALSE(res.rejected);
    ASSERT_EQ(rig.clients[0]->received.size(), 1u);
    EXPECT_EQ(rig.clients[0]->received[0].kind, XiKind::Demote);
    // Previous owner keeps a read-only copy.
    EXPECT_TRUE(rig.hier.inL1(0, lineA));
    EXPECT_TRUE(rig.hier.directory().holds(0, lineA));
    EXPECT_EQ(rig.hier.directory().lookup(lineA).owner, invalidCpu);
}

TEST(Hierarchy, WriteOfSharedLineInvalidatesSharers)
{
    Rig rig;
    rig.hier.fetch(0, lineA, false);
    rig.hier.fetch(1, lineA, false);
    const auto res = rig.hier.fetch(2, lineA, true);
    EXPECT_FALSE(res.rejected);
    ASSERT_EQ(rig.clients[0]->received.size(), 1u);
    EXPECT_EQ(rig.clients[0]->received[0].kind, XiKind::ReadOnly);
    ASSERT_EQ(rig.clients[1]->received.size(), 1u);
    EXPECT_FALSE(rig.hier.inL1(0, lineA));
    EXPECT_FALSE(rig.hier.inL2(0, lineA));
    EXPECT_FALSE(rig.hier.directory().holds(0, lineA));
    EXPECT_EQ(rig.hier.directory().lookup(lineA).owner, CpuId(2));
    rig.hier.checkInvariants();
}

TEST(Hierarchy, WriteOfExclusiveLineSendsExclusiveXi)
{
    Rig rig;
    rig.hier.fetch(0, lineA, true);
    rig.hier.fetch(1, lineA, true);
    ASSERT_EQ(rig.clients[0]->received.size(), 1u);
    EXPECT_EQ(rig.clients[0]->received[0].kind, XiKind::Exclusive);
    EXPECT_FALSE(rig.hier.inL2(0, lineA));
    EXPECT_EQ(rig.hier.directory().lookup(lineA).owner, CpuId(1));
}

TEST(Hierarchy, RejectedXiLeavesStateUntouched)
{
    Rig rig;
    rig.hier.fetch(0, lineA, true);
    rig.clients[0]->rejectBudget = 1;
    const auto res = rig.hier.fetch(1, lineA, true);
    EXPECT_TRUE(res.rejected);
    EXPECT_EQ(res.rejecter, CpuId(0));
    EXPECT_GT(res.latency, 0u);
    EXPECT_EQ(rig.hier.directory().lookup(lineA).owner, CpuId(0));
    EXPECT_FALSE(rig.hier.inL2(1, lineA));
    // Retry after the owner stops rejecting succeeds.
    const auto res2 = rig.hier.fetch(1, lineA, true);
    EXPECT_FALSE(res2.rejected);
    EXPECT_EQ(rig.hier.directory().lookup(lineA).owner, CpuId(1));
}

TEST(Hierarchy, UpgradeFromSharedToExclusive)
{
    Rig rig;
    rig.hier.fetch(0, lineA, false);
    rig.hier.fetch(1, lineA, false);
    const auto res = rig.hier.fetch(0, lineA, true);
    EXPECT_FALSE(res.rejected);
    EXPECT_EQ(rig.hier.directory().lookup(lineA).owner, CpuId(0));
    EXPECT_FALSE(rig.hier.directory().holds(1, lineA));
    // Local data: upgrade is served from the local caches.
    EXPECT_TRUE(res.source == DataSource::L1 ||
                res.source == DataSource::L2);
}

TEST(Hierarchy, InterventionSourceTracksDistance)
{
    Rig rig;
    rig.hier.fetch(0, lineA, true);
    // CPU 1 is on the same chip: data via shared L3.
    auto res = rig.hier.fetch(1, lineA, false);
    EXPECT_EQ(res.source, DataSource::L3);
    // CPU 2 is on the other chip of the MCM.
    rig.hier.fetch(2, lineB, false);
    rig.hier.fetch(0, lineB, true);
    ASSERT_FALSE(rig.hier.inL2(2, lineB));
    auto res2 = rig.hier.fetch(2, lineB, false);
    EXPECT_EQ(res2.source, DataSource::L4);
    // CPU 4 is on the other MCM.
    auto res3 = rig.hier.fetch(4, lineA, false);
    EXPECT_EQ(res3.source, DataSource::RemoteMcm);
}

TEST(Hierarchy, TxMarksSetAndClear)
{
    Rig rig;
    rig.hier.fetch(0, lineA, false);
    rig.hier.markTxRead(0, lineA);
    EXPECT_TRUE(rig.hier.txRead(0, lineA));
    rig.hier.fetch(0, lineB, true);
    rig.hier.markTxDirty(0, lineB);
    EXPECT_TRUE(rig.hier.txDirty(0, lineB));
    rig.hier.clearTxMarks(0);
    EXPECT_FALSE(rig.hier.txRead(0, lineA));
    EXPECT_FALSE(rig.hier.txDirty(0, lineB));
}

TEST(Hierarchy, XiContextCarriesTxBits)
{
    Rig rig;
    rig.hier.fetch(0, lineA, false);
    rig.hier.markTxRead(0, lineA);
    rig.hier.fetch(1, lineA, true);
    ASSERT_EQ(rig.clients[0]->received.size(), 1u);
    EXPECT_TRUE(rig.clients[0]->received[0].txRead);
    EXPECT_FALSE(rig.clients[0]->received[0].txDirty);
    EXPECT_EQ(rig.clients[0]->received[0].requester, CpuId(1));
}

TEST(Hierarchy, KillTxDirtyLinesRemovesFromL1Only)
{
    Rig rig;
    rig.hier.fetch(0, lineA, true);
    rig.hier.markTxDirty(0, lineA);
    rig.hier.killTxDirtyLines(0);
    EXPECT_FALSE(rig.hier.inL1(0, lineA));
    EXPECT_TRUE(rig.hier.inL2(0, lineA));
    EXPECT_TRUE(rig.hier.directory().holds(0, lineA));
    rig.hier.checkInvariants();
}

/** Geometry with a tiny L1 to force associativity evictions. */
HierarchyGeometry
tinyL1Geometry()
{
    HierarchyGeometry geo;
    geo.l1 = CacheGeometry{2 * 2 * lineSizeBytes, 2}; // 2 rows x 2 ways
    geo.l2 = CacheGeometry{8 * 4 * lineSizeBytes, 4};
    geo.l3 = CacheGeometry{64 * 8 * lineSizeBytes, 8};
    geo.l4 = CacheGeometry{256 * 8 * lineSizeBytes, 8};
    return geo;
}

/** Line falling in L1 row @p row (tiny geometry: 2 rows). */
Addr
tinyLine(unsigned row, unsigned k)
{
    return Addr(row + 2 * k) * lineSizeBytes;
}

TEST(Hierarchy, L1EvictionSetsLruExtensionForTxRead)
{
    Rig rig(tinyL1Geometry());
    // Fill row 0 with tx-read lines, then overflow it.
    rig.hier.fetch(0, tinyLine(0, 0), false);
    rig.hier.markTxRead(0, tinyLine(0, 0));
    rig.hier.fetch(0, tinyLine(0, 1), false);
    rig.hier.markTxRead(0, tinyLine(0, 1));
    EXPECT_FALSE(rig.hier.lruExtensionAny(0));
    rig.hier.fetch(0, tinyLine(0, 2), false);
    EXPECT_TRUE(rig.hier.lruExtensionAny(0));
    EXPECT_TRUE(rig.hier.lruExtensionHit(0, tinyLine(0, 0)));
    // Row 1 is unaffected.
    EXPECT_FALSE(rig.hier.lruExtensionHit(0, tinyLine(1, 0)));
    // The client saw the L1 eviction notification.
    EXPECT_FALSE(rig.clients[0]->evicted.empty());
}

TEST(Hierarchy, LruExtensionDisabledDeliversLruXi)
{
    Rig rig(tinyL1Geometry());
    rig.hier.setLruExtensionEnabled(false);
    rig.hier.fetch(0, tinyLine(0, 0), false);
    rig.hier.markTxRead(0, tinyLine(0, 0));
    rig.hier.fetch(0, tinyLine(0, 1), false);
    rig.hier.fetch(0, tinyLine(0, 2), false);
    // The displaced tx-read line arrives as a non-rejectable LRU XI.
    bool saw_lru = false;
    for (const auto &ctx : rig.clients[0]->received)
        if (ctx.kind == XiKind::Lru && ctx.txRead)
            saw_lru = true;
    EXPECT_TRUE(saw_lru);
}

TEST(Hierarchy, L2EvictionInvalidatesL1AndDirectory)
{
    Rig rig(tinyL1Geometry());
    // Overflow one L2 row (4 ways, tiny geometry has 8 rows).
    std::vector<Addr> lines;
    for (unsigned k = 0; k < 5; ++k)
        lines.push_back(Addr(8 * k) * lineSizeBytes); // L2 row 0
    for (const Addr line : lines)
        rig.hier.fetch(0, line, false);
    // The first line is the LRU way and must be gone everywhere.
    EXPECT_FALSE(rig.hier.inL2(0, lines[0]));
    EXPECT_FALSE(rig.hier.inL1(0, lines[0]));
    EXPECT_FALSE(rig.hier.directory().holds(0, lines[0]));
    // An LRU XI was delivered for it.
    bool saw_lru = false;
    for (const auto &ctx : rig.clients[0]->received)
        if (ctx.kind == XiKind::Lru && ctx.line == lines[0])
            saw_lru = true;
    EXPECT_TRUE(saw_lru);
    rig.hier.checkInvariants();
}

TEST(Hierarchy, RandomTrafficKeepsInvariants)
{
    Rig rig(tinyL1Geometry());
    Rng rng(1234);
    for (int i = 0; i < 5000; ++i) {
        const CpuId cpu = CpuId(rng.nextBounded(8));
        const Addr line = rng.nextBounded(64) * lineSizeBytes;
        const bool exclusive = rng.nextBool(0.3);
        // Stub clients never reject with rejectBudget == 0.
        rig.hier.fetch(cpu, line, exclusive);
        if (i % 500 == 0)
            rig.hier.checkInvariants();
    }
    rig.hier.checkInvariants();
}

TEST(Hierarchy, SingleWriterInvariantUnderRandomTraffic)
{
    Rig rig;
    Rng rng(99);
    for (int i = 0; i < 3000; ++i) {
        const CpuId cpu = CpuId(rng.nextBounded(8));
        const Addr line = rng.nextBounded(16) * lineSizeBytes;
        rig.hier.fetch(cpu, line, rng.nextBool(0.5));
        const auto &e = rig.hier.directory().lookup(line);
        if (e.owner != invalidCpu) {
            // Exclusive owner implies no other holder.
            for (unsigned other = 0; other < 8; ++other) {
                if (CpuId(other) != e.owner) {
                    EXPECT_FALSE(rig.hier.inL2(other, line));
                }
            }
        }
    }
}

TEST(Hierarchy, FetchCountsAppearInStats)
{
    Rig rig;
    rig.hier.fetch(0, lineA, false);
    rig.hier.fetch(0, lineA, false);
    EXPECT_EQ(rig.hier.stats().counter("fetch.total").value(), 2u);
    EXPECT_EQ(rig.hier.stats().counter("fetch.l1_hit").value(), 1u);
}

// ---------------------------------------------------------------
// L2 overflow (victim) buffer: sub-chip fast-path installs whose
// real insert would evict park in a bounded per-CPU buffer and
// complete serially at the barrier drain.
// ---------------------------------------------------------------

/** One-line L1, two-line single-set L2: every install evicts. */
HierarchyGeometry
overflowGeometry()
{
    HierarchyGeometry geo;
    geo.l1 = {lineSizeBytes, 1};
    geo.l2 = {2 * lineSizeBytes, 2};
    geo.l3 = {64 * 1024, 8};
    geo.l4 = {1024 * 1024, 8};
    return geo;
}

/** Rig on one 4-core chip split into 2 core groups of 2 CPUs. */
struct OverflowRig : Rig
{
    OverflowRig() : Rig(overflowGeometry(), Topology(4, 1, 1))
    {
        hier.setShardPartition(2, 4);
    }

    /** The i-th line homed to core group 0 ((line>>8) even). */
    static Addr
    groupZeroLine(unsigned i)
    {
        return Addr(0x10000) + Addr(i) * 2 * lineSizeBytes;
    }

    /**
     * Make @p line L3-resident on the chip without leaving it in
     * any L2: cpu1 (group 0) fetches it serially, then drops it.
     */
    void
    seedL3(Addr line)
    {
        hier.fetch(1, line, false);
        hier.flushCpuCaches(1);
    }
};

TEST(Hierarchy, OverflowBufferAbsorbsEvictingFastPathInstall)
{
    OverflowRig rig;
    const Addr a = OverflowRig::groupZeroLine(0);
    const Addr b = OverflowRig::groupZeroLine(1);
    const Addr c = OverflowRig::groupZeroLine(2);
    for (const Addr l : {a, b, c})
        rig.seedL3(l);
    // Fill cpu0's two-way L2 serially; the third line would evict.
    rig.hier.fetch(0, a, false);
    rig.hier.fetch(0, b, false);

    rig.hier.setConcurrentPhase(true);
    const auto res = rig.hier.fetch(0, c, false, true);
    rig.hier.setConcurrentPhase(false);
    EXPECT_FALSE(res.deferred)
        << "evicting install deferred despite buffer room";
    EXPECT_TRUE(res.shardLocal);
    EXPECT_TRUE(rig.hier.inL2Overflow(0, c));
    EXPECT_FALSE(rig.hier.inL2(0, c));
    EXPECT_TRUE(rig.hier.inL1(0, c));
    EXPECT_TRUE(rig.hier.directory().holds(0, c));
    EXPECT_EQ(rig.hier.l2OverflowUsed(0), 1u);
    rig.hier.checkInvariants();

    // A buffered line services repeat hits as an L2 hit: displace
    // it from the one-line L1 first, then re-fetch.
    rig.hier.fetch(0, a, false, true);
    const auto again = rig.hier.fetch(0, c, false, true);
    EXPECT_EQ(again.latency, LatencyModel{}.l2Hit);
    EXPECT_FALSE(again.deferred);

    // The barrier drain performs the real insert: the line moves
    // into the L2 array and the displaced LRU way (b: a was just
    // touched) leaves through the normal eviction protocol.
    rig.hier.drainL2Overflow();
    EXPECT_EQ(rig.hier.l2OverflowUsed(0), 0u);
    EXPECT_TRUE(rig.hier.inL2(0, c));
    EXPECT_FALSE(rig.hier.inL2(0, b));
    EXPECT_FALSE(rig.hier.directory().holds(0, b));
    bool saw_lru = false;
    for (const auto &ctx : rig.clients[0]->received)
        if (ctx.kind == XiKind::Lru && ctx.line == b)
            saw_lru = true;
    EXPECT_TRUE(saw_lru) << "drain eviction skipped the LRU XI";
    rig.hier.checkInvariants();
    EXPECT_EQ(rig.hier.stats()
                  .counter("l2.overflow_admit")
                  .value(),
              1u);
}

TEST(Hierarchy, OverflowBufferFullDefersFetch)
{
    OverflowRig rig;
    // Two lines fill the L2; capacity + 1 further lines probe the
    // buffer bound.
    std::vector<Addr> lines;
    for (unsigned i = 0;
         i < 2 + Hierarchy::l2OverflowCapacity + 1; ++i)
        lines.push_back(OverflowRig::groupZeroLine(i));
    for (const Addr l : lines)
        rig.seedL3(l);
    rig.hier.fetch(0, lines[0], false);
    rig.hier.fetch(0, lines[1], false);

    rig.hier.setConcurrentPhase(true);
    for (unsigned i = 2; i < 2 + Hierarchy::l2OverflowCapacity;
         ++i) {
        const auto res = rig.hier.fetch(0, lines[i], false, true);
        EXPECT_FALSE(res.deferred) << "slot " << i;
    }
    EXPECT_EQ(rig.hier.l2OverflowUsed(0),
              Hierarchy::l2OverflowCapacity);
    // Buffer full: the next evicting install must defer with no
    // state moved...
    const auto full =
        rig.hier.fetch(0, lines.back(), false, true);
    EXPECT_TRUE(full.deferred);
    EXPECT_FALSE(rig.hier.directory().holds(0, lines.back()));
    // ... while a line already buffered stays serviceable.
    const auto rehit =
        rig.hier.fetch(0, lines[2], false, true);
    EXPECT_FALSE(rehit.deferred);
    rig.hier.setConcurrentPhase(false);
    rig.hier.checkInvariants();

    rig.hier.drainL2Overflow();
    EXPECT_EQ(rig.hier.l2OverflowUsed(0), 0u);
    rig.hier.checkInvariants();
    // Drained in FIFO order into a two-way set: the last two
    // admitted lines survive in the array.
    EXPECT_TRUE(rig.hier.inL2(
        0, lines[2 + Hierarchy::l2OverflowCapacity - 1]));
}

TEST(Hierarchy, SameShardXiCancelsPendingOverflowInstall)
{
    OverflowRig rig;
    const Addr a = OverflowRig::groupZeroLine(0);
    const Addr b = OverflowRig::groupZeroLine(1);
    const Addr c = OverflowRig::groupZeroLine(2);
    for (const Addr l : {a, b, c})
        rig.seedL3(l);
    rig.hier.fetch(0, a, false);
    rig.hier.fetch(0, b, false);
    // cpu1 (same group) holds c so its exclusive upgrade stays
    // shard-local.
    rig.hier.fetch(1, c, false);

    rig.hier.setConcurrentPhase(true);
    const auto res = rig.hier.fetch(0, c, false, true);
    EXPECT_FALSE(res.deferred);
    EXPECT_TRUE(rig.hier.inL2Overflow(0, c));
    // cpu1 claims c exclusively: the ReadOnly XI to cpu0 must
    // cancel the pending overflow install, not just the L1 copy.
    const auto claim = rig.hier.fetch(1, c, true, true);
    rig.hier.setConcurrentPhase(false);
    EXPECT_FALSE(claim.deferred);
    EXPECT_FALSE(rig.hier.inL2Overflow(0, c));
    EXPECT_EQ(rig.hier.l2OverflowUsed(0), 0u);
    EXPECT_FALSE(rig.hier.directory().holds(0, c));
    EXPECT_EQ(rig.hier.directory().lookup(c).owner, CpuId(1));
    rig.hier.checkInvariants();
    // Nothing left to drain for cpu0.
    rig.hier.drainL2Overflow();
    EXPECT_FALSE(rig.hier.inL2(0, c));
    rig.hier.checkInvariants();
}

} // namespace
