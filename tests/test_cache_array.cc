/** @file Unit tests for the set-associative tag array. */

#include <gtest/gtest.h>

#include <vector>

#include "mem/cache_array.hh"

namespace {

using ztx::Addr;
using ztx::lineSizeBytes;
using ztx::mem::CacheArray;
using ztx::mem::CacheGeometry;
namespace line_flag = ztx::mem::line_flag;

/** 4 rows x 2 ways of 256-byte lines. */
CacheArray
tinyArray()
{
    return CacheArray(CacheGeometry{4 * 2 * lineSizeBytes, 2}, "tiny");
}

/** Line address landing in @p row with tag-part @p k. */
Addr
lineInRow(unsigned row, unsigned k)
{
    return Addr(row + 4 * k) * lineSizeBytes;
}

TEST(CacheArray, GeometryDerivesRows)
{
    CacheArray a(CacheGeometry{96 * 1024, 6}, "l1");
    EXPECT_EQ(a.rows(), 64u);
    EXPECT_EQ(a.assoc(), 6u);
}

TEST(CacheArray, InsertThenContains)
{
    auto a = tinyArray();
    EXPECT_FALSE(a.contains(0));
    const auto victim = a.insert(0);
    EXPECT_FALSE(victim.valid);
    EXPECT_TRUE(a.contains(0));
    EXPECT_EQ(a.validCount(), 1u);
}

TEST(CacheArray, EvictsTrueLruWithinSet)
{
    auto a = tinyArray();
    const Addr first = lineInRow(1, 0);
    const Addr second = lineInRow(1, 1);
    const Addr third = lineInRow(1, 2);
    a.insert(first);
    a.insert(second);
    a.touch(first); // make `second` the LRU way
    const auto victim = a.insert(third);
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.line, second);
    EXPECT_TRUE(a.contains(first));
    EXPECT_TRUE(a.contains(third));
    EXPECT_FALSE(a.contains(second));
}

TEST(CacheArray, DifferentRowsDoNotConflict)
{
    auto a = tinyArray();
    for (unsigned row = 0; row < 4; ++row) {
        a.insert(lineInRow(row, 0));
        a.insert(lineInRow(row, 1));
    }
    EXPECT_EQ(a.validCount(), 8u);
}

TEST(CacheArray, VictimCarriesFlags)
{
    auto a = tinyArray();
    a.insert(lineInRow(0, 0), line_flag::txRead);
    a.insert(lineInRow(0, 1));
    a.touch(lineInRow(0, 1));
    // Way with txRead is older; it gets evicted with its flags.
    const auto victim = a.insert(lineInRow(0, 2));
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.line, lineInRow(0, 0));
    EXPECT_EQ(victim.flags, line_flag::txRead);
}

TEST(CacheArray, FlagSetAndClear)
{
    auto a = tinyArray();
    a.insert(0);
    a.setFlags(0, line_flag::txRead);
    EXPECT_EQ(a.flagsOf(0), line_flag::txRead);
    a.setFlags(0, line_flag::txDirty);
    EXPECT_EQ(a.flagsOf(0), line_flag::txRead | line_flag::txDirty);
    a.clearFlags(0, line_flag::txRead);
    EXPECT_EQ(a.flagsOf(0), line_flag::txDirty);
}

TEST(CacheArray, ClearFlagsAll)
{
    auto a = tinyArray();
    a.insert(lineInRow(0, 0), line_flag::txRead);
    a.insert(lineInRow(2, 0), line_flag::txDirty);
    a.clearFlagsAll(line_flag::txRead | line_flag::txDirty);
    EXPECT_EQ(a.flagsOf(lineInRow(0, 0)), 0u);
    EXPECT_EQ(a.flagsOf(lineInRow(2, 0)), 0u);
}

TEST(CacheArray, InvalidateRemovesAndClearsFlags)
{
    auto a = tinyArray();
    a.insert(0, line_flag::txDirty);
    EXPECT_TRUE(a.invalidate(0));
    EXPECT_FALSE(a.contains(0));
    EXPECT_FALSE(a.invalidate(0));
    // Reinsert reuses the slot fresh.
    a.insert(0);
    EXPECT_EQ(a.flagsOf(0), 0u);
}

TEST(CacheArray, TouchMissReturnsFalse)
{
    auto a = tinyArray();
    EXPECT_FALSE(a.touch(0x1000));
}

TEST(CacheArray, ForEachValidVisitsAll)
{
    auto a = tinyArray();
    a.insert(lineInRow(0, 0));
    a.insert(lineInRow(3, 1));
    std::vector<Addr> seen;
    a.forEachValid([&](const CacheArray::Entry &e) {
        seen.push_back(e.line);
    });
    EXPECT_EQ(seen.size(), 2u);
}

TEST(CacheArray, RowMapping)
{
    auto a = tinyArray();
    EXPECT_EQ(a.row(0), 0u);
    EXPECT_EQ(a.row(lineSizeBytes), 1u);
    EXPECT_EQ(a.row(4 * lineSizeBytes), 0u);
}

} // namespace
