/** @file Unit tests for the set-associative tag array. */

#include <gtest/gtest.h>

#include <vector>

#include "mem/cache_array.hh"

namespace {

using ztx::Addr;
using ztx::lineSizeBytes;
using ztx::mem::CacheArray;
using ztx::mem::CacheGeometry;
namespace line_flag = ztx::mem::line_flag;

/** 4 rows x 2 ways of 256-byte lines. */
CacheArray
tinyArray()
{
    return CacheArray(CacheGeometry{4 * 2 * lineSizeBytes, 2}, "tiny");
}

/** Line address landing in @p row with tag-part @p k. */
Addr
lineInRow(unsigned row, unsigned k)
{
    return Addr(row + 4 * k) * lineSizeBytes;
}

TEST(CacheArray, GeometryDerivesRows)
{
    CacheArray a(CacheGeometry{96 * 1024, 6}, "l1");
    EXPECT_EQ(a.rows(), 64u);
    EXPECT_EQ(a.assoc(), 6u);
}

TEST(CacheArray, InsertThenContains)
{
    auto a = tinyArray();
    EXPECT_FALSE(a.contains(0));
    const auto victim = a.insert(0);
    EXPECT_FALSE(victim.valid);
    EXPECT_TRUE(a.contains(0));
    EXPECT_EQ(a.validCount(), 1u);
}

TEST(CacheArray, EvictsTrueLruWithinSet)
{
    auto a = tinyArray();
    const Addr first = lineInRow(1, 0);
    const Addr second = lineInRow(1, 1);
    const Addr third = lineInRow(1, 2);
    a.insert(first);
    a.insert(second);
    a.touch(first); // make `second` the LRU way
    const auto victim = a.insert(third);
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.line, second);
    EXPECT_TRUE(a.contains(first));
    EXPECT_TRUE(a.contains(third));
    EXPECT_FALSE(a.contains(second));
}

TEST(CacheArray, DifferentRowsDoNotConflict)
{
    auto a = tinyArray();
    for (unsigned row = 0; row < 4; ++row) {
        a.insert(lineInRow(row, 0));
        a.insert(lineInRow(row, 1));
    }
    EXPECT_EQ(a.validCount(), 8u);
}

TEST(CacheArray, VictimCarriesFlags)
{
    auto a = tinyArray();
    a.insert(lineInRow(0, 0), line_flag::txRead);
    a.insert(lineInRow(0, 1));
    a.touch(lineInRow(0, 1));
    // Way with txRead is older; it gets evicted with its flags.
    const auto victim = a.insert(lineInRow(0, 2));
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.line, lineInRow(0, 0));
    EXPECT_EQ(victim.flags, line_flag::txRead);
}

TEST(CacheArray, FlagSetAndClear)
{
    auto a = tinyArray();
    a.insert(0);
    a.setFlags(0, line_flag::txRead);
    EXPECT_EQ(a.flagsOf(0), line_flag::txRead);
    a.setFlags(0, line_flag::txDirty);
    EXPECT_EQ(a.flagsOf(0), line_flag::txRead | line_flag::txDirty);
    a.clearFlags(0, line_flag::txRead);
    EXPECT_EQ(a.flagsOf(0), line_flag::txDirty);
}

TEST(CacheArray, ClearFlagsAll)
{
    auto a = tinyArray();
    a.insert(lineInRow(0, 0), line_flag::txRead);
    a.insert(lineInRow(2, 0), line_flag::txDirty);
    a.clearFlagsAll(line_flag::txRead | line_flag::txDirty);
    EXPECT_EQ(a.flagsOf(lineInRow(0, 0)), 0u);
    EXPECT_EQ(a.flagsOf(lineInRow(2, 0)), 0u);
}

TEST(CacheArray, InvalidateRemovesAndClearsFlags)
{
    auto a = tinyArray();
    a.insert(0, line_flag::txDirty);
    EXPECT_TRUE(a.invalidate(0));
    EXPECT_FALSE(a.contains(0));
    EXPECT_FALSE(a.invalidate(0));
    // Reinsert reuses the slot fresh.
    a.insert(0);
    EXPECT_EQ(a.flagsOf(0), 0u);
}

TEST(CacheArray, TouchMissReturnsFalse)
{
    auto a = tinyArray();
    EXPECT_FALSE(a.touch(0x1000));
}

TEST(CacheArray, ForEachValidVisitsAll)
{
    auto a = tinyArray();
    a.insert(lineInRow(0, 0));
    a.insert(lineInRow(3, 1));
    std::vector<Addr> seen;
    a.forEachValid([&](const CacheArray::Entry &e) {
        seen.push_back(e.line);
    });
    EXPECT_EQ(seen.size(), 2u);
}

TEST(CacheArray, RowMapping)
{
    auto a = tinyArray();
    EXPECT_EQ(a.row(0), 0u);
    EXPECT_EQ(a.row(lineSizeBytes), 1u);
    EXPECT_EQ(a.row(4 * lineSizeBytes), 0u);
}

TEST(CacheArray, FlaggedCountTracksEveryTransition)
{
    auto a = tinyArray();
    EXPECT_EQ(a.flaggedCount(), 0u);
    a.insert(lineInRow(0, 0), line_flag::txRead);
    EXPECT_EQ(a.flaggedCount(), 1u);
    a.insert(lineInRow(1, 0));
    EXPECT_EQ(a.flaggedCount(), 1u);
    a.setFlags(lineInRow(1, 0), line_flag::txDirty);
    EXPECT_EQ(a.flaggedCount(), 2u);
    // Adding bits to an already-flagged entry is not a transition.
    a.setFlags(lineInRow(1, 0), line_flag::txRead);
    EXPECT_EQ(a.flaggedCount(), 2u);
    // Clearing only one of two bits leaves the entry flagged.
    a.clearFlags(lineInRow(1, 0), line_flag::txRead);
    EXPECT_EQ(a.flaggedCount(), 2u);
    a.clearFlags(lineInRow(1, 0), line_flag::txDirty);
    EXPECT_EQ(a.flaggedCount(), 1u);
    a.invalidate(lineInRow(0, 0));
    EXPECT_EQ(a.flaggedCount(), 0u);
    EXPECT_EQ(a.indexCheck(), "");
}

TEST(CacheArray, ClearFlagsAllShortCircuitStaysCorrect)
{
    auto a = tinyArray();
    a.insert(lineInRow(0, 0));
    a.insert(lineInRow(2, 0));
    // Nothing flagged: the short-circuit path must be a no-op.
    a.clearFlagsAll(line_flag::txRead | line_flag::txDirty);
    EXPECT_TRUE(a.contains(lineInRow(0, 0)));
    EXPECT_EQ(a.flaggedCount(), 0u);
    // Flag, clear all, then flag again: a stale count after the
    // short-circuit would make the second clear skip real flags.
    a.setFlags(lineInRow(0, 0), line_flag::txRead);
    a.clearFlagsAll(line_flag::txRead);
    EXPECT_EQ(a.flaggedCount(), 0u);
    a.setFlags(lineInRow(2, 0), line_flag::txDirty);
    EXPECT_EQ(a.flaggedCount(), 1u);
    a.clearFlagsAll(line_flag::txDirty);
    EXPECT_EQ(a.flagsOf(lineInRow(2, 0)), 0u);
    EXPECT_EQ(a.flaggedCount(), 0u);
    EXPECT_EQ(a.indexCheck(), "");
}

TEST(CacheArray, EvictedFlaggedVictimLeavesCount)
{
    auto a = tinyArray();
    a.insert(lineInRow(0, 0), line_flag::txDirty);
    a.insert(lineInRow(0, 1));
    a.touch(lineInRow(0, 1));
    const auto victim = a.insert(lineInRow(0, 2));
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.flags, line_flag::txDirty);
    EXPECT_EQ(a.flaggedCount(), 0u);
}

TEST(CacheArray, FindAndTouchUpdatesRecency)
{
    auto a = tinyArray();
    EXPECT_FALSE(a.findAndTouch(lineInRow(1, 0)));
    a.insert(lineInRow(1, 0));
    a.insert(lineInRow(1, 1));
    EXPECT_TRUE(a.findAndTouch(lineInRow(1, 0)));
    // lineInRow(1, 1) is now LRU and must be the victim.
    const auto victim = a.insert(lineInRow(1, 2));
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.line, lineInRow(1, 1));
}

TEST(CacheArray, ProbeForInsertReportsHit)
{
    auto a = tinyArray();
    a.insert(lineInRow(0, 0));
    const auto p = a.probeForInsert(lineInRow(0, 0));
    EXPECT_TRUE(p.hit);
    // touchAt on a hit probe is the fused equivalent of touch().
    a.insert(lineInRow(0, 1));
    a.touchAt(p);
    const auto victim = a.insert(lineInRow(0, 2));
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.line, lineInRow(0, 1));
}

TEST(CacheArray, ProbeForInsertMissThenInsertAt)
{
    auto a = tinyArray();
    const auto p_free = a.probeForInsert(lineInRow(2, 0));
    EXPECT_FALSE(p_free.hit);
    EXPECT_FALSE(p_free.wouldEvict);
    const auto v1 = a.insertAt(p_free, lineInRow(2, 0));
    EXPECT_FALSE(v1.valid);
    EXPECT_TRUE(a.contains(lineInRow(2, 0)));

    a.insert(lineInRow(2, 1), line_flag::txRead);
    const auto p_full = a.probeForInsert(lineInRow(2, 2));
    EXPECT_FALSE(p_full.hit);
    EXPECT_TRUE(p_full.wouldEvict);
    const auto v2 = a.insertAt(p_full, lineInRow(2, 2));
    ASSERT_TRUE(v2.valid);
    EXPECT_EQ(v2.line, lineInRow(2, 0)); // LRU way
    EXPECT_EQ(a.indexCheck(), "");
}

TEST(CacheArray, SqueezeEvictsWithPhysicalWaysFree)
{
    auto a = tinyArray();
    a.setEffectiveAssoc(1);
    a.insert(lineInRow(0, 0));
    const auto p = a.probeForInsert(lineInRow(0, 1));
    EXPECT_TRUE(p.wouldEvict);
    const auto victim = a.insertAt(p, lineInRow(0, 1));
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.line, lineInRow(0, 0));
    EXPECT_EQ(a.validCount(), 1u);
    EXPECT_EQ(a.indexCheck(), "");
}

} // namespace
