/**
 * @file
 * Read-mostly sharing: read-write lock versus transactional readers
 * (the figure 5(d) effect at example scale). Both versions read a
 * bank of shared variables; the RW lock's read-count update makes
 * the lock word ping-pong between CPUs, while transactional readers
 * share everything read-only and scale.
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "locks/lock_gen.hh"
#include "sim/machine.hh"

namespace {

using namespace ztx;

constexpr Addr bank = 0x10'0000;
constexpr Addr lockWord = 0x80'0000;
constexpr unsigned iterations = 300;

isa::Program
buildReader(bool transactional)
{
    isa::Assembler as;
    locks::LockRegs regs;
    as.la(9, 0, bank);
    as.la(10, 0, lockWord);
    as.lhi(8, iterations);
    as.label("loop");
    as.markb();
    if (transactional) {
        as.tbegin(0x00);
        as.jnz("retry");
        for (int v = 0; v < 4; ++v)
            as.lg(3, 9, v * 256);
        as.tend();
        as.j("done");
        as.label("retry");
        as.j("loop");
        as.label("done");
    } else {
        locks::RwLock::emitReadAcquire(as, 10, 0, regs, "rd");
        for (int v = 0; v < 4; ++v)
            as.lg(3, 9, v * 256);
        locks::RwLock::emitReadRelease(as, 10, 0, regs, "rr");
    }
    as.marke();
    as.brct(8, "loop");
    as.halt();
    return as.finish();
}

double
throughput(bool transactional, unsigned cpus)
{
    sim::MachineConfig config;
    config.activeCpus = cpus;
    sim::Machine machine(config);
    const isa::Program program = buildReader(transactional);
    machine.setProgramAll(&program);
    machine.run();
    double sum = 0;
    std::uint64_t count = 0;
    for (unsigned i = 0; i < cpus; ++i) {
        sum += machine.cpu(i).regionCycles().sum();
        count += machine.cpu(i).regionCycles().count();
    }
    return double(cpus) / (sum / double(count));
}

} // namespace

int
main()
{
    std::printf("%8s %14s %14s %8s\n", "CPUs", "RW-lock",
                "Transactions", "Ratio");
    for (const unsigned cpus : {2u, 4u, 8u, 16u, 24u}) {
        const double rw = throughput(false, cpus);
        const double tx = throughput(true, cpus);
        std::printf("%8u %14.5f %14.5f %8.2f\n", cpus, rw, tx,
                    tx / rw);
    }
    std::printf("\nTransactional readers never write the lock word, "
                "so the shared\nline stays read-only in every L1 and "
                "throughput keeps scaling.\n");
    return 0;
}
