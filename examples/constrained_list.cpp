/**
 * @file
 * Doubly-linked list insert/delete with constrained transactions —
 * the paper's motivating example for the constraint envelope
 * ("double-linked list-insert/delete operations can be performed").
 *
 * Four CPUs concurrently insert fresh nodes after the head sentinel
 * and delete the first node, each as a TBEGINC transaction with no
 * fallback path. The example verifies full structural integrity of
 * the circular list afterwards.
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "sim/machine.hh"

namespace {

using namespace ztx;

// Node layout (one per 256-byte line): prev @0, next @8, value @16.
constexpr Addr headSentinel = 0x10'0000;
constexpr Addr arenaBase = 0x100'0000;
constexpr Addr arenaStride = 0x10'0000;
constexpr unsigned iterations = 300;

isa::Program
buildProgram()
{
    isa::Assembler as;
    as.la(9, 0, headSentinel); // R9 = &head
    as.lhi(8, iterations);
    as.lhi(14, 0); // successful deletes
    as.label("loop");

    // --- Prepare a fresh node outside the transaction.
    as.la(4, 15, 0);   // R4 = node
    as.stg(9, 4, 0);   //   node->prev = head
    as.lr(12, 8);
    as.stg(12, 4, 16); //   node->value = iteration
    as.la(15, 15, 256);

    // --- Insert after head (constrained).
    as.tbeginc(0x00);
    as.lgfo(3, 9, 8); //   R3 = head->next (store intent)
    as.stg(3, 4, 8);  //   node->next = old first
    as.stg(4, 9, 8);  //   head->next = node
    as.stg(4, 3, 0);  //   old first->prev = node
    as.tend();

    // --- Delete the first node (constrained; list may be empty).
    as.tbeginc(0x00);
    as.lgfo(3, 9, 8);       //   R3 = first
    as.cgr(3, 9);
    as.jz("empty");         //   circular: first == head -> empty
    as.lg(5, 3, 8);         //   R5 = second
    as.stg(5, 9, 8);        //   head->next = second
    as.stg(9, 5, 0);        //   second->prev = head
    as.lg(6, 3, 16);        //   harvest the value
    as.label("empty");
    as.tend();
    as.cgr(3, 9);
    as.jz("skip");
    as.ahi(14, 1);
    as.label("skip");

    as.brct(8, "loop");
    as.halt();
    return as.finish();
}

} // namespace

int
main()
{
    sim::MachineConfig config;
    config.activeCpus = 4;
    sim::Machine machine(config);

    // Empty circular list: head.prev = head.next = head.
    machine.memory().write(headSentinel + 0, headSentinel, 8);
    machine.memory().write(headSentinel + 8, headSentinel, 8);

    const isa::Program program = buildProgram();
    machine.setProgramAll(&program);
    for (unsigned i = 0; i < machine.numCpus(); ++i)
        machine.cpu(i).setGr(15, arenaBase + i * arenaStride);
    machine.run();
    machine.drainAllStores();

    unsigned long long inserts = 0, deletes = 0, aborts = 0;
    for (unsigned i = 0; i < machine.numCpus(); ++i) {
        inserts += iterations;
        deletes += machine.cpu(i).gr(14);
        aborts +=
            machine.cpu(i).stats().counter("tx.aborts").value();
    }

    // Walk the list and verify prev/next integrity.
    unsigned length = 0;
    bool intact = true;
    Addr node = machine.memory().read(headSentinel + 8, 8);
    Addr prev = headSentinel;
    while (node != headSentinel && length <= inserts) {
        if (machine.memory().read(node + 0, 8) != prev)
            intact = false;
        prev = node;
        node = machine.memory().read(node + 8, 8);
        ++length;
    }
    if (machine.memory().read(headSentinel + 0, 8) != prev)
        intact = false;

    std::printf("inserts          : %llu\n", inserts);
    std::printf("deletes          : %llu\n", deletes);
    std::printf("final length     : %u (expected %llu)\n", length,
                inserts - deletes);
    std::printf("list integrity   : %s\n",
                intact ? "intact" : "BROKEN");
    std::printf("aborts (retried) : %llu\n", aborts);
    return (intact && length == inserts - deletes) ? 0 : 1;
}
