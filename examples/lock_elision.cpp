/**
 * @file
 * Lock elision (paper figure 1): a data structure guarded by a
 * traditional lock is accessed transactionally without taking the
 * lock; the lock is only acquired on the fallback path after
 * repeated transient aborts. Transactions test the lock so elided
 * and lock-based execution can coexist — here we force some
 * fallback activity with the Transaction Diagnostic Control and
 * show both paths updating the same structure correctly.
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "sim/machine.hh"
#include "workload/elision.hh"

int
main()
{
    using namespace ztx;

    constexpr Addr counter = 0x10'0000;
    constexpr Addr lock_word = 0x20'0000;
    constexpr unsigned iterations = 500;

    isa::Assembler as;
    as.la(9, 0, counter);
    as.la(10, 0, lock_word);
    as.lhi(8, iterations);
    as.label("loop");
    // The figure-1 structure: TBEGIN, test the lock, body, TEND;
    // retry with PPA backoff; fall back to the lock after 6 tries.
    workload::emitLockElision(
        as, 10, 0,
        [&] {
            as.lgfo(1, 9);
            as.ahi(1, 1);
            as.stg(1, 9);
        },
        "elide");
    as.brct(8, "loop");
    as.halt();
    const isa::Program program = as.finish();

    sim::MachineConfig config;
    config.activeCpus = 4;
    sim::Machine machine(config);
    machine.setProgramAll(&program);

    // Diagnostic random aborts on CPU 0 exercise the retry and
    // fallback paths (paper §II.E.3).
    machine.cpu(0).tdcControl().mode = debug::TdcMode::Random;
    machine.cpu(0).tdcControl().abortProbability = 0.05;

    machine.run();

    std::printf("final count : %llu (expected %u)\n",
                (unsigned long long)machine.peekMem(counter, 8),
                4 * iterations);
    unsigned long long commits = 0, aborts = 0;
    for (unsigned i = 0; i < machine.numCpus(); ++i) {
        commits +=
            machine.cpu(i).stats().counter("tx.commits").value();
        aborts +=
            machine.cpu(i).stats().counter("tx.aborts").value();
    }
    std::printf("elided commits : %llu\n", commits);
    std::printf("aborts         : %llu\n", aborts);
    std::printf("fallback ops   : %llu (total %u)\n",
                4ull * iterations - commits, 4 * iterations);
    return 0;
}
