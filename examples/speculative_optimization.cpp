/**
 * @file
 * Speculative program optimization via interruption filtering
 * (paper §II.C): instead of null-checking a pointer before every
 * dereference, the compiler dereferences it speculatively inside a
 * transaction with PIFC = 2. On the common path (pointer valid) the
 * check costs nothing; on the rare null path, the access exception
 * is filtered — no OS interruption — the transaction aborts, and
 * the fallback handles the rare case explicitly.
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "sim/machine.hh"

namespace {

using namespace ztx;

constexpr Addr cellBase = 0x10'0000; // array of pointers, 1/line
constexpr Addr valueBase = 0x20'0000; // pointees
constexpr Addr nullPage = 0x0;        // address 0: unmapped

isa::Program
buildProgram(unsigned cells)
{
    isa::Assembler as;
    as.la(9, 0, cellBase);
    as.lhi(8, std::int64_t(cells));
    as.lhi(7, 0);  // sum of values (valid pointers)
    as.lhi(6, 0);  // null-pointer count (fallback path)
    as.label("next");
    as.lg(4, 9);   // the pointer (may be null)
    as.lhi(0, 0);
    as.label("retry");
    // Speculative path: no null check before the dereference.
    as.tbegin(0x00, {.pifc = 2});
    as.jnz("handler");
    as.lg(1, 4);   // *ptr — faults when ptr is null
    as.tend();
    as.agr(7, 1);
    as.j("done");
    as.label("handler");
    // Rare path: do the explicit check the hot path skipped.
    as.cghi(4, 0);
    as.jz("isnull");
    as.ahi(0, 1);            // transient (e.g. conflict): retry
    as.cijnl(0, 4, "isnull");
    as.j("retry");
    as.label("isnull");
    as.ahi(6, 1);
    as.label("done");
    as.la(9, 9, 256);
    as.brct(8, "next");
    as.halt();
    return as.finish();
}

} // namespace

int
main()
{
    constexpr unsigned cells = 64;

    sim::MachineConfig config;
    config.activeCpus = 1;
    sim::Machine machine(config);

    // Every 8th pointer is null; the rest point at a value cell
    // holding its index. Address 0's page is unmapped, so a null
    // dereference raises an access exception.
    machine.pageTable().markAbsent(nullPage);
    unsigned expected_nulls = 0;
    std::uint64_t expected_sum = 0;
    for (unsigned i = 0; i < cells; ++i) {
        const Addr cell = cellBase + Addr(i) * 256;
        if (i % 8 == 3) {
            machine.memory().write(cell, 0, 8);
            ++expected_nulls;
        } else {
            const Addr value = valueBase + Addr(i) * 256;
            machine.memory().write(cell, value, 8);
            machine.memory().write(value, i, 8);
            expected_sum += i;
        }
    }

    const isa::Program program = buildProgram(cells);
    machine.setProgram(0, &program);
    machine.run();

    std::printf("sum of values      : %llu (expected %llu)\n",
                (unsigned long long)machine.cpu(0).gr(7),
                (unsigned long long)expected_sum);
    std::printf("nulls hit          : %llu (expected %u)\n",
                (unsigned long long)machine.cpu(0).gr(6),
                expected_nulls);
    std::printf("filtered aborts    : %llu (no OS involvement)\n",
                (unsigned long long)machine.cpu(0)
                    .stats()
                    .counter("tx.abort.filtered-program-interrupt")
                    .value());
    std::printf("OS page faults     : %zu (must be 0 — every null "
                "deref was filtered)\n",
                machine.os().countOf(tx::InterruptCode::PageFault));
    return 0;
}
