/**
 * @file
 * zTX quickstart: build a machine, assemble a transactional
 * program, run it, and inspect the results.
 *
 * Two CPUs concurrently increment a shared counter inside
 * constrained transactions (TBEGINC) — the zEC12 feature that
 * guarantees eventual success with no fallback path — and the final
 * count is exact.
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "sim/machine.hh"

int
main()
{
    using namespace ztx;

    // A machine with 2 CPUs of the default zEC12-like topology.
    sim::MachineConfig config;
    config.activeCpus = 2;
    sim::Machine machine(config);

    constexpr Addr counter = 0x10'0000;
    constexpr unsigned iterations = 1000;

    // Assemble:  for (i = 0; i < iterations; ++i)
    //                atomically { *counter += 1; }
    isa::Assembler as;
    as.la(9, 0, counter);        // R9 = &counter
    as.lhi(8, iterations);       // R8 = loop count
    as.label("loop");
    as.tbeginc(0x00);            // begin constrained transaction
    as.lgfo(1, 9);               //   R1 = *counter (store intent)
    as.ahi(1, 1);                //   R1 += 1
    as.stg(1, 9);                //   *counter = R1
    as.tend();                   // commit
    as.brct(8, "loop");
    as.halt();
    const isa::Program program = as.finish();

    machine.setProgramAll(&program);
    const Cycles elapsed = machine.run();

    std::printf("final count : %llu (expected %u)\n",
                (unsigned long long)machine.peekMem(counter, 8),
                2 * iterations);
    std::printf("cycles      : %llu\n",
                (unsigned long long)elapsed);
    for (unsigned i = 0; i < machine.numCpus(); ++i) {
        auto &cpu = machine.cpu(i);
        std::printf("cpu%u        : %llu commits, %llu aborts\n", i,
                    (unsigned long long)cpu.stats()
                        .counter("tx.commits")
                        .value(),
                    (unsigned long long)cpu.stats()
                        .counter("tx.aborts")
                        .value());
    }
    return 0;
}
