/**
 * @file
 * The TX debug architecture in action (paper §II.E):
 *
 *  1. Transaction Diagnostic Block: a transaction aborts via TABORT
 *     with a diagnostic code and the TDB captures the abort code,
 *     the aborted instruction address, and the GRs at abort.
 *  2. NTSTG breadcrumb debugging: non-transactional stores survive
 *     the rollback, revealing which path the transaction took.
 *  3. Transaction Diagnostic Control: OS-forced random aborts
 *     stress the retry path of otherwise conflict-free code.
 */

#include <cstdio>

#include "isa/assembler.hh"
#include "sim/machine.hh"
#include "tx/tdb.hh"

int
main()
{
    using namespace ztx;

    constexpr Addr data = 0x10'0000;
    constexpr Addr tdbAddr = 0x20'0000;
    constexpr Addr crumbs = 0x30'0000;

    // --- Part 1 + 2: abort with TDB and NTSTG breadcrumbs.
    isa::Assembler as;
    as.la(8, 0, tdbAddr);
    as.la(9, 0, data);
    as.la(10, 0, crumbs);
    as.lhi(7, 1111); // pre-transaction value of GR7
    as.tbegin(0xFF, {.tdbBase = 8});
    as.jnz("aborted");
    as.lhi(7, 2222);    // in-transaction value: visible in the TDB
    as.lhi(1, 41);
    as.stg(1, 9);       // transactional store: rolled back
    as.ntstg(7, 10, 0); // breadcrumb: survives the abort
    as.ntstg(1, 10, 8); // second breadcrumb
    as.tabort(0, 4242); // even code -> transient (CC2)
    as.label("aborted");
    as.halt();
    const isa::Program program = as.finish();

    sim::MachineConfig config;
    config.activeCpus = 1;
    sim::Machine machine(config);
    machine.setProgram(0, &program);
    machine.run();

    const tx::Tdb tdb = tx::Tdb::load(machine.memory(), tdbAddr);
    std::printf("== Transaction Diagnostic Block ==\n");
    std::printf("abort code        : %llu (TABORT operand)\n",
                (unsigned long long)tdb.abortCode);
    std::printf("aborted instr addr: 0x%llx\n",
                (unsigned long long)tdb.abortedIa);
    std::printf("GR7 at abort      : %llu (in-TX value)\n",
                (unsigned long long)tdb.grs[7]);
    std::printf("GR7 after restore : %llu (pre-TX value)\n",
                (unsigned long long)machine.cpu(0).gr(7));
    std::printf("condition code    : %u (2 = transient)\n",
                machine.cpu(0).psw().cc);

    std::printf("\n== NTSTG breadcrumbs (survive the abort) ==\n");
    std::printf("crumb[0] = %llu, crumb[1] = %llu\n",
                (unsigned long long)machine.peekMem(crumbs, 8),
                (unsigned long long)machine.peekMem(crumbs + 8, 8));
    std::printf("rolled-back store : %llu (0 = rolled back)\n",
                (unsigned long long)machine.peekMem(data, 8));

    // --- Part 3: TDC-forced aborts on a retry loop.
    isa::Assembler as2;
    as2.la(9, 0, data);
    as2.lhi(8, 100);
    as2.label("loop");
    as2.label("retry");
    as2.tbegin(0x00);
    as2.jnz("retry"); // transient aborts: retry immediately
    as2.lgfo(1, 9);
    as2.ahi(1, 1);
    as2.stg(1, 9);
    as2.tend();
    as2.brct(8, "loop");
    as2.halt();
    const isa::Program p2 = as2.finish();

    sim::Machine m2(config);
    m2.cpu(0).tdcControl().mode = debug::TdcMode::Random;
    m2.cpu(0).tdcControl().abortProbability = 0.10;
    m2.setProgram(0, &p2);
    m2.run();
    std::printf("\n== Transaction Diagnostic Control ==\n");
    std::printf("count    : %llu of 100\n",
                (unsigned long long)m2.peekMem(data, 8));
    std::printf("commits  : %llu\n",
                (unsigned long long)m2.cpu(0)
                    .stats()
                    .counter("tx.commits")
                    .value());
    std::printf("forced aborts : %llu\n",
                (unsigned long long)m2.cpu(0)
                    .stats()
                    .counter("tx.abort.diagnostic")
                    .value());
    return 0;
}
