/**
 * @file
 * Figure 5(c): updating 4 variables from a pool of 10 (extreme
 * contention). Expected shape: transactions are competitive at low
 * CPU counts, but beyond that the coarse lock wins — a transaction
 * must own all 4 lines to commit and keeps aborting while it waits,
 * wasting transfers, whereas a lock holder is guaranteed to finish.
 * Under extreme contention constrained transactions (millicode
 * escalation, no fallback) hold up slightly better than TBEGIN.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "json_report.hh"
#include "workload/report.hh"

int
main(int argc, char **argv)
{
    using namespace ztx;
    using namespace ztx::workload;

    bench::JsonReport report("fig5c", argc, argv);
    const double ref = bench::normalizationReference();
    report.setMachineConfig(bench::benchMachine());
    report.meta()["iterations"] = bench::benchIterations();
    report.meta()["normalization_reference"] = ref;

    std::printf("# Figure 5(c): TX vs locks, four variables, "
                "poolsize 10\n");
    std::printf("# normalized throughput (100 = 2 CPUs, 1 var, "
                "pool 1, coarse lock)\n");

    SeriesTable table("CPUs", {"Lock", "TBEGINC", "TBEGIN"});
    for (const unsigned cpus : bench::cpuPoints()) {
        std::vector<double> row;
        for (const SyncMethod method :
             {SyncMethod::CoarseLock, SyncMethod::TBeginc,
              SyncMethod::TBegin}) {
            UpdateBenchConfig cfg;
            cfg.cpus = cpus;
            cfg.poolSize = 10;
            cfg.varsPerOp = 4;
            cfg.method = method;
            cfg.iterations = bench::benchIterations();
            cfg.machine = bench::benchMachine();
            const auto res = runUpdateBench(cfg);
            row.push_back(100.0 * res.throughput / ref);
            report.addSimWork(res.elapsedCycles, res.instructions);
        report.addSched(res.sched);
            if (report.enabled()) {
                Json rec = bench::resultJson(res);
                rec["cpus"] = cpus;
                rec["pool"] = 10u;
                rec["vars_per_op"] = 4u;
                rec["variant"] = syncMethodName(method);
                rec["method"] = syncMethodName(method);
                rec["normalized_throughput"] =
                    100.0 * res.throughput / ref;
                rec["xi_rejects"] = res.xiRejects;
                report.addRecord(std::move(rec));
            }
        }
        table.addRow(cpus, row);
    }
    table.print(std::cout);
    return report.write() ? 0 : 1;
}
