/**
 * @file
 * Figure 5(a): transactions versus a coarse lock, operations
 * updating 4 random variables, pool sizes 1k and 10k. Expected
 * shape (paper §IV): the coarse lock is poor and roughly flat with
 * steps at chip/MCM boundaries; transactions scale nearly linearly;
 * TBEGIN on the 1k pool flattens/drops at high CPU counts from the
 * rising conflict rate but stays above the lock.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "workload/report.hh"

int
main()
{
    using namespace ztx;
    using namespace ztx::workload;

    const double ref = bench::normalizationReference();
    std::printf("# Figure 5(a): TX vs locks, four variables, "
                "poolsizes 1k/10k\n");
    std::printf("# normalized throughput (100 = 2 CPUs, 1 var, "
                "pool 1, coarse lock)\n");

    SeriesTable table("CPUs",
                      {"Lock-1k", "TBEGINC-1k", "TBEGIN-1k",
                       "Lock-10k", "TBEGINC-10k", "TBEGIN-10k"});
    for (const unsigned cpus : bench::cpuPoints()) {
        std::vector<double> row;
        for (const unsigned pool : {1000u, 10000u}) {
            for (const SyncMethod method :
                 {SyncMethod::CoarseLock, SyncMethod::TBeginc,
                  SyncMethod::TBegin}) {
                UpdateBenchConfig cfg;
                cfg.cpus = cpus;
                cfg.poolSize = pool;
                cfg.varsPerOp = 4;
                cfg.method = method;
                cfg.iterations = bench::benchIterations();
                cfg.machine = bench::benchMachine();
                const auto res = runUpdateBench(cfg);
                row.push_back(100.0 * res.throughput / ref);
            }
        }
        table.addRow(cpus, row);
    }
    table.print(std::cout);
    return 0;
}
