/**
 * @file
 * Figure 5(a): transactions versus a coarse lock, operations
 * updating 4 random variables, pool sizes 1k and 10k. Expected
 * shape (paper §IV): the coarse lock is poor and roughly flat with
 * steps at chip/MCM boundaries; transactions scale nearly linearly;
 * TBEGIN on the 1k pool flattens/drops at high CPU counts from the
 * rising conflict rate but stays above the lock.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "json_report.hh"
#include "workload/report.hh"

int
main(int argc, char **argv)
{
    using namespace ztx;
    using namespace ztx::workload;

    bench::JsonReport report("fig5a", argc, argv);
    const double ref = bench::normalizationReference();
    report.setMachineConfig(bench::benchMachine());
    report.meta()["iterations"] = bench::benchIterations();
    report.meta()["normalization_reference"] = ref;

    std::printf("# Figure 5(a): TX vs locks, four variables, "
                "poolsizes 1k/10k\n");
    std::printf("# normalized throughput (100 = 2 CPUs, 1 var, "
                "pool 1, coarse lock)\n");

    SeriesTable table("CPUs",
                      {"Lock-1k", "TBEGINC-1k", "TBEGIN-1k",
                       "Lock-10k", "TBEGINC-10k", "TBEGIN-10k"});
    for (const unsigned cpus : bench::cpuPoints()) {
        std::vector<double> row;
        for (const unsigned pool : {1000u, 10000u}) {
            for (const SyncMethod method :
                 {SyncMethod::CoarseLock, SyncMethod::TBeginc,
                  SyncMethod::TBegin}) {
                UpdateBenchConfig cfg;
                cfg.cpus = cpus;
                cfg.poolSize = pool;
                cfg.varsPerOp = 4;
                cfg.method = method;
                cfg.iterations = bench::benchIterations();
                cfg.machine = bench::benchMachine();
                const auto res = runUpdateBench(cfg);
                row.push_back(100.0 * res.throughput / ref);
                report.addSimWork(res.elapsedCycles,
                                  res.instructions);
                report.addSched(res.sched);
                if (report.enabled()) {
                    Json rec = bench::resultJson(res);
                    rec["cpus"] = cpus;
                    rec["pool"] = pool;
                    rec["vars_per_op"] = 4u;
                    rec["variant"] =
                        std::string(syncMethodName(method)) + "-" +
                        std::to_string(pool);
                    rec["method"] = syncMethodName(method);
                    rec["normalized_throughput"] =
                        100.0 * res.throughput / ref;
                    rec["xi_rejects"] = res.xiRejects;
                    report.addRecord(std::move(rec));
                }
            }
        }
        table.addRow(cpus, row);
    }
    table.print(std::cout);
    return report.write() ? 0 : 1;
}
