/**
 * @file
 * google-benchmark micro-benchmarks of the simulator's hot
 * components (host-side costs): cache-array operations, the
 * coherence directory, the gathering store cache, the PRNG, and a
 * whole simulated transaction round trip.
 */

#include <cstring>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "json_report.hh"
#include "core/store_cache.hh"
#include "isa/assembler.hh"
#include "mem/cache_array.hh"
#include "mem/directory.hh"
#include "mem/main_memory.hh"
#include "sim/machine.hh"

namespace {

using namespace ztx;

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_CacheArrayLookupHit(benchmark::State &state)
{
    mem::CacheArray l1(mem::CacheGeometry{96 * 1024, 6}, "l1");
    for (unsigned i = 0; i < 64; ++i)
        l1.insert(Addr(i) * lineSizeBytes);
    Addr line = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(l1.contains(line));
        line = (line + lineSizeBytes) % (64 * lineSizeBytes);
    }
}
BENCHMARK(BM_CacheArrayLookupHit);

void
BM_CacheArrayInsertEvict(benchmark::State &state)
{
    mem::CacheArray l1(mem::CacheGeometry{96 * 1024, 6}, "l1");
    Addr line = 0;
    for (auto _ : state) {
        if (!l1.contains(line))
            l1.insert(line);
        line += 64 * lineSizeBytes; // same row, forces eviction
    }
}
BENCHMARK(BM_CacheArrayInsertEvict);

void
BM_DirectoryExclusiveHandoff(benchmark::State &state)
{
    mem::CoherenceDirectory dir;
    CpuId cpu = 0;
    for (auto _ : state) {
        dir.setExclusive(0x1000, cpu);
        cpu = (cpu + 1) % 16;
    }
}
BENCHMARK(BM_DirectoryExclusiveHandoff);

void
BM_StoreCacheGather(benchmark::State &state)
{
    mem::MainMemory memory;
    core::GatheringStoreCache sc(64, "b");
    const std::uint8_t bytes[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    Addr addr = 0;
    for (auto _ : state) {
        sc.store(addr, bytes, 8, false, false, memory);
        addr = (addr + 8) % 128;
    }
}
BENCHMARK(BM_StoreCacheGather);

void
BM_SimulatedTransactionRoundTrip(benchmark::State &state)
{
    sim::MachineConfig cfg;
    cfg.topology = mem::Topology(1, 1, 1);
    cfg.activeCpus = 1;
    sim::Machine machine(cfg);

    isa::Assembler as;
    as.la(9, 0, 0x100000);
    as.tbegin(0x00);
    as.jnz("out");
    as.lgfo(1, 9);
    as.ahi(1, 1);
    as.stg(1, 9);
    as.tend();
    as.label("out");
    as.halt();
    const isa::Program p = as.finish();

    for (auto _ : state) {
        machine.setProgram(0, &p);
        machine.run();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedTransactionRoundTrip);

} // namespace

/**
 * Like BENCHMARK_MAIN(), but honours the zTX JSON conventions:
 * `--json <path>` / `ZTX_BENCH_JSON=<dir>` are translated into
 * google-benchmark's own --benchmark_out/--benchmark_out_format
 * flags, so BENCH_components.json lands next to the other reports
 * (in google-benchmark's schema rather than ztx.bench).
 */
int
main(int argc, char **argv)
{
    const std::string json_path =
        ztx::bench::jsonReportPath("components", argc, argv);

    std::vector<std::string> args;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            ++i; // skip the path operand too
            continue;
        }
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            continue;
        args.emplace_back(argv[i]);
    }
    if (!json_path.empty()) {
        args.push_back("--benchmark_out=" + json_path);
        args.push_back("--benchmark_out_format=json");
    }
    std::vector<char *> argp;
    argp.reserve(args.size());
    for (std::string &arg : args)
        argp.push_back(arg.data());
    int bench_argc = int(argp.size());

    benchmark::Initialize(&bench_argc, argp.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               argp.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
