/**
 * @file
 * google-benchmark micro-benchmarks of the simulator's hot
 * components (host-side costs): cache-array operations, the
 * coherence directory, the gathering store cache, the PRNG, and a
 * whole simulated transaction round trip.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hh"
#include "core/store_cache.hh"
#include "isa/assembler.hh"
#include "mem/cache_array.hh"
#include "mem/directory.hh"
#include "mem/main_memory.hh"
#include "sim/machine.hh"

namespace {

using namespace ztx;

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_CacheArrayLookupHit(benchmark::State &state)
{
    mem::CacheArray l1(mem::CacheGeometry{96 * 1024, 6}, "l1");
    for (unsigned i = 0; i < 64; ++i)
        l1.insert(Addr(i) * lineSizeBytes);
    Addr line = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(l1.contains(line));
        line = (line + lineSizeBytes) % (64 * lineSizeBytes);
    }
}
BENCHMARK(BM_CacheArrayLookupHit);

void
BM_CacheArrayInsertEvict(benchmark::State &state)
{
    mem::CacheArray l1(mem::CacheGeometry{96 * 1024, 6}, "l1");
    Addr line = 0;
    for (auto _ : state) {
        if (!l1.contains(line))
            l1.insert(line);
        line += 64 * lineSizeBytes; // same row, forces eviction
    }
}
BENCHMARK(BM_CacheArrayInsertEvict);

void
BM_DirectoryExclusiveHandoff(benchmark::State &state)
{
    mem::CoherenceDirectory dir;
    CpuId cpu = 0;
    for (auto _ : state) {
        dir.setExclusive(0x1000, cpu);
        cpu = (cpu + 1) % 16;
    }
}
BENCHMARK(BM_DirectoryExclusiveHandoff);

void
BM_StoreCacheGather(benchmark::State &state)
{
    mem::MainMemory memory;
    core::GatheringStoreCache sc(64, "b");
    const std::uint8_t bytes[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    Addr addr = 0;
    for (auto _ : state) {
        sc.store(addr, bytes, 8, false, false, memory);
        addr = (addr + 8) % 128;
    }
}
BENCHMARK(BM_StoreCacheGather);

void
BM_SimulatedTransactionRoundTrip(benchmark::State &state)
{
    sim::MachineConfig cfg;
    cfg.topology = mem::Topology(1, 1, 1);
    cfg.activeCpus = 1;
    sim::Machine machine(cfg);

    isa::Assembler as;
    as.la(9, 0, 0x100000);
    as.tbegin(0x00);
    as.jnz("out");
    as.lgfo(1, 9);
    as.ahi(1, 1);
    as.stg(1, 9);
    as.tend();
    as.label("out");
    as.halt();
    const isa::Program p = as.finish();

    for (auto _ : state) {
        machine.setProgram(0, &p);
        machine.run();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatedTransactionRoundTrip);

} // namespace

BENCHMARK_MAIN();
