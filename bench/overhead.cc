/**
 * @file
 * The in-text §IV claims:
 *  - single CPU, L1-resident data: transactions outperform
 *    lock/unlock by about 30% (shorter path length);
 *  - constrained and non-constrained transactions perform
 *    comparably (paper: 0.4% apart; see EXPERIMENTS.md on the
 *    scalar-model deviation);
 *  - at 100 CPUs on the 10k pool, TBEGINC reaches 99.8% of the
 *    throughput without any locking scheme.
 */

#include <cstdio>

#include "bench_util.hh"
#include "json_report.hh"

int
main(int argc, char **argv)
{
    using namespace ztx;
    using namespace ztx::workload;

    bench::JsonReport report("overhead", argc, argv);
    const unsigned iters = 4 * bench::benchIterations();
    report.setMachineConfig(bench::benchMachine());
    report.meta()["iterations"] = iters;

    const auto run = [&](const char *label, SyncMethod method,
                         unsigned cpus, unsigned pool,
                         unsigned vars) {
        UpdateBenchConfig cfg;
        cfg.method = method;
        cfg.cpus = cpus;
        cfg.poolSize = pool;
        cfg.varsPerOp = vars;
        cfg.iterations = iters;
        cfg.machine = bench::benchMachine();
        const auto res = runUpdateBench(cfg);
        report.addSimWork(res.elapsedCycles, res.instructions);
        report.addSched(res.sched);
        if (report.enabled()) {
            Json rec = bench::resultJson(res);
            rec["variant"] = label;
            rec["method"] = syncMethodName(method);
            rec["cpus"] = cpus;
            rec["pool"] = pool;
            rec["vars_per_op"] = vars;
            report.addRecord(std::move(rec));
        }
        return res;
    };

    std::printf("# Single-CPU overhead (pool 1, 1 variable, "
                "L1-resident)\n");
    const auto lock = run("lock-1cpu", SyncMethod::CoarseLock,
                          1, 1, 1);
    const auto tb = run("tbegin-1cpu", SyncMethod::TBegin, 1, 1, 1);
    const auto tbc = run("tbeginc-1cpu", SyncMethod::TBeginc,
                         1, 1, 1);
    std::printf("lock/unlock   : %7.2f cycles/op\n",
                lock.meanRegionCycles);
    std::printf("TBEGIN..TEND  : %7.2f cycles/op\n",
                tb.meanRegionCycles);
    std::printf("TBEGINC..TEND : %7.2f cycles/op\n",
                tbc.meanRegionCycles);
    std::printf("TX advantage over lock    : %+.1f%%  "
                "(paper: ~+30%%)\n",
                100.0 * (tb.throughput / lock.throughput - 1.0));
    std::printf("constrained vs non-constr : %+.1f%%  "
                "(paper: ~0.4%%; see EXPERIMENTS.md)\n",
                100.0 * (tbc.throughput / tb.throughput - 1.0));

    std::printf("\n# TBEGINC vs no locking, 100 CPUs, 4 variables, "
                "pool 10k\n");
    const auto none = run("none-100cpu", SyncMethod::None,
                          100, 10000, 4);
    const auto tbc100 = run("tbeginc-100cpu", SyncMethod::TBeginc,
                            100, 10000, 4);
    std::printf("no locking : %9.2f cycles/op\n",
                none.meanRegionCycles);
    std::printf("TBEGINC    : %9.2f cycles/op\n",
                tbc100.meanRegionCycles);
    std::printf("TBEGINC at %.1f%% of unsynchronized throughput "
                "(paper: 99.8%%)\n",
                100.0 * tbc100.throughput / none.throughput);
    return report.write() ? 0 : 1;
}
