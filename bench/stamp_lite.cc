/**
 * @file
 * STAMP-flavoured application profiles ([23]: the IBM XL C/C++ team
 * measured transactional speedups of 1.2x-7x over pthread locks on
 * a STAMP subset, depending on the application).
 *
 * zTX maps three representative profiles onto the update workload:
 *   - "genome-like":   large pool, small transactions, read-mostly
 *     contention -> transactions shine (high end of the range);
 *   - "vacation-like": medium pool, 4-location transactions ->
 *     solid but smaller wins;
 *   - "intruder-like": small pool, high contention -> transactions
 *     barely ahead (low end of the range).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "json_report.hh"
#include "workload/report.hh"

namespace {

using namespace ztx;
using namespace ztx::workload;

struct Profile
{
    const char *name;
    unsigned poolSize;
    unsigned varsPerOp;
    unsigned cpus;
};

double
runProfile(bench::JsonReport &report, const Profile &profile,
           SyncMethod method)
{
    UpdateBenchConfig cfg;
    cfg.method = method;
    cfg.cpus = profile.cpus;
    cfg.poolSize = profile.poolSize;
    cfg.varsPerOp = profile.varsPerOp;
    cfg.iterations = ztx::bench::benchIterations();
    cfg.machine = ztx::bench::benchMachine();
    const auto res = runUpdateBench(cfg);
    report.addSimWork(res.elapsedCycles, res.instructions);
        report.addSched(res.sched);
    if (report.enabled()) {
        Json rec = bench::resultJson(res);
        rec["profile"] = profile.name;
        rec["cpus"] = profile.cpus;
        rec["pool"] = profile.poolSize;
        rec["vars_per_op"] = profile.varsPerOp;
        rec["variant"] = syncMethodName(method);
        rec["method"] = syncMethodName(method);
        report.addRecord(std::move(rec));
    }
    return res.throughput;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReport report("stamp_lite", argc, argv);
    report.setMachineConfig(ztx::bench::benchMachine());
    report.meta()["iterations"] = ztx::bench::benchIterations();

    std::printf("# STAMP-like profiles: transactional speedup over "
                "a pthread-style lock\n");
    const Profile profiles[] = {
        {"genome-like", 1024, 4, 8},
        {"vacation-like", 256, 4, 6},
        {"intruder-like", 32, 4, 4},
    };
    std::printf("%16s %12s %12s %10s\n", "profile", "lock",
                "tbegin", "speedup");
    for (const Profile &profile : profiles) {
        const double lock =
            runProfile(report, profile, SyncMethod::CoarseLock);
        const double tx =
            runProfile(report, profile, SyncMethod::TBegin);
        std::printf("%16s %12.5f %12.5f %9.2fx\n", profile.name,
                    lock, tx, tx / lock);
    }
    std::printf("# [23] reports factors between 1.2 and 7 depending "
                "on the application\n");
    return report.write() ? 0 : 1;
}
