/**
 * @file
 * Figure 5(f): statistical abort rate from associativity conflicts
 * for transactions reading n random congruence classes. Without the
 * LRU extension the read footprint is bounded by the L1 (64 rows x
 * 6 ways); with it, by the L2 (512 rows x 8 ways), which pushes the
 * abort wall out by nearly an order of magnitude.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "bench_util.hh"
#include "json_report.hh"
#include "workload/footprint.hh"
#include "workload/report.hh"

namespace {

/** One Monte-Carlo point as a JSON record. */
ztx::Json
footprintRecord(unsigned lines, bool lru_ext,
                const ztx::workload::FootprintResult &res)
{
    ztx::Json rec = ztx::Json::object();
    rec["lines"] = lines;
    rec["variant"] = lru_ext ? "lru-ext" : "no-lru-ext";
    rec["abort_rate"] = res.abortRate;
    rec["trials"] = res.trials;
    rec["aborted_trials"] = res.abortedTrials;
    rec["aborts_by_reason"] =
        ztx::bench::abortBreakdownJson(res.abortsByReason);
    rec["sim_cycles"] = std::uint64_t(res.simCycles);
    rec["instructions"] = res.instructions;
    return rec;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ztx;
    using namespace ztx::workload;

    bench::JsonReport report("fig5f", argc, argv);

    std::printf("# Figure 5(f): effect of LRU extension on the "
                "fetch footprint\n");
    std::printf("# statistical abort rate (%%), n random lines per "
                "transaction\n");

    const bool fast = std::getenv("ZTX_BENCH_FAST") != nullptr;
    const unsigned trials = fast ? 40 : 120;
    report.meta()["trials"] = trials;

    SeriesTable table("Lines", {"NoLruExt-64x6", "LruExt-512x8"});
    for (unsigned lines = 100; lines <= 800; lines += 50) {
        FootprintConfig without;
        without.lruExtension = false;
        without.trials = trials;
        FootprintConfig with;
        with.lruExtension = true;
        with.trials = trials;
        const auto r_without = measureFootprint(lines, without);
        const auto r_with = measureFootprint(lines, with);
        table.addRow(lines, {100.0 * r_without.abortRate,
                             100.0 * r_with.abortRate});
        report.addSimWork(r_without.simCycles,
                          r_without.instructions);
        report.addSimWork(r_with.simCycles, r_with.instructions);
        if (report.enabled()) {
            report.addRecord(
                footprintRecord(lines, false, r_without));
            report.addRecord(footprintRecord(lines, true, r_with));
        }
    }
    table.print(std::cout);
    return report.write() ? 0 : 1;
}
