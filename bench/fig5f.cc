/**
 * @file
 * Figure 5(f): statistical abort rate from associativity conflicts
 * for transactions reading n random congruence classes. Without the
 * LRU extension the read footprint is bounded by the L1 (64 rows x
 * 6 ways); with it, by the L2 (512 rows x 8 ways), which pushes the
 * abort wall out by nearly an order of magnitude.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "bench_util.hh"
#include "workload/footprint.hh"
#include "workload/report.hh"

int
main()
{
    using namespace ztx;
    using namespace ztx::workload;

    std::printf("# Figure 5(f): effect of LRU extension on the "
                "fetch footprint\n");
    std::printf("# statistical abort rate (%%), n random lines per "
                "transaction\n");

    const bool fast = std::getenv("ZTX_BENCH_FAST") != nullptr;
    const unsigned trials = fast ? 40 : 120;

    SeriesTable table("Lines", {"NoLruExt-64x6", "LruExt-512x8"});
    for (unsigned lines = 100; lines <= 800; lines += 50) {
        FootprintConfig without;
        without.lruExtension = false;
        without.trials = trials;
        FootprintConfig with;
        with.lruExtension = true;
        with.trials = trials;
        const double r_without =
            measureFootprintAbortRate(lines, without);
        const double r_with = measureFootprintAbortRate(lines, with);
        table.addRow(lines, {100.0 * r_without, 100.0 * r_with});
    }
    table.print(std::cout);
    return 0;
}
