#include "json_report.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>

namespace ztx::bench {

std::string
jsonReportPath(const std::string &bench_name, int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--json") == 0) {
            if (i + 1 < argc)
                return argv[i + 1];
            std::fprintf(stderr, "ztx-bench: --json needs a path "
                                 "operand; ignoring\n");
            break;
        }
        if (std::strncmp(arg, "--json=", 7) == 0)
            return arg + 7;
    }
    if (const char *dir = std::getenv("ZTX_BENCH_JSON")) {
        if (*dir)
            return std::string(dir) + "/BENCH_" + bench_name +
                   ".json";
    }
    return {};
}

Json
schedStatsJson(const workload::SchedStatsSummary &sched)
{
    Json s = Json::object();
    s["steps_local"] = sched.stepsLocal;
    s["steps_deferred"] = sched.stepsDeferred;
    s["steps_total"] = sched.stepsTotal;
    s["l3_local_hits"] = sched.l3LocalHits;
    s["heap_reinserts"] = sched.heapReinserts;
    s["serial_fraction"] = sched.serialFraction();
    return s;
}

Json
rasStatsJson(const workload::RasSummary &ras)
{
    Json s = Json::object();
    s["poisoned"] = ras.poisoned;
    s["spread"] = ras.spread;
    s["machine_checks"] = ras.machineChecks;
    s["scrubs"] = ras.scrubs;
    s["restarts"] = ras.restarts;
    s["poison_aborts"] = ras.poisonAborts;
    return s;
}

Json
abortBreakdownJson(
    const std::map<std::string, std::uint64_t> &aborts_by_reason)
{
    Json breakdown = Json::object();
    for (const auto &[reason, count] : aborts_by_reason)
        breakdown[reason] = count;
    return breakdown;
}

JsonReport::JsonReport(std::string bench_name, int argc,
                       char **argv)
    : name_(std::move(bench_name)),
      path_(jsonReportPath(name_, argc, argv)),
      start_(std::chrono::steady_clock::now())
{
}

void
JsonReport::setMachineConfig(const sim::MachineConfig &config)
{
    if (enabled())
        meta_["machine"] = sim::machineConfigJson(config);
}

void
JsonReport::addRecord(Json record)
{
    if (enabled())
        records_.push(std::move(record));
}

void
JsonReport::addSimWork(Cycles cycles, std::uint64_t instructions)
{
    simCycles_ += std::uint64_t(cycles);
    instructions_ += instructions;
}

void
JsonReport::addSched(const workload::SchedStatsSummary &sched)
{
    sched_.stepsLocal += sched.stepsLocal;
    sched_.stepsDeferred += sched.stepsDeferred;
    sched_.stepsTotal += sched.stepsTotal;
    sched_.l3LocalHits += sched.l3LocalHits;
    sched_.heapReinserts += sched.heapReinserts;
}

bool
JsonReport::write()
{
    if (!enabled())
        return true;

    const double host_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start_)
            .count();

    Json doc = Json::object();
    doc["kind"] = "ztx.bench";
    doc["schema_version"] = 1;
    doc["bench"] = name_;
    doc["meta"] = meta_;
    doc["records"] = records_;
    doc["sched"] = schedStatsJson(sched_);

    Json speed = Json::object();
    speed["host_seconds"] = host_seconds;
    speed["sim_cycles"] = simCycles_;
    speed["instructions"] = instructions_;
    speed["sim_cycles_per_host_second"] =
        host_seconds > 0.0 ? double(simCycles_) / host_seconds : 0.0;
    speed["instructions_per_host_second"] =
        host_seconds > 0.0 ? double(instructions_) / host_seconds
                           : 0.0;
    doc["sim_speed"] = std::move(speed);

    std::ofstream out(path_);
    if (!out) {
        std::fprintf(stderr,
                     "ztx-bench: cannot open JSON report path "
                     "'%s'\n",
                     path_.c_str());
        return false;
    }
    doc.write(out, 1);
    out << '\n';
    out.flush();
    if (!out) {
        std::fprintf(stderr,
                     "ztx-bench: failed writing JSON report "
                     "'%s'\n",
                     path_.c_str());
        return false;
    }
    return true;
}

} // namespace ztx::bench
