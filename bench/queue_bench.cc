/**
 * @file
 * The §IV in-text ConcurrentLinkedQueue experiment: the IBM Java
 * team's constrained-transaction queue achieved about 2x the
 * throughput of the lock-based version.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "json_report.hh"
#include "workload/queue.hh"
#include "workload/report.hh"

int
main(int argc, char **argv)
{
    using namespace ztx;
    using namespace ztx::workload;

    bench::JsonReport report("queue_bench", argc, argv);
    report.setMachineConfig(bench::benchMachine());
    report.meta()["iterations"] = 2 * bench::benchIterations();

    std::printf("# ConcurrentLinkedQueue: constrained TX vs lock\n");
    std::printf("# throughput = CPUs / mean cycles per queue op\n");

    const auto record = [&](const QueueBenchResult &res,
                            unsigned cpus, bool constrained) {
        report.addSimWork(res.elapsedCycles, res.instructions);
        report.addSched(res.sched);
        if (report.enabled()) {
            Json rec = bench::resultJson(res);
            rec["cpus"] = cpus;
            rec["variant"] = constrained ? "tbeginc" : "lock";
            report.addRecord(std::move(rec));
        }
    };

    SeriesTable table("CPUs", {"Lock", "TBEGINC", "Ratio"});
    for (const unsigned cpus : {2u, 4u, 6u, 8u}) {
        QueueBenchConfig lock_cfg;
        lock_cfg.cpus = cpus;
        lock_cfg.iterations = 2 * bench::benchIterations();
        lock_cfg.useConstrainedTx = false;
        lock_cfg.machine = bench::benchMachine();
        QueueBenchConfig tx_cfg = lock_cfg;
        tx_cfg.useConstrainedTx = true;

        const auto lock_res = runQueueBench(lock_cfg);
        const auto tx_res = runQueueBench(tx_cfg);
        record(lock_res, cpus, false);
        record(tx_res, cpus, true);
        table.addRow(cpus, {1000.0 * lock_res.throughput,
                            1000.0 * tx_res.throughput,
                            tx_res.throughput / lock_res.throughput});
    }
    table.print(std::cout);
    std::printf("# paper reports a factor of about 2 in favor of "
                "constrained transactions\n");
    return report.write() ? 0 : 1;
}
