/**
 * @file
 * The §IV in-text ConcurrentLinkedQueue experiment: the IBM Java
 * team's constrained-transaction queue achieved about 2x the
 * throughput of the lock-based version.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "workload/queue.hh"
#include "workload/report.hh"

int
main()
{
    using namespace ztx;
    using namespace ztx::workload;

    std::printf("# ConcurrentLinkedQueue: constrained TX vs lock\n");
    std::printf("# throughput = CPUs / mean cycles per queue op\n");

    SeriesTable table("CPUs", {"Lock", "TBEGINC", "Ratio"});
    for (const unsigned cpus : {2u, 4u, 6u, 8u}) {
        QueueBenchConfig lock_cfg;
        lock_cfg.cpus = cpus;
        lock_cfg.iterations = 2 * bench::benchIterations();
        lock_cfg.useConstrainedTx = false;
        lock_cfg.machine = bench::benchMachine();
        QueueBenchConfig tx_cfg = lock_cfg;
        tx_cfg.useConstrainedTx = true;

        const auto lock_res = runQueueBench(lock_cfg);
        const auto tx_res = runQueueBench(tx_cfg);
        table.addRow(cpus, {1000.0 * lock_res.throughput,
                            1000.0 * tx_res.throughput,
                            tx_res.throughput / lock_res.throughput});
    }
    table.print(std::cout);
    std::printf("# paper reports a factor of about 2 in favor of "
                "constrained transactions\n");
    return 0;
}
