/**
 * @file
 * Sorted linked-list set: lock elision versus a global lock across
 * CPU counts and list lengths. Long traversals make read sets large
 * and overlapping, so the transactional advantage shrinks as the
 * list grows — complementing the figure-5 microbenchmarks with a
 * traversal-shaped workload.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "json_report.hh"
#include "workload/list_set.hh"
#include "workload/report.hh"

int
main(int argc, char **argv)
{
    using namespace ztx;
    using namespace ztx::workload;

    bench::JsonReport report("list_set_bench", argc, argv);
    report.setMachineConfig(bench::benchMachine());
    report.meta()["iterations"] = bench::benchIterations();

    std::printf("# Sorted list set: global lock vs lock elision\n");
    std::printf("# throughput x1000 = 1000 * CPUs / cycles per op\n");

    const auto record = [&](const ListSetBenchResult &res,
                            unsigned cpus, unsigned key_space,
                            bool elision) {
        report.addSimWork(res.elapsedCycles, res.instructions);
        report.addSched(res.sched);
        if (report.enabled()) {
            Json rec = bench::resultJson(res);
            rec["cpus"] = cpus;
            rec["key_space"] = key_space;
            rec["variant"] = elision ? "elision" : "lock";
            report.addRecord(std::move(rec));
        }
    };

    for (const unsigned key_space : {32u, 256u}) {
        std::printf("\n## key space %u (mean list length ~%u)\n",
                    key_space, key_space / 2);
        SeriesTable table("CPUs", {"Lock", "Elision", "Ratio"});
        for (const unsigned cpus : {2u, 4u, 8u, 16u}) {
            ListSetBenchConfig cfg;
            cfg.cpus = cpus;
            cfg.keySpace = key_space;
            cfg.iterations = ztx::bench::benchIterations();
            cfg.machine = ztx::bench::benchMachine();
            cfg.useElision = false;
            const auto lock_res = runListSetBench(cfg);
            cfg.useElision = true;
            const auto tx_res = runListSetBench(cfg);
            if (!lock_res.sorted || !tx_res.sorted ||
                !lock_res.lengthConsistent ||
                !tx_res.lengthConsistent) {
                std::printf("VALIDATION FAILED\n");
                return 1;
            }
            record(lock_res, cpus, key_space, false);
            record(tx_res, cpus, key_space, true);
            table.addRow(cpus,
                         {1000.0 * lock_res.throughput,
                          1000.0 * tx_res.throughput,
                          tx_res.throughput / lock_res.throughput});
        }
        table.print(std::cout);
    }
    return report.write() ? 0 : 1;
}
