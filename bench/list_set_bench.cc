/**
 * @file
 * Sorted linked-list set: lock elision versus a global lock across
 * CPU counts and list lengths. Long traversals make read sets large
 * and overlapping, so the transactional advantage shrinks as the
 * list grows — complementing the figure-5 microbenchmarks with a
 * traversal-shaped workload.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "workload/list_set.hh"
#include "workload/report.hh"

int
main()
{
    using namespace ztx;
    using namespace ztx::workload;

    std::printf("# Sorted list set: global lock vs lock elision\n");
    std::printf("# throughput x1000 = 1000 * CPUs / cycles per op\n");

    for (const unsigned key_space : {32u, 256u}) {
        std::printf("\n## key space %u (mean list length ~%u)\n",
                    key_space, key_space / 2);
        SeriesTable table("CPUs", {"Lock", "Elision", "Ratio"});
        for (const unsigned cpus : {2u, 4u, 8u, 16u}) {
            ListSetBenchConfig cfg;
            cfg.cpus = cpus;
            cfg.keySpace = key_space;
            cfg.iterations = ztx::bench::benchIterations();
            cfg.machine = ztx::bench::benchMachine();
            cfg.useElision = false;
            const auto lock_res = runListSetBench(cfg);
            cfg.useElision = true;
            const auto tx_res = runListSetBench(cfg);
            if (!lock_res.sorted || !tx_res.sorted ||
                !lock_res.lengthConsistent ||
                !tx_res.lengthConsistent) {
                std::printf("VALIDATION FAILED\n");
                return 1;
            }
            table.addRow(cpus,
                         {1000.0 * lock_res.throughput,
                          1000.0 * tx_res.throughput,
                          tx_res.throughput / lock_res.throughput});
        }
        table.print(std::cout);
    }
    return 0;
}
