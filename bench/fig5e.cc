/**
 * @file
 * Figure 5(e): lock-elided hash table (the Testarossa JIT
 * experiment). Multiple threads read and write a shared hash table
 * guarded by a single lock; eliding that lock with transactions
 * turns the flat lock curve into near-linear scaling.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "json_report.hh"
#include "workload/hashtable.hh"
#include "workload/report.hh"

int
main(int argc, char **argv)
{
    using namespace ztx;
    using namespace ztx::workload;

    bench::JsonReport report("fig5e", argc, argv);
    report.setMachineConfig(bench::benchMachine());
    report.meta()["iterations"] = 2 * bench::benchIterations();

    std::printf("# Figure 5(e): lock-elided hash table\n");
    std::printf("# throughput normalized to 2 threads with locks\n");

    double lock2 = 0;
    SeriesTable table("Threads", {"Locks", "TBEGIN"});
    for (unsigned threads = 2; threads <= 8; ++threads) {
        std::vector<double> row;
        for (const bool elide : {false, true}) {
            HashTableBenchConfig cfg;
            cfg.cpus = threads;
            cfg.useElision = elide;
            cfg.iterations = 2 * bench::benchIterations();
            cfg.machine = bench::benchMachine();
            const auto res = runHashTableBench(cfg);
            if (!elide && threads == 2)
                lock2 = res.throughput;
            row.push_back(res.throughput);
            report.addSimWork(res.elapsedCycles, res.instructions);
        report.addSched(res.sched);
            if (report.enabled()) {
                Json rec = bench::resultJson(res);
                rec["cpus"] = threads;
                rec["variant"] = elide ? "tbegin" : "lock";
                rec["occupied_buckets"] = res.occupiedBuckets;
                report.addRecord(std::move(rec));
            }
        }
        table.addRow(threads,
                     {100.0 * row[0] / lock2, 100.0 * row[1] / lock2});
    }
    table.print(std::cout);
    return report.write() ? 0 : 1;
}
