/**
 * @file
 * Figure 5(b): single-variable updates from a pool of 10. Expected
 * shape: the coarse lock yields very poor throughput; fine-grained
 * locks are better but stop scaling around 10 CPUs and decline;
 * transactions grow up to ~24 CPUs (the tested MCM node size), hold
 * roughly steady beyond, and beat the locks across the whole range.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "workload/report.hh"

int
main()
{
    using namespace ztx;
    using namespace ztx::workload;

    const double ref = bench::normalizationReference();
    std::printf("# Figure 5(b): TX vs locks, single variable, "
                "poolsize 10\n");
    std::printf("# normalized throughput (100 = 2 CPUs, 1 var, "
                "pool 1, coarse lock)\n");

    SeriesTable table("CPUs", {"CoarseLock", "FineLock", "TBEGINC",
                               "TBEGIN"});
    for (const unsigned cpus : bench::cpuPoints()) {
        std::vector<double> row;
        for (const SyncMethod method :
             {SyncMethod::CoarseLock, SyncMethod::FineLock,
              SyncMethod::TBeginc, SyncMethod::TBegin}) {
            UpdateBenchConfig cfg;
            cfg.cpus = cpus;
            cfg.poolSize = 10;
            cfg.varsPerOp = 1;
            cfg.method = method;
            cfg.iterations = bench::benchIterations();
            cfg.machine = bench::benchMachine();
            const auto res = runUpdateBench(cfg);
            row.push_back(100.0 * res.throughput / ref);
        }
        table.addRow(cpus, row);
    }
    table.print(std::cout);
    return 0;
}
