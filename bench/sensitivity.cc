/**
 * @file
 * Sensitivity analysis for the calibration constants (EXPERIMENTS.md
 * claims the figure *orderings* are robust to them):
 *
 *  1. Remote-latency scale: shrink/stretch everything beyond the L2
 *     (L3/L4/cross-MCM/memory) by 0.5x/1x/2x and re-run the figure
 *     5(b) comparison at 24 CPUs — transactions must keep beating
 *     both locks at every scale.
 *  2. PPA backoff: disable the PPA delay (zero backoff) versus the
 *     default exponential backoff on the contended TBEGIN workload.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "json_report.hh"
#include "workload/report.hh"

namespace {

using namespace ztx;
using namespace ztx::workload;

sim::MachineConfig
scaledMachine(double scale)
{
    sim::MachineConfig cfg = bench::benchMachine();
    cfg.latency.l3Hit = Cycles(double(cfg.latency.l3Hit) * scale);
    cfg.latency.l4Hit = Cycles(double(cfg.latency.l4Hit) * scale);
    cfg.latency.remoteMcm =
        Cycles(double(cfg.latency.remoteMcm) * scale);
    cfg.latency.memory = Cycles(double(cfg.latency.memory) * scale);
    return cfg;
}

double
throughputAt(bench::JsonReport &report, double scale,
             SyncMethod method, const sim::MachineConfig &machine)
{
    UpdateBenchConfig cfg;
    cfg.method = method;
    cfg.cpus = 24;
    cfg.poolSize = 10;
    cfg.varsPerOp = 1;
    cfg.iterations = bench::benchIterations();
    cfg.machine = machine;
    const auto res = runUpdateBench(cfg);
    report.addSimWork(res.elapsedCycles, res.instructions);
        report.addSched(res.sched);
    if (report.enabled()) {
        Json rec = bench::resultJson(res);
        rec["section"] = "latency-scale";
        rec["latency_scale"] = scale;
        rec["cpus"] = cfg.cpus;
        rec["variant"] = syncMethodName(method);
        rec["method"] = syncMethodName(method);
        report.addRecord(std::move(rec));
    }
    return res.throughput;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReport report("sensitivity", argc, argv);
    report.setMachineConfig(bench::benchMachine());
    report.meta()["iterations"] = bench::benchIterations();

    std::printf("# Sensitivity 1: remote-latency scale, figure 5(b) "
                "point at 24 CPUs\n");
    SeriesTable lat("Scale", {"CoarseLock", "FineLock", "TBEGINC",
                              "TxBeatsLocks"});
    for (const double scale : {0.5, 1.0, 2.0}) {
        const auto machine = scaledMachine(scale);
        const double coarse = throughputAt(
            report, scale, SyncMethod::CoarseLock, machine);
        const double fine = throughputAt(
            report, scale, SyncMethod::FineLock, machine);
        const double tbc = throughputAt(
            report, scale, SyncMethod::TBeginc, machine);
        lat.addRow(scale,
                   {1000.0 * coarse, 1000.0 * fine, 1000.0 * tbc,
                    (tbc > coarse && tbc > fine) ? 1.0 : 0.0});
    }
    lat.print(std::cout);
    std::printf("# TxBeatsLocks must be 1 at every scale\n\n");

    std::printf("# Sensitivity 2: PPA backoff on contended TBEGIN "
                "(pool 10, 4 vars)\n");
    SeriesTable ppa("CPUs", {"Backoff", "NoBackoff"});
    for (const unsigned cpus : {8u, 24u, 48u}) {
        UpdateBenchConfig cfg;
        cfg.method = SyncMethod::TBegin;
        cfg.cpus = cpus;
        cfg.poolSize = 10;
        cfg.varsPerOp = 4;
        cfg.iterations = bench::benchIterations();
        cfg.machine = bench::benchMachine();
        const auto backoff_res = runUpdateBench(cfg);
        cfg.machine.tm.ppaBaseDelay = 1;
        cfg.machine.tm.ppaMaxShift = 0;
        const auto nobackoff_res = runUpdateBench(cfg);
        const double with_backoff = backoff_res.throughput;
        const double without = nobackoff_res.throughput;
        ppa.addRow(cpus, {1000.0 * with_backoff, 1000.0 * without});
        report.addSimWork(backoff_res.elapsedCycles,
                          backoff_res.instructions);
        report.addSched(backoff_res.sched);
        report.addSimWork(nobackoff_res.elapsedCycles,
                          nobackoff_res.instructions);
        report.addSched(nobackoff_res.sched);
        if (report.enabled()) {
            for (const bool has_backoff : {true, false}) {
                Json rec = bench::resultJson(
                    has_backoff ? backoff_res : nobackoff_res);
                rec["section"] = "ppa-backoff";
                rec["cpus"] = cpus;
                rec["variant"] =
                    has_backoff ? "backoff" : "no-backoff";
                report.addRecord(std::move(rec));
            }
        }
    }
    ppa.print(std::cout);
    std::printf("# random exponential backoff prevents harmonic "
                "repeating aborts (paper SSII.A)\n");
    return report.write() ? 0 : 1;
}
