/**
 * @file
 * Ablations of the design choices DESIGN.md calls out:
 *  - stiff-arming (XI rejection) on/off under high contention —
 *    the paper notes rejection "is very efficient in highly
 *    contended transactions";
 *  - the L1 LRU-extension scheme on/off for a medium-footprint
 *    transactional workload;
 *  - gathering store cache size (store-footprint headroom).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "isa/assembler.hh"
#include "json_report.hh"
#include "workload/layout.hh"
#include "workload/report.hh"

namespace {

using namespace ztx;
using namespace ztx::workload;

/** High-contention single-variable updates with a TM config tweak. */
double
contendedThroughput(bench::JsonReport &report, unsigned cpus,
                    bool stiff_arm)
{
    UpdateBenchConfig cfg;
    cfg.cpus = cpus;
    cfg.poolSize = 10;
    cfg.varsPerOp = 1;
    cfg.method = SyncMethod::TBeginc;
    cfg.iterations = ztx::bench::benchIterations();
    cfg.machine = ztx::bench::benchMachine();
    cfg.machine.tm.stiffArmEnabled = stiff_arm;
    const auto res = runUpdateBench(cfg);
    report.addSimWork(res.elapsedCycles, res.instructions);
        report.addSched(res.sched);
    if (report.enabled()) {
        Json rec = bench::resultJson(res);
        rec["section"] = "stiff-arm";
        rec["cpus"] = cpus;
        rec["variant"] = stiff_arm ? "stiff-arm" : "no-stiff-arm";
        report.addRecord(std::move(rec));
    }
    return res.throughput;
}

/** TX reading `lines` lines spread over L1 rows; success ratio. */
double
footprintSuccessRate(unsigned lines, bool lru_ext, unsigned store_sc)
{
    isa::Assembler as;
    as.lhi(0, 0);
    as.lhi(3, 0);
    as.label("loop");
    as.tbegin(0x00);
    as.jnz("abort");
    for (unsigned i = 0; i < lines; ++i)
        as.lg(1, 0, std::int64_t(poolBase + i * 16384));
    as.tend();
    as.lhi(3, 1);
    as.j("done");
    as.label("abort");
    as.lhi(3, 2);
    as.label("done");
    as.halt();
    const isa::Program p = as.finish();

    sim::MachineConfig mcfg = ztx::bench::benchMachine();
    mcfg.activeCpus = 1;
    mcfg.tm.lruExtensionEnabled = lru_ext;
    mcfg.tm.storeCacheEntries = store_sc;
    sim::Machine m(mcfg);
    m.setProgram(0, &p);
    m.run();
    return m.cpu(0).gr(3) == 1 ? 1.0 : 0.0;
}

/** Store-footprint commit limit for a given store-cache size. */
unsigned
maxCommittableBlocks(unsigned store_cache_entries)
{
    unsigned lo = 1, hi = 256;
    const auto commits = [&](unsigned blocks) {
        isa::Assembler as;
        as.la(9, 0, std::int64_t(poolBase));
        as.lhi(1, 1);
        as.lhi(8, std::int64_t(blocks));
        as.tbegin(0x00);
        as.jnz("out");
        as.label("loop");
        as.stg(1, 9, 0);
        as.la(9, 9, 128);
        as.brct(8, "loop");
        as.tend();
        as.lhi(3, 1);
        as.label("out");
        as.halt();
        const isa::Program p = as.finish();
        sim::MachineConfig mcfg = ztx::bench::benchMachine();
        mcfg.activeCpus = 1;
        mcfg.tm.storeCacheEntries = store_cache_entries;
        sim::Machine m(mcfg);
        m.setProgram(0, &p);
        m.run();
        return m.cpu(0).gr(3) == 1;
    };
    while (lo < hi) {
        const unsigned mid = (lo + hi + 1) / 2;
        if (commits(mid))
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReport report("ablation", argc, argv);
    report.setMachineConfig(ztx::bench::benchMachine());
    report.meta()["iterations"] = ztx::bench::benchIterations();

    std::printf("# Ablation 1: stiff-arming (XI rejection) under "
                "high contention\n");
    SeriesTable stiff("CPUs", {"StiffArm", "NoStiffArm", "Ratio"});
    for (const unsigned cpus : {8u, 24u, 48u, 100u}) {
        const double with_sa =
            contendedThroughput(report, cpus, true);
        const double without_sa =
            contendedThroughput(report, cpus, false);
        stiff.addRow(cpus, {1000.0 * with_sa, 1000.0 * without_sa,
                            with_sa / without_sa});
    }
    stiff.print(std::cout);

    std::printf("\n# Ablation 2: LRU extension for a 12-line "
                "single-row read footprint\n");
    for (const bool lru_ext : {true, false}) {
        const bool commits =
            footprintSuccessRate(12, lru_ext, 64) > 0.5;
        std::printf("%s extension %s: %s\n",
                    lru_ext ? "with" : "without",
                    lru_ext ? "   " : "", commits ? "commits"
                                                  : "aborts");
        if (report.enabled()) {
            Json rec = Json::object();
            rec["section"] = "lru-extension";
            rec["variant"] = lru_ext ? "lru-ext" : "no-lru-ext";
            rec["lines"] = 12u;
            rec["commits"] = commits;
            report.addRecord(std::move(rec));
        }
    }

    std::printf("\n# Ablation 3: store-cache size vs maximum store "
                "footprint (128-byte blocks)\n");
    SeriesTable sc("Entries", {"MaxBlocks"});
    for (const unsigned entries : {16u, 32u, 64u, 128u}) {
        const unsigned max_blocks = maxCommittableBlocks(entries);
        sc.addRow(entries, {double(max_blocks)});
        if (report.enabled()) {
            Json rec = Json::object();
            rec["section"] = "store-cache";
            rec["store_cache_entries"] = entries;
            rec["max_blocks"] = max_blocks;
            report.addRecord(std::move(rec));
        }
    }
    sc.print(std::cout);
    std::printf("# zEC12 ships 64 entries; the footprint tracks the "
                "store-cache capacity\n");

    std::printf("\n# Ablation 4: speculative over-marking vs the "
                "millicode escalation\n");
    SeriesTable om("OvermarkProb", {"TBEGINC", "SpecReduced"});
    for (const double prob : {0.0, 0.2, 0.5}) {
        UpdateBenchConfig cfg;
        cfg.cpus = 24;
        cfg.poolSize = 10;
        cfg.varsPerOp = 1;
        cfg.method = SyncMethod::TBeginc;
        cfg.iterations = ztx::bench::benchIterations();
        cfg.machine = ztx::bench::benchMachine();
        cfg.machine.tm.speculativeOvermarkProb = prob;

        sim::MachineConfig mcfg = cfg.machine;
        mcfg.activeCpus = cfg.cpus;
        sim::Machine machine(mcfg);
        const isa::Program prog = buildUpdateProgram(cfg);
        machine.setProgramAll(&prog);
        const Cycles elapsed = machine.run();
        double region_sum = 0;
        std::uint64_t region_count = 0, reduced = 0;
        for (unsigned i = 0; i < machine.numCpus(); ++i) {
            region_sum += machine.cpu(i).regionCycles().sum();
            region_count += machine.cpu(i).regionCycles().count();
            reduced += machine.cpu(i)
                           .stats()
                           .counter("millicode.speculation_reduced")
                           .value();
        }
        report.addSimWork(elapsed,
                          collectTxStats(machine).instructions);
        report.addSched(collectSchedStats(machine));
        const double thr =
            double(cfg.cpus) / (region_sum / double(region_count));
        om.addRow(prob, {1000.0 * thr, double(reduced)});
        if (report.enabled()) {
            Json rec = Json::object();
            rec["section"] = "overmark";
            rec["overmark_prob"] = prob;
            rec["cpus"] = cfg.cpus;
            rec["throughput"] = thr;
            rec["speculation_reduced"] = reduced;
            report.addRecord(std::move(rec));
        }
    }
    om.print(std::cout);
    std::printf("# wrong-path read-set pollution costs throughput; "
                "millicode's speculation\n# reduction keeps "
                "constrained retries converging\n");
    return report.write() ? 0 : 1;
}
