/**
 * @file
 * Machine-readable bench reporting: every benchmark binary can
 * emit a `BENCH_<name>.json` document containing one record per
 * sweep point (CPU count / variant, throughput, abort breakdown by
 * reason) plus run metadata and a sim-speed self-meter (simulated
 * cycles and instructions per host second), so performance changes
 * across PRs are diffable by machines, not just eyeballs.
 *
 * Activation:
 *   --json <path>        explicit output file (beats the env var)
 *   ZTX_BENCH_JSON=<dir> write <dir>/BENCH_<name>.json
 * With neither, the report is disabled and text output is the only
 * effect of the binary, exactly as before.
 */

#ifndef ZTX_BENCH_JSON_REPORT_HH
#define ZTX_BENCH_JSON_REPORT_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "common/json.hh"
#include "common/types.hh"
#include "sim/machine.hh"
#include "workload/report.hh"

namespace ztx::bench {

/**
 * Resolve the JSON output path for @p bench_name from a `--json
 * <path>` / `--json=<path>` argument or the `ZTX_BENCH_JSON`
 * directory; empty when reporting is disabled.
 */
std::string jsonReportPath(const std::string &bench_name, int argc,
                           char **argv);

/** An abort-reason map as a JSON object. */
Json abortBreakdownJson(
    const std::map<std::string, std::uint64_t> &aborts_by_reason);

/**
 * A scheduler summary as a JSON object: the "sched.*" counters plus
 * the derived serial fraction. All-zero under the legacy scheduler,
 * so the record shape is identical across scheduler modes.
 */
Json schedStatsJson(const workload::SchedStatsSummary &sched);

/**
 * A RAS summary as a JSON object: poison/machine-check activity and
 * what recovery did. All-zero (same shape) without RAS faults.
 */
Json rasStatsJson(const workload::RasSummary &ras);

/**
 * The shared result fields of one sweep-point record: throughput,
 * commit/abort counts, the abort-reason breakdown, and the
 * simulated work (cycles, instructions) behind the point. Works
 * with every workload *BenchResult.
 */
template <typename Result>
Json
resultJson(const Result &res)
{
    Json r = Json::object();
    r["throughput"] = res.throughput;
    r["mean_region_cycles"] = res.meanRegionCycles;
    r["commits"] = res.txCommits;
    r["aborts"] = res.txAborts;
    const double attempts = double(res.txCommits + res.txAborts);
    r["abort_rate"] =
        attempts > 0.0 ? double(res.txAborts) / attempts : 0.0;
    r["aborts_by_reason"] = abortBreakdownJson(res.abortsByReason);
    r["sim_cycles"] = std::uint64_t(res.elapsedCycles);
    r["instructions"] = res.instructions;
    r["sched"] = schedStatsJson(res.sched);
    r["ras"] = rasStatsJson(res.ras);
    return r;
}

/** Collects sweep-point records and writes the bench document. */
class JsonReport
{
  public:
    /**
     * @param bench_name Short name; the default file is
     *        BENCH_<bench_name>.json.
     * @param argc/argv Scanned (not consumed) for `--json`.
     */
    explicit JsonReport(std::string bench_name, int argc = 0,
                        char **argv = nullptr);

    /** True when a destination was configured. */
    bool enabled() const { return !path_.empty(); }

    /** Destination file ("" when disabled). */
    const std::string &path() const { return path_; }

    /** Run-metadata object; add bench-specific keys freely. */
    Json &meta() { return meta_; }

    /** Record the sweep's machine configuration under meta. */
    void setMachineConfig(const sim::MachineConfig &config);

    /** Append one sweep-point record (no-op when disabled). */
    void addRecord(Json record);

    /** Account simulated work for the sim-speed self-meter. */
    void addSimWork(Cycles cycles, std::uint64_t instructions);

    /**
     * Accumulate one run's scheduler activity into the doc-level
     * "sched" object (always emitted, all-zero for legacy runs).
     */
    void addSched(const workload::SchedStatsSummary &sched);

    /**
     * Write the document (no-op success when disabled).
     * @return False when the file could not be written.
     */
    bool write();

  private:
    std::string name_;
    std::string path_;
    Json meta_ = Json::object();
    Json records_ = Json::array();
    std::uint64_t simCycles_ = 0;
    std::uint64_t instructions_ = 0;
    workload::SchedStatsSummary sched_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace ztx::bench

#endif // ZTX_BENCH_JSON_REPORT_HH
