/**
 * @file
 * Figure 5(d): reading 4 variables from a pool of 10k — read-write
 * lock versus constrained transactions. Expected shape: the RW lock
 * flattens out because every reader entry/exit updates the
 * read-count word, which ping-pongs between CPUs; transactions only
 * check that no writer is present, so the lock-word line stays
 * shared and throughput grows almost linearly.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "workload/report.hh"

int
main()
{
    using namespace ztx;
    using namespace ztx::workload;

    const double ref = bench::normalizationReference();
    std::printf("# Figure 5(d): TX vs read-write lock, four "
                "variables read, poolsize 10k\n");
    std::printf("# normalized throughput (100 = 2 CPUs, 1 var, "
                "pool 1, coarse lock)\n");

    SeriesTable table("CPUs", {"RW-Lock", "TBEGINC"});
    for (const unsigned cpus : bench::cpuPoints()) {
        std::vector<double> row;
        for (const SyncMethod method :
             {SyncMethod::RwLock, SyncMethod::TBeginc}) {
            UpdateBenchConfig cfg;
            cfg.cpus = cpus;
            cfg.poolSize = 10000;
            cfg.varsPerOp = 4;
            cfg.readOnly = true;
            cfg.method = method;
            cfg.iterations = bench::benchIterations();
            cfg.machine = bench::benchMachine();
            const auto res = runUpdateBench(cfg);
            row.push_back(100.0 * res.throughput / ref);
        }
        table.addRow(cpus, row);
    }
    table.print(std::cout);
    return 0;
}
