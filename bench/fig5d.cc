/**
 * @file
 * Figure 5(d): reading 4 variables from a pool of 10k — read-write
 * lock versus constrained transactions. Expected shape: the RW lock
 * flattens out because every reader entry/exit updates the
 * read-count word, which ping-pongs between CPUs; transactions only
 * check that no writer is present, so the lock-word line stays
 * shared and throughput grows almost linearly.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "json_report.hh"
#include "workload/report.hh"

int
main(int argc, char **argv)
{
    using namespace ztx;
    using namespace ztx::workload;

    bench::JsonReport report("fig5d", argc, argv);
    const double ref = bench::normalizationReference();
    report.setMachineConfig(bench::benchMachine());
    report.meta()["iterations"] = bench::benchIterations();
    report.meta()["normalization_reference"] = ref;

    std::printf("# Figure 5(d): TX vs read-write lock, four "
                "variables read, poolsize 10k\n");
    std::printf("# normalized throughput (100 = 2 CPUs, 1 var, "
                "pool 1, coarse lock)\n");

    SeriesTable table("CPUs", {"RW-Lock", "TBEGINC"});
    for (const unsigned cpus : bench::cpuPoints()) {
        std::vector<double> row;
        for (const SyncMethod method :
             {SyncMethod::RwLock, SyncMethod::TBeginc}) {
            UpdateBenchConfig cfg;
            cfg.cpus = cpus;
            cfg.poolSize = 10000;
            cfg.varsPerOp = 4;
            cfg.readOnly = true;
            cfg.method = method;
            cfg.iterations = bench::benchIterations();
            cfg.machine = bench::benchMachine();
            const auto res = runUpdateBench(cfg);
            row.push_back(100.0 * res.throughput / ref);
            report.addSimWork(res.elapsedCycles, res.instructions);
        report.addSched(res.sched);
            if (report.enabled()) {
                Json rec = bench::resultJson(res);
                rec["cpus"] = cpus;
                rec["pool"] = 10000u;
                rec["vars_per_op"] = 4u;
                rec["read_only"] = true;
                rec["variant"] = syncMethodName(method);
                rec["method"] = syncMethodName(method);
                rec["normalized_throughput"] =
                    100.0 * res.throughput / ref;
                rec["xi_rejects"] = res.xiRejects;
                report.addRecord(std::move(rec));
            }
        }
        table.addRow(cpus, row);
    }
    table.print(std::cout);
    return report.write() ? 0 : 1;
}
