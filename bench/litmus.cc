/**
 * @file
 * Litmus corpus runner: exhaustively enumerate every corpus test
 * (src/litmus) and report per-test verdicts plus enumeration
 * statistics (schedules explored, decision depth, distinct
 * outcomes) to BENCH_litmus.json.
 *
 * Every corpus test is expected to enumerate to "ok" on a correct
 * simulator; any "violation" prints the rendered witness schedule
 * (debug/litmus_dump) and any "frontier-capped" means the bounds in
 * EnumOptions no longer cover the corpus — both fail the binary, so
 * it doubles as a CI gate (litmus_smoke runs the reduced subset).
 *
 * Verdicts and the whole JSON record are seed-independent and
 * host-thread independent by construction (steered machines force
 * the serial legacy scheduler); tests/test_litmus.cc asserts the
 * byte-identity.
 *
 * `--smoke` runs the reduced subset; `--only NAME` runs a single
 * corpus test (used by the EXPERIMENTS.md guard-revert demo).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "debug/litmus_dump.hh"
#include "json_report.hh"
#include "litmus/corpus.hh"
#include "litmus/dsl.hh"
#include "litmus/enumerate.hh"

namespace {

using namespace ztx;

/** The reduced --smoke subset: one representative per family. */
bool
inSmokeSubset(const std::string &name)
{
    return name == "sb" || name == "mp_tx_both" ||
           name == "inc_tx" || name == "inc_ctx" ||
           name == "tabort_rollback" || name == "ntstg_survives" ||
           name == "conflict_directed" || name == "iriw";
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    const char *only = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--only") == 0 &&
                 i + 1 < argc)
            only = argv[++i];
    }

    bench::JsonReport report("litmus", argc, argv);
    report.meta()["smoke"] = smoke;

    std::printf("# Litmus corpus: exhaustive interleaving "
                "enumeration%s\n",
                smoke ? " (smoke subset)" : "");
    std::printf("# %-20s %-16s %10s %8s %8s %8s\n", "test",
                "verdict", "schedules", "decis", "depth",
                "outcomes");

    bool all_ok = true;
    unsigned ran = 0;
    for (const litmus::CorpusTest &ct : litmus::corpus()) {
        if (smoke && !inSmokeSubset(ct.name))
            continue;
        if (only && std::strcmp(ct.name, only) != 0)
            continue;
        ++ran;

        const litmus::ParseResult pr = litmus::parse(ct.src);
        if (!pr.ok) {
            std::fprintf(stderr, "litmus: %s: parse error: %s\n",
                         ct.name, pr.error.c_str());
            all_ok = false;
            continue;
        }
        const litmus::Compiled c = litmus::compile(pr.test);
        const litmus::EnumResult res = litmus::enumerate(c);
        report.addSimWork(res.simCycles, res.instructions);

        std::printf("  %-20s %-16s %10llu %8llu %8llu %8llu\n",
                    ct.name, res.verdict.c_str(),
                    (unsigned long long)res.schedulesExplored,
                    (unsigned long long)res.decisionsTotal,
                    (unsigned long long)res.maxDepth,
                    (unsigned long long)res.outcomes.size());

        if (res.verdict != "ok") {
            all_ok = false;
            if (res.witness)
                std::fprintf(
                    stderr, "%s\n",
                    debug::litmusWitnessDump(c, *res.witness)
                        .c_str());
            else
                std::fprintf(stderr,
                             "litmus: %s: verdict %s (%s)\n",
                             ct.name, res.verdict.c_str(),
                             res.capReason.c_str());
        }

        if (report.enabled()) {
            Json rec = Json::object();
            rec["litmus"] = litmus::enumResultJson(c, res);
            report.addRecord(std::move(rec));
        }
    }

    std::printf("# %u tests enumerated\n", ran);
    if (!report.write())
        return 1;
    if (!all_ok) {
        std::fprintf(stderr, "litmus: corpus verdict failure (see "
                             "above)\n");
        return 2;
    }
    return 0;
}
