/**
 * @file
 * Chaos sweep: run the three validated workloads (sorted list set,
 * hash table, linked queue) under increasingly hostile fault
 * injection — spurious aborts, XI storms against the transactional
 * footprint, capacity squeezes, interrupt storms, delayed XI
 * responses, and everything at once — with the forward-progress
 * watchdog armed. For every (workload, mix, scale) point the
 * consistency oracle verifies structure invariants and linearizable
 * effect counts after the run, and the operation-log checker
 * (inject/lincheck) verifies that the recorded invoke/response
 * history is actually linearizable — catching lost updates,
 * duplicate dequeues, and stale reads that leave the final
 * structure intact.
 *
 * The paper's claim under test: transactions may abort for any
 * environmental reason, but committed state is never corrupted, and
 * constrained transactions still complete (eventual success via the
 * millicode escalation ladder up to broadcast-stop, §II.A/§III.E).
 *
 * Exit status is non-zero if any oracle fails or any watchdog
 * fires, so the binary doubles as a stress gate (chaos_smoke).
 * Everything derives from the machine seed: the same invocation
 * replays bit-identically.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "inject/fault_plan.hh"
#include "inject/lincheck.hh"
#include "inject/order_infer.hh"
#include "json_report.hh"
#include "workload/hashtable.hh"
#include "workload/layout.hh"
#include "workload/list_set.hh"
#include "workload/queue.hh"
#include "workload/report.hh"

namespace {

using namespace ztx;

/** One injection mix of the sweep. */
struct Mix
{
    const char *name;
    double scale; ///< multiplies every rate of the mix
};

/**
 * Build the plan for @p mix at @p scale. Base rates are per
 * scheduler step and deliberately harsh at scale 1: a few-thousand
 * step run sees every fault kind many times. @p hot_line is the
 * workload's most contended line (list head, bucket array base,
 * queue anchor) — where targeted conflicts and scripted scenarios
 * aim.
 */
inject::FaultPlan
mixPlan(const std::string &mix, double scale, Addr hot_line)
{
    inject::FaultPlan plan;
    const bool all = mix == "all";
    if (all || mix == "spurious")
        plan.spuriousAbortRate = 0.002 * scale;
    if (all || mix == "xi_storm")
        plan.xiStormRate = 0.003 * scale;
    if (all || mix == "squeeze") {
        plan.capacitySqueezeRate = 0.0005 * scale;
        plan.squeezeDuration = 3000;
    }
    if (all || mix == "interrupts")
        plan.interruptStormRate = 0.0004 * scale;
    if (all || mix == "delayed_xi") {
        plan.delayedXiRate = 0.2 * scale;
        plan.xiDelayMax = 300;
    }
    if (all || mix == "targeted") {
        plan.targetedConflictRate = 0.004 * scale;
        plan.targetedLine = hot_line;
    }
    if (all || mix == "poison")
        plan.poisonRate = 0.0002 * scale;
    if (mix == "scenario") {
        // Scripted sequence against the hot line: periodic poison
        // from early in the run, a conflict XI aimed at whoever is
        // transacting on the line once the first abort lands, and a
        // spurious abort shortly after that conflict fired.
        inject::ScenarioStep poison;
        poison.trigger = inject::TriggerKind::AtCycle;
        poison.at = 5000;
        poison.period = 40000;
        poison.repeat = 5;
        poison.kind = inject::FaultKind::PoisonLine;
        poison.line = hot_line;
        plan.scenario.push_back(poison);

        inject::ScenarioStep conflict;
        conflict.trigger = inject::TriggerKind::OnAbort;
        conflict.count = 1;
        conflict.kind = inject::FaultKind::TargetedConflict;
        conflict.line = hot_line;
        plan.scenario.push_back(conflict);

        inject::ScenarioStep spurious;
        spurious.trigger = inject::TriggerKind::AfterStep;
        spurious.after = 1;
        spurious.at = 2000;
        spurious.kind = inject::FaultKind::SpuriousAbort;
        spurious.line = hot_line; // untargeted: resolve the holder
        plan.scenario.push_back(spurious);
    }
    return plan;
}

/** The workload's most contended line (scenario/targeted anchor). */
Addr
hotLineOf(const std::string &wl)
{
    if (wl == "list_set")
        return workload::listBase;
    if (wl == "hashtable")
        return workload::hashTableBase;
    return workload::queueBase;
}

/** Watchdog window: generous against backoff, tiny against hangs. */
constexpr Cycles watchdogWindow = 2'000'000;

struct Outcome
{
    double throughput = 0;
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    bool oracleOk = false;
    bool watchdogFired = false;
    std::string oracleSummary;
    inject::LinVerdict lincheck;
    inject::OrderInferReport orderInfer;
};

/**
 * Emit the history-checker section of a chaos record: exactly one
 * of `order_infer` (the O(n log n) oracle inferred the order) or
 * `lincheck` (DFS fallback / truncated / protocol error), never
 * both — json_check enforces this shape.
 */
void
addCheckerSection(Json &rec, const Outcome &out)
{
    rec["op_log"] = true;
    if (out.orderInfer.inferred) {
        rec["order_infer"] = inject::orderInferJson(out.orderInfer);
    } else {
        Json lc = inject::linVerdictJson(out.lincheck);
        if (!out.orderInfer.fallbackReason.empty())
            lc["fallback_reason"] = out.orderInfer.fallbackReason;
        rec["lincheck"] = std::move(lc);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ztx::workload;

    bench::JsonReport report("chaos", argc, argv);
    report.setMachineConfig(bench::benchMachine());
    const unsigned iters = bench::benchIterations();
    report.meta()["iterations"] = iters;
    report.meta()["watchdog_cycles"] =
        std::uint64_t(watchdogWindow);

    std::printf("# Chaos sweep: oracle-checked workloads under "
                "fault injection\n");
    std::printf("# %-10s %-10s %-5s %10s %8s %8s  %s\n", "workload",
                "mix", "scale", "thrpt", "commits", "aborts",
                "verdict");

    const std::vector<Mix> mixes = {
        {"none", 0.0},       {"spurious", 1.0},
        {"xi_storm", 1.0},   {"squeeze", 1.0},
        {"interrupts", 1.0}, {"delayed_xi", 1.0},
        {"targeted", 1.0},   {"poison", 1.0},
        {"scenario", 1.0},   {"all", 0.5},
        {"all", 1.0},        {"all", 2.0},
    };
    const std::vector<std::string> workloads = {"list_set",
                                                "hashtable",
                                                "queue"};

    bool all_ok = true;
    for (const auto &wl : workloads) {
        for (const auto &mix : mixes) {
            const inject::FaultPlan plan =
                mixPlan(mix.name, mix.scale, hotLineOf(wl));

            sim::MachineConfig mcfg = bench::benchMachine();
            mcfg.faults = plan;
            mcfg.watchdogCycles = watchdogWindow;

            Outcome out;
            Json rec = Json::object();
            if (wl == "list_set") {
                ListSetBenchConfig cfg;
                cfg.cpus = 4;
                cfg.useElision = true;
                cfg.iterations = iters;
                cfg.opLog = true;
                cfg.machine = mcfg;
                const auto res = runListSetBench(cfg);
                out = {res.throughput, res.txCommits, res.txAborts,
                       res.oracle.ok && res.sorted &&
                           res.lengthConsistent,
                       res.watchdogFired, res.oracle.summary()};
                out.lincheck = res.lincheck;
                out.orderInfer = res.orderInfer;
                report.addSimWork(res.elapsedCycles,
                                  res.instructions);
                report.addSched(res.sched);
                rec = bench::resultJson(res);
            } else if (wl == "hashtable") {
                HashTableBenchConfig cfg;
                cfg.cpus = 4;
                cfg.useElision = true;
                cfg.iterations = iters;
                cfg.opLog = true;
                cfg.machine = mcfg;
                const auto res = runHashTableBench(cfg);
                out = {res.throughput, res.txCommits, res.txAborts,
                       res.oracle.ok, res.watchdogFired,
                       res.oracle.summary()};
                out.lincheck = res.lincheck;
                out.orderInfer = res.orderInfer;
                report.addSimWork(res.elapsedCycles,
                                  res.instructions);
                report.addSched(res.sched);
                rec = bench::resultJson(res);
            } else {
                QueueBenchConfig cfg;
                cfg.cpus = 4;
                cfg.useConstrainedTx = true;
                cfg.iterations = iters;
                cfg.opLog = true;
                cfg.machine = mcfg;
                const auto res = runQueueBench(cfg);
                out = {res.throughput, res.txCommits, res.txAborts,
                       res.oracle.ok, res.watchdogFired,
                       res.oracle.summary()};
                out.lincheck = res.lincheck;
                out.orderInfer = res.orderInfer;
                report.addSimWork(res.elapsedCycles,
                                  res.instructions);
                report.addSched(res.sched);
                rec = bench::resultJson(res);
            }

            // A non-linearizable history already failed the oracle
            // (the runner folds it in); an *unchecked* one on a run
            // the watchdog let finish means the log or the checker
            // gave up — fail the point rather than under-report. A
            // *truncated* log is an explicit, expected verdict (the
            // ring overflowed), not a violation: the point passes
            // so long as the structure oracle is clean.
            const bool lincheck_ok = out.lincheck.checked ||
                                     out.lincheck.truncated ||
                                     out.watchdogFired;
            const bool point_ok = out.oracleOk &&
                                  !out.watchdogFired && lincheck_ok;
            all_ok = all_ok && point_ok;
            std::printf("  %-10s %-10s %-5.2g %10.5f %8llu %8llu  "
                        "%s%s\n",
                        wl.c_str(), mix.name, mix.scale,
                        out.throughput,
                        (unsigned long long)out.commits,
                        (unsigned long long)out.aborts,
                        out.watchdogFired ? "WATCHDOG " : "",
                        out.oracleSummary.c_str());

            if (report.enabled()) {
                rec["workload"] = wl;
                rec["mix"] = mix.name;
                rec["rate_scale"] = mix.scale;
                rec["oracle_ok"] = out.oracleOk;
                rec["watchdog_fired"] = out.watchdogFired;
                rec["oracle_summary"] = out.oracleSummary;
                addCheckerSection(rec, out);
                rec["fault_plan"] = inject::faultPlanJson(plan);
                report.addRecord(std::move(rec));
            }
        }
    }

    // --- Large-history points: ~100k operations per workload, a
    // scale where the DFS fallback would give up ("unchecked") but
    // order inference still returns a definitive verdict. A mild
    // spurious-abort mix keeps the retry machinery honest without
    // risking a watchdog halt that would leave operations pending.
    for (const auto &wl : workloads) {
        const inject::FaultPlan plan =
            mixPlan("spurious", 0.25, hotLineOf(wl));
        sim::MachineConfig mcfg = bench::benchMachine();
        mcfg.faults = plan;
        mcfg.watchdogCycles = watchdogWindow;

        Outcome out;
        Json rec = Json::object();
        if (wl == "list_set") {
            ListSetBenchConfig cfg;
            cfg.cpus = 4;
            cfg.useElision = true;
            cfg.iterations = 25000; // 4 CPUs -> 100k ops
            cfg.opLog = true;
            cfg.machine = mcfg;
            const auto res = runListSetBench(cfg);
            out = {res.throughput, res.txCommits, res.txAborts,
                   res.oracle.ok && res.sorted &&
                       res.lengthConsistent,
                   res.watchdogFired, res.oracle.summary()};
            out.lincheck = res.lincheck;
            out.orderInfer = res.orderInfer;
            report.addSimWork(res.elapsedCycles, res.instructions);
            report.addSched(res.sched);
            rec = bench::resultJson(res);
        } else if (wl == "hashtable") {
            HashTableBenchConfig cfg;
            cfg.cpus = 4;
            cfg.useElision = true;
            cfg.iterations = 25000; // 4 CPUs -> 100k ops
            cfg.opLog = true;
            cfg.machine = mcfg;
            const auto res = runHashTableBench(cfg);
            out = {res.throughput, res.txCommits, res.txAborts,
                   res.oracle.ok, res.watchdogFired,
                   res.oracle.summary()};
            out.lincheck = res.lincheck;
            out.orderInfer = res.orderInfer;
            report.addSimWork(res.elapsedCycles, res.instructions);
            report.addSched(res.sched);
            rec = bench::resultJson(res);
        } else {
            QueueBenchConfig cfg;
            cfg.cpus = 4;
            cfg.useConstrainedTx = true;
            cfg.iterations = 12500; // enq+deq x 4 CPUs -> 100k ops
            cfg.opLog = true;
            cfg.machine = mcfg;
            const auto res = runQueueBench(cfg);
            out = {res.throughput, res.txCommits, res.txAborts,
                   res.oracle.ok, res.watchdogFired,
                   res.oracle.summary()};
            out.lincheck = res.lincheck;
            out.orderInfer = res.orderInfer;
            report.addSimWork(res.elapsedCycles, res.instructions);
            report.addSched(res.sched);
            rec = bench::resultJson(res);
        }

        // The whole point of the scale: a definitive verdict from
        // the inferred order. A fallback here (pending ops, version
        // gaps) or an unchecked verdict fails the point.
        const bool point_ok = out.oracleOk && !out.watchdogFired &&
                              out.lincheck.checked &&
                              out.orderInfer.inferred;
        all_ok = all_ok && point_ok;
        std::printf("  %-10s %-10s %-5s %10.5f %8llu %8llu  "
                    "%s%s [order_infer: %llu ops, %llu edges%s]\n",
                    wl.c_str(), "large", "0.25", out.throughput,
                    (unsigned long long)out.commits,
                    (unsigned long long)out.aborts,
                    out.watchdogFired ? "WATCHDOG " : "",
                    out.oracleSummary.c_str(),
                    (unsigned long long)out.orderInfer.orderLength,
                    (unsigned long long)(out.orderInfer.versionEdges +
                                         out.orderInfer.programEdges),
                    out.orderInfer.inferred ? "" : " FALLBACK");

        if (report.enabled()) {
            rec["workload"] = wl;
            rec["mix"] = "large_history";
            rec["rate_scale"] = 0.25;
            rec["oracle_ok"] = out.oracleOk;
            rec["watchdog_fired"] = out.watchdogFired;
            rec["oracle_summary"] = out.oracleSummary;
            addCheckerSection(rec, out);
            rec["fault_plan"] = inject::faultPlanJson(plan);
            report.addRecord(std::move(rec));
        }
    }

    if (!report.write())
        return 1;
    if (!all_ok) {
        std::fprintf(stderr,
                     "chaos: oracle violation or watchdog firing "
                     "detected (see table above)\n");
        return 2;
    }
    std::printf("# all points consistent; no watchdog firings\n");
    return 0;
}
