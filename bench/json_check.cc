/**
 * @file
 * Standalone validator for BENCH_<name>.json documents: parses the
 * file with the in-tree JSON parser and checks the ztx.bench schema
 * (kind, schema_version, bench, meta, non-empty records, sim_speed).
 * Exit code 0 only for a well-formed report; used by the
 * bench_json_smoke ctest target.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.hh"

namespace {

int
fail(const char *path, const char *what)
{
    std::fprintf(stderr, "json_check: %s: %s\n", path, what);
    return 1;
}

bool
isOneOf(const ztx::Json &v,
        std::initializer_list<const char *> names)
{
    if (!v.isString())
        return false;
    for (const char *n : names)
        if (v.str() == n)
            return true;
    return false;
}

/**
 * Validate one record's "fault_plan" section: every rate and shape
 * parameter numeric, schedule entries carrying at/kind/target/line,
 * scenario steps carrying the full trigger grammar with names drawn
 * from the known sets. Returns nullptr when well-formed, else a
 * static message.
 */
const char *
checkFaultPlan(const ztx::Json &plan)
{
    if (!plan.isObject())
        return "fault_plan is not an object";
    for (const char *key :
         {"spurious_abort_rate", "xi_storm_rate",
          "capacity_squeeze_rate", "interrupt_storm_rate",
          "delayed_xi_rate", "targeted_conflict_rate",
          "poison_rate", "xi_storm_burst", "squeeze_l1_ways",
          "squeeze_l2_ways", "squeeze_duration", "interrupt_burst",
          "xi_delay_max", "targeted_line", "seed"}) {
        const ztx::Json *v = plan.find(key);
        if (!v || !v->isNumber())
            return "fault_plan parameter missing or not numeric";
    }
    const ztx::Json *sched = plan.find("schedule");
    if (!sched || !sched->isArray())
        return "fault_plan.schedule missing";
    for (std::size_t i = 0; i < sched->size(); ++i) {
        const ztx::Json &f = sched->at(i);
        const ztx::Json *at = f.find("at");
        const ztx::Json *tgt = f.find("target");
        const ztx::Json *line = f.find("line");
        const ztx::Json *kind = f.find("kind");
        if (!at || !at->isNumber() || !tgt || !tgt->isNumber() ||
            !line || !line->isNumber())
            return "schedule entry with bad at/target/line";
        if (!kind ||
            !isOneOf(*kind, {"spurious_abort", "xi_storm",
                             "capacity_squeeze", "interrupt_storm",
                             "delayed_xi", "targeted_conflict",
                             "poison_line"}))
            return "schedule entry with unknown kind";
    }
    const ztx::Json *scen = plan.find("scenario");
    if (!scen || !scen->isArray())
        return "fault_plan.scenario missing";
    for (std::size_t i = 0; i < scen->size(); ++i) {
        const ztx::Json &s = scen->at(i);
        const ztx::Json *trig = s.find("trigger");
        if (!trig || !isOneOf(*trig, {"at_cycle", "on_abort",
                                      "on_footprint", "after_step"}))
            return "scenario step with unknown trigger";
        const ztx::Json *kind = s.find("kind");
        if (!kind ||
            !isOneOf(*kind, {"spurious_abort", "xi_storm",
                             "capacity_squeeze", "interrupt_storm",
                             "delayed_xi", "targeted_conflict",
                             "poison_line"}))
            return "scenario step with unknown kind";
        const ztx::Json *check = s.find("check");
        if (!check ||
            !isOneOf(*check, {"none", "target_in_tx",
                              "target_not_in_tx",
                              "line_in_target_footprint"}))
            return "scenario step with unknown check";
        for (const char *key : {"at", "period", "repeat", "watch",
                                "count", "line", "after", "target"}) {
            const ztx::Json *v = s.find(key);
            if (!v || !v->isNumber())
                return "scenario step field missing or not numeric";
        }
    }
    return nullptr;
}

/**
 * Validate one record's "litmus" section: the enumeration verdict
 * must be a known value, the explored-schedule count positive, and
 * the outcome list well-formed (non-empty for any uncapped run).
 * Returns nullptr when well-formed, else a static message.
 */
const char *
checkLitmus(const ztx::Json &lit)
{
    if (!lit.isObject())
        return "litmus is not an object";
    const ztx::Json *test = lit.find("test");
    if (!test || !test->isString() || test->str().empty())
        return "litmus.test missing";
    const ztx::Json *verdict = lit.find("verdict");
    if (!verdict ||
        !isOneOf(*verdict, {"ok", "violation", "frontier-capped"}))
        return "litmus.verdict unknown";
    const ztx::Json *explored = lit.find("schedules_explored");
    if (!explored || !explored->isNumber() ||
        explored->asUint() == 0)
        return "litmus.schedules_explored missing or zero";
    for (const char *key :
         {"capped", "cap_reason", "decisions", "steps_total",
          "max_depth", "outcomes_seen", "commits", "aborts",
          "scenario_fired"}) {
        if (!lit.contains(key))
            return "litmus field missing";
    }
    const ztx::Json *outs = lit.find("outcomes");
    if (!outs || !outs->isArray())
        return "litmus.outcomes missing";
    if (verdict->str() == "ok" && outs->size() == 0)
        return "litmus verdict ok with no outcomes";
    for (std::size_t i = 0; i < outs->size(); ++i) {
        const ztx::Json &o = outs->at(i);
        const ztx::Json *state = o.find("state");
        const ztx::Json *count = o.find("count");
        if (!state || !state->isString() || !count ||
            !count->isNumber() || count->asUint() == 0)
            return "litmus outcome entry malformed";
    }
    const ztx::Json *viol = lit.find("violations");
    if (!viol || !viol->isArray())
        return "litmus.violations missing";
    if ((verdict->str() == "violation") != (viol->size() > 0))
        return "litmus verdict inconsistent with violations list";
    // The frontier-cap contract: a capped enumeration may never
    // report "ok", and an uncapped one may never blame a cap.
    const ztx::Json *capped = lit.find("capped");
    if (capped->boolean() && verdict->str() == "ok")
        return "litmus capped enumeration with verdict ok";
    if (!capped->boolean() && verdict->str() == "frontier-capped")
        return "litmus frontier-capped without capped flag";
    return nullptr;
}

/**
 * Validate one record's "prof" section: the phase-profiler snapshot
 * must carry the enabled flag, the cycle unit, and a sites array of
 * {name, cycles, calls} entries with non-empty names. An enabled
 * snapshot with no sites means the profiler was compiled out or the
 * scopes were never reached — either way the record is not the
 * per-phase breakdown it claims to be. Returns nullptr when
 * well-formed, else a static message.
 */
const char *
checkProf(const ztx::Json &prof)
{
    if (!prof.isObject())
        return "prof is not an object";
    const ztx::Json *enabled = prof.find("enabled");
    if (!enabled || enabled->type() != ztx::Json::Type::Bool)
        return "prof.enabled missing or not a bool";
    const ztx::Json *unit = prof.find("unit");
    if (!unit || !isOneOf(*unit, {"tsc", "ns"}))
        return "prof.unit unknown";
    const ztx::Json *sites = prof.find("sites");
    if (!sites || !sites->isArray())
        return "prof.sites missing";
    for (std::size_t i = 0; i < sites->size(); ++i) {
        const ztx::Json &s = sites->at(i);
        const ztx::Json *name = s.find("name");
        if (!name || !name->isString() || name->str().empty())
            return "prof site without a name";
        const ztx::Json *cycles = s.find("cycles");
        const ztx::Json *calls = s.find("calls");
        if (!cycles || !cycles->isNumber() || !calls ||
            !calls->isNumber())
            return "prof site cycles/calls missing or not numeric";
        if (calls->asUint() == 0 && cycles->asUint() != 0)
            return "prof site with cycles but zero calls";
    }
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    bool require_prof = false;
    const char *path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--require-prof") == 0)
            require_prof = true;
        else if (path == nullptr)
            path = argv[i];
        else
            path = ""; // too many operands
    }
    if (path == nullptr || *path == '\0') {
        std::fprintf(stderr, "usage: json_check [--require-prof] "
                             "<BENCH_*.json>\n");
        return 2;
    }
    std::ifstream in(path);
    if (!in)
        return fail(path, "cannot open");
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    const auto doc = ztx::Json::parse(text);
    if (!doc)
        return fail(path, "parse error");

    const ztx::Json *kind = doc->find("kind");
    if (!kind || kind->str() != "ztx.bench")
        return fail(path, "kind != ztx.bench");
    const ztx::Json *version = doc->find("schema_version");
    if (!version || version->asUint() < 1)
        return fail(path, "bad schema_version");
    const ztx::Json *bench = doc->find("bench");
    if (!bench || bench->str().empty())
        return fail(path, "missing bench name");
    if (!doc->contains("meta"))
        return fail(path, "missing meta");
    const ztx::Json *records = doc->find("records");
    if (!records || records->size() == 0)
        return fail(path, "missing or empty records");
    std::size_t prof_records = 0;
    // Determinism is part of the schema contract: any record that
    // carries a determinism verdict must carry a passing one.
    for (std::size_t i = 0; i < records->size(); ++i) {
        const ztx::Json &rec = records->at(i);
        const ztx::Json *det = rec.find("determinism_ok");
        if (det && !det->boolean())
            return fail(path, "record with determinism_ok=false");
        // History-checker shape: a record produced with the op log
        // on (op_log=true) must carry exactly one checker section —
        // order_infer (inferred order) or lincheck (fallback /
        // truncated). Both, neither, or a section without op_log
        // all mean the producer mis-wired the oracles.
        const ztx::Json *oplog = rec.find("op_log");
        const bool logged = oplog && oplog->boolean();
        const bool has_lc = rec.contains("lincheck");
        const bool has_oi = rec.contains("order_infer");
        if (logged && has_lc == has_oi)
            return fail(path, has_lc
                                  ? "op_log record with both "
                                    "lincheck and order_infer"
                                  : "op_log record with neither "
                                    "lincheck nor order_infer");
        if (!logged && (has_lc || has_oi))
            return fail(path, "checker section on a record "
                              "without op_log=true");
        // Chaos records archive the campaign that produced them;
        // a malformed plan section means replaying the record is
        // impossible, so it fails validation outright.
        if (const ztx::Json *plan = rec.find("fault_plan"))
            if (const char *why = checkFaultPlan(*plan))
                return fail(path, why);
        // Litmus records carry the enumeration verdict; a malformed
        // one could let a capped or violating corpus slip past CI.
        if (const ztx::Json *lit = rec.find("litmus"))
            if (const char *why = checkLitmus(*lit))
                return fail(path, why);
        // Phase-profiler snapshots: shape-checked wherever present;
        // --require-prof additionally demands at least one record
        // with an enabled, populated snapshot (the perf_smoke
        // contract — see bench/perf_smoke.cmake).
        if (const ztx::Json *prof = rec.find("prof")) {
            if (const char *why = checkProf(*prof))
                return fail(path, why);
            const ztx::Json *sites = prof->find("sites");
            if (prof->find("enabled")->boolean() &&
                sites->size() > 0)
                prof_records += 1;
        }
        // Full-topology scale records break the host wall-clock
        // down by scheduler phase; an incomplete or inconsistent
        // breakdown would silently corrupt the Amdahl analysis the
        // campaign exists to produce.
        if (const ztx::Json *phase = rec.find("phase")) {
            if (!phase->isObject())
                return fail(path, "phase is not an object");
            for (const char *key :
                 {"parallel_seconds", "merge_seconds", "quanta",
                  "merge_share"}) {
                const ztx::Json *v = phase->find(key);
                if (!v || !v->isNumber())
                    return fail(path, "phase timing field missing "
                                      "or not numeric");
            }
            const double share =
                phase->find("merge_share")->number();
            if (share < 0.0 || share > 1.0)
                return fail(path, "phase.merge_share outside [0,1]");
        }
    }
    if (require_prof && prof_records == 0)
        return fail(path, "--require-prof: no record carries an "
                          "enabled prof snapshot with sites");
    const ztx::Json *speed = doc->find("sim_speed");
    if (!speed)
        return fail(path, "missing sim_speed");
    for (const char *key :
         {"host_seconds", "sim_cycles", "instructions",
          "sim_cycles_per_host_second",
          "instructions_per_host_second"}) {
        if (!speed->contains(key))
            return fail(path, "incomplete sim_speed");
    }
    std::printf("json_check: %s: OK (%zu records)\n", path,
                records->size());
    return 0;
}
