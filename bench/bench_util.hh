/**
 * @file
 * Shared plumbing for the figure-regenerating benchmark binaries:
 * the paper's CPU-count sweep, the machine configuration, and the
 * throughput normalization (100 ≙ 2 CPUs / 1 variable / pool of 1).
 *
 * Environment knobs:
 *   ZTX_BENCH_ITERS  operations per CPU (default 150)
 *   ZTX_BENCH_FAST   non-empty: coarser CPU sweep for smoke runs
 */

#ifndef ZTX_BENCH_BENCH_UTIL_HH
#define ZTX_BENCH_BENCH_UTIL_HH

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/machine.hh"
#include "workload/update_bench.hh"

namespace ztx::bench {

/** CPU counts on the x axis of figure 5 (a)-(d). */
inline std::vector<unsigned>
cpuPoints()
{
    if (std::getenv("ZTX_BENCH_FAST"))
        return {2, 4, 8, 24, 100};
    return {2, 3, 4, 5, 6, 8, 10, 20, 40, 60, 80, 100};
}

/**
 * Operations per CPU for the sweep benchmarks. ZTX_BENCH_ITERS must
 * be a positive decimal count; anything else (garbage, zero,
 * negative values that strtoul would silently wrap) falls back to
 * the default with a warning (once per process).
 */
inline unsigned
benchIterations()
{
    static const unsigned iters = [] {
        constexpr unsigned default_iters = 150;
        constexpr unsigned long max_iters = 1'000'000'000UL;
        const char *s = std::getenv("ZTX_BENCH_ITERS");
        if (!s || !*s)
            return default_iters;
        char *end = nullptr;
        errno = 0;
        const unsigned long v = std::strtoul(s, &end, 10);
        if (errno != 0 || end == s || *end != '\0' ||
            s[0] == '-' || v == 0 || v > max_iters) {
            std::fprintf(stderr,
                         "ztx-bench: invalid ZTX_BENCH_ITERS="
                         "\"%s\" (want 1..%lu); using default "
                         "%u\n",
                         s, max_iters, default_iters);
            return default_iters;
        }
        return unsigned(v);
    }();
    return iters;
}

/**
 * Machine configuration of the benchmarks: the paper's topology
 * (6 cores/chip, 4 chips per tested MCM node -> the 24-CPU plateau,
 * 5 MCMs) with L3/L4 trimmed from 48 MB/384 MB to 8 MB/32 MB. The
 * workloads' footprints (at most ~2.6 MB for the 10k pool) stay far
 * below either size, so no additional LRU-XIs are introduced while
 * machine construction stays cheap across the many sweep points
 * (see EXPERIMENTS.md).
 */
inline sim::MachineConfig
benchMachine()
{
    sim::MachineConfig cfg;
    cfg.geometry.l3 = {8ULL << 20, 12};
    cfg.geometry.l4 = {32ULL << 20, 24};
    return cfg;
}

/** The paper's normalization constant for throughput plots. */
inline double
normalizationReference()
{
    return workload::referenceThroughput(benchMachine(),
                                         4 * benchIterations());
}

} // namespace ztx::bench

#endif // ZTX_BENCH_BENCH_UTIL_HH
