/**
 * @file
 * Host-side scaling of the sharded parallel scheduler: the same
 * simulated machine and workload driven with 1, 2, and 4 host
 * threads, on a single-chip topology (one shard — no parallelism to
 * harvest) and a multi-chip one (one shard per chip). Reports
 * wall-clock seconds, host MIPS, and speedup versus the 1-thread
 * sharded run; the determinism contract makes every row the same
 * simulation, so the comparison is pure host-side.
 *
 * Results are honest for the machine they ran on: meta.host_cpus
 * records how many host CPUs were available — on a 1-core host no
 * speedup is achievable and the numbers will show that.
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "isa/assembler.hh"
#include "json_report.hh"

namespace {

using namespace ztx;

/**
 * Per-CPU private-region transactions: each CPU commits
 * @p iterations transactions of 4 read-modify-writes against its
 * own lines — no cross-chip conflicts, so the parallel phase
 * dominates and host threads can actually help.
 */
isa::Program
privateTxProgram(Addr base, unsigned iterations)
{
    isa::Assembler as;
    as.la(9, 0, std::int64_t(base));
    as.lhi(8, std::int64_t(iterations));
    as.label("loop");
    as.tbegin(0xFF);
    as.jnz("skip"); // private lines: aborts are incidental
    for (int i = 0; i < 4; ++i) {
        as.lg(1, 9, std::int64_t(i * 256));
        as.ahi(1, 1);
        as.lr(2, 9);
        if (i != 0)
            as.ahi(2, std::int64_t(i * 256));
        as.stg(1, 2);
    }
    as.tend();
    as.label("skip");
    as.brct(8, "loop");
    as.halt();
    return as.finish();
}

struct RunResult
{
    double hostSeconds = 0.0;
    Cycles simCycles = 0;
    std::uint64_t instructions = 0;
};

RunResult
runOnce(const mem::Topology &topo, unsigned host_threads,
        unsigned iterations,
        std::vector<isa::Program> &programs /* keep-alive */)
{
    sim::MachineConfig cfg;
    cfg.topology = topo;
    cfg.seed = 17;
    cfg.hostThreads = host_threads;
    sim::Machine m(cfg);

    programs.clear();
    programs.reserve(m.numCpus());
    for (unsigned i = 0; i < m.numCpus(); ++i)
        programs.push_back(privateTxProgram(
            Addr(0x40'0000) + Addr(i) * 0x1'0000, iterations));
    for (unsigned i = 0; i < m.numCpus(); ++i)
        m.setProgram(i, &programs[i]);

    const auto t0 = std::chrono::steady_clock::now();
    const Cycles elapsed = m.run();
    const auto t1 = std::chrono::steady_clock::now();

    RunResult res;
    res.hostSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    res.simCycles = elapsed;
    for (unsigned i = 0; i < m.numCpus(); ++i)
        res.instructions +=
            m.cpu(i).stats().counter("instructions").value();
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ztx;

    bench::JsonReport report("scale", argc, argv);
    report.setMachineConfig(sim::MachineConfig{});
    report.meta()["iterations"] = bench::benchIterations();
    report.meta()["host_cpus"] =
        unsigned(std::thread::hardware_concurrency());

    const unsigned iterations =
        std::getenv("ZTX_BENCH_FAST") ? bench::benchIterations()
                                      : 4 * bench::benchIterations();

    struct TopoPoint
    {
        const char *name;
        mem::Topology topo;
    };
    const std::vector<TopoPoint> topos = {
        {"1chip", mem::Topology(4, 1, 1)},   // one shard
        {"4chips", mem::Topology(4, 4, 1)},  // four shards
    };

    std::printf("# Sharded-scheduler host scaling "
                "(host_cpus=%u)\n",
                unsigned(std::thread::hardware_concurrency()));
    std::printf("# %-8s %8s %12s %10s %10s\n", "topology",
                "threads", "host_sec", "mips", "speedup");

    std::vector<isa::Program> keep_alive;
    for (const TopoPoint &tp : topos) {
        double base_seconds = 0.0;
        for (const unsigned threads : {1u, 2u, 4u}) {
            const RunResult res = runOnce(tp.topo, threads,
                                          iterations, keep_alive);
            if (threads == 1)
                base_seconds = res.hostSeconds;
            const double mips =
                res.hostSeconds > 0.0
                    ? double(res.instructions) / res.hostSeconds /
                          1e6
                    : 0.0;
            const double speedup =
                res.hostSeconds > 0.0
                    ? base_seconds / res.hostSeconds
                    : 0.0;
            std::printf("  %-8s %8u %12.4f %10.2f %10.2f\n",
                        tp.name, threads, res.hostSeconds, mips,
                        speedup);
            report.addSimWork(res.simCycles, res.instructions);
            if (report.enabled()) {
                Json rec = Json::object();
                rec["topology"] = tp.name;
                rec["host_threads"] = threads;
                rec["host_seconds"] = res.hostSeconds;
                rec["sim_cycles"] = std::uint64_t(res.simCycles);
                rec["instructions"] = res.instructions;
                rec["mips"] = mips;
                rec["speedup_vs_1t"] = speedup;
                report.addRecord(std::move(rec));
            }
        }
    }
    return report.write() ? 0 : 1;
}
