/**
 * @file
 * Host-side scaling of the sharded parallel scheduler: the same
 * simulated machine and workload driven with 1, 2, and 4 host
 * threads, across a single-chip and a multi-chip topology and
 * across sub-chip shard counts (--shards-per-chip, default sweep
 * {1, 2}). Each record carries the host wall-clock numbers, the
 * scheduler's serial fraction (steps_deferred / steps_total — the
 * Amdahl ceiling the shard-local fast path attacks), the speedup
 * versus the 1-thread run of the same partition, and a
 * determinism_ok verdict: the full stats document of every
 * multi-threaded run must be byte-identical to its 1-thread
 * reference.
 *
 * A final "fastpath-delta" section re-runs a miss-heavy workload
 * with the shard-local fast path disabled and enabled, quantifying
 * how much of the serial fraction the fast path removes (the
 * EXPERIMENTS.md recipe reads these two records).
 *
 * Results are honest for the machine they ran on: meta.host_cpus
 * records how many host CPUs were available — on a 1-core host no
 * speedup is achievable and the numbers will show that.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "isa/assembler.hh"
#include "json_report.hh"
#include "workload/report.hh"

namespace {

using namespace ztx;

/**
 * Per-CPU private-region transactions: each CPU commits
 * @p iterations transactions of 4 read-modify-writes against its
 * own lines — no cross-chip conflicts, so the parallel phase
 * dominates and host threads can actually help.
 */
isa::Program
privateTxProgram(Addr base, unsigned iterations)
{
    isa::Assembler as;
    as.la(9, 0, std::int64_t(base));
    as.lhi(8, std::int64_t(iterations));
    as.label("loop");
    as.tbegin(0xFF);
    as.jnz("skip"); // private lines: aborts are incidental
    for (int i = 0; i < 4; ++i) {
        as.lg(1, 9, std::int64_t(i * 256));
        as.ahi(1, 1);
        as.lr(2, 9);
        if (i != 0)
            as.ahi(2, std::int64_t(i * 256));
        as.stg(1, 2);
    }
    as.tend();
    as.label("skip");
    as.brct(8, "loop");
    as.halt();
    return as.finish();
}

/**
 * Miss-heavy sweeps: each CPU walks a private region larger than
 * its L2, so steady-state accesses are chip-local L3 hits — the
 * traffic the shard-local fast path resolves in-phase and the
 * legacy defer rule sent to the serial barrier.
 */
isa::Program
missHeavyProgram(Addr base, unsigned lines, unsigned sweeps)
{
    isa::Assembler as;
    as.lhi(7, std::int64_t(sweeps));
    as.label("sweep");
    as.lhi(6, std::int64_t(lines));
    as.la(9, 0, std::int64_t(base));
    as.label("walk");
    as.lg(3, 9);
    as.ahi(3, 1);
    as.stg(3, 9);
    as.la(9, 9, 256);
    as.brct(6, "walk");
    as.brct(7, "sweep");
    as.halt();
    return as.finish();
}

struct RunResult
{
    double hostSeconds = 0.0;
    Cycles simCycles = 0;
    std::uint64_t instructions = 0;
    workload::SchedStatsSummary sched;
    /** Full stats document, for byte-identity comparison. */
    std::string statsText;
};

enum class Workload
{
    PrivateTx,
    MissHeavy,
};

RunResult
runOnce(const mem::Topology &topo, unsigned host_threads,
        unsigned shards_per_chip, bool fast_path, Workload wl,
        unsigned iterations,
        std::vector<isa::Program> &programs /* keep-alive */)
{
    sim::MachineConfig cfg;
    cfg.topology = topo;
    cfg.seed = 17;
    cfg.hostThreads = host_threads;
    cfg.hostShardsPerChip = shards_per_chip;
    cfg.shardLocalFastPath = fast_path;
    if (wl == Workload::MissHeavy) {
        // Shrink the private levels so the 64 KB per-CPU region
        // overflows L2 and steady-state sweeps hit the chip's L3.
        cfg.geometry.l1 = {4 * 1024, 2};
        cfg.geometry.l2 = {16 * 1024, 4};
        cfg.geometry.l3 = {1024 * 1024, 8};
        cfg.geometry.l4 = {8 * 1024 * 1024, 8};
    }
    sim::Machine m(cfg);

    programs.clear();
    programs.reserve(m.numCpus());
    for (unsigned i = 0; i < m.numCpus(); ++i) {
        const Addr base = Addr(0x40'0000) + Addr(i) * 0x1'0000;
        if (wl == Workload::PrivateTx)
            programs.push_back(
                privateTxProgram(base, iterations));
        else
            programs.push_back(missHeavyProgram(
                base, 256, std::max(1u, iterations / 64)));
    }
    for (unsigned i = 0; i < m.numCpus(); ++i)
        m.setProgram(i, &programs[i]);

    const auto t0 = std::chrono::steady_clock::now();
    const Cycles elapsed = m.run();
    const auto t1 = std::chrono::steady_clock::now();

    RunResult res;
    res.hostSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    res.simCycles = elapsed;
    for (unsigned i = 0; i < m.numCpus(); ++i)
        res.instructions +=
            m.cpu(i).stats().counter("instructions").value();
    res.sched = workload::collectSchedStats(m);
    std::ostringstream os;
    m.dumpStatsJson(os);
    res.statsText = os.str();
    return res;
}

/** Value of --shards-per-chip / --shards-per-chip=N; 0 = sweep. */
unsigned
shardsPerChipArg(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--shards-per-chip") == 0) {
            if (i + 1 < argc)
                return unsigned(std::atoi(argv[i + 1]));
            std::fprintf(stderr, "scale: --shards-per-chip needs "
                                 "an operand; ignoring\n");
            break;
        }
        if (std::strncmp(arg, "--shards-per-chip=", 18) == 0)
            return unsigned(std::atoi(arg + 18));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ztx;

    bench::JsonReport report("scale", argc, argv);
    report.setMachineConfig(sim::MachineConfig{});
    report.meta()["iterations"] = bench::benchIterations();
    report.meta()["host_cpus"] =
        unsigned(std::thread::hardware_concurrency());

    const unsigned iterations =
        std::getenv("ZTX_BENCH_FAST") ? bench::benchIterations()
                                      : 4 * bench::benchIterations();

    const unsigned spc_arg = shardsPerChipArg(argc, argv);
    const std::vector<unsigned> spc_axis =
        spc_arg ? std::vector<unsigned>{spc_arg}
                : std::vector<unsigned>{1u, 2u};
    report.meta()["shards_per_chip_axis"] = [&spc_axis] {
        Json axis = Json::array();
        for (const unsigned spc : spc_axis)
            axis.push(spc);
        return axis;
    }();

    struct TopoPoint
    {
        const char *name;
        mem::Topology topo;
    };
    const std::vector<TopoPoint> topos = {
        {"1chip", mem::Topology(4, 1, 1)},   // sub-chip shards only
        {"4chips", mem::Topology(4, 4, 1)},  // spc shards per chip
    };

    std::printf("# Sharded-scheduler host scaling "
                "(host_cpus=%u)\n",
                unsigned(std::thread::hardware_concurrency()));
    std::printf("# %-8s %4s %8s %12s %10s %10s %10s %5s\n",
                "topology", "spc", "threads", "host_sec", "mips",
                "speedup", "serial", "det");

    bool determinism_failed = false;
    std::vector<isa::Program> keep_alive;
    for (const TopoPoint &tp : topos) {
        for (const unsigned spc : spc_axis) {
            double base_seconds = 0.0;
            std::string ref_stats;
            for (const unsigned threads : {1u, 2u, 4u}) {
                const RunResult res = runOnce(
                    tp.topo, threads, spc, true,
                    Workload::PrivateTx, iterations, keep_alive);
                if (threads == 1) {
                    base_seconds = res.hostSeconds;
                    ref_stats = res.statsText;
                }
                const bool det = res.statsText == ref_stats;
                determinism_failed |= !det;
                const double mips =
                    res.hostSeconds > 0.0
                        ? double(res.instructions) /
                              res.hostSeconds / 1e6
                        : 0.0;
                const double speedup =
                    res.hostSeconds > 0.0
                        ? base_seconds / res.hostSeconds
                        : 0.0;
                std::printf("  %-8s %4u %8u %12.4f %10.2f %10.2f"
                            " %10.4f %5s\n",
                            tp.name, spc, threads, res.hostSeconds,
                            mips, speedup,
                            res.sched.serialFraction(),
                            det ? "ok" : "FAIL");
                report.addSimWork(res.simCycles, res.instructions);
                report.addSched(res.sched);
                if (report.enabled()) {
                    Json rec = Json::object();
                    rec["section"] = "host-scaling";
                    rec["topology"] = tp.name;
                    rec["shards_per_chip"] = spc;
                    rec["host_threads"] = threads;
                    rec["host_seconds"] = res.hostSeconds;
                    rec["sim_cycles"] =
                        std::uint64_t(res.simCycles);
                    rec["instructions"] = res.instructions;
                    rec["mips"] = mips;
                    rec["speedup_vs_1t"] = speedup;
                    rec["serial_fraction"] =
                        res.sched.serialFraction();
                    rec["determinism_ok"] = det;
                    rec["sched"] = bench::schedStatsJson(res.sched);
                    report.addRecord(std::move(rec));
                }
            }
        }
    }

    // Fast-path ablation: the same miss-heavy single-chip run with
    // the shard-local fast path off, then on, on a whole-chip shard
    // (every chip-local L3 hit is eligible). The serial-fraction
    // drop between the two records is the headline number.
    const unsigned delta_spc = spc_arg ? spc_arg : 1;
    std::printf("# %-12s %10s %12s %10s\n", "fastpath", "serial",
                "steps_def", "l3_local");
    for (const bool fast_path : {false, true}) {
        const RunResult res = runOnce(
            topos[0].topo, 1, delta_spc, fast_path,
            Workload::MissHeavy, iterations, keep_alive);
        std::printf("  %-12s %10.4f %12llu %10llu\n",
                    fast_path ? "on" : "off",
                    res.sched.serialFraction(),
                    (unsigned long long)res.sched.stepsDeferred,
                    (unsigned long long)res.sched.l3LocalHits);
        report.addSimWork(res.simCycles, res.instructions);
        report.addSched(res.sched);
        if (report.enabled()) {
            Json rec = Json::object();
            rec["section"] = "fastpath-delta";
            rec["topology"] = topos[0].name;
            rec["shards_per_chip"] = delta_spc;
            rec["host_threads"] = 1;
            rec["fast_path"] = fast_path;
            rec["host_seconds"] = res.hostSeconds;
            rec["sim_cycles"] = std::uint64_t(res.simCycles);
            rec["instructions"] = res.instructions;
            rec["speedup_vs_1t"] = 1.0;
            rec["serial_fraction"] = res.sched.serialFraction();
            rec["determinism_ok"] = true;
            rec["sched"] = bench::schedStatsJson(res.sched);
            report.addRecord(std::move(rec));
        }
    }

    if (determinism_failed)
        std::fprintf(stderr, "scale: DETERMINISM VIOLATION — "
                             "stats diverged across host-thread "
                             "counts\n");
    const bool wrote = report.write();
    return (wrote && !determinism_failed) ? 0 : 1;
}
