/**
 * @file
 * Host-side scaling and full-topology speed of the sharded parallel
 * scheduler.
 *
 * Sections written to BENCH_scale.json:
 *
 *  - "host-scaling": the same simulated machine and workload driven
 *    with 1, 2, and 4 host threads, across a single-chip and a
 *    multi-chip topology and across sub-chip shard counts
 *    (--shards-per-chip, default sweep {1, 2}). Each record carries
 *    the host wall-clock numbers, the scheduler's serial fraction
 *    (steps_deferred / steps_total — the Amdahl ceiling the
 *    shard-local fast path attacks), the speedup versus the
 *    1-thread run of the same partition, and a determinism_ok
 *    verdict: the full stats document of every multi-threaded run
 *    must be byte-identical to its 1-thread reference.
 *
 *  - "fastpath-delta": a miss-heavy workload with the shard-local
 *    fast path disabled and enabled, quantifying how much of the
 *    serial fraction the fast path removes.
 *
 *  - "full-topology": the paper's real machine — the 144-core zEC12
 *    (4 MCMs x 6 chips x 6 cores) — plus a 1024-CPU stretch point,
 *    recording sim-MIPS (simulated instructions per host second),
 *    serial fraction, and the host-side per-phase time breakdown
 *    (parallel phase vs. serial barrier merge, from
 *    Machine::hostPhaseTimes()) under a "phase" object. The 144-core
 *    point sweeps host threads {1, 2, 4} with the byte-identity
 *    determinism check. These are the EXPERIMENTS.md before/after
 *    numbers for the flat-directory / sharded-memory / arena layout
 *    work.
 *
 *  - "autosplit-sweep": a wide single-chip topology swept across
 *    sub-chip shard counts {1, 2, 4, 8, 16}, probing the
 *    min(cores, 4) auto-split cap: serial fraction rises with the
 *    shard count (SC1 home-group misses defer), host barrier
 *    overhead rises with the quantum count.
 *
 *  - "l3-recency": an L3-thrashing workload under sub-chip sharding,
 *    where installShardLocal() skips the shared-L3 LRU touch
 *    (DESIGN.md §5b); comparing shards_per_chip 1 vs. 4 quantifies
 *    the stale-recency cost in L3 evictions and simulated cycles.
 *
 * Results are honest for the machine they ran on: meta.host_cpus
 * records how many host CPUs were available — on a 1-core host no
 * speedup is achievable and the numbers will show that.
 *
 * --smoke restricts the run to a reduced 144-core full-topology
 * point (tiny iteration count, host threads {1, 2}) so CI can
 * exercise the full topology under a wall-time budget.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/prof.hh"
#include "isa/assembler.hh"
#include "json_report.hh"
#include "mem/directory.hh"
#include "workload/report.hh"

namespace {

using namespace ztx;

/**
 * Per-CPU private-region transactions: each CPU commits
 * @p iterations transactions of 4 read-modify-writes against its
 * own lines — no cross-chip conflicts, so the parallel phase
 * dominates and host threads can actually help.
 */
isa::Program
privateTxProgram(Addr base, unsigned iterations)
{
    isa::Assembler as;
    as.la(9, 0, std::int64_t(base));
    as.lhi(8, std::int64_t(iterations));
    as.label("loop");
    as.tbegin(0xFF);
    as.jnz("skip"); // private lines: aborts are incidental
    for (int i = 0; i < 4; ++i) {
        as.lg(1, 9, std::int64_t(i * 256));
        as.ahi(1, 1);
        as.lr(2, 9);
        if (i != 0)
            as.ahi(2, std::int64_t(i * 256));
        as.stg(1, 2);
    }
    as.tend();
    as.label("skip");
    as.brct(8, "loop");
    as.halt();
    return as.finish();
}

/**
 * Miss-heavy sweeps: each CPU walks a private region larger than
 * its L2, so steady-state accesses are chip-local L3 hits — the
 * traffic the shard-local fast path resolves in-phase and the
 * legacy defer rule sent to the serial barrier.
 */
isa::Program
missHeavyProgram(Addr base, unsigned lines, unsigned sweeps)
{
    isa::Assembler as;
    as.lhi(7, std::int64_t(sweeps));
    as.label("sweep");
    as.lhi(6, std::int64_t(lines));
    as.la(9, 0, std::int64_t(base));
    as.label("walk");
    as.lg(3, 9);
    as.ahi(3, 1);
    as.stg(3, 9);
    as.la(9, 9, 256);
    as.brct(6, "walk");
    as.brct(7, "sweep");
    as.halt();
    return as.finish();
}

/**
 * Hot-set + streaming walk for the L3-recency probe: every
 * iteration re-walks a hot region (sized to overflow L2, so its
 * reuse hits the chip's L3) and then walks a fresh, never-reused
 * stream chunk that pressures the L3 rows. With hit recency
 * maintained, the hot lines stay most-recently-used and the stream
 * evicts its own cold tail; with stale recency (sub-chip fast-path
 * installs skip the shared-L3 LRU touch) hot lines age out, miss,
 * and re-install — visible as extra L3 evictions and cycles.
 */
isa::Program
hotStreamProgram(Addr hot_base, unsigned hot_lines,
                 Addr stream_base, unsigned stream_per_iter,
                 unsigned iters)
{
    isa::Assembler as;
    as.la(10, 0, std::int64_t(stream_base));
    as.lhi(7, std::int64_t(iters));
    as.label("iter");
    as.lhi(6, std::int64_t(hot_lines));
    as.la(9, 0, std::int64_t(hot_base));
    as.label("hot");
    as.lg(3, 9);
    as.ahi(3, 1);
    as.stg(3, 9);
    as.la(9, 9, 256);
    as.brct(6, "hot");
    as.lhi(6, std::int64_t(stream_per_iter));
    as.label("cold");
    as.lg(3, 10);
    as.ahi(3, 1);
    as.stg(3, 10);
    as.la(10, 10, 256);
    as.brct(6, "cold");
    as.brct(7, "iter");
    as.halt();
    return as.finish();
}

struct RunResult
{
    double hostSeconds = 0.0;
    Cycles simCycles = 0;
    std::uint64_t instructions = 0;
    workload::SchedStatsSummary sched;
    sim::HostPhaseTimes phase;
    std::uint64_t l3Evicts = 0;
    std::uint64_t fetchMisses = 0;
    /** Full stats document, for byte-identity comparison. */
    std::string statsText;
    /** Phase-profiler snapshot for this run (host-time data; kept
     *  out of statsText so the determinism compare stays exact). */
    Json prof;
};

enum class Workload
{
    PrivateTx,
    MissHeavy,
    /** Miss-heavy against a halved L3: thrashes the shared LRU. */
    L3Thrash,
};

RunResult
runOnce(const mem::Topology &topo, unsigned host_threads,
        unsigned shards_per_chip, bool fast_path, Workload wl,
        unsigned iterations,
        std::vector<isa::Program> &programs /* keep-alive */,
        bool trim_geometry = false)
{
    sim::MachineConfig cfg;
    cfg.topology = topo;
    cfg.seed = 17;
    cfg.hostThreads = host_threads;
    cfg.hostShardsPerChip = shards_per_chip;
    cfg.shardLocalFastPath = fast_path;
    if (wl != Workload::PrivateTx) {
        // Shrink the private levels so the 64 KB per-CPU region
        // overflows L2 and steady-state sweeps hit the chip's L3.
        cfg.geometry.l1 = {4 * 1024, 2};
        cfg.geometry.l2 = {16 * 1024, 4};
        cfg.geometry.l3 = {1024 * 1024, 8};
        cfg.geometry.l4 = {8 * 1024 * 1024, 8};
    }
    if (wl == Workload::L3Thrash) {
        // Quarter the L3: the combined hot sets plus the stream's
        // resident tail fill it, so the shared LRU must pick
        // victims well for hot lines to survive.
        cfg.geometry.l3 = {256 * 1024, 8};
    }
    if (trim_geometry) {
        // Full-topology points: trim L3/L4 exactly like
        // bench_util's benchMachine() — workload footprints stay
        // far below either size, construction stays cheap at
        // hundreds of CPUs.
        cfg.geometry.l3 = {8ULL << 20, 12};
        cfg.geometry.l4 = {32ULL << 20, 24};
    }
    sim::Machine m(cfg);

    programs.clear();
    programs.reserve(m.numCpus());
    for (unsigned i = 0; i < m.numCpus(); ++i) {
        if (wl == Workload::L3Thrash) {
            // Disjoint 16 MB arenas: a 32 KB hot region (2x the
            // trimmed L2) plus a long never-reused stream.
            const Addr arena =
                Addr(0x100'0000) + Addr(i) * 0x100'0000;
            programs.push_back(hotStreamProgram(
                arena, 128, arena + 0x20'0000, 8,
                std::max(1u, iterations / 4)));
            continue;
        }
        const Addr base = Addr(0x40'0000) + Addr(i) * 0x1'0000;
        if (wl == Workload::PrivateTx)
            programs.push_back(
                privateTxProgram(base, iterations));
        else
            programs.push_back(missHeavyProgram(
                base, 256, std::max(1u, iterations / 64)));
    }
    for (unsigned i = 0; i < m.numCpus(); ++i)
        m.setProgram(i, &programs[i]);

    prof::reset();
    const auto t0 = std::chrono::steady_clock::now();
    const Cycles elapsed = m.run();
    const auto t1 = std::chrono::steady_clock::now();

    RunResult res;
    res.prof = prof::snapshotJson();
    res.hostSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    res.simCycles = elapsed;
    for (unsigned i = 0; i < m.numCpus(); ++i)
        res.instructions +=
            m.cpu(i).stats().counter("instructions").value();
    res.sched = workload::collectSchedStats(m);
    res.phase = m.hostPhaseTimes();
    res.l3Evicts =
        m.hierarchy().stats().counter("l3.evict").value();
    res.fetchMisses =
        m.hierarchy().stats().counter("fetch.miss").value();
    std::ostringstream os;
    m.dumpStatsJson(os);
    res.statsText = os.str();
    return res;
}

double
mipsOf(const RunResult &res)
{
    return res.hostSeconds > 0.0
               ? double(res.instructions) / res.hostSeconds / 1e6
               : 0.0;
}

/** The "phase" object of a full-topology record. */
Json
phaseJson(const sim::HostPhaseTimes &pt)
{
    Json p = Json::object();
    p["parallel_seconds"] = pt.parallelSeconds;
    p["merge_seconds"] = pt.mergeSeconds;
    p["quanta"] = pt.quanta;
    const double total = pt.parallelSeconds + pt.mergeSeconds;
    p["merge_share"] =
        total > 0.0 ? pt.mergeSeconds / total : 0.0;
    return p;
}

/** Value of --shards-per-chip / --shards-per-chip=N; 0 = sweep. */
unsigned
shardsPerChipArg(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--shards-per-chip") == 0) {
            if (i + 1 < argc)
                return unsigned(std::atoi(argv[i + 1]));
            std::fprintf(stderr, "scale: --shards-per-chip needs "
                                 "an operand; ignoring\n");
            break;
        }
        if (std::strncmp(arg, "--shards-per-chip=", 18) == 0)
            return unsigned(std::atoi(arg + 18));
    }
    return 0;
}

bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace ztx;

    const bool smoke = hasFlag(argc, argv, "--smoke");
    const bool prof_on = prof::enabledFromEnv();

    bench::JsonReport report("scale", argc, argv);
    report.setMachineConfig(sim::MachineConfig{});
    report.meta()["iterations"] = bench::benchIterations();
    report.meta()["host_cpus"] =
        unsigned(std::thread::hardware_concurrency());
    report.meta()["smoke"] = smoke;
    report.meta()["prof_enabled"] = prof_on;

    const unsigned iterations =
        std::getenv("ZTX_BENCH_FAST") ? bench::benchIterations()
                                      : 4 * bench::benchIterations();

    bool determinism_failed = false;
    std::vector<isa::Program> keep_alive;

    const unsigned spc_arg = shardsPerChipArg(argc, argv);
    if (!smoke) {
        const std::vector<unsigned> spc_axis =
            spc_arg ? std::vector<unsigned>{spc_arg}
                    : std::vector<unsigned>{1u, 2u};
        report.meta()["shards_per_chip_axis"] = [&spc_axis] {
            Json axis = Json::array();
            for (const unsigned spc : spc_axis)
                axis.push(spc);
            return axis;
        }();

        struct TopoPoint
        {
            const char *name;
            mem::Topology topo;
        };
        const std::vector<TopoPoint> topos = {
            {"1chip", mem::Topology(4, 1, 1)},  // sub-chip shards
            {"4chips", mem::Topology(4, 4, 1)}, // spc per chip
        };

        std::printf("# Sharded-scheduler host scaling "
                    "(host_cpus=%u)\n",
                    unsigned(
                        std::thread::hardware_concurrency()));
        std::printf("# %-8s %4s %8s %12s %10s %10s %10s %5s\n",
                    "topology", "spc", "threads", "host_sec",
                    "mips", "speedup", "serial", "det");

        for (const TopoPoint &tp : topos) {
            for (const unsigned spc : spc_axis) {
                double base_seconds = 0.0;
                std::string ref_stats;
                for (const unsigned threads : {1u, 2u, 4u}) {
                    const RunResult res = runOnce(
                        tp.topo, threads, spc, true,
                        Workload::PrivateTx, iterations,
                        keep_alive);
                    if (threads == 1) {
                        base_seconds = res.hostSeconds;
                        ref_stats = res.statsText;
                    }
                    const bool det = res.statsText == ref_stats;
                    determinism_failed |= !det;
                    const double mips = mipsOf(res);
                    const double speedup =
                        res.hostSeconds > 0.0
                            ? base_seconds / res.hostSeconds
                            : 0.0;
                    std::printf(
                        "  %-8s %4u %8u %12.4f %10.2f %10.2f"
                        " %10.4f %5s\n",
                        tp.name, spc, threads, res.hostSeconds,
                        mips, speedup,
                        res.sched.serialFraction(),
                        det ? "ok" : "FAIL");
                    report.addSimWork(res.simCycles,
                                      res.instructions);
                    report.addSched(res.sched);
                    if (report.enabled()) {
                        Json rec = Json::object();
                        rec["section"] = "host-scaling";
                        rec["topology"] = tp.name;
                        rec["shards_per_chip"] = spc;
                        rec["host_threads"] = threads;
                        rec["host_seconds"] = res.hostSeconds;
                        rec["sim_cycles"] =
                            std::uint64_t(res.simCycles);
                        rec["instructions"] = res.instructions;
                        rec["mips"] = mips;
                        rec["speedup_vs_1t"] = speedup;
                        rec["serial_fraction"] =
                            res.sched.serialFraction();
                        rec["determinism_ok"] = det;
                        rec["sched"] =
                            bench::schedStatsJson(res.sched);
                        rec["prof"] = res.prof;
                report.addRecord(std::move(rec));
                    }
                }
            }
        }

        // Fast-path ablation: the same miss-heavy single-chip run
        // with the shard-local fast path off, then on, on a
        // whole-chip shard (every chip-local L3 hit is eligible).
        // The serial-fraction drop between the two records is the
        // headline number.
        const unsigned delta_spc = spc_arg ? spc_arg : 1;
        std::printf("# %-12s %10s %12s %10s\n", "fastpath",
                    "serial", "steps_def", "l3_local");
        for (const bool fast_path : {false, true}) {
            const RunResult res = runOnce(
                topos[0].topo, 1, delta_spc, fast_path,
                Workload::MissHeavy, iterations, keep_alive);
            std::printf("  %-12s %10.4f %12llu %10llu\n",
                        fast_path ? "on" : "off",
                        res.sched.serialFraction(),
                        (unsigned long long)
                            res.sched.stepsDeferred,
                        (unsigned long long)
                            res.sched.l3LocalHits);
            report.addSimWork(res.simCycles, res.instructions);
            report.addSched(res.sched);
            if (report.enabled()) {
                Json rec = Json::object();
                rec["section"] = "fastpath-delta";
                rec["topology"] = topos[0].name;
                rec["shards_per_chip"] = delta_spc;
                rec["host_threads"] = 1;
                rec["fast_path"] = fast_path;
                rec["host_seconds"] = res.hostSeconds;
                rec["sim_cycles"] = std::uint64_t(res.simCycles);
                rec["instructions"] = res.instructions;
                rec["speedup_vs_1t"] = 1.0;
                rec["serial_fraction"] =
                    res.sched.serialFraction();
                rec["determinism_ok"] = true;
                rec["sched"] = bench::schedStatsJson(res.sched);
                rec["prof"] = res.prof;
                report.addRecord(std::move(rec));
            }
        }
    }

    // Full-topology campaign: the paper's zEC12 (4 MCMs x 6 chips
    // x 6 cores = 144 CPUs) end-to-end, plus a 1024-CPU stretch
    // point when the directory can track that many CPUs. The
    // 144-core point sweeps host threads with the byte-identity
    // check; sim-MIPS and the phase breakdown are the layout-work
    // before/after numbers in EXPERIMENTS.md.
    {
        struct FullPoint
        {
            const char *name;
            mem::Topology topo;
            unsigned iters;
            std::vector<unsigned> threads;
        };
        const unsigned full_iters = smoke ? 8u : iterations;
        std::vector<FullPoint> points;
        points.push_back({"zEC12-144", mem::Topology(6, 6, 4),
                          full_iters,
                          smoke ? std::vector<unsigned>{1u, 2u}
                                : std::vector<unsigned>{1u, 2u,
                                                        4u}});
        if (!smoke &&
            mem::maxDirectoryCpus >= 1024 &&
            mem::maxDirectoryChips >= 32)
            points.push_back({"stretch-1024",
                              mem::Topology(32, 8, 4),
                              std::max(1u, full_iters / 8),
                              {1u}});

        std::printf("# Full-topology campaign\n");
        std::printf("# %-12s %5s %8s %12s %10s %10s %10s %5s\n",
                    "topology", "cpus", "threads", "host_sec",
                    "mips", "serial", "merge_sh", "det");
        for (const FullPoint &fp : points) {
            std::string ref_stats;
            for (const unsigned threads : fp.threads) {
                const RunResult res = runOnce(
                    fp.topo, threads, 0, true,
                    Workload::PrivateTx, fp.iters, keep_alive,
                    /*trim_geometry=*/true);
                if (threads == fp.threads.front())
                    ref_stats = res.statsText;
                const bool det = res.statsText == ref_stats;
                determinism_failed |= !det;
                const double mips = mipsOf(res);
                const double total = res.phase.parallelSeconds +
                                     res.phase.mergeSeconds;
                std::printf(
                    "  %-12s %5u %8u %12.4f %10.2f %10.4f"
                    " %10.4f %5s\n",
                    fp.name, fp.topo.numCpus(), threads,
                    res.hostSeconds, mips,
                    res.sched.serialFraction(),
                    total > 0.0 ? res.phase.mergeSeconds / total
                                : 0.0,
                    det ? "ok" : "FAIL");
                report.addSimWork(res.simCycles,
                                  res.instructions);
                report.addSched(res.sched);
                if (report.enabled()) {
                    Json rec = Json::object();
                    rec["section"] = "full-topology";
                    rec["topology"] = fp.name;
                    rec["total_cpus"] = fp.topo.numCpus();
                    rec["shards_per_chip"] = 1;
                    rec["host_threads"] = threads;
                    rec["iterations"] = fp.iters;
                    rec["host_seconds"] = res.hostSeconds;
                    rec["sim_cycles"] =
                        std::uint64_t(res.simCycles);
                    rec["instructions"] = res.instructions;
                    rec["mips"] = mips;
                    rec["serial_fraction"] =
                        res.sched.serialFraction();
                    rec["determinism_ok"] = det;
                    rec["phase"] = phaseJson(res.phase);
                    rec["sched"] =
                        bench::schedStatsJson(res.sched);
                    rec["prof"] = res.prof;
                report.addRecord(std::move(rec));
                }
            }
        }
    }

    // Auto-split cap probe: a wide single-chip topology swept
    // across sub-chip shard counts. effectiveShardsPerChip() caps
    // the automatic split at min(cores, 4); the sweep records what
    // higher splits would cost (serial fraction from SC1 home-group
    // deferrals, host time from extra quanta).
    if (!smoke) {
        const mem::Topology wide(16, 1, 1);
        std::printf("# Auto-split sweep (16-core single chip)\n");
        std::printf("# %-4s %12s %10s %10s %12s\n", "spc",
                    "host_sec", "mips", "serial", "quanta");
        for (const unsigned spc : {1u, 2u, 4u, 8u, 16u}) {
            const RunResult res = runOnce(
                wide, 1, spc, true, Workload::MissHeavy,
                iterations, keep_alive);
            std::printf("  %-4u %12.4f %10.2f %10.4f %12llu\n",
                        spc, res.hostSeconds, mipsOf(res),
                        res.sched.serialFraction(),
                        (unsigned long long)res.phase.quanta);
            report.addSimWork(res.simCycles, res.instructions);
            report.addSched(res.sched);
            if (report.enabled()) {
                Json rec = Json::object();
                rec["section"] = "autosplit-sweep";
                rec["topology"] = "16core-1chip";
                rec["shards_per_chip"] = spc;
                rec["host_threads"] = 1;
                rec["host_seconds"] = res.hostSeconds;
                rec["sim_cycles"] = std::uint64_t(res.simCycles);
                rec["instructions"] = res.instructions;
                rec["mips"] = mipsOf(res);
                rec["serial_fraction"] =
                    res.sched.serialFraction();
                rec["determinism_ok"] = true;
                rec["phase"] = phaseJson(res.phase);
                rec["sched"] = bench::schedStatsJson(res.sched);
                rec["prof"] = res.prof;
                report.addRecord(std::move(rec));
            }
        }
    }

    // Stale shared-L3 recency: under sub-chip sharding the fast
    // path installs chip-local L3 hits without touching the shared
    // L3's LRU (DESIGN.md §5b), so hot lines look cold to the
    // replacement policy. An L3-thrashing walk shows the cost as
    // extra L3 evictions and simulated cycles versus the
    // whole-chip partition that does maintain recency.
    if (!smoke) {
        const mem::Topology chip4(4, 1, 1);
        std::printf("# L3-recency (4-core chip, thrashing L3)\n");
        std::printf("# %-4s %12s %12s %12s %12s\n", "spc",
                    "sim_cycles", "l3_evicts", "fetch_miss",
                    "l3_local");
        for (const unsigned spc : {1u, 4u}) {
            const RunResult res = runOnce(
                chip4, 1, spc, true, Workload::L3Thrash,
                iterations, keep_alive);
            std::printf(
                "  %-4u %12llu %12llu %12llu %12llu\n", spc,
                (unsigned long long)res.simCycles,
                (unsigned long long)res.l3Evicts,
                (unsigned long long)res.fetchMisses,
                (unsigned long long)res.sched.l3LocalHits);
            report.addSimWork(res.simCycles, res.instructions);
            report.addSched(res.sched);
            if (report.enabled()) {
                Json rec = Json::object();
                rec["section"] = "l3-recency";
                rec["topology"] = "4core-1chip";
                rec["shards_per_chip"] = spc;
                rec["host_threads"] = 1;
                rec["host_seconds"] = res.hostSeconds;
                rec["sim_cycles"] = std::uint64_t(res.simCycles);
                rec["instructions"] = res.instructions;
                rec["l3_evicts"] = res.l3Evicts;
                rec["fetch_misses"] = res.fetchMisses;
                rec["serial_fraction"] =
                    res.sched.serialFraction();
                rec["determinism_ok"] = true;
                rec["sched"] = bench::schedStatsJson(res.sched);
                rec["prof"] = res.prof;
                report.addRecord(std::move(rec));
            }
        }
    }

    if (determinism_failed)
        std::fprintf(stderr, "scale: DETERMINISM VIOLATION — "
                             "stats diverged across host-thread "
                             "counts\n");
    const bool wrote = report.write();
    return (wrote && !determinism_failed) ? 0 : 1;
}
