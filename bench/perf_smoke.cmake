# Runs the scale bench in smoke mode with the phase profiler armed
# (ZTX_PROF=1) and validates the resulting BENCH_scale.json with
# json_check --require-prof: the check fails if any record carries
# determinism_ok=false, if the prof section is malformed, or if no
# record carries an enabled prof snapshot with sites. Invoked by the
# perf_smoke ctest target (run it under the LTO build with
# `ctest --preset perf`):
#   cmake -DBENCH_BIN=... -DCHECK_BIN=... -DOUT_DIR=...
#         -DBENCH_NAME=... [-DBENCH_ARGS=...] -P perf_smoke.cmake
foreach(var BENCH_BIN CHECK_BIN OUT_DIR BENCH_NAME)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "perf_smoke.cmake: ${var} not set")
    endif()
endforeach()
if(NOT DEFINED BENCH_ARGS)
    set(BENCH_ARGS "")
endif()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
        ZTX_BENCH_FAST=1 ZTX_BENCH_ITERS=20 ZTX_PROF=1
        "ZTX_BENCH_JSON=${OUT_DIR}"
        "${BENCH_BIN}" ${BENCH_ARGS}
    RESULT_VARIABLE bench_rc
    OUTPUT_VARIABLE bench_out
    ERROR_VARIABLE bench_err)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR
        "bench failed (rc=${bench_rc}):\n${bench_out}\n${bench_err}")
endif()

set(json_file "${OUT_DIR}/BENCH_${BENCH_NAME}.json")
if(NOT EXISTS "${json_file}")
    message(FATAL_ERROR "missing JSON report: ${json_file}")
endif()

execute_process(
    COMMAND "${CHECK_BIN}" --require-prof "${json_file}"
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "json_check --require-prof failed (rc=${check_rc}):\n"
        "${check_out}\n${check_err}")
endif()
message(STATUS "perf_smoke: ${json_file} OK")
