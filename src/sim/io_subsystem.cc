#include "io_subsystem.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/trace.hh"

namespace ztx::sim {

IoSubsystem::IoSubsystem(mem::Hierarchy &hier,
                         mem::MainMemory &memory, CpuId agent_id)
    : hier_(hier), memory_(memory), agentId_(agent_id), stats_("io")
{
    hier_.setClient(agentId_, this);
}

void
IoSubsystem::submit(const IoRequest &request)
{
    if (request.length == 0)
        ztx_fatal("zero-length I/O request");
    queue_.push_back(request);
    stats_.counter("requests").inc();
}

bool
IoSubsystem::idle() const
{
    return queue_.empty();
}

Cycles
IoSubsystem::pump()
{
    if (queue_.empty())
        return 0;

    IoRequest &req = queue_.front();
    const Addr addr = req.addr + progress_;
    const Addr line = lineAlign(addr);
    const std::uint64_t in_line = std::min<std::uint64_t>(
        req.length - progress_, line + lineSizeBytes - addr);

    const mem::AccessResult res =
        hier_.fetch(agentId_, line, req.write);
    if (res.rejected) {
        // A transactional owner stiff-armed the channel; the channel
        // repeats the request, and the owner's hang-avoidance or
        // completion eventually lets it through.
        stats_.counter("rejected").inc();
        return res.latency;
    }
    stats_.counter("lines").inc();

    if (req.write) {
        for (std::uint64_t i = 0; i < in_line; ++i)
            memory_.writeByte(addr + i, req.pattern);
    }
    // Reads are functional no-ops beyond the coherence traffic: the
    // data is observed from MainMemory (pre-commit transactional
    // stores are invisible there by construction, and the demote XI
    // this fetch sent guarantees no stale exclusive copy).

    progress_ += in_line;
    if (progress_ >= req.length) {
        ztx_trace(trace::Category::Io, (req.write ? "DMA write"
                                                  : "DMA read"),
                  " done addr=0x", std::hex, req.addr, std::dec,
                  " len=", req.length);
        queue_.pop_front();
        progress_ = 0;
        ++completed_;
        stats_.counter("completed").inc();
    }
    return res.latency;
}

std::uint64_t
IoSubsystem::deviceRead(Addr addr, unsigned size) const
{
    return memory_.read(addr, size);
}

mem::XiResponse
IoSubsystem::incomingXi(const mem::XiContext &ctx)
{
    // The channel subsystem holds no transactional state and always
    // yields its lines.
    (void)ctx;
    return mem::XiResponse::Accept;
}

void
IoSubsystem::l1Evicted(Addr line, std::uint8_t flags)
{
    (void)line;
    (void)flags;
}

} // namespace ztx::sim
