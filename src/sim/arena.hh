/**
 * @file
 * Quantum-scoped bump allocation for the sharded scheduler.
 *
 * The parallel phase produces small, short-lived records — deferred
 * steps, buffered solo operations, and the barrier's merged and
 * sorted copies of both — whose lifetime is exactly one quantum:
 * written during the phase, consumed at the barrier, dead after it.
 * Allocating them from the global heap every quantum is pure churn;
 * an Arena instead hands out memory by bumping a pointer through
 * retained chunks and recycles everything with an O(1) reset() at
 * the quantum barrier. Chunks are never returned to the host
 * allocator until destruction, so after warm-up a steady-state
 * quantum performs no host allocation at all.
 *
 * Each shard owns a private Arena (no cross-thread contention
 * during the parallel phase) and the machine owns one for the
 * barrier's merge scratch; both are reset at the barrier, under the
 * serial phase, so no reader can hold arena memory across a reset.
 *
 * ArenaVector is the minimal growable array on top: trivially
 * copyable elements, doubling growth by arena re-allocation (the
 * old block is simply abandoned — reset() reclaims it), and a
 * release() that forgets the storage when the arena rewinds.
 */

#ifndef ZTX_SIM_ARENA_HH
#define ZTX_SIM_ARENA_HH

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace ztx::sim {

/** Chunked bump allocator with O(1) whole-arena reset. */
class Arena
{
  public:
    /** @param chunk_bytes Default size of each retained chunk. */
    explicit Arena(std::size_t chunk_bytes = 64 * 1024)
        : chunkBytes_(chunk_bytes)
    {
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Uninitialized storage for @p n objects of type @p T. */
    template <typename T>
    T *
    allocArray(std::size_t n)
    {
        static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>);
        return static_cast<T *>(
            allocRaw(n * sizeof(T), alignof(T)));
    }

    /**
     * Rewind the arena: every previous allocation is dead, every
     * chunk is retained for reuse. O(1) apart from bookkeeping.
     */
    void
    reset()
    {
        cur_ = 0;
        off_ = 0;
    }

    /** Retained chunk count (growth stops once warm). */
    std::size_t chunks() const { return chunks_.size(); }

    /** Total bytes of retained chunk storage. */
    std::size_t
    retainedBytes() const
    {
        std::size_t n = 0;
        for (const Chunk &c : chunks_)
            n += c.size;
        return n;
    }

  private:
    struct Chunk
    {
        std::unique_ptr<std::byte[]> mem;
        std::size_t size;
    };

    void *
    allocRaw(std::size_t bytes, std::size_t align)
    {
        while (true) {
            if (cur_ < chunks_.size()) {
                Chunk &c = chunks_[cur_];
                const std::size_t aligned =
                    (off_ + align - 1) & ~(align - 1);
                if (aligned + bytes <= c.size) {
                    off_ = aligned + bytes;
                    return c.mem.get() + aligned;
                }
                ++cur_;
                off_ = 0;
                continue;
            }
            // Oversize requests get a dedicated chunk; either way
            // the chunk is retained across reset().
            const std::size_t size =
                bytes + align > chunkBytes_ ? bytes + align
                                            : chunkBytes_;
            chunks_.push_back(
                {std::make_unique<std::byte[]>(size), size});
            off_ = 0;
        }
    }

    std::size_t chunkBytes_;
    std::vector<Chunk> chunks_;
    std::size_t cur_ = 0;
    std::size_t off_ = 0;
};

/**
 * Growable array of trivially copyable @p T backed by an Arena.
 * Must be release()d before (or at) the backing arena's reset().
 */
template <typename T>
class ArenaVector
{
    static_assert(std::is_trivially_copyable_v<T> &&
                  std::is_trivially_destructible_v<T>);

  public:
    ArenaVector() = default;

    /** Bind to @p arena (once, before first push_back). */
    void bind(Arena &arena) { arena_ = &arena; }

    void
    push_back(const T &v)
    {
        if (size_ == cap_)
            grow();
        data_[size_++] = v;
    }

    T *begin() { return data_; }
    T *end() { return data_ + size_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }
    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Forget contents, keep the current arena block. */
    void clear() { size_ = 0; }

    /**
     * Forget contents *and* storage — required when the backing
     * arena is about to reset (the block becomes dead memory).
     */
    void
    release()
    {
        data_ = nullptr;
        size_ = 0;
        cap_ = 0;
    }

  private:
    void
    grow()
    {
        const std::size_t next = cap_ == 0 ? 16 : cap_ * 2;
        T *nd = arena_->allocArray<T>(next);
        if (size_ != 0)
            std::memcpy(nd, data_, size_ * sizeof(T));
        data_ = nd;
        cap_ = next;
    }

    Arena *arena_ = nullptr;
    T *data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t cap_ = 0;
};

} // namespace ztx::sim

#endif // ZTX_SIM_ARENA_HH
