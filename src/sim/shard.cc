#include "shard.hh"

#include <algorithm>

#include "common/prof.hh"
#include "sim/machine.hh"

namespace ztx::sim {

Shard::Shard(Machine &machine, unsigned chip, unsigned group,
             std::vector<CpuId> cpus)
    : machine_(machine), chip_(chip), group_(group),
      cpus_(std::move(cpus))
{
    deferred_.bind(arena_);
    soloOps_.bind(arena_);
}

void
Shard::push(Cycles t, CpuId id)
{
    machine_.heapKey_[id] = t;
    heap_.push({t, id});
}

void
Shard::requestSolo(CpuId cpu)
{
    if (machine_.parallelPhase_) {
        soloOps_.push_back({curTime_, cpu, true});
        return;
    }
    machine_.requestSolo(cpu);
}

void
Shard::releaseSolo(CpuId cpu)
{
    if (machine_.parallelPhase_) {
        soloOps_.push_back({curTime_, cpu, false});
        return;
    }
    machine_.releaseSolo(cpu);
}

CpuId
Shard::soloHolder() const
{
    // Stable during the parallel phase: solo transitions are applied
    // only at the barrier, so every shard observes the same holder
    // for the whole quantum regardless of host-thread count.
    return machine_.soloCpu_;
}

void
Shard::beginRun()
{
    deferred_.release();
    soloOps_.release();
    arena_.reset();
    steps_ = extDelivered_ = extSkipped_ = progress_ = 0;
    l3Local_ = 0;
    curTime_ = machine_.now_;
    lastEventAt_ = machine_.now_;
    // The heap is carried across run() calls: a member CPU only
    // needs a fresh entry when its ready time moved while the heap
    // was cold (program rebind, bounded-run resume) — the old entry,
    // if any, is then stale and filtered on pop. beginRun() runs
    // serially, so the machine counter is safe to bump here.
    for (const CpuId id : cpus_) {
        if (machine_.cpus_[id]->halted())
            continue;
        if (machine_.heapKey_[id] == machine_.readyAt_[id])
            continue; // live entry already queued
        push(machine_.readyAt_[id], id);
        machine_.heapReinsertsCounter_.inc();
    }
}

Cycles
Shard::nextEventTime() const
{
    return heap_.empty() ? ~Cycles(0) : heap_.top().first;
}

void
Shard::runQuantum(Cycles q_end)
{
    while (!heap_.empty() && heap_.top().first < q_end) {
        const auto [t, id] = heap_.top();
        heap_.pop();
        if (t != machine_.readyAt_[id])
            continue; // stale entry
        // The live entry is consumed: invalidate its key so that a
        // path that does not re-push (halt, deferral) leaves the CPU
        // marked as unqueued for beginRun()'s carry check.
        machine_.heapKey_[id] = ~Cycles(0);
        if (machine_.cpus_[id]->halted())
            continue;

        // Solo mode: park everyone but the holder until the next
        // barrier (the holder may release there). The park target is
        // the quantum boundary, which depends only on the schedule,
        // not on host-thread count.
        const CpuId solo = machine_.soloCpu_;
        if (solo != invalidCpu && id != solo) {
            machine_.readyAt_[id] = q_end;
            push(q_end, id);
            continue;
        }

        curTime_ = t;
        lastEventAt_ = t;

        if (machine_.cfg_.externalInterruptPeriod &&
            t >= machine_.nextInterrupt_[id]) {
            machine_.cpus_[id]->deliverExternalInterrupt();
            ++extDelivered_;
            // Same catch-up rule as the legacy scheduler: at most
            // one interrupt per period boundary, skipped periods
            // are counted, never delivered as a burst.
            const Cycles period = machine_.cfg_.externalInterruptPeriod;
            machine_.nextInterrupt_[id] += period;
            if (machine_.nextInterrupt_[id] <= t) {
                const Cycles missed =
                    (t - machine_.nextInterrupt_[id]) / period + 1;
                extSkipped_ += missed;
                machine_.nextInterrupt_[id] += missed * period;
            }
        }

        if (machine_.injector_)
            machine_.injector_->beforeStep(id, t);

        core::Cpu &cpu = *machine_.cpus_[id];
        cpu.setLocalOnly(true);
        Cycles cost;
        {
            ZTX_PROF_SCOPE("cpu.step");
            cost = cpu.step();
        }
        cpu.setLocalOnly(false);
        // Fast-path L3 hits are counted even for a step that later
        // defers on another line: the partial fetches really
        // happened (and make the re-executed step's leading lines
        // private hits), deterministically in both cases.
        l3Local_ += cpu.consumeShardL3Hits();
        if (cpu.deferredStep()) {
            // The step needs to leave the shard: nothing was
            // charged or moved (interrupt delivery and injector
            // draws above are not repeated at the barrier). The CPU
            // blocks (no heap entry) until the barrier re-executes
            // the step serially, where it is counted.
            deferred_.push_back({t, id});
            continue;
        }
        ++steps_;
        machine_.readyAt_[id] = t + cost + cpu.consumePendingStall();
        if (!cpu.halted())
            push(machine_.readyAt_[id], id);
    }
}

} // namespace ztx::sim
