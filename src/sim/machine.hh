/**
 * @file
 * The zTX machine: topology, memory, hierarchy, CPUs, and the
 * deterministic scheduler that advances them.
 *
 * Scheduling model: each CPU has a ready time in global cycles; the
 * machine repeatedly steps the CPU with the smallest ready time
 * (ties broken by CPU id), adding the step's cycle cost plus any
 * pending stall (abort penalties, millicode backoff). Coherence
 * actions happen synchronously inside a step, so a single-threaded,
 * fully reproducible simulation emerges; concurrency shows up as the
 * interleaving of steps at cycle granularity.
 *
 * The machine also implements the millicode "broadcast-stop" (solo
 * mode): while a CPU holds solo, every other CPU is parked until
 * release — the paper's last-resort guarantee for constrained
 * transactions.
 */

#ifndef ZTX_SIM_MACHINE_HH
#define ZTX_SIM_MACHINE_HH

#include <deque>
#include <memory>
#include <ostream>
#include <queue>
#include <vector>

#include "common/json.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/config.hh"
#include "core/cpu.hh"
#include "inject/fault_injector.hh"
#include "inject/fault_plan.hh"
#include "debug/os_model.hh"
#include "sim/io_subsystem.hh"
#include "debug/page_table.hh"
#include "mem/geometry.hh"
#include "mem/hierarchy.hh"
#include "mem/latency_model.hh"
#include "mem/main_memory.hh"
#include "mem/topology.hh"
#include "sim/arena.hh"

namespace ztx::inject {
class ScheduleSteer;
}

namespace ztx::sim {

class Shard;

/** Everything configurable about a machine. */
struct MachineConfig
{
    mem::Topology topology{6, 4, 5};
    mem::LatencyModel latency{};
    mem::HierarchyGeometry geometry{};
    core::TmConfig tm{};

    /** CPUs to instantiate; 0 means all of the topology. */
    unsigned activeCpus = 0;

    /** Master seed; per-CPU RNGs derive from it. */
    std::uint64_t seed = 1;

    /**
     * Period of per-CPU asynchronous (external) interruptions in
     * cycles; 0 disables them.
     */
    Cycles externalInterruptPeriod = 0;

    /**
     * Instantiate the I/O (channel) subsystem. It occupies the last
     * CPU slot of the topology on the coherence fabric, so
     * activeCpus must leave that slot free.
     */
    bool enableIo = false;

    /**
     * Fault-injection campaign (chaos testing, src/inject). The
     * default plan is inert: no injector is instantiated and the
     * machine behaves exactly as without the subsystem.
     */
    inject::FaultPlan faults{};

    /**
     * Forward-progress watchdog: if no CPU retires a progress event
     * (transaction commit, measured-region close, halt) and the
     * channel subsystem completes no transfer for this many cycles,
     * run() stops deterministically, records a diagnosis bundle
     * (watchdogReport()), and returns instead of spinning forever.
     * 0 disables the watchdog.
     */
    Cycles watchdogCycles = 0;

    /**
     * Scheduler selection. 0 (default): the legacy exact
     * single-threaded heap scheduler. >= 1: the sharded quantum
     * scheduler — one event queue per chip, synchronized at fixed
     * quanta of LatencyModel::minFabricLatency() cycles, run on up
     * to this many host threads. Any hostThreads >= 1 produces
     * bit-identical results for a given config and seed (1 is the
     * determinism reference for 2, 4, ...); hostThreads = 0 may
     * interleave differently and is compared architecturally, not
     * statistically. Excluded from machineConfigJson() so stat
     * documents stay byte-comparable across host-thread counts.
     */
    unsigned hostThreads = 0;

    /**
     * Sub-chip sharding: split each chip of the sharded scheduler
     * into this many core-group shards (contiguous CPU id ranges).
     * 0 selects automatically: multi-chip topologies keep one shard
     * per chip; a single-chip topology splits into up to four
     * groups so the parallel scheduler still has work to spread.
     * Clamped to coresPerChip(). The partition is a pure function
     * of (this value, topology) — never of hostThreads — so every
     * host-thread count runs the identical partition and stays
     * bit-identical. Like hostThreads, this is serialized into
     * machineConfigJson() as the *effective* shards_per_chip value,
     * because changing the partition changes defer decisions and
     * hence simulated results.
     */
    unsigned hostShardsPerChip = 0;

    /**
     * Shard-local L3 fast path (DESIGN.md §5b): let a shard resolve
     * same-chip L3 hits and same-shard coherence entirely inside
     * the parallel phase instead of deferring them to the barrier,
     * and widen the quantum of whole-chip shards to the minimum
     * cross-chip latency. Off reproduces the pre-fast-path
     * scheduler (every non-private access defers); the toggle
     * changes simulated timing and is serialized.
     */
    bool shardLocalFastPath = true;

    /**
     * Schedule steering hook (enumeration-mode stepping, see
     * inject/steer.hh and src/litmus). When set, run() ignores
     * ready-time ordering and instead asks the steer to pick the
     * next CPU from the runnable set before every step; simulated
     * time still advances monotonically (stepping a CPU drags `now`
     * up to its ready time). Steered execution is exact and serial
     * by definition, so the constructor forces the legacy scheduler
     * — steered results can never depend on hostThreads. Non-owning;
     * must outlive the machine. Not serialized (a steered run is an
     * enumeration artifact, not a reproducible configuration).
     */
    inject::ScheduleSteer *steer = nullptr;
};

/**
 * The shard partition @p config resolves to: core groups per chip
 * for the sharded scheduler, 0 for the legacy scheduler. A pure
 * function of (hostShardsPerChip != 0, topology) — deliberately not
 * of hostThreads beyond its zero test.
 */
unsigned effectiveShardsPerChip(const MachineConfig &config);

/**
 * Host-side wall-clock breakdown of the sharded scheduler,
 * accumulated across run() calls: time spent inside the parallel
 * phase (shards running concurrently), time spent in the serial
 * barrier merge, and the number of quanta executed. Host timings
 * vary run to run, so this is deliberately NOT part of statsJson()
 * — the stats document must stay byte-comparable across host-thread
 * counts. bench/scale reads it through Machine::hostPhaseTimes()
 * and records it only in the bench JSON.
 */
struct HostPhaseTimes
{
    double parallelSeconds = 0.0;
    double mergeSeconds = 0.0;
    std::uint64_t quanta = 0;
};

/** A complete simulated SMP machine. */
class Machine : public core::CpuEnv
{
  public:
    explicit Machine(const MachineConfig &config);
    ~Machine() override;

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /** Number of instantiated CPUs. */
    unsigned numCpus() const { return unsigned(cpus_.size()); }

    /** CPU @p id. */
    core::Cpu &cpu(CpuId id) { return *cpus_.at(id); }
    const core::Cpu &cpu(CpuId id) const { return *cpus_.at(id); }

    /** @name Shared components @{ */
    mem::MainMemory &memory() { return memory_; }
    mem::Hierarchy &hierarchy() { return hierarchy_; }
    const mem::Hierarchy &hierarchy() const { return hierarchy_; }
    debug::PageTable &pageTable() { return pageTable_; }
    debug::OsModel &os() { return os_; }
    /** The channel subsystem (fatal unless enableIo was set). */
    IoSubsystem &io();
    /** @} */

    /** Pump the I/O subsystem until its queue is empty. */
    void drainIo();

    /** Bind @p program to CPU @p id (resets its PSW). */
    void setProgram(CpuId id, const isa::Program *program);

    /** Bind @p program to every CPU. */
    void setProgramAll(const isa::Program *program);

    /**
     * Run until every CPU halts or @p max_cycles elapse from now.
     * @return Global cycles elapsed during this call.
     */
    Cycles run(Cycles max_cycles = ~Cycles(0));

    /** True once every CPU has halted. */
    bool allHalted() const;

    /** Drain every CPU's buffered stores (host-side inspection). */
    void drainAllStores();

    /** Functional memory read merging all CPUs' store buffers. */
    std::uint64_t peekMem(Addr addr, unsigned size);

    /** Write all stats (machine, hierarchy, OS, CPUs) to @p os. */
    void dumpStats(std::ostream &out);

    /**
     * The complete machine state as one JSON document: run metadata
     * (seed, topology, active CPUs, TM configuration, elapsed
     * cycles) plus the machine, hierarchy, OS, I/O, and per-CPU
     * stat groups.
     */
    Json statsJson() const;

    /** Serialize statsJson(). @param indent as Json::write. */
    void dumpStatsJson(std::ostream &out, int indent = 2) const;

    /** The configuration this machine was built from. */
    const MachineConfig &config() const { return cfg_; }

    /** Sharded-scheduler host time breakdown (see HostPhaseTimes). */
    const HostPhaseTimes &hostPhaseTimes() const
    {
        return phaseTimes_;
    }

    /** Machine-level stats: scheduler steps, interrupts, solo. */
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** @name Fault injection & watchdog @{ */
    /** The fault injector (nullptr when the plan is inert). */
    inject::FaultInjector *injector() { return injector_.get(); }

    /** True once the forward-progress watchdog stopped a run. */
    bool watchdogFired() const { return watchdogFired_; }

    /**
     * Diagnosis bundle captured when the watchdog fired: solo-mode
     * state, per-CPU abort histories / TDB addresses / ladder
     * positions, and injection stats. Null before any firing.
     */
    const Json &watchdogReport() const { return watchdogReport_; }
    /** @} */

    /** @name core::CpuEnv @{ */
    Cycles now() const override { return now_; }
    void requestSolo(CpuId cpu) override;
    void releaseSolo(CpuId cpu) override;
    CpuId soloHolder() const override { return soloCpu_; }
    void noteProgress(CpuId cpu) override
    {
        (void)cpu;
        ++progressTicks_;
    }
    /** @} */

  private:
    friend class Shard;
    MachineConfig cfg_;
    mem::MainMemory memory_;
    mem::Hierarchy hierarchy_;
    debug::PageTable pageTable_;
    debug::OsModel os_;
    std::vector<std::unique_ptr<core::Cpu>> cpus_;

    Cycles now_ = 0;
    std::vector<Cycles> readyAt_;
    /**
     * The key each CPU's live shard-heap entry was pushed with
     * (~Cycles(0) when none). beginRun() carries the heaps across
     * run() calls and reinserts only CPUs whose ready time moved
     * while the heap was cold, instead of rebuilding from scratch.
     */
    std::vector<Cycles> heapKey_;
    std::vector<Cycles> nextInterrupt_;
    StatGroup stats_{"machine"};
    /** @name Hot-path counters, resolved once @{ */
    Counter &stepCounter_ = stats_.counter("scheduler.steps");
    Counter &extDeliveredCounter_ =
        stats_.counter("external.delivered");
    Counter &extSkippedCounter_ =
        stats_.counter("external.periods_skipped");
    Counter &soloRequestCounter_ = stats_.counter("solo.requests");
    /**
     * Sharded-scheduler breakdown (all zero under the legacy
     * scheduler, but always registered so the JSON shape is
     * stable): steps completed inside the parallel phase, steps
     * re-executed serially at the barrier, their sum, fast-path L3
     * hits, and heap entries reinserted by beginRun().
     * steps_deferred / steps_total is the serial fraction the
     * fast path exists to shrink.
     */
    Counter &stepsLocalCounter_ =
        stats_.counter("sched.steps_local");
    Counter &stepsDeferredCounter_ =
        stats_.counter("sched.steps_deferred");
    Counter &stepsTotalCounter_ =
        stats_.counter("sched.steps_total");
    Counter &l3LocalHitsCounter_ =
        stats_.counter("sched.l3_local_hits");
    Counter &heapReinsertsCounter_ =
        stats_.counter("sched.heap_reinserts");
    /** @} */
    std::unique_ptr<IoSubsystem> io_;
    Cycles ioReadyAt_ = 0;
    /**
     * FIFO of CPUs waiting for (or holding) solo mode; the front is
     * the current holder. Millicode instances on different CPUs
     * serialize through this queue (paper §III.E).
     */
    std::deque<CpuId> soloQueue_;
    CpuId soloCpu_ = invalidCpu;

    void fireWatchdog();

    /** The legacy exact single-threaded scheduler (hostThreads=0). */
    Cycles runLegacy(Cycles max_cycles);

    /** The sharded quantum scheduler (hostThreads >= 1). */
    Cycles runSharded(Cycles max_cycles);

    /** Enumeration-mode stepping (cfg_.steer != nullptr). */
    Cycles runSteered(Cycles max_cycles);

    /** Run every shard's parallel phase up to @p q_end. */
    void runParallel(Cycles q_end);

    /**
     * Barrier work after a quantum: apply buffered solo operations,
     * flush buffered injector events, re-execute deferred steps,
     * pump I/O for the window, and fold shard deltas — all in a
     * deterministic order (see DESIGN.md).
     */
    void mergeQuantum(Cycles q_start, Cycles q_end);

    /** O(1) watchdog progress sum: CPU ticks + I/O completions. */
    std::uint64_t progressSum() const
    {
        return progressTicks_ + (io_ ? io_->completed() : 0);
    }

    std::unique_ptr<inject::FaultInjector> injector_;
    /** @name Watchdog state @{ */
    std::uint64_t lastProgressSum_ = 0;
    Cycles lastProgressAt_ = 0;
    bool watchdogFired_ = false;
    Json watchdogReport_;
    /** @} */

    /** @name Sharded scheduler state (hostThreads >= 1) @{ */
    std::vector<std::unique_ptr<Shard>> shards_;
    /** CPU id -> owning shard; nullptr in legacy mode. */
    std::vector<Shard *> shardOfCpu_;
    /** True while shards run concurrently (solo ops buffer). */
    bool parallelPhase_ = false;
    /**
     * Event-driven forward-progress counter (commits, region
     * closes, halts), bumped via noteProgress() in legacy mode and
     * folded from shard deltas at each barrier in sharded mode.
     */
    std::uint64_t progressTicks_ = 0;
    /** Completion time of the last barrier-pumped I/O line. */
    Cycles lastIoAt_ = 0;
    /** Host wall-clock breakdown, accumulated across run() calls. */
    HostPhaseTimes phaseTimes_;
    /**
     * Barrier merge scratch (sorted deferred-step / solo-op
     * copies): bump-allocated per quantum, rewound at the end of
     * every mergeQuantum().
     */
    Arena mergeArena_;
    /** @} */
};

/**
 * @p config as a JSON object (topology, TM parameters, seed, ...),
 * the run-metadata block of statsJson() and the bench reports.
 */
Json machineConfigJson(const MachineConfig &config);

} // namespace ztx::sim

#endif // ZTX_SIM_MACHINE_HH
