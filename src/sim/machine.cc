#include "machine.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <tuple>
#include <utility>

#include "common/log.hh"
#include "common/prof.hh"
#include "inject/steer.hh"
#include "sim/shard.hh"

namespace ztx::sim {

Machine::Machine(const MachineConfig &config)
    : cfg_(config),
      hierarchy_(config.topology, config.latency, config.geometry),
      os_(pageTable_)
{
    // Steered (enumeration-mode) execution is exact and serial by
    // definition: force the legacy scheduler so steered results can
    // never depend on host parallelism (litmus verdicts must be
    // byte-identical at any hostThreads setting).
    if (cfg_.steer)
        cfg_.hostThreads = 0;

    unsigned n = cfg_.activeCpus == 0 ? cfg_.topology.numCpus()
                                      : cfg_.activeCpus;
    if (n > cfg_.topology.numCpus())
        ztx_fatal("activeCpus ", n, " exceeds topology capacity ",
                  cfg_.topology.numCpus());

    // Sharded mode: one event queue per core group (the whole chip
    // by default), built before the CPUs so each CPU can bind its
    // shard as its environment. The partition — and hence every
    // defer decision — is a pure function of the configuration and
    // topology, never of hostThreads.
    if (cfg_.hostThreads > 0) {
        shardOfCpu_.assign(n, nullptr);
        const unsigned per_chip = cfg_.topology.coresPerChip();
        const unsigned spc = effectiveShardsPerChip(cfg_);
        const unsigned group_size = (per_chip + spc - 1) / spc;
        for (unsigned c = 0; c * per_chip < n; ++c) {
            for (unsigned g = 0; g < spc; ++g) {
                std::vector<CpuId> members;
                const unsigned first =
                    c * per_chip + g * group_size;
                const unsigned last = std::min(
                    {n, first + group_size, (c + 1) * per_chip});
                for (unsigned i = first; i < last; ++i)
                    members.push_back(i);
                if (members.empty())
                    continue;
                shards_.push_back(
                    std::make_unique<Shard>(*this, c, g, members));
                for (const CpuId id : members)
                    shardOfCpu_[id] = shards_.back().get();
            }
        }
        if (cfg_.shardLocalFastPath)
            hierarchy_.setShardPartition(spc, n);
    }

    cpus_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        core::CpuEnv &env =
            cfg_.hostThreads > 0
                ? static_cast<core::CpuEnv &>(*shardOfCpu_[i])
                : static_cast<core::CpuEnv &>(*this);
        cpus_.push_back(std::make_unique<core::Cpu>(
            i, hierarchy_, memory_, pageTable_, os_, env, cfg_.tm,
            cfg_.seed * 0x9e3779b97f4a7c15ULL + i + 1));
    }
    if (cfg_.enableIo) {
        const CpuId agent = cfg_.topology.numCpus() - 1;
        if (n > agent)
            ztx_fatal("enableIo needs the last topology CPU slot "
                      "free (activeCpus <= ",
                      agent, ")");
        io_ = std::make_unique<IoSubsystem>(hierarchy_, memory_,
                                            agent);
    }
    if (cfg_.faults.enabled()) {
        injector_ = std::make_unique<inject::FaultInjector>(
            cfg_.faults, cfg_.seed, hierarchy_, *this);
        for (auto &c : cpus_)
            injector_->attachCpu(*c);
        injector_->setShardedMode(cfg_.hostThreads > 0);
        hierarchy_.setXiDelayProbe(injector_.get());
    }
    readyAt_.assign(n, 0);
    heapKey_.assign(n, ~Cycles(0));
    nextInterrupt_.assign(n, 0);
    if (cfg_.externalInterruptPeriod) {
        // Stagger the timer ticks across CPUs.
        for (unsigned i = 0; i < n; ++i) {
            nextInterrupt_[i] = cfg_.externalInterruptPeriod +
                                (cfg_.externalInterruptPeriod * i) / n;
        }
    }
}

Machine::~Machine() = default;

unsigned
effectiveShardsPerChip(const MachineConfig &config)
{
    if (config.hostThreads == 0)
        return 0; // legacy scheduler: no shard partition
    const unsigned cores = config.topology.coresPerChip();
    unsigned spc = config.hostShardsPerChip;
    if (spc == 0) {
        // Auto: multi-chip topologies already parallelize across
        // chips; a single-chip topology is split into up to four
        // core groups so the parallel phase has work to spread.
        // The cap at four is deliberate: on a 16-core single-chip
        // topology the measured serial fraction climbs from ~2% at
        // one group to ~39% at sixteen (BENCH_scale.json,
        // autosplit-sweep) because each extra group shrinks the
        // per-line home-group hash's eligible share, converting
        // fast-path hits into deferred serial steps.
        spc = config.topology.numChips() > 1
                  ? 1
                  : std::min<unsigned>(cores, 4);
    }
    return std::min(spc, cores);
}

void
Machine::setProgram(CpuId id, const isa::Program *program)
{
    cpu(id).setProgram(program);
    readyAt_.at(id) = now_;
}

void
Machine::setProgramAll(const isa::Program *program)
{
    for (unsigned i = 0; i < numCpus(); ++i)
        setProgram(i, program);
}

bool
Machine::allHalted() const
{
    for (const auto &c : cpus_)
        if (!c->halted())
            return false;
    return true;
}

void
Machine::drainAllStores()
{
    for (const auto &c : cpus_)
        c->drainStores();
}

std::uint64_t
Machine::peekMem(Addr addr, unsigned size)
{
    drainAllStores();
    return memory_.read(addr, size);
}

void
Machine::requestSolo(CpuId cpu_id)
{
    // Millicode instances serialize: requesters queue FIFO; the
    // front of the queue holds solo mode.
    for (const CpuId queued : soloQueue_)
        if (queued == cpu_id)
            return;
    soloQueue_.push_back(cpu_id);
    soloCpu_ = soloQueue_.front();
    soloRequestCounter_.inc();
}

void
Machine::releaseSolo(CpuId cpu_id)
{
    std::erase(soloQueue_, cpu_id);
    soloCpu_ = soloQueue_.empty() ? invalidCpu : soloQueue_.front();
}

Cycles
Machine::run(Cycles max_cycles)
{
    if (cfg_.steer)
        return runSteered(max_cycles);
    return cfg_.hostThreads == 0 ? runLegacy(max_cycles)
                                 : runSharded(max_cycles);
}

Cycles
Machine::runLegacy(Cycles max_cycles)
{
    const Cycles start = now_;
    const bool bounded = max_cycles != ~Cycles(0);
    const Cycles end_cycle =
        bounded ? start + max_cycles : ~Cycles(0);

    using HeapEntry = std::pair<Cycles, CpuId>;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>>
        heap;
    for (unsigned i = 0; i < numCpus(); ++i)
        if (!cpus_[i]->halted())
            heap.push({readyAt_[i], i});

    // (Re-)arm the forward-progress watchdog for this run call.
    if (cfg_.watchdogCycles != 0) {
        lastProgressAt_ = now_;
        lastProgressSum_ = progressSum();
    }

    while (!heap.empty()) {
        const auto [t, id] = heap.top();
        heap.pop();
        if (t != readyAt_[id] || cpus_[id]->halted())
            continue; // stale entry

        // Solo mode: park everyone but the solo CPU. A halted
        // holder releases automatically (safety).
        if (soloCpu_ != invalidCpu && id != soloCpu_) {
            if (cpus_[soloCpu_]->halted()) {
                releaseSolo(soloCpu_);
            } else {
                // Small per-CPU jitter disperses the wake-up herd
                // when the holder releases.
                readyAt_[id] = std::max(readyAt_[soloCpu_], t) + 1 +
                               (id & 7);
                heap.push({readyAt_[id], id});
                continue;
            }
        }

        now_ = std::max(now_, t);
        if (now_ >= end_cycle) {
            heap.push({readyAt_[id], id});
            now_ = end_cycle;
            break;
        }

        // Channel (I/O) traffic interleaves with CPU steps.
        while (io_ && !io_->idle() && ioReadyAt_ <= now_) {
            const Cycles io_cost = io_->pump();
            ioReadyAt_ =
                std::max(ioReadyAt_, now_) +
                std::max<Cycles>(io_cost, 1);
        }

        if (cfg_.externalInterruptPeriod &&
            now_ >= nextInterrupt_[id]) {
            cpus_[id]->deliverExternalInterrupt();
            extDeliveredCounter_.inc();
            // A CPU parked for many periods (e.g. behind solo mode,
            // or stalled on a long interrupt-service penalty) must
            // not receive the missed ticks as a back-to-back burst:
            // skip past every period boundary already behind us so
            // at most one interrupt is delivered per period.
            const Cycles period = cfg_.externalInterruptPeriod;
            nextInterrupt_[id] += period;
            if (nextInterrupt_[id] <= now_) {
                const Cycles missed =
                    (now_ - nextInterrupt_[id]) / period + 1;
                extSkippedCounter_.inc(missed);
                nextInterrupt_[id] += missed * period;
            }
        }

        if (injector_)
            injector_->beforeStep(id, now_);

        stepCounter_.inc();
        Cycles cost;
        {
            ZTX_PROF_SCOPE("cpu.step");
            cost = cpus_[id]->step();
        }
        cost += cpus_[id]->consumePendingStall();
        // Zero-cost steps model superscalar grouping; the CPU's
        // dispatch credit bounds how many occur per cycle.
        readyAt_[id] = now_ + cost;
        if (!cpus_[id]->halted())
            heap.push({readyAt_[id], id});

        if (cfg_.watchdogCycles != 0) {
            // O(1) per step: commits/region-closes/halts bump
            // progressTicks_ via noteProgress(); channel transfers
            // count through io_->completed().
            const std::uint64_t sum = progressSum();
            if (sum != lastProgressSum_) {
                lastProgressSum_ = sum;
                lastProgressAt_ = now_;
            } else if (now_ - lastProgressAt_ >=
                       cfg_.watchdogCycles) {
                fireWatchdog();
                break;
            }
        }
    }
    return now_ - start;
}

Cycles
Machine::runSteered(Cycles max_cycles)
{
    const Cycles start = now_;
    const bool bounded = max_cycles != ~Cycles(0);
    const Cycles end_cycle =
        bounded ? start + max_cycles : ~Cycles(0);

    std::vector<CpuId> runnable;
    runnable.reserve(numCpus());
    while (true) {
        // A halted solo holder releases automatically (safety),
        // exactly as in the legacy scheduler.
        while (soloCpu_ != invalidCpu && cpus_[soloCpu_]->halted())
            releaseSolo(soloCpu_);

        runnable.clear();
        if (soloCpu_ != invalidCpu) {
            runnable.push_back(soloCpu_);
        } else {
            for (unsigned i = 0; i < numCpus(); ++i)
                if (!cpus_[i]->halted())
                    runnable.push_back(i);
        }
        if (runnable.empty())
            break;

        const CpuId id = cfg_.steer->choose(runnable);
        if (id == invalidCpu)
            break; // steer-requested stop (frontier cap)
        if (id >= numCpus() || cpus_[id]->halted() ||
            (soloCpu_ != invalidCpu && id != soloCpu_))
            ztx_fatal("steer chose unrunnable CPU ", id);

        // Time advances monotonically: stepping a CPU whose ready
        // time is in the future drags `now` forward; stepping one
        // that was ready in the past costs nothing extra. Cycle
        // values are therefore schedule-dependent in steered mode —
        // only the step order is the enumeration's contract.
        now_ = std::max(now_, readyAt_[id]);
        if (now_ >= end_cycle) {
            now_ = end_cycle;
            break;
        }

        while (io_ && !io_->idle() && ioReadyAt_ <= now_) {
            const Cycles io_cost = io_->pump();
            ioReadyAt_ = std::max(ioReadyAt_, now_) +
                         std::max<Cycles>(io_cost, 1);
        }

        if (cfg_.externalInterruptPeriod &&
            now_ >= nextInterrupt_[id]) {
            cpus_[id]->deliverExternalInterrupt();
            extDeliveredCounter_.inc();
            const Cycles period = cfg_.externalInterruptPeriod;
            nextInterrupt_[id] += period;
            if (nextInterrupt_[id] <= now_) {
                const Cycles missed =
                    (now_ - nextInterrupt_[id]) / period + 1;
                extSkippedCounter_.inc(missed);
                nextInterrupt_[id] += missed * period;
            }
        }

        // Evaluated before *every* steered step, so scripted
        // scenario triggers fire exactly at enumeration decision
        // points (see inject/steer.hh).
        if (injector_)
            injector_->beforeStep(id, now_);

        stepCounter_.inc();
        Cycles cost = cpus_[id]->step();
        cost += cpus_[id]->consumePendingStall();
        readyAt_[id] = now_ + cost;
    }
    return now_ - start;
}

Cycles
Machine::runSharded(Cycles max_cycles)
{
    const Cycles start = now_;
    const bool bounded = max_cycles != ~Cycles(0);
    const Cycles end_cycle =
        bounded ? start + max_cycles : ~Cycles(0);
    // Whole-chip shards with the fast path resolve every intra-chip
    // interaction inside the parallel phase, so their quantum only
    // has to bound cross-chip visibility. Sub-chip shards (and runs
    // with the fast path disabled) still defer some same-chip
    // traffic and keep the tighter all-paths bound.
    const Cycles quantum =
        cfg_.shardLocalFastPath && effectiveShardsPerChip(cfg_) == 1
            ? cfg_.latency.minCrossChipLatency()
            : cfg_.latency.minFabricLatency();

    for (auto &sh : shards_)
        sh->beginRun();
    lastIoAt_ = now_;

    if (cfg_.watchdogCycles != 0) {
        lastProgressAt_ = now_;
        lastProgressSum_ = progressSum();
    }

    // Persistent worker pool for this run call. Only spun up when
    // more than one host thread can actually be used; the 1-thread
    // (and 1-shard) case runs the quanta inline, and is the
    // bit-identical reference for every other thread count.
    const unsigned workers =
        std::min<unsigned>(cfg_.hostThreads,
                           unsigned(shards_.size()));
    struct Gate
    {
        std::mutex m;
        std::condition_variable cv;
        unsigned count = 0;
        std::uint64_t generation = 0;
        const unsigned parties;
        explicit Gate(unsigned p) : parties(p) {}
        void arriveAndWait()
        {
            std::unique_lock lock(m);
            const std::uint64_t gen = generation;
            if (++count == parties) {
                count = 0;
                ++generation;
                cv.notify_all();
            } else {
                cv.wait(lock,
                        [&] { return generation != gen; });
            }
        }
    };
    Gate start_gate(workers + 1), end_gate(workers + 1);
    Cycles pool_q_end = 0;
    bool pool_stop = false;
    std::vector<std::thread> pool;
    if (workers > 1) {
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) {
            pool.emplace_back([this, w, workers, &start_gate,
                               &end_gate, &pool_q_end,
                               &pool_stop] {
                while (true) {
                    start_gate.arriveAndWait();
                    if (pool_stop)
                        return;
                    // Static strided shard assignment: which host
                    // thread runs a shard never affects results.
                    for (std::size_t s = w; s < shards_.size();
                         s += workers)
                        shards_[s]->runQuantum(pool_q_end);
                    end_gate.arriveAndWait();
                }
            });
        }
    }

    enum class Exit { Natural, Bounded, Watchdog };
    Exit exit_kind = Exit::Natural;
    Cycles q_start = now_;
    while (true) {
        // Earliest pending work across shards and the channel.
        Cycles next_ev = ~Cycles(0);
        for (const auto &sh : shards_)
            next_ev = std::min(next_ev, sh->nextEventTime());
        if (io_ && !io_->idle())
            next_ev = std::min(next_ev,
                               std::max(ioReadyAt_, q_start));
        if (next_ev == ~Cycles(0))
            break; // every CPU halted, channel idle
        if (bounded && next_ev >= end_cycle) {
            exit_kind = Exit::Bounded;
            break;
        }
        // Skip empty quanta, staying on the quantum grid so the
        // barrier schedule is a pure function of the event times.
        if (next_ev > q_start)
            q_start += ((next_ev - q_start) / quantum) * quantum;
        const Cycles q_end =
            std::min(q_start + quantum, end_cycle);

        const auto host_t0 = std::chrono::steady_clock::now();
        parallelPhase_ = true;
        // Directory entries may only be created at serial points;
        // the guard turns a fast-path access that escaped its shard
        // into a deterministic panic instead of a silent race.
        hierarchy_.setConcurrentPhase(true);
        {
            ZTX_PROF_SCOPE("sched.parallel");
            if (pool.empty()) {
                runParallel(q_end);
            } else {
                pool_q_end = q_end;
                start_gate.arriveAndWait();
                end_gate.arriveAndWait();
            }
        }
        hierarchy_.setConcurrentPhase(false);
        parallelPhase_ = false;
        const auto host_t1 = std::chrono::steady_clock::now();

        now_ = q_end;
        {
            ZTX_PROF_SCOPE("sched.merge");
            mergeQuantum(q_start, q_end);
        }

        const auto host_t2 = std::chrono::steady_clock::now();
        phaseTimes_.parallelSeconds +=
            std::chrono::duration<double>(host_t1 - host_t0)
                .count();
        phaseTimes_.mergeSeconds +=
            std::chrono::duration<double>(host_t2 - host_t1)
                .count();
        ++phaseTimes_.quanta;

        if (cfg_.watchdogCycles != 0) {
            const std::uint64_t sum = progressSum();
            if (sum != lastProgressSum_) {
                lastProgressSum_ = sum;
                lastProgressAt_ = q_end;
            } else if (q_end - lastProgressAt_ >=
                       cfg_.watchdogCycles) {
                fireWatchdog();
                exit_kind = Exit::Watchdog;
                break;
            }
        }
        q_start = q_end;
    }

    if (!pool.empty()) {
        pool_stop = true;
        start_gate.arriveAndWait();
        for (auto &t : pool)
            t.join();
    }

    if (exit_kind == Exit::Bounded) {
        now_ = end_cycle;
    } else if (exit_kind == Exit::Natural) {
        // Land the clock on the last event actually executed, not
        // the quantum boundary, to match event-driven time.
        Cycles final_t = start;
        for (const auto &sh : shards_)
            final_t = std::max(final_t, sh->lastEventAt_);
        final_t = std::max(final_t, lastIoAt_);
        now_ = std::min(final_t, end_cycle);
    }
    return now_ - start;
}

void
Machine::runParallel(Cycles q_end)
{
    for (auto &sh : shards_)
        sh->runQuantum(q_end);
}

void
Machine::mergeQuantum(Cycles q_start, Cycles q_end)
{
    // 0. Complete the L2 installs the sub-chip fast path parked in
    //    the per-CPU overflow buffers: the real inserts and their
    //    eviction side effects (directory removal, inclusivity
    //    LRU-XI) run here, serially, in cpu-ascending FIFO order,
    //    before any deferred step can observe the caches.
    hierarchy_.drainL2Overflow();

    // 1. Solo-mode arbitration, ordered by (cycle, chip, group,
    //    issue sequence). A halted holder releases automatically,
    //    as in the legacy scheduler.
    struct TaggedSolo
    {
        Cycles at;
        unsigned chip;
        unsigned group;
        std::size_t seq;
        CpuId cpu;
        bool request;
    };
    // Merge scratch comes from the barrier arena: exact-size bump
    // allocations, recycled wholesale at the end of this merge.
    std::size_t n_solo = 0;
    for (const auto &sh : shards_)
        n_solo += sh->soloOps_.size();
    TaggedSolo *solo = mergeArena_.allocArray<TaggedSolo>(n_solo);
    std::size_t solo_k = 0;
    for (auto &sh : shards_) {
        for (std::size_t i = 0; i < sh->soloOps_.size(); ++i) {
            const Shard::SoloOp &op = sh->soloOps_[i];
            solo[solo_k++] = {op.at, sh->chip_, sh->group_, i,
                              op.cpu, op.request};
        }
        sh->soloOps_.clear();
    }
    std::sort(solo, solo + n_solo,
              [](const TaggedSolo &a, const TaggedSolo &b) {
                  return std::tie(a.at, a.chip, a.group, a.seq) <
                         std::tie(b.at, b.chip, b.group, b.seq);
              });
    for (std::size_t i = 0; i < n_solo; ++i) {
        const TaggedSolo &op = solo[i];
        if (op.request)
            requestSolo(op.cpu);
        else
            releaseSolo(op.cpu);
    }
    while (soloCpu_ != invalidCpu && cpus_[soloCpu_]->halted())
        releaseSolo(soloCpu_);

    // 2. Buffered injector events (XI storms, scheduled faults),
    //    merged in (cycle, cpu) order inside the injector.
    if (injector_)
        injector_->flushSharded(q_end);

    // 3. Deferred steps, re-executed serially in (cycle, cpu)
    //    order — equivalent to (cycle, chip, group, cpu) since
    //    shards own contiguous id ranges in chip-major, group-minor
    //    order. A CPU parked behind a freshly granted solo holder
    //    retries next quantum instead.
    struct TaggedStep
    {
        Cycles at;
        CpuId cpu;
    };
    std::size_t n_steps = 0;
    for (const auto &sh : shards_)
        n_steps += sh->deferred_.size();
    TaggedStep *steps = mergeArena_.allocArray<TaggedStep>(n_steps);
    std::size_t step_k = 0;
    for (auto &sh : shards_) {
        for (const Shard::DeferredStep &d : sh->deferred_)
            steps[step_k++] = {d.at, d.cpu};
        sh->deferred_.clear();
    }
    std::sort(steps, steps + n_steps,
              [](const TaggedStep &a, const TaggedStep &b) {
                  return std::tie(a.at, a.cpu) <
                         std::tie(b.at, b.cpu);
              });
    for (std::size_t si = 0; si < n_steps; ++si) {
        const TaggedStep &d = steps[si];
        core::Cpu &c = *cpus_[d.cpu];
        if (c.halted())
            continue;
        Shard &sh = *shardOfCpu_[d.cpu];
        if (soloCpu_ != invalidCpu && d.cpu != soloCpu_) {
            readyAt_[d.cpu] = q_end;
            sh.push(q_end, d.cpu);
            continue;
        }
        sh.curTime_ = d.at;
        sh.lastEventAt_ = std::max(sh.lastEventAt_, d.at);
        stepCounter_.inc();
        stepsDeferredCounter_.inc();
        stepsTotalCounter_.inc();
        Cycles cost = c.step();
        cost += c.consumePendingStall();
        readyAt_[d.cpu] = d.at + cost;
        if (!c.halted())
            sh.push(readyAt_[d.cpu], d.cpu);
    }
    // Solo grants from re-steps: a halted holder still releases.
    while (soloCpu_ != invalidCpu && cpus_[soloCpu_]->halted())
        releaseSolo(soloCpu_);

    // 4. Channel traffic for the window.
    if (io_ && !io_->idle()) {
        Cycles io_now = std::max(ioReadyAt_, q_start);
        while (!io_->idle() && io_now < q_end) {
            const Cycles cost = io_->pump();
            io_now += std::max<Cycles>(cost, 1);
            lastIoAt_ = io_now;
        }
        ioReadyAt_ = io_now;
    }

    // 5. Fold shard deltas into the machine counters, and rewind
    //    the quantum arenas: every deferred-step / solo record and
    //    every merge scratch array is dead past this point, so the
    //    shard arenas and the barrier arena recycle their chunks in
    //    O(1) (no host allocation in a steady-state quantum).
    for (auto &sh : shards_) {
        stepCounter_.inc(sh->steps_);
        stepsLocalCounter_.inc(sh->steps_);
        stepsTotalCounter_.inc(sh->steps_);
        l3LocalHitsCounter_.inc(sh->l3Local_);
        extDeliveredCounter_.inc(sh->extDelivered_);
        extSkippedCounter_.inc(sh->extSkipped_);
        progressTicks_ += sh->progress_;
        sh->steps_ = sh->extDelivered_ = sh->extSkipped_ = 0;
        sh->progress_ = sh->l3Local_ = 0;
        sh->deferred_.release();
        sh->soloOps_.release();
        sh->arena_.reset();
    }
    mergeArena_.reset();
    stats_.counter("scheduler.quanta").inc();
}

void
Machine::fireWatchdog()
{
    watchdogFired_ = true;
    stats_.counter("watchdog.fired").inc();

    Json doc = Json::object();
    doc["kind"] = "ztx.watchdog";
    doc["fired_at_cycle"] = std::uint64_t(now_);
    doc["window_cycles"] = std::uint64_t(cfg_.watchdogCycles);
    doc["solo_holder"] = soloCpu_ == invalidCpu
                             ? std::int64_t(-1)
                             : std::int64_t(soloCpu_);
    Json queue = Json::array();
    for (const CpuId c : soloQueue_)
        queue.push(c);
    doc["solo_queue"] = std::move(queue);

    Json cpu_diags = Json::array();
    for (const auto &c : cpus_)
        cpu_diags.push(c->diagnosticJson());
    doc["cpus"] = std::move(cpu_diags);
    if (injector_) {
        doc["inject"] = injector_->stats().toJson();
        doc["fault_plan"] = inject::faultPlanJson(cfg_.faults);
        // What the injector actually did, and most recently: the
        // first question a stall diagnosis asks is "was the chaos
        // plan firing, and at whom".
        doc["inject_fired"] = injector_->firedCountsJson();
        doc["inject_recent"] = injector_->recentFiresJson();
    }
    watchdogReport_ = std::move(doc);

    ztx_warn("forward-progress watchdog fired at cycle ", now_,
             ": no commit/region/halt for ", cfg_.watchdogCycles,
             " cycles (livelock); see Machine::watchdogReport()");
}

IoSubsystem &
Machine::io()
{
    if (!io_)
        ztx_fatal("I/O subsystem not enabled (MachineConfig::"
                  "enableIo)");
    return *io_;
}

void
Machine::drainIo()
{
    if (!io_)
        return;
    while (!io_->idle()) {
        const Cycles cost = io_->pump();
        now_ += std::max<Cycles>(cost, 1);
    }
}

void
Machine::dumpStats(std::ostream &out)
{
    stats_.dump(out);
    hierarchy_.stats().dump(out);
    os_.stats().dump(out);
    if (io_)
        io_->stats().dump(out);
    if (injector_)
        injector_->stats().dump(out);
    for (const auto &c : cpus_)
        c->stats().dump(out);
}

Json
Machine::statsJson() const
{
    Json doc = Json::object();
    doc["kind"] = "ztx.machine.stats";

    Json meta = machineConfigJson(cfg_);
    meta["instantiated_cpus"] = numCpus();
    meta["elapsed_cycles"] = std::uint64_t(now_);
    doc["meta"] = std::move(meta);

    doc["machine"] = stats_.toJson();
    doc["hierarchy"] = hierarchy_.stats().toJson();
    doc["os"] = os_.stats().toJson();
    if (io_)
        doc["io"] = io_->stats().toJson();
    if (injector_)
        doc["inject"] = injector_->stats().toJson();
    if (watchdogFired_)
        doc["watchdog"] = watchdogReport_;

    Json cpu_groups = Json::array();
    for (const auto &c : cpus_)
        cpu_groups.push(c->stats().toJson());
    doc["cpus"] = std::move(cpu_groups);
    return doc;
}

void
Machine::dumpStatsJson(std::ostream &out, int indent) const
{
    statsJson().write(out, indent);
    out << '\n';
}

Json
machineConfigJson(const MachineConfig &config)
{
    Json meta = Json::object();
    meta["seed"] = config.seed;
    meta["active_cpus"] = config.activeCpus;
    meta["external_interrupt_period"] =
        std::uint64_t(config.externalInterruptPeriod);
    meta["io_enabled"] = config.enableIo;
    meta["watchdog_cycles"] = std::uint64_t(config.watchdogCycles);
    // hostThreads is deliberately NOT serialized: stat documents
    // must stay byte-comparable across host-thread counts (the
    // determinism contract of the sharded scheduler). The shard
    // partition and fast-path toggle ARE serialized — they change
    // defer decisions and hence simulated results.
    meta["shards_per_chip"] = effectiveShardsPerChip(config);
    meta["shard_local_fast_path"] = config.shardLocalFastPath;
    if (config.faults.enabled())
        meta["faults"] = inject::faultPlanJson(config.faults);

    Json topo = Json::object();
    topo["cores_per_chip"] = config.topology.coresPerChip();
    topo["chips_per_mcm"] = config.topology.chipsPerMcm();
    topo["mcms"] = config.topology.numMcms();
    topo["total_cpus"] = config.topology.numCpus();
    meta["topology"] = std::move(topo);

    Json tm = Json::object();
    tm["max_nesting_depth"] = config.tm.maxNestingDepth;
    tm["store_cache_entries"] = config.tm.storeCacheEntries;
    tm["xi_reject_abort_threshold"] =
        config.tm.xiRejectAbortThreshold;
    tm["dispatch_width"] = config.tm.dispatchWidth;
    tm["ppa_base_delay"] = std::uint64_t(config.tm.ppaBaseDelay);
    tm["ppa_max_shift"] = config.tm.ppaMaxShift;
    tm["speculative_overmark_prob"] =
        config.tm.speculativeOvermarkProb;
    tm["lru_extension_enabled"] = config.tm.lruExtensionEnabled;
    tm["stiff_arm_enabled"] = config.tm.stiffArmEnabled;
    meta["tm"] = std::move(tm);
    return meta;
}

} // namespace ztx::sim
