#include "machine.hh"

#include <algorithm>
#include <functional>
#include <utility>

#include "common/log.hh"

namespace ztx::sim {

Machine::Machine(const MachineConfig &config)
    : cfg_(config),
      hierarchy_(config.topology, config.latency, config.geometry),
      os_(pageTable_)
{
    unsigned n = cfg_.activeCpus == 0 ? cfg_.topology.numCpus()
                                      : cfg_.activeCpus;
    if (n > cfg_.topology.numCpus())
        ztx_fatal("activeCpus ", n, " exceeds topology capacity ",
                  cfg_.topology.numCpus());
    cpus_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        cpus_.push_back(std::make_unique<core::Cpu>(
            i, hierarchy_, memory_, pageTable_, os_, *this, cfg_.tm,
            cfg_.seed * 0x9e3779b97f4a7c15ULL + i + 1));
    }
    if (cfg_.enableIo) {
        const CpuId agent = cfg_.topology.numCpus() - 1;
        if (n > agent)
            ztx_fatal("enableIo needs the last topology CPU slot "
                      "free (activeCpus <= ",
                      agent, ")");
        io_ = std::make_unique<IoSubsystem>(hierarchy_, memory_,
                                            agent);
    }
    if (cfg_.faults.enabled()) {
        injector_ = std::make_unique<inject::FaultInjector>(
            cfg_.faults, cfg_.seed, hierarchy_, *this);
        for (auto &c : cpus_)
            injector_->attachCpu(*c);
        hierarchy_.setXiDelayProbe(injector_.get());
    }
    readyAt_.assign(n, 0);
    nextInterrupt_.assign(n, 0);
    if (cfg_.externalInterruptPeriod) {
        // Stagger the timer ticks across CPUs.
        for (unsigned i = 0; i < n; ++i) {
            nextInterrupt_[i] = cfg_.externalInterruptPeriod +
                                (cfg_.externalInterruptPeriod * i) / n;
        }
    }
}

Machine::~Machine() = default;

void
Machine::setProgram(CpuId id, const isa::Program *program)
{
    cpu(id).setProgram(program);
    readyAt_.at(id) = now_;
}

void
Machine::setProgramAll(const isa::Program *program)
{
    for (unsigned i = 0; i < numCpus(); ++i)
        setProgram(i, program);
}

bool
Machine::allHalted() const
{
    for (const auto &c : cpus_)
        if (!c->halted())
            return false;
    return true;
}

void
Machine::drainAllStores()
{
    for (const auto &c : cpus_)
        c->drainStores();
}

std::uint64_t
Machine::peekMem(Addr addr, unsigned size)
{
    drainAllStores();
    return memory_.read(addr, size);
}

void
Machine::requestSolo(CpuId cpu_id)
{
    // Millicode instances serialize: requesters queue FIFO; the
    // front of the queue holds solo mode.
    for (const CpuId queued : soloQueue_)
        if (queued == cpu_id)
            return;
    soloQueue_.push_back(cpu_id);
    soloCpu_ = soloQueue_.front();
    soloRequestCounter_.inc();
}

void
Machine::releaseSolo(CpuId cpu_id)
{
    std::erase(soloQueue_, cpu_id);
    soloCpu_ = soloQueue_.empty() ? invalidCpu : soloQueue_.front();
}

Cycles
Machine::run(Cycles max_cycles)
{
    const Cycles start = now_;
    const bool bounded = max_cycles != ~Cycles(0);
    const Cycles end_cycle =
        bounded ? start + max_cycles : ~Cycles(0);

    using HeapEntry = std::pair<Cycles, CpuId>;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>>
        heap;
    for (unsigned i = 0; i < numCpus(); ++i)
        if (!cpus_[i]->halted())
            heap.push({readyAt_[i], i});

    // (Re-)arm the forward-progress watchdog for this run call.
    if (cfg_.watchdogCycles != 0) {
        lastProgressAt_ = now_;
        lastProgressSum_ = 0;
        for (const auto &c : cpus_)
            lastProgressSum_ += c->progressEvents();
    }

    while (!heap.empty()) {
        const auto [t, id] = heap.top();
        heap.pop();
        if (t != readyAt_[id] || cpus_[id]->halted())
            continue; // stale entry

        // Solo mode: park everyone but the solo CPU. A halted
        // holder releases automatically (safety).
        if (soloCpu_ != invalidCpu && id != soloCpu_) {
            if (cpus_[soloCpu_]->halted()) {
                releaseSolo(soloCpu_);
            } else {
                // Small per-CPU jitter disperses the wake-up herd
                // when the holder releases.
                readyAt_[id] = std::max(readyAt_[soloCpu_], t) + 1 +
                               (id & 7);
                heap.push({readyAt_[id], id});
                continue;
            }
        }

        now_ = std::max(now_, t);
        if (now_ >= end_cycle) {
            heap.push({readyAt_[id], id});
            now_ = end_cycle;
            break;
        }

        // Channel (I/O) traffic interleaves with CPU steps.
        while (io_ && !io_->idle() && ioReadyAt_ <= now_) {
            const Cycles io_cost = io_->pump();
            ioReadyAt_ =
                std::max(ioReadyAt_, now_) +
                std::max<Cycles>(io_cost, 1);
        }

        if (cfg_.externalInterruptPeriod &&
            now_ >= nextInterrupt_[id]) {
            cpus_[id]->deliverExternalInterrupt();
            extDeliveredCounter_.inc();
            // A CPU parked for many periods (e.g. behind solo mode,
            // or stalled on a long interrupt-service penalty) must
            // not receive the missed ticks as a back-to-back burst:
            // skip past every period boundary already behind us so
            // at most one interrupt is delivered per period.
            const Cycles period = cfg_.externalInterruptPeriod;
            nextInterrupt_[id] += period;
            if (nextInterrupt_[id] <= now_) {
                const Cycles missed =
                    (now_ - nextInterrupt_[id]) / period + 1;
                extSkippedCounter_.inc(missed);
                nextInterrupt_[id] += missed * period;
            }
        }

        if (injector_)
            injector_->beforeStep(id, now_);

        stepCounter_.inc();
        Cycles cost = cpus_[id]->step();
        cost += cpus_[id]->consumePendingStall();
        // Zero-cost steps model superscalar grouping; the CPU's
        // dispatch credit bounds how many occur per cycle.
        readyAt_[id] = now_ + cost;
        if (!cpus_[id]->halted())
            heap.push({readyAt_[id], id});

        if (cfg_.watchdogCycles != 0) {
            std::uint64_t sum = 0;
            for (const auto &c : cpus_)
                sum += c->progressEvents();
            if (sum != lastProgressSum_) {
                lastProgressSum_ = sum;
                lastProgressAt_ = now_;
            } else if (now_ - lastProgressAt_ >=
                       cfg_.watchdogCycles) {
                fireWatchdog();
                break;
            }
        }
    }
    return now_ - start;
}

void
Machine::fireWatchdog()
{
    watchdogFired_ = true;
    stats_.counter("watchdog.fired").inc();

    Json doc = Json::object();
    doc["kind"] = "ztx.watchdog";
    doc["fired_at_cycle"] = std::uint64_t(now_);
    doc["window_cycles"] = std::uint64_t(cfg_.watchdogCycles);
    doc["solo_holder"] = soloCpu_ == invalidCpu
                             ? std::int64_t(-1)
                             : std::int64_t(soloCpu_);
    Json queue = Json::array();
    for (const CpuId c : soloQueue_)
        queue.push(c);
    doc["solo_queue"] = std::move(queue);

    Json cpu_diags = Json::array();
    for (const auto &c : cpus_)
        cpu_diags.push(c->diagnosticJson());
    doc["cpus"] = std::move(cpu_diags);
    if (injector_) {
        doc["inject"] = injector_->stats().toJson();
        doc["fault_plan"] = inject::faultPlanJson(cfg_.faults);
    }
    watchdogReport_ = std::move(doc);

    ztx_warn("forward-progress watchdog fired at cycle ", now_,
             ": no commit/region/halt for ", cfg_.watchdogCycles,
             " cycles (livelock); see Machine::watchdogReport()");
}

IoSubsystem &
Machine::io()
{
    if (!io_)
        ztx_fatal("I/O subsystem not enabled (MachineConfig::"
                  "enableIo)");
    return *io_;
}

void
Machine::drainIo()
{
    if (!io_)
        return;
    while (!io_->idle()) {
        const Cycles cost = io_->pump();
        now_ += std::max<Cycles>(cost, 1);
    }
}

void
Machine::dumpStats(std::ostream &out)
{
    stats_.dump(out);
    hierarchy_.stats().dump(out);
    os_.stats().dump(out);
    if (io_)
        io_->stats().dump(out);
    if (injector_)
        injector_->stats().dump(out);
    for (const auto &c : cpus_)
        c->stats().dump(out);
}

Json
Machine::statsJson() const
{
    Json doc = Json::object();
    doc["kind"] = "ztx.machine.stats";

    Json meta = machineConfigJson(cfg_);
    meta["instantiated_cpus"] = numCpus();
    meta["elapsed_cycles"] = std::uint64_t(now_);
    doc["meta"] = std::move(meta);

    doc["machine"] = stats_.toJson();
    doc["hierarchy"] = hierarchy_.stats().toJson();
    doc["os"] = os_.stats().toJson();
    if (io_)
        doc["io"] = io_->stats().toJson();
    if (injector_)
        doc["inject"] = injector_->stats().toJson();
    if (watchdogFired_)
        doc["watchdog"] = watchdogReport_;

    Json cpu_groups = Json::array();
    for (const auto &c : cpus_)
        cpu_groups.push(c->stats().toJson());
    doc["cpus"] = std::move(cpu_groups);
    return doc;
}

void
Machine::dumpStatsJson(std::ostream &out, int indent) const
{
    statsJson().write(out, indent);
    out << '\n';
}

Json
machineConfigJson(const MachineConfig &config)
{
    Json meta = Json::object();
    meta["seed"] = config.seed;
    meta["active_cpus"] = config.activeCpus;
    meta["external_interrupt_period"] =
        std::uint64_t(config.externalInterruptPeriod);
    meta["io_enabled"] = config.enableIo;
    meta["watchdog_cycles"] = std::uint64_t(config.watchdogCycles);
    if (config.faults.enabled())
        meta["faults"] = inject::faultPlanJson(config.faults);

    Json topo = Json::object();
    topo["cores_per_chip"] = config.topology.coresPerChip();
    topo["chips_per_mcm"] = config.topology.chipsPerMcm();
    topo["mcms"] = config.topology.numMcms();
    topo["total_cpus"] = config.topology.numCpus();
    meta["topology"] = std::move(topo);

    Json tm = Json::object();
    tm["max_nesting_depth"] = config.tm.maxNestingDepth;
    tm["store_cache_entries"] = config.tm.storeCacheEntries;
    tm["xi_reject_abort_threshold"] =
        config.tm.xiRejectAbortThreshold;
    tm["dispatch_width"] = config.tm.dispatchWidth;
    tm["ppa_base_delay"] = std::uint64_t(config.tm.ppaBaseDelay);
    tm["ppa_max_shift"] = config.tm.ppaMaxShift;
    tm["speculative_overmark_prob"] =
        config.tm.speculativeOvermarkProb;
    tm["lru_extension_enabled"] = config.tm.lruExtensionEnabled;
    tm["stiff_arm_enabled"] = config.tm.stiffArmEnabled;
    meta["tm"] = std::move(tm);
    return meta;
}

} // namespace ztx::sim
