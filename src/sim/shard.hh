/**
 * @file
 * One shard of the sharded parallel scheduler: the event queue of
 * one core group of one chip (the whole chip by default), runnable
 * on a host thread.
 *
 * The Machine synchronizes shards in fixed cycle quanta (gem5-style)
 * sized to the fastest path that can cross a shard boundary: the
 * minimum cross-chip latency for whole-chip shards with the
 * shard-local fast path, the minimum fabric latency otherwise.
 * Within a quantum every shard steps only shard-owned work — own
 * L1/L2 hits, own transactional bits, own store cache, self-aborts,
 * and (with the fast path) same-chip L3 hits and same-shard
 * coherence — while anything that would leave the shard, touch the
 * OS, or arbitrate solo mode is *deferred* and re-executed serially
 * at the quantum barrier in a deterministic order. Because the
 * decision to defer depends only on the shard partition and cache
 * state — never on how many host threads drive the shards — an
 * N-thread run is bit-identical to the 1-thread run. See DESIGN.md
 * ("Sharded deterministic parallel scheduling").
 *
 * The Shard is also the core::CpuEnv of its member CPUs: the clock
 * is the shard-local current time, forward-progress ticks accumulate
 * in a shard-local delta, and solo-mode requests issued during the
 * parallel phase are buffered for ordered application at the
 * barrier.
 */

#ifndef ZTX_SIM_SHARD_HH
#define ZTX_SIM_SHARD_HH

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "core/config.hh"
#include "sim/arena.hh"

namespace ztx::sim {

class Machine;

/** Per-chip event queue of the sharded scheduler. */
class Shard final : public core::CpuEnv
{
  public:
    /**
     * @param machine Owning machine (shared state, merge point).
     * @param chip Chip index this shard covers (merge tie-break).
     * @param group Core-group index within the chip (sub-chip
     *        sharding; 0 for whole-chip shards; merge tie-break).
     * @param cpus Member CPU ids (a contiguous id range).
     */
    Shard(Machine &machine, unsigned chip, unsigned group,
          std::vector<CpuId> cpus);

    /** @name core::CpuEnv @{ */
    Cycles now() const override { return curTime_; }
    void requestSolo(CpuId cpu) override;
    void releaseSolo(CpuId cpu) override;
    CpuId soloHolder() const override;
    void noteProgress(CpuId cpu) override
    {
        (void)cpu;
        ++progress_;
    }
    /** @} */

    /**
     * Prepare the shard for a run() call. The event heap is carried
     * across calls: only member CPUs whose ready time changed while
     * the heap was cold (program rebinds, bounded-run resume) are
     * reinserted, counted in sched.heap_reinserts.
     */
    void beginRun();

    /** Earliest pending event, or ~Cycles(0) when the heap is dry. */
    Cycles nextEventTime() const;

    /**
     * Parallel phase: process every event strictly before @p q_end,
     * stepping member CPUs in local-only mode. Deferred steps are
     * recorded for the barrier; CPUs parked by solo mode are pushed
     * to @p q_end.
     */
    void runQuantum(Cycles q_end);

    /** Chip index. */
    unsigned chip() const { return chip_; }

    /** Core-group index within the chip. */
    unsigned group() const { return group_; }

  private:
    friend class Machine;

    /**
     * Push a heap entry for @p id at time @p t, recording the key
     * so beginRun() can tell live entries from stale ones. All
     * pushes go through here.
     */
    void push(Cycles t, CpuId id);

    /** A step that must be re-executed serially at the barrier. */
    struct DeferredStep
    {
        Cycles at;
        CpuId cpu;
    };

    /** A solo request/release buffered during the parallel phase. */
    struct SoloOp
    {
        Cycles at;
        CpuId cpu;
        bool request; ///< false = release
    };

    Machine &machine_;
    unsigned chip_;
    unsigned group_;
    std::vector<CpuId> cpus_;

    using HeapEntry = std::pair<Cycles, CpuId>;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>>
        heap_;

    /** Shard-local clock: the event time currently executing. */
    Cycles curTime_ = 0;
    /** Time of the last event this shard actually executed. */
    Cycles lastEventAt_ = 0;

    /**
     * Quantum-lived records live in the shard's private arena:
     * written during the parallel phase (no cross-thread
     * contention), consumed and released at the barrier, where the
     * arena rewinds — steady-state quanta perform no host
     * allocation (DESIGN.md §5b).
     */
    Arena arena_;
    ArenaVector<DeferredStep> deferred_;
    ArenaVector<SoloOp> soloOps_;

    /** @name Per-quantum deltas, folded at the barrier @{ */
    std::uint64_t steps_ = 0;
    std::uint64_t extDelivered_ = 0;
    std::uint64_t extSkipped_ = 0;
    std::uint64_t progress_ = 0;
    /** Shard-local fast-path L3 hits (sched.l3_local_hits). */
    std::uint64_t l3Local_ = 0;
    /** @} */
};

} // namespace ztx::sim

#endif // ZTX_SIM_SHARD_HH
