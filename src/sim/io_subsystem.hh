/**
 * @file
 * The I/O subsystem as a coherence participant.
 *
 * The architecture requires transactions to be isolated against the
 * I/O subsystem in both directions (paper §II.A): I/O cannot observe
 * pending transactional stores, and an I/O access that conflicts
 * with a transactional footprint aborts the transaction (abort code
 * 6 / I/O interruption class). zTX models channel traffic as DMA
 * descriptors executed between CPU steps: each transfer acquires its
 * lines through the same XI protocol as a CPU and therefore drives
 * the same conflict machinery.
 *
 * The subsystem occupies a reserved CPU slot in the topology/
 * directory (its CacheClient never holds transactional state and
 * never rejects).
 */

#ifndef ZTX_SIM_IO_SUBSYSTEM_HH
#define ZTX_SIM_IO_SUBSYSTEM_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/hierarchy.hh"
#include "mem/main_memory.hh"

namespace ztx::sim {

/** One DMA transfer request. */
struct IoRequest
{
    bool write = false;       ///< device -> memory when true
    Addr addr = 0;
    std::uint32_t length = 0; ///< bytes
    /** For writes: the byte pattern to store (repeated). */
    std::uint8_t pattern = 0;
};

/** Channel-subsystem model driving DMA through the hierarchy. */
class IoSubsystem : public mem::CacheClient
{
  public:
    /**
     * @param hier Shared hierarchy; the subsystem registers itself
     *        as the client of @p agent_id.
     * @param memory Functional backing store.
     * @param agent_id Reserved CPU slot used on the coherence
     *        fabric (must not be an active CPU).
     */
    IoSubsystem(mem::Hierarchy &hier, mem::MainMemory &memory,
                CpuId agent_id);

    /** Queue a transfer; it executes across subsequent pump calls. */
    void submit(const IoRequest &request);

    /**
     * Advance the channel engine: process up to one cache line of
     * the current transfer. Rejected XIs retry on later pumps.
     * @return Cycle cost consumed (0 when idle).
     */
    Cycles pump();

    /** True when no transfer is pending or in flight. */
    bool idle() const;

    /** Completed transfer count. */
    std::uint64_t completed() const { return completed_; }

    /** Read bytes the way the device would (after its transfer). */
    std::uint64_t deviceRead(Addr addr, unsigned size) const;

    /** Stats ("io.*"): transfers, lines, rejects. */
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** @name mem::CacheClient (never rejects, never aborts) @{ */
    mem::XiResponse incomingXi(const mem::XiContext &ctx) override;
    void l1Evicted(Addr line, std::uint8_t flags) override;
    /** @} */

  private:
    mem::Hierarchy &hier_;
    mem::MainMemory &memory_;
    CpuId agentId_;
    std::deque<IoRequest> queue_;
    std::uint64_t progress_ = 0; ///< bytes done of the front request
    std::uint64_t completed_ = 0;
    StatGroup stats_;
};

} // namespace ztx::sim

#endif // ZTX_SIM_IO_SUBSYSTEM_HH
