/**
 * @file
 * The paper's §IV micro-benchmark: each CPU repeatedly picks 1 or 4
 * random variables from a pool (each on its own cache line) and
 * increments (or, for figure 5(d), reads) them, synchronized by one
 * of the methods under comparison. Time is measured per operation
 * between lock/TBEGIN and unlock/TEND (the MARKB/MARKE region),
 * excluding random-number generation, exactly as in the paper.
 */

#ifndef ZTX_WORKLOAD_UPDATE_BENCH_HH
#define ZTX_WORKLOAD_UPDATE_BENCH_HH

#include <cstdint>
#include <string>

#include "isa/program.hh"
#include "sim/machine.hh"
#include "workload/report.hh"

namespace ztx::workload {

/** Synchronization methods compared in figure 5. */
enum class SyncMethod : std::uint8_t
{
    None,       ///< unsynchronized (upper bound; loses updates)
    CoarseLock, ///< one spin lock for the whole pool
    FineLock,   ///< one spin lock per variable (1-variable ops only)
    RwLock,     ///< read-write lock (read-only ops)
    TBegin,     ///< figure-1 transaction with lock fallback
    TBeginc     ///< figure-3 constrained transaction, no fallback
};

/** Display name of @p method. */
const char *syncMethodName(SyncMethod method);

/** One experiment configuration. */
struct UpdateBenchConfig
{
    unsigned cpus = 2;
    unsigned poolSize = 1;   ///< variables in the pool
    unsigned varsPerOp = 1;  ///< 1 or 4
    bool readOnly = false;   ///< figure 5(d): read instead of update
    SyncMethod method = SyncMethod::CoarseLock;
    unsigned iterations = 200; ///< operations per CPU
    std::uint64_t seed = 1;
    sim::MachineConfig machine{}; ///< topology/geometry/costs
};

/** Aggregated outcome of one experiment run. */
struct UpdateBenchResult
{
    /** Mean measured region length (cycles per operation). */
    double meanRegionCycles = 0;

    /** System throughput: cpus / meanRegionCycles (paper §IV). */
    double throughput = 0;

    std::uint64_t txCommits = 0;
    std::uint64_t txAborts = 0;
    std::uint64_t xiRejects = 0;
    Cycles elapsedCycles = 0;

    /** Instructions executed, summed over CPUs. */
    std::uint64_t instructions = 0;

    /** Abort counts keyed by tx::abortReasonName(). */
    std::map<std::string, std::uint64_t> abortsByReason;

    /** Parallel-scheduler activity (zero on the legacy path). */
    SchedStatsSummary sched;

    /** Poison/machine-check activity (zero without RAS faults). */
    RasSummary ras;

    /** Sum of all pool variables after the run (correctness). */
    std::uint64_t poolSum = 0;
};

/** Build the benchmark program for @p cfg. */
isa::Program buildUpdateProgram(const UpdateBenchConfig &cfg);

/** Build the machine, run the benchmark, collect results. */
UpdateBenchResult runUpdateBench(const UpdateBenchConfig &cfg);

/**
 * Reference throughput for the paper's normalization: 2 CPUs
 * updating a single variable from a pool of 1 under the coarse
 * lock. All reported series are scaled so this equals 100.
 */
double referenceThroughput(const sim::MachineConfig &machine,
                           unsigned iterations = 400);

} // namespace ztx::workload

#endif // ZTX_WORKLOAD_UPDATE_BENCH_HH
