/**
 * @file
 * Sorted singly-linked-list set: the classic transactional-memory
 * data structure whose read set grows with the traversal length.
 *
 * Each operation walks the list from a head sentinel to the key's
 * sorted position and then looks it up, inserts it, or deletes it.
 * Synchronization is either a global spin lock or figure-1 lock
 * elision. Long traversals exercise the LRU-extension read-footprint
 * machinery and give conflicts a realistic profile (every writer
 * invalidates a prefix of every concurrent reader's set).
 */

#ifndef ZTX_WORKLOAD_LIST_SET_HH
#define ZTX_WORKLOAD_LIST_SET_HH

#include <cstdint>

#include "inject/lincheck.hh"
#include "inject/oracle.hh"
#include "inject/order_infer.hh"
#include "isa/program.hh"
#include "sim/machine.hh"
#include "workload/report.hh"

namespace ztx::workload {

/** Linked-list set experiment configuration. */
struct ListSetBenchConfig
{
    unsigned cpus = 2;
    /** Keys are drawn from [1, keySpace]. */
    unsigned keySpace = 64;
    /** Fraction of the key space pre-inserted before measuring. */
    unsigned prefillPercent = 50;
    /** Operation mix; the remainder are deletes. */
    unsigned lookupPercent = 60;
    unsigned insertPercent = 20;
    bool useElision = false; ///< false: global spin lock
    unsigned iterations = 200;
    std::uint64_t seed = 1;
    /**
     * Record an operation history (OPLOGB/OPLOGE around every
     * region, OPLOGV version footprints inside) and check it for
     * linearizability after the run. Off: the generated program is
     * bit-identical to the unlogged one.
     */
    bool opLog = false;
    /** Per-CPU op-log ring capacity (overflow truncates). */
    std::size_t opLogCapacity = 1u << 16;
    sim::MachineConfig machine{};
};

/** Outcome of one list-set run. */
struct ListSetBenchResult
{
    double meanRegionCycles = 0;
    double throughput = 0;
    std::uint64_t txCommits = 0;
    std::uint64_t txAborts = 0;
    Cycles elapsedCycles = 0;
    /** Instructions executed, summed over CPUs. */
    std::uint64_t instructions = 0;
    /** Abort counts keyed by tx::abortReasonName(). */
    std::map<std::string, std::uint64_t> abortsByReason;

    /** Parallel-scheduler activity (zero on the legacy path). */
    SchedStatsSummary sched;

    /** Poison/machine-check activity (zero without RAS faults). */
    RasSummary ras;

    /** Final list length (walked host-side). */
    unsigned finalLength = 0;
    /** Keys strictly ascending along the walk. */
    bool sorted = false;
    /** finalLength matches prefill + the CPUs' net insert counts. */
    bool lengthConsistent = false;

    /** The forward-progress watchdog stopped the run (chaos). */
    bool watchdogFired = false;
    /** Structural verdict (inject::checkListSet). */
    inject::OracleReport oracle;
    /** History verdict (cfg.opLog; unchecked when logging is off). */
    inject::LinVerdict lincheck;
    /**
     * Full order-inference report behind `lincheck` (which mirrors
     * its verdict): whether the O(n log n) oracle inferred the
     * order or fell back to the DFS, and why.
     */
    inject::OrderInferReport orderInfer;
};

/** Build the generated program for @p cfg. */
isa::Program buildListSetProgram(const ListSetBenchConfig &cfg);

/** Run the experiment and validate the structure afterwards. */
ListSetBenchResult runListSetBench(const ListSetBenchConfig &cfg);

} // namespace ztx::workload

#endif // ZTX_WORKLOAD_LIST_SET_HH
