#include "queue.hh"

#include <iostream>

#include "common/log.hh"
#include "debug/replay_dump.hh"
#include "isa/assembler.hh"
#include "locks/lock_gen.hh"
#include "workload/layout.hh"
#include "workload/op_log.hh"
#include "workload/report.hh"

namespace ztx::workload {

using isa::Assembler;
using isa::Program;

namespace {

/** Queue anchor layout: head pointer at +0, tail pointer at +256. */
constexpr std::int64_t headDisp = 0;
constexpr std::int64_t tailDisp = 256;

/** Address of the initial dummy node. */
constexpr Addr dummyNodeAddr = queueBase + 0x1000;

} // namespace

Program
buildQueueProgram(const QueueBenchConfig &cfg)
{
    /*
     * Registers: R3/R5/R6 scratch, R4 node address, R8 iterations,
     * R9 queue anchor, R10 global lock, R11 backoff, R12 value,
     * R14 dequeue-success counter, R15 per-CPU arena bump pointer
     * (initialized host-side). R0..R2 belong to the lock helpers.
     */
    Assembler as;
    const locks::LockRegs lock_regs;
    as.la(9, 0, std::int64_t(queueBase));
    as.la(10, 0, std::int64_t(globalLockAddr));
    as.lhi(8, cfg.iterations);
    as.lhi(14, 0);
    as.label("iter");

    // --- Prepare a fresh node outside the synchronized region.
    as.lr(12, 8); // value = remaining-iteration count
    as.la(4, 15, 0);
    as.stg(12, 4, 0); // node.value
    as.lhi(3, 0);
    as.stg(3, 4, 8); // node.next = nullptr
    as.la(15, 15, 256);

    // --- Enqueue.
    const auto enqueue_body = [&] {
        as.lgfo(3, 9, tailDisp); // tail node (store intent)
        as.stg(4, 3, 8);         // tail->next = node
        as.stg(4, 9, tailDisp);  // tail = node
        // Version record: in the constrained TX it arms the commit
        // footprint (legal there, unlike OPLOGB/OPLOGE); on the
        // lock path it records the lock-line write.
        if (cfg.opLog)
            as.oplogv(10, 0);
    };
    if (cfg.opLog) {
        as.oplogb(std::uint32_t(inject::LinOpCode::QueueEnqueue),
                  12);
    }
    as.markb();
    if (cfg.useConstrainedTx) {
        as.tbeginc(0x00);
        enqueue_body();
        as.tend();
    } else {
        locks::SpinLock::emitAcquire(as, 10, 0, lock_regs, "enq");
        enqueue_body();
        locks::SpinLock::emitRelease(as, 10, 0, lock_regs);
    }
    as.marke();
    if (cfg.opLog)
        as.oploge(12); // enqueue result is its value (unchecked)

    // --- Dequeue.
    const auto dequeue_body = [&] {
        // Zero the result register inside the region so an aborted
        // attempt cannot leave a stale value behind; enqueued
        // values are >= 1, so 0 encodes "observed empty".
        if (cfg.opLog)
            as.lhi(6, 0);
        as.lgfo(3, 9, headDisp); // dummy/head node (store intent)
        as.lg(5, 3, 8);          // head->next
        as.cghi(5, 0);
        as.jz("deq_empty");      // forward branch: queue empty
        as.stg(5, 9, headDisp);  // head = next
        as.lg(6, 5, 0);          // value
        as.label("deq_empty");
        if (cfg.opLog)
            as.oplogv(10, 0);
    };
    if (cfg.opLog)
        as.oplogb(std::uint32_t(inject::LinOpCode::QueueDequeue), 0);
    as.markb();
    if (cfg.useConstrainedTx) {
        as.tbeginc(0x00);
        dequeue_body();
        as.tend();
    } else {
        locks::SpinLock::emitAcquire(as, 10, 0, lock_regs, "deq");
        dequeue_body();
        locks::SpinLock::emitRelease(as, 10, 0, lock_regs);
    }
    as.marke();
    if (cfg.opLog)
        as.oploge(6); // dequeued value, 0 when observed empty
    as.cghi(5, 0);
    as.jz("deq_was_empty");
    as.ahi(14, 1);
    as.label("deq_was_empty");

    as.brct(8, "iter");
    as.halt();
    return as.finish();
}

QueueBenchResult
runQueueBench(const QueueBenchConfig &cfg)
{
    sim::MachineConfig mcfg = cfg.machine;
    mcfg.activeCpus = cfg.cpus;
    mcfg.seed = cfg.seed;
    sim::Machine machine(mcfg);

    // Initial state: head = tail = dummy node with next = nullptr.
    machine.memory().write(queueBase + headDisp, dummyNodeAddr, 8);
    machine.memory().write(queueBase + tailDisp, dummyNodeAddr, 8);
    machine.memory().write(dummyNodeAddr + 8, 0, 8);

    const Program program = buildQueueProgram(cfg);
    machine.setProgramAll(&program);
    OpLog oplog(machine.numCpus(), cfg.opLogCapacity);
    for (unsigned i = 0; i < cfg.cpus; ++i) {
        machine.cpu(i).setGr(
            15, arenaBase + Addr(i) * arenaStride);
        if (cfg.opLog)
            machine.cpu(i).setOpRecorder(&oplog);
    }
    const Cycles elapsed = machine.run();
    QueueBenchResult res;
    res.watchdogFired = machine.watchdogFired();
    if (!machine.allHalted() && !res.watchdogFired)
        ztx_fatal("queue benchmark did not run to completion");

    res.elapsedCycles = elapsed;
    double region_sum = 0;
    std::uint64_t region_count = 0;
    for (unsigned i = 0; i < machine.numCpus(); ++i) {
        auto &cpu = machine.cpu(i);
        region_sum += cpu.regionCycles().sum();
        region_count += cpu.regionCycles().count();
        res.dequeuedNonEmpty += cpu.gr(14);
    }
    const TxStatsSummary tx = collectTxStats(machine);
    res.sched = collectSchedStats(machine);
    res.ras = collectRasStats(machine);
    res.txCommits = tx.commits;
    res.txAborts = tx.aborts;
    res.instructions = tx.instructions;
    res.abortsByReason = tx.abortsByReason;
    res.meanRegionCycles =
        region_count ? region_sum / double(region_count) : 0.0;
    res.throughput = res.meanRegionCycles > 0
                         ? double(cfg.cpus) / res.meanRegionCycles
                         : 0.0;

    if (cfg.opLog) {
        // Behavior check: runs even after a watchdog halt (recorded
        // registers only; in-flight ops stay pending).
        const auto history = oplog.history(
            [](const OpRecord &rec, inject::LinOp &op) {
                op.code = inject::LinOpCode(rec.code);
                op.arg = rec.a0;
                op.result = rec.result;
            });
        res.orderInfer = checkLoggedHistoryOrdered(oplog, [&] {
            return inject::inferQueueLinearizable(history, {});
        });
        res.lincheck = res.orderInfer.verdict;
        if (res.lincheck.checked && !res.lincheck.linearizable) {
            res.oracle.fail("operation history not linearizable: " +
                            res.lincheck.reason);
            std::cerr << debug::replayScheduleDump(history,
                                                   res.orderInfer);
        }
    }

    if (res.watchdogFired) {
        res.oracle.fail("forward-progress watchdog fired; "
                        "structures unchecked");
        return res;
    }

    // Walk the queue for the final length (bounded: a corrupted
    // next chain must not hang the harness); enqueues - successful
    // dequeues must match it.
    machine.drainAllStores();
    Addr node = machine.memory().read(queueBase + headDisp, 8);
    while ((node = machine.memory().read(node + 8, 8)) != 0 &&
           res.finalLength <= 1000000)
        ++res.finalLength;
    const std::int64_t expected =
        std::int64_t(cfg.cpus) * cfg.iterations -
        std::int64_t(res.dequeuedNonEmpty);
    inject::OracleReport structural = inject::checkQueue(
        machine.memory(), machine.allHalted(), queueBase + headDisp,
        queueBase + tailDisp, expected);
    for (auto &v : structural.violations)
        res.oracle.fail(std::move(v));
    if (std::string why = indexOracleCheck(machine); !why.empty())
        res.oracle.fail("hot-path index inconsistent: " + why);
    return res;
}

} // namespace ztx::workload
