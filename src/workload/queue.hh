/**
 * @file
 * The concurrent linked queue experiment (paper §IV, in-text): the
 * IBM Java team implemented ConcurrentLinkedQueue with constrained
 * transactions and measured about 2x the lock-based throughput.
 *
 * The queue is a singly-linked list with a dummy head: enqueue links
 * a pre-initialized node after the tail; dequeue advances the head.
 * Both fit comfortably within the constrained-transaction limits
 * (<= 4 octowords, straight-line code, forward branches only).
 */

#ifndef ZTX_WORKLOAD_QUEUE_HH
#define ZTX_WORKLOAD_QUEUE_HH

#include <cstdint>

#include "inject/lincheck.hh"
#include "inject/oracle.hh"
#include "inject/order_infer.hh"
#include "isa/program.hh"
#include "sim/machine.hh"
#include "workload/report.hh"

namespace ztx::workload {

/** Queue experiment configuration. */
struct QueueBenchConfig
{
    unsigned cpus = 2;
    /** Enqueue/dequeue pairs per CPU. */
    unsigned iterations = 300;
    /** true: TBEGINC; false: global spin lock. */
    bool useConstrainedTx = true;
    std::uint64_t seed = 1;
    /**
     * Record an operation history and check it for linearizability
     * after the run. Off: the generated program is bit-identical to
     * the unlogged one.
     */
    bool opLog = false;
    /** Per-CPU op-log ring capacity (overflow truncates). */
    std::size_t opLogCapacity = 1u << 16;
    sim::MachineConfig machine{};
};

/** Outcome of one queue run. */
struct QueueBenchResult
{
    double meanRegionCycles = 0;
    double throughput = 0;
    std::uint64_t txCommits = 0;
    std::uint64_t txAborts = 0;
    /** Instructions executed, summed over CPUs. */
    std::uint64_t instructions = 0;
    /** Abort counts keyed by tx::abortReasonName(). */
    std::map<std::string, std::uint64_t> abortsByReason;

    /** Parallel-scheduler activity (zero on the legacy path). */
    SchedStatsSummary sched;

    /** Poison/machine-check activity (zero without RAS faults). */
    RasSummary ras;

    std::uint64_t dequeuedNonEmpty = 0;
    /** Nodes remaining in the queue at the end (consistency). */
    std::uint64_t finalLength = 0;
    Cycles elapsedCycles = 0;

    /** The forward-progress watchdog stopped the run (chaos). */
    bool watchdogFired = false;
    /** Structural verdict (inject::checkQueue). */
    inject::OracleReport oracle;
    /** History verdict (cfg.opLog; unchecked when logging is off). */
    inject::LinVerdict lincheck;
    /** Full order-inference report behind `lincheck`. */
    inject::OrderInferReport orderInfer;
};

/** Build the generated program for @p cfg. */
isa::Program buildQueueProgram(const QueueBenchConfig &cfg);

/** Run the experiment. */
QueueBenchResult runQueueBench(const QueueBenchConfig &cfg);

} // namespace ztx::workload

#endif // ZTX_WORKLOAD_QUEUE_HH
