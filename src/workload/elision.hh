/**
 * @file
 * Reusable figure-1 lock-elision wrapper: run the body as a
 * transaction with the fallback lock tested inside; on transient
 * aborts retry up to 6 times with PPA backoff, then take the lock.
 */

#ifndef ZTX_WORKLOAD_ELISION_HH
#define ZTX_WORKLOAD_ELISION_HH

#include <cstdint>
#include <functional>
#include <string>

#include "isa/assembler.hh"

namespace ztx::workload {

/** Register usage of the elision wrapper. */
struct ElisionRegs
{
    unsigned retry = 0;   ///< retry counter
    unsigned scratch = 3; ///< lock test value
    unsigned backoff = 11;
};

/**
 * Emit the figure-1 structure around @p body.
 *
 * @param as Assembler.
 * @param lock_base Register holding the fallback-lock address base.
 * @param lock_disp Displacement of the lock word.
 * @param body Emits the critical-section body (no TEND/locking).
 * @param tag Unique label prefix for this emission site.
 * @param regs Register assignment.
 * @param max_retries Transient-abort retries before falling back.
 */
void emitLockElision(isa::Assembler &as, unsigned lock_base,
                     std::int64_t lock_disp,
                     const std::function<void()> &body,
                     const std::string &tag,
                     const ElisionRegs &regs = {},
                     unsigned max_retries = 6);

} // namespace ztx::workload

#endif // ZTX_WORKLOAD_ELISION_HH
