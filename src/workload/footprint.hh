/**
 * @file
 * The figure 5(f) experiment: statistical abort rate of a
 * transaction reading n random congruence classes, with and without
 * the L1 LRU-extension scheme — i.e., with the read-footprint wall
 * at 64 rows x 6 ways (L1) versus 512 rows x 8 ways (L2).
 */

#ifndef ZTX_WORKLOAD_FOOTPRINT_HH
#define ZTX_WORKLOAD_FOOTPRINT_HH

#include <cstdint>

#include "sim/machine.hh"
#include "workload/report.hh"

namespace ztx::workload {

/** Configuration of the footprint Monte-Carlo. */
struct FootprintConfig
{
    bool lruExtension = true;
    unsigned trials = 100;
    std::uint64_t seed = 1;
    sim::MachineConfig machine{};
};

/** Detailed outcome of one footprint Monte-Carlo point. */
struct FootprintResult
{
    /** Fraction of trials whose transaction aborted, in [0, 1]. */
    double abortRate = 0.0;
    unsigned trials = 0;
    unsigned abortedTrials = 0;
    /** Simulated cycles summed over the trials. */
    Cycles simCycles = 0;
    /** Instructions executed, summed over the trials. */
    std::uint64_t instructions = 0;
    /** Abort counts keyed by tx::abortReasonName(). */
    std::map<std::string, std::uint64_t> abortsByReason;
};

/**
 * Measure single-attempt transactions that load @p lines random
 * cache lines, with full abort accounting.
 */
FootprintResult measureFootprint(unsigned lines,
                                 const FootprintConfig &cfg);

/**
 * Measure the abort rate of single-attempt transactions that load
 * @p lines random cache lines.
 * @return Fraction of trials whose transaction aborted, in [0, 1].
 */
double measureFootprintAbortRate(unsigned lines,
                                 const FootprintConfig &cfg);

} // namespace ztx::workload

#endif // ZTX_WORKLOAD_FOOTPRINT_HH
