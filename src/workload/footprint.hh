/**
 * @file
 * The figure 5(f) experiment: statistical abort rate of a
 * transaction reading n random congruence classes, with and without
 * the L1 LRU-extension scheme — i.e., with the read-footprint wall
 * at 64 rows x 6 ways (L1) versus 512 rows x 8 ways (L2).
 */

#ifndef ZTX_WORKLOAD_FOOTPRINT_HH
#define ZTX_WORKLOAD_FOOTPRINT_HH

#include <cstdint>

#include "sim/machine.hh"

namespace ztx::workload {

/** Configuration of the footprint Monte-Carlo. */
struct FootprintConfig
{
    bool lruExtension = true;
    unsigned trials = 100;
    std::uint64_t seed = 1;
    sim::MachineConfig machine{};
};

/**
 * Measure the abort rate of single-attempt transactions that load
 * @p lines random cache lines.
 * @return Fraction of trials whose transaction aborted, in [0, 1].
 */
double measureFootprintAbortRate(unsigned lines,
                                 const FootprintConfig &cfg);

} // namespace ztx::workload

#endif // ZTX_WORKLOAD_FOOTPRINT_HH
