#include "footprint.hh"

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "workload/report.hh"

namespace ztx::workload {

FootprintResult
measureFootprint(unsigned lines, const FootprintConfig &cfg)
{
    sim::MachineConfig mcfg = cfg.machine;
    mcfg.topology = mem::Topology(1, 1, 1);
    mcfg.activeCpus = 1;
    mcfg.tm.lruExtensionEnabled = cfg.lruExtension;
    mcfg.seed = cfg.seed;
    // One machine is reused across trials: transactional marks are
    // reset at every TBEGIN and stale lines from earlier trials only
    // age out via LRU, so each trial sees effectively fresh state.
    sim::Machine machine(mcfg);

    Rng rng(cfg.seed ^ 0xF00DULL);
    FootprintResult res;
    res.trials = cfg.trials;
    for (unsigned trial = 0; trial < cfg.trials; ++trial) {
        // n loads of random congruence classes: random lines from a
        // large region (collisions in a class are the statistic
        // being measured).
        isa::Assembler as;
        as.tbegin(0x00);
        as.jnz("failed");
        for (unsigned i = 0; i < lines; ++i) {
            const Addr line =
                0x1000'0000 + rng.nextBounded(1 << 20) * 256;
            as.lg(1, 0, std::int64_t(line));
        }
        as.tend();
        as.lhi(3, 1);
        as.j("out");
        as.label("failed");
        as.lhi(3, 2);
        as.label("out");
        as.halt();
        const isa::Program program = as.finish();
        machine.hierarchy().flushCpuCaches(0); // cold caches
        machine.setProgram(0, &program);
        res.simCycles += machine.run();
        if (machine.cpu(0).gr(3) == 2)
            ++res.abortedTrials;
    }
    res.abortRate = double(res.abortedTrials) / double(cfg.trials);
    const TxStatsSummary tx = collectTxStats(machine);
    res.instructions = tx.instructions;
    res.abortsByReason = tx.abortsByReason;
    return res;
}

double
measureFootprintAbortRate(unsigned lines, const FootprintConfig &cfg)
{
    return measureFootprint(lines, cfg).abortRate;
}

} // namespace ztx::workload
