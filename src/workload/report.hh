/**
 * @file
 * Plain-text series table for the benchmark binaries: one x column
 * (e.g. "CPUs") plus one column per series, printed aligned — the
 * rows/series that regenerate the paper's figures.
 */

#ifndef ZTX_WORKLOAD_REPORT_HH
#define ZTX_WORKLOAD_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

namespace ztx::workload {

/** Column-aligned x/series table. */
class SeriesTable
{
  public:
    /**
     * @param x_label Header of the x column.
     * @param series Headers of the value columns.
     */
    SeriesTable(std::string x_label,
                std::vector<std::string> series);

    /** Append a row; @p values must match the series count. */
    void addRow(double x, const std::vector<double> &values);

    /** Print the aligned table. */
    void print(std::ostream &os) const;

    /** Value at (@p row, @p series_idx), for tests. */
    double value(std::size_t row, std::size_t series_idx) const;

    /** Number of rows. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::string xLabel_;
    std::vector<std::string> series_;
    struct Row
    {
        double x;
        std::vector<double> values;
    };
    std::vector<Row> rows_;
};

} // namespace ztx::workload

#endif // ZTX_WORKLOAD_REPORT_HH
