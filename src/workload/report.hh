/**
 * @file
 * Plain-text series table for the benchmark binaries: one x column
 * (e.g. "CPUs") plus one column per series, printed aligned — the
 * rows/series that regenerate the paper's figures.
 */

#ifndef ZTX_WORKLOAD_REPORT_HH
#define ZTX_WORKLOAD_REPORT_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace ztx::sim {
class Machine;
} // namespace ztx::sim

namespace ztx::workload {

/** Column-aligned x/series table. */
class SeriesTable
{
  public:
    /**
     * @param x_label Header of the x column.
     * @param series Headers of the value columns.
     */
    SeriesTable(std::string x_label,
                std::vector<std::string> series);

    /** Append a row; @p values must match the series count. */
    void addRow(double x, const std::vector<double> &values);

    /** Print the aligned table. */
    void print(std::ostream &os) const;

    /** Value at (@p row, @p series_idx), for tests. */
    double value(std::size_t row, std::size_t series_idx) const;

    /** Number of rows. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::string xLabel_;
    std::vector<std::string> series_;
    struct Row
    {
        double x;
        std::vector<double> values;
    };
    std::vector<Row> rows_;
};

/**
 * Transactional activity summed over every CPU of a machine — the
 * common tail every benchmark runner reports.
 */
struct TxStatsSummary
{
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t xiRejects = 0;
    std::uint64_t instructions = 0;
    /** Abort counts keyed by tx::abortReasonName(). */
    std::map<std::string, std::uint64_t> abortsByReason;
};

/** Collect the per-CPU "tx.*" / "instructions" counters. */
TxStatsSummary collectTxStats(const sim::Machine &machine);

/**
 * Parallel-scheduler activity of one run: how much work the sharded
 * scheduler resolved inside the parallel phase (steps_local) versus
 * re-executed serially at the quantum barrier (steps_deferred), plus
 * the shard-local L3 hits that the fast path kept off the serial
 * path and the event-heap rebuild traffic saved by carrying heaps
 * across quanta. All zero under the legacy serial scheduler.
 */
struct SchedStatsSummary
{
    std::uint64_t stepsLocal = 0;
    std::uint64_t stepsDeferred = 0;
    std::uint64_t stepsTotal = 0;
    std::uint64_t l3LocalHits = 0;
    std::uint64_t heapReinserts = 0;

    /** Fraction of steps resolved at the serial barrier. */
    double
    serialFraction() const
    {
        return stepsTotal
                   ? double(stepsDeferred) / double(stepsTotal)
                   : 0.0;
    }
};

/** Collect the machine-level "sched.*" counters. */
SchedStatsSummary collectSchedStats(const sim::Machine &machine);

/**
 * RAS (line-poisoning) activity of one run: how often lines were
 * poisoned, how the poison moved, and what the recovery ladder did
 * about it (scrub on a clean copy, workload restart otherwise).
 * All zero when the fault plan injects no poison.
 */
struct RasSummary
{
    /** Lines poisoned by the injector ("poison.injected"). */
    std::uint64_t poisoned = 0;
    /** Poison propagation events (fetch + castout + XI transfer). */
    std::uint64_t spread = 0;
    /** Machine checks taken (per-CPU "machine_checks" summed). */
    std::uint64_t machineChecks = 0;
    /** Lines scrubbed clean from memory ("poison.scrubbed"). */
    std::uint64_t scrubs = 0;
    /** Workload items killed and restarted (no clean copy). */
    std::uint64_t restarts = 0;
    /** Transactions aborted by poisoned footprint lines. */
    std::uint64_t poisonAborts = 0;
};

/**
 * Collect the poison/machine-check counters. Non-const: reading the
 * hierarchy's stats folds its hot counters.
 */
RasSummary collectRasStats(sim::Machine &machine);

/**
 * First hot-path index-consistency violation across the machine —
 * every cache array's tag/valid/flag index and every CPU's
 * gathering-store-cache block index verified against ground truth —
 * or "" when all indexes are consistent. The chaos oracles run this
 * after every campaign so fault injection cross-checks the O(1)
 * lookup structures, not just the architectural state.
 */
std::string indexOracleCheck(const sim::Machine &machine);

} // namespace ztx::workload

#endif // ZTX_WORKLOAD_REPORT_HH
