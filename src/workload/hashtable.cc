#include "hashtable.hh"

#include <iostream>
#include <string>

#include "common/log.hh"
#include "debug/replay_dump.hh"
#include "isa/assembler.hh"
#include "locks/lock_gen.hh"
#include "workload/elision.hh"
#include "workload/layout.hh"
#include "workload/op_log.hh"
#include "workload/report.hh"

namespace ztx::workload {

using isa::Assembler;
using isa::Program;

namespace {

/** Fibonacci-style multiplicative hash parameters. */
constexpr std::uint64_t hashMultiplier = 0x9E3779B1ULL;
constexpr unsigned hashShift = 8;

/** Host-side copy of the generated program's bucket function. */
std::uint64_t
bucketOf(std::uint64_t key, unsigned buckets)
{
    return ((key * hashMultiplier) >> hashShift) & (buckets - 1);
}

} // namespace

Program
buildHashTableProgram(const HashTableBenchConfig &cfg)
{
    if ((cfg.buckets & (cfg.buckets - 1)) != 0)
        ztx_fatal("hash-table bucket count must be a power of two");

    /*
     * Registers: R3 probe key, R4 bucket address, R5 read value,
     * R6 hash scratch, R7 op selector, R8 iterations, R9 table
     * base, R10 global lock, R11 backoff, R12 key, R13 probe
     * counter, R14 hash multiplier, R15 bucket mask.
     * R0..R2 belong to the elision/lock helpers.
     */
    Assembler as;
    const locks::LockRegs lock_regs;
    as.la(9, 0, std::int64_t(hashTableBase));
    as.la(10, 0, std::int64_t(globalLockAddr));
    as.lhi(8, cfg.iterations);
    as.lhi(14, std::int64_t(hashMultiplier));
    as.lhi(15, std::int64_t(cfg.buckets - 1));
    as.label("iter");
    as.rnd(12, cfg.keySpace);
    as.ahi(12, 1); // keys are 1..keySpace (0 marks empty)
    as.rnd(7, 100);
    as.lr(6, 12);
    as.msgr(6, 14);
    as.srlg(6, 6, hashShift);
    as.ngr(6, 15);
    as.sllg(6, 6, 8); // bucket index -> byte offset (256-B buckets)

    // Emitted up to twice (TX path and lock fallback): unique label
    // suffixes per emission. R4 and R13 must be (re)computed inside
    // the body: the elision TBEGIN saves no registers, so an abort
    // mid-probe leaves them advanced, and a retry or the fallback
    // continuing from there could store past the probe window.
    int emission = 0;
    const auto body = [&] {
        const std::string n = std::to_string(emission++);
        // Zero the result register inside the region so an aborted
        // attempt cannot leave a stale value: a put sets it to 1
        // when it stored, a get loads the value; 0 is a miss or a
        // probe-bound drop.
        if (cfg.opLog)
            as.lhi(5, 0);
        as.la(4, 9, 0, 6);
        as.lhi(13, std::int64_t(cfg.maxProbes));
        as.label("probe" + n);
        as.lg(3, 4, 0);
        as.cghi(3, 0);
        as.jz("empty" + n);
        as.cgr(3, 12);
        as.jz("found" + n);
        as.la(4, 4, 256); // linear probe into the padded tail
        as.brct(13, "probe" + n);
        as.j("end" + n); // probe bound: treat as miss / drop put
        as.label("empty" + n);
        as.cghi(7, std::int64_t(cfg.putPercent));
        as.brc(isa::maskCc0 | isa::maskCc2, "end" + n); // get: miss
        as.stg(12, 4, 0); // claim the slot: key
        as.stg(12, 4, 8); // value
        if (cfg.opLog)
            as.lhi(5, 1); // put applied
        as.j("end" + n);
        as.label("found" + n);
        as.cghi(7, std::int64_t(cfg.putPercent));
        as.brc(isa::maskCc0 | isa::maskCc2, "get" + n);
        as.stg(12, 4, 8); // put: update value
        if (cfg.opLog)
            as.lhi(5, 1); // put applied
        as.j("end" + n);
        as.label("get" + n);
        as.lg(5, 4, 8);
        as.label("end" + n);
        // Version record: in the elided TX it arms the commit
        // footprint; on the lock path it records the lock-line
        // write that orders the region in the lock's version chain.
        if (cfg.opLog)
            as.oplogv(10, 0);
    };

    // One log code for both ops: the raw selector rides along in
    // the second argument register and the host splits put/get the
    // same way the program does (selector < putPercent).
    if (cfg.opLog)
        as.oplogb(std::uint32_t(inject::LinOpCode::MapGet), 12, 7);
    as.markb();
    if (cfg.useElision) {
        emitLockElision(as, 10, 0, body, "ht");
    } else {
        locks::SpinLock::emitAcquire(as, 10, 0, lock_regs, "ht");
        body();
        locks::SpinLock::emitRelease(as, 10, 0, lock_regs);
    }
    as.marke();
    if (cfg.opLog)
        as.oploge(5);
    as.brct(8, "iter");
    as.halt();
    return as.finish();
}

HashTableBenchResult
runHashTableBench(const HashTableBenchConfig &cfg)
{
    sim::MachineConfig mcfg = cfg.machine;
    mcfg.activeCpus = cfg.cpus;
    mcfg.seed = cfg.seed;
    sim::Machine machine(mcfg);

    // Pre-fill the table with the whole key space so the read-
    // mostly mix mostly hits (the paper's steady-state hashtable).
    for (std::uint64_t key = 1; key <= cfg.keySpace; ++key) {
        std::uint64_t b = bucketOf(key, cfg.buckets);
        for (unsigned probe = 0; probe < cfg.maxProbes; ++probe) {
            const Addr slot = hashTableBase + (b + probe) * 256;
            if (machine.memory().read(slot, 8) == 0 ||
                machine.memory().read(slot, 8) == key) {
                machine.memory().write(slot, key, 8);
                machine.memory().write(slot + 8, key, 8);
                break;
            }
        }
    }

    // Slots occupied by the prefill: puts only ever add keys, so
    // the oracle's occupancy floor after any chaotic run. The full
    // slot array doubles as the checker's initial state.
    std::int64_t prefill_occupied = 0;
    std::vector<std::uint64_t> initial_slots;
    for (unsigned b = 0; b < cfg.buckets + cfg.maxProbes; ++b) {
        const std::uint64_t key =
            machine.memory().read(hashTableBase + Addr(b) * 256, 8);
        initial_slots.push_back(key);
        if (key)
            ++prefill_occupied;
    }

    const Program program = buildHashTableProgram(cfg);
    machine.setProgramAll(&program);
    OpLog oplog(machine.numCpus(), cfg.opLogCapacity);
    if (cfg.opLog) {
        for (unsigned i = 0; i < machine.numCpus(); ++i)
            machine.cpu(i).setOpRecorder(&oplog);
    }
    const Cycles elapsed = machine.run();
    HashTableBenchResult res;
    res.watchdogFired = machine.watchdogFired();
    if (!machine.allHalted() && !res.watchdogFired)
        ztx_fatal("hash-table benchmark did not run to completion");

    res.elapsedCycles = elapsed;
    double region_sum = 0;
    std::uint64_t region_count = 0;
    for (unsigned i = 0; i < machine.numCpus(); ++i) {
        auto &cpu = machine.cpu(i);
        region_sum += cpu.regionCycles().sum();
        region_count += cpu.regionCycles().count();
    }
    const TxStatsSummary tx = collectTxStats(machine);
    res.sched = collectSchedStats(machine);
    res.ras = collectRasStats(machine);
    res.txCommits = tx.commits;
    res.txAborts = tx.aborts;
    res.instructions = tx.instructions;
    res.abortsByReason = tx.abortsByReason;
    res.meanRegionCycles =
        region_count ? region_sum / double(region_count) : 0.0;
    res.throughput = res.meanRegionCycles > 0
                         ? double(cfg.cpus) / res.meanRegionCycles
                         : 0.0;

    if (cfg.opLog) {
        // Behavior check: runs even after a watchdog halt (recorded
        // registers only; in-flight ops stay pending).
        const auto history = oplog.history(
            [&](const OpRecord &rec, inject::LinOp &op) {
                op.code = rec.a1 < cfg.putPercent
                              ? inject::LinOpCode::MapPut
                              : inject::LinOpCode::MapGet;
                op.arg = rec.a0;
                op.result = rec.result;
            });
        res.orderInfer = checkLoggedHistoryOrdered(oplog, [&] {
            return inject::inferMapLinearizable(
                history, initial_slots, cfg.buckets, cfg.maxProbes,
                [&](std::uint64_t key) {
                    return bucketOf(key, cfg.buckets);
                });
        });
        res.lincheck = res.orderInfer.verdict;
        if (res.lincheck.checked && !res.lincheck.linearizable) {
            res.oracle.fail("operation history not linearizable: " +
                            res.lincheck.reason);
            std::cerr << debug::replayScheduleDump(history,
                                                   res.orderInfer);
        }
    }

    if (res.watchdogFired) {
        res.oracle.fail("forward-progress watchdog fired; "
                        "structures unchecked");
        return res;
    }

    machine.drainAllStores();
    for (unsigned b = 0; b < cfg.buckets + cfg.maxProbes; ++b) {
        if (machine.memory().read(hashTableBase + Addr(b) * 256, 8))
            ++res.occupiedBuckets;
    }
    inject::OracleReport structural = inject::checkHashTable(
        machine.memory(), machine.allHalted(), hashTableBase,
        cfg.buckets, cfg.maxProbes,
        [&](std::uint64_t key) {
            return bucketOf(key, cfg.buckets);
        },
        prefill_occupied, std::int64_t(cfg.keySpace));
    for (auto &v : structural.violations)
        res.oracle.fail(std::move(v));
    if (std::string why = indexOracleCheck(machine); !why.empty())
        res.oracle.fail("hot-path index inconsistent: " + why);
    return res;
}

} // namespace ztx::workload
