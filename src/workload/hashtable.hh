/**
 * @file
 * The figure 5(e) workload: a shared hash table accessed by multiple
 * threads for reading and writing, synchronized either by a global
 * lock (the "synchronized" baseline) or by eliding that lock with
 * transactions, as the IBM Testarossa JIT prototype does for
 * java/util/Hashtable.
 *
 * The table is open-addressed with bounded linear probing; each
 * bucket (key doubleword + value doubleword) occupies its own cache
 * line. Keys are drawn uniformly from a key space, with a
 * configurable put fraction (read-mostly by default).
 */

#ifndef ZTX_WORKLOAD_HASHTABLE_HH
#define ZTX_WORKLOAD_HASHTABLE_HH

#include <cstdint>

#include "inject/lincheck.hh"
#include "inject/oracle.hh"
#include "inject/order_infer.hh"
#include "isa/program.hh"
#include "sim/machine.hh"
#include "workload/report.hh"

namespace ztx::workload {

/** Hash-table experiment configuration. */
struct HashTableBenchConfig
{
    unsigned cpus = 2;
    unsigned buckets = 1024;      ///< power of two
    unsigned keySpace = 512;      ///< distinct keys in use
    unsigned putPercent = 10;     ///< write fraction of operations
    unsigned maxProbes = 4;       ///< linear-probe bound
    bool useElision = false;      ///< false: global lock
    unsigned iterations = 300;    ///< operations per CPU
    std::uint64_t seed = 1;
    /**
     * Record an operation history and check it for linearizability
     * after the run. Off: the generated program is bit-identical to
     * the unlogged one.
     */
    bool opLog = false;
    /** Per-CPU op-log ring capacity (overflow truncates). */
    std::size_t opLogCapacity = 1u << 16;
    sim::MachineConfig machine{};
};

/** Outcome of one hash-table run. */
struct HashTableBenchResult
{
    double meanRegionCycles = 0;
    double throughput = 0; ///< cpus / meanRegionCycles
    std::uint64_t txCommits = 0;
    std::uint64_t txAborts = 0;
    Cycles elapsedCycles = 0;
    /** Instructions executed, summed over CPUs. */
    std::uint64_t instructions = 0;
    /** Abort counts keyed by tx::abortReasonName(). */
    std::map<std::string, std::uint64_t> abortsByReason;

    /** Parallel-scheduler activity (zero on the legacy path). */
    SchedStatsSummary sched;

    /** Poison/machine-check activity (zero without RAS faults). */
    RasSummary ras;

    /** Occupied buckets at the end (sanity). */
    unsigned occupiedBuckets = 0;

    /** The forward-progress watchdog stopped the run (chaos). */
    bool watchdogFired = false;
    /** Structural verdict (inject::checkHashTable). */
    inject::OracleReport oracle;
    /** History verdict (cfg.opLog; unchecked when logging is off). */
    inject::LinVerdict lincheck;
    /** Full order-inference report behind `lincheck`. */
    inject::OrderInferReport orderInfer;
};

/** Build the generated program for @p cfg. */
isa::Program buildHashTableProgram(const HashTableBenchConfig &cfg);

/** Run the experiment. */
HashTableBenchResult runHashTableBench(const HashTableBenchConfig &cfg);

} // namespace ztx::workload

#endif // ZTX_WORKLOAD_HASHTABLE_HH
