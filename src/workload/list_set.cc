#include "list_set.hh"

#include <iostream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "debug/replay_dump.hh"
#include "isa/assembler.hh"
#include "locks/lock_gen.hh"
#include "workload/elision.hh"
#include "workload/layout.hh"
#include "workload/op_log.hh"
#include "workload/report.hh"

namespace ztx::workload {

using isa::Assembler;
using isa::Program;

namespace {

/*
 * Node layout: key @0, next @8, one node per 256-byte line. The
 * head sentinel's next pointer lives at listBase + 8.
 *
 * Registers: R4 prev, R5 curr, R6 key scratch, R7 applied flag,
 * R8 iterations, R9 head, R10 lock, R12 key, R13 op selector /
 * new-node address, R14 net-insert counter, R15 arena bump.
 * R0/R1/R2/R3/R11 belong to the elision and lock helpers.
 */

/** Emit the sorted traversal: leaves prev in R4, curr in R5, and
 *  curr->key in R6 (when curr != 0). */
void
emitTraverse(Assembler &as, const std::string &tag)
{
    as.la(4, 9, 0);
    as.lg(5, 4, 8);
    as.label(tag + "_find");
    as.cghi(5, 0);
    as.jz(tag + "_stop");
    as.lg(6, 5, 0);
    as.cgr(6, 12);
    as.brc(isa::maskCc0 | isa::maskCc2, tag + "_stop"); // key <= cur
    as.lr(4, 5);
    as.lg(5, 5, 8);
    as.j(tag + "_find");
    as.label(tag + "_stop");
}

} // namespace

Program
buildListSetProgram(const ListSetBenchConfig &cfg)
{
    if (cfg.lookupPercent + cfg.insertPercent > 100)
        ztx_fatal("list-set operation mix exceeds 100%");

    const locks::LockRegs lock_regs;
    Assembler as;
    as.la(9, 0, std::int64_t(listBase));
    as.la(10, 0, std::int64_t(globalLockAddr));
    as.lhi(8, cfg.iterations);
    as.lhi(14, 0);
    as.label("iter");
    as.rnd(12, cfg.keySpace);
    as.ahi(12, 1);
    as.rnd(13, 100);
    as.cghi(13, std::int64_t(cfg.lookupPercent));
    as.jl("lookup_sec");
    as.cghi(13,
            std::int64_t(cfg.lookupPercent + cfg.insertPercent));
    as.jl("insert_sec");
    as.j("delete_sec");

    int emission = 0;
    const auto wrap = [&](const std::function<void()> &body,
                          const std::string &site) {
        // Version recording rides at the end of the region body: on
        // the TX path OPLOGV arms commit-footprint reporting, on the
        // lock path it records the lock-line write that orders the
        // region in the lock's version chain.
        const auto logged = [&] {
            body();
            if (cfg.opLog)
                as.oplogv(10, 0);
        };
        as.markb();
        if (cfg.useElision) {
            emitLockElision(as, 10, 0, logged, site);
        } else {
            locks::SpinLock::emitAcquire(as, 10, 0, lock_regs,
                                         site + "_lk");
            logged();
            locks::SpinLock::emitRelease(as, 10, 0, lock_regs);
        }
        as.marke();
    };

    // --- Lookup.
    as.label("lookup_sec");
    if (cfg.opLog)
        as.oplogb(std::uint32_t(inject::LinOpCode::SetLookup), 12);
    wrap(
        [&] {
            emitTraverse(as, "lk" + std::to_string(emission++));
        },
        "lookup");
    if (cfg.opLog) {
        // Found iff curr != 0 && curr->key == key; R5/R6 hold the
        // committed traversal result past the region, so the flag
        // can be derived outside it (only widens the window).
        as.lhi(7, 0);
        as.cghi(5, 0);
        as.jz("lk_res");
        as.cgr(6, 12);
        as.jnz("lk_res");
        as.lhi(7, 1);
        as.label("lk_res");
        as.oploge(7);
    }
    as.j("iter_end");

    // --- Insert: node prepared outside the synchronized region.
    as.label("insert_sec");
    as.la(13, 15, 0);
    as.stg(12, 13, 0); // node.key
    as.la(15, 15, 256);
    if (cfg.opLog)
        as.oplogb(std::uint32_t(inject::LinOpCode::SetInsert), 12);
    wrap(
        [&] {
            const std::string tag =
                "in" + std::to_string(emission++);
            emitTraverse(as, tag);
            as.lhi(7, 0);
            as.cghi(5, 0);
            as.jz(tag + "_do"); // at end -> insert
            as.cgr(6, 12);
            as.jz(tag + "_dn"); // already present
            as.label(tag + "_do");
            as.stg(5, 13, 8);  // node->next = curr
            as.stg(13, 4, 8);  // prev->next = node
            as.lhi(7, 1);
            as.label(tag + "_dn");
        },
        "insert");
    if (cfg.opLog)
        as.oploge(7); // applied flag
    as.agr(14, 7);
    as.j("iter_end");

    // --- Delete.
    as.label("delete_sec");
    if (cfg.opLog)
        as.oplogb(std::uint32_t(inject::LinOpCode::SetDelete), 12);
    wrap(
        [&] {
            const std::string tag =
                "de" + std::to_string(emission++);
            emitTraverse(as, tag);
            as.lhi(7, 0);
            as.cghi(5, 0);
            as.jz(tag + "_dn"); // not present (end)
            as.cgr(6, 12);
            as.jnz(tag + "_dn"); // not present (greater)
            as.lg(6, 5, 8);      // curr->next
            as.stg(6, 4, 8);     // prev->next = curr->next
            as.lhi(7, 1);
            as.label(tag + "_dn");
        },
        "del");
    if (cfg.opLog)
        as.oploge(7); // applied flag
    as.sgr(14, 7);

    as.label("iter_end");
    as.brct(8, "iter");
    as.halt();
    return as.finish();
}

ListSetBenchResult
runListSetBench(const ListSetBenchConfig &cfg)
{
    sim::MachineConfig mcfg = cfg.machine;
    mcfg.activeCpus = cfg.cpus;
    mcfg.seed = cfg.seed;
    sim::Machine machine(mcfg);

    // Pre-fill: a sorted chain of the selected keys.
    Rng prefill_rng(cfg.seed ^ 0xBEEF);
    std::vector<std::uint64_t> keys;
    for (std::uint64_t k = 1; k <= cfg.keySpace; ++k)
        if (prefill_rng.nextBool(cfg.prefillPercent / 100.0))
            keys.push_back(k);
    Addr prev = listBase;
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const Addr node = listPrefillArena + Addr(i) * 256;
        machine.memory().write(node + 0, keys[i], 8);
        machine.memory().write(prev + 8, node, 8);
        prev = node;
    }
    machine.memory().write(prev + 8, 0, 8);

    const Program program = buildListSetProgram(cfg);
    machine.setProgramAll(&program);
    OpLog oplog(machine.numCpus(), cfg.opLogCapacity);
    for (unsigned i = 0; i < cfg.cpus; ++i) {
        machine.cpu(i).setGr(
            15, arenaBase + Addr(i) * arenaStride);
        if (cfg.opLog)
            machine.cpu(i).setOpRecorder(&oplog);
    }
    const Cycles elapsed = machine.run();
    ListSetBenchResult res;
    res.watchdogFired = machine.watchdogFired();
    if (!machine.allHalted() && !res.watchdogFired)
        ztx_fatal("list-set benchmark did not run to completion");

    res.elapsedCycles = elapsed;
    double region_sum = 0;
    std::uint64_t region_count = 0;
    std::int64_t net_inserts = 0;
    for (unsigned i = 0; i < machine.numCpus(); ++i) {
        auto &cpu = machine.cpu(i);
        region_sum += cpu.regionCycles().sum();
        region_count += cpu.regionCycles().count();
        net_inserts += std::int64_t(cpu.gr(14));
    }
    const TxStatsSummary tx = collectTxStats(machine);
    res.sched = collectSchedStats(machine);
    res.ras = collectRasStats(machine);
    res.txCommits = tx.commits;
    res.txAborts = tx.aborts;
    res.instructions = tx.instructions;
    res.abortsByReason = tx.abortsByReason;
    res.meanRegionCycles =
        region_count ? region_sum / double(region_count) : 0.0;
    res.throughput = res.meanRegionCycles > 0
                         ? double(cfg.cpus) / res.meanRegionCycles
                         : 0.0;

    if (cfg.opLog) {
        // Behavior check: runs even after a watchdog halt — it uses
        // recorded registers, not a structural walk, and the last
        // in-flight op per CPU is simply pending (maybe completed).
        const auto history = oplog.history(
            [](const OpRecord &rec, inject::LinOp &op) {
                op.code = inject::LinOpCode(rec.code);
                op.arg = rec.a0;
                op.result = rec.result;
            });
        res.orderInfer = checkLoggedHistoryOrdered(oplog, [&] {
            return inject::inferSetLinearizable(history, keys);
        });
        res.lincheck = res.orderInfer.verdict;
        if (res.lincheck.checked && !res.lincheck.linearizable) {
            res.oracle.fail("operation history not linearizable: " +
                            res.lincheck.reason);
            std::cerr << debug::replayScheduleDump(history,
                                                   res.orderInfer);
        }
    }

    if (res.watchdogFired) {
        // Mid-flight transactions hold buffered state; the
        // structure cannot be judged. The run itself is the failure.
        res.oracle.fail("forward-progress watchdog fired; "
                        "structures unchecked");
        return res;
    }

    // Validate the structure.
    machine.drainAllStores();
    res.sorted = true;
    std::int64_t last_key = 0;
    Addr node = machine.memory().read(listBase + 8, 8);
    while (node != 0 && res.finalLength <= 100000) {
        const auto key =
            std::int64_t(machine.memory().read(node + 0, 8));
        if (key <= last_key)
            res.sorted = false;
        last_key = key;
        ++res.finalLength;
        node = machine.memory().read(node + 8, 8);
    }
    res.lengthConsistent =
        std::int64_t(keys.size()) + net_inserts ==
        std::int64_t(res.finalLength);
    inject::OracleReport structural = inject::checkListSet(
        machine.memory(), machine.allHalted(), listBase,
        std::int64_t(keys.size()) + net_inserts);
    for (auto &v : structural.violations)
        res.oracle.fail(std::move(v));
    if (std::string why = indexOracleCheck(machine); !why.empty())
        res.oracle.fail("hot-path index inconsistent: " + why);
    return res;
}

} // namespace ztx::workload
