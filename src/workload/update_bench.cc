#include "update_bench.hh"

#include "common/log.hh"
#include "isa/assembler.hh"
#include "locks/lock_gen.hh"
#include "workload/elision.hh"
#include "workload/layout.hh"

namespace ztx::workload {

using isa::Assembler;
using isa::Program;

const char *
syncMethodName(SyncMethod method)
{
    switch (method) {
      case SyncMethod::None: return "none";
      case SyncMethod::CoarseLock: return "coarse-lock";
      case SyncMethod::FineLock: return "fine-lock";
      case SyncMethod::RwLock: return "rw-lock";
      case SyncMethod::TBegin: return "tbegin";
      case SyncMethod::TBeginc: return "tbeginc";
    }
    return "?";
}

namespace {

/*
 * Register conventions of the generated program:
 *   R0  TX retry count          R8  iteration counter
 *   R1  CS compare / scratch    R9  pool base
 *   R2  CS swap / scratch       R10 lock base (coarse/RW/fine)
 *   R3  value scratch           R11 spin backoff
 *   R4..R7 variable addresses   R12 index scratch
 *                               R13 fine-lock address
 */

/** Emit the unsynchronized operation body. */
void
emitBody(Assembler &as, const UpdateBenchConfig &cfg)
{
    for (unsigned v = 0; v < cfg.varsPerOp; ++v) {
        if (cfg.readOnly) {
            as.lg(3, 4 + v);
        } else {
            // Update idiom: the load fetches with store intent so
            // the line arrives exclusive (see LGFO).
            as.lgfo(3, 4 + v);
            as.ahi(3, 1);
            as.stg(3, 4 + v);
        }
    }
}

/** Emit selection of the operation's variable addresses. */
void
emitPick(Assembler &as, const UpdateBenchConfig &cfg)
{
    for (unsigned v = 0; v < cfg.varsPerOp; ++v) {
        if (cfg.poolSize == 1) {
            // Pool of one: the paper uses 4 consecutive cache lines
            // for the 4-variable test.
            as.la(4 + v, 9, std::int64_t(v) * 256);
        } else {
            as.rnd(12, cfg.poolSize);
            as.sllg(12, 12, 8); // variable index -> byte offset
            as.la(4 + v, 9, 0, 12);
        }
    }
}

} // namespace

Program
buildUpdateProgram(const UpdateBenchConfig &cfg)
{
    if (cfg.method == SyncMethod::FineLock && cfg.varsPerOp != 1)
        ztx_fatal("fine-grained locking generator supports single-"
                  "variable operations only (lock ordering)");
    if (cfg.method == SyncMethod::RwLock && !cfg.readOnly)
        ztx_fatal("the RW-lock workload is the read-only comparison");

    const locks::LockRegs regs;
    Assembler as;
    as.la(9, 0, std::int64_t(poolBase));
    as.la(10, 0,
          std::int64_t(cfg.method == SyncMethod::FineLock
                           ? fineLockBase
                           : globalLockAddr));
    as.lhi(8, cfg.iterations);
    as.label("iter");
    emitPick(as, cfg);
    if (cfg.method == SyncMethod::FineLock)
        as.la(13, 10, 0, 12); // lock of the picked variable

    as.markb();
    switch (cfg.method) {
      case SyncMethod::None:
        emitBody(as, cfg);
        break;
      case SyncMethod::CoarseLock:
        locks::SpinLock::emitAcquire(as, 10, 0, regs, "lk");
        emitBody(as, cfg);
        locks::SpinLock::emitRelease(as, 10, 0, regs);
        break;
      case SyncMethod::FineLock:
        locks::SpinLock::emitAcquire(as, 13, 0, regs, "lk");
        emitBody(as, cfg);
        locks::SpinLock::emitRelease(as, 13, 0, regs);
        break;
      case SyncMethod::RwLock:
        locks::RwLock::emitReadAcquire(as, 10, 0, regs, "rd");
        emitBody(as, cfg);
        locks::RwLock::emitReadRelease(as, 10, 0, regs, "rr");
        break;
      case SyncMethod::TBegin:
        emitLockElision(as, 10, 0, [&] { emitBody(as, cfg); },
                        "op");
        break;
      case SyncMethod::TBeginc:
        as.tbeginc(0x00);
        emitBody(as, cfg);
        as.tend();
        break;
    }
    as.marke();
    as.brct(8, "iter");
    as.halt();
    return as.finish();
}

UpdateBenchResult
runUpdateBench(const UpdateBenchConfig &cfg)
{
    sim::MachineConfig mcfg = cfg.machine;
    mcfg.activeCpus = cfg.cpus;
    mcfg.seed = cfg.seed;
    sim::Machine machine(mcfg);

    const Program program = buildUpdateProgram(cfg);
    machine.setProgramAll(&program);
    const Cycles elapsed = machine.run();

    if (!machine.allHalted())
        ztx_fatal("update benchmark did not run to completion");

    UpdateBenchResult res;
    res.elapsedCycles = elapsed;
    double region_sum = 0;
    std::uint64_t region_count = 0;
    for (unsigned i = 0; i < machine.numCpus(); ++i) {
        auto &cpu = machine.cpu(i);
        region_sum = region_sum + cpu.regionCycles().sum();
        region_count += cpu.regionCycles().count();
    }
    const TxStatsSummary tx = collectTxStats(machine);
    res.sched = collectSchedStats(machine);
    res.ras = collectRasStats(machine);
    res.txCommits = tx.commits;
    res.txAborts = tx.aborts;
    res.xiRejects = tx.xiRejects;
    res.instructions = tx.instructions;
    res.abortsByReason = tx.abortsByReason;
    if (region_count == 0)
        ztx_fatal("no measured regions recorded");
    res.meanRegionCycles = region_sum / double(region_count);
    res.throughput = double(cfg.cpus) / res.meanRegionCycles;

    machine.drainAllStores();
    for (unsigned i = 0; i < cfg.poolSize; ++i) {
        res.poolSum += machine.memory().read(
            poolBase + Addr(i) * 256, 8);
    }
    // The 4-consecutive-lines variant of the single-variable pool.
    if (cfg.poolSize == 1 && cfg.varsPerOp == 4) {
        for (unsigned v = 1; v < 4; ++v)
            res.poolSum += machine.memory().read(
                poolBase + Addr(v) * 256, 8);
    }
    return res;
}

double
referenceThroughput(const sim::MachineConfig &machine,
                    unsigned iterations)
{
    UpdateBenchConfig ref;
    ref.cpus = 2;
    ref.poolSize = 1;
    ref.varsPerOp = 1;
    ref.method = SyncMethod::CoarseLock;
    ref.iterations = iterations;
    ref.machine = machine;
    return runUpdateBench(ref).throughput;
}

} // namespace ztx::workload
