/**
 * @file
 * Simulated-memory layout used by the benchmark workloads. Every
 * shared variable and every fine-grained lock sits on its own
 * 256-byte cache line, as in the paper's setup.
 */

#ifndef ZTX_WORKLOAD_LAYOUT_HH
#define ZTX_WORKLOAD_LAYOUT_HH

#include "common/types.hh"

namespace ztx::workload {

/** Pool of shared variables; variable i lives at +i*256. */
inline constexpr Addr poolBase = 0x1000'0000;

/** Fine-grained locks; lock i (for variable i) at +i*256. */
inline constexpr Addr fineLockBase = 0x2000'0000;

/** The single coarse-grained / fallback / read-write lock word. */
inline constexpr Addr globalLockAddr = 0x3000'0000;

/** Hash-table bucket array base (figure 5(e) workload). */
inline constexpr Addr hashTableBase = 0x4000'0000;

/** Linked-queue anchor (head/tail pointers). */
inline constexpr Addr queueBase = 0x5000'0000;

/** Per-CPU node arenas for the queue workload. */
inline constexpr Addr arenaBase = 0x6000'0000;
inline constexpr Addr arenaStride = 0x0100'0000;

/** Sorted-list-set head sentinel and prefill node arena. */
inline constexpr Addr listBase = 0x7000'0000;
inline constexpr Addr listPrefillArena = 0x7100'0000;

} // namespace ztx::workload

#endif // ZTX_WORKLOAD_LAYOUT_HH
