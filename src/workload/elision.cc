#include "elision.hh"

#include "locks/lock_gen.hh"

namespace ztx::workload {

void
emitLockElision(isa::Assembler &as, unsigned lock_base,
                std::int64_t lock_disp,
                const std::function<void()> &body,
                const std::string &tag, const ElisionRegs &regs,
                unsigned max_retries)
{
    locks::LockRegs lock_regs;
    lock_regs.backoff = regs.backoff;

    as.lhi(regs.retry, 0);
    as.label(tag + "_txloop");
    as.tbegin(0x00);
    as.jnz(tag + "_txabort");
    as.lt(regs.scratch, lock_base, lock_disp);
    as.jnz(tag + "_lckbzy");
    body();
    as.tend();
    as.j(tag + "_done");
    as.label(tag + "_lckbzy");
    as.tabort(0, 256); // transient
    as.label(tag + "_txabort");
    as.jo(tag + "_fallback"); // CC3 -> no retry
    as.ahi(regs.retry, 1);
    as.cijnl(regs.retry, std::int64_t(max_retries),
             tag + "_fallback");
    as.ppa(regs.retry);
    as.label(tag + "_lwait"); // wait for the lock to become free
    as.lt(regs.scratch, lock_base, lock_disp);
    as.jz(tag + "_txloop");
    as.lhi(regs.backoff, 64);
    as.delay(regs.backoff);
    as.j(tag + "_lwait");
    as.label(tag + "_fallback");
    locks::SpinLock::emitAcquire(as, lock_base, lock_disp, lock_regs,
                                 tag + "_flk");
    body();
    locks::SpinLock::emitRelease(as, lock_base, lock_disp, lock_regs);
    as.label(tag + "_done");
}

} // namespace ztx::workload
