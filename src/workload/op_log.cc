#include "op_log.hh"

namespace ztx::workload {

OpLog::OpLog(unsigned cpus, std::size_t capacity)
    : capacity_(capacity ? capacity : 1), cpus_(cpus)
{
}

void
OpLog::opInvoke(CpuId cpu, Cycles now, std::uint32_t code,
                std::uint64_t a0, std::uint64_t a1)
{
    PerCpu &pc = cpus_.at(cpu);
    if (!pc.ring.empty() && !pc.ring.back().completed) {
        // Two invokes without a response: the program lost an
        // OPLOGE. Keep the older record pending (maybe completed).
        ++pc.protocolErrors;
    }
    if (pc.ring.size() >= capacity_) {
        pc.ring.pop_front();
        ++pc.dropped;
    }
    OpRecord rec;
    rec.code = code;
    rec.a0 = a0;
    rec.a1 = a1;
    rec.invoke = now;
    pc.ring.push_back(rec);
}

void
OpLog::opResponse(CpuId cpu, Cycles now, std::uint64_t result)
{
    PerCpu &pc = cpus_.at(cpu);
    if (pc.ring.empty() || pc.ring.back().completed) {
        ++pc.protocolErrors; // response without a pending invoke
        return;
    }
    OpRecord &rec = pc.ring.back();
    rec.response = now;
    rec.result = result;
    rec.completed = true;
}

void
OpLog::opCommit(CpuId cpu, Cycles now,
                const core::FootprintAccess *acc, std::size_t n)
{
    (void)now; // versions order commits; the cycle is implicit
    PerCpu &pc = cpus_.at(cpu);
    if (pc.ring.empty() || pc.ring.back().completed) {
        ++pc.protocolErrors; // commit outside an op bracket
        return;
    }
    OpRecord &rec = pc.ring.back();
    const std::lock_guard<std::mutex> guard(versionMutex_);
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t &ver = lineVersions_[acc[i].line];
        if (acc[i].write)
            ++ver;
        rec.accesses.push_back({acc[i].line, ver, acc[i].write});
    }
}

Json
OpLog::pendingOpJson(CpuId cpu) const
{
    const PerCpu &pc = cpus_.at(cpu);
    if (pc.ring.empty() || pc.ring.back().completed)
        return Json();
    const OpRecord &rec = pc.ring.back();
    Json d = Json::object();
    d["code"] = rec.code;
    d["arg0"] = rec.a0;
    d["arg1"] = rec.a1;
    d["invoke_cycle"] = std::uint64_t(rec.invoke);
    d["completed_ops"] = std::uint64_t(pc.ring.size() - 1);
    return d;
}

std::uint64_t
OpLog::protocolErrors() const
{
    std::uint64_t n = 0;
    for (const auto &pc : cpus_)
        n += pc.protocolErrors;
    return n;
}

bool
OpLog::truncated() const
{
    for (const auto &pc : cpus_)
        if (pc.dropped)
            return true;
    return false;
}

std::size_t
OpLog::totalOps() const
{
    std::size_t n = 0;
    for (const auto &pc : cpus_)
        n += pc.ring.size();
    return n;
}

std::uint64_t
OpLog::versionRecords() const
{
    std::uint64_t n = 0;
    for (const auto &pc : cpus_)
        for (const OpRecord &rec : pc.ring)
            n += rec.accesses.size();
    return n;
}

std::vector<inject::LinOp>
OpLog::history(const std::function<void(const OpRecord &,
                                        inject::LinOp &)> &decode)
    const
{
    std::vector<inject::LinOp> ops;
    ops.reserve(totalOps());
    for (CpuId cpu = 0; cpu < cpus_.size(); ++cpu) {
        std::uint32_t seq = 0;
        for (const OpRecord &rec : cpus_[cpu].ring) {
            inject::LinOp op;
            op.invoke = rec.invoke;
            op.response = rec.response;
            op.pending = !rec.completed;
            op.cpu = cpu;
            op.seq = seq++;
            op.accesses = rec.accesses;
            decode(rec, op);
            ops.push_back(op);
        }
    }
    return ops;
}

inject::LinVerdict
checkLoggedHistory(const OpLog &log,
                   const std::function<inject::LinVerdict()> &check)
{
    inject::LinVerdict v;
    v.numOps = log.totalOps();
    if (log.truncated()) {
        v.truncated = true;
        v.reason = "operation log truncated (ring overflow "
                   "dropped records)";
        return v;
    }
    if (log.protocolErrors()) {
        v.reason = std::to_string(log.protocolErrors()) +
                   " op-log protocol error(s): the generated "
                   "program mis-nested OPLOGB/OPLOGE";
        return v;
    }
    return check();
}

inject::OrderInferReport
checkLoggedHistoryOrdered(
    const OpLog &log,
    const std::function<inject::OrderInferReport()> &infer)
{
    inject::OrderInferReport r;
    r.verdict = checkLoggedHistory(
        log, [] { return inject::LinVerdict(); });
    if (log.truncated() || log.protocolErrors()) {
        // Neither oracle can vouch for this history; the verdict
        // above already says why.
        r.fallbackReason = r.verdict.reason;
        return r;
    }
    return infer();
}

} // namespace ztx::workload
