/**
 * @file
 * Host-visible per-CPU operation log: the recording half of the
 * linearizability harness. Each CPU's OPLOGB/OPLOGE pseudo-ops
 * append invoke/response records into that CPU's ring buffer at
 * zero simulated cost; after the run, the workload runner decodes
 * the raw records into a history for inject/lincheck.hh.
 *
 * Semantics of one record:
 *  - invoke: global cycle of OPLOGB, just before the operation's
 *    synchronized region is entered (lock acquire / TBEGIN). The
 *    linearization point cannot be earlier.
 *  - response: global cycle of OPLOGE, just after the region closed
 *    (TEND commit or lock release). The linearization point cannot
 *    be later. Both bounds are conservative by a handful of
 *    straight-line instructions, which can only widen the window —
 *    a widened window never makes a linearizable history fail.
 *  - completed == false: the operation was in flight when the run
 *    stopped (watchdog halt, bounded run). It *may* have taken
 *    effect — the checker must consider both outcomes.
 *
 * Rings are bounded: on overflow the oldest record is dropped and
 * counted. A log with drops is a truncated history and cannot be
 * checked (the checker reports it as such rather than guessing).
 */

#ifndef ZTX_WORKLOAD_OP_LOG_HH
#define ZTX_WORKLOAD_OP_LOG_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"
#include "core/op_recorder.hh"
#include "inject/lincheck.hh"

namespace ztx::workload {

/** One logged ADT operation of one CPU. */
struct OpRecord
{
    std::uint32_t code = 0; ///< workload-specific opcode (OPLOGB imm)
    std::uint64_t a0 = 0;   ///< first argument register at invoke
    std::uint64_t a1 = 0;   ///< second argument register at invoke
    std::uint64_t result = 0; ///< result register at response
    Cycles invoke = 0;
    Cycles response = 0;
    /** False: still pending when the run stopped (maybe completed). */
    bool completed = false;
};

/** Per-CPU ring buffers implementing the CPU-side recorder hook. */
class OpLog : public core::OpRecorder
{
  public:
    /**
     * @param cpus Number of CPUs that will record.
     * @param capacity Records retained per CPU before the oldest
     *        are dropped (and counted as truncation).
     */
    explicit OpLog(unsigned cpus, std::size_t capacity = 1u << 16);

    /** @name core::OpRecorder @{ */
    void opInvoke(CpuId cpu, Cycles now, std::uint32_t code,
                  std::uint64_t a0, std::uint64_t a1) override;
    void opResponse(CpuId cpu, Cycles now,
                    std::uint64_t result) override;
    Json pendingOpJson(CpuId cpu) const override;
    /** @} */

    /** The records of @p cpu in program order. */
    const std::deque<OpRecord> &ops(CpuId cpu) const
    {
        return cpus_.at(cpu).ring;
    }

    /** Records dropped from @p cpu's ring (overflow). */
    std::uint64_t dropped(CpuId cpu) const
    {
        return cpus_.at(cpu).dropped;
    }

    /**
     * Protocol violations seen (OPLOGE without a pending OPLOGB, or
     * two OPLOGBs without a response between them); any non-zero
     * value means the generated program mis-nested its markers.
     */
    std::uint64_t protocolErrors() const;

    /** True when any CPU dropped records: history unusable. */
    bool truncated() const;

    /** Records across all CPUs (completed + pending). */
    std::size_t totalOps() const;

    /**
     * Decode every record into a checker history. Timing fields
     * (invoke/response/pending) and provenance (cpu/seq) are filled
     * here; @p decode maps the raw record to the ADT operation
     * (code, arg, result).
     */
    std::vector<inject::LinOp> history(
        const std::function<void(const OpRecord &,
                                 inject::LinOp &)> &decode) const;

  private:
    /**
     * All mutable state is per-CPU: each CPU appends only to its own
     * slot, so recording is safe under the sharded scheduler's
     * parallel phase without any locking.
     */
    struct PerCpu
    {
        std::deque<OpRecord> ring;
        std::uint64_t dropped = 0;
        std::uint64_t protocolErrors = 0;
    };

    std::size_t capacity_;
    std::vector<PerCpu> cpus_;
};

/**
 * Run @p check unless @p log cannot vouch for its history
 * (truncation or marker protocol errors) — then return an unchecked
 * verdict saying why instead of guessing.
 */
inject::LinVerdict checkLoggedHistory(
    const OpLog &log,
    const std::function<inject::LinVerdict()> &check);

} // namespace ztx::workload

#endif // ZTX_WORKLOAD_OP_LOG_HH
