/**
 * @file
 * Host-visible per-CPU operation log: the recording half of the
 * linearizability harness. Each CPU's OPLOGB/OPLOGE pseudo-ops
 * append invoke/response records into that CPU's ring buffer at
 * zero simulated cost; after the run, the workload runner decodes
 * the raw records into a history for inject/lincheck.hh.
 *
 * Semantics of one record:
 *  - invoke: global cycle of OPLOGB, just before the operation's
 *    synchronized region is entered (lock acquire / TBEGIN). The
 *    linearization point cannot be earlier.
 *  - response: global cycle of OPLOGE, just after the region closed
 *    (TEND commit or lock release). The linearization point cannot
 *    be later. Both bounds are conservative by a handful of
 *    straight-line instructions, which can only widen the window —
 *    a widened window never makes a linearizable history fail.
 *  - completed == false: the operation was in flight when the run
 *    stopped (watchdog halt, bounded run). It *may* have taken
 *    effect — the checker must consider both outcomes.
 *
 * Rings are bounded: on overflow the oldest record is dropped and
 * counted. A log with drops is a truncated history and cannot be
 * checked (the checker reports it as such rather than guessing).
 */

#ifndef ZTX_WORKLOAD_OP_LOG_HH
#define ZTX_WORKLOAD_OP_LOG_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"
#include "core/op_recorder.hh"
#include "inject/lincheck.hh"
#include "inject/order_infer.hh"

namespace ztx::workload {

/** One logged ADT operation of one CPU. */
struct OpRecord
{
    std::uint32_t code = 0; ///< workload-specific opcode (OPLOGB imm)
    std::uint64_t a0 = 0;   ///< first argument register at invoke
    std::uint64_t a1 = 0;   ///< second argument register at invoke
    std::uint64_t result = 0; ///< result register at response
    Cycles invoke = 0;
    Cycles response = 0;
    /** False: still pending when the run stopped (maybe completed). */
    bool completed = false;
    /**
     * Versioned line accesses of the operation's committed region
     * (OPLOGV): the log assigns each touched line a version at
     * commit time — reads observe the current one, writes install
     * the next — and batches the pairs here. Empty when version
     * recording is off or the region never committed.
     */
    std::vector<inject::VersionAccess> accesses;
};

/** Per-CPU ring buffers implementing the CPU-side recorder hook. */
class OpLog : public core::OpRecorder
{
  public:
    /**
     * @param cpus Number of CPUs that will record.
     * @param capacity Records retained per CPU before the oldest
     *        are dropped (and counted as truncation).
     */
    explicit OpLog(unsigned cpus, std::size_t capacity = 1u << 16);

    /** @name core::OpRecorder @{ */
    void opInvoke(CpuId cpu, Cycles now, std::uint32_t code,
                  std::uint64_t a0, std::uint64_t a1) override;
    void opResponse(CpuId cpu, Cycles now,
                    std::uint64_t result) override;
    void opCommit(CpuId cpu, Cycles now,
                  const core::FootprintAccess *acc,
                  std::size_t n) override;
    Json pendingOpJson(CpuId cpu) const override;
    /** @} */

    /** The records of @p cpu in program order. */
    const std::deque<OpRecord> &ops(CpuId cpu) const
    {
        return cpus_.at(cpu).ring;
    }

    /** Records dropped from @p cpu's ring (overflow). */
    std::uint64_t dropped(CpuId cpu) const
    {
        return cpus_.at(cpu).dropped;
    }

    /**
     * Protocol violations seen (OPLOGE without a pending OPLOGB, or
     * two OPLOGBs without a response between them); any non-zero
     * value means the generated program mis-nested its markers.
     */
    std::uint64_t protocolErrors() const;

    /** True when any CPU dropped records: history unusable. */
    bool truncated() const;

    /** Records across all CPUs (completed + pending). */
    std::size_t totalOps() const;

    /** Version accesses recorded across all CPUs. */
    std::uint64_t versionRecords() const;

    /**
     * Decode every record into a checker history. Timing fields
     * (invoke/response/pending) and provenance (cpu/seq) are filled
     * here; @p decode maps the raw record to the ADT operation
     * (code, arg, result).
     */
    std::vector<inject::LinOp> history(
        const std::function<void(const OpRecord &,
                                 inject::LinOp &)> &decode) const;

  private:
    /**
     * All mutable state is per-CPU: each CPU appends only to its own
     * slot, so recording is safe under the sharded scheduler's
     * parallel phase without any locking.
     */
    struct PerCpu
    {
        std::deque<OpRecord> ring;
        std::uint64_t dropped = 0;
        std::uint64_t protocolErrors = 0;
    };

    std::size_t capacity_;
    std::vector<PerCpu> cpus_;

    /**
     * Per-line version table, shared across CPUs. Unlike the rings
     * this is cross-CPU state, so commits guard it with a mutex;
     * the result is still deterministic under the sharded
     * scheduler because conflicting commits (same line, at least
     * one write) cannot race across host threads — coherence
     * defers cross-shard conflicts to the serial barrier — and
     * racing read-read commits assign the same version either way.
     */
    std::mutex versionMutex_;
    std::unordered_map<Addr, std::uint64_t> lineVersions_;
};

/**
 * Run @p check unless @p log cannot vouch for its history
 * (truncation or marker protocol errors) — then return an unchecked
 * verdict saying why instead of guessing. A truncated log yields
 * `truncated = true` so harnesses can report overflow distinctly.
 */
inject::LinVerdict checkLoggedHistory(
    const OpLog &log,
    const std::function<inject::LinVerdict()> &check);

/**
 * Order-inference counterpart of checkLoggedHistory: run @p infer
 * (one of the inject::infer*Linearizable entry points, which fall
 * back to the DFS themselves) unless the log is truncated or
 * protocol-broken — those can never be checked by either oracle.
 */
inject::OrderInferReport checkLoggedHistoryOrdered(
    const OpLog &log,
    const std::function<inject::OrderInferReport()> &infer);

} // namespace ztx::workload

#endif // ZTX_WORKLOAD_OP_LOG_HH
