#include "report.hh"

#include <cstdio>
#include <utility>

#include "common/log.hh"

namespace ztx::workload {

SeriesTable::SeriesTable(std::string x_label,
                         std::vector<std::string> series)
    : xLabel_(std::move(x_label)), series_(std::move(series))
{
}

void
SeriesTable::addRow(double x, const std::vector<double> &values)
{
    if (values.size() != series_.size())
        ztx_panic("row width ", values.size(), " != series count ",
                  series_.size());
    rows_.push_back({x, values});
}

double
SeriesTable::value(std::size_t row, std::size_t series_idx) const
{
    return rows_.at(row).values.at(series_idx);
}

void
SeriesTable::print(std::ostream &os) const
{
    constexpr int width = 14;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%*s", width, xLabel_.c_str());
    os << buf;
    for (const auto &name : series_) {
        std::snprintf(buf, sizeof(buf), "%*s", width, name.c_str());
        os << buf;
    }
    os << '\n';
    for (const auto &row : rows_) {
        std::snprintf(buf, sizeof(buf), "%*.4g", width, row.x);
        os << buf;
        for (const double v : row.values) {
            std::snprintf(buf, sizeof(buf), "%*.4g", width, v);
            os << buf;
        }
        os << '\n';
    }
}

} // namespace ztx::workload
