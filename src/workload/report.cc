#include "report.hh"

#include <cstdio>
#include <utility>

#include "common/log.hh"
#include "sim/machine.hh"

namespace ztx::workload {

TxStatsSummary
collectTxStats(const sim::Machine &machine)
{
    static const std::string abort_prefix = "tx.abort.";
    TxStatsSummary sum;
    for (unsigned i = 0; i < machine.numCpus(); ++i) {
        for (const auto &[stat, c] :
             machine.cpu(i).stats().counters()) {
            if (stat == "tx.commits")
                sum.commits += c.value();
            else if (stat == "tx.aborts")
                sum.aborts += c.value();
            else if (stat == "xi.rejects_sent")
                sum.xiRejects += c.value();
            else if (stat == "instructions")
                sum.instructions += c.value();
            else if (stat.compare(0, abort_prefix.size(),
                                  abort_prefix) == 0)
                sum.abortsByReason[stat.substr(
                    abort_prefix.size())] += c.value();
        }
    }
    return sum;
}

SchedStatsSummary
collectSchedStats(const sim::Machine &machine)
{
    const auto &counters = machine.stats().counters();
    const auto get = [&counters](const char *stat) {
        const auto it = counters.find(stat);
        return it == counters.end() ? std::uint64_t(0)
                                    : it->second.value();
    };
    SchedStatsSummary sum;
    sum.stepsLocal = get("sched.steps_local");
    sum.stepsDeferred = get("sched.steps_deferred");
    sum.stepsTotal = get("sched.steps_total");
    sum.l3LocalHits = get("sched.l3_local_hits");
    sum.heapReinserts = get("sched.heap_reinserts");
    return sum;
}

RasSummary
collectRasStats(sim::Machine &machine)
{
    RasSummary sum;
    const auto &hier = machine.hierarchy().stats().counters();
    const auto get = [](const auto &counters, const char *stat) {
        const auto it = counters.find(stat);
        return it == counters.end() ? std::uint64_t(0)
                                    : it->second.value();
    };
    sum.poisoned = get(hier, "poison.injected");
    sum.spread = get(hier, "poison.spread_fetch") +
                 get(hier, "poison.spread_castout") +
                 get(hier, "poison.spread_xi");
    sum.scrubs = get(hier, "poison.scrubbed");
    for (unsigned i = 0; i < machine.numCpus(); ++i) {
        const auto &cpu = machine.cpu(i).stats().counters();
        sum.machineChecks += get(cpu, "machine_checks");
        sum.restarts += get(cpu, "workload_restarts");
        sum.poisonAborts += get(cpu, "tx.abort.data-poisoned");
    }
    return sum;
}

std::string
indexOracleCheck(const sim::Machine &machine)
{
    std::string why = machine.hierarchy().indexCheck();
    if (!why.empty())
        return why;
    for (unsigned i = 0; i < machine.numCpus(); ++i) {
        why = machine.cpu(i).storeCache().indexCheck();
        if (!why.empty())
            return "cpu" + std::to_string(i) +
                   " store cache: " + why;
    }
    return "";
}

SeriesTable::SeriesTable(std::string x_label,
                         std::vector<std::string> series)
    : xLabel_(std::move(x_label)), series_(std::move(series))
{
}

void
SeriesTable::addRow(double x, const std::vector<double> &values)
{
    if (values.size() != series_.size())
        ztx_panic("row width ", values.size(), " != series count ",
                  series_.size());
    rows_.push_back({x, values});
}

double
SeriesTable::value(std::size_t row, std::size_t series_idx) const
{
    return rows_.at(row).values.at(series_idx);
}

void
SeriesTable::print(std::ostream &os) const
{
    constexpr int width = 14;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%*s", width, xLabel_.c_str());
    os << buf;
    for (const auto &name : series_) {
        std::snprintf(buf, sizeof(buf), "%*s", width, name.c_str());
        os << buf;
    }
    os << '\n';
    for (const auto &row : rows_) {
        std::snprintf(buf, sizeof(buf), "%*.4g", width, row.x);
        os << buf;
        for (const double v : row.values) {
            std::snprintf(buf, sizeof(buf), "%*.4g", width, v);
            os << buf;
        }
        os << '\n';
    }
}

} // namespace ztx::workload
