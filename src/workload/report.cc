#include "report.hh"

#include <cstdio>
#include <utility>

#include "common/log.hh"
#include "sim/machine.hh"

namespace ztx::workload {

TxStatsSummary
collectTxStats(const sim::Machine &machine)
{
    static const std::string abort_prefix = "tx.abort.";
    TxStatsSummary sum;
    for (unsigned i = 0; i < machine.numCpus(); ++i) {
        for (const auto &[stat, c] :
             machine.cpu(i).stats().counters()) {
            if (stat == "tx.commits")
                sum.commits += c.value();
            else if (stat == "tx.aborts")
                sum.aborts += c.value();
            else if (stat == "xi.rejects_sent")
                sum.xiRejects += c.value();
            else if (stat == "instructions")
                sum.instructions += c.value();
            else if (stat.compare(0, abort_prefix.size(),
                                  abort_prefix) == 0)
                sum.abortsByReason[stat.substr(
                    abort_prefix.size())] += c.value();
        }
    }
    return sum;
}

SeriesTable::SeriesTable(std::string x_label,
                         std::vector<std::string> series)
    : xLabel_(std::move(x_label)), series_(std::move(series))
{
}

void
SeriesTable::addRow(double x, const std::vector<double> &values)
{
    if (values.size() != series_.size())
        ztx_panic("row width ", values.size(), " != series count ",
                  series_.size());
    rows_.push_back({x, values});
}

double
SeriesTable::value(std::size_t row, std::size_t series_idx) const
{
    return rows_.at(row).values.at(series_idx);
}

void
SeriesTable::print(std::ostream &os) const
{
    constexpr int width = 14;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%*s", width, xLabel_.c_str());
    os << buf;
    for (const auto &name : series_) {
        std::snprintf(buf, sizeof(buf), "%*s", width, name.c_str());
        os << buf;
    }
    os << '\n';
    for (const auto &row : rows_) {
        std::snprintf(buf, sizeof(buf), "%*.4g", width, row.x);
        os << buf;
        for (const double v : row.values) {
            std::snprintf(buf, sizeof(buf), "%*.4g", width, v);
            os << buf;
        }
        os << '\n';
    }
}

} // namespace ztx::workload
