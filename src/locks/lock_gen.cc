#include "lock_gen.hh"

namespace ztx::locks {

namespace {

/** Backoff doubling with a cap, shared by all spin loops. */
void
emitBackoff(isa::Assembler &as, const LockRegs &regs,
            const std::string &tag, const std::string &retry_label)
{
    as.delay(regs.backoff);
    as.agr(regs.backoff, regs.backoff);
    as.cghi(regs.backoff, 256);
    as.brc(isa::maskCc0 | isa::maskCc1, retry_label); // <= cap
    as.lhi(regs.backoff, 256);
    as.j(retry_label);
    (void)tag;
}

} // namespace

void
SpinLock::emitAcquire(isa::Assembler &as, unsigned base,
                      std::int64_t disp, const LockRegs &regs,
                      const std::string &tag)
{
    as.lhi(regs.backoff, 4);
    as.label(tag + "_try");
    as.lt(regs.scratch1, base, disp);
    as.jz(tag + "_cas");
    as.label(tag + "_wait");
    emitBackoff(as, regs, tag, tag + "_try");
    as.label(tag + "_cas");
    as.lhi(regs.scratch1, 0);
    as.lhi(regs.scratch2, 1);
    as.cs(regs.scratch1, regs.scratch2, base, disp);
    as.jnz(tag + "_wait");
}

void
SpinLock::emitRelease(isa::Assembler &as, unsigned base,
                      std::int64_t disp, const LockRegs &regs)
{
    as.lhi(regs.scratch1, 0);
    as.stg(regs.scratch1, base, disp);
}

void
RwLock::emitReadAcquire(isa::Assembler &as, unsigned base,
                        std::int64_t disp, const LockRegs &regs,
                        const std::string &tag)
{
    as.lhi(regs.backoff, 4);
    as.label(tag + "_try");
    as.lg(regs.scratch1, base, disp);
    as.srlg(regs.scratch2, regs.scratch1, 32);
    as.cghi(regs.scratch2, 0);
    as.jnz(tag + "_wait"); // writer active
    as.lr(regs.scratch2, regs.scratch1);
    as.ahi(regs.scratch2, 1);
    as.cs(regs.scratch1, regs.scratch2, base, disp);
    as.jz(tag + "_done");
    as.label(tag + "_wait");
    emitBackoff(as, regs, tag, tag + "_try");
    as.label(tag + "_done");
}

void
RwLock::emitReadRelease(isa::Assembler &as, unsigned base,
                        std::int64_t disp, const LockRegs &regs,
                        const std::string &tag)
{
    as.label(tag + "_rel");
    as.lg(regs.scratch1, base, disp);
    as.lr(regs.scratch2, regs.scratch1);
    as.ahi(regs.scratch2, -1);
    as.cs(regs.scratch1, regs.scratch2, base, disp);
    as.jnz(tag + "_rel");
}

void
RwLock::emitWriteAcquire(isa::Assembler &as, unsigned base,
                         std::int64_t disp, const LockRegs &regs,
                         const std::string &tag)
{
    as.lhi(regs.backoff, 4);
    as.label(tag + "_try");
    as.lt(regs.scratch1, base, disp);
    as.jnz(tag + "_wait"); // readers or writer active
    as.lhi(regs.scratch1, 0);
    as.lhi(regs.scratch2, 1);
    as.sllg(regs.scratch2, regs.scratch2, 32);
    as.cs(regs.scratch1, regs.scratch2, base, disp);
    as.jz(tag + "_done");
    as.label(tag + "_wait");
    emitBackoff(as, regs, tag, tag + "_try");
    as.label(tag + "_done");
}

void
RwLock::emitWriteRelease(isa::Assembler &as, unsigned base,
                         std::int64_t disp, const LockRegs &regs)
{
    as.lhi(regs.scratch1, 0);
    as.stg(regs.scratch1, base, disp);
}

} // namespace ztx::locks
