/**
 * @file
 * Lock algorithm code generators.
 *
 * The paper's baselines (§IV): a simple mutex that "first tests the
 * lock to be empty and spins if necessary, then uses compare-and-swap
 * to set the lock"; release is a plain store. The read-write lock is
 * the classic reader-count/writer-bit word whose read-count update on
 * every reader entry/exit is exactly the scalability bottleneck
 * figure 5(d) demonstrates.
 *
 * Generators emit instruction sequences into an Assembler; the lock
 * word address is (base register + displacement). Spins use bounded
 * exponential backoff via the DELAY pseudo-op so contended simulations
 * stay tractable (real code uses equivalent pause loops).
 */

#ifndef ZTX_LOCKS_LOCK_GEN_HH
#define ZTX_LOCKS_LOCK_GEN_HH

#include <cstdint>
#include <string>

#include "isa/assembler.hh"

namespace ztx::locks {

/** Scratch registers a lock sequence may clobber. */
struct LockRegs
{
    unsigned scratch1 = 1; ///< CS compare value
    unsigned scratch2 = 2; ///< CS swap value
    unsigned backoff = 11; ///< spin backoff accumulator
};

/**
 * Test-then-compare-and-swap spin lock. The lock word is 8 bytes:
 * 0 = free, 1 = held.
 */
class SpinLock
{
  public:
    /**
     * Emit the acquire sequence.
     * @param as Assembler to emit into.
     * @param base Register holding (part of) the lock address.
     * @param disp Displacement of the lock word.
     * @param regs Scratch registers.
     * @param tag Unique label prefix for this emission site.
     */
    static void emitAcquire(isa::Assembler &as, unsigned base,
                            std::int64_t disp, const LockRegs &regs,
                            const std::string &tag);

    /** Emit the release sequence (plain store of zero). */
    static void emitRelease(isa::Assembler &as, unsigned base,
                            std::int64_t disp, const LockRegs &regs);
};

/**
 * Reader-writer lock in one 8-byte word: bits 0..31 hold the reader
 * count, bit 32 the writer flag. Readers CAS-increment the count
 * when no writer is present; the writer CASes 0 -> writer-flag.
 */
class RwLock
{
  public:
    /** Value of the writer flag within the lock word. */
    static constexpr std::uint64_t writerBit = std::uint64_t(1) << 32;

    /** Emit reader entry (increment read count). */
    static void emitReadAcquire(isa::Assembler &as, unsigned base,
                                std::int64_t disp,
                                const LockRegs &regs,
                                const std::string &tag);

    /** Emit reader exit (decrement read count). */
    static void emitReadRelease(isa::Assembler &as, unsigned base,
                                std::int64_t disp,
                                const LockRegs &regs,
                                const std::string &tag);

    /** Emit writer entry (CAS 0 -> writerBit). */
    static void emitWriteAcquire(isa::Assembler &as, unsigned base,
                                 std::int64_t disp,
                                 const LockRegs &regs,
                                 const std::string &tag);

    /** Emit writer exit (store 0). */
    static void emitWriteRelease(isa::Assembler &as, unsigned base,
                                 std::int64_t disp,
                                 const LockRegs &regs);
};

} // namespace ztx::locks

#endif // ZTX_LOCKS_LOCK_GEN_HH
