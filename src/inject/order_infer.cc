#include "order_infer.hh"

#include <algorithm>
#include <map>
#include <queue>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "inject/adt_spec.hh"

namespace ztx::inject {

namespace {

using spec::describeOp;
using spec::respOf;

/** Version chains of one object: (version, op index) per access. */
struct ObjectChain
{
    std::vector<std::pair<std::uint64_t, std::uint32_t>> writes;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> reads;
};

/**
 * The shared inference pass: everything up to (and including) the
 * emission of the serial order, independent of the checked ADT.
 * Returns true when an order was inferred; false leaves `why` with
 * the fallback reason.
 */
class Inference
{
  public:
    explicit Inference(const std::vector<LinOp> &history)
        : ops_(history)
    {
    }

    bool
    run(OrderInferReport &report, std::string &why)
    {
        const std::size_t n = ops_.size();
        for (const LinOp &op : ops_) {
            report.versionRecords += op.accesses.size();
            if (op.pending) {
                why = "history has pending operation(s): the "
                      "region may or may not have committed";
                return false;
            }
        }
        if (!validate(why))
            return false;
        for (std::size_t i = 0; i < n; ++i) {
            if (ops_[i].accesses.empty()) {
                why = "completed " + describeOp(ops_[i]) +
                      " carries no version records";
                return false;
            }
        }
        if (!buildChains(why) || !buildEdges(report, why))
            return false;
        return emitOrder(report, why);
    }

  private:
    bool
    validate(std::string &why) const
    {
        std::map<CpuId, std::vector<const LinOp *>> per_cpu;
        for (const LinOp &op : ops_) {
            if (op.response < op.invoke) {
                why = "malformed history: " + describeOp(op) +
                      " responds before it is invoked";
                return false;
            }
            per_cpu[op.cpu].push_back(&op);
        }
        for (auto &[cpu, list] : per_cpu) {
            std::stable_sort(list.begin(), list.end(),
                             [](const LinOp *a, const LinOp *b) {
                                 return a->invoke < b->invoke;
                             });
            for (std::size_t i = 0; i + 1 < list.size(); ++i) {
                if (list[i]->response > list[i + 1]->invoke) {
                    why = "malformed history: " +
                          describeOp(*list[i]) + " overlaps " +
                          describeOp(*list[i + 1]) +
                          " on cpu" + std::to_string(cpu);
                    return false;
                }
            }
        }
        return true;
    }

    bool
    buildChains(std::string &why)
    {
        for (std::uint32_t i = 0; i < ops_.size(); ++i) {
            for (const VersionAccess &a : ops_[i].accesses) {
                ObjectChain &c = chains_[a.objid];
                (a.write ? c.writes : c.reads)
                    .push_back({a.version, i});
            }
        }
        for (auto &[objid, c] : chains_) {
            std::sort(c.writes.begin(), c.writes.end());
            // Writers must install exactly versions 1..W: the
            // history is complete (no truncation at this point), so
            // any duplicate or gap means the log is inconsistent.
            for (std::size_t v = 0; v < c.writes.size(); ++v) {
                if (c.writes[v].first != v + 1) {
                    why = "version " +
                          std::to_string(c.writes[v].first) +
                          " of object 0x" + hex(objid) +
                          (v > 0 && c.writes[v].first ==
                                        c.writes[v - 1].first
                               ? " installed twice"
                               : " breaks the 1..W write chain");
                    return false;
                }
            }
            const std::uint64_t top = c.writes.size();
            for (const auto &[ver, op] : c.reads) {
                if (ver > top) {
                    why = "read of uninstalled version " +
                          std::to_string(ver) + " of object 0x" +
                          hex(objid);
                    return false;
                }
            }
        }
        return true;
    }

    bool
    addEdge(std::uint32_t from, std::uint32_t to, std::string &why)
    {
        if (from == to) {
            why = "self-referential version edge at " +
                  describeOp(ops_[from]);
            return false;
        }
        edges_.push_back({from, to});
        return true;
    }

    bool
    buildEdges(OrderInferReport &report, std::string &why)
    {
        // Program order: each CPU's ops by per-CPU sequence number.
        std::map<CpuId, std::vector<std::uint32_t>> per_cpu;
        for (std::uint32_t i = 0; i < ops_.size(); ++i)
            per_cpu[ops_[i].cpu].push_back(i);
        for (auto &[cpu, list] : per_cpu) {
            std::sort(list.begin(), list.end(),
                      [&](std::uint32_t a, std::uint32_t b) {
                          return ops_[a].seq < ops_[b].seq;
                      });
            for (std::size_t i = 0; i + 1 < list.size(); ++i) {
                if (!addEdge(list[i], list[i + 1], why))
                    return false;
                ++report.programEdges;
            }
        }

        // Version order: W(v) -> W(v+1), W(v) -> R(v), R(v) ->
        // W(v+1); readers of the initial version precede the first
        // writer.
        for (auto &[objid, c] : chains_) {
            const std::size_t w = c.writes.size();
            for (std::size_t v = 0; v + 1 < w; ++v) {
                if (!addEdge(c.writes[v].second,
                             c.writes[v + 1].second, why))
                    return false;
                ++report.versionEdges;
            }
            for (const auto &[ver, op] : c.reads) {
                if (ver >= 1) {
                    if (!addEdge(c.writes[ver - 1].second, op, why))
                        return false;
                    ++report.versionEdges;
                }
                if (ver < w) {
                    if (!addEdge(op, c.writes[ver].second, why))
                        return false;
                    ++report.versionEdges;
                }
            }
        }
        return true;
    }

    /**
     * Kahn's algorithm with a min-heap keyed (invoke, cpu, seq):
     * deterministic, and picking the earliest-invoked ready op lets
     * the incremental real-time check below certify the order. If
     * any operation that must precede `u` in real time (responded
     * before `u` was invoked) is still unemitted when `u` is
     * emitted, the version log contradicts the recorded windows.
     */
    bool
    emitOrder(OrderInferReport &report, std::string &why)
    {
        const std::uint32_t n = std::uint32_t(ops_.size());

        // CSR adjacency.
        std::vector<std::uint32_t> indeg(n, 0), head(n + 1, 0);
        for (const auto &[from, to] : edges_) {
            ++head[from + 1];
            ++indeg[to];
        }
        for (std::uint32_t i = 0; i < n; ++i)
            head[i + 1] += head[i];
        std::vector<std::uint32_t> adj(edges_.size());
        {
            std::vector<std::uint32_t> fill = head;
            for (const auto &[from, to] : edges_)
                adj[fill[from]++] = to;
        }

        using Key = std::tuple<Cycles, CpuId, std::uint32_t,
                               std::uint32_t>;
        std::priority_queue<Key, std::vector<Key>,
                            std::greater<Key>>
            ready;
        for (std::uint32_t i = 0; i < n; ++i) {
            if (indeg[i] == 0) {
                ready.push({ops_[i].invoke, ops_[i].cpu,
                            ops_[i].seq, i});
            }
        }

        using RtKey = std::pair<Cycles, std::uint32_t>;
        std::priority_queue<RtKey, std::vector<RtKey>,
                            std::greater<RtKey>>
            unemitted;
        for (std::uint32_t i = 0; i < n; ++i)
            unemitted.push({respOf(ops_[i]), i});
        std::vector<char> emitted(n, 0);

        report.order.reserve(n);
        while (!ready.empty()) {
            const std::uint32_t u = std::get<3>(ready.top());
            ready.pop();
            while (!unemitted.empty() &&
                   emitted[unemitted.top().second])
                unemitted.pop();
            if (!unemitted.empty() &&
                unemitted.top().first < ops_[u].invoke) {
                why = "inferred order violates real-time "
                      "precedence: " +
                      describeOp(ops_[unemitted.top().second]) +
                      " responded before " + describeOp(ops_[u]) +
                      " was invoked but is ordered after it";
                return false;
            }
            emitted[u] = 1;
            report.order.push_back(u);
            for (std::uint32_t e = head[u]; e < head[u + 1]; ++e) {
                if (--indeg[adj[e]] == 0) {
                    const LinOp &next = ops_[adj[e]];
                    ready.push({next.invoke, next.cpu, next.seq,
                                adj[e]});
                }
            }
        }
        if (report.order.size() != n) {
            why = "cycle in the version-order graph (" +
                  std::to_string(n - report.order.size()) +
                  " operation(s) unordered)";
            report.order.clear();
            return false;
        }
        report.orderLength = n;
        return true;
    }

    static std::string
    hex(Addr a)
    {
        static const char digits[] = "0123456789abcdef";
        std::string s;
        do {
            s.insert(s.begin(), digits[a & 0xF]);
            a >>= 4;
        } while (a);
        return s;
    }

    const std::vector<LinOp> &ops_;
    std::unordered_map<Addr, ObjectChain> chains_;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;
};

/**
 * Infer the serial order and replay it against @p init. A history
 * the inference pass rejects — and a replay failure the DFS
 * refutes, which only a corrupted version log can produce — is
 * decided by @p fallback instead.
 */
template <typename State>
OrderInferReport
inferAndReplay(const std::vector<LinOp> &history, State init,
               const std::function<LinVerdict()> &fallback)
{
    OrderInferReport report;
    std::string why;
    Inference inference(history);
    if (!inference.run(report, why)) {
        report.fallbackReason = why;
        report.verdict = fallback();
        return report;
    }

    report.inferred = true;
    LinVerdict &v = report.verdict;
    v.numOps = history.size();

    State state = std::move(init);
    for (std::size_t pos = 0; pos < report.order.size(); ++pos) {
        const LinOp &op = history[report.order[pos]];
        ++v.statesExplored;
        if (state.apply(op))
            continue;
        v.checked = true;
        v.linearizable = false;
        v.reason = describeOp(op) +
                   " cannot be applied at position " +
                   std::to_string(pos) +
                   " of the inferred serial order";
        v.window = {op};
        // The inferred order is the real commit order whenever the
        // version log is faithful, so this is a genuine violation —
        // but give the DFS a bounded chance to refute it in case
        // the log itself is corrupt (a refutation means some other
        // linearization works).
        const LinVerdict dfs = fallback();
        if (dfs.checked && dfs.linearizable) {
            report.inferred = false;
            report.fallbackReason =
                "inferred order fails replay but the history "
                "linearizes: version log inconsistent with the "
                "recorded windows";
            report.verdict = dfs;
        }
        return report;
    }
    v.checked = true;
    v.linearizable = true;
    return report;
}

} // namespace

Json
orderInferJson(const OrderInferReport &r)
{
    Json d = Json::object();
    d["inferred"] = r.inferred;
    if (!r.fallbackReason.empty())
        d["fallback_reason"] = r.fallbackReason;
    d["version_records"] = r.versionRecords;
    d["version_edges"] = r.versionEdges;
    d["program_edges"] = r.programEdges;
    d["order_length"] = r.orderLength;
    d["verdict"] = linVerdictJson(r.verdict);
    return d;
}

OrderInferReport
inferSetLinearizable(const std::vector<LinOp> &history,
                     const std::vector<std::uint64_t> &initial_keys,
                     const LinCheckLimits &limits)
{
    spec::SetState init;
    init.keys.insert(initial_keys.begin(), initial_keys.end());
    return inferAndReplay(history, std::move(init), [&] {
        return checkSetLinearizable(history, initial_keys, limits);
    });
}

OrderInferReport
inferQueueLinearizable(
    const std::vector<LinOp> &history,
    const std::vector<std::uint64_t> &initial_values,
    const LinCheckLimits &limits)
{
    spec::QueueState init;
    init.q.assign(initial_values.begin(), initial_values.end());
    return inferAndReplay(history, std::move(init), [&] {
        return checkQueueLinearizable(history, initial_values,
                                      limits);
    });
}

OrderInferReport
inferMapLinearizable(
    const std::vector<LinOp> &history,
    const std::vector<std::uint64_t> &initial_slots,
    unsigned buckets, unsigned max_probes,
    const std::function<std::uint64_t(std::uint64_t)> &bucket_of,
    const LinCheckLimits &limits)
{
    spec::MapState init;
    init.slots = initial_slots;
    init.maxProbes = max_probes;
    init.bucketOf = &bucket_of;
    return inferAndReplay(history, std::move(init), [&] {
        return checkMapLinearizable(history, initial_slots, buckets,
                                    max_probes, bucket_of, limits);
    });
}

} // namespace ztx::inject
