/**
 * @file
 * Consistency oracle for the chaos workloads: after a run under
 * fault injection, walk the shared data structures in simulated
 * memory and verify the invariants that every linearizable history
 * of the workload must preserve. A fault injector may slow a run
 * down arbitrarily, but committed state must never be corrupt —
 * any violation here means isolation or atomicity was broken.
 *
 * The checkers are deliberately host-side and structural (no timing
 * state): they can run after watchdog-interrupted machines too, as
 * long as the caller only asks once every CPU halted (mid-flight
 * transactions otherwise hide buffered stores). That precondition is
 * enforced, not just documented: every checker takes the caller's
 * all-CPUs-halted observation and refuses the walk (with a
 * violation, so the run still fails loudly) when it does not hold.
 */

#ifndef ZTX_INJECT_ORACLE_HH
#define ZTX_INJECT_ORACLE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ztx::mem {
class MainMemory;
} // namespace ztx::mem

namespace ztx::inject {

/** Outcome of one oracle check. */
struct OracleReport
{
    bool ok = true;
    /** Human-readable descriptions of every violated invariant. */
    std::vector<std::string> violations;

    /** Record a violation. */
    void
    fail(std::string what)
    {
        ok = false;
        violations.push_back(std::move(what));
    }

    /** "ok" or the violations joined by "; ". */
    std::string summary() const;
};

/**
 * Check the sorted-list-set structure (workload/list_set.cc layout:
 * head sentinel with next at @p head_sentinel + 8; nodes key@+0,
 * next@+8): the walk terminates (acyclic), keys strictly ascend,
 * and the length equals @p expected_length (prefill plus the CPUs'
 * net insert counters — the linearizable effect count).
 *
 * @param all_cpus_halted Caller's observation that every CPU halted
 *        (e.g. Machine::allHalted()). False refuses the walk with a
 *        violation: mid-flight transactions hide buffered stores.
 */
OracleReport checkListSet(const mem::MainMemory &mem, bool all_cpus_halted,
                          Addr head_sentinel,
                          std::int64_t expected_length);

/**
 * Check the linked queue (workload/queue.cc layout: head pointer at
 * @p head_ptr_addr, tail pointer at @p tail_ptr_addr, nodes
 * value@+0 next@+8 with a dummy head): the walk from head
 * terminates, the tail pointer is the last reachable node, its next
 * is null, and the residual length equals @p expected_length
 * (enqueues minus successful dequeues).
 *
 * @param all_cpus_halted See checkListSet().
 */
OracleReport checkQueue(const mem::MainMemory &mem, bool all_cpus_halted,
                        Addr head_ptr_addr, Addr tail_ptr_addr,
                        std::int64_t expected_length);

/**
 * Check the open-addressed hash table (workload/hashtable.cc
 * layout: slot i at @p table_base + i*256, key@+0 value@+8, 0 marks
 * empty, linear probing without wraparound into a padded tail):
 * every key sits inside its probe window [bucket_of(key),
 * bucket_of(key) + max_probes), appears only once, carries the
 * workload's value==key payload, and the occupied-slot count lies
 * in [min_occupied, max_occupied] (puts only ever add keys).
 *
 * @param all_cpus_halted See checkListSet().
 */
OracleReport checkHashTable(
    const mem::MainMemory &mem, bool all_cpus_halted,
    Addr table_base, unsigned buckets, unsigned max_probes,
    const std::function<std::uint64_t(std::uint64_t)> &bucket_of,
    std::int64_t min_occupied, std::int64_t max_occupied);

} // namespace ztx::inject

#endif // ZTX_INJECT_ORACLE_HH
