#include "oracle.hh"

#include <set>
#include <sstream>

#include "mem/main_memory.hh"

namespace ztx::inject {

namespace {

/** Bound on any pointer walk: beyond this, assume a cycle. */
constexpr std::uint64_t walkBound = 1u << 20;

std::string
hex(Addr addr)
{
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

/**
 * Refuse structural walks while CPUs still run: a mid-flight
 * transaction's buffered stores are invisible to the walk, so any
 * verdict would be meaningless.
 * @return True when the check must abort (violation recorded).
 */
bool
refuseLiveWalk(OracleReport &rep, bool all_cpus_halted)
{
    if (all_cpus_halted)
        return false;
    rep.fail("oracle invoked while CPUs are still running: "
             "structural walk would miss in-flight transactional "
             "state (halt all CPUs first)");
    return true;
}

} // namespace

std::string
OracleReport::summary() const
{
    if (ok)
        return "ok";
    std::string s;
    for (const auto &v : violations) {
        if (!s.empty())
            s += "; ";
        s += v;
    }
    return s;
}

OracleReport
checkListSet(const mem::MainMemory &mem, bool all_cpus_halted,
             Addr head_sentinel, std::int64_t expected_length)
{
    OracleReport rep;
    if (refuseLiveWalk(rep, all_cpus_halted))
        return rep;
    std::int64_t length = 0;
    std::int64_t last_key = 0;
    bool sorted = true;
    Addr node = mem.read(head_sentinel + 8, 8);
    while (node != 0) {
        if (std::uint64_t(length) >= walkBound) {
            rep.fail("list walk exceeded " +
                     std::to_string(walkBound) +
                     " nodes (cycle in next pointers?)");
            return rep;
        }
        const auto key = std::int64_t(mem.read(node + 0, 8));
        if (key <= last_key)
            sorted = false;
        last_key = key;
        ++length;
        node = mem.read(node + 8, 8);
    }
    if (!sorted)
        rep.fail("list keys not strictly ascending");
    if (expected_length >= 0 && length != expected_length) {
        rep.fail("list length " + std::to_string(length) +
                 " != expected " + std::to_string(expected_length) +
                 " (lost or duplicated committed inserts/deletes)");
    }
    return rep;
}

OracleReport
checkQueue(const mem::MainMemory &mem, bool all_cpus_halted,
           Addr head_ptr_addr, Addr tail_ptr_addr,
           std::int64_t expected_length)
{
    OracleReport rep;
    if (refuseLiveWalk(rep, all_cpus_halted))
        return rep;
    const Addr head = mem.read(head_ptr_addr, 8);
    const Addr tail = mem.read(tail_ptr_addr, 8);
    if (head == 0 || tail == 0) {
        rep.fail("null queue anchor (head=" + hex(head) +
                 " tail=" + hex(tail) + ")");
        return rep;
    }
    std::int64_t length = 0;
    Addr last = head;
    Addr node = mem.read(head + 8, 8);
    while (node != 0) {
        if (std::uint64_t(length) >= walkBound) {
            rep.fail("queue walk exceeded " +
                     std::to_string(walkBound) +
                     " nodes (cycle in next pointers?)");
            return rep;
        }
        last = node;
        ++length;
        node = mem.read(node + 8, 8);
    }
    if (last != tail) {
        rep.fail("tail pointer " + hex(tail) +
                 " is not the last reachable node " + hex(last));
    }
    if (mem.read(tail + 8, 8) != 0)
        rep.fail("tail node's next pointer is not null");
    if (expected_length >= 0 && length != expected_length) {
        rep.fail("queue length " + std::to_string(length) +
                 " != expected " + std::to_string(expected_length) +
                 " (lost or duplicated enqueues/dequeues)");
    }
    return rep;
}

OracleReport
checkHashTable(
    const mem::MainMemory &mem, bool all_cpus_halted,
    Addr table_base, unsigned buckets, unsigned max_probes,
    const std::function<std::uint64_t(std::uint64_t)> &bucket_of,
    std::int64_t min_occupied, std::int64_t max_occupied)
{
    OracleReport rep;
    if (refuseLiveWalk(rep, all_cpus_halted))
        return rep;
    std::set<std::uint64_t> seen;
    std::int64_t occupied = 0;
    for (std::uint64_t i = 0; i < buckets + max_probes; ++i) {
        const Addr slot = table_base + i * 256;
        const std::uint64_t key = mem.read(slot, 8);
        if (key == 0)
            continue;
        ++occupied;
        const std::uint64_t value = mem.read(slot + 8, 8);
        if (value != key) {
            // The workload always stores value == key; anything else
            // is a torn or lost update.
            rep.fail("slot " + std::to_string(i) + ": value " +
                     std::to_string(value) + " != key " +
                     std::to_string(key));
        }
        const std::uint64_t home = bucket_of(key);
        if (i < home || i >= home + max_probes) {
            rep.fail("key " + std::to_string(key) + " in slot " +
                     std::to_string(i) +
                     " outside its probe window [" +
                     std::to_string(home) + ", " +
                     std::to_string(home + max_probes) + ")");
        }
        if (!seen.insert(key).second)
            rep.fail("key " + std::to_string(key) +
                     " present in more than one slot");
    }
    if (occupied < min_occupied || occupied > max_occupied) {
        rep.fail("occupied slots " + std::to_string(occupied) +
                 " outside [" + std::to_string(min_occupied) + ", " +
                 std::to_string(max_occupied) +
                 "] (keys lost or invented)");
    }
    return rep;
}

} // namespace ztx::inject
