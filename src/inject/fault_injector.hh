/**
 * @file
 * Turns a FaultPlan into concrete adversarial events against a live
 * machine. The Machine scheduler calls beforeStep() for the CPU
 * about to execute; the injector draws its per-kind Bernoulli rates
 * and fires any scheduled faults that came due, then the step runs
 * into whatever hostile state was created. All randomness comes
 * from one private ztx::Rng seeded from the plan/machine seed, so a
 * chaotic run is a pure function of (program, config, seed) just
 * like a benign one.
 *
 * The injector also implements mem::XiDelayProbe: when registered
 * with the hierarchy it can stretch individual XI response times,
 * modelling slow remote snoop responses without violating coherence
 * (the delay is pure latency, the protocol outcome is unchanged).
 *
 * Fairness rule: XI storms never target the CPU holding solo mode.
 * Broadcast-stop means *all conflicting work* stops (paper §III.E)
 * — an adversary that could still snipe the solo holder's footprint
 * would break the eventual-success guarantee by construction rather
 * than by finding a real bug.
 */

#ifndef ZTX_INJECT_FAULT_INJECTOR_HH
#define ZTX_INJECT_FAULT_INJECTOR_HH

#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "inject/fault_plan.hh"
#include "mem/xi.hh"

namespace ztx::core {
class Cpu;
class CpuEnv;
} // namespace ztx::core

namespace ztx::mem {
class Hierarchy;
} // namespace ztx::mem

namespace ztx::inject {

/** Drives a FaultPlan against one machine. */
class FaultInjector : public mem::XiDelayProbe
{
  public:
    /**
     * @param plan The campaign to run (copied).
     * @param machine_seed Used to derive the RNG seed when the plan
     *        leaves its own seed at 0.
     * @param hier The machine's hierarchy (XI/capacity faults).
     * @param env Machine services (solo-holder queries).
     */
    FaultInjector(const FaultPlan &plan, std::uint64_t machine_seed,
                  mem::Hierarchy &hier, const core::CpuEnv &env);

    /** Register a CPU; its id indexes the injector's tables. */
    void attachCpu(core::Cpu &cpu);

    /**
     * Called by the scheduler right before CPU @p id steps at
     * global cycle @p now: expires due capacity squeezes, fires due
     * scheduled faults, and draws the probabilistic ones.
     */
    void beforeStep(CpuId id, Cycles now);

    /** mem::XiDelayProbe: extra cycles for one XI response. */
    Cycles xiDelay(mem::XiKind kind, CpuId target,
                   CpuId requester) override;

    /** The plan being executed. */
    const FaultPlan &plan() const { return plan_; }

    /** Injection activity ("inject.*" counters). */
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    void apply(FaultKind kind, CpuId target, Cycles now);

    FaultPlan plan_;
    mem::Hierarchy &hier_;
    const core::CpuEnv &env_;
    std::vector<core::Cpu *> cpus_;
    /** Per-CPU cycle at which a squeeze expires; 0 = not squeezed. */
    std::vector<Cycles> squeezeUntil_;
    std::size_t nextScheduled_ = 0;
    Rng rng_;
    StatGroup stats_{"inject"};
};

} // namespace ztx::inject

#endif // ZTX_INJECT_FAULT_INJECTOR_HH
