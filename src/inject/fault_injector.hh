/**
 * @file
 * Turns a FaultPlan into concrete adversarial events against a live
 * machine. The Machine scheduler calls beforeStep() for the CPU
 * about to execute; the injector draws its per-kind Bernoulli rates
 * and fires any scheduled faults that came due, then the step runs
 * into whatever hostile state was created. All randomness comes
 * from per-CPU ztx::Rng streams derived from the plan/machine seed,
 * so a chaotic run is a pure function of (program, config, seed)
 * just like a benign one — independent of how many host threads the
 * sharded scheduler uses, since CPU i's draws depend only on CPU i's
 * step sequence.
 *
 * Sharded mode (Machine with hostThreads >= 1): beforeStep() runs
 * inside the parallel phase and touches only per-CPU state; faults
 * whose application crosses CPUs (XI storms against the shared
 * directory, scheduled faults consumed from one global cursor) are
 * buffered and applied at the quantum barrier by flushSharded() in
 * deterministic (cycle, cpu) order.
 *
 * The injector also implements mem::XiDelayProbe: when registered
 * with the hierarchy it can stretch individual XI response times,
 * modelling slow remote snoop responses without violating coherence
 * (the delay is pure latency, the protocol outcome is unchanged).
 *
 * Fairness rule: XI storms never target the CPU holding solo mode.
 * Broadcast-stop means *all conflicting work* stops (paper §III.E)
 * — an adversary that could still snipe the solo holder's footprint
 * would break the eventual-success guarantee by construction rather
 * than by finding a real bug.
 */

#ifndef ZTX_INJECT_FAULT_INJECTOR_HH
#define ZTX_INJECT_FAULT_INJECTOR_HH

#include <array>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "inject/fault_plan.hh"
#include "mem/xi.hh"

namespace ztx::core {
class Cpu;
class CpuEnv;
} // namespace ztx::core

namespace ztx::mem {
class Hierarchy;
} // namespace ztx::mem

namespace ztx::inject {

/** Drives a FaultPlan against one machine. */
class FaultInjector : public mem::XiDelayProbe
{
  public:
    /**
     * @param plan The campaign to run (copied).
     * @param machine_seed Used to derive the RNG seed when the plan
     *        leaves its own seed at 0.
     * @param hier The machine's hierarchy (XI/capacity faults).
     * @param env Machine services (solo-holder queries).
     */
    FaultInjector(const FaultPlan &plan, std::uint64_t machine_seed,
                  mem::Hierarchy &hier, const core::CpuEnv &env);

    /** Register a CPU; its id indexes the injector's tables. */
    void attachCpu(core::Cpu &cpu);

    /**
     * Called by the scheduler right before CPU @p id steps at
     * global cycle @p now: expires due capacity squeezes, fires due
     * scheduled faults (legacy mode), and draws the probabilistic
     * ones. Thread-safe across distinct @p id in sharded mode:
     * touches only per-CPU state; cross-CPU faults are buffered.
     */
    void beforeStep(CpuId id, Cycles now);

    /**
     * Select sharded-mode buffering (Machine sets this once at
     * construction, from MachineConfig::hostThreads > 0).
     */
    void setShardedMode(bool on) { sharded_ = on; }

    /**
     * Quantum-barrier flush (sharded mode, serial): fire scheduled
     * faults due at or before @p now (untargeted entries hit CPU 0),
     * then apply buffered XI storms merged across CPUs in
     * (cycle, cpu) order.
     */
    void flushSharded(Cycles now);

    /** mem::XiDelayProbe: extra cycles for one XI response. */
    Cycles xiDelay(mem::XiKind kind, CpuId target,
                   CpuId requester) override;

    /** The plan being executed. */
    const FaultPlan &plan() const { return plan_; }

    /** Scenario-step assertions that failed (counted, not fatal). */
    std::uint64_t scenarioAssertFailures() const
    {
        return scenarioAssertFailures_;
    }

    /**
     * Per-kind fire counts as a JSON object — one key per FaultKind
     * name, zero-filled so the shape is plan-independent. Goes into
     * watchdog diagnosis bundles.
     */
    Json firedCountsJson() const;

    /**
     * The last few fired faults (across all CPUs, merged in
     * (cycle, cpu) order) as a JSON array. Watchdog bundles use
     * this to show what the injector did right before a stall.
     */
    Json recentFiresJson() const;

    /** Injection activity ("inject.*" counters). */
    StatGroup &stats()
    {
        foldHotCounters();
        return stats_;
    }
    const StatGroup &stats() const
    {
        foldHotCounters();
        return stats_;
    }

  private:
    /**
     * Apply one fault. @p line / @p poison_memory are the operands
     * of the line-addressed kinds (TargetedConflict, PoisonLine);
     * a TargetedConflict with @p target == invalidCpu resolves its
     * victim from the coherence directory (owner, else the lowest-id
     * sharer). Only the per-CPU kinds (SpuriousAbort,
     * CapacitySqueeze, InterruptStorm) may be applied from the
     * parallel phase; everything line- or directory-addressed is
     * serial-only (legacy beforeStep or the barrier flush).
     */
    void apply(FaultKind kind, CpuId target, Cycles now,
               Addr line = 0, bool poison_memory = false);

    /**
     * Evaluate every armed scenario step against current machine
     * state and fire the due ones. Serial-only: runs from the legacy
     * beforeStep or the sharded barrier flush.
     */
    void evaluateScenario(Cycles now);

    /** Record a fired fault into the target's recent-fire ring. */
    void recordFire(FaultKind kind, CpuId target, Cycles now,
                    Addr line);

    /**
     * Counters bumped from the parallel phase accumulate in per-CPU
     * cache-line-sized deltas and are folded into stats_
     * idempotently when stats() is read. The fold touches every
     * counter unconditionally so the stat-group shape is identical
     * across runs and host-thread counts.
     */
    struct alignas(64) HotCounters
    {
        std::uint64_t spuriousFired = 0;
        std::uint64_t squeezeFired = 0;
        std::uint64_t squeezeRestored = 0;
        std::uint64_t interruptStormFired = 0;
        std::uint64_t xiDelayFired = 0;
    };
    void foldHotCounters() const;

    /** One fired fault, for watchdog diagnosis bundles. */
    struct FiredFault
    {
        Cycles at = 0;
        FaultKind kind = FaultKind::SpuriousAbort;
        CpuId target = invalidCpu;
        Addr line = 0;
        /** Per-ring monotonic index (merge tie-break). */
        std::uint64_t seq = 0;
    };

    /** Fires recorded per ring (watchdog bundles keep this many). */
    static constexpr std::size_t recentDepth = 8;

    /**
     * Per-CPU recent-fire ring + per-kind fire tallies. In the
     * parallel phase only self-targeted kinds are applied, so
     * ring[target] is written by the target's own shard; line-sized
     * so rings never share cache lines across shards.
     */
    struct alignas(64) RecentRing
    {
        std::array<FiredFault, recentDepth> slots{};
        std::uint64_t n = 0;
        std::array<std::uint64_t, faultKindCount> byKind{};
    };

    /** Firing bookkeeping of one scenario step. */
    struct ScenarioState
    {
        std::uint64_t fires = 0;
        Cycles lastFire = 0;
        bool done = false;
    };

    FaultPlan plan_;
    mem::Hierarchy &hier_;
    const core::CpuEnv &env_;
    std::vector<core::Cpu *> cpus_;
    /** Per-CPU cycle at which a squeeze expires; 0 = not squeezed. */
    std::vector<Cycles> squeezeUntil_;
    std::size_t nextScheduled_ = 0;
    bool sharded_ = false;
    std::uint64_t baseSeed_;
    /** Per-CPU Bernoulli streams (rates), indexed by CpuId. */
    std::vector<Rng> cpuRng_;
    /** Per-CPU streams for XI-storm line picks, indexed by target. */
    std::vector<Rng> stormRng_;
    /**
     * Per-CPU streams for XI response delays, indexed by the XI
     * target: with the shard-local fast path, same-shard XIs are
     * delivered inside the parallel phase by the target's shard, so
     * the delay draw must depend only on the target's own XI
     * sequence, never on global interleaving. XIs aimed at
     * unattached fabric agents (the channel subsystem) cannot occur
     * in-phase and fall back to the serial stream rng_.
     */
    std::vector<Rng> delayRng_;
    /** Per-CPU streams for rate-driven poison line picks. */
    std::vector<Rng> poisonRng_;
    /** Sharded mode: per-CPU storm fire times awaiting the flush. */
    std::vector<std::vector<Cycles>> pendingStorms_;
    /** Sharded mode: buffered targeted-conflict fire times. */
    std::vector<std::vector<Cycles>> pendingTargeted_;
    /** Sharded mode: buffered rate-driven poison fire times. */
    std::vector<std::vector<Cycles>> pendingPoison_;
    /** Per-step scenario bookkeeping, parallel to plan_.scenario. */
    std::vector<ScenarioState> scen_;
    /** abortsTotal() snapshots from the last scenario evaluation. */
    std::vector<std::uint64_t> lastAborts_;
    std::uint64_t scenarioAssertFailures_ = 0;
    std::vector<RecentRing> recent_;
    std::vector<HotCounters> hot_;
    mutable HotCounters hotFolded_{};
    /** Serial-only stream: XI delays for unattached targets. */
    Rng rng_;
    mutable StatGroup stats_{"inject"};
};

} // namespace ztx::inject

#endif // ZTX_INJECT_FAULT_INJECTOR_HH
