/**
 * @file
 * Operation-history linearizability checker for the chaos oracles.
 *
 * The structural oracles (oracle.hh) verify committed *state*; this
 * checker verifies committed *behavior*: given the invoke/response
 * history the workloads record through the per-CPU operation log
 * (workload/op_log.hh), decide whether some total order of the
 * operations (a) respects real-time precedence — if a responded
 * before b was invoked, a comes first — and (b) replays correctly
 * against a sequential specification of the data structure. A lost
 * update, duplicate dequeue, or stale read produces a history no
 * such order explains, even when the final structure looks intact.
 *
 * Algorithm: Wing–Gong / Lowe-style DFS over linearization
 * prefixes with memoization of visited (done-set, spec-state)
 * configurations. The simulator's deterministic global cycle order
 * gives a strong pruning fast path: whenever exactly one operation
 * is minimal in real-time order (the common case — windows only
 * overlap while CPUs contend), its position is forced and the
 * search degenerates to a linear scan with no memo traffic.
 *
 * Operations pending at the end of a run (invoked, no response —
 * e.g. in flight when the watchdog halted the machine) *may* have
 * taken effect: the search branches over applying each pending
 * operation (with unconstrained result) or dropping it entirely.
 */

#ifndef ZTX_INJECT_LINCHECK_HH
#define ZTX_INJECT_LINCHECK_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"

namespace ztx::inject {

/** ADT operation codes shared by the workloads and the checker. */
enum class LinOpCode : std::uint32_t
{
    SetLookup = 0,  ///< arg=key, result: 1 found / 0 absent
    SetInsert = 1,  ///< arg=key, result: 1 applied / 0 duplicate
    SetDelete = 2,  ///< arg=key, result: 1 applied / 0 absent
    QueueEnqueue = 3, ///< arg=value, result ignored
    QueueDequeue = 4, ///< result: dequeued value, 0 when empty
    MapGet = 5,     ///< arg=key, result: stored value, 0 on miss
    MapPut = 6,     ///< arg=key, result: 1 applied / 0 probe-full
};

/** Mnemonic of @p code ("lookup", "enqueue", ...). */
const char *linOpCodeName(LinOpCode code);

/**
 * One versioned line access of a committed region's footprint
 * (order_infer.hh): the region observed (read) or installed (write)
 * @p version of object @p objid. Writes bump the per-object version
 * by one, so version chains totally order the writers of an object
 * and place every reader between two writers.
 */
struct VersionAccess
{
    Addr objid = 0; ///< cache-line address of the object
    std::uint64_t version = 0;
    bool write = false;
};

/** One operation of a recorded history. */
struct LinOp
{
    Cycles invoke = 0;
    /** Ignored when pending. */
    Cycles response = 0;
    /** Invoked but unresponded when the run stopped. */
    bool pending = false;

    LinOpCode code = LinOpCode::SetLookup;
    std::uint64_t arg = 0;
    /** Observed result; meaningless when pending. */
    std::uint64_t result = 0;

    /** @name Provenance (diagnostics only) @{ */
    CpuId cpu = 0;
    std::uint32_t seq = 0; ///< per-CPU sequence number
    /** @} */

    /**
     * Version-order records of the operation's committed region
     * (empty when version recording was off or the run stopped
     * before the region committed). Consumed by order_infer.hh; the
     * DFS checker ignores them.
     */
    std::vector<VersionAccess> accesses;
};

/**
 * Search limits: blowup protection for adversarial histories. The
 * search keeps its branch frames on an explicit heap stack (one
 * frame per *undecided branch point*, not per operation), so no
 * history size can overflow the host stack; maxStates alone bounds
 * the work, and arbitrarily large pending histories come back with
 * a real verdict instead of an unchecked refusal.
 */
struct LinCheckLimits
{
    /** Specification apply attempts before giving up unchecked. */
    std::uint64_t maxStates = 4'000'000;
};

/** Outcome of one linearizability check. */
struct LinVerdict
{
    /**
     * False when no verdict could be reached: truncated or
     * malformed history, or the state limit was hit. `reason` says
     * why. `linearizable` is meaningless then.
     */
    bool checked = false;
    bool linearizable = false;
    /**
     * The operation log overflowed and dropped records: the history
     * is an incomplete suffix and can never be checked (checked
     * stays false). Distinguished from other unchecked outcomes so
     * harnesses report truncation instead of treating it as a
     * checker failure.
     */
    bool truncated = false;

    std::uint64_t numOps = 0;
    std::uint64_t numPending = 0;
    std::uint64_t statesExplored = 0;

    /** Why the history is unchecked / not linearizable. */
    std::string reason;
    /**
     * The frontier at the deepest failure: the concurrent
     * operations none of which can be linearized next. Empty when
     * linearizable.
     */
    std::vector<LinOp> window;
};

/** @p v as a JSON object (bench records, diagnosis bundles). */
Json linVerdictJson(const LinVerdict &v);

/**
 * Check a set history (SetLookup/SetInsert/SetDelete) against the
 * sequential set specification starting from @p initial_keys.
 */
LinVerdict checkSetLinearizable(
    const std::vector<LinOp> &history,
    const std::vector<std::uint64_t> &initial_keys,
    const LinCheckLimits &limits = {});

/**
 * Check a FIFO queue history (QueueEnqueue/QueueDequeue) against
 * the sequential queue specification starting from
 * @p initial_values (front first). Values need not be unique.
 */
LinVerdict checkQueueLinearizable(
    const std::vector<LinOp> &history,
    const std::vector<std::uint64_t> &initial_values,
    const LinCheckLimits &limits = {});

/**
 * Check an open-addressed map history (MapGet/MapPut) against the
 * bounded-linear-probing specification the hashtable workload
 * implements: @p initial_slots is the slot array (index -> key, 0
 * empty) of @p buckets + @p max_probes entries; @p bucket_of maps a
 * key to its home slot. Stored values equal keys (the workload's
 * invariant), so MapGet results are validated against the key.
 */
LinVerdict checkMapLinearizable(
    const std::vector<LinOp> &history,
    const std::vector<std::uint64_t> &initial_slots,
    unsigned buckets, unsigned max_probes,
    const std::function<std::uint64_t(std::uint64_t)> &bucket_of,
    const LinCheckLimits &limits = {});

} // namespace ztx::inject

#endif // ZTX_INJECT_LINCHECK_HH
