#include "fault_injector.hh"

#include <algorithm>
#include <tuple>

#include "common/log.hh"
#include "core/config.hh"
#include "core/cpu.hh"
#include "mem/hierarchy.hh"

namespace ztx::inject {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::SpuriousAbort: return "spurious_abort";
      case FaultKind::XiStorm: return "xi_storm";
      case FaultKind::CapacitySqueeze: return "capacity_squeeze";
      case FaultKind::InterruptStorm: return "interrupt_storm";
      case FaultKind::DelayedXi: return "delayed_xi";
    }
    return "?";
}

Json
faultPlanJson(const FaultPlan &plan)
{
    Json p = Json::object();
    p["spurious_abort_rate"] = plan.spuriousAbortRate;
    p["xi_storm_rate"] = plan.xiStormRate;
    p["capacity_squeeze_rate"] = plan.capacitySqueezeRate;
    p["interrupt_storm_rate"] = plan.interruptStormRate;
    p["delayed_xi_rate"] = plan.delayedXiRate;
    p["xi_storm_burst"] = plan.xiStormBurst;
    p["squeeze_l1_ways"] = plan.squeezeL1Ways;
    p["squeeze_l2_ways"] = plan.squeezeL2Ways;
    p["squeeze_duration"] = std::uint64_t(plan.squeezeDuration);
    p["interrupt_burst"] = plan.interruptBurst;
    p["xi_delay_max"] = std::uint64_t(plan.xiDelayMax);
    p["seed"] = plan.seed;
    Json sched = Json::array();
    for (const auto &f : plan.schedule) {
        Json s = Json::object();
        s["at"] = std::uint64_t(f.at);
        s["kind"] = faultKindName(f.kind);
        s["target"] = f.target == invalidCpu ? std::int64_t(-1)
                                             : std::int64_t(f.target);
        sched.push(std::move(s));
    }
    p["schedule"] = std::move(sched);
    return p;
}

FaultInjector::FaultInjector(const FaultPlan &plan,
                             std::uint64_t machine_seed,
                             mem::Hierarchy &hier,
                             const core::CpuEnv &env)
    : plan_(plan), hier_(hier), env_(env),
      baseSeed_(plan.seed
                    ? plan.seed
                    : machine_seed * 0xD1B54A32D192ED03ULL + 0x5C),
      rng_(plan.seed ? plan.seed
                     : machine_seed * 0xD1B54A32D192ED03ULL + 0x5C)
{
    if (plan_.xiDelayMax == 0)
        plan_.xiDelayMax = 1;
    // Scheduled faults are consumed front to back; demand order so
    // a mis-written plan fails loudly instead of silently skipping.
    for (std::size_t i = 1; i < plan_.schedule.size(); ++i)
        if (plan_.schedule[i].at < plan_.schedule[i - 1].at)
            ztx_fatal("FaultPlan schedule not sorted by cycle");
}

void
FaultInjector::attachCpu(core::Cpu &cpu)
{
    if (cpu.id() != cpus_.size())
        ztx_fatal("FaultInjector: CPUs must attach in id order");
    const std::uint64_t id = cpu.id();
    cpus_.push_back(&cpu);
    squeezeUntil_.push_back(0);
    // Disjoint per-CPU streams: draws on CPU i depend only on CPU
    // i's own step/fault sequence, never on global interleaving.
    cpuRng_.emplace_back(baseSeed_ ^
                         ((id + 1) * 0x9E3779B97F4A7C15ULL));
    stormRng_.emplace_back(baseSeed_ +
                           (id + 1) * 0xBF58476D1CE4E5B9ULL);
    delayRng_.emplace_back(baseSeed_ ^
                           ((id + 1) * 0x94D049BB133111EBULL));
    pendingStorms_.emplace_back();
    hot_.emplace_back();
}

void
FaultInjector::beforeStep(CpuId id, Cycles now)
{
    // Expire this CPU's capacity squeeze (per-CPU cache state only).
    if (squeezeUntil_[id] != 0 && now >= squeezeUntil_[id]) {
        hier_.squeezeCapacity(id, 0, 0);
        squeezeUntil_[id] = 0;
        ++hot_[id].squeezeRestored;
    }

    // Scheduled faults that came due. The cursor is global, so in
    // sharded mode the flush consumes it at the barrier instead. A
    // fault without an explicit target hits the CPU about to step.
    while (!sharded_ && nextScheduled_ < plan_.schedule.size() &&
           plan_.schedule[nextScheduled_].at <= now) {
        const ScheduledFault &f = plan_.schedule[nextScheduled_++];
        const CpuId target =
            f.target == invalidCpu ? id : f.target;
        if (target >= cpus_.size())
            ztx_fatal("scheduled fault targets CPU ", target,
                      " but only ", cpus_.size(), " attached");
        stats_.counter("scheduled.fired").inc();
        apply(f.kind, target, now);
    }

    // Probabilistic faults against the CPU about to step: one draw
    // per *enabled* kind from the CPU's own stream, so a disabled
    // kind costs nothing and a given (plan, seed) pair replays
    // bit-identically. Spurious aborts, squeezes, and interrupt
    // bursts act on the target CPU alone and apply immediately; XI
    // storms attack the shared directory and are deferred to the
    // barrier in sharded mode.
    Rng &r = cpuRng_[id];
    if (plan_.spuriousAbortRate > 0 &&
        r.nextBool(plan_.spuriousAbortRate))
        apply(FaultKind::SpuriousAbort, id, now);
    if (plan_.xiStormRate > 0 && r.nextBool(plan_.xiStormRate)) {
        if (sharded_)
            pendingStorms_[id].push_back(now);
        else
            apply(FaultKind::XiStorm, id, now);
    }
    if (plan_.capacitySqueezeRate > 0 &&
        r.nextBool(plan_.capacitySqueezeRate))
        apply(FaultKind::CapacitySqueeze, id, now);
    if (plan_.interruptStormRate > 0 &&
        r.nextBool(plan_.interruptStormRate))
        apply(FaultKind::InterruptStorm, id, now);
}

void
FaultInjector::flushSharded(Cycles now)
{
    // Scheduled faults due in the elapsed quantum; untargeted
    // entries hit CPU 0 (there is no "CPU about to step" at a
    // barrier). Fired at their scheduled cycle.
    while (nextScheduled_ < plan_.schedule.size() &&
           plan_.schedule[nextScheduled_].at <= now) {
        const ScheduledFault &f = plan_.schedule[nextScheduled_++];
        const CpuId target = f.target == invalidCpu ? 0 : f.target;
        if (target >= cpus_.size())
            ztx_fatal("scheduled fault targets CPU ", target,
                      " but only ", cpus_.size(), " attached");
        stats_.counter("scheduled.fired").inc();
        apply(f.kind, target, f.at);
    }

    // Buffered XI storms, merged across CPUs in (cycle, cpu) order.
    struct PendingStorm
    {
        Cycles at;
        CpuId cpu;
    };
    std::vector<PendingStorm> storms;
    for (CpuId id = 0; id < CpuId(pendingStorms_.size()); ++id) {
        for (const Cycles at : pendingStorms_[id])
            storms.push_back({at, id});
        pendingStorms_[id].clear();
    }
    std::sort(storms.begin(), storms.end(),
              [](const PendingStorm &a, const PendingStorm &b) {
                  return std::tie(a.at, a.cpu) <
                         std::tie(b.at, b.cpu);
              });
    for (const PendingStorm &s : storms)
        apply(FaultKind::XiStorm, s.cpu, s.at);
}

void
FaultInjector::foldHotCounters() const
{
    HotCounters sum;
    for (const HotCounters &h : hot_) {
        sum.spuriousFired += h.spuriousFired;
        sum.squeezeFired += h.squeezeFired;
        sum.squeezeRestored += h.squeezeRestored;
        sum.interruptStormFired += h.interruptStormFired;
        sum.xiDelayFired += h.xiDelayFired;
    }
    // Touch every counter unconditionally: the stat-group shape must
    // not depend on which faults happened to fire.
    stats_.counter("spurious_abort.fired")
        .inc(sum.spuriousFired - hotFolded_.spuriousFired);
    stats_.counter("squeeze.fired")
        .inc(sum.squeezeFired - hotFolded_.squeezeFired);
    stats_.counter("squeeze.restored")
        .inc(sum.squeezeRestored - hotFolded_.squeezeRestored);
    stats_.counter("interrupt_storm.fired")
        .inc(sum.interruptStormFired -
             hotFolded_.interruptStormFired);
    stats_.counter("xi_delay.fired")
        .inc(sum.xiDelayFired - hotFolded_.xiDelayFired);
    hotFolded_ = sum;
}

void
FaultInjector::apply(FaultKind kind, CpuId target, Cycles now)
{
    core::Cpu &cpu = *cpus_.at(target);
    switch (kind) {
      case FaultKind::SpuriousAbort:
        if (!cpu.inTx())
            return; // nothing to abort
        ++hot_[target].spuriousFired;
        cpu.injectSpuriousAbort();
        return;

      case FaultKind::XiStorm: {
        // Serial-only (legacy beforeStep or the barrier flush): the
        // storm walks the shared directory.
        if (target == env_.soloHolder()) {
            // Broadcast-stop stopped "all conflicting work"; an
            // adversary is conflicting work too.
            stats_.counter("xi_storm.suppressed_solo").inc();
            return;
        }
        const std::vector<Addr> lines =
            hier_.txFootprintLines(target);
        if (lines.empty())
            return; // no transactional footprint to attack
        stats_.counter("xi_storm.fired").inc();
        for (unsigned i = 0; i < plan_.xiStormBurst; ++i) {
            // Line picks come from the target's own stream so the
            // sequence survives reordering of other CPUs' storms.
            const Addr line =
                lines[stormRng_[target].nextBounded(lines.size())];
            if (hier_.injectAdversarialXi(target, line))
                stats_.counter("xi_storm.lines_taken").inc();
            else
                stats_.counter("xi_storm.lines_defended").inc();
        }
        return;
      }

      case FaultKind::CapacitySqueeze:
        ++hot_[target].squeezeFired;
        hier_.squeezeCapacity(target, plan_.squeezeL1Ways,
                              plan_.squeezeL2Ways);
        squeezeUntil_[target] = now + plan_.squeezeDuration;
        return;

      case FaultKind::InterruptStorm:
        ++hot_[target].interruptStormFired;
        for (unsigned i = 0; i < plan_.interruptBurst; ++i)
            cpu.deliverExternalInterrupt();
        return;

      case FaultKind::DelayedXi:
        // Delay is drawn per XI in xiDelay(); a scheduled entry of
        // this kind is a plan-documentation no-op.
        return;
    }
}

Cycles
FaultInjector::xiDelay(mem::XiKind kind, CpuId target,
                       CpuId requester)
{
    (void)kind;
    (void)requester;
    if (plan_.delayedXiRate <= 0)
        return 0;
    // Per-target streams: a same-shard XI may be probed inside the
    // parallel phase (shard-local fast path), so the draw must be a
    // function of the target's own XI sequence only. Unattached
    // fabric agents (the channel subsystem) are serial-only and use
    // the shared stream.
    if (target >= delayRng_.size()) {
        if (!rng_.nextBool(plan_.delayedXiRate))
            return 0;
        stats_.counter("xi_delay.fired").inc();
        return rng_.nextBounded(plan_.xiDelayMax) + 1;
    }
    Rng &r = delayRng_[target];
    if (!r.nextBool(plan_.delayedXiRate))
        return 0;
    ++hot_[target].xiDelayFired;
    return r.nextBounded(plan_.xiDelayMax) + 1;
}

} // namespace ztx::inject
