#include "fault_injector.hh"

#include <algorithm>
#include <tuple>

#include "common/log.hh"
#include "core/config.hh"
#include "core/cpu.hh"
#include "mem/hierarchy.hh"

namespace ztx::inject {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::SpuriousAbort: return "spurious_abort";
      case FaultKind::XiStorm: return "xi_storm";
      case FaultKind::CapacitySqueeze: return "capacity_squeeze";
      case FaultKind::InterruptStorm: return "interrupt_storm";
      case FaultKind::DelayedXi: return "delayed_xi";
      case FaultKind::TargetedConflict: return "targeted_conflict";
      case FaultKind::PoisonLine: return "poison_line";
    }
    return "?";
}

const char *
triggerKindName(TriggerKind kind)
{
    switch (kind) {
      case TriggerKind::AtCycle: return "at_cycle";
      case TriggerKind::OnAbort: return "on_abort";
      case TriggerKind::OnFootprint: return "on_footprint";
      case TriggerKind::AfterStep: return "after_step";
    }
    return "?";
}

const char *
stepAssertName(StepAssert check)
{
    switch (check) {
      case StepAssert::None: return "none";
      case StepAssert::TargetInTx: return "target_in_tx";
      case StepAssert::TargetNotInTx: return "target_not_in_tx";
      case StepAssert::LineInTargetFootprint:
        return "line_in_target_footprint";
    }
    return "?";
}

Json
faultPlanJson(const FaultPlan &plan)
{
    Json p = Json::object();
    p["spurious_abort_rate"] = plan.spuriousAbortRate;
    p["xi_storm_rate"] = plan.xiStormRate;
    p["capacity_squeeze_rate"] = plan.capacitySqueezeRate;
    p["interrupt_storm_rate"] = plan.interruptStormRate;
    p["delayed_xi_rate"] = plan.delayedXiRate;
    p["targeted_conflict_rate"] = plan.targetedConflictRate;
    p["poison_rate"] = plan.poisonRate;
    p["xi_storm_burst"] = plan.xiStormBurst;
    p["squeeze_l1_ways"] = plan.squeezeL1Ways;
    p["squeeze_l2_ways"] = plan.squeezeL2Ways;
    p["squeeze_duration"] = std::uint64_t(plan.squeezeDuration);
    p["interrupt_burst"] = plan.interruptBurst;
    p["xi_delay_max"] = std::uint64_t(plan.xiDelayMax);
    p["targeted_line"] = std::uint64_t(plan.targetedLine);
    p["seed"] = plan.seed;
    Json sched = Json::array();
    for (const auto &f : plan.schedule) {
        Json s = Json::object();
        s["at"] = std::uint64_t(f.at);
        s["kind"] = faultKindName(f.kind);
        s["target"] = f.target == invalidCpu ? std::int64_t(-1)
                                             : std::int64_t(f.target);
        s["line"] = std::uint64_t(f.line);
        s["poison_memory"] = f.poisonMemory;
        sched.push(std::move(s));
    }
    p["schedule"] = std::move(sched);
    Json scen = Json::array();
    for (const auto &st : plan.scenario) {
        Json s = Json::object();
        s["trigger"] = triggerKindName(st.trigger);
        s["at"] = std::uint64_t(st.at);
        s["period"] = std::uint64_t(st.period);
        s["repeat"] = std::uint64_t(st.repeat);
        s["watch"] = st.watch == invalidCpu ? std::int64_t(-1)
                                            : std::int64_t(st.watch);
        s["count"] = st.count;
        s["line"] = std::uint64_t(st.line);
        s["after"] = std::uint64_t(st.after);
        s["kind"] = faultKindName(st.kind);
        s["target"] = st.target == invalidCpu ? std::int64_t(-1)
                                              : std::int64_t(st.target);
        s["poison_memory"] = st.poisonMemory;
        s["check"] = stepAssertName(st.check);
        scen.push(std::move(s));
    }
    p["scenario"] = std::move(scen);
    return p;
}

FaultInjector::FaultInjector(const FaultPlan &plan,
                             std::uint64_t machine_seed,
                             mem::Hierarchy &hier,
                             const core::CpuEnv &env)
    : plan_(plan), hier_(hier), env_(env),
      baseSeed_(plan.seed
                    ? plan.seed
                    : machine_seed * 0xD1B54A32D192ED03ULL + 0x5C),
      rng_(plan.seed ? plan.seed
                     : machine_seed * 0xD1B54A32D192ED03ULL + 0x5C)
{
    if (plan_.xiDelayMax == 0)
        plan_.xiDelayMax = 1;
    // Scheduled faults are consumed front to back; demand order so
    // a mis-written plan fails loudly instead of silently skipping.
    for (std::size_t i = 1; i < plan_.schedule.size(); ++i)
        if (plan_.schedule[i].at < plan_.schedule[i - 1].at)
            ztx_fatal("FaultPlan schedule not sorted by cycle");
    // Scenario steps: normalize degenerate shapes, reject plans
    // whose dependency graph or repetition can never be honoured.
    for (std::size_t i = 0; i < plan_.scenario.size(); ++i) {
        ScenarioStep &s = plan_.scenario[i];
        if (s.repeat == 0)
            s.repeat = 1;
        if (s.count == 0)
            s.count = 1;
        if (s.repeat > 1 && (s.trigger != TriggerKind::AtCycle ||
                             s.period == 0))
            ztx_fatal("scenario step ", i, ": repeat > 1 needs an "
                      "AtCycle trigger with a nonzero period");
        if (s.trigger == TriggerKind::AfterStep && s.after >= i)
            ztx_fatal("scenario step ", i, ": `after` must reference "
                      "an earlier step");
    }
    scen_.resize(plan_.scenario.size());
}

void
FaultInjector::attachCpu(core::Cpu &cpu)
{
    if (cpu.id() != cpus_.size())
        ztx_fatal("FaultInjector: CPUs must attach in id order");
    const std::uint64_t id = cpu.id();
    cpus_.push_back(&cpu);
    squeezeUntil_.push_back(0);
    // Disjoint per-CPU streams: draws on CPU i depend only on CPU
    // i's own step/fault sequence, never on global interleaving.
    cpuRng_.emplace_back(baseSeed_ ^
                         ((id + 1) * 0x9E3779B97F4A7C15ULL));
    stormRng_.emplace_back(baseSeed_ +
                           (id + 1) * 0xBF58476D1CE4E5B9ULL);
    delayRng_.emplace_back(baseSeed_ ^
                           ((id + 1) * 0x94D049BB133111EBULL));
    poisonRng_.emplace_back(baseSeed_ +
                            (id + 1) * 0xD6E8FEB86659FD93ULL);
    pendingStorms_.emplace_back();
    pendingTargeted_.emplace_back();
    pendingPoison_.emplace_back();
    lastAborts_.push_back(0);
    recent_.emplace_back();
    hot_.emplace_back();
}

void
FaultInjector::beforeStep(CpuId id, Cycles now)
{
    // Expire this CPU's capacity squeeze (per-CPU cache state only).
    if (squeezeUntil_[id] != 0 && now >= squeezeUntil_[id]) {
        hier_.squeezeCapacity(id, 0, 0);
        squeezeUntil_[id] = 0;
        ++hot_[id].squeezeRestored;
    }

    // Scheduled faults that came due. The cursor is global, so in
    // sharded mode the flush consumes it at the barrier instead. A
    // fault without an explicit target hits the CPU about to step —
    // except line-addressed kinds, where the directory picks the
    // victim (the line's holder) inside apply().
    while (!sharded_ && nextScheduled_ < plan_.schedule.size() &&
           plan_.schedule[nextScheduled_].at <= now) {
        const ScheduledFault &f = plan_.schedule[nextScheduled_++];
        const CpuId target =
            f.kind == FaultKind::TargetedConflict
                ? f.target
                : (f.target == invalidCpu ? id : f.target);
        if (target != invalidCpu && target >= cpus_.size())
            ztx_fatal("scheduled fault targets CPU ", target,
                      " but only ", cpus_.size(), " attached");
        stats_.counter("scheduled.fired").inc();
        apply(f.kind, target, now, f.line, f.poisonMemory);
    }

    // Probabilistic faults against the CPU about to step: one draw
    // per *enabled* kind from the CPU's own stream, so a disabled
    // kind costs nothing and a given (plan, seed) pair replays
    // bit-identically. Spurious aborts, squeezes, and interrupt
    // bursts act on the target CPU alone and apply immediately; XI
    // storms attack the shared directory and are deferred to the
    // barrier in sharded mode.
    Rng &r = cpuRng_[id];
    if (plan_.spuriousAbortRate > 0 &&
        r.nextBool(plan_.spuriousAbortRate))
        apply(FaultKind::SpuriousAbort, id, now);
    if (plan_.xiStormRate > 0 && r.nextBool(plan_.xiStormRate)) {
        if (sharded_)
            pendingStorms_[id].push_back(now);
        else
            apply(FaultKind::XiStorm, id, now);
    }
    if (plan_.capacitySqueezeRate > 0 &&
        r.nextBool(plan_.capacitySqueezeRate))
        apply(FaultKind::CapacitySqueeze, id, now);
    if (plan_.interruptStormRate > 0 &&
        r.nextBool(plan_.interruptStormRate))
        apply(FaultKind::InterruptStorm, id, now);
    // The line-addressed kinds attack the shared directory / the
    // poison map and are serial-only, like XI storms: applied here
    // in legacy mode, buffered to the barrier in sharded mode.
    if (plan_.targetedConflictRate > 0 &&
        r.nextBool(plan_.targetedConflictRate)) {
        if (sharded_)
            pendingTargeted_[id].push_back(now);
        else
            apply(FaultKind::TargetedConflict, invalidCpu, now,
                  plan_.targetedLine);
    }
    if (plan_.poisonRate > 0 && r.nextBool(plan_.poisonRate)) {
        if (sharded_)
            pendingPoison_[id].push_back(now);
        else
            apply(FaultKind::PoisonLine, id, now);
    }

    if (!sharded_)
        evaluateScenario(now);
}

void
FaultInjector::flushSharded(Cycles now)
{
    // Scheduled faults due in the elapsed quantum; untargeted
    // entries hit CPU 0 (there is no "CPU about to step" at a
    // barrier), except line-addressed kinds where the directory
    // picks the line's holder inside apply(). Fired at their
    // scheduled cycle.
    while (nextScheduled_ < plan_.schedule.size() &&
           plan_.schedule[nextScheduled_].at <= now) {
        const ScheduledFault &f = plan_.schedule[nextScheduled_++];
        const CpuId target =
            f.kind == FaultKind::TargetedConflict
                ? f.target
                : (f.target == invalidCpu ? 0 : f.target);
        if (target != invalidCpu && target >= cpus_.size())
            ztx_fatal("scheduled fault targets CPU ", target,
                      " but only ", cpus_.size(), " attached");
        stats_.counter("scheduled.fired").inc();
        apply(f.kind, target, f.at, f.line, f.poisonMemory);
    }

    // Buffered serial-only faults, merged across CPUs in
    // (cycle, cpu, kind) order — deterministic however the parallel
    // phase interleaved the drawing CPUs.
    struct Pending
    {
        Cycles at;
        CpuId cpu;
        FaultKind kind;
    };
    std::vector<Pending> pend;
    for (CpuId id = 0; id < CpuId(pendingStorms_.size()); ++id) {
        for (const Cycles at : pendingStorms_[id])
            pend.push_back({at, id, FaultKind::XiStorm});
        pendingStorms_[id].clear();
        for (const Cycles at : pendingTargeted_[id])
            pend.push_back({at, id, FaultKind::TargetedConflict});
        pendingTargeted_[id].clear();
        for (const Cycles at : pendingPoison_[id])
            pend.push_back({at, id, FaultKind::PoisonLine});
        pendingPoison_[id].clear();
    }
    std::sort(pend.begin(), pend.end(),
              [](const Pending &a, const Pending &b) {
                  return std::tie(a.at, a.cpu, a.kind) <
                         std::tie(b.at, b.cpu, b.kind);
              });
    for (const Pending &p : pend) {
        if (p.kind == FaultKind::TargetedConflict)
            // Victim comes from the directory, not the drawing CPU.
            apply(p.kind, invalidCpu, p.at, plan_.targetedLine);
        else
            apply(p.kind, p.cpu, p.at);
    }

    evaluateScenario(now);
}

void
FaultInjector::evaluateScenario(Cycles now)
{
    if (plan_.scenario.empty())
        return;

    // Which CPU aborted since the last evaluation (lowest id wins):
    // the "aborting CPU" an untargeted OnAbort step resolves to.
    CpuId aborted = invalidCpu;
    std::uint64_t total_aborts = 0;
    for (CpuId id = 0; id < CpuId(cpus_.size()); ++id) {
        const std::uint64_t a = cpus_[id]->abortsTotal();
        if (aborted == invalidCpu && a > lastAborts_[id])
            aborted = id;
        lastAborts_[id] = a;
        total_aborts += a;
    }

    for (std::size_t i = 0; i < plan_.scenario.size(); ++i) {
        const ScenarioStep &s = plan_.scenario[i];
        ScenarioState &st = scen_[i];
        if (st.done)
            continue;

        bool fire = false;
        switch (s.trigger) {
          case TriggerKind::AtCycle:
            // k-th fire is due at `at + k * period`; at most one
            // fire per evaluation (catch-up happens next round).
            fire = now >= s.at + st.fires * s.period;
            break;
          case TriggerKind::OnAbort: {
            if (s.watch != invalidCpu && s.watch >= cpus_.size())
                ztx_fatal("scenario step ", i, " watches CPU ",
                          s.watch, " but only ", cpus_.size(),
                          " attached");
            const std::uint64_t seen = s.watch == invalidCpu
                                           ? total_aborts
                                           : lastAborts_[s.watch];
            fire = seen >= s.count;
            break;
          }
          case TriggerKind::OnFootprint:
            for (CpuId id = 0; id < CpuId(cpus_.size()); ++id)
                if (hier_.inTxFootprint(id, s.line)) {
                    fire = true;
                    break;
                }
            break;
          case TriggerKind::AfterStep:
            fire = scen_[s.after].fires > 0 &&
                   now >= scen_[s.after].lastFire + s.at;
            break;
        }
        if (!fire)
            continue;

        // Resolve an untargeted step from machine state: OnAbort
        // takes the aborting CPU; everything else the lowest-id CPU
        // holding the step's line in its footprint; fallback CPU 0.
        CpuId target = s.target;
        if (target == invalidCpu) {
            if (s.trigger == TriggerKind::OnAbort &&
                aborted != invalidCpu) {
                target = aborted;
            } else {
                for (CpuId id = 0; id < CpuId(cpus_.size()); ++id)
                    if (hier_.inTxFootprint(id, s.line)) {
                        target = id;
                        break;
                    }
                if (target == invalidCpu)
                    target = 0;
            }
        }
        if (target >= cpus_.size())
            ztx_fatal("scenario step ", i, " targets CPU ", target,
                      " but only ", cpus_.size(), " attached");

        bool ok = true;
        switch (s.check) {
          case StepAssert::None:
            break;
          case StepAssert::TargetInTx:
            ok = cpus_[target]->inTx();
            break;
          case StepAssert::TargetNotInTx:
            ok = !cpus_[target]->inTx();
            break;
          case StepAssert::LineInTargetFootprint:
            ok = hier_.inTxFootprint(target, s.line);
            break;
        }
        if (!ok) {
            ++scenarioAssertFailures_;
            stats_.counter("scenario.assert_failed").inc();
            ztx_warn("scenario step ", i, " assertion ",
                     stepAssertName(s.check), " failed at cycle ",
                     now, " (target cpu ", target, ")");
        }

        stats_.counter("scenario.fired").inc();
        ++st.fires;
        st.lastFire = now;
        if (s.trigger != TriggerKind::AtCycle ||
            st.fires >= s.repeat)
            st.done = true;

        apply(s.kind, target, now, s.line, s.poisonMemory);
    }
}

void
FaultInjector::foldHotCounters() const
{
    HotCounters sum;
    for (const HotCounters &h : hot_) {
        sum.spuriousFired += h.spuriousFired;
        sum.squeezeFired += h.squeezeFired;
        sum.squeezeRestored += h.squeezeRestored;
        sum.interruptStormFired += h.interruptStormFired;
        sum.xiDelayFired += h.xiDelayFired;
    }
    // Touch every counter unconditionally: the stat-group shape must
    // not depend on which faults happened to fire.
    stats_.counter("spurious_abort.fired")
        .inc(sum.spuriousFired - hotFolded_.spuriousFired);
    stats_.counter("squeeze.fired")
        .inc(sum.squeezeFired - hotFolded_.squeezeFired);
    stats_.counter("squeeze.restored")
        .inc(sum.squeezeRestored - hotFolded_.squeezeRestored);
    stats_.counter("interrupt_storm.fired")
        .inc(sum.interruptStormFired -
             hotFolded_.interruptStormFired);
    stats_.counter("xi_delay.fired")
        .inc(sum.xiDelayFired - hotFolded_.xiDelayFired);
    hotFolded_ = sum;
}

void
FaultInjector::recordFire(FaultKind kind, CpuId target, Cycles now,
                          Addr line)
{
    RecentRing &ring = recent_.at(target);
    ++ring.byKind[std::size_t(kind)];
    ring.slots[ring.n % recentDepth] = {now, kind, target, line,
                                        ring.n};
    ++ring.n;
}

void
FaultInjector::apply(FaultKind kind, CpuId target, Cycles now,
                     Addr line, bool poison_memory)
{
    switch (kind) {
      case FaultKind::SpuriousAbort: {
        core::Cpu &cpu = *cpus_.at(target);
        if (!cpu.inTx())
            return; // nothing to abort
        ++hot_[target].spuriousFired;
        recordFire(kind, target, now, 0);
        cpu.injectSpuriousAbort();
        return;
      }

      case FaultKind::XiStorm: {
        // Serial-only (legacy beforeStep or the barrier flush): the
        // storm walks the shared directory.
        if (target == env_.soloHolder()) {
            // Broadcast-stop stopped "all conflicting work"; an
            // adversary is conflicting work too.
            stats_.counter("xi_storm.suppressed_solo").inc();
            return;
        }
        const std::vector<Addr> lines =
            hier_.txFootprintLines(target);
        if (lines.empty())
            return; // no transactional footprint to attack
        stats_.counter("xi_storm.fired").inc();
        recordFire(kind, target, now, 0);
        for (unsigned i = 0; i < plan_.xiStormBurst; ++i) {
            // Line picks come from the target's own stream so the
            // sequence survives reordering of other CPUs' storms.
            const Addr line =
                lines[stormRng_[target].nextBounded(lines.size())];
            if (hier_.injectAdversarialXi(target, line))
                stats_.counter("xi_storm.lines_taken").inc();
            else
                stats_.counter("xi_storm.lines_defended").inc();
        }
        return;
      }

      case FaultKind::CapacitySqueeze:
        ++hot_[target].squeezeFired;
        recordFire(kind, target, now, 0);
        hier_.squeezeCapacity(target, plan_.squeezeL1Ways,
                              plan_.squeezeL2Ways);
        squeezeUntil_[target] = now + plan_.squeezeDuration;
        return;

      case FaultKind::InterruptStorm:
        ++hot_[target].interruptStormFired;
        recordFire(kind, target, now, 0);
        for (unsigned i = 0; i < plan_.interruptBurst; ++i)
            cpus_.at(target)->deliverExternalInterrupt();
        return;

      case FaultKind::DelayedXi:
        // Delay is drawn per XI in xiDelay(); a scheduled entry of
        // this kind is a plan-documentation no-op.
        return;

      case FaultKind::TargetedConflict: {
        // Serial-only: resolves victims via the shared directory
        // and injects against it.
        const Addr l = lineAlign(line);
        CpuId victim = target;
        if (victim == invalidCpu) {
            const mem::DirectoryEntry e =
                hier_.directory().lookup(l);
            victim = e.owner;
            if (victim == invalidCpu)
                for (CpuId id = 0; id < CpuId(cpus_.size()); ++id)
                    if (id < mem::maxDirectoryCpus &&
                        e.sharers.test(id)) {
                        victim = id;
                        break;
                    }
        }
        if (victim == invalidCpu || victim >= cpus_.size()) {
            // Nobody caches the line; a conflict XI has no victim.
            stats_.counter("targeted_conflict.no_holder").inc();
            return;
        }
        if (victim == env_.soloHolder()) {
            // Same fairness rule as XI storms: broadcast-stop
            // stopped all conflicting work, the adversary included.
            stats_.counter("targeted_conflict.suppressed_solo").inc();
            return;
        }
        stats_.counter("targeted_conflict.fired").inc();
        recordFire(kind, victim, now, l);
        if (hier_.injectAdversarialXi(victim, l))
            stats_.counter("targeted_conflict.taken").inc();
        else
            stats_.counter("targeted_conflict.defended").inc();
        return;
      }

      case FaultKind::PoisonLine: {
        // Serial-only: mutates the shared poison map.
        Addr victim_line = lineAlign(line);
        if (victim_line == 0) {
            // Rate-driven: poison one line of the target's live tx
            // footprint (cached image only — always recoverable).
            if (target == env_.soloHolder()) {
                stats_.counter("poison_line.suppressed_solo").inc();
                return;
            }
            const std::vector<Addr> lines =
                hier_.txFootprintLines(target);
            if (lines.empty()) {
                stats_.counter("poison_line.skipped_idle").inc();
                return;
            }
            victim_line = lines[poisonRng_[target].nextBounded(
                lines.size())];
            poison_memory = false;
        }
        stats_.counter("poison_line.fired").inc();
        recordFire(kind, target, now, victim_line);
        hier_.poisonLine(victim_line, poison_memory);
        return;
      }
    }
}

Json
FaultInjector::firedCountsJson() const
{
    foldHotCounters();
    std::array<std::uint64_t, faultKindCount> sum{};
    for (const RecentRing &r : recent_)
        for (std::size_t k = 0; k < faultKindCount; ++k)
            sum[k] += r.byKind[k];
    Json j = Json::object();
    for (std::size_t k = 0; k < faultKindCount; ++k)
        j[faultKindName(FaultKind(k))] = sum[k];
    // XI delays never pass through apply(); report the folded
    // counter (covers the serial fallback stream too).
    j["delayed_xi"] =
        stats_.counters().at("xi_delay.fired").value();
    return j;
}

Json
FaultInjector::recentFiresJson() const
{
    std::vector<FiredFault> all;
    for (const RecentRing &r : recent_) {
        const std::uint64_t kept =
            std::min<std::uint64_t>(r.n, recentDepth);
        for (std::uint64_t i = 0; i < kept; ++i)
            all.push_back(r.slots[(r.n - kept + i) % recentDepth]);
    }
    std::sort(all.begin(), all.end(),
              [](const FiredFault &a, const FiredFault &b) {
                  return std::tie(a.at, a.target, a.seq) <
                         std::tie(b.at, b.target, b.seq);
              });
    if (all.size() > recentDepth)
        all.erase(all.begin(),
                  all.end() - std::ptrdiff_t(recentDepth));
    Json arr = Json::array();
    for (const FiredFault &f : all) {
        Json e = Json::object();
        e["at"] = std::uint64_t(f.at);
        e["kind"] = faultKindName(f.kind);
        e["cpu"] = std::int64_t(f.target);
        e["line"] = std::uint64_t(f.line);
        arr.push(std::move(e));
    }
    return arr;
}

Cycles
FaultInjector::xiDelay(mem::XiKind kind, CpuId target,
                       CpuId requester)
{
    (void)kind;
    (void)requester;
    if (plan_.delayedXiRate <= 0)
        return 0;
    // Per-target streams: a same-shard XI may be probed inside the
    // parallel phase (shard-local fast path), so the draw must be a
    // function of the target's own XI sequence only. Unattached
    // fabric agents (the channel subsystem) are serial-only and use
    // the shared stream.
    if (target >= delayRng_.size()) {
        if (!rng_.nextBool(plan_.delayedXiRate))
            return 0;
        stats_.counter("xi_delay.fired").inc();
        return rng_.nextBounded(plan_.xiDelayMax) + 1;
    }
    Rng &r = delayRng_[target];
    if (!r.nextBool(plan_.delayedXiRate))
        return 0;
    ++hot_[target].xiDelayFired;
    return r.nextBounded(plan_.xiDelayMax) + 1;
}

} // namespace ztx::inject
