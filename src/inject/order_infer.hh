/**
 * @file
 * Version-order inference oracle: the O(n log n) replacement for the
 * exponential lincheck DFS on complete histories.
 *
 * Every committed region reports its read/write line footprint at
 * commit time (OPLOGV / Cpu::endTransaction); the operation log
 * assigns each line a monotonically increasing version — reads
 * record the current version, writes install the next one — and
 * batches the (objid, version) pairs onto the region's operation.
 * Offline, those records reconstruct the cross-CPU commit order:
 * the writers of an object are totally ordered by version, and each
 * reader of version v sits between the writer of v and the writer
 * of v + 1. A topological sort of the operations over these version
 * edges plus per-CPU program order — ties broken by invoke cycle so
 * the result is deterministic — yields a serial schedule that is
 * verified against real-time precedence while it is emitted and
 * then replayed once against the sequential specification
 * (adt_spec.hh). Total work is O(n log n) in operations + records,
 * against the DFS's worst-case exponential search.
 *
 * The oracle only ever *infers* on histories it can vouch for:
 * pending operations (the region may or may not have committed —
 * there is no version record to say), missing version batches,
 * duplicated or gapped versions, cyclic edges, or an inferred order
 * that contradicts real-time precedence all route the history to
 * the DFS fallback (lincheck.hh), which branches over the
 * possibilities instead of guessing. `fallbackReason` records why.
 */

#ifndef ZTX_INJECT_ORDER_INFER_HH
#define ZTX_INJECT_ORDER_INFER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/json.hh"
#include "inject/lincheck.hh"

namespace ztx::inject {

/** Outcome of one order-inference run. */
struct OrderInferReport
{
    /**
     * Final verdict — produced by the inference replay when
     * `inferred`, by the DFS fallback otherwise. Compatible with
     * every LinVerdict consumer.
     */
    LinVerdict verdict;

    /** True: the verdict came from the inferred serial order. */
    bool inferred = false;
    /** Why inference was not applicable (empty when `inferred`). */
    std::string fallbackReason;

    /** @name Inference statistics (zero when not inferred) @{ */
    std::uint64_t versionRecords = 0;
    std::uint64_t versionEdges = 0;
    std::uint64_t programEdges = 0;
    std::uint64_t orderLength = 0;
    /** @} */

    /**
     * The inferred serial schedule as indices into the input
     * history, in linearization order. Kept when `inferred` (even
     * on a replay failure) so debug/replay_dump.hh can print the
     * schedule around a violation.
     */
    std::vector<std::uint32_t> order;
};

/** @p r as a JSON object (chaos records). */
Json orderInferJson(const OrderInferReport &r);

/**
 * Infer-and-replay a set history against the sequential set
 * specification from @p initial_keys; histories that cannot be
 * inferred fall back to checkSetLinearizable with @p limits.
 */
OrderInferReport inferSetLinearizable(
    const std::vector<LinOp> &history,
    const std::vector<std::uint64_t> &initial_keys,
    const LinCheckLimits &limits = {});

/** Queue counterpart of inferSetLinearizable. */
OrderInferReport inferQueueLinearizable(
    const std::vector<LinOp> &history,
    const std::vector<std::uint64_t> &initial_values,
    const LinCheckLimits &limits = {});

/** Map counterpart of inferSetLinearizable (see lincheck.hh). */
OrderInferReport inferMapLinearizable(
    const std::vector<LinOp> &history,
    const std::vector<std::uint64_t> &initial_slots,
    unsigned buckets, unsigned max_probes,
    const std::function<std::uint64_t(std::uint64_t)> &bucket_of,
    const LinCheckLimits &limits = {});

} // namespace ztx::inject

#endif // ZTX_INJECT_ORDER_INFER_HH
