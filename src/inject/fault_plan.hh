/**
 * @file
 * Declarative description of a fault-injection campaign.
 *
 * A FaultPlan names *what* chaos to create and *how much* of it;
 * the FaultInjector (fault_injector.hh) turns the plan into concrete
 * adversarial events against a running machine. Plans are plain data
 * so a MachineConfig can embed one, a bench sweep can scale one, and
 * a JSON report can archive one. All randomness is drawn from one
 * ztx::Rng derived from the plan/machine seed, so a chaotic run
 * replays bit-identically.
 *
 * The fault kinds mirror the paper's environmental abort groups
 * (tx/abort.hh): spurious millicode-visible aborts, conflict XIs,
 * cache-capacity loss, and asynchronous interruptions — plus XI
 * response delay, which perturbs timing without aborting anything
 * (see DESIGN.md "Fault injection & chaos testing").
 */

#ifndef ZTX_INJECT_FAULT_PLAN_HH
#define ZTX_INJECT_FAULT_PLAN_HH

#include <cstdint>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"

namespace ztx::inject {

/** What kind of adversity to apply. */
enum class FaultKind : std::uint8_t
{
    /** Abort the target's transaction for no architectural reason. */
    SpuriousAbort,
    /** Burst of conflict XIs aimed at the target's tx footprint. */
    XiStorm,
    /** Temporarily shrink the target's effective L1/L2 ways. */
    CapacitySqueeze,
    /** Burst of asynchronous (external) interruptions. */
    InterruptStorm,
    /** One-shot marker for delayed-XI campaigns (rate-driven). */
    DelayedXi,
};

/** Stable name for stats keys and reports. */
const char *faultKindName(FaultKind kind);

/** A fault pinned to a cycle point (deterministic scenarios). */
struct ScheduledFault
{
    /** Global cycle at (or after) which the fault fires. */
    Cycles at = 0;
    FaultKind kind = FaultKind::SpuriousAbort;
    /** Victim CPU; invalidCpu targets the next CPU to step. */
    CpuId target = invalidCpu;
};

/** A complete injection campaign: per-step rates plus a schedule. */
struct FaultPlan
{
    /**
     * @name Per-step Bernoulli rates
     * Probability that the named fault hits the CPU about to step,
     * evaluated once per scheduler step. 0 disables the kind.
     * @{
     */
    double spuriousAbortRate = 0.0;
    double xiStormRate = 0.0;
    double capacitySqueezeRate = 0.0;
    double interruptStormRate = 0.0;
    /** Probability that any one XI response is delayed. */
    double delayedXiRate = 0.0;
    /** @} */

    /** @name Fault shape parameters @{ */
    /** XIs per storm (sampled from the victim's tx footprint). */
    unsigned xiStormBurst = 4;
    /** Effective L1 ways while squeezed (0 keeps the geometry). */
    unsigned squeezeL1Ways = 1;
    /** Effective L2 ways while squeezed (0 keeps the geometry). */
    unsigned squeezeL2Ways = 2;
    /** Cycles a capacity squeeze lasts before ways are restored. */
    Cycles squeezeDuration = 4000;
    /** External interruptions per storm. */
    unsigned interruptBurst = 2;
    /** Maximum extra cycles added to a delayed XI response. */
    Cycles xiDelayMax = 256;
    /** @} */

    /** Cycle-pinned faults, applied in order of appearance. */
    std::vector<ScheduledFault> schedule;

    /**
     * Seed of the injector's private RNG; 0 derives one from the
     * machine seed (the common case — one seed reproduces the whole
     * chaotic run).
     */
    std::uint64_t seed = 0;

    /** True when the plan can produce any fault at all. */
    bool
    enabled() const
    {
        return spuriousAbortRate > 0 || xiStormRate > 0 ||
               capacitySqueezeRate > 0 || interruptStormRate > 0 ||
               delayedXiRate > 0 || !schedule.empty();
    }
};

/** @p plan as a JSON object (report/stats metadata). */
Json faultPlanJson(const FaultPlan &plan);

} // namespace ztx::inject

#endif // ZTX_INJECT_FAULT_PLAN_HH
