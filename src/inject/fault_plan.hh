/**
 * @file
 * Declarative description of a fault-injection campaign.
 *
 * A FaultPlan names *what* chaos to create and *how much* of it;
 * the FaultInjector (fault_injector.hh) turns the plan into concrete
 * adversarial events against a running machine. Plans are plain data
 * so a MachineConfig can embed one, a bench sweep can scale one, and
 * a JSON report can archive one. All randomness is drawn from one
 * ztx::Rng derived from the plan/machine seed, so a chaotic run
 * replays bit-identically.
 *
 * The fault kinds mirror the paper's environmental abort groups
 * (tx/abort.hh): spurious millicode-visible aborts, conflict XIs,
 * cache-capacity loss, and asynchronous interruptions — plus XI
 * response delay, which perturbs timing without aborting anything
 * (see DESIGN.md "Fault injection & chaos testing").
 */

#ifndef ZTX_INJECT_FAULT_PLAN_HH
#define ZTX_INJECT_FAULT_PLAN_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/json.hh"
#include "common/types.hh"

namespace ztx::inject {

/** What kind of adversity to apply. */
enum class FaultKind : std::uint8_t
{
    /** Abort the target's transaction for no architectural reason. */
    SpuriousAbort,
    /** Burst of conflict XIs aimed at the target's tx footprint. */
    XiStorm,
    /** Temporarily shrink the target's effective L1/L2 ways. */
    CapacitySqueeze,
    /** Burst of asynchronous (external) interruptions. */
    InterruptStorm,
    /** One-shot marker for delayed-XI campaigns (rate-driven). */
    DelayedXi,
    /**
     * One conflict XI aimed at a *named* line instead of a sample
     * of the victim's footprint: the minimal-repro adversary for
     * directed escalation-ladder tests.
     */
    TargetedConflict,
    /** Poison a line's cached (or memory) image (RAS model). */
    PoisonLine,
};

/** Number of FaultKind enumerators (fixed-size tally arrays). */
inline constexpr std::size_t faultKindCount = 7;

/** Stable name for stats keys and reports. */
const char *faultKindName(FaultKind kind);

/** A fault pinned to a cycle point (deterministic scenarios). */
struct ScheduledFault
{
    /** Global cycle at (or after) which the fault fires. */
    Cycles at = 0;
    FaultKind kind = FaultKind::SpuriousAbort;
    /**
     * Victim CPU. invalidCpu means "no explicit victim", which the
     * two schedulers resolve differently — pinned behaviour, kept
     * for replay compatibility (DESIGN.md §5c): the legacy serial
     * scheduler fires the fault from beforeStep() and the victim is
     * the CPU about to step; the sharded scheduler consumes the
     * schedule at the quantum barrier, where no CPU is "about to
     * step", and the victim is CPU 0 (fired at the scheduled cycle
     * `at`). Each mode is deterministic in itself — any
     * hostThreads >= 1 replays bit-identically — but an untargeted
     * fault is *not* exchangeable between the two modes. Scenario
     * steps (below) resolve untargeted victims by machine state
     * instead and do not inherit this quirk.
     */
    CpuId target = invalidCpu;
    /** Line operand (TargetedConflict, PoisonLine); 0 for others. */
    Addr line = 0;
    /** PoisonLine: also corrupt the memory image (no scrub source). */
    bool poisonMemory = false;
};

/** What arms a ScenarioStep (the scenario trigger grammar). */
enum class TriggerKind : std::uint8_t
{
    /** Fire at cycle `at` (optionally repeating every `period`). */
    AtCycle,
    /** Fire on the watched CPU's `count`-th transaction abort. */
    OnAbort,
    /** Fire when `line` enters some CPU's transactional footprint. */
    OnFootprint,
    /** Fire `at` cycles after step `after` fired. */
    AfterStep,
};

/** Stable trigger name for reports. */
const char *triggerKindName(TriggerKind kind);

/** Per-step assertion, checked when the step fires. */
enum class StepAssert : std::uint8_t
{
    None,
    /** The resolved target CPU is in transactional-execution mode. */
    TargetInTx,
    /** The resolved target CPU is not in a transaction. */
    TargetNotInTx,
    /** `line` is in the resolved target's tx footprint. */
    LineInTargetFootprint,
};

/** Stable assertion name for reports. */
const char *stepAssertName(StepAssert check);

/**
 * One step of a scripted fault scenario: a trigger, the fault to
 * apply when it fires, and an optional assertion about machine
 * state at fire time. Scenarios are evaluated at deterministic
 * points (every step in legacy mode, the quantum barrier in sharded
 * mode), so a run replays bit-identically per seed; a trigger
 * condition that arises and vanishes strictly inside one sharded
 * quantum can be missed — triggers are observations, not interrupts.
 */
struct ScenarioStep
{
    TriggerKind trigger = TriggerKind::AtCycle;
    /** AtCycle: fire cycle. AfterStep: delay after the prereq. */
    Cycles at = 0;
    /** AtCycle only: re-fire period (0 = once); `repeat` caps it. */
    Cycles period = 0;
    /** AtCycle + period: total fires (>= 1). */
    unsigned repeat = 1;
    /** OnAbort: CPU whose aborts count; invalidCpu = any CPU. */
    CpuId watch = invalidCpu;
    /** OnAbort: fire on the count-th abort (1 = first). */
    std::uint64_t count = 1;
    /** OnFootprint watch line; also the fault's line operand. */
    Addr line = 0;
    /** AfterStep: index of the prerequisite step (must be lower). */
    std::size_t after = 0;

    /** Fault applied when the trigger fires. */
    FaultKind kind = FaultKind::SpuriousAbort;
    /**
     * Victim CPU; invalidCpu resolves from machine state at fire
     * time: OnAbort takes the aborting CPU, OnFootprint the
     * (lowest-id) CPU holding the line, everything else the
     * lowest-id CPU holding `line` in its footprint, falling back
     * to CPU 0.
     */
    CpuId target = invalidCpu;
    /** PoisonLine: also corrupt the memory image. */
    bool poisonMemory = false;

    /** Checked (counted + warned, not fatal) at fire time. */
    StepAssert check = StepAssert::None;
};

/** A complete injection campaign: per-step rates plus a schedule. */
struct FaultPlan
{
    /**
     * @name Per-step Bernoulli rates
     * Probability that the named fault hits the CPU about to step,
     * evaluated once per scheduler step. 0 disables the kind.
     * @{
     */
    double spuriousAbortRate = 0.0;
    double xiStormRate = 0.0;
    double capacitySqueezeRate = 0.0;
    double interruptStormRate = 0.0;
    /** Probability that any one XI response is delayed. */
    double delayedXiRate = 0.0;
    /** Probability of a conflict XI aimed at `targetedLine`. */
    double targetedConflictRate = 0.0;
    /** Probability of poisoning a line of the stepper's footprint. */
    double poisonRate = 0.0;
    /** @} */

    /** @name Fault shape parameters @{ */
    /** XIs per storm (sampled from the victim's tx footprint). */
    unsigned xiStormBurst = 4;
    /** Effective L1 ways while squeezed (0 keeps the geometry). */
    unsigned squeezeL1Ways = 1;
    /** Effective L2 ways while squeezed (0 keeps the geometry). */
    unsigned squeezeL2Ways = 2;
    /** Cycles a capacity squeeze lasts before ways are restored. */
    Cycles squeezeDuration = 4000;
    /** External interruptions per storm. */
    unsigned interruptBurst = 2;
    /** Maximum extra cycles added to a delayed XI response. */
    Cycles xiDelayMax = 256;
    /** Line rate-driven TargetedConflict faults aim at. */
    Addr targetedLine = 0;
    /** @} */

    /** Cycle-pinned faults, applied in order of appearance. */
    std::vector<ScheduledFault> schedule;

    /** Scripted trigger-driven steps (see ScenarioStep). */
    std::vector<ScenarioStep> scenario;

    /**
     * Seed of the injector's private RNG; 0 derives one from the
     * machine seed (the common case — one seed reproduces the whole
     * chaotic run).
     */
    std::uint64_t seed = 0;

    /** True when the plan can produce any fault at all. */
    bool
    enabled() const
    {
        return spuriousAbortRate > 0 || xiStormRate > 0 ||
               capacitySqueezeRate > 0 || interruptStormRate > 0 ||
               delayedXiRate > 0 || targetedConflictRate > 0 ||
               poisonRate > 0 || !schedule.empty() ||
               !scenario.empty();
    }
};

/** @p plan as a JSON object (report/stats metadata). */
Json faultPlanJson(const FaultPlan &plan);

} // namespace ztx::inject

#endif // ZTX_INJECT_FAULT_PLAN_HH
