/**
 * @file
 * Sequential specifications of the checked data types, shared by the
 * two history oracles: the Wing–Gong DFS (lincheck.cc) explores
 * linearization prefixes against them, and the order-inference
 * oracle (order_infer.cc) replays its single inferred serial
 * schedule against them. Each spec is a value type: `apply` mutates
 * the state and validates the operation's observed result against
 * it (false = impossible here), `applyPending` takes the state
 * effect of a maybe-completed operation with unconstrained result,
 * and `encode` appends a canonical state fingerprint (DFS memo key).
 */

#ifndef ZTX_INJECT_ADT_SPEC_HH
#define ZTX_INJECT_ADT_SPEC_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "inject/lincheck.hh"

namespace ztx::inject::spec {

inline constexpr Cycles infCycle = ~Cycles(0);

/** Effective response time: pending operations never precede. */
inline Cycles
respOf(const LinOp &op)
{
    return op.pending ? infCycle : op.response;
}

inline void
appendU64(std::string &out, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(char(v >> (i * 8)));
}

inline std::string
describeOp(const LinOp &op)
{
    std::ostringstream os;
    os << "cpu" << op.cpu << '#' << op.seq << ' '
       << linOpCodeName(op.code) << '(' << op.arg << ")->";
    if (op.pending)
        os << '?';
    else
        os << op.result;
    os << " [" << op.invoke << ',';
    if (op.pending)
        os << "pending";
    else
        os << op.response;
    os << ']';
    return os.str();
}

/** Sorted-set specification (list_set workload). */
struct SetState
{
    std::set<std::uint64_t> keys;

    bool
    apply(const LinOp &op)
    {
        const bool present = keys.count(op.arg) != 0;
        switch (op.code) {
          case LinOpCode::SetLookup:
            return (op.result != 0) == present;
          case LinOpCode::SetInsert:
            if ((op.result != 0) == present)
                return false; // applied iff absent
            keys.insert(op.arg);
            return true;
          case LinOpCode::SetDelete:
            if ((op.result != 0) != present)
                return false; // applied iff present
            keys.erase(op.arg);
            return true;
          default:
            return false; // foreign opcode in a set history
        }
    }

    void
    applyPending(const LinOp &op)
    {
        if (op.code == LinOpCode::SetInsert)
            keys.insert(op.arg);
        else if (op.code == LinOpCode::SetDelete)
            keys.erase(op.arg);
    }

    void
    encode(std::string &out) const
    {
        for (const std::uint64_t k : keys)
            appendU64(out, k);
    }
};

/** FIFO queue specification (queue workload). */
struct QueueState
{
    std::deque<std::uint64_t> q;

    bool
    apply(const LinOp &op)
    {
        switch (op.code) {
          case LinOpCode::QueueEnqueue:
            q.push_back(op.arg);
            return true;
          case LinOpCode::QueueDequeue:
            if (op.result == 0)
                return q.empty(); // observed empty
            if (q.empty() || q.front() != op.result)
                return false;
            q.pop_front();
            return true;
          default:
            return false;
        }
    }

    void
    applyPending(const LinOp &op)
    {
        if (op.code == LinOpCode::QueueEnqueue) {
            q.push_back(op.arg);
        } else if (op.code == LinOpCode::QueueDequeue) {
            if (!q.empty())
                q.pop_front();
        }
    }

    void
    encode(std::string &out) const
    {
        for (const std::uint64_t v : q)
            appendU64(out, v);
    }
};

/** Bounded-linear-probing map specification (hashtable workload). */
struct MapState
{
    std::vector<std::uint64_t> slots; ///< index -> key, 0 empty
    unsigned maxProbes = 0;
    /** Engine-owned; outlives every state copy. */
    const std::function<std::uint64_t(std::uint64_t)> *bucketOf =
        nullptr;

    enum class Probe
    {
        Empty,
        Found,
        Bound
    };

    Probe
    probe(std::uint64_t key, std::size_t &slot) const
    {
        const std::uint64_t home = (*bucketOf)(key);
        for (unsigned p = 0; p < maxProbes; ++p) {
            const std::size_t s = std::size_t(home) + p;
            if (s >= slots.size())
                break;
            if (slots[s] == 0) {
                slot = s;
                return Probe::Empty;
            }
            if (slots[s] == key) {
                slot = s;
                return Probe::Found;
            }
        }
        return Probe::Bound;
    }

    bool
    apply(const LinOp &op)
    {
        std::size_t s = 0;
        const Probe pr = probe(op.arg, s);
        switch (op.code) {
          case LinOpCode::MapGet:
            // The workload stores value == key; a found get must
            // observe exactly that, a miss observes 0.
            if (pr == Probe::Found)
                return op.result == op.arg;
            return op.result == 0;
          case LinOpCode::MapPut:
            if (pr == Probe::Bound)
                return op.result == 0; // probe window full: dropped
            slots[s] = op.arg;
            return op.result == 1;
          default:
            return false;
        }
    }

    void
    applyPending(const LinOp &op)
    {
        if (op.code != LinOpCode::MapPut)
            return;
        std::size_t s = 0;
        if (probe(op.arg, s) != Probe::Bound)
            slots[s] = op.arg;
    }

    void
    encode(std::string &out) const
    {
        for (std::size_t i = 0; i < slots.size(); ++i) {
            if (slots[i] == 0)
                continue;
            appendU64(out, i);
            appendU64(out, slots[i]);
        }
    }
};

} // namespace ztx::inject::spec

#endif // ZTX_INJECT_ADT_SPEC_HH
