#include "lincheck.hh"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <utility>

#include "inject/adt_spec.hh"

namespace ztx::inject {

namespace {

using spec::appendU64;
using spec::describeOp;
using spec::infCycle;
using spec::MapState;
using spec::QueueState;
using spec::respOf;
using spec::SetState;

// ---------------------------------------------------------------
// The search engine: DFS over linearization prefixes.
// ---------------------------------------------------------------

template <typename State>
class Engine
{
  public:
    Engine(std::vector<LinOp> history, State initial,
           const LinCheckLimits &limits)
        : ops_(std::move(history)), init_(std::move(initial)),
          limits_(limits)
    {
    }

    LinVerdict
    run()
    {
        LinVerdict v;
        v.numOps = ops_.size();
        for (const auto &op : ops_)
            if (op.pending)
                ++v.numPending;

        if (!validate(v))
            return v; // malformed: checked stays false

        // The search recurses once per linearized operation, so the
        // history size bounds the stack depth: refuse oversized
        // histories honestly instead of overflowing. Large complete
        // histories belong to the order-inference oracle
        // (order_infer.hh), which is iterative and O(n log n).
        if (ops_.size() > limits_.maxOps) {
            v.reason = "history of " + std::to_string(ops_.size()) +
                       " operations exceeds the DFS operation "
                       "limit (" + std::to_string(limits_.maxOps) +
                       "); use the order-inference oracle";
            return v; // checked stays false
        }

        // The simulator's global cycle order: sorting by invoke
        // makes "the next operation that could linearize" a window
        // scan from the first undecided index.
        std::stable_sort(ops_.begin(), ops_.end(),
                         [](const LinOp &a, const LinOp &b) {
                             if (a.invoke != b.invoke)
                                 return a.invoke < b.invoke;
                             if (respOf(a) != respOf(b))
                                 return respOf(a) < respOf(b);
                             return a.cpu < b.cpu;
                         });
        done_.assign(ops_.size(), 0);

        const bool ok = dfs(init_);
        v.statesExplored = explored_;
        if (limitHit_) {
            v.reason = "state limit (" +
                       std::to_string(limits_.maxStates) +
                       ") exceeded before a verdict";
            return v; // checked stays false
        }
        v.checked = true;
        v.linearizable = ok;
        if (!ok) {
            v.reason = stuckReason_.empty()
                           ? "no linearization of the history "
                             "replays against the specification"
                           : stuckReason_;
            v.window = stuckWindow_;
        }
        return v;
    }

  private:
    /**
     * Reject histories the ring buffer cannot vouch for: windows
     * running backwards, per-CPU operations overlapping each other,
     * or a pending operation followed by more operations on the
     * same CPU (a lost response).
     */
    bool
    validate(LinVerdict &v) const
    {
        std::map<CpuId, std::vector<const LinOp *>> per_cpu;
        for (const auto &op : ops_) {
            if (!op.pending && op.response < op.invoke) {
                v.reason = "malformed history: " + describeOp(op) +
                           " responds before it is invoked";
                return false;
            }
            per_cpu[op.cpu].push_back(&op);
        }
        for (auto &[cpu, list] : per_cpu) {
            std::stable_sort(list.begin(), list.end(),
                             [](const LinOp *a, const LinOp *b) {
                                 return a->invoke < b->invoke;
                             });
            for (std::size_t i = 0; i + 1 < list.size(); ++i) {
                if (list[i]->pending) {
                    v.reason = "malformed history: pending " +
                               describeOp(*list[i]) +
                               " is not cpu" +
                               std::to_string(cpu) +
                               "'s last operation";
                    return false;
                }
                if (list[i]->response > list[i + 1]->invoke) {
                    v.reason = "malformed history: " +
                               describeOp(*list[i]) +
                               " overlaps " +
                               describeOp(*list[i + 1]) +
                               " on the same CPU";
                    return false;
                }
            }
        }
        return true;
    }

    bool
    bumpExplored()
    {
        if (++explored_ > limits_.maxStates) {
            limitHit_ = true;
            return false;
        }
        return true;
    }

    void
    mark(std::size_t i)
    {
        done_[i] = 1;
        ++nDone_;
    }

    void
    unmark(std::size_t i)
    {
        done_[i] = 0;
        --nDone_;
        if (i < firstHint_)
            firstHint_ = i;
    }

    /**
     * Candidate window at the current configuration: `first` is the
     * lowest undecided index; `lim` the scan bound (first undecided
     * op invoked after every undecided response); `m` the minimum
     * undecided response. Candidates are the undecided ops invoked
     * no later than `m` — exactly the ops minimal in the real-time
     * precedence order, i.e. the legal next linearization choices.
     */
    struct Window
    {
        std::size_t first;
        std::size_t lim;
        Cycles minResp;
        std::vector<std::size_t> cand;
    };

    Window
    window()
    {
        Window w;
        std::size_t first = firstHint_;
        while (first < ops_.size() && done_[first])
            ++first;
        firstHint_ = first;
        w.first = first;
        w.lim = ops_.size();
        Cycles m = infCycle;
        for (std::size_t i = first; i < ops_.size(); ++i) {
            if (done_[i])
                continue;
            if (ops_[i].invoke > m) {
                w.lim = i;
                break;
            }
            if (respOf(ops_[i]) < m)
                m = respOf(ops_[i]);
        }
        w.minResp = m;
        for (std::size_t i = first; i < w.lim; ++i) {
            if (!done_[i] && ops_[i].invoke <= m)
                w.cand.push_back(i);
        }
        return w;
    }

    /** @return False when this configuration was already explored. */
    bool
    memoInsert(const Window &w, const State &state)
    {
        std::string key;
        key.reserve(64);
        appendU64(key, w.first);
        for (std::size_t i = w.first; i < w.lim; ++i)
            if (done_[i])
                appendU64(key, i);
        key.push_back('|');
        state.encode(key);
        return seen_.insert(std::move(key)).second;
    }

    void
    noteStuck(const Window &w, std::size_t failed)
    {
        if (nDone_ < bestDone_)
            return;
        bestDone_ = nDone_;
        stuckWindow_.clear();
        for (std::size_t i = w.first; i < w.lim; ++i)
            if (!done_[i])
                stuckWindow_.push_back(ops_[i]);
        stuckReason_ =
            describeOp(ops_[failed]) +
            " cannot be linearized against the specification "
            "after " +
            std::to_string(nDone_) + " of " +
            std::to_string(ops_.size()) + " operations";
    }

    bool
    dfs(State state)
    {
        // Marks made by this frame's forced fast path, undone on
        // backtrack.
        std::vector<std::size_t> forced;
        const auto rollback = [&] {
            for (auto it = forced.rbegin(); it != forced.rend();
                 ++it)
                unmark(*it);
        };

        for (;;) {
            Window w = window();
            if (w.first == ops_.size())
                return true; // every operation decided

            // Fast path: exactly one minimal operation and it
            // completed — its linearization position is forced, no
            // branching, no memo traffic. The deterministic global
            // cycle order makes this the dominant case.
            if (w.cand.size() == 1 && !ops_[w.cand[0]].pending) {
                if (!bumpExplored() ||
                    !state.apply(ops_[w.cand[0]])) {
                    if (!limitHit_)
                        noteStuck(w, w.cand[0]);
                    rollback();
                    return false;
                }
                mark(w.cand[0]);
                forced.push_back(w.cand[0]);
                continue;
            }

            // Branch point: try every minimal operation; prune
            // configurations (done-set + spec state) seen before.
            if (!memoInsert(w, state)) {
                rollback();
                return false;
            }
            for (const std::size_t c : w.cand) {
                const LinOp &op = ops_[c];
                if (!bumpExplored())
                    break;
                if (!op.pending) {
                    State next = state;
                    if (!next.apply(op)) {
                        noteStuck(w, c);
                        continue;
                    }
                    mark(c);
                    if (dfs(std::move(next)))
                        return true;
                    unmark(c);
                } else {
                    // Maybe-completed: either it took effect ...
                    State next = state;
                    next.applyPending(op);
                    mark(c);
                    if (dfs(std::move(next)))
                        return true;
                    unmark(c);
                    if (limitHit_)
                        break;
                    // ... or it never happened.
                    mark(c);
                    if (dfs(state))
                        return true;
                    unmark(c);
                }
                if (limitHit_)
                    break;
            }
            rollback();
            return false;
        }
    }

    std::vector<LinOp> ops_;
    State init_;
    LinCheckLimits limits_;

    std::vector<char> done_;
    std::size_t nDone_ = 0;
    std::size_t firstHint_ = 0;
    std::unordered_set<std::string> seen_;
    std::uint64_t explored_ = 0;
    bool limitHit_ = false;

    std::size_t bestDone_ = 0;
    std::string stuckReason_;
    std::vector<LinOp> stuckWindow_;
};

} // namespace

const char *
linOpCodeName(LinOpCode code)
{
    switch (code) {
      case LinOpCode::SetLookup:
        return "lookup";
      case LinOpCode::SetInsert:
        return "insert";
      case LinOpCode::SetDelete:
        return "delete";
      case LinOpCode::QueueEnqueue:
        return "enqueue";
      case LinOpCode::QueueDequeue:
        return "dequeue";
      case LinOpCode::MapGet:
        return "get";
      case LinOpCode::MapPut:
        return "put";
    }
    return "?";
}

Json
linVerdictJson(const LinVerdict &v)
{
    Json d = Json::object();
    d["checked"] = v.checked;
    d["linearizable"] = v.checked ? Json(v.linearizable) : Json();
    d["truncated"] = v.truncated;
    d["ops"] = v.numOps;
    d["pending_ops"] = v.numPending;
    d["states_explored"] = v.statesExplored;
    if (!v.reason.empty())
        d["reason"] = v.reason;
    if (!v.window.empty()) {
        Json win = Json::array();
        for (const auto &op : v.window) {
            Json o = Json::object();
            o["cpu"] = op.cpu;
            o["seq"] = op.seq;
            o["op"] = linOpCodeName(op.code);
            o["arg"] = op.arg;
            o["result"] = op.pending ? Json() : Json(op.result);
            o["invoke"] = std::uint64_t(op.invoke);
            o["response"] = op.pending
                                ? Json()
                                : Json(std::uint64_t(op.response));
            o["pending"] = op.pending;
            win.push(std::move(o));
        }
        d["window"] = std::move(win);
    }
    return d;
}

LinVerdict
checkSetLinearizable(const std::vector<LinOp> &history,
                     const std::vector<std::uint64_t> &initial_keys,
                     const LinCheckLimits &limits)
{
    SetState init;
    init.keys.insert(initial_keys.begin(), initial_keys.end());
    return Engine<SetState>(history, std::move(init), limits).run();
}

LinVerdict
checkQueueLinearizable(
    const std::vector<LinOp> &history,
    const std::vector<std::uint64_t> &initial_values,
    const LinCheckLimits &limits)
{
    QueueState init;
    init.q.assign(initial_values.begin(), initial_values.end());
    return Engine<QueueState>(history, std::move(init), limits)
        .run();
}

LinVerdict
checkMapLinearizable(
    const std::vector<LinOp> &history,
    const std::vector<std::uint64_t> &initial_slots,
    unsigned buckets, unsigned max_probes,
    const std::function<std::uint64_t(std::uint64_t)> &bucket_of,
    const LinCheckLimits &limits)
{
    (void)buckets; // geometry implied by initial_slots.size()
    MapState init;
    init.slots = initial_slots;
    init.maxProbes = max_probes;
    init.bucketOf = &bucket_of;
    return Engine<MapState>(history, std::move(init), limits).run();
}

} // namespace ztx::inject
