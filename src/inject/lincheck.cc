#include "lincheck.hh"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <utility>

#include "inject/adt_spec.hh"

namespace ztx::inject {

namespace {

using spec::appendU64;
using spec::describeOp;
using spec::infCycle;
using spec::MapState;
using spec::QueueState;
using spec::respOf;
using spec::SetState;

// ---------------------------------------------------------------
// The search engine: DFS over linearization prefixes.
// ---------------------------------------------------------------

template <typename State>
class Engine
{
  public:
    Engine(std::vector<LinOp> history, State initial,
           const LinCheckLimits &limits)
        : ops_(std::move(history)), init_(std::move(initial)),
          limits_(limits)
    {
    }

    LinVerdict
    run()
    {
        LinVerdict v;
        v.numOps = ops_.size();
        for (const auto &op : ops_)
            if (op.pending)
                ++v.numPending;

        if (!validate(v))
            return v; // malformed: checked stays false

        // The simulator's global cycle order: sorting by invoke
        // makes "the next operation that could linearize" a window
        // scan from the first undecided index.
        std::stable_sort(ops_.begin(), ops_.end(),
                         [](const LinOp &a, const LinOp &b) {
                             if (a.invoke != b.invoke)
                                 return a.invoke < b.invoke;
                             if (respOf(a) != respOf(b))
                                 return respOf(a) < respOf(b);
                             return a.cpu < b.cpu;
                         });
        done_.assign(ops_.size(), 0);

        const bool ok = dfs(init_);
        v.statesExplored = explored_;
        if (limitHit_) {
            v.reason = "state limit (" +
                       std::to_string(limits_.maxStates) +
                       ") exceeded before a verdict";
            return v; // checked stays false
        }
        v.checked = true;
        v.linearizable = ok;
        if (!ok) {
            v.reason = stuckReason_.empty()
                           ? "no linearization of the history "
                             "replays against the specification"
                           : stuckReason_;
            v.window = stuckWindow_;
        }
        return v;
    }

  private:
    /**
     * Reject histories the ring buffer cannot vouch for: windows
     * running backwards, per-CPU operations overlapping each other,
     * or a pending operation followed by more operations on the
     * same CPU (a lost response).
     */
    bool
    validate(LinVerdict &v) const
    {
        std::map<CpuId, std::vector<const LinOp *>> per_cpu;
        for (const auto &op : ops_) {
            if (!op.pending && op.response < op.invoke) {
                v.reason = "malformed history: " + describeOp(op) +
                           " responds before it is invoked";
                return false;
            }
            per_cpu[op.cpu].push_back(&op);
        }
        for (auto &[cpu, list] : per_cpu) {
            std::stable_sort(list.begin(), list.end(),
                             [](const LinOp *a, const LinOp *b) {
                                 return a->invoke < b->invoke;
                             });
            for (std::size_t i = 0; i + 1 < list.size(); ++i) {
                if (list[i]->pending) {
                    v.reason = "malformed history: pending " +
                               describeOp(*list[i]) +
                               " is not cpu" +
                               std::to_string(cpu) +
                               "'s last operation";
                    return false;
                }
                if (list[i]->response > list[i + 1]->invoke) {
                    v.reason = "malformed history: " +
                               describeOp(*list[i]) +
                               " overlaps " +
                               describeOp(*list[i + 1]) +
                               " on the same CPU";
                    return false;
                }
            }
        }
        return true;
    }

    bool
    bumpExplored()
    {
        if (++explored_ > limits_.maxStates) {
            limitHit_ = true;
            return false;
        }
        return true;
    }

    void
    mark(std::size_t i)
    {
        done_[i] = 1;
        ++nDone_;
    }

    void
    unmark(std::size_t i)
    {
        done_[i] = 0;
        --nDone_;
        if (i < firstHint_)
            firstHint_ = i;
    }

    /**
     * Candidate window at the current configuration: `first` is the
     * lowest undecided index; `lim` the scan bound (first undecided
     * op invoked after every undecided response); `m` the minimum
     * undecided response. Candidates are the undecided ops invoked
     * no later than `m` — exactly the ops minimal in the real-time
     * precedence order, i.e. the legal next linearization choices.
     */
    struct Window
    {
        std::size_t first;
        std::size_t lim;
        Cycles minResp;
        std::vector<std::size_t> cand;
    };

    Window
    window()
    {
        Window w;
        std::size_t first = firstHint_;
        while (first < ops_.size() && done_[first])
            ++first;
        firstHint_ = first;
        w.first = first;
        w.lim = ops_.size();
        Cycles m = infCycle;
        for (std::size_t i = first; i < ops_.size(); ++i) {
            if (done_[i])
                continue;
            if (ops_[i].invoke > m) {
                w.lim = i;
                break;
            }
            if (respOf(ops_[i]) < m)
                m = respOf(ops_[i]);
        }
        w.minResp = m;
        for (std::size_t i = first; i < w.lim; ++i) {
            if (!done_[i] && ops_[i].invoke <= m)
                w.cand.push_back(i);
        }
        return w;
    }

    /** @return False when this configuration was already explored. */
    bool
    memoInsert(const Window &w, const State &state)
    {
        std::string key;
        key.reserve(64);
        appendU64(key, w.first);
        for (std::size_t i = w.first; i < w.lim; ++i)
            if (done_[i])
                appendU64(key, i);
        key.push_back('|');
        state.encode(key);
        return seen_.insert(std::move(key)).second;
    }

    void
    noteStuck(const Window &w, std::size_t failed)
    {
        if (nDone_ < bestDone_)
            return;
        bestDone_ = nDone_;
        stuckWindow_.clear();
        for (std::size_t i = w.first; i < w.lim; ++i)
            if (!done_[i])
                stuckWindow_.push_back(ops_[i]);
        stuckReason_ =
            describeOp(ops_[failed]) +
            " cannot be linearized against the specification "
            "after " +
            std::to_string(nDone_) + " of " +
            std::to_string(ops_.size()) + " operations";
    }

    /**
     * One suspended branch point of the search. Frames exist only
     * where the window holds several candidates (or a pending
     * operation): runs of forced linearizations are consumed inside
     * a single frame, so the stack depth is the number of *open
     * branch decisions*, not the history size — and it lives on the
     * heap, so even an all-pending history cannot overflow the host
     * stack (the old recursive engine had to refuse such histories
     * beyond a size cap).
     */
    struct Frame
    {
        /** Spec state at the branch point (after forced ops). */
        State state;
        /** Forced-fast-path marks, undone when the frame dies. */
        std::vector<std::size_t> forced;
        Window w;
        /** Cursor into w.cand: the candidate being explored. */
        std::size_t ci = 0;
        /** Pending candidates: 0 = took effect, 1 = never happened. */
        int stage = 0;
        /** Forced prefix consumed, window and memo established. */
        bool expanded = false;
    };

    bool
    dfs(State state)
    {
        std::vector<Frame> stack;
        stack.push_back(Frame{std::move(state)});
        // True when the top frame is being resumed after one of its
        // children exhausted its subtree without success.
        bool resuming = false;

        while (!stack.empty()) {
            Frame &f = stack.back();

            if (!f.expanded) {
                // Fast path: while exactly one minimal operation
                // exists and it completed, its linearization
                // position is forced — no branching, no memo
                // traffic, no new frame. The deterministic global
                // cycle order makes this the dominant case.
                bool fail = false;
                for (;;) {
                    Window w = window();
                    if (w.first == ops_.size())
                        return true; // every operation decided
                    if (w.cand.size() == 1 &&
                        !ops_[w.cand[0]].pending) {
                        if (!bumpExplored() ||
                            !f.state.apply(ops_[w.cand[0]])) {
                            if (!limitHit_)
                                noteStuck(w, w.cand[0]);
                            fail = true;
                            break;
                        }
                        mark(w.cand[0]);
                        f.forced.push_back(w.cand[0]);
                        continue;
                    }
                    // Branch point: prune configurations (done-set
                    // + spec state) seen before.
                    if (!memoInsert(w, f.state))
                        fail = true;
                    f.w = std::move(w);
                    break;
                }
                if (fail) {
                    for (auto it = f.forced.rbegin();
                         it != f.forced.rend(); ++it)
                        unmark(*it);
                    stack.pop_back();
                    resuming = true;
                    continue;
                }
                f.expanded = true;
            } else if (resuming) {
                // The child exploring candidate ci/stage failed:
                // undo its mark and advance to the next alternative
                // (a pending operation's "took effect" branch is
                // followed by its "never happened" branch).
                const std::size_t c = f.w.cand[f.ci];
                unmark(c);
                if (ops_[c].pending && f.stage == 0 && !limitHit_) {
                    f.stage = 1;
                } else {
                    f.stage = 0;
                    ++f.ci;
                }
                resuming = false;
            }

            // Dispatch the next candidate as a child frame.
            bool pushed = false;
            while (f.ci < f.w.cand.size() && !limitHit_) {
                const std::size_t c = f.w.cand[f.ci];
                const LinOp &op = ops_[c];
                if (f.stage == 0) {
                    // One exploration budget per candidate; the
                    // dropped branch of a pending op rides along.
                    if (!bumpExplored())
                        break;
                    State next = f.state;
                    if (!op.pending) {
                        if (!next.apply(op)) {
                            noteStuck(f.w, c);
                            ++f.ci;
                            continue;
                        }
                    } else {
                        // Maybe-completed: first assume it took
                        // effect (result unconstrained) ...
                        next.applyPending(op);
                    }
                    mark(c);
                    stack.push_back(Frame{std::move(next)});
                } else {
                    // ... then assume it never happened.
                    mark(c);
                    stack.push_back(Frame{f.state});
                }
                pushed = true;
                break;
            }
            if (!pushed) {
                // Candidates exhausted (or the limit tripped):
                // this subtree holds no linearization.
                Frame &g = stack.back();
                for (auto it = g.forced.rbegin();
                     it != g.forced.rend(); ++it)
                    unmark(*it);
                stack.pop_back();
                resuming = true;
            }
        }
        return false;
    }

    std::vector<LinOp> ops_;
    State init_;
    LinCheckLimits limits_;

    std::vector<char> done_;
    std::size_t nDone_ = 0;
    std::size_t firstHint_ = 0;
    std::unordered_set<std::string> seen_;
    std::uint64_t explored_ = 0;
    bool limitHit_ = false;

    std::size_t bestDone_ = 0;
    std::string stuckReason_;
    std::vector<LinOp> stuckWindow_;
};

} // namespace

const char *
linOpCodeName(LinOpCode code)
{
    switch (code) {
      case LinOpCode::SetLookup:
        return "lookup";
      case LinOpCode::SetInsert:
        return "insert";
      case LinOpCode::SetDelete:
        return "delete";
      case LinOpCode::QueueEnqueue:
        return "enqueue";
      case LinOpCode::QueueDequeue:
        return "dequeue";
      case LinOpCode::MapGet:
        return "get";
      case LinOpCode::MapPut:
        return "put";
    }
    return "?";
}

Json
linVerdictJson(const LinVerdict &v)
{
    Json d = Json::object();
    d["checked"] = v.checked;
    d["linearizable"] = v.checked ? Json(v.linearizable) : Json();
    d["truncated"] = v.truncated;
    d["ops"] = v.numOps;
    d["pending_ops"] = v.numPending;
    d["states_explored"] = v.statesExplored;
    if (!v.reason.empty())
        d["reason"] = v.reason;
    if (!v.window.empty()) {
        Json win = Json::array();
        for (const auto &op : v.window) {
            Json o = Json::object();
            o["cpu"] = op.cpu;
            o["seq"] = op.seq;
            o["op"] = linOpCodeName(op.code);
            o["arg"] = op.arg;
            o["result"] = op.pending ? Json() : Json(op.result);
            o["invoke"] = std::uint64_t(op.invoke);
            o["response"] = op.pending
                                ? Json()
                                : Json(std::uint64_t(op.response));
            o["pending"] = op.pending;
            win.push(std::move(o));
        }
        d["window"] = std::move(win);
    }
    return d;
}

LinVerdict
checkSetLinearizable(const std::vector<LinOp> &history,
                     const std::vector<std::uint64_t> &initial_keys,
                     const LinCheckLimits &limits)
{
    SetState init;
    init.keys.insert(initial_keys.begin(), initial_keys.end());
    return Engine<SetState>(history, std::move(init), limits).run();
}

LinVerdict
checkQueueLinearizable(
    const std::vector<LinOp> &history,
    const std::vector<std::uint64_t> &initial_values,
    const LinCheckLimits &limits)
{
    QueueState init;
    init.q.assign(initial_values.begin(), initial_values.end());
    return Engine<QueueState>(history, std::move(init), limits)
        .run();
}

LinVerdict
checkMapLinearizable(
    const std::vector<LinOp> &history,
    const std::vector<std::uint64_t> &initial_slots,
    unsigned buckets, unsigned max_probes,
    const std::function<std::uint64_t(std::uint64_t)> &bucket_of,
    const LinCheckLimits &limits)
{
    (void)buckets; // geometry implied by initial_slots.size()
    MapState init;
    init.slots = initial_slots;
    init.maxProbes = max_probes;
    init.bucketOf = &bucket_of;
    return Engine<MapState>(history, std::move(init), limits).run();
}

} // namespace ztx::inject
