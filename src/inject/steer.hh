/**
 * @file
 * Schedule steering hook for enumeration-mode stepping.
 *
 * A ScheduleSteer replaces the machine's ready-time scheduling
 * policy with an external choice: at every step the machine hands
 * the steer the set of runnable CPUs and steps whichever one the
 * steer picks. Combined with the deterministic simulator this turns
 * the machine into a stateless model checker's executor — the
 * litmus enumerator (src/litmus) drives one fresh machine per
 * schedule, replaying a decision prefix and branching at the first
 * unexplored choice point.
 *
 * The hook lives in src/inject because steering shares the
 * injector's evaluation contract: FaultInjector::beforeStep() runs
 * before *every* steered step, so scripted ScenarioStep triggers
 * (OnFootprint, OnAbort, ...) are evaluated exactly at the
 * enumeration decision points and a directed abort can never fall
 * between two choices unobserved.
 */

#ifndef ZTX_INJECT_STEER_HH
#define ZTX_INJECT_STEER_HH

#include <vector>

#include "common/types.hh"

namespace ztx::inject {

/** Picks the next CPU to step (enumeration-mode scheduling). */
class ScheduleSteer
{
  public:
    virtual ~ScheduleSteer() = default;

    /**
     * Choose the next CPU to step.
     * @param runnable Non-empty set of steppable CPUs, ascending id.
     *        Under solo mode this is just the solo holder.
     * @return A member of @p runnable, or invalidCpu to stop the
     *         run immediately (frontier cap / driver abort).
     */
    virtual CpuId choose(const std::vector<CpuId> &runnable) = 0;
};

} // namespace ztx::inject

#endif // ZTX_INJECT_STEER_HH
