/**
 * @file
 * The 256-byte Transaction Diagnostic Block (paper §II.E.1).
 *
 * When a transaction with a TDB address specified on the outermost
 * TBEGIN aborts, the CPU (millicode, really) stores detailed abort
 * diagnostics there. A second copy goes into the per-CPU prefix area
 * on aborts caused by program interruptions, for post-mortem
 * analysis.
 *
 * The byte layout is zTX's own (documented below); it mirrors the
 * information content of the architected TDB: abort code, conflict
 * token with validity, aborted-transaction instruction address,
 * program-interruption information, and the GR contents at abort.
 */

#ifndef ZTX_TX_TDB_HH
#define ZTX_TX_TDB_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "tx/abort.hh"

namespace ztx::mem {
class MainMemory;
} // namespace ztx::mem

namespace ztx::tx {

/** Size of a TDB in storage. */
inline constexpr std::uint64_t tdbSizeBytes = 256;

/**
 * In-memory layout (all integers big-endian):
 *   0x00  format byte (always 1)
 *   0x01  flags: bit 0 = conflict token valid
 *   0x08  transaction abort code (8 bytes)
 *   0x10  conflict token -- storage address of the conflicting line
 *   0x18  aborted-transaction instruction address
 *   0x20  program-interruption code (2 bytes)
 *   0x28  translation-exception address (8 bytes)
 *   0x80  general registers 0..15 (16 x 8 bytes)
 */
struct Tdb
{
    std::uint8_t format = 1;
    bool conflictTokenValid = false;
    std::uint64_t abortCode = 0;
    Addr conflictToken = 0;
    Addr abortedIa = 0;
    InterruptCode interruptCode = InterruptCode::None;
    Addr translationExceptionAddr = 0;
    std::array<std::uint64_t, 16> grs{};

    /** Serialize into @p memory at @p addr (256 bytes). */
    void store(mem::MainMemory &memory, Addr addr) const;

    /** Deserialize from @p memory at @p addr. */
    static Tdb load(const mem::MainMemory &memory, Addr addr);
};

} // namespace ztx::tx

#endif // ZTX_TX_TDB_HH
