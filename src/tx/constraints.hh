/**
 * @file
 * Constrained-transaction rule checking (paper §II.D).
 *
 * A transaction started with TBEGINC must obey:
 *   - at most 32 instructions execute,
 *   - all instruction text within 256 consecutive bytes,
 *   - only forward-pointing relative branches (no loops/calls),
 *   - data accesses touch at most 4 aligned octowords (32 bytes),
 *   - only the constrained instruction subset is used.
 *
 * Violations raise a non-filterable constraint-violation program
 * interruption. The limits are architected constants so that future
 * implementations can keep guaranteeing success.
 */

#ifndef ZTX_TX_CONSTRAINTS_HH
#define ZTX_TX_CONSTRAINTS_HH

#include <array>
#include <cstdint>
#include <optional>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace ztx::tx {

/** Architected constrained-transaction limits. */
inline constexpr unsigned constrainedMaxInstructions = 32;
inline constexpr unsigned constrainedMaxTextBytes = 256;
inline constexpr unsigned constrainedMaxOctowords = 4;

/** Which constrained-transaction rule was broken. */
enum class ConstraintViolationKind : std::uint8_t
{
    TooManyInstructions,
    TextFootprint,
    BackwardBranch,
    RestrictedOperation,
    DataFootprint,
};

/** Human-readable violation name. */
const char *constraintViolationName(ConstraintViolationKind kind);

/** Tracks one constrained transaction's rule compliance. */
class ConstraintChecker
{
  public:
    ConstraintChecker() = default;

    /** Start tracking a constrained TX whose TBEGINC is at @p addr. */
    void begin(Addr tbeginc_addr);

    /** Stop tracking (TEND or abort). */
    void end();

    /** True while a constrained transaction is being tracked. */
    bool active() const { return active_; }

    /**
     * Validate the next instruction to execute.
     * @param inst The decoded instruction.
     * @param addr Its address.
     * @return The violated rule, or nullopt if compliant.
     */
    std::optional<ConstraintViolationKind>
    checkInstruction(const isa::Instruction &inst, Addr addr);

    /**
     * Validate a data access of @p size bytes at @p addr, tracking
     * the set of distinct aligned octowords touched.
     * @return DataFootprint if the 4-octoword budget is exceeded.
     */
    std::optional<ConstraintViolationKind>
    checkDataAccess(Addr addr, unsigned size);

    /** Instructions executed so far in this constrained TX. */
    unsigned instructionCount() const { return instructions_; }

    /** Distinct octowords touched so far. */
    unsigned octowordCount() const { return numOctowords_; }

  private:
    bool trackOctoword(Addr octoword);

    bool active_ = false;
    Addr beginAddr_ = 0;
    Addr lastAddr_ = 0;
    unsigned instructions_ = 0;
    unsigned numOctowords_ = 0;
    std::array<Addr, constrainedMaxOctowords> octowords_{};
};

} // namespace ztx::tx

#endif // ZTX_TX_CONSTRAINTS_HH
