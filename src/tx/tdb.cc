#include "tdb.hh"

#include "mem/main_memory.hh"

namespace ztx::tx {

void
Tdb::store(mem::MainMemory &memory, Addr addr) const
{
    // Clear the whole block first so stale bytes never leak through.
    for (std::uint64_t i = 0; i < tdbSizeBytes; ++i)
        memory.writeByte(addr + i, 0);

    memory.writeByte(addr + 0x00, format);
    memory.writeByte(addr + 0x01, conflictTokenValid ? 1 : 0);
    memory.write(addr + 0x08, abortCode, 8);
    memory.write(addr + 0x10, conflictToken, 8);
    memory.write(addr + 0x18, abortedIa, 8);
    memory.write(addr + 0x20, std::uint64_t(interruptCode), 2);
    memory.write(addr + 0x28, translationExceptionAddr, 8);
    for (unsigned r = 0; r < 16; ++r)
        memory.write(addr + 0x80 + 8 * r, grs[r], 8);
}

Tdb
Tdb::load(const mem::MainMemory &memory, Addr addr)
{
    Tdb tdb;
    tdb.format = memory.readByte(addr + 0x00);
    tdb.conflictTokenValid = memory.readByte(addr + 0x01) & 1;
    tdb.abortCode = memory.read(addr + 0x08, 8);
    tdb.conflictToken = memory.read(addr + 0x10, 8);
    tdb.abortedIa = memory.read(addr + 0x18, 8);
    tdb.interruptCode = InterruptCode(memory.read(addr + 0x20, 2));
    tdb.translationExceptionAddr = memory.read(addr + 0x28, 8);
    for (unsigned r = 0; r < 16; ++r)
        tdb.grs[r] = memory.read(addr + 0x80 + 8 * r, 8);
    return tdb;
}

} // namespace ztx::tx
