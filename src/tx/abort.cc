#include "abort.hh"

namespace ztx::tx {

const char *
abortReasonName(AbortReason reason)
{
    switch (reason) {
      case AbortReason::None: return "none";
      case AbortReason::ExternalInterrupt: return "external-interrupt";
      case AbortReason::ProgramInterrupt: return "program-interrupt";
      case AbortReason::MachineCheck: return "machine-check";
      case AbortReason::IoInterrupt: return "io-interrupt";
      case AbortReason::FetchOverflow: return "fetch-overflow";
      case AbortReason::StoreOverflow: return "store-overflow";
      case AbortReason::FetchConflict: return "fetch-conflict";
      case AbortReason::StoreConflict: return "store-conflict";
      case AbortReason::RestrictedInstruction:
        return "restricted-instruction";
      case AbortReason::FilteredProgramInterrupt:
        return "filtered-program-interrupt";
      case AbortReason::NestingDepthExceeded:
        return "nesting-depth-exceeded";
      case AbortReason::CacheFetchRelated: return "cache-fetch";
      case AbortReason::CacheStoreRelated: return "cache-store";
      case AbortReason::CacheOther: return "cache-other";
      case AbortReason::DataPoisoned: return "data-poisoned";
      case AbortReason::DiagnosticAbort: return "diagnostic";
      case AbortReason::Miscellaneous: return "miscellaneous";
      case AbortReason::TAbortBase: return "tabort";
    }
    return "?";
}

const char *
interruptCodeName(InterruptCode code)
{
    switch (code) {
      case InterruptCode::None: return "none";
      case InterruptCode::Operation: return "operation";
      case InterruptCode::PrivilegedOperation:
        return "privileged-operation";
      case InterruptCode::PageFault: return "page-fault";
      case InterruptCode::FixedPointDivide:
        return "fixed-point-divide";
      case InterruptCode::DecimalData: return "decimal-data";
      case InterruptCode::ConstraintViolation:
        return "constraint-violation";
      case InterruptCode::PerEvent: return "per-event";
    }
    return "?";
}

bool
isFiltered(InterruptCode code, std::uint8_t pifc,
           bool instruction_fetch)
{
    // Exceptions related to instruction fetching are never filtered:
    // a page fault on a transaction-only code page would otherwise
    // never be resolved by the OS (paper §II.C).
    if (instruction_fetch)
        return false;
    switch (code) {
      case InterruptCode::PageFault:
        // Group 3 (access): filtered at PIFC 2 only.
        return pifc >= 2;
      case InterruptCode::FixedPointDivide:
      case InterruptCode::DecimalData:
        // Group 4 (data/arithmetic): filtered at PIFC 1 and 2.
        return pifc >= 1;
      default:
        // Groups 1/2 plus constraint violations and PER events are
        // never filtered.
        return false;
    }
}

} // namespace ztx::tx
