/**
 * @file
 * Transaction abort reasons, abort codes, and condition-code policy.
 *
 * Abort codes follow the z/Architecture Transaction Diagnostic Block
 * convention (codes 2..16 for machine-detected conditions, 256 and up
 * for TABORT). The condition code distinguishes transient (CC2,
 * "worth retrying") from permanent (CC3, "use the fallback path")
 * aborts, as described in paper §II.A.
 */

#ifndef ZTX_TX_ABORT_HH
#define ZTX_TX_ABORT_HH

#include <cstdint>

#include "common/types.hh"

namespace ztx::tx {

/** Machine-detected abort conditions (TDB abort-code values). */
enum class AbortReason : std::uint16_t
{
    None = 0,
    ExternalInterrupt = 2,   ///< asynchronous interruption (timer,...)
    ProgramInterrupt = 4,    ///< unfiltered program exception
    MachineCheck = 5,
    IoInterrupt = 6,
    FetchOverflow = 7,       ///< read footprint exceeded tracking
    StoreOverflow = 8,       ///< store cache / store footprint full
    FetchConflict = 9,       ///< another CPU stores what we read
    StoreConflict = 10,      ///< another CPU accesses what we store
    RestrictedInstruction = 11,
    FilteredProgramInterrupt = 12,
    NestingDepthExceeded = 13,
    CacheFetchRelated = 14,  ///< tx-read line lost (e.g. LRU'd)
    CacheStoreRelated = 15,  ///< tx-dirty line lost
    CacheOther = 16,         ///< e.g. XI-reject hang-avoidance
    DataPoisoned = 17,       ///< poisoned line in the tx footprint (RAS)
    DiagnosticAbort = 254,   ///< Transaction Diagnostic Control abort
    Miscellaneous = 255,
    TAbortBase = 256,        ///< TABORT codes are >= 256
};

/** True if @p reason should set CC2 (transient, retry promising). */
constexpr bool
isTransient(AbortReason reason, std::uint64_t abort_code)
{
    switch (reason) {
      case AbortReason::ExternalInterrupt:
      case AbortReason::ProgramInterrupt:
      case AbortReason::IoInterrupt:
      case AbortReason::FetchConflict:
      case AbortReason::StoreConflict:
      case AbortReason::FilteredProgramInterrupt:
      case AbortReason::CacheFetchRelated:
      case AbortReason::CacheStoreRelated:
      case AbortReason::CacheOther:
      case AbortReason::DataPoisoned:
      case AbortReason::DiagnosticAbort:
        return true;
      case AbortReason::TAbortBase:
        // TABORT: the least significant bit of the code selects
        // transient (0 -> CC2) versus permanent (1 -> CC3).
        return (abort_code & 1) == 0;
      default:
        return false;
    }
}

/** Condition code the abort leaves behind (2 or 3). */
constexpr std::uint8_t
abortCc(AbortReason reason, std::uint64_t abort_code)
{
    return isTransient(reason, abort_code) ? 2 : 3;
}

/** Human-readable reason name. */
const char *abortReasonName(AbortReason reason);

/** Program-interruption codes the simulator models. */
enum class InterruptCode : std::uint8_t
{
    None = 0,
    Operation,           ///< invalid opcode (group 2)
    PrivilegedOperation, ///< group 2
    PageFault,           ///< group 3 (access)
    FixedPointDivide,    ///< group 4 (arithmetic)
    DecimalData,         ///< group 4 (arithmetic)
    ConstraintViolation, ///< constrained-TX rule broken (unfilterable)
    PerEvent,            ///< Program Event Recording (unfilterable)
};

/** Human-readable interrupt-code name. */
const char *interruptCodeName(InterruptCode code);

/**
 * Decide whether a program-exception condition detected inside a
 * transaction is filtered (no OS interruption) under the effective
 * PIFC (paper §II.C).
 *
 * @param code The exception.
 * @param pifc Effective filtering control (max over the nest), 0..2.
 * @param instruction_fetch True if the exception relates to fetching
 *        the instruction text itself; those are never filtered.
 */
bool isFiltered(InterruptCode code, std::uint8_t pifc,
                bool instruction_fetch);

} // namespace ztx::tx

#endif // ZTX_TX_ABORT_HH
