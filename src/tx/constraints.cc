#include "constraints.hh"

#include "common/log.hh"

namespace ztx::tx {

const char *
constraintViolationName(ConstraintViolationKind kind)
{
    switch (kind) {
      case ConstraintViolationKind::TooManyInstructions:
        return "too-many-instructions";
      case ConstraintViolationKind::TextFootprint:
        return "text-footprint";
      case ConstraintViolationKind::BackwardBranch:
        return "backward-branch";
      case ConstraintViolationKind::RestrictedOperation:
        return "restricted-operation";
      case ConstraintViolationKind::DataFootprint:
        return "data-footprint";
    }
    return "?";
}

void
ConstraintChecker::begin(Addr tbeginc_addr)
{
    active_ = true;
    beginAddr_ = tbeginc_addr;
    lastAddr_ = tbeginc_addr;
    instructions_ = 0;
    numOctowords_ = 0;
}

void
ConstraintChecker::end()
{
    active_ = false;
}

std::optional<ConstraintViolationKind>
ConstraintChecker::checkInstruction(const isa::Instruction &inst,
                                    Addr addr)
{
    if (!active_)
        ztx_panic("constraint check while not in constrained TX");

    const auto &info = isa::opcodeInfo(inst.op);

    if (info.restrictedInConstrained)
        return ConstraintViolationKind::RestrictedOperation;

    // "All instruction text within 256 consecutive bytes" covers
    // every instruction of the transaction, TEND included.
    if (addr < beginAddr_ ||
        addr + info.length > beginAddr_ + constrainedMaxTextBytes)
        return ConstraintViolationKind::TextFootprint;

    // TEND closes the transaction and is not counted against the
    // instruction budget (the budget covers the transaction body).
    if (inst.op == isa::Opcode::TEND)
        return std::nullopt;

    // Zero-cycle simulator instrumentation is exempt from the
    // budget: enabling op logging must not change which regions are
    // constrained-legal.
    if (inst.op == isa::Opcode::OPLOGV)
        return std::nullopt;

    // A re-check at the same address is a retry of an instruction
    // whose storage access was rejected, not a new instruction:
    // constrained code has no backward branches, so an address can
    // never legitimately repeat.
    if (instructions_ > 0 && addr == lastAddr_)
        return std::nullopt;
    lastAddr_ = addr;

    if (++instructions_ > constrainedMaxInstructions)
        return ConstraintViolationKind::TooManyInstructions;

    if (info.isBranch && inst.target <= addr)
        return ConstraintViolationKind::BackwardBranch;

    return std::nullopt;
}

bool
ConstraintChecker::trackOctoword(Addr octoword)
{
    for (unsigned i = 0; i < numOctowords_; ++i)
        if (octowords_[i] == octoword)
            return true;
    if (numOctowords_ == constrainedMaxOctowords)
        return false;
    octowords_[numOctowords_++] = octoword;
    return true;
}

std::optional<ConstraintViolationKind>
ConstraintChecker::checkDataAccess(Addr addr, unsigned size)
{
    if (!active_)
        ztx_panic("constraint data check while not in constrained TX");
    const Addr first = octowordAlign(addr);
    const Addr last = octowordAlign(addr + size - 1);
    for (Addr ow = first; ow <= last; ow += octowordBytes)
        if (!trackOctoword(ow))
            return ConstraintViolationKind::DataFootprint;
    return std::nullopt;
}

} // namespace ztx::tx
