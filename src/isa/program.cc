#include "program.hh"

#include "common/log.hh"

namespace ztx::isa {

const Program::Slot *
Program::fetch(Addr addr) const
{
    const auto it = byAddr_.find(addr);
    return it == byAddr_.end() ? nullptr : &slots_[it->second];
}

Addr
Program::entry() const
{
    if (slots_.empty())
        ztx_fatal("fetch from empty program");
    return slots_.front().addr;
}

Addr
Program::labelAddr(const std::string &name) const
{
    const auto it = labels_.find(name);
    if (it == labels_.end())
        ztx_fatal("unknown label '", name, "'");
    return it->second;
}

} // namespace ztx::isa
