#include "assembler.hh"

#include "common/log.hh"

namespace ztx::isa {

namespace {

void
checkReg(unsigned r, const char *what)
{
    if (r >= numGrs)
        ztx_fatal("register operand ", r, " out of range for ", what);
}

} // namespace

Assembler::Assembler(Addr base) : addr_(base)
{
}

Instruction &
Assembler::emit(Opcode op)
{
    if (finished_)
        ztx_panic("emit after finish()");
    Program::Slot slot;
    slot.inst.op = op;
    slot.addr = addr_;
    slot.length = opcodeInfo(op).length;
    prog_.byAddr_[addr_] = prog_.slots_.size();
    prog_.slots_.push_back(slot);
    addr_ += slot.length;
    return prog_.slots_.back().inst;
}

void
Assembler::label(const std::string &name)
{
    if (prog_.labels_.count(name))
        ztx_fatal("duplicate label '", name, "'");
    prog_.labels_[name] = addr_;
}

void
Assembler::lhi(unsigned r1, std::int64_t imm)
{
    checkReg(r1, "LHI");
    auto &i = emit(Opcode::LHI);
    i.r1 = std::uint8_t(r1);
    i.imm = imm;
}

void
Assembler::lr(unsigned r1, unsigned r2)
{
    checkReg(r1, "LR");
    checkReg(r2, "LR");
    auto &i = emit(Opcode::LR);
    i.r1 = std::uint8_t(r1);
    i.r2 = std::uint8_t(r2);
}

void
Assembler::ltr(unsigned r1, unsigned r2)
{
    checkReg(r1, "LTR");
    checkReg(r2, "LTR");
    auto &i = emit(Opcode::LTR);
    i.r1 = std::uint8_t(r1);
    i.r2 = std::uint8_t(r2);
}

void
Assembler::la(unsigned r1, unsigned base, std::int64_t disp,
              unsigned index)
{
    checkReg(r1, "LA");
    checkReg(base, "LA");
    checkReg(index, "LA");
    auto &i = emit(Opcode::LA);
    i.r1 = std::uint8_t(r1);
    i.base = std::uint8_t(base);
    i.index = std::uint8_t(index);
    i.disp = disp;
}

#define ZTX_RR_OP(fn, OP) \
    void \
    Assembler::fn(unsigned r1, unsigned r2) \
    { \
        checkReg(r1, #OP); \
        checkReg(r2, #OP); \
        auto &i = emit(Opcode::OP); \
        i.r1 = std::uint8_t(r1); \
        i.r2 = std::uint8_t(r2); \
    }

ZTX_RR_OP(agr, AGR)
ZTX_RR_OP(sgr, SGR)
ZTX_RR_OP(msgr, MSGR)
ZTX_RR_OP(xgr, XGR)
ZTX_RR_OP(ngr, NGR)
ZTX_RR_OP(ogr, OGR)
ZTX_RR_OP(cgr, CGR)
ZTX_RR_OP(dsgr, DSGR)

#undef ZTX_RR_OP

void
Assembler::ahi(unsigned r1, std::int64_t imm)
{
    checkReg(r1, "AHI");
    auto &i = emit(Opcode::AHI);
    i.r1 = std::uint8_t(r1);
    i.imm = imm;
}

void
Assembler::sllg(unsigned r1, unsigned r2, unsigned shift)
{
    checkReg(r1, "SLLG");
    checkReg(r2, "SLLG");
    auto &i = emit(Opcode::SLLG);
    i.r1 = std::uint8_t(r1);
    i.r2 = std::uint8_t(r2);
    i.imm = shift;
}

void
Assembler::srlg(unsigned r1, unsigned r2, unsigned shift)
{
    checkReg(r1, "SRLG");
    checkReg(r2, "SRLG");
    auto &i = emit(Opcode::SRLG);
    i.r1 = std::uint8_t(r1);
    i.r2 = std::uint8_t(r2);
    i.imm = shift;
}

void
Assembler::cghi(unsigned r1, std::int64_t imm)
{
    checkReg(r1, "CGHI");
    auto &i = emit(Opcode::CGHI);
    i.r1 = std::uint8_t(r1);
    i.imm = imm;
}

#define ZTX_MEM_OP(fn, OP) \
    void \
    Assembler::fn(unsigned r1, unsigned base, std::int64_t disp, \
                  unsigned index) \
    { \
        checkReg(r1, #OP); \
        checkReg(base, #OP); \
        checkReg(index, #OP); \
        auto &i = emit(Opcode::OP); \
        i.r1 = std::uint8_t(r1); \
        i.base = std::uint8_t(base); \
        i.index = std::uint8_t(index); \
        i.disp = disp; \
    }

ZTX_MEM_OP(lg, LG)
ZTX_MEM_OP(lt, LT)
ZTX_MEM_OP(lgfo, LGFO)
ZTX_MEM_OP(stg, STG)
ZTX_MEM_OP(ntstg, NTSTG)

#undef ZTX_MEM_OP

void
Assembler::cs(unsigned r1, unsigned r3, unsigned base,
              std::int64_t disp)
{
    checkReg(r1, "CS");
    checkReg(r3, "CS");
    checkReg(base, "CS");
    auto &i = emit(Opcode::CS);
    i.r1 = std::uint8_t(r1);
    i.r3 = std::uint8_t(r3);
    i.base = std::uint8_t(base);
    i.disp = disp;
}

void
Assembler::j(const std::string &target)
{
    emit(Opcode::J);
    fixups_.push_back({prog_.slots_.size() - 1, target});
}

void
Assembler::brc(std::uint8_t mask, const std::string &target)
{
    auto &i = emit(Opcode::BRC);
    i.mask = mask;
    fixups_.push_back({prog_.slots_.size() - 1, target});
}

void
Assembler::brct(unsigned r1, const std::string &target)
{
    checkReg(r1, "BRCT");
    auto &i = emit(Opcode::BRCT);
    i.r1 = std::uint8_t(r1);
    fixups_.push_back({prog_.slots_.size() - 1, target});
}

void
Assembler::cij(unsigned r1, std::int64_t imm, std::uint8_t mask,
               const std::string &target)
{
    checkReg(r1, "CIJ");
    auto &i = emit(Opcode::CIJ);
    i.r1 = std::uint8_t(r1);
    i.imm = imm;
    i.mask = mask;
    fixups_.push_back({prog_.slots_.size() - 1, target});
}

void
Assembler::tbegin(std::uint8_t grsm, const TBeginOpts &opts)
{
    if (opts.pifc > 2)
        ztx_fatal("TBEGIN PIFC must be 0..2");
    checkReg(opts.tdbBase, "TBEGIN");
    auto &i = emit(Opcode::TBEGIN);
    i.grsm = grsm;
    i.base = std::uint8_t(opts.tdbBase);
    i.disp = opts.tdbDisp;
    i.allowArMod = opts.allowArMod;
    i.allowFprMod = opts.allowFprMod;
    i.pifc = opts.pifc;
}

void
Assembler::tbeginc(std::uint8_t grsm, bool allow_ar_mod)
{
    auto &i = emit(Opcode::TBEGINC);
    i.grsm = grsm;
    i.allowArMod = allow_ar_mod;
    // TBEGINC has no F or PIFC fields; the controls are zero, i.e.
    // FPR modification is blocked and no filtering occurs (§II.D).
    i.allowFprMod = false;
    i.pifc = 0;
}

void
Assembler::tend()
{
    emit(Opcode::TEND);
}

void
Assembler::tabort(unsigned base, std::int64_t disp)
{
    checkReg(base, "TABORT");
    auto &i = emit(Opcode::TABORT);
    i.base = std::uint8_t(base);
    i.disp = disp;
}

void
Assembler::etnd(unsigned r1)
{
    checkReg(r1, "ETND");
    emit(Opcode::ETND).r1 = std::uint8_t(r1);
}

void
Assembler::ppa(unsigned r1)
{
    checkReg(r1, "PPA");
    emit(Opcode::PPA).r1 = std::uint8_t(r1);
}

void
Assembler::adb(unsigned f1, unsigned f2)
{
    auto &i = emit(Opcode::ADB);
    i.r1 = std::uint8_t(f1);
    i.r2 = std::uint8_t(f2);
}

void
Assembler::ldgr(unsigned f1, unsigned r2)
{
    checkReg(r2, "LDGR");
    auto &i = emit(Opcode::LDGR);
    i.r1 = std::uint8_t(f1);
    i.r2 = std::uint8_t(r2);
}

void
Assembler::sar(unsigned a1, unsigned r2)
{
    checkReg(r2, "SAR");
    auto &i = emit(Opcode::SAR);
    i.r1 = std::uint8_t(a1);
    i.r2 = std::uint8_t(r2);
}

void
Assembler::ear(unsigned r1, unsigned a2)
{
    checkReg(r1, "EAR");
    auto &i = emit(Opcode::EAR);
    i.r1 = std::uint8_t(r1);
    i.r2 = std::uint8_t(a2);
}

void
Assembler::ap(unsigned r1, unsigned r2)
{
    checkReg(r1, "AP");
    checkReg(r2, "AP");
    auto &i = emit(Opcode::AP);
    i.r1 = std::uint8_t(r1);
    i.r2 = std::uint8_t(r2);
}

void
Assembler::lpswe()
{
    emit(Opcode::LPSWE);
}

void
Assembler::invalidOp()
{
    emit(Opcode::INVALID);
}

void
Assembler::stck(unsigned r1)
{
    checkReg(r1, "STCK");
    emit(Opcode::STCK).r1 = std::uint8_t(r1);
}

void
Assembler::rnd(unsigned r1, std::uint64_t bound)
{
    checkReg(r1, "RAND");
    if (bound == 0)
        ztx_fatal("RAND bound must be non-zero");
    auto &i = emit(Opcode::RAND);
    i.r1 = std::uint8_t(r1);
    i.imm = std::int64_t(bound);
}

void
Assembler::markb()
{
    emit(Opcode::MARKB);
}

void
Assembler::marke()
{
    emit(Opcode::MARKE);
}

void
Assembler::oplogb(std::uint32_t code, unsigned r1, unsigned r2)
{
    checkReg(r1, "OPLOGB");
    checkReg(r2, "OPLOGB");
    auto &i = emit(Opcode::OPLOGB);
    i.imm = std::int64_t(code);
    i.r1 = std::uint8_t(r1);
    i.r2 = std::uint8_t(r2);
}

void
Assembler::oploge(unsigned r1)
{
    checkReg(r1, "OPLOGE");
    emit(Opcode::OPLOGE).r1 = std::uint8_t(r1);
}

void
Assembler::oplogv(unsigned base, std::int64_t disp)
{
    checkReg(base, "OPLOGV");
    auto &i = emit(Opcode::OPLOGV);
    i.base = std::uint8_t(base);
    i.disp = disp;
}

void
Assembler::delay(unsigned r1)
{
    checkReg(r1, "DELAY");
    emit(Opcode::DELAY).r1 = std::uint8_t(r1);
}

void
Assembler::nop()
{
    emit(Opcode::NOP);
}

void
Assembler::halt()
{
    emit(Opcode::HALT);
}

Program
Assembler::finish()
{
    if (finished_)
        ztx_panic("finish() called twice");
    finished_ = true;
    for (const Fixup &fix : fixups_) {
        const auto it = prog_.labels_.find(fix.label);
        if (it == prog_.labels_.end())
            ztx_fatal("undefined label '", fix.label, "'");
        prog_.slots_[fix.slot].inst.target = it->second;
    }
    return std::move(prog_);
}

} // namespace ztx::isa
