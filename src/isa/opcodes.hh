/**
 * @file
 * The miniature z-like instruction set zTX programs are written in.
 *
 * The set is a small but faithful slice of z/Architecture, extended
 * with the six Transactional Execution instructions plus PPA, and a
 * handful of explicitly-marked simulator pseudo-ops (RAND, MARKB,
 * MARKE, HALT) used by the workload harness. Instruction lengths are
 * 2/4/6 bytes as in z, which makes the constrained-transaction
 * "instruction text within 256 consecutive bytes" rule meaningful.
 */

#ifndef ZTX_ISA_OPCODES_HH
#define ZTX_ISA_OPCODES_HH

#include <cstdint>

namespace ztx::isa {

/** Every opcode the interpreter understands. */
enum class Opcode : std::uint8_t
{
    // Register-register and register-immediate arithmetic.
    LHI,   ///< r1 = imm (sign-extended halfword immediate)
    LR,    ///< r1 = r2
    LTR,   ///< r1 = r2, set CC
    LA,    ///< r1 = base + index + disp (address generation)
    AHI,   ///< r1 += imm, set CC
    AGR,   ///< r1 += r2, set CC
    SGR,   ///< r1 -= r2, set CC
    MSGR,  ///< r1 *= r2
    XGR,   ///< r1 ^= r2, set CC
    NGR,   ///< r1 &= r2, set CC
    OGR,   ///< r1 |= r2, set CC
    SLLG,  ///< r1 = r2 << imm
    SRLG,  ///< r1 = r2 >> imm (logical)
    CGR,   ///< compare r1 : r2, set CC
    CGHI,  ///< compare r1 : imm, set CC
    DSGR,  ///< r1 /= r2 (fixed-point divide exception if r2 == 0)

    // Storage access (8-byte operands, big-endian).
    LG,    ///< r1 = mem8[addr]
    LT,    ///< r1 = mem8[addr], set CC (load and test)
    /**
     * r1 = mem8[addr], fetching the line with exclusive ownership
     * (store intent). Simulator stand-in for what the zEC12 gets
     * from OOO load/store miss-queue merging and compiler
     * prefetch-for-store: an update idiom's load does not linger on
     * a shared copy. See DESIGN.md substitutions.
     */
    LGFO,
    STG,   ///< mem8[addr] = r1
    CS,    ///< compare and swap: mem8[addr]==r1 ? mem=r3,CC0 : r1=mem,CC1
    NTSTG, ///< non-transactional store of r1 (TX facility)

    // Branches (relative, resolved by the assembler).
    BRC,   ///< branch to target if mask selects current CC
    J,     ///< unconditional branch
    BRCT,  ///< r1 -= 1; branch if r1 != 0
    CIJ,   ///< compare r1 : imm and branch if mask selects result CC

    // Transactional-execution facility.
    TBEGIN,  ///< begin (outermost or nested) transaction
    TBEGINC, ///< begin constrained transaction
    TEND,    ///< end innermost transaction
    TABORT,  ///< abort with code = base + disp
    ETND,    ///< r1 = current transaction nesting depth
    PPA,     ///< perform processor assist (TX abort, r1 = abort count)

    // Register-set side doors and exception generators.
    ADB,   ///< fpr1 += fpr2 (binary FP add; modifies an FPR)
    LDGR,  ///< fpr1 = r2 (modifies an FPR)
    SAR,   ///< ar1 = r2 (modifies an AR)
    EAR,   ///< r1 = ar2
    AP,    ///< r1 += r2 decimal (stand-in for packed-decimal ops)
    LPSWE, ///< privileged control op (no-op outside TX; restricted in)
    INVALID, ///< undefined opcode -> operation exception

    // Simulator pseudo-ops (documented extensions, not z ops).
    STCK,  ///< r1 = global cycle counter (stand-in for STCKF)
    RAND,  ///< r1 = uniform random in [0, imm) from the CPU's RNG
    MARKB, ///< begin a measured region (workload harness)
    MARKE, ///< end a measured region
    /**
     * Operation-log invoke record (workload harness): notify the
     * host-side op recorder that an ADT operation with code `imm`
     * and arguments r1/r2 was invoked at the current global cycle.
     * Zero cycles; a NOP without a recorder attached.
     */
    OPLOGB,
    /**
     * Operation-log response record: the operation invoked by the
     * matching OPLOGB completed; r1 holds the observed result.
     */
    OPLOGE,
    /**
     * Operation-log version record. Inside a transaction: arm the
     * commit path to report the region's read/write line footprint
     * to the op recorder when the outermost TEND commits (versions
     * are assigned host-side). Outside: record a single write of
     * the lock line at base + disp — the lock-path stand-in for a
     * commit footprint, ordering the region in that line's version
     * chain. Zero cycles; a NOP without a recorder. Unlike
     * OPLOGB/OPLOGE it is allowed inside constrained transactions,
     * where the bracket markers cannot go.
     */
    OPLOGV,
    DELAY, ///< stall for min(r1, 4096) cycles (spin/backoff pause)
    NOP,   ///< no operation
    HALT,  ///< stop this CPU
};

/** Program-interruption filtering classes (paper §II.C). */
enum class ExceptionGroup : std::uint8_t
{
    None,       ///< instruction cannot raise a program exception
    Always,     ///< group 2: always interrupts (programming error)
    Access,     ///< group 3: storage access (filterable at PIFC >= 2)
    Arithmetic, ///< group 4: data/arithmetic (filterable at PIFC >= 1)
};

/** Static properties of one opcode. */
struct OpcodeInfo
{
    const char *name;
    std::uint8_t length; ///< encoded bytes: 2, 4, or 6

    bool isLoad : 1;
    bool isStore : 1;
    bool isBranch : 1;
    bool modifiesFpr : 1;
    bool modifiesAr : 1;
    /** Restricted inside any transaction (always aborts). */
    bool restrictedInTx : 1;
    /** Not in the constrained-transaction subset (paper §II.D). */
    bool restrictedInConstrained : 1;

    /** Worst-case exception class this opcode can raise. */
    ExceptionGroup exceptionGroup;
};

/** Properties of @p op. */
const OpcodeInfo &opcodeInfo(Opcode op);

/** Mnemonic of @p op. */
const char *opcodeName(Opcode op);

} // namespace ztx::isa

#endif // ZTX_ISA_OPCODES_HH
