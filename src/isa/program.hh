/**
 * @file
 * An assembled program: instructions located at byte-accurate
 * addresses, fetched by address by the CPU interpreter.
 */

#ifndef ZTX_ISA_PROGRAM_HH
#define ZTX_ISA_PROGRAM_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace ztx::isa {

/** Immutable instruction stream with address-based fetch. */
class Program
{
  public:
    /** An instruction placed at its assembled address. */
    struct Slot
    {
        Instruction inst;
        Addr addr;
        std::uint8_t length;
    };

    Program() = default;

    /**
     * Fetch the instruction at @p addr.
     * @return The slot, or nullptr when @p addr is not the address
     *         of any assembled instruction.
     */
    const Slot *fetch(Addr addr) const;

    /** Address of the first instruction. */
    Addr entry() const;

    /** Address of a named label (fatal if unknown). */
    Addr labelAddr(const std::string &name) const;

    /** Number of instructions. */
    std::size_t size() const { return slots_.size(); }

    /** All slots, in address order (for listings and tests). */
    const std::vector<Slot> &slots() const { return slots_; }

  private:
    friend class Assembler;

    std::vector<Slot> slots_;
    std::unordered_map<Addr, std::size_t> byAddr_;
    std::unordered_map<std::string, Addr> labels_;
};

} // namespace ztx::isa

#endif // ZTX_ISA_PROGRAM_HH
