/**
 * @file
 * Decoded instruction representation.
 *
 * Rather than modelling binary encodings, zTX keeps instructions in
 * decoded form; the Assembler assigns z-accurate byte lengths so that
 * instruction addresses (and therefore the constrained-transaction
 * 256-byte rule and forward-branch rule) behave like the real ISA.
 */

#ifndef ZTX_ISA_INSTRUCTION_HH
#define ZTX_ISA_INSTRUCTION_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/opcodes.hh"

namespace ztx::isa {

/** One decoded instruction; meaning of fields depends on opcode. */
struct Instruction
{
    Opcode op = Opcode::NOP;

    std::uint8_t r1 = 0; ///< first register operand
    std::uint8_t r2 = 0; ///< second register operand
    std::uint8_t r3 = 0; ///< third register operand (CS)

    std::int64_t imm = 0; ///< immediate operand

    /** Base register for address generation; 0 means "no base". */
    std::uint8_t base = 0;
    /** Index register for address generation; 0 means "no index". */
    std::uint8_t index = 0;
    std::int64_t disp = 0; ///< displacement

    /** Condition mask for BRC / relation mask for CIJ. */
    std::uint8_t mask = 0;

    /** Resolved branch target (byte address), set by the assembler. */
    Addr target = 0;

    /** @name TBEGIN/TBEGINC operand fields (paper figure 2) @{ */
    /** General-register save mask: bit i covers GR pair (2i, 2i+1);
     *  bit 7 (LSB) covers GRs 0-1, matching z left-to-right order. */
    std::uint8_t grsm = 0;
    /** AR-modification allowed (the 'A' control). */
    bool allowArMod = true;
    /** FPR-modification allowed (the 'F' control). */
    bool allowFprMod = true;
    /** Program-interruption filtering control, 0..2. */
    std::uint8_t pifc = 0;
    /** @} */
};

} // namespace ztx::isa

#endif // ZTX_ISA_INSTRUCTION_HH
