#include "opcodes.hh"

#include "common/log.hh"

namespace ztx::isa {

namespace {

// Shorthand for table readability.
constexpr ExceptionGroup none = ExceptionGroup::None;
constexpr ExceptionGroup always = ExceptionGroup::Always;
constexpr ExceptionGroup access = ExceptionGroup::Access;
constexpr ExceptionGroup arith = ExceptionGroup::Arithmetic;

/**
 * Static opcode property table, indexed by Opcode value. Flag order:
 * load, store, branch, modFpr, modAr, restrictedInTx,
 * restrictedInConstrained, exceptionGroup.
 */
// Flag columns: load store branch modFpr modAr restrTx restrConstr.
constexpr OpcodeInfo infoTable[] = {
    {"LHI",    4, 0, 0, 0, 0, 0, 0, 0, none},
    {"LR",     2, 0, 0, 0, 0, 0, 0, 0, none},
    {"LTR",    2, 0, 0, 0, 0, 0, 0, 0, none},
    {"LA",     4, 0, 0, 0, 0, 0, 0, 0, none},
    {"AHI",    4, 0, 0, 0, 0, 0, 0, 0, none},
    {"AGR",    2, 0, 0, 0, 0, 0, 0, 0, none},
    {"SGR",    2, 0, 0, 0, 0, 0, 0, 0, none},
    {"MSGR",   2, 0, 0, 0, 0, 0, 0, 0, none},
    {"XGR",    2, 0, 0, 0, 0, 0, 0, 0, none},
    {"NGR",    2, 0, 0, 0, 0, 0, 0, 0, none},
    {"OGR",    2, 0, 0, 0, 0, 0, 0, 0, none},
    {"SLLG",   6, 0, 0, 0, 0, 0, 0, 0, none},
    {"SRLG",   6, 0, 0, 0, 0, 0, 0, 0, none},
    {"CGR",    2, 0, 0, 0, 0, 0, 0, 0, none},
    {"CGHI",   4, 0, 0, 0, 0, 0, 0, 0, none},
    // Divide: complex instruction, excluded from constrained TX.
    {"DSGR",   4, 0, 0, 0, 0, 0, 0, 1, arith},

    {"LG",     6, 1, 0, 0, 0, 0, 0, 0, access},
    {"LT",     6, 1, 0, 0, 0, 0, 0, 0, access},
    {"LGFO",   6, 1, 0, 0, 0, 0, 0, 0, access},
    {"STG",    6, 0, 1, 0, 0, 0, 0, 0, access},
    // CS is allowed in constrained TX: the multi-octoword atomic
    // compare-and-swap is a headline constrained use case.
    {"CS",     6, 1, 1, 0, 0, 0, 0, 0, access},
    // NTSTG only has meaning inside a (non-constrained) transaction.
    {"NTSTG",  6, 0, 1, 0, 0, 0, 0, 1, access},

    {"BRC",    4, 0, 0, 1, 0, 0, 0, 0, none},
    {"J",      4, 0, 0, 1, 0, 0, 0, 0, none},
    {"BRCT",   4, 0, 0, 1, 0, 0, 0, 0, none},
    {"CIJ",    6, 0, 0, 1, 0, 0, 0, 0, none},

    // TBEGIN/TBEGINC decoded inside a constrained transaction are
    // restricted (paper §III.B); inside non-constrained TX they nest.
    {"TBEGIN", 6, 0, 0, 0, 0, 0, 0, 1, access},
    {"TBEGINC",6, 0, 0, 0, 0, 0, 0, 1, none},
    {"TEND",   4, 0, 0, 0, 0, 0, 0, 0, none},
    {"TABORT", 4, 0, 0, 0, 0, 0, 0, 1, none},
    {"ETND",   4, 0, 0, 0, 0, 0, 0, 1, none},
    {"PPA",    4, 0, 0, 0, 0, 0, 0, 1, none},

    {"ADB",    4, 0, 0, 0, 1, 0, 0, 1, arith},
    {"LDGR",   4, 0, 0, 0, 1, 0, 0, 1, none},
    {"SAR",    2, 0, 0, 0, 0, 1, 0, 1, none},
    {"EAR",    2, 0, 0, 0, 0, 0, 0, 0, none},
    {"AP",     4, 0, 0, 0, 0, 0, 0, 1, arith},
    // Privileged control op: always restricted inside transactions.
    {"LPSWE",  4, 0, 0, 0, 0, 0, 1, 1, none},
    {"INVALID",2, 0, 0, 0, 0, 0, 0, 1, always},

    {"STCK",   4, 0, 0, 0, 0, 0, 0, 1, none},
    {"RAND",   4, 0, 0, 0, 0, 0, 0, 1, none},
    {"MARKB",  2, 0, 0, 0, 0, 0, 0, 1, none},
    {"MARKE",  2, 0, 0, 0, 0, 0, 0, 1, none},
    {"OPLOGB", 6, 0, 0, 0, 0, 0, 0, 1, none},
    {"OPLOGE", 4, 0, 0, 0, 0, 0, 0, 1, none},
    // OPLOGV must stay legal in constrained TX: the queue workload
    // records version footprints inside its TBEGINC region.
    {"OPLOGV", 4, 0, 0, 0, 0, 0, 0, 0, none},
    {"DELAY",  4, 0, 0, 0, 0, 0, 0, 1, none},
    {"NOP",    2, 0, 0, 0, 0, 0, 0, 0, none},
    {"HALT",   2, 0, 0, 0, 0, 0, 1, 1, none},
};

constexpr std::size_t tableSize =
    sizeof(infoTable) / sizeof(infoTable[0]);

static_assert(tableSize == std::size_t(Opcode::HALT) + 1,
              "opcode info table out of sync with Opcode enum");

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    const auto idx = std::size_t(op);
    if (idx >= tableSize)
        ztx_panic("opcodeInfo for out-of-range opcode ", idx);
    return infoTable[idx];
}

const char *
opcodeName(Opcode op)
{
    return opcodeInfo(op).name;
}

} // namespace ztx::isa
