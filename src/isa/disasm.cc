#include "disasm.hh"

#include <sstream>

namespace ztx::isa {

namespace {

/** Format "D(B)" or "D(X,B)" storage operands. */
void
storageOperand(std::ostringstream &os, const Instruction &inst)
{
    os << inst.disp << '(';
    if (inst.index != 0)
        os << 'R' << unsigned(inst.index) << ',';
    os << 'R' << unsigned(inst.base) << ')';
}

} // namespace

std::string
disassemble(const Instruction &inst)
{
    const OpcodeInfo &info = opcodeInfo(inst.op);
    std::ostringstream os;
    os << info.name;

    const auto r = [&](unsigned reg) { os << 'R' << reg; };

    switch (inst.op) {
      case Opcode::LHI:
      case Opcode::AHI:
      case Opcode::CGHI:
        os << ' ';
        r(inst.r1);
        os << ',' << inst.imm;
        break;
      case Opcode::RAND:
        os << ' ';
        r(inst.r1);
        os << ',' << inst.imm;
        break;
      case Opcode::LR:
      case Opcode::LTR:
      case Opcode::AGR:
      case Opcode::SGR:
      case Opcode::MSGR:
      case Opcode::XGR:
      case Opcode::NGR:
      case Opcode::OGR:
      case Opcode::CGR:
      case Opcode::DSGR:
      case Opcode::ADB:
      case Opcode::LDGR:
      case Opcode::SAR:
      case Opcode::EAR:
      case Opcode::AP:
        os << ' ';
        r(inst.r1);
        os << ',';
        r(inst.r2);
        break;
      case Opcode::SLLG:
      case Opcode::SRLG:
        os << ' ';
        r(inst.r1);
        os << ',';
        r(inst.r2);
        os << ',' << inst.imm;
        break;
      case Opcode::LA:
      case Opcode::LG:
      case Opcode::LT:
      case Opcode::LGFO:
      case Opcode::STG:
      case Opcode::NTSTG:
        os << ' ';
        r(inst.r1);
        os << ',';
        storageOperand(os, inst);
        break;
      case Opcode::CS:
        os << ' ';
        r(inst.r1);
        os << ',';
        r(inst.r3);
        os << ',';
        storageOperand(os, inst);
        break;
      case Opcode::J:
        os << " 0x" << std::hex << inst.target;
        break;
      case Opcode::BRC:
        os << ' ' << std::dec << unsigned(inst.mask) << ",0x"
           << std::hex << inst.target;
        break;
      case Opcode::BRCT:
        os << ' ';
        r(inst.r1);
        os << ",0x" << std::hex << inst.target;
        break;
      case Opcode::CIJ:
        os << ' ';
        r(inst.r1);
        os << ',' << inst.imm << ','
           << unsigned(inst.mask) << ",0x" << std::hex
           << inst.target;
        break;
      case Opcode::TBEGIN:
        os << ' ';
        storageOperand(os, inst);
        os << ",GRSM=0x" << std::hex << unsigned(inst.grsm)
           << std::dec << (inst.allowArMod ? ",A" : "")
           << (inst.allowFprMod ? ",F" : "") << ",PIFC="
           << unsigned(inst.pifc);
        break;
      case Opcode::TBEGINC:
        os << " GRSM=0x" << std::hex << unsigned(inst.grsm)
           << std::dec << (inst.allowArMod ? ",A" : "");
        break;
      case Opcode::TABORT:
        os << ' ';
        storageOperand(os, inst);
        break;
      case Opcode::ETND:
      case Opcode::PPA:
      case Opcode::STCK:
      case Opcode::DELAY:
      case Opcode::OPLOGE:
        os << ' ';
        r(inst.r1);
        break;
      case Opcode::OPLOGB:
        os << ' ' << inst.imm << ',';
        r(inst.r1);
        os << ',';
        r(inst.r2);
        break;
      case Opcode::OPLOGV:
        os << ' ';
        storageOperand(os, inst);
        break;
      case Opcode::TEND:
      case Opcode::LPSWE:
      case Opcode::INVALID:
      case Opcode::MARKB:
      case Opcode::MARKE:
      case Opcode::NOP:
      case Opcode::HALT:
        break;
    }
    return os.str();
}

std::string
listing(const Program &program)
{
    std::ostringstream os;
    for (const auto &slot : program.slots()) {
        os << "0x" << std::hex << slot.addr << std::dec << ":  "
           << disassemble(slot.inst) << '\n';
    }
    return os.str();
}

} // namespace ztx::isa
