/**
 * @file
 * Architected register state of one CPU: sixteen 64-bit General
 * Registers, sixteen Access Registers, sixteen Floating-Point
 * Registers, and the Program Status Word (instruction address plus
 * condition code).
 */

#ifndef ZTX_ISA_REGISTERS_HH
#define ZTX_ISA_REGISTERS_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace ztx::isa {

/** Number of registers in each architected file. */
inline constexpr unsigned numGrs = 16;
inline constexpr unsigned numArs = 16;
inline constexpr unsigned numFprs = 16;

/** Program Status Word (the subset the simulator models). */
struct Psw
{
    /** Instruction address of the next instruction. */
    Addr ia = 0;

    /** Condition code, 0..3. */
    std::uint8_t cc = 0;
};

/** Full architected register state. */
struct RegisterFile
{
    std::array<std::uint64_t, numGrs> gr{};
    std::array<std::uint32_t, numArs> ar{};
    std::array<std::uint64_t, numFprs> fpr{};
};

/**
 * @name Branch-condition masks
 * z/Architecture BRC semantics: the 4-bit mask selects condition
 * codes left to right, i.e. mask bit value 8 selects CC0, 4 selects
 * CC1, 2 selects CC2, and 1 selects CC3.
 * @{
 */
inline constexpr std::uint8_t maskCc0 = 8;
inline constexpr std::uint8_t maskCc1 = 4;
inline constexpr std::uint8_t maskCc2 = 2;
inline constexpr std::uint8_t maskCc3 = 1;

inline constexpr std::uint8_t maskAlways = 15;

/** Branch if zero / equal (CC0). */
inline constexpr std::uint8_t maskZero = maskCc0;
/** Branch if not zero / not equal (CC 1, 2, or 3). */
inline constexpr std::uint8_t maskNotZero = maskCc1 | maskCc2 | maskCc3;
/** Branch if low / minus (CC1). */
inline constexpr std::uint8_t maskLow = maskCc1;
/** Branch if high / plus (CC2). */
inline constexpr std::uint8_t maskHigh = maskCc2;
/** Branch if ones / overflow (CC3). */
inline constexpr std::uint8_t maskOnes = maskCc3;

/** True if @p mask selects condition code @p cc. */
constexpr bool
ccSelected(std::uint8_t mask, std::uint8_t cc)
{
    return mask & (std::uint8_t(8) >> cc);
}
/** @} */

/** Condition code after a signed arithmetic result (no overflow). */
constexpr std::uint8_t
ccOfSigned(std::int64_t value)
{
    if (value == 0)
        return 0;
    return value < 0 ? 1 : 2;
}

/** Condition code after a signed comparison a ? b. */
constexpr std::uint8_t
ccOfCompare(std::int64_t a, std::int64_t b)
{
    if (a == b)
        return 0;
    return a < b ? 1 : 2;
}

} // namespace ztx::isa

#endif // ZTX_ISA_REGISTERS_HH
