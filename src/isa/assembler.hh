/**
 * @file
 * Fluent assembler for the zTX mini-ISA.
 *
 * Emits decoded instructions at byte-accurate addresses, resolves
 * labels (including forward references) when finish() is called, and
 * provides z-style condition-code branch helpers (jz/jnz/jo/...).
 */

#ifndef ZTX_ISA_ASSEMBLER_HH
#define ZTX_ISA_ASSEMBLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/program.hh"
#include "isa/registers.hh"

namespace ztx::isa {

/** Builds a Program one instruction at a time. */
class Assembler
{
  public:
    /** @param base Byte address of the first instruction. */
    explicit Assembler(Addr base = 0x10'0000);

    /** Define a label at the current location. */
    void label(const std::string &name);

    /** Current emission address. */
    Addr here() const { return addr_; }

    /** @name Register / immediate arithmetic @{ */
    void lhi(unsigned r1, std::int64_t imm);
    void lr(unsigned r1, unsigned r2);
    void ltr(unsigned r1, unsigned r2);
    void la(unsigned r1, unsigned base, std::int64_t disp,
            unsigned index = 0);
    void ahi(unsigned r1, std::int64_t imm);
    void agr(unsigned r1, unsigned r2);
    void sgr(unsigned r1, unsigned r2);
    void msgr(unsigned r1, unsigned r2);
    void xgr(unsigned r1, unsigned r2);
    void ngr(unsigned r1, unsigned r2);
    void ogr(unsigned r1, unsigned r2);
    void sllg(unsigned r1, unsigned r2, unsigned shift);
    void srlg(unsigned r1, unsigned r2, unsigned shift);
    void cgr(unsigned r1, unsigned r2);
    void cghi(unsigned r1, std::int64_t imm);
    void dsgr(unsigned r1, unsigned r2);
    /** @} */

    /** @name Storage access @{ */
    void lg(unsigned r1, unsigned base, std::int64_t disp = 0,
            unsigned index = 0);
    void lt(unsigned r1, unsigned base, std::int64_t disp = 0,
            unsigned index = 0);
    /** Load with fetch-to-ownership (store intent). */
    void lgfo(unsigned r1, unsigned base, std::int64_t disp = 0,
              unsigned index = 0);
    void stg(unsigned r1, unsigned base, std::int64_t disp = 0,
             unsigned index = 0);
    void cs(unsigned r1, unsigned r3, unsigned base,
            std::int64_t disp = 0);
    void ntstg(unsigned r1, unsigned base, std::int64_t disp = 0,
               unsigned index = 0);
    /** @} */

    /** @name Branches @{ */
    void j(const std::string &target);
    void brc(std::uint8_t mask, const std::string &target);
    void jz(const std::string &target) { brc(maskZero, target); }
    void jnz(const std::string &target) { brc(maskNotZero, target); }
    void jl(const std::string &target) { brc(maskLow, target); }
    void jh(const std::string &target) { brc(maskHigh, target); }
    void jo(const std::string &target) { brc(maskOnes, target); }
    void brct(unsigned r1, const std::string &target);
    /** Compare r1 with imm; branch if mask selects the compare CC. */
    void cij(unsigned r1, std::int64_t imm, std::uint8_t mask,
             const std::string &target);
    /** CIJ not-low: branch if r1 >= imm (figure 1's CIJNL). */
    void
    cijnl(unsigned r1, std::int64_t imm, const std::string &target)
    {
        cij(r1, imm, maskCc0 | maskCc2, target);
    }
    /** @} */

    /** @name Transactional execution @{ */
    /** Optional TBEGIN operands beyond the GR save mask. */
    struct TBeginOpts
    {
        unsigned tdbBase = 0;      ///< base register for TDB; 0=none
        std::int64_t tdbDisp = 0;  ///< TDB displacement
        bool allowArMod = true;    ///< the 'A' control
        bool allowFprMod = true;   ///< the 'F' control
        std::uint8_t pifc = 0;     ///< filtering control, 0..2
    };
    void tbegin(std::uint8_t grsm, const TBeginOpts &opts);
    void tbegin(std::uint8_t grsm) { tbegin(grsm, TBeginOpts{}); }
    void tbeginc(std::uint8_t grsm, bool allow_ar_mod = true);
    void tend();
    void tabort(unsigned base, std::int64_t disp = 0);
    void etnd(unsigned r1);
    void ppa(unsigned r1);
    /** @} */

    /** @name Other register sets and exception generators @{ */
    void adb(unsigned f1, unsigned f2);
    void ldgr(unsigned f1, unsigned r2);
    void sar(unsigned a1, unsigned r2);
    void ear(unsigned r1, unsigned a2);
    void ap(unsigned r1, unsigned r2);
    void lpswe();
    void invalidOp();
    /** @} */

    /** @name Simulator pseudo-ops @{ */
    void stck(unsigned r1);
    void rnd(unsigned r1, std::uint64_t bound);
    void markb();
    void marke();
    /** Op-log invoke: operation @p code with arguments in r1/r2. */
    void oplogb(std::uint32_t code, unsigned r1, unsigned r2 = 0);
    /** Op-log response: observed result in r1. */
    void oploge(unsigned r1);
    /**
     * Op-log version record: in-TX, arm commit-footprint recording;
     * outside, record a write of the lock line at base + disp.
     */
    void oplogv(unsigned base, std::int64_t disp = 0);
    void delay(unsigned r1);
    void nop();
    void halt();
    /** @} */

    /**
     * Resolve labels and produce the program. The assembler is spent
     * afterwards.
     */
    Program finish();

  private:
    Instruction &emit(Opcode op);

    Program prog_;
    Addr addr_;
    struct Fixup
    {
        std::size_t slot;
        std::string label;
    };
    std::vector<Fixup> fixups_;
    bool finished_ = false;
};

} // namespace ztx::isa

#endif // ZTX_ISA_ASSEMBLER_HH
