/**
 * @file
 * Instruction disassembly for traces, listings, and debugging.
 */

#ifndef ZTX_ISA_DISASM_HH
#define ZTX_ISA_DISASM_HH

#include <string>

#include "isa/instruction.hh"
#include "isa/program.hh"

namespace ztx::isa {

/** Render @p inst as assembler-like text ("LHI R1,42"). */
std::string disassemble(const Instruction &inst);

/** Render a whole program as an address-annotated listing. */
std::string listing(const Program &program);

} // namespace ztx::isa

#endif // ZTX_ISA_DISASM_HH
