/**
 * @file
 * Transaction Diagnostic Control (paper §II.E.3): OS-enabled forced
 * random aborts to stress the abort and fallback paths of programs
 * under test.
 */

#ifndef ZTX_DEBUG_TDC_HH
#define ZTX_DEBUG_TDC_HH

#include <cstdint>

namespace ztx::debug {

/** TDC operating mode. */
enum class TdcMode : std::uint8_t
{
    Off = 0,
    /** Often, randomly abort transactions at a random point. */
    Random = 1,
    /**
     * Abort every transaction at a random point, at latest before
     * the outermost TEND. Constrained transactions are treated as
     * mode Random so they can still eventually succeed.
     */
    Always = 2,
};

/** Per-CPU diagnostic-abort configuration. */
struct TdcControl
{
    TdcMode mode = TdcMode::Off;

    /** Per-instruction abort probability in transactional mode. */
    double abortProbability = 0.05;
};

} // namespace ztx::debug

#endif // ZTX_DEBUG_TDC_HH
