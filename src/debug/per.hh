/**
 * @file
 * Program Event Recording controls (paper §II.E.2).
 *
 * PER triggers program interruptions on stores into a watched range
 * or instruction fetches from a watched range (watch-/break-points).
 * The TX facility adds two features: *event suppression* (no PER
 * events while in transactional mode, so a single-stepped transaction
 * behaves like one big instruction) and the *PER TEND event*, which
 * fires at successful completion of an outermost TEND so a debugger
 * can re-examine watch-points at transaction granularity.
 */

#ifndef ZTX_DEBUG_PER_HH
#define ZTX_DEBUG_PER_HH

#include "common/types.hh"

namespace ztx::debug {

/** One address range watch. */
struct PerRange
{
    bool enabled = false;
    Addr start = 0;
    Addr end = 0; ///< inclusive

    /** True if the watch covers any byte of [addr, addr+size). */
    bool
    matches(Addr addr, unsigned size = 1) const
    {
        return enabled && addr <= end && addr + size - 1 >= start;
    }
};

/** Per-CPU PER configuration (set by the "OS"/debugger). */
struct PerControls
{
    /** Watch stores into a storage range. */
    PerRange storeRange;

    /** Watch instruction fetches from a storage range. */
    PerRange ifetchRange;

    /** Watch successful branches *into* a storage range. */
    PerRange branchRange;

    /** TX extension (i): suppress PER events in transactional mode. */
    bool suppressInTx = false;

    /** TX extension (ii): event on outermost TEND completion. */
    bool tendEvent = false;

    /** True if any PER function is active. */
    bool
    anyEnabled() const
    {
        return storeRange.enabled || ifetchRange.enabled ||
               branchRange.enabled || tendEvent;
    }
};

} // namespace ztx::debug

#endif // ZTX_DEBUG_PER_HH
