/**
 * @file
 * Litmus witness renderer: turns the violating schedule an
 * enumeration captured (litmus/enumerate.hh) into a readable
 * trace — the visible steps in order, each with its disassembled
 * instruction and location annotation, followed by the OPLOG
 * history mapped back to DSL statements, and the outcome line that
 * failed the spec.
 *
 * Lives in debug/ next to the other post-mortem machinery but
 * compiles into ztx_litmus (like replay_dump compiles into
 * ztx_replay): ztx_debug sits below the core CPUs in the link DAG
 * and cannot depend on the litmus types.
 */

#ifndef ZTX_DEBUG_LITMUS_DUMP_HH
#define ZTX_DEBUG_LITMUS_DUMP_HH

#include <string>

#include "litmus/enumerate.hh"

namespace ztx::debug {

/**
 * Render @p witness of @p compiled: schedule index and outcome,
 * the visible-step trace (decision points marked `*`), and the
 * per-statement OPLOG bracket history. Never empty for a witness
 * with at least one step.
 */
std::string litmusWitnessDump(const litmus::Compiled &compiled,
                              const litmus::Witness &witness);

} // namespace ztx::debug

#endif // ZTX_DEBUG_LITMUS_DUMP_HH
