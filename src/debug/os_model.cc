#include "os_model.hh"

namespace ztx::debug {

OsAction
OsModel::programInterrupt(const InterruptRecord &record)
{
    records_.push_back(record);
    stats_.counter("interrupts").inc();
    stats_.counter(std::string("interrupt.") +
                   tx::interruptCodeName(record.code)).inc();

    switch (record.code) {
      case tx::InterruptCode::PageFault:
        // "Page in" the faulting page; the program retries (outside
        // TX) or re-runs its abort handler (inside TX).
        pageTable_.markPresent(record.addr);
        return OsAction::Resume;
      case tx::InterruptCode::Operation:
      case tx::InterruptCode::PrivilegedOperation:
      case tx::InterruptCode::ConstraintViolation:
        return OsAction::Terminate;
      case tx::InterruptCode::FixedPointDivide:
      case tx::InterruptCode::DecimalData:
        // Inside a transaction the program has an abort handler to
        // resume into; outside, an unhandled arithmetic exception
        // terminates the program (SIGFPE-style).
        return record.fromTx ? OsAction::Resume : OsAction::Terminate;
      default:
        return OsAction::Resume;
    }
}

OsAction
OsModel::machineCheck(const MachineCheckRecord &record)
{
    machineChecks_.push_back(record);
    stats_.counter("machine_checks").inc();
    if (record.scrubbed) {
        stats_.counter("machine_check.scrubbed").inc();
        return OsAction::Resume;
    }
    // The memory image itself is corrupt: no refresh source exists.
    // Kill the workload item that owned the data and restart it.
    stats_.counter("machine_check.restarts").inc();
    return OsAction::Restart;
}

std::size_t
OsModel::countOf(tx::InterruptCode code) const
{
    std::size_t n = 0;
    for (const auto &r : records_)
        n += r.code == code ? 1 : 0;
    return n;
}

} // namespace ztx::debug
