/**
 * @file
 * Litmus witness rendering (litmus_dump.hh).
 */

#include "debug/litmus_dump.hh"

#include <sstream>
#include <vector>

#include "isa/disasm.hh"
#include "litmus/compile.hh"
#include "litmus/dsl.hh"

namespace ztx::debug {

namespace {

/**
 * Per-thread top-level statement descriptions, indexed by the OPLOG
 * bracket code's statement field — mirrors the statement numbering
 * compileThread uses when emitting the brackets.
 */
std::vector<std::vector<std::string>>
statementTable(const litmus::Test &t)
{
    std::vector<std::vector<std::string>> table;
    for (const litmus::Thread &th : t.threads) {
        std::vector<std::string> stmts;
        for (std::size_t i = 0; i < th.ops.size(); ++i) {
            const litmus::Op &op = th.ops[i];
            if (op.kind == litmus::Op::Kind::TxBegin) {
                std::ostringstream os;
                os << (op.constrained ? "ctx {" : "tx {");
                std::size_t end = i + 1;
                for (; th.ops[end].kind != litmus::Op::Kind::TxEnd;
                     ++end)
                    os << ' ' << describeOp(t, th.ops[end]);
                os << " }";
                stmts.push_back(os.str());
                i = end;
            } else {
                stmts.push_back(describeOp(t, op));
            }
        }
        table.push_back(std::move(stmts));
    }
    return table;
}

} // namespace

std::string
litmusWitnessDump(const litmus::Compiled &compiled,
                  const litmus::Witness &witness)
{
    const litmus::Test &t = compiled.test;
    std::ostringstream os;
    os << "litmus " << t.name << ": violating schedule #"
       << witness.schedule << "\n";
    os << "outcome: " << witness.outcome << "\n";

    os << "\nschedule (" << witness.steps.size()
       << " visible steps; * = decision point):\n";
    for (std::size_t i = 0; i < witness.steps.size(); ++i) {
        const litmus::TraceStep &s = witness.steps[i];
        os << "  [" << i << "] "
           << (s.decision ? '*' : ' ') << ' ';
        if (s.cpu < t.threads.size())
            os << t.threads[s.cpu].name;
        else
            os << "cpu" << unsigned(s.cpu);
        os << "  ";
        const isa::Program::Slot *slot =
            s.cpu < compiled.programs.size()
                ? compiled.programs[s.cpu].fetch(s.ia)
                : nullptr;
        if (slot) {
            os << isa::disassemble(slot->inst);
            // Annotate a matching litmus location.
            const Addr line = lineAlign(Addr(slot->inst.disp));
            for (unsigned l = 0; l < compiled.locAddr.size(); ++l)
                if (compiled.locAddr[l] == line) {
                    os << "   ; " << t.locs[l];
                    break;
                }
        } else {
            os << "<ia 0x" << std::hex << s.ia << std::dec << ">";
        }
        os << "\n";
    }

    const auto stmts = statementTable(t);
    os << "\nop log (" << witness.events.size() << " events):\n";
    for (const litmus::OpEvent &e : witness.events) {
        os << "  ";
        os << (e.cpu < t.threads.size() ? t.threads[e.cpu].name
                                        : "?");
        if (e.invoke) {
            const unsigned ti = e.code >> 8;
            const unsigned si = e.code & 0xFF;
            os << "  begin  ";
            if (ti < stmts.size() && si < stmts[ti].size())
                os << stmts[ti][si];
            else
                os << "stmt#" << si;
        } else {
            os << "  end    -> " << e.value;
        }
        os << "\n";
    }
    return os.str();
}

} // namespace ztx::debug
