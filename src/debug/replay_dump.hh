/**
 * @file
 * Replay-from-log debug dump: renders the serial schedule the
 * order-inference oracle (inject/order_infer.hh) reconstructed from
 * the version log, so a linearizability violation can be read as a
 * straight-line trace instead of a raw concurrent history. The
 * workload runners and bench/chaos print this on any violation.
 *
 * Lives in debug/ next to the other post-mortem machinery (watchdog
 * diagnosis, TDC), but links against ztx_inject — hence its own
 * little library target (ztx_replay) below the umbrella, keeping
 * ztx_debug free of the inject dependency the core CPUs pull in.
 */

#ifndef ZTX_DEBUG_REPLAY_DUMP_HH
#define ZTX_DEBUG_REPLAY_DUMP_HH

#include <cstddef>
#include <string>
#include <vector>

#include "inject/lincheck.hh"
#include "inject/order_infer.hh"

namespace ztx::debug {

/**
 * The inferred serial schedule of @p report (indices into
 * @p history), one operation per line with its version records,
 * truncated to the last @p tail operations before the failure point
 * (the whole schedule when it is shorter). When the report fell
 * back to the DFS there is no schedule to print; the returned text
 * says so and shows the fallback reason instead.
 */
std::string replayScheduleDump(
    const std::vector<inject::LinOp> &history,
    const inject::OrderInferReport &report,
    std::size_t tail = 32);

} // namespace ztx::debug

#endif // ZTX_DEBUG_REPLAY_DUMP_HH
