/**
 * @file
 * Minimal paging model: a shared map of page-present bits used to
 * inject access exceptions (page faults) into the simulation. The
 * stub OS resolves a fault by marking the page present ("paging it
 * in"), which is all the transactional filtering semantics need.
 */

#ifndef ZTX_DEBUG_PAGE_TABLE_HH
#define ZTX_DEBUG_PAGE_TABLE_HH

#include <unordered_set>

#include "common/types.hh"

namespace ztx::debug {

/** Page size of the simulated address space. */
inline constexpr std::uint64_t pageSizeBytes = 4096;

/** Page-aligned base address containing @p addr. */
constexpr Addr
pageAlign(Addr addr)
{
    return addr & ~(pageSizeBytes - 1);
}

/** Pages are present unless explicitly marked absent. */
class PageTable
{
  public:
    PageTable() = default;

    /** Mark the page containing @p addr absent (faults on access). */
    void
    markAbsent(Addr addr)
    {
        absent_.insert(pageAlign(addr));
    }

    /** Mark the page containing @p addr present again. */
    void
    markPresent(Addr addr)
    {
        absent_.erase(pageAlign(addr));
    }

    /** True if accessing @p addr would page-fault. */
    bool
    faults(Addr addr) const
    {
        return !absent_.empty() && absent_.count(pageAlign(addr));
    }

    /** True if the @p size byte access at @p addr faults anywhere. */
    bool
    faultsRange(Addr addr, unsigned size) const
    {
        if (absent_.empty())
            return false;
        const Addr first = pageAlign(addr);
        const Addr last = pageAlign(addr + size - 1);
        for (Addr p = first; p <= last; p += pageSizeBytes)
            if (absent_.count(p))
                return true;
        return false;
    }

  private:
    std::unordered_set<Addr> absent_;
};

} // namespace ztx::debug

#endif // ZTX_DEBUG_PAGE_TABLE_HH
