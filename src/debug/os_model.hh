/**
 * @file
 * Stub operating system: receives (unfiltered) program interruptions,
 * resolves page faults by paging the target in, records everything
 * for tests, and applies the PER policies the paper assigns to the
 * OS (e.g. enabling event suppression so an aborted constrained
 * transaction can complete on retry).
 */

#ifndef ZTX_DEBUG_OS_MODEL_HH
#define ZTX_DEBUG_OS_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "debug/page_table.hh"
#include "tx/abort.hh"

namespace ztx::debug {

/** What the interrupted CPU should do after the OS returns. */
enum class OsAction : std::uint8_t
{
    /** Return to the program-old PSW (fault resolved / recorded). */
    Resume,
    /** Unrecoverable program error: stop the CPU. */
    Terminate,
    /**
     * Data lost beyond repair (memory-side poison): the OS kills the
     * affected workload item and restarts it from scratch rather
     * than stopping the CPU.
     */
    Restart,
};

/** One recorded program interruption, for test inspection. */
struct InterruptRecord
{
    CpuId cpu;
    tx::InterruptCode code;
    Addr addr;          ///< faulting address, if applicable
    bool fromTx;        ///< detected during transactional execution
    bool fromConstrained;
};

/** One recorded machine check (line poisoning), for test inspection. */
struct MachineCheckRecord
{
    CpuId cpu;
    Addr line;       ///< poisoned line that triggered the check
    bool scrubbed;   ///< a clean copy existed and was refreshed
    bool fromTx;     ///< the access that tripped it was transactional
};

/** The simulation's operating system model. */
class OsModel
{
  public:
    explicit OsModel(PageTable &page_table)
        : pageTable_(page_table), stats_("os")
    {
    }

    /**
     * Handle a program interruption.
     *
     * Page faults are resolved (the page is marked present) and the
     * program resumes. Operation exceptions and constraint
     * violations terminate the program, matching what a real OS
     * would do with an unhandled SIGILL-class condition. Everything
     * else is recorded and resumed.
     */
    OsAction programInterrupt(const InterruptRecord &record);

    /**
     * Handle a machine check raised by an access to a poisoned line
     * (RAS model, DESIGN.md §5c). The CPU has already attempted the
     * scrub (refresh-from-memory); @p record.scrubbed says whether a
     * clean copy existed. Scrubbed checks resume the program;
     * unscrubbed ones (memory-side poison) ask the CPU to kill and
     * restart the affected workload item.
     */
    OsAction machineCheck(const MachineCheckRecord &record);

    /**
     * Policy knob (paper §II.E.2): when a PER event aborts a
     * constrained transaction, the OS should enable PER event
     * suppression so the retry can complete. The CPU model consults
     * this flag when delivering such interrupts.
     */
    bool autoSuppressPerForConstrained = true;

    /** All interruptions seen, in order. */
    const std::vector<InterruptRecord> &records() const
    {
        return records_;
    }

    /** Count of interruptions with @p code. */
    std::size_t countOf(tx::InterruptCode code) const;

    /** All machine checks seen, in order. */
    const std::vector<MachineCheckRecord> &machineCheckRecords() const
    {
        return machineChecks_;
    }

    /** Stats group ("os.*"). */
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    PageTable &pageTable_;
    std::vector<InterruptRecord> records_;
    std::vector<MachineCheckRecord> machineChecks_;
    StatGroup stats_;
};

} // namespace ztx::debug

#endif // ZTX_DEBUG_OS_MODEL_HH
