#include "replay_dump.hh"

#include <sstream>

namespace ztx::debug {

namespace {

void
dumpOp(std::ostringstream &os, std::size_t pos,
       const inject::LinOp &op)
{
    os << "  #" << pos << " cpu" << op.cpu << '.' << op.seq << ' '
       << inject::linOpCodeName(op.code) << '(' << op.arg << ")->";
    if (op.pending)
        os << '?';
    else
        os << op.result;
    os << "  [" << op.invoke << ',';
    if (op.pending)
        os << "pending";
    else
        os << op.response;
    os << "]  ";
    for (const auto &a : op.accesses) {
        os << (a.write ? " W" : " R") << "0x" << std::hex
           << a.objid << std::dec << '@' << a.version;
    }
    os << '\n';
}

} // namespace

std::string
replayScheduleDump(const std::vector<inject::LinOp> &history,
                   const inject::OrderInferReport &report,
                   std::size_t tail)
{
    std::ostringstream os;
    if (report.order.empty()) {
        os << "replay dump: no inferred schedule ("
           << (report.fallbackReason.empty()
                   ? "order inference did not run"
                   : report.fallbackReason)
           << ")\n";
        return os.str();
    }

    // End the excerpt at the failing operation when the verdict
    // names one (window[0]), else at the end of the schedule.
    std::size_t end = report.order.size();
    if (!report.verdict.window.empty()) {
        const auto &fail = report.verdict.window.front();
        for (std::size_t i = 0; i < report.order.size(); ++i) {
            const auto &op = history[report.order[i]];
            if (op.cpu == fail.cpu && op.seq == fail.seq) {
                end = i + 1;
                break;
            }
        }
    }
    const std::size_t begin = end > tail ? end - tail : 0;

    os << "replay dump: inferred serial schedule, operations "
       << begin << ".." << end - 1 << " of " << report.order.size()
       << " (versions as R/W objid@version)\n";
    for (std::size_t i = begin; i < end; ++i)
        dumpOp(os, i, history[report.order[i]]);
    if (!report.verdict.reason.empty())
        os << "  => " << report.verdict.reason << '\n';
    return os.str();
}

} // namespace ztx::debug
