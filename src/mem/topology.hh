/**
 * @file
 * SMP topology: CPUs grouped into CP chips (sharing an L3), chips
 * grouped into MCMs (sharing an L4), MCMs connected coherently.
 */

#ifndef ZTX_MEM_TOPOLOGY_HH
#define ZTX_MEM_TOPOLOGY_HH

#include <cstdint>

#include "common/types.hh"

namespace ztx::mem {

/** Relative position of two CPUs in the cache hierarchy. */
enum class Distance : std::uint8_t
{
    SameCpu,  ///< identical CPU
    SameChip, ///< different cores under the same L3
    SameMcm,  ///< different chips under the same L4
    CrossMcm  ///< different MCMs
};

/**
 * Machine topology. Defaults model the system evaluated in the paper:
 * 6 cores per CP chip, 4 chips per MCM node (the paper reports the
 * tested MCM node holds 24 CPUs), 5 MCMs for up to 120 usable CPUs.
 */
class Topology
{
  public:
    Topology(unsigned cores_per_chip = 6, unsigned chips_per_mcm = 4,
             unsigned mcms = 5)
        : coresPerChip_(cores_per_chip), chipsPerMcm_(chips_per_mcm),
          mcms_(mcms)
    {
    }

    /** Total CPUs in the machine. */
    unsigned
    numCpus() const
    {
        return coresPerChip_ * chipsPerMcm_ * mcms_;
    }

    /** Number of CP chips (L3 domains). */
    unsigned numChips() const { return chipsPerMcm_ * mcms_; }

    /** Number of MCMs (L4 domains). */
    unsigned numMcms() const { return mcms_; }

    /** Cores sharing each L3. */
    unsigned coresPerChip() const { return coresPerChip_; }

    /** Chips sharing each L4. */
    unsigned chipsPerMcm() const { return chipsPerMcm_; }

    /** Chip (L3 domain) index of @p cpu. */
    unsigned chipOf(CpuId cpu) const { return cpu / coresPerChip_; }

    /** MCM (L4 domain) index of @p cpu. */
    unsigned
    mcmOf(CpuId cpu) const
    {
        return chipOf(cpu) / chipsPerMcm_;
    }

    /** Hierarchical distance between two CPUs. */
    Distance
    distance(CpuId a, CpuId b) const
    {
        if (a == b)
            return Distance::SameCpu;
        if (chipOf(a) == chipOf(b))
            return Distance::SameChip;
        if (mcmOf(a) == mcmOf(b))
            return Distance::SameMcm;
        return Distance::CrossMcm;
    }

  private:
    unsigned coresPerChip_;
    unsigned chipsPerMcm_;
    unsigned mcms_;
};

} // namespace ztx::mem

#endif // ZTX_MEM_TOPOLOGY_HH
