#include "hierarchy.hh"

#include <algorithm>
#include <bit>
#include <string>

#include "common/log.hh"
#include "common/prof.hh"
#include "common/trace.hh"

namespace ztx::mem {

const char *
xiKindName(XiKind kind)
{
    switch (kind) {
      case XiKind::ReadOnly: return "read-only";
      case XiKind::Demote: return "demote";
      case XiKind::Exclusive: return "exclusive";
      case XiKind::Lru: return "lru";
    }
    return "?";
}

Hierarchy::Hierarchy(const Topology &topo, const LatencyModel &lat,
                     const HierarchyGeometry &geo)
    : topo_(topo), lat_(lat), geo_(geo), stats_("hierarchy")
{
    const unsigned n = topo_.numCpus();
    if (n == 0)
        ztx_fatal("topology has zero CPUs");
    if (n > maxDirectoryCpus)
        ztx_fatal("topology has ", n, " CPUs; directory supports ",
                  maxDirectoryCpus);
    // Size the directory's per-line sharer words to this machine
    // instead of the compile-time worst case.
    dir_.configure(n);
    l1_.reserve(n);
    l2_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        l1_.emplace_back(geo_.l1, "l1." + std::to_string(i));
        l2_.emplace_back(geo_.l2, "l2." + std::to_string(i));
        lruExt_.emplace_back(geo_.l1.rows(), false);
    }
    lruExtTracked_.resize(n);
    l2Overflow_.resize(n);
    hot_.resize(n);
    l3MaskTracked_ = topo_.numChips() <= maxDirectoryChips;
    for (unsigned c = 0; c < topo_.numChips(); ++c)
        l3_.emplace_back(geo_.l3, "l3." + std::to_string(c));
    for (unsigned m = 0; m < topo_.numMcms(); ++m)
        l4_.emplace_back(geo_.l4, "l4." + std::to_string(m));
    clients_.resize(n, nullptr);
}

void
Hierarchy::setClient(CpuId cpu, CacheClient *client)
{
    clients_.at(cpu) = client;
}

CacheClient *
Hierarchy::client(CpuId cpu) const
{
    CacheClient *c = clients_.at(cpu);
    if (!c)
        ztx_panic("no CacheClient registered for cpu ", cpu);
    return c;
}

AccessResult
Hierarchy::localHit(CpuId cpu, Addr line)
{
    AccessResult res;
    const auto p1 = l1_[cpu].probeForInsert(line);
    if (p1.hit) {
        l1_[cpu].touchAt(p1);
        res.source = DataSource::L1;
        res.latency = lat_.l1Hit;
        ++hot_[cpu].l1Hit;
        return res;
    }
    // Inclusivity: a held line must be L2-resident — either in the
    // array or pending in the overflow buffer (a fast-path install
    // whose real insert happens at the barrier drain).
    const auto p2 = l2_[cpu].probeForInsert(line);
    if (p2.hit)
        l2_[cpu].touchAt(p2);
    else if (!inL2Overflow(cpu, line))
        ztx_panic("directory says cpu ", cpu, " holds line but L2 miss");
    insertL1At(cpu, line, p1);
    res.source = DataSource::L2;
    res.latency = lat_.l2Hit;
    ++hot_[cpu].l2Hit;
    return res;
}

DataSource
Hierarchy::findSource(CpuId cpu, Addr line) const
{
    if (l1_[cpu].contains(line))
        return DataSource::L1;
    if (l2_[cpu].contains(line))
        return DataSource::L2;

    // Nearest other holder supplies the line (cache intervention).
    const DirectoryEntry e = dir_.lookup(line);
    Distance best = Distance::CrossMcm;
    bool found = false;
    for (unsigned h = 0; h < topo_.numCpus(); ++h) {
        if (CpuId(h) == cpu)
            continue;
        if (e.owner == CpuId(h) || e.sharers[h]) {
            const Distance d = topo_.distance(cpu, h);
            if (!found || d < best)
                best = d;
            found = true;
        }
    }
    if (found) {
        switch (best) {
          case Distance::SameChip: return DataSource::L3;
          case Distance::SameMcm: return DataSource::L4;
          default: return DataSource::RemoteMcm;
        }
    }

    if (l3_[topo_.chipOf(cpu)].contains(line))
        return DataSource::L3;
    if (l4_[topo_.mcmOf(cpu)].contains(line))
        return DataSource::L4;
    for (unsigned m = 0; m < topo_.numMcms(); ++m)
        if (m != topo_.mcmOf(cpu) && l4_[m].contains(line))
            return DataSource::RemoteMcm;
    return DataSource::Memory;
}

XiResponse
Hierarchy::sendXi(XiKind kind, Addr line, CpuId target, CpuId requester)
{
    const std::uint8_t flags = l1_[target].flagsOf(line);
    const XiContext ctx{
        kind, line, requester,
        bool(flags & line_flag::txRead),
        bool(flags & line_flag::txDirty),
        lruExtensionHit(target, line),
        poisonedCached(line),
    };
    // XI counters live in the target's hot slot: in the fast path
    // the XI is delivered by the target's own shard, so the shared
    // StatGroup must not be touched from the parallel phase.
    switch (kind) {
      case XiKind::ReadOnly: ++hot_[target].xiReadOnly; break;
      case XiKind::Demote: ++hot_[target].xiDemote; break;
      case XiKind::Exclusive: ++hot_[target].xiExclusive; break;
      case XiKind::Lru: ++hot_[target].xiLru; break;
    }
    ztx_trace(trace::Category::Xi, xiKindName(kind), " XI to cpu",
              target, " line=0x", std::hex, line, std::dec,
              " from cpu", requester);
    const XiResponse resp = client(target)->incomingXi(ctx);
    if (resp == XiResponse::Reject) {
        if (kind != XiKind::Demote && kind != XiKind::Exclusive)
            ztx_panic("client rejected a non-rejectable ",
                      xiKindName(kind), " XI");
        ++hot_[target].xiRejected;
    }
    return resp;
}

Cycles
Hierarchy::probeDelay(XiKind kind, CpuId target, CpuId requester)
{
    if (!xiProbe_)
        return 0;
    const Cycles delay = xiProbe_->xiDelay(kind, target, requester);
    if (delay)
        ++hot_[target].xiDelayed;
    return delay;
}

void
Hierarchy::removeFromCpu(CpuId cpu, Addr line)
{
    l1_[cpu].invalidate(line);
    if (!l2_[cpu].invalidate(line)) {
        // The copy may still be pending in the overflow buffer (a
        // same-shard XI can strip a line the fast path installed
        // earlier in the same quantum); cancel the pending insert.
        OverflowBuf &ob = l2Overflow_[cpu];
        for (unsigned i = 0; i < ob.n; ++i) {
            if (ob.lines[i] == line) {
                for (unsigned j = i + 1; j < ob.n; ++j)
                    ob.lines[j - 1] = ob.lines[j];
                --ob.n;
                break;
            }
        }
    }
    dir_.remove(line, cpu);
}

AccessResult
Hierarchy::fetch(CpuId cpu, Addr line, bool exclusive,
                 bool local_only)
{
    ZTX_PROF_SCOPE("hier.fetch");
    if (lineOffset(line) != 0)
        ztx_panic("fetch of non-line-aligned address");

    const DirectoryEntry e = dir_.lookup(line);
    const bool holds_it =
        e.owner == cpu ||
        (cpu < maxDirectoryCpus && e.sharers[cpu]);
    if (holds_it && (!exclusive || e.owner == cpu)) {
        ++hot_[cpu].fetchTotal;
        return localHit(cpu, line);
    }

    bool shard_local = false;
    if (local_only) {
        if (!shardLocalEligible(cpu, line, e)) {
            // Parallel phase: this access needs the fabric or a CPU
            // outside the shard. Defer without charging anything —
            // the step will be re-run serially at the barrier.
            AccessResult res;
            res.deferred = true;
            return res;
        }
        // Shard-local fast path: the line and every holder live
        // inside this CPU's shard, so the full protocol below runs
        // in the parallel phase touching only shard-owned state.
        shard_local = true;
    }
    ++hot_[cpu].fetchTotal;

    AccessResult res;
    res.shardLocal = shard_local;
    res.source = shard_local ? shardLocalSource(cpu, line)
                             : findSource(cpu, line);

    Cycles xi_cost = 0;
    if (e.owner != invalidCpu && e.owner != cpu) {
        // Another CPU owns the line exclusively.
        const CpuId owner = e.owner;
        const XiKind kind =
            exclusive ? XiKind::Exclusive : XiKind::Demote;
        const Distance d = topo_.distance(cpu, owner);
        const Cycles delay = probeDelay(kind, owner, cpu);
        if (sendXi(kind, line, owner, cpu) == XiResponse::Reject) {
            res.rejected = true;
            res.rejecter = owner;
            res.latency = lat_.rejectRetry(d) + delay;
            return res;
        }
        xi_cost = std::max(xi_cost, lat_.intervention(d) + delay);
        if (exclusive)
            removeFromCpu(owner, line);
        else
            dir_.demoteOwner(line); // owner keeps a read-only copy
    } else if (exclusive) {
        // Invalidate all other read-only copies.
        for (const CpuId s : dir_.sharersExcept(line, cpu)) {
            const Cycles delay =
                probeDelay(XiKind::ReadOnly, s, cpu);
            sendXi(XiKind::ReadOnly, line, s, cpu);
            removeFromCpu(s, line);
            xi_cost = std::max(
                xi_cost,
                lat_.intervention(topo_.distance(cpu, s)) + delay);
        }
    }

    if (exclusive)
        dir_.setExclusive(line, cpu);
    else
        dir_.addSharer(line, cpu);

    if (shard_local)
        installShardLocal(cpu, line);
    else
        installLocal(cpu, line);
    if (poisonActive_)
        propagatePoisonOnFill(cpu, line, e, res.source);
    res.latency = std::max(lat_.fetch(res.source), xi_cost);
    ++hot_[cpu].fetchMiss;
    return res;
}

void
Hierarchy::propagatePoisonOnFill(CpuId cpu, Addr line,
                                 const DirectoryEntry &pre,
                                 DataSource source)
{
    const auto it = poison_.find(line);
    if (it == poison_.end())
        return;
    if (it->second & poisonCached) {
        // A corrupt cached image supplied the fill: holder
        // intervention carries poison over the XI data transfer,
        // a shared-cache hit carries it on the fetch itself.
        bool other_holder =
            pre.owner != invalidCpu && pre.owner != cpu;
        if (!other_holder) {
            auto sharers = pre.sharers;
            if (cpu < maxDirectoryCpus)
                sharers.reset(cpu);
            other_holder = sharers.any();
        }
        if (other_holder)
            ++hot_[cpu].poisonSpreadXi;
        else
            ++hot_[cpu].poisonSpreadFetch;
    } else if ((it->second & poisonMemorySide) &&
               source == DataSource::Memory) {
        // The corrupt home image enters the cache hierarchy.
        // Memory-sourced fills never take the shard-local fast path,
        // so this value-only mutation happens serially.
        it->second |= poisonCached;
        ++hot_[cpu].poisonSpreadFetch;
    } else {
        return; // memory-side only, fill came from a clean cache
    }
    l1_[cpu].setFlags(line, line_flag::poison);
}

bool
Hierarchy::inL2Overflow(CpuId cpu, Addr line) const
{
    const OverflowBuf &ob = l2Overflow_[cpu];
    for (unsigned i = 0; i < ob.n; ++i)
        if (ob.lines[i] == line)
            return true;
    return false;
}

void
Hierarchy::drainL2Overflow()
{
    for (unsigned cpu = 0; cpu < topo_.numCpus(); ++cpu) {
        OverflowBuf &ob = l2Overflow_[cpu];
        for (unsigned i = 0; i < ob.n; ++i) {
            const Addr line = ob.lines[i];
            const auto p = l2_[cpu].probeForInsert(line);
            if (p.hit) {
                l2_[cpu].touchAt(p);
                continue; // resident after all — nothing pending
            }
            const auto victim = l2_[cpu].insertAt(p, line);
            if (victim.valid)
                handleL2Evict(cpu, victim.line);
        }
        ob.n = 0;
    }
}

void
Hierarchy::setShardPartition(unsigned groups_per_chip,
                             unsigned active_cpus)
{
    // Repartitioning with pending overflow installs would orphan
    // them (the drain is what completes the directory bookkeeping).
    for (const OverflowBuf &ob : l2Overflow_)
        if (ob.n != 0)
            ztx_panic("shard repartition with a non-empty L2 "
                      "overflow buffer; drain first");
    if (groups_per_chip == 0) {
        shardGroupsPerChip_ = 0;
        shardGroupSize_ = 1;
        shardBits_.clear();
        return;
    }
    if (topo_.numChips() > maxDirectoryChips)
        ztx_fatal("shard-local fast path needs the L3-residency "
                  "mask, which tracks at most ", maxDirectoryChips,
                  " chips (topology has ", topo_.numChips(), ")");
    const unsigned cores = topo_.coresPerChip();
    shardGroupsPerChip_ = std::min(groups_per_chip, cores);
    shardGroupSize_ = (cores + shardGroupsPerChip_ - 1) /
                      shardGroupsPerChip_;
    shardBits_.assign(topo_.numChips() * shardGroupsPerChip_, {});
    for (CpuId cpu = 0; cpu < active_cpus; ++cpu)
        shardBits_[shardOf(cpu)].set(cpu);
}

bool
Hierarchy::shardLocalEligible(CpuId cpu, Addr line,
                              const DirectoryEntry &e) const
{
    if (shardGroupsPerChip_ == 0)
        return false; // no partition registered: always defer

    // Every current holder must be inside this CPU's shard: any XI
    // the protocol sends stays shard-owned. The IO agent is in no
    // shard, so agent-held lines always defer.
    const std::bitset<maxDirectoryCpus> &mine =
        shardBits_[shardOf(cpu)];
    if (e.owner != invalidCpu &&
        (e.owner >= maxDirectoryCpus || !mine[e.owner]))
        return false;
    if ((e.sharers & ~mine).any())
        return false;

    // The line must be L3-resident on this chip and nowhere else.
    // Whether another chip ever cached the line only changes at
    // serial points (L3 fills and evictions are serial-path-only),
    // so this test is phase-stable: it cannot observe another
    // shard's in-phase activity, which is what makes the
    // defer/resolve decision independent of host-thread count. It
    // also guarantees the fetch is a chip-local L3 hit — no L4 or
    // fabric traffic to model.
    const unsigned chip = topo_.chipOf(cpu);
    if (e.l3Mask != std::uint64_t(1) << chip)
        return false;
    if (shardGroupsPerChip_ == 1)
        return true; // whole-chip shard: chip-confined, resolve now

    // Sub-chip shards share their chip's L3 with sibling groups, so
    // two more conditions keep the fast path race-free: the line
    // must be homed to this group (per-line hashing gives exactly
    // one group in-phase mutation rights over the directory entry),
    // and the install must not evict in-phase — an L2 eviction
    // would strip a holder that a sibling group's eligibility check
    // may concurrently read. Evicting installs are admitted anyway
    // while the CPU's overflow buffer has room: the new line parks
    // there and the eviction happens serially at the barrier drain.
    // Without the buffer this rule disables the fast path outright
    // once the L2 warms up (every install evicts).
    if (homeGroupOf(line) != groupOf(cpu))
        return false;
    const auto p = l2_[cpu].probeForInsert(line);
    if (p.hit || !p.wouldEvict)
        return true;
    const OverflowBuf &ob = l2Overflow_[cpu];
    return ob.n < l2OverflowCapacity || inL2Overflow(cpu, line);
}

DataSource
Hierarchy::shardLocalSource(CpuId cpu, Addr line) const
{
    if (l1_[cpu].contains(line))
        return DataSource::L1;
    if (l2_[cpu].contains(line))
        return DataSource::L2;
    // Eligibility confined the line to this chip: any holder
    // intervention is a same-chip transfer and the no-holder case is
    // an own-chip L3 hit — both DataSource::L3, exactly what
    // findSource() would have derived.
    return DataSource::L3;
}

void
Hierarchy::installShardLocal(CpuId cpu, Addr line)
{
    // Eligibility guarantees the line is already L3-resident on this
    // chip and, by inclusivity, L4-resident — and a real on-chip L3
    // hit never leaves the chip, so L4 recency is deliberately not
    // refreshed. The L3 LRU update is safe only for whole-chip
    // shards (sole in-phase user of the chip's array); sub-chip
    // shards share it with sibling groups and skip the update, at
    // the cost of slightly staler L3 recency under fine sharding.
    const unsigned chip = topo_.chipOf(cpu);
    if (shardGroupsPerChip_ == 1) {
        if (!l3_[chip].touch(line))
            ztx_panic("shard-local install: line 0x", std::hex, line,
                      std::dec, " not L3-resident on chip ", chip,
                      " despite residency mask");
    } else if (!l3_[chip].contains(line)) {
        ztx_panic("shard-local install: line 0x", std::hex, line,
                  std::dec, " not L3-resident on chip ", chip,
                  " despite residency mask");
    }
    const auto p2 = l2_[cpu].probeForInsert(line);
    if (p2.hit) {
        l2_[cpu].touchAt(p2);
    } else if (inL2Overflow(cpu, line)) {
        // Already pending from earlier in this quantum (the
        // line was stripped from the L1 but not the buffer, or
        // re-fetched after a demote); nothing more to do.
    } else if (shardGroupsPerChip_ > 1 && p2.wouldEvict) {
        // Sub-chip shard, evicting install: park the line in
        // the overflow buffer — eligibility guaranteed a free
        // slot — and leave the eviction (directory removal,
        // inclusivity LRU-XI) to the serial barrier drain.
        OverflowBuf &ob = l2Overflow_[cpu];
        ob.lines[ob.n++] = line;
        ++hot_[cpu].l2OverflowAdmit;
    } else {
        // Whole-chip shards evict in-phase: the eviction (and
        // its LRU-XI) stays inside the shard and is handled
        // exactly as on the serial path.
        const auto victim = l2_[cpu].insertAt(p2, line);
        if (victim.valid)
            handleL2Evict(cpu, victim.line);
    }
    const auto p1 = l1_[cpu].probeForInsert(line);
    if (p1.hit)
        l1_[cpu].touchAt(p1);
    else
        insertL1At(cpu, line, p1);
}

void
Hierarchy::installLocal(CpuId cpu, Addr line)
{
    const unsigned chip = topo_.chipOf(cpu);
    const unsigned mcm = topo_.mcmOf(cpu);

    // Each level resolves presence, the free way, and the LRU victim
    // in one probe. Probes are taken level by level because an evict
    // handler may mutate the arrays below the level it ran for.
    const auto p4 = l4_[mcm].probeForInsert(line);
    if (p4.hit) {
        l4_[mcm].touchAt(p4);
    } else {
        const auto victim = l4_[mcm].insertAt(p4, line);
        if (victim.valid)
            handleL4Evict(mcm, victim.line);
    }
    const auto p3 = l3_[chip].probeForInsert(line);
    if (p3.hit) {
        l3_[chip].touchAt(p3);
    } else {
        const auto victim = l3_[chip].insertAt(p3, line);
        if (victim.valid)
            handleL3Evict(chip, victim.line);
        if (l3MaskTracked_)
            dir_.setL3Resident(line, chip);
    }
    const auto p2 = l2_[cpu].probeForInsert(line);
    if (p2.hit) {
        l2_[cpu].touchAt(p2);
    } else {
        const auto victim = l2_[cpu].insertAt(p2, line);
        if (victim.valid)
            handleL2Evict(cpu, victim.line);
    }
    const auto p1 = l1_[cpu].probeForInsert(line);
    if (p1.hit)
        l1_[cpu].touchAt(p1);
    else
        insertL1At(cpu, line, p1);
}

void
Hierarchy::insertL1(CpuId cpu, Addr line)
{
    insertL1At(cpu, line, l1_[cpu].probeForInsert(line));
}

void
Hierarchy::insertL1At(CpuId cpu, Addr line,
                      const CacheArray::Probe &probe)
{
    const auto victim = l1_[cpu].insertAt(probe, line);
    if (!victim.valid)
        return;
    // The displaced line stays L2-resident; only the transactional
    // read footprint needs bookkeeping (paper §III.C).
    if (victim.flags & line_flag::txRead) {
        if (lruExtEnabled_) {
            lruExt_[cpu][l1_[cpu].row(victim.line)] = true;
            ++hot_[cpu].lruExtSet;
            auto &tracked = lruExtTracked_[cpu];
            if (std::find(tracked.begin(), tracked.end(),
                          victim.line) == tracked.end())
                tracked.push_back(victim.line);
        } else {
            // Ablation: without the extension the footprint promise
            // is limited to the L1; losing a tx-read line aborts.
            const XiContext ctx{XiKind::Lru, victim.line, invalidCpu,
                                true,
                                bool(victim.flags & line_flag::txDirty),
                                false,
                                poisonedCached(victim.line)};
            client(cpu)->incomingXi(ctx);
        }
    }
    client(cpu)->l1Evicted(victim.line, victim.flags);
    ++hot_[cpu].l1Evict;
}

void
Hierarchy::handleL2Evict(CpuId cpu, Addr victim)
{
    const std::uint8_t flags = l1_[cpu].flagsOf(victim);
    const bool ext_hit = lruExtensionHit(cpu, victim);
    l1_[cpu].invalidate(victim);
    dir_.remove(victim, cpu);
    ++hot_[cpu].l2Evict;
    const bool victim_poisoned = poisonedCached(victim);
    if (victim_poisoned)
        ++hot_[cpu].poisonSpreadCastout; // castout moves the image
    // Inclusivity LRU-XI down to the core; the client aborts its
    // transaction when the line is (or may be, via the imprecise
    // extension row) part of the transactional footprint.
    const XiContext ctx{XiKind::Lru, victim, invalidCpu,
                        bool(flags & line_flag::txRead),
                        bool(flags & line_flag::txDirty), ext_hit,
                        victim_poisoned};
    client(cpu)->incomingXi(ctx);
}

void
Hierarchy::handleL3Evict(unsigned chip, Addr victim)
{
    stats_.counter("l3.evict").inc();
    if (l3MaskTracked_)
        dir_.clearL3Resident(victim, chip);
    const unsigned first = chip * topo_.coresPerChip();
    for (unsigned i = 0; i < topo_.coresPerChip(); ++i) {
        const CpuId cpu = first + i;
        if (l2_[cpu].contains(victim))
            handleL2Evict(cpu, victim);
    }
}

void
Hierarchy::handleL4Evict(unsigned mcm, Addr victim)
{
    stats_.counter("l4.evict").inc();
    const unsigned first_chip = mcm * topo_.chipsPerMcm();
    for (unsigned i = 0; i < topo_.chipsPerMcm(); ++i) {
        const unsigned chip = first_chip + i;
        if (l3_[chip].invalidate(victim))
            handleL3Evict(chip, victim);
    }
}

void
Hierarchy::markTxRead(CpuId cpu, Addr line)
{
    l1_[cpu].setFlags(lineAlign(line), line_flag::txRead);
}

void
Hierarchy::markTxDirty(CpuId cpu, Addr line)
{
    l1_[cpu].setFlags(lineAlign(line), line_flag::txDirty);
}

void
Hierarchy::clearTxMarks(CpuId cpu)
{
    l1_[cpu].clearFlagsAll(line_flag::txRead | line_flag::txDirty);
    std::fill(lruExt_[cpu].begin(), lruExt_[cpu].end(), false);
    lruExtTracked_[cpu].clear();
}

void
Hierarchy::killTxDirtyLines(CpuId cpu)
{
    std::vector<Addr> doomed;
    l1_[cpu].forEachValid([&](const CacheArray::Entry &e) {
        if (e.flags & line_flag::txDirty)
            doomed.push_back(e.line);
    });
    for (const Addr line : doomed)
        l1_[cpu].invalidate(line);
    hot_[cpu].txDirtyKilled += doomed.size();
}

bool
Hierarchy::txRead(CpuId cpu, Addr line) const
{
    return l1_[cpu].flagsOf(lineAlign(line)) & line_flag::txRead;
}

bool
Hierarchy::txDirty(CpuId cpu, Addr line) const
{
    return l1_[cpu].flagsOf(lineAlign(line)) & line_flag::txDirty;
}

bool
Hierarchy::lruExtensionHit(CpuId cpu, Addr line) const
{
    if (!lruExtEnabled_)
        return false;
    return lruExt_[cpu][l1_[cpu].row(lineAlign(line))];
}

bool
Hierarchy::lruExtensionAny(CpuId cpu) const
{
    for (const bool b : lruExt_[cpu])
        if (b)
            return true;
    return false;
}

void
Hierarchy::setLruExtensionEnabled(bool enabled)
{
    lruExtEnabled_ = enabled;
}

bool
Hierarchy::inL1(CpuId cpu, Addr line) const
{
    return l1_[cpu].contains(lineAlign(line));
}

bool
Hierarchy::inL2(CpuId cpu, Addr line) const
{
    return l2_[cpu].contains(lineAlign(line));
}

bool
Hierarchy::inL3(unsigned chip, Addr line) const
{
    return l3_[chip].contains(lineAlign(line));
}

bool
Hierarchy::inL4(unsigned mcm, Addr line) const
{
    return l4_[mcm].contains(lineAlign(line));
}

void
Hierarchy::flushCpuCaches(CpuId cpu)
{
    l1_[cpu].forEachValid([&](const CacheArray::Entry &e) {
        if (e.flags & (line_flag::txRead | line_flag::txDirty))
            ztx_panic("flushCpuCaches with transactional marks set");
    });
    std::vector<Addr> lines;
    l2_[cpu].forEachValid([&](const CacheArray::Entry &e) {
        lines.push_back(e.line);
    });
    for (const Addr line : lines) {
        l1_[cpu].invalidate(line);
        l2_[cpu].invalidate(line);
        dir_.remove(line, cpu);
    }
    // Pending overflow installs are flushed like resident lines.
    OverflowBuf &ob = l2Overflow_[cpu];
    for (unsigned i = 0; i < ob.n; ++i) {
        l1_[cpu].invalidate(ob.lines[i]);
        dir_.remove(ob.lines[i], cpu);
    }
    ob.n = 0;
    std::fill(lruExt_[cpu].begin(), lruExt_[cpu].end(), false);
    lruExtTracked_[cpu].clear();
}

std::vector<Addr>
Hierarchy::txFootprintLines(CpuId cpu) const
{
    std::vector<Addr> lines;
    l1_[cpu].forEachValid([&](const CacheArray::Entry &e) {
        if (e.flags &
            (line_flag::txRead | line_flag::txDirty))
            lines.push_back(e.line);
    });
    // Evicted-but-tracked lines: displaced from the L1 while an
    // LRU-extension row preserved their tx-read promise. A line may
    // have been refetched (and remarked) since its eviction; skip
    // those to avoid duplicates.
    for (const Addr line : lruExtTracked_[cpu])
        if (!(l1_[cpu].flagsOf(line) &
              (line_flag::txRead | line_flag::txDirty)))
            lines.push_back(line);
    return lines;
}

bool
Hierarchy::injectAdversarialXi(CpuId target, Addr line)
{
    const DirectoryEntry e = dir_.lookup(line);
    if (e.owner == target) {
        // Rejectable: an owner defending its footprint stiff-arms
        // exactly as it would against a real remote claimant.
        if (sendXi(XiKind::Exclusive, line, target, invalidCpu) ==
            XiResponse::Reject)
            return false;
    } else if (dir_.holds(target, line)) {
        // A shared copy cannot be defended (ReadOnly XIs are not
        // rejectable): a tx-read hit aborts the transaction.
        sendXi(XiKind::ReadOnly, line, target, invalidCpu);
    } else {
        return false; // raced away (e.g. aborted out) — no-op
    }
    removeFromCpu(target, line);
    return true;
}

void
Hierarchy::squeezeCapacity(CpuId cpu, unsigned l1_ways,
                           unsigned l2_ways)
{
    l1_[cpu].setEffectiveAssoc(l1_ways);
    l2_[cpu].setEffectiveAssoc(l2_ways);
}

void
Hierarchy::poisonLine(Addr line, bool memory_side)
{
    line = lineAlign(line);
    std::uint8_t &bits = poison_[line];
    bits |= poisonCached;
    if (memory_side)
        bits |= poisonMemorySide;
    poisonActive_ = true;
    stats_.counter("poison.injected").inc();
    // Best-effort flag mirror on the L1s of current holders, so
    // XiContext and introspection see the poison without a map walk.
    const DirectoryEntry e = dir_.lookup(line);
    for (unsigned h = 0; h < topo_.numCpus(); ++h)
        if ((e.owner == CpuId(h) ||
             (h < maxDirectoryCpus && e.sharers[h])) &&
            l1_[h].contains(line))
            l1_[h].setFlags(line, line_flag::poison);
}

bool
Hierarchy::scrubLine(Addr line)
{
    line = lineAlign(line);
    const auto it = poison_.find(line);
    if (it == poison_.end())
        return true; // raced away (already scrubbed) — vacuous
    if (it->second & poisonMemorySide)
        return false; // no clean copy exists anywhere
    poison_.erase(it);
    for (auto &l1 : l1_)
        l1.clearFlags(line, line_flag::poison);
    stats_.counter("poison.scrubbed").inc();
    poisonActive_ = !poison_.empty();
    return true;
}

void
Hierarchy::reloadLine(Addr line)
{
    line = lineAlign(line);
    if (poison_.erase(line)) {
        stats_.counter("poison.reloaded").inc();
        for (auto &l1 : l1_)
            l1.clearFlags(line, line_flag::poison);
    }
    poisonActive_ = !poison_.empty();
}

bool
Hierarchy::inTxFootprint(CpuId cpu, Addr line) const
{
    line = lineAlign(line);
    if (l1_[cpu].flagsOf(line) &
        (line_flag::txRead | line_flag::txDirty))
        return true;
    const auto &tracked = lruExtTracked_[cpu];
    return std::find(tracked.begin(), tracked.end(), line) !=
           tracked.end();
}

void
Hierarchy::foldHotCounters() const
{
    HotCounters sum;
    for (const HotCounters &h : hot_) {
        sum.fetchTotal += h.fetchTotal;
        sum.l1Hit += h.l1Hit;
        sum.l2Hit += h.l2Hit;
        sum.l1Evict += h.l1Evict;
        sum.lruExtSet += h.lruExtSet;
        sum.txDirtyKilled += h.txDirtyKilled;
        sum.fetchMiss += h.fetchMiss;
        sum.l2Evict += h.l2Evict;
        sum.l2OverflowAdmit += h.l2OverflowAdmit;
        sum.xiReadOnly += h.xiReadOnly;
        sum.xiDemote += h.xiDemote;
        sum.xiExclusive += h.xiExclusive;
        sum.xiLru += h.xiLru;
        sum.xiRejected += h.xiRejected;
        sum.xiDelayed += h.xiDelayed;
        sum.poisonSpreadFetch += h.poisonSpreadFetch;
        sum.poisonSpreadCastout += h.poisonSpreadCastout;
        sum.poisonSpreadXi += h.poisonSpreadXi;
    }
    // Touch every counter unconditionally so the set of registered
    // stats (and hence the JSON shape) never depends on which paths
    // happened to run.
    stats_.counter("fetch.total").inc(sum.fetchTotal -
                                      hotFolded_.fetchTotal);
    stats_.counter("fetch.l1_hit").inc(sum.l1Hit - hotFolded_.l1Hit);
    stats_.counter("fetch.l2_hit").inc(sum.l2Hit - hotFolded_.l2Hit);
    stats_.counter("fetch.miss").inc(sum.fetchMiss -
                                     hotFolded_.fetchMiss);
    stats_.counter("l1.evict").inc(sum.l1Evict - hotFolded_.l1Evict);
    stats_.counter("l1.lru_ext_set").inc(sum.lruExtSet -
                                         hotFolded_.lruExtSet);
    stats_.counter("l1.tx_dirty_killed")
        .inc(sum.txDirtyKilled - hotFolded_.txDirtyKilled);
    stats_.counter("l2.evict").inc(sum.l2Evict - hotFolded_.l2Evict);
    stats_.counter("l2.overflow_admit")
        .inc(sum.l2OverflowAdmit - hotFolded_.l2OverflowAdmit);
    stats_.counter("xi.read-only").inc(sum.xiReadOnly -
                                       hotFolded_.xiReadOnly);
    stats_.counter("xi.demote").inc(sum.xiDemote -
                                    hotFolded_.xiDemote);
    stats_.counter("xi.exclusive").inc(sum.xiExclusive -
                                       hotFolded_.xiExclusive);
    stats_.counter("xi.lru").inc(sum.xiLru - hotFolded_.xiLru);
    stats_.counter("xi.rejected").inc(sum.xiRejected -
                                      hotFolded_.xiRejected);
    stats_.counter("xi.delayed").inc(sum.xiDelayed -
                                     hotFolded_.xiDelayed);
    stats_.counter("poison.spread_fetch")
        .inc(sum.poisonSpreadFetch - hotFolded_.poisonSpreadFetch);
    stats_.counter("poison.spread_castout")
        .inc(sum.poisonSpreadCastout -
             hotFolded_.poisonSpreadCastout);
    stats_.counter("poison.spread_xi")
        .inc(sum.poisonSpreadXi - hotFolded_.poisonSpreadXi);
    hotFolded_ = sum;
}

std::string
Hierarchy::indexCheck() const
{
    const auto check = [](const CacheArray &arr) {
        return arr.indexCheck();
    };
    for (const CacheArray &arr : l1_)
        if (std::string err = check(arr); !err.empty())
            return err;
    for (const CacheArray &arr : l2_)
        if (std::string err = check(arr); !err.empty())
            return err;
    for (const CacheArray &arr : l3_)
        if (std::string err = check(arr); !err.empty())
            return err;
    for (const CacheArray &arr : l4_)
        if (std::string err = check(arr); !err.empty())
            return err;
    return "";
}

void
Hierarchy::checkInvariants() const
{
    for (unsigned cpu = 0; cpu < topo_.numCpus(); ++cpu) {
        // L1 subset of L2 (counting pending overflow installs);
        // L2 subset of L3 and L4; holders match the directory.
        l1_[cpu].forEachValid([&](const CacheArray::Entry &e) {
            if (!l2_[cpu].contains(e.line) &&
                !inL2Overflow(cpu, e.line))
                ztx_panic("L1 line not in L2 (cpu ", cpu, ")");
        });
        l2_[cpu].forEachValid([&](const CacheArray::Entry &e) {
            if (!l3_[topo_.chipOf(cpu)].contains(e.line))
                ztx_panic("L2 line not in L3 (cpu ", cpu, ")");
            if (!l4_[topo_.mcmOf(cpu)].contains(e.line))
                ztx_panic("L2 line not in L4 (cpu ", cpu, ")");
            if (!dir_.holds(cpu, e.line))
                ztx_panic("L2 line not in directory (cpu ", cpu, ")");
        });
        // Buffered lines obey the same inclusivity and directory
        // rules as array-resident ones (eligibility pinned them to
        // the own chip's L3 and the fetch registered the holder).
        const OverflowBuf &ob = l2Overflow_[cpu];
        for (unsigned i = 0; i < ob.n; ++i) {
            const Addr line = ob.lines[i];
            if (!l3_[topo_.chipOf(cpu)].contains(line))
                ztx_panic("overflow line not in L3 (cpu ", cpu, ")");
            if (!l4_[topo_.mcmOf(cpu)].contains(line))
                ztx_panic("overflow line not in L4 (cpu ", cpu, ")");
            if (!dir_.holds(cpu, line))
                ztx_panic("overflow line not in directory (cpu ",
                          cpu, ")");
        }
    }
    if (!l3MaskTracked_)
        return;
    // The L3-residency mask must agree with the actual arrays in
    // both directions: every resident line has its chip bit set, and
    // every set bit corresponds to a resident line. The fast path's
    // eligibility test stands on this.
    for (unsigned chip = 0; chip < topo_.numChips(); ++chip) {
        l3_[chip].forEachValid([&](const CacheArray::Entry &e) {
            if (!(dir_.lookup(e.line).l3Mask &
                  (std::uint64_t(1) << chip)))
                ztx_panic("L3-resident line missing its residency "
                          "mask bit (chip ", chip, ")");
        });
    }
    dir_.forEachEntry([&](Addr line, const DirectoryEntry &e) {
        for (std::uint64_t mask = e.l3Mask; mask;
             mask &= mask - 1) {
            const unsigned chip =
                unsigned(std::countr_zero(mask));
            if (!l3_[chip].contains(line))
                ztx_panic("residency mask bit set for a line not "
                          "in chip ", chip, "'s L3");
        }
    });
}

} // namespace ztx::mem
