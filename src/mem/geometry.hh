/**
 * @file
 * Cache geometry descriptors for the zEC12-like hierarchy.
 */

#ifndef ZTX_MEM_GEOMETRY_HH
#define ZTX_MEM_GEOMETRY_HH

#include <cstdint>

#include "common/types.hh"

namespace ztx::mem {

/**
 * Size/associativity of one cache level. The line size is global
 * (256 bytes on zEC12). Rows (congruence classes) are derived.
 */
struct CacheGeometry
{
    std::uint64_t sizeBytes;
    unsigned assoc;

    /** Number of congruence classes (sets). */
    std::uint64_t
    rows() const
    {
        return sizeBytes / (lineSizeBytes * assoc);
    }
};

/** Geometries of all four cache levels. */
struct HierarchyGeometry
{
    CacheGeometry l1{96 * 1024, 6};          ///< 96 KB 6-way -> 64 rows
    CacheGeometry l2{1024 * 1024, 8};        ///< 1 MB 8-way -> 512 rows
    CacheGeometry l3{48ULL << 20, 12};       ///< 48 MB shared per chip
    CacheGeometry l4{384ULL << 20, 24};      ///< 384 MB per MCM
};

} // namespace ztx::mem

#endif // ZTX_MEM_GEOMETRY_HH
