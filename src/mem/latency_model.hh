/**
 * @file
 * Cycle-cost model of the zEC12 memory hierarchy.
 *
 * The paper gives L1 use latency (4 cycles) and the L1-miss penalty to
 * the private L2 (+7 cycles). Latencies beyond the L2 are not stated
 * in the paper; the values below are calibration constants chosen to
 * preserve the latency *hierarchy* (L3 << remote chip << remote MCM
 * << memory) that drives the step functions in Figure 5. They are
 * justified and sensitivity-checked in EXPERIMENTS.md.
 */

#ifndef ZTX_MEM_LATENCY_MODEL_HH
#define ZTX_MEM_LATENCY_MODEL_HH

#include <algorithm>

#include "common/types.hh"
#include "mem/topology.hh"

namespace ztx::mem {

/** Where a fetch was ultimately satisfied from. */
enum class DataSource : std::uint8_t
{
    L1,        ///< local L1 hit
    L2,        ///< local private L2
    L3,        ///< on-chip shared L3
    L4,        ///< local-MCM L4 (includes other chips on the MCM)
    RemoteMcm, ///< another MCM's caches
    Memory     ///< main storage
};

/** Per-hop cycle costs; see file comment for calibration notes. */
struct LatencyModel
{
    Cycles l1Hit = 4;
    Cycles l2Hit = 11;
    Cycles l3Hit = 40;
    Cycles l4Hit = 120;
    Cycles remoteMcm = 250;
    Cycles memory = 350;

    /** Cost of a fetch satisfied at @p src. */
    Cycles
    fetch(DataSource src) const
    {
        switch (src) {
          case DataSource::L1: return l1Hit;
          case DataSource::L2: return l2Hit;
          case DataSource::L3: return l3Hit;
          case DataSource::L4: return l4Hit;
          case DataSource::RemoteMcm: return remoteMcm;
          case DataSource::Memory: return memory;
        }
        return memory;
    }

    /**
     * Cost of an intervention (XI round trip plus cache-to-cache
     * transfer) between CPUs at the given hierarchical distance.
     */
    Cycles
    intervention(Distance d) const
    {
        switch (d) {
          case Distance::SameCpu: return 0;
          case Distance::SameChip: return l3Hit;
          case Distance::SameMcm: return l4Hit;
          case Distance::CrossMcm: return remoteMcm;
        }
        return remoteMcm;
    }

    /**
     * Stall before a requester repeats an access whose XI was
     * rejected (stiff-armed) by the current owner.
     */
    Cycles
    rejectRetry(Distance d) const
    {
        return intervention(d) / 2 + 8;
    }

    /**
     * Minimum number of cycles any interaction that stays on a
     * CPU's own chip but leaves its private L1/L2 can take: the
     * cheapest of an L3 hit, a same-chip intervention, and a
     * same-chip reject-retry stall. This bounds how fast one
     * core group of a chip can affect another, and is therefore
     * the synchronization quantum of sub-chip shards
     * (MachineConfig::hostShardsPerChip > 1). Clamped to >= 1 so
     * degenerate configurations still make progress.
     */
    Cycles
    minIntraChipLatency() const
    {
        const Cycles m =
            std::min({l3Hit, intervention(Distance::SameChip),
                      rejectRetry(Distance::SameChip)});
        return std::max<Cycles>(m, 1);
    }

    /**
     * Minimum number of cycles any interaction that leaves a CPU's
     * own chip can take: the cheapest L4/remote/memory fetch,
     * cross-chip intervention, or cross-chip reject-retry stall.
     * Whole-chip shards resolve all intra-chip interactions inside
     * the parallel phase (the shard-local L3 fast path), so their
     * quantum only has to bound cross-chip visibility — this value.
     * Clamped to >= 1.
     */
    Cycles
    minCrossChipLatency() const
    {
        Cycles m = std::min({l4Hit, remoteMcm, memory});
        for (const Distance d :
             {Distance::SameMcm, Distance::CrossMcm}) {
            m = std::min(m, intervention(d));
            m = std::min(m, rejectRetry(d));
        }
        return std::max<Cycles>(m, 1);
    }

    /**
     * Minimum number of cycles any interaction that leaves a CPU's
     * private L1/L2 can take, at any hierarchical distance: the
     * smaller of the intra- and cross-chip bounds. The quantum of
     * sub-chip shards, whose cross-shard traffic includes same-chip
     * paths.
     */
    Cycles
    minFabricLatency() const
    {
        return std::min(minIntraChipLatency(),
                        minCrossChipLatency());
    }
};

} // namespace ztx::mem

#endif // ZTX_MEM_LATENCY_MODEL_HH
