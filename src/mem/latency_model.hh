/**
 * @file
 * Cycle-cost model of the zEC12 memory hierarchy.
 *
 * The paper gives L1 use latency (4 cycles) and the L1-miss penalty to
 * the private L2 (+7 cycles). Latencies beyond the L2 are not stated
 * in the paper; the values below are calibration constants chosen to
 * preserve the latency *hierarchy* (L3 << remote chip << remote MCM
 * << memory) that drives the step functions in Figure 5. They are
 * justified and sensitivity-checked in EXPERIMENTS.md.
 */

#ifndef ZTX_MEM_LATENCY_MODEL_HH
#define ZTX_MEM_LATENCY_MODEL_HH

#include <algorithm>

#include "common/types.hh"
#include "mem/topology.hh"

namespace ztx::mem {

/** Where a fetch was ultimately satisfied from. */
enum class DataSource : std::uint8_t
{
    L1,        ///< local L1 hit
    L2,        ///< local private L2
    L3,        ///< on-chip shared L3
    L4,        ///< local-MCM L4 (includes other chips on the MCM)
    RemoteMcm, ///< another MCM's caches
    Memory     ///< main storage
};

/** Per-hop cycle costs; see file comment for calibration notes. */
struct LatencyModel
{
    Cycles l1Hit = 4;
    Cycles l2Hit = 11;
    Cycles l3Hit = 40;
    Cycles l4Hit = 120;
    Cycles remoteMcm = 250;
    Cycles memory = 350;

    /** Cost of a fetch satisfied at @p src. */
    Cycles
    fetch(DataSource src) const
    {
        switch (src) {
          case DataSource::L1: return l1Hit;
          case DataSource::L2: return l2Hit;
          case DataSource::L3: return l3Hit;
          case DataSource::L4: return l4Hit;
          case DataSource::RemoteMcm: return remoteMcm;
          case DataSource::Memory: return memory;
        }
        return memory;
    }

    /**
     * Cost of an intervention (XI round trip plus cache-to-cache
     * transfer) between CPUs at the given hierarchical distance.
     */
    Cycles
    intervention(Distance d) const
    {
        switch (d) {
          case Distance::SameCpu: return 0;
          case Distance::SameChip: return l3Hit;
          case Distance::SameMcm: return l4Hit;
          case Distance::CrossMcm: return remoteMcm;
        }
        return remoteMcm;
    }

    /**
     * Stall before a requester repeats an access whose XI was
     * rejected (stiff-armed) by the current owner.
     */
    Cycles
    rejectRetry(Distance d) const
    {
        return intervention(d) / 2 + 8;
    }

    /**
     * Minimum number of cycles any interaction that leaves a CPU's
     * private L1/L2 can take: the cheapest fabric fetch (L3 and
     * beyond), intervention, or reject-retry stall across all
     * hierarchical distances. The sharded scheduler uses this as
     * its synchronization quantum: a cross-chip effect initiated in
     * one quantum cannot become visible to another chip before the
     * next barrier, so per-chip event queues may run a full quantum
     * without synchronizing. Clamped to >= 1 so degenerate
     * configurations still make progress.
     */
    Cycles
    minFabricLatency() const
    {
        Cycles m = std::min({l3Hit, l4Hit, remoteMcm, memory});
        for (const Distance d :
             {Distance::SameChip, Distance::SameMcm,
              Distance::CrossMcm}) {
            m = std::min(m, intervention(d));
            m = std::min(m, rejectRetry(d));
        }
        return std::max<Cycles>(m, 1);
    }
};

} // namespace ztx::mem

#endif // ZTX_MEM_LATENCY_MODEL_HH
