#include "directory.hh"

#include "common/log.hh"

namespace ztx::mem {

const DirectoryEntry CoherenceDirectory::idleEntry_{};

DirectoryEntry &
CoherenceDirectory::entry(Addr line)
{
    return entries_[line];
}

const DirectoryEntry &
CoherenceDirectory::lookup(Addr line) const
{
    const auto it = entries_.find(line);
    return it == entries_.end() ? idleEntry_ : it->second;
}

bool
CoherenceDirectory::holds(CpuId cpu, Addr line) const
{
    const DirectoryEntry &e = lookup(line);
    return e.owner == cpu || (cpu < maxDirectoryCpus && e.sharers[cpu]);
}

void
CoherenceDirectory::setExclusive(Addr line, CpuId cpu)
{
    if (cpu >= maxDirectoryCpus)
        ztx_panic("directory cannot track cpu ", cpu);
    DirectoryEntry &e = entry(line);
    e.owner = cpu;
    e.sharers.reset();
    e.sharers.set(cpu);
}

void
CoherenceDirectory::addSharer(Addr line, CpuId cpu)
{
    if (cpu >= maxDirectoryCpus)
        ztx_panic("directory cannot track cpu ", cpu);
    DirectoryEntry &e = entry(line);
    if (e.owner != invalidCpu && e.owner != cpu)
        ztx_panic("addSharer while another CPU owns the line");
    e.owner = invalidCpu;
    e.sharers.set(cpu);
}

void
CoherenceDirectory::demoteOwner(Addr line)
{
    DirectoryEntry &e = entry(line);
    if (e.owner == invalidCpu)
        ztx_panic("demoteOwner on unowned line");
    e.sharers.set(e.owner);
    e.owner = invalidCpu;
}

void
CoherenceDirectory::remove(Addr line, CpuId cpu)
{
    const auto it = entries_.find(line);
    if (it == entries_.end())
        return;
    DirectoryEntry &e = it->second;
    if (e.owner == cpu)
        e.owner = invalidCpu;
    if (cpu < maxDirectoryCpus)
        e.sharers.reset(cpu);
    if (e.idle())
        entries_.erase(it);
}

std::vector<CpuId>
CoherenceDirectory::sharersExcept(Addr line, CpuId except) const
{
    std::vector<CpuId> out;
    const DirectoryEntry &e = lookup(line);
    for (unsigned cpu = 0; cpu < maxDirectoryCpus; ++cpu)
        if (e.sharers[cpu] && cpu != except && CpuId(cpu) != e.owner)
            out.push_back(cpu);
    return out;
}

std::size_t
CoherenceDirectory::trackedLines() const
{
    return entries_.size();
}

} // namespace ztx::mem
