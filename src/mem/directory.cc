#include "directory.hh"

#include <bit>

#include "common/log.hh"

namespace ztx::mem {

namespace {

constexpr auto relaxed = std::memory_order_relaxed;

} // namespace

CoherenceDirectory::Slot &
CoherenceDirectory::slot(Addr line)
{
    const auto it = slots_.find(line);
    if (it != slots_.end())
        return it->second;
    if (concurrent_)
        ztx_panic("directory entry creation during a parallel "
                  "phase (line 0x", std::hex, line, ")");
    return slots_[line];
}

const CoherenceDirectory::Slot *
CoherenceDirectory::findSlot(Addr line) const
{
    const auto it = slots_.find(line);
    return it == slots_.end() ? nullptr : &it->second;
}

DirectoryEntry
CoherenceDirectory::lookup(Addr line) const
{
    DirectoryEntry e;
    const Slot *s = findSlot(line);
    if (!s)
        return e;
    e.owner = s->owner.load(relaxed);
    for (unsigned w = 0; w < sharerWords; ++w) {
        std::uint64_t word = s->sharers[w].load(relaxed);
        while (word) {
            const unsigned bit =
                unsigned(std::countr_zero(word));
            e.sharers.set(w * 64 + bit);
            word &= word - 1;
        }
    }
    e.l3Mask = s->l3Mask.load(relaxed);
    return e;
}

bool
CoherenceDirectory::holds(CpuId cpu, Addr line) const
{
    const Slot *s = findSlot(line);
    if (!s)
        return false;
    if (s->owner.load(relaxed) == cpu)
        return true;
    if (cpu >= maxDirectoryCpus)
        return false;
    return s->sharers[cpu / 64].load(relaxed) &
           (std::uint64_t(1) << (cpu % 64));
}

void
CoherenceDirectory::setExclusive(Addr line, CpuId cpu)
{
    if (cpu >= maxDirectoryCpus)
        ztx_panic("directory cannot track cpu ", cpu);
    Slot &s = slot(line);
    s.owner.store(cpu, relaxed);
    for (unsigned w = 0; w < sharerWords; ++w)
        s.sharers[w].store(w == cpu / 64
                               ? std::uint64_t(1) << (cpu % 64)
                               : 0,
                           relaxed);
}

void
CoherenceDirectory::addSharer(Addr line, CpuId cpu)
{
    if (cpu >= maxDirectoryCpus)
        ztx_panic("directory cannot track cpu ", cpu);
    Slot &s = slot(line);
    const CpuId owner = s.owner.load(relaxed);
    if (owner != invalidCpu && owner != cpu)
        ztx_panic("addSharer while another CPU owns the line");
    s.owner.store(invalidCpu, relaxed);
    s.sharers[cpu / 64].fetch_or(std::uint64_t(1) << (cpu % 64),
                                 relaxed);
}

void
CoherenceDirectory::demoteOwner(Addr line)
{
    Slot &s = slot(line);
    const CpuId owner = s.owner.load(relaxed);
    if (owner == invalidCpu)
        ztx_panic("demoteOwner on unowned line");
    s.sharers[owner / 64].fetch_or(std::uint64_t(1)
                                       << (owner % 64),
                                   relaxed);
    s.owner.store(invalidCpu, relaxed);
}

void
CoherenceDirectory::remove(Addr line, CpuId cpu)
{
    const auto it = slots_.find(line);
    if (it == slots_.end())
        return;
    Slot &s = it->second;
    // The owner clear is only reached by the owner's own shard (a
    // line with an owner has exactly one holder), so the check-then-
    // store pair cannot race with a concurrent owner claim.
    if (s.owner.load(relaxed) == cpu)
        s.owner.store(invalidCpu, relaxed);
    if (cpu < maxDirectoryCpus)
        s.sharers[cpu / 64].fetch_and(
            ~(std::uint64_t(1) << (cpu % 64)), relaxed);
    // Idle entries are deliberately kept: the L3-residency mask
    // outlives the holders, and erasure would mutate the map's
    // structure under concurrent shard reads.
}

std::vector<CpuId>
CoherenceDirectory::sharersExcept(Addr line, CpuId except) const
{
    std::vector<CpuId> out;
    const DirectoryEntry e = lookup(line);
    for (unsigned cpu = 0; cpu < maxDirectoryCpus; ++cpu)
        if (e.sharers[cpu] && cpu != except && CpuId(cpu) != e.owner)
            out.push_back(cpu);
    return out;
}

std::size_t
CoherenceDirectory::trackedLines() const
{
    std::size_t n = 0;
    for (const auto &[line, s] : slots_) {
        if (s.owner.load(relaxed) != invalidCpu) {
            ++n;
            continue;
        }
        for (unsigned w = 0; w < sharerWords; ++w) {
            if (s.sharers[w].load(relaxed) != 0) {
                ++n;
                break;
            }
        }
    }
    return n;
}

void
CoherenceDirectory::setL3Resident(Addr line, unsigned chip)
{
    if (chip >= maxDirectoryChips)
        ztx_panic("directory cannot track chip ", chip);
    slot(line).l3Mask.fetch_or(std::uint64_t(1) << chip, relaxed);
}

void
CoherenceDirectory::clearL3Resident(Addr line, unsigned chip)
{
    if (chip >= maxDirectoryChips)
        ztx_panic("directory cannot track chip ", chip);
    const auto it = slots_.find(line);
    if (it != slots_.end())
        it->second.l3Mask.fetch_and(
            ~(std::uint64_t(1) << chip), relaxed);
}

} // namespace ztx::mem
