#include "directory.hh"

#include <algorithm>
#include <bit>

#include "common/log.hh"

namespace ztx::mem {

namespace {

constexpr auto relaxed = std::memory_order_relaxed;

} // namespace

void
CoherenceDirectory::configure(unsigned num_cpus)
{
    if (used_ != 0)
        ztx_panic("directory configure() after entries exist");
    if (num_cpus > maxDirectoryCpus)
        ztx_panic("directory cannot track ", num_cpus, " cpus");
    sharerWords_ = std::max(1u, (num_cpus + 63) / 64);
}

std::size_t
CoherenceDirectory::findIndex(Addr line) const
{
    if (capacity_ == 0)
        return npos;
    std::size_t i = probeStart(line);
    while (true) {
        const Addr k = keys_[i];
        if (k == line)
            return i;
        if (k == emptyKey)
            return npos;
        i = (i + 1) & mask_;
    }
}

std::size_t
CoherenceDirectory::insertKey(Addr line)
{
    std::size_t i = probeStart(line);
    while (keys_[i] != emptyKey)
        i = (i + 1) & mask_;
    keys_[i] = line;
    ++used_;
    return i;
}

void
CoherenceDirectory::rehash(std::size_t new_cap)
{
    const std::size_t old_cap = capacity_;
    std::vector<Addr> old_keys = std::move(keys_);
    std::vector<std::atomic<CpuId>> old_owner =
        std::move(owner_);
    std::vector<std::atomic<std::uint64_t>> old_sharers =
        std::move(sharers_);
    std::vector<std::atomic<std::uint64_t>> old_l3 =
        std::move(l3Mask_);

    capacity_ = new_cap;
    mask_ = new_cap - 1;
    used_ = 0;
    keys_.assign(new_cap, emptyKey);
    owner_ = std::vector<std::atomic<CpuId>>(new_cap);
    for (auto &o : owner_)
        o.store(invalidCpu, relaxed);
    sharers_ = std::vector<std::atomic<std::uint64_t>>(
        new_cap * sharerWords_);
    l3Mask_ = std::vector<std::atomic<std::uint64_t>>(new_cap);

    for (std::size_t i = 0; i < old_cap; ++i) {
        if (old_keys[i] == emptyKey)
            continue;
        const std::size_t j = insertKey(old_keys[i]);
        owner_[j].store(old_owner[i].load(relaxed), relaxed);
        for (unsigned w = 0; w < sharerWords_; ++w)
            sharers_[j * sharerWords_ + w].store(
                old_sharers[i * sharerWords_ + w].load(relaxed),
                relaxed);
        l3Mask_[j].store(old_l3[i].load(relaxed), relaxed);
    }
}

std::size_t
CoherenceDirectory::ensureIndex(Addr line)
{
    const std::size_t found = findIndex(line);
    if (found != npos)
        return found;
    if (concurrent_)
        ztx_panic("directory entry creation during a parallel "
                  "phase (line 0x", std::hex, line, ")");
    // Grow at 3/4 load so linear probe runs stay short. Rehashing
    // here is safe for the same reason creation is: we are at a
    // serial point, no shard is reading the table.
    if (capacity_ == 0)
        rehash(initialCapacity);
    else if ((used_ + 1) * 4 > capacity_ * 3)
        rehash(capacity_ * 2);
    return insertKey(line);
}

DirectoryEntry
CoherenceDirectory::lookup(Addr line) const
{
    DirectoryEntry e;
    const std::size_t i = findIndex(line);
    if (i == npos)
        return e;
    e.owner = owner_[i].load(relaxed);
    for (unsigned w = 0; w < sharerWords_; ++w) {
        std::uint64_t word =
            sharers_[i * sharerWords_ + w].load(relaxed);
        while (word) {
            const unsigned bit =
                unsigned(std::countr_zero(word));
            e.sharers.set(w * 64 + bit);
            word &= word - 1;
        }
    }
    e.l3Mask = l3Mask_[i].load(relaxed);
    return e;
}

bool
CoherenceDirectory::holds(CpuId cpu, Addr line) const
{
    const std::size_t i = findIndex(line);
    if (i == npos)
        return false;
    if (owner_[i].load(relaxed) == cpu)
        return true;
    if (cpu >= sharerWords_ * 64)
        return false;
    return sharers_[i * sharerWords_ + cpu / 64].load(relaxed) &
           (std::uint64_t(1) << (cpu % 64));
}

void
CoherenceDirectory::setExclusive(Addr line, CpuId cpu)
{
    if (cpu >= sharerWords_ * 64)
        ztx_panic("directory cannot track cpu ", cpu);
    const std::size_t i = ensureIndex(line);
    owner_[i].store(cpu, relaxed);
    for (unsigned w = 0; w < sharerWords_; ++w)
        sharers_[i * sharerWords_ + w].store(
            w == cpu / 64 ? std::uint64_t(1) << (cpu % 64) : 0,
            relaxed);
}

void
CoherenceDirectory::addSharer(Addr line, CpuId cpu)
{
    if (cpu >= sharerWords_ * 64)
        ztx_panic("directory cannot track cpu ", cpu);
    const std::size_t i = ensureIndex(line);
    const CpuId owner = owner_[i].load(relaxed);
    if (owner != invalidCpu && owner != cpu)
        ztx_panic("addSharer while another CPU owns the line");
    owner_[i].store(invalidCpu, relaxed);
    sharers_[i * sharerWords_ + cpu / 64].fetch_or(
        std::uint64_t(1) << (cpu % 64), relaxed);
}

void
CoherenceDirectory::demoteOwner(Addr line)
{
    const std::size_t i = ensureIndex(line);
    const CpuId owner = owner_[i].load(relaxed);
    if (owner == invalidCpu)
        ztx_panic("demoteOwner on unowned line");
    sharers_[i * sharerWords_ + owner / 64].fetch_or(
        std::uint64_t(1) << (owner % 64), relaxed);
    owner_[i].store(invalidCpu, relaxed);
}

void
CoherenceDirectory::remove(Addr line, CpuId cpu)
{
    const std::size_t i = findIndex(line);
    if (i == npos)
        return;
    // The owner clear is only reached by the owner's own shard (a
    // line with an owner has exactly one holder), so the check-then-
    // store pair cannot race with a concurrent owner claim.
    if (owner_[i].load(relaxed) == cpu)
        owner_[i].store(invalidCpu, relaxed);
    if (cpu < sharerWords_ * 64)
        sharers_[i * sharerWords_ + cpu / 64].fetch_and(
            ~(std::uint64_t(1) << (cpu % 64)), relaxed);
    // Idle slots are deliberately kept: the L3-residency mask
    // outlives the holders, and erasure would mutate the table's
    // structure under concurrent shard reads.
}

std::vector<CpuId>
CoherenceDirectory::sharersExcept(Addr line, CpuId except) const
{
    std::vector<CpuId> out;
    const std::size_t i = findIndex(line);
    if (i == npos)
        return out;
    const CpuId owner = owner_[i].load(relaxed);
    for (unsigned w = 0; w < sharerWords_; ++w) {
        std::uint64_t word =
            sharers_[i * sharerWords_ + w].load(relaxed);
        while (word) {
            const unsigned bit =
                unsigned(std::countr_zero(word));
            const CpuId cpu = CpuId(w * 64 + bit);
            if (cpu != except && cpu != owner)
                out.push_back(cpu);
            word &= word - 1;
        }
    }
    return out;
}

std::size_t
CoherenceDirectory::trackedLines() const
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < capacity_; ++i) {
        if (keys_[i] == emptyKey)
            continue;
        if (owner_[i].load(relaxed) != invalidCpu) {
            ++n;
            continue;
        }
        for (unsigned w = 0; w < sharerWords_; ++w) {
            if (sharers_[i * sharerWords_ + w].load(relaxed) !=
                0) {
                ++n;
                break;
            }
        }
    }
    return n;
}

void
CoherenceDirectory::setL3Resident(Addr line, unsigned chip)
{
    if (chip >= maxDirectoryChips)
        ztx_panic("directory cannot track chip ", chip);
    l3Mask_[ensureIndex(line)].fetch_or(std::uint64_t(1) << chip,
                                        relaxed);
}

void
CoherenceDirectory::clearL3Resident(Addr line, unsigned chip)
{
    if (chip >= maxDirectoryChips)
        ztx_panic("directory cannot track chip ", chip);
    const std::size_t i = findIndex(line);
    if (i != npos)
        l3Mask_[i].fetch_and(~(std::uint64_t(1) << chip),
                             relaxed);
}

} // namespace ztx::mem
