#include "main_memory.hh"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "common/log.hh"

namespace ztx::mem {

const MainMemory::Line *
MainMemory::findLine(Addr line) const
{
    std::shared_lock lock(mu_);
    const auto it = lines_.find(line);
    // Nodes are never erased, so the pointer outlives the lock.
    return it == lines_.end() ? nullptr : &it->second;
}

MainMemory::Line &
MainMemory::ensureLine(Addr line)
{
    {
        std::shared_lock lock(mu_);
        const auto it = lines_.find(line);
        if (it != lines_.end())
            return it->second;
    }
    std::unique_lock lock(mu_);
    auto [it, inserted] = lines_.try_emplace(line);
    if (inserted)
        it->second.fill(0);
    return it->second;
}

std::uint8_t
MainMemory::readByte(Addr addr) const
{
    const Line *line = findLine(lineAlign(addr));
    return line ? (*line)[lineOffset(addr)] : 0;
}

void
MainMemory::writeByte(Addr addr, std::uint8_t value)
{
    ensureLine(lineAlign(addr))[lineOffset(addr)] = value;
}

std::uint64_t
MainMemory::read(Addr addr, unsigned size) const
{
    if (size == 0 || size > 8)
        ztx_panic("MainMemory::read of unsupported size ", size);
    std::uint8_t buf[8];
    readBlock(addr, buf, size);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < size; ++i)
        v = (v << 8) | buf[i];
    return v;
}

void
MainMemory::write(Addr addr, std::uint64_t value, unsigned size)
{
    if (size == 0 || size > 8)
        ztx_panic("MainMemory::write of unsupported size ", size);
    std::uint8_t buf[8];
    for (unsigned i = 0; i < size; ++i)
        buf[i] = std::uint8_t(value >> (8 * (size - 1 - i)));
    writeBlock(addr, buf, size);
}

void
MainMemory::readBlock(Addr addr, std::uint8_t *out, std::size_t len) const
{
    while (len > 0) {
        const Addr base = lineAlign(addr);
        const std::size_t off = lineOffset(addr);
        const std::size_t chunk =
            std::min<std::size_t>(len, lineSizeBytes - off);
        if (const Line *line = findLine(base))
            std::memcpy(out, line->data() + off, chunk);
        else
            std::memset(out, 0, chunk);
        addr += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
MainMemory::writeBlock(Addr addr, const std::uint8_t *in, std::size_t len)
{
    while (len > 0) {
        const Addr base = lineAlign(addr);
        const std::size_t off = lineOffset(addr);
        const std::size_t chunk =
            std::min<std::size_t>(len, lineSizeBytes - off);
        std::memcpy(ensureLine(base).data() + off, in, chunk);
        addr += chunk;
        in += chunk;
        len -= chunk;
    }
}

std::size_t
MainMemory::linesAllocated() const
{
    std::shared_lock lock(mu_);
    return lines_.size();
}

} // namespace ztx::mem
