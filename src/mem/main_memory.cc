#include "main_memory.hh"

#include "common/log.hh"

namespace ztx::mem {

std::uint8_t
MainMemory::readByte(Addr addr) const
{
    const auto it = lines_.find(lineAlign(addr));
    if (it == lines_.end())
        return 0;
    return it->second[lineOffset(addr)];
}

void
MainMemory::writeByte(Addr addr, std::uint8_t value)
{
    auto [it, inserted] = lines_.try_emplace(lineAlign(addr));
    if (inserted)
        it->second.fill(0);
    it->second[lineOffset(addr)] = value;
}

std::uint64_t
MainMemory::read(Addr addr, unsigned size) const
{
    if (size == 0 || size > 8)
        ztx_panic("MainMemory::read of unsupported size ", size);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < size; ++i)
        v = (v << 8) | readByte(addr + i);
    return v;
}

void
MainMemory::write(Addr addr, std::uint64_t value, unsigned size)
{
    if (size == 0 || size > 8)
        ztx_panic("MainMemory::write of unsupported size ", size);
    for (unsigned i = 0; i < size; ++i) {
        const unsigned shift = 8 * (size - 1 - i);
        writeByte(addr + i, std::uint8_t(value >> shift));
    }
}

void
MainMemory::readBlock(Addr addr, std::uint8_t *out, std::size_t len) const
{
    for (std::size_t i = 0; i < len; ++i)
        out[i] = readByte(addr + i);
}

void
MainMemory::writeBlock(Addr addr, const std::uint8_t *in, std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i)
        writeByte(addr + i, in[i]);
}

} // namespace ztx::mem
