#include "main_memory.hh"

#include <algorithm>
#include <cstring>

#include "common/log.hh"

namespace ztx::mem {

namespace {

constexpr auto relaxed = std::memory_order_relaxed;
constexpr auto acquire = std::memory_order_acquire;
constexpr auto release = std::memory_order_release;

} // namespace

MainMemory::Table::Table(std::size_t cap)
    : mask(cap - 1), keys(cap), vals(cap)
{
    for (auto &k : keys)
        k.store(emptyKey, relaxed);
}

const MainMemory::Line *
MainMemory::findIn(const Shard &sh, Addr line) const
{
    const Table *t = sh.table.load(acquire);
    if (!t)
        return nullptr;
    std::size_t i = probeStart(line, t->mask);
    while (true) {
        const Addr k = t->keys[i].load(acquire);
        if (k == line)
            return t->vals[i].load(relaxed);
        if (k == emptyKey)
            return nullptr;
        i = (i + 1) & t->mask;
    }
}

const MainMemory::Line *
MainMemory::findLine(Addr line) const
{
    return findIn(shards_[shardOf(line)], line);
}

MainMemory::Table *
MainMemory::grow(Shard &sh, std::size_t cap)
{
    auto next = std::make_unique<Table>(cap);
    if (const Table *old = sh.table.load(relaxed)) {
        for (std::size_t i = 0; i <= old->mask; ++i) {
            const Addr k = old->keys[i].load(relaxed);
            if (k == emptyKey)
                continue;
            std::size_t j = probeStart(k, next->mask);
            while (next->keys[j].load(relaxed) != emptyKey)
                j = (j + 1) & next->mask;
            next->vals[j].store(old->vals[i].load(relaxed),
                                relaxed);
            next->keys[j].store(k, relaxed);
        }
    }
    Table *t = next.get();
    sh.generations.push_back(std::move(next));
    // Old generations stay alive for concurrent readers; the new
    // table is published with every migrated entry visible.
    sh.table.store(t, release);
    return t;
}

MainMemory::Line &
MainMemory::ensureLine(Addr line)
{
    Shard &sh = shards_[shardOf(line)];
    // Lock-free fast path: the common case is a line that exists.
    if (const Line *l = findIn(sh, line))
        return const_cast<Line &>(*l);

    std::lock_guard lock(sh.mu);
    Table *t = sh.table.load(relaxed);
    if (!t)
        t = grow(sh, initialCapacity);
    else if ((sh.used + 1) * 4 > (t->mask + 1) * 3)
        t = grow(sh, (t->mask + 1) * 2);

    // Re-probe under the lock: another writer may have inserted
    // the line between the fast path and here.
    std::size_t i = probeStart(line, t->mask);
    while (true) {
        const Addr k = t->keys[i].load(relaxed);
        if (k == line)
            return *t->vals[i].load(relaxed);
        if (k == emptyKey)
            break;
        i = (i + 1) & t->mask;
    }

    if (sh.chunkNext == chunkLines) {
        sh.chunks.push_back(
            std::make_unique<std::array<Line, chunkLines>>());
        sh.chunkNext = 0;
    }
    Line &l = (*sh.chunks.back())[sh.chunkNext++];
    l.fill(0);
    // Publish pointer before key: a reader that sees the key must
    // see the pointer (key release / key acquire pairing).
    t->vals[i].store(&l, relaxed);
    t->keys[i].store(line, release);
    ++sh.used;
    return l;
}

std::uint8_t
MainMemory::readByte(Addr addr) const
{
    const Line *line = findLine(lineAlign(addr));
    return line ? (*line)[lineOffset(addr)] : 0;
}

void
MainMemory::writeByte(Addr addr, std::uint8_t value)
{
    ensureLine(lineAlign(addr))[lineOffset(addr)] = value;
}

std::uint64_t
MainMemory::read(Addr addr, unsigned size) const
{
    if (size == 0 || size > 8)
        ztx_panic("MainMemory::read of unsupported size ", size);
    std::uint8_t buf[8];
    readBlock(addr, buf, size);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < size; ++i)
        v = (v << 8) | buf[i];
    return v;
}

void
MainMemory::write(Addr addr, std::uint64_t value, unsigned size)
{
    if (size == 0 || size > 8)
        ztx_panic("MainMemory::write of unsupported size ", size);
    std::uint8_t buf[8];
    for (unsigned i = 0; i < size; ++i)
        buf[i] = std::uint8_t(value >> (8 * (size - 1 - i)));
    writeBlock(addr, buf, size);
}

void
MainMemory::readBlock(Addr addr, std::uint8_t *out, std::size_t len) const
{
    while (len > 0) {
        const Addr base = lineAlign(addr);
        const std::size_t off = lineOffset(addr);
        const std::size_t chunk =
            std::min<std::size_t>(len, lineSizeBytes - off);
        if (const Line *line = findLine(base))
            std::memcpy(out, line->data() + off, chunk);
        else
            std::memset(out, 0, chunk);
        addr += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
MainMemory::writeBlock(Addr addr, const std::uint8_t *in, std::size_t len)
{
    while (len > 0) {
        const Addr base = lineAlign(addr);
        const std::size_t off = lineOffset(addr);
        const std::size_t chunk =
            std::min<std::size_t>(len, lineSizeBytes - off);
        std::memcpy(ensureLine(base).data() + off, in, chunk);
        addr += chunk;
        in += chunk;
        len -= chunk;
    }
}

std::size_t
MainMemory::linesAllocated() const
{
    std::size_t n = 0;
    for (Shard &sh : shards_) {
        std::lock_guard lock(sh.mu);
        n += sh.used;
    }
    return n;
}

} // namespace ztx::mem
