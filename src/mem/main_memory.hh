/**
 * @file
 * Functional backing store for the simulated 64-bit address space.
 *
 * zTX separates function from timing: MainMemory always holds the
 * architecturally committed data, while the cache arrays only track
 * presence/ownership for the timing and conflict model. Transactional
 * stores live in the per-CPU gathering store cache until commit and
 * are merged into loads there, so nothing speculative ever reaches
 * this object.
 *
 * Thread safety: the line map is guarded by a shared mutex so the
 * sharded scheduler's parallel phase may allocate lines from several
 * host threads. Line *contents* are intentionally unguarded — the
 * coherence model guarantees a byte has exactly one writer at a time
 * (exclusive ownership), and lines are never erased, so a Line
 * reference stays valid for the lifetime of the machine
 * (unordered_map node stability).
 */

#ifndef ZTX_MEM_MAIN_MEMORY_HH
#define ZTX_MEM_MAIN_MEMORY_HH

#include <array>
#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "common/types.hh"

namespace ztx::mem {

/** Sparse, line-granular byte store; unwritten bytes read as zero. */
class MainMemory
{
  public:
    MainMemory() = default;

    /** Read one byte. */
    std::uint8_t readByte(Addr addr) const;

    /** Write one byte. */
    void writeByte(Addr addr, std::uint8_t value);

    /**
     * Read an unsigned big-endian integer of @p size bytes
     * (1/2/4/8), matching z/Architecture byte order.
     */
    std::uint64_t read(Addr addr, unsigned size) const;

    /** Write an unsigned big-endian integer of @p size bytes. */
    void write(Addr addr, std::uint64_t value, unsigned size);

    /** Bulk copy out of memory. */
    void readBlock(Addr addr, std::uint8_t *out, std::size_t len) const;

    /** Bulk copy into memory. */
    void writeBlock(Addr addr, const std::uint8_t *in, std::size_t len);

    /** Number of distinct lines ever written. */
    std::size_t linesAllocated() const;

  private:
    using Line = std::array<std::uint8_t, lineSizeBytes>;

    /** Line lookup without allocation; nullptr when untouched. */
    const Line *findLine(Addr line) const;

    /** Line lookup, allocating a zero-filled line when absent. */
    Line &ensureLine(Addr line);

    mutable std::shared_mutex mu_;
    std::unordered_map<Addr, Line> lines_;
};

} // namespace ztx::mem

#endif // ZTX_MEM_MAIN_MEMORY_HH
