/**
 * @file
 * Functional backing store for the simulated 64-bit address space.
 *
 * zTX separates function from timing: MainMemory always holds the
 * architecturally committed data, while the cache arrays only track
 * presence/ownership for the timing and conflict model. Transactional
 * stores live in the per-CPU gathering store cache until commit and
 * are merged into loads there, so nothing speculative ever reaches
 * this object.
 *
 * Storage (perf): the line index is sharded by line number into
 * fixed, independently locked shards, each an open-addressed
 * power-of-two table of (atomic key, atomic Line pointer) pairs.
 * Lookups are lock-free: probe with acquire loads on the keys; a
 * published key orders the pointer store before it (release), and
 * slots are never erased, so a probe can never falsely miss a line
 * that was published before the probe began. Writers (line
 * allocation) take only their shard's mutex; growth builds a new
 * table, migrates the entries, and publishes it with a release
 * store, retiring the old table (not freeing it) so concurrent
 * readers keep a valid view. Line payloads are carved from chunked
 * shard-local storage, so a Line pointer is stable for the lifetime
 * of the machine.
 *
 * Line *contents* are intentionally unguarded — the coherence model
 * guarantees a byte has exactly one writer at a time (exclusive
 * ownership). A reader concurrent with growth may miss a line
 * published *after* its probe began; that is the same guarantee the
 * former shared-mutex map gave (reads serialized before the insert),
 * and the coherence model already forbids reading a line another CPU
 * is concurrently creating.
 */

#ifndef ZTX_MEM_MAIN_MEMORY_HH
#define ZTX_MEM_MAIN_MEMORY_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.hh"

namespace ztx::mem {

/** Sparse, line-granular byte store; unwritten bytes read as zero. */
class MainMemory
{
  public:
    MainMemory() = default;

    MainMemory(const MainMemory &) = delete;
    MainMemory &operator=(const MainMemory &) = delete;

    /** Read one byte. */
    std::uint8_t readByte(Addr addr) const;

    /** Write one byte. */
    void writeByte(Addr addr, std::uint8_t value);

    /**
     * Read an unsigned big-endian integer of @p size bytes
     * (1/2/4/8), matching z/Architecture byte order.
     */
    std::uint64_t read(Addr addr, unsigned size) const;

    /** Write an unsigned big-endian integer of @p size bytes. */
    void write(Addr addr, std::uint64_t value, unsigned size);

    /** Bulk copy out of memory. */
    void readBlock(Addr addr, std::uint8_t *out, std::size_t len) const;

    /** Bulk copy into memory. */
    void writeBlock(Addr addr, const std::uint8_t *in, std::size_t len);

    /** Number of distinct lines ever written. */
    std::size_t linesAllocated() const;

  private:
    using Line = std::array<std::uint8_t, lineSizeBytes>;

    /** Index shards (line-number low bits); a power of two. */
    static constexpr std::size_t numShards = 64;
    /** Lines per payload chunk (16 KB chunks). */
    static constexpr std::size_t chunkLines = 64;
    /** First table allocation per shard. */
    static constexpr std::size_t initialCapacity = 256;
    /**
     * Empty-slot sentinel. Real keys are line-aligned (low
     * lineSizeLog2 bits clear), so all-ones can never collide.
     */
    static constexpr Addr emptyKey = ~Addr(0);

    /** One open-addressed (key, Line*) table generation. */
    struct Table
    {
        explicit Table(std::size_t cap);
        std::size_t mask;
        std::vector<std::atomic<Addr>> keys;
        std::vector<std::atomic<Line *>> vals;
    };

    struct alignas(64) Shard
    {
        /** Current table; null until the first line lands. */
        std::atomic<Table *> table{nullptr};
        /** Writer lock: allocation and growth only. */
        std::mutex mu;
        std::size_t used = 0;
        /** Current + retired generations (readers keep views). */
        std::vector<std::unique_ptr<Table>> generations;
        /** Stable line payload storage. */
        std::vector<std::unique_ptr<std::array<Line, chunkLines>>>
            chunks;
        std::size_t chunkNext = chunkLines;
    };

    static std::size_t
    shardOf(Addr line)
    {
        return std::size_t(line >> lineSizeLog2) &
               (numShards - 1);
    }

    static std::size_t
    probeStart(Addr line, std::size_t mask)
    {
        const std::uint64_t h =
            (std::uint64_t(line) >> lineSizeLog2) *
            0x9e3779b97f4a7c15ULL;
        return std::size_t(h >> 32) & mask;
    }

    /** Lock-free probe of @p sh; nullptr when untouched. */
    const Line *findIn(const Shard &sh, Addr line) const;

    /** Line lookup without allocation; nullptr when untouched. */
    const Line *findLine(Addr line) const;

    /** Line lookup, allocating a zero-filled line when absent. */
    Line &ensureLine(Addr line);

    /** Grow @p sh to @p cap slots (writer lock held). */
    Table *grow(Shard &sh, std::size_t cap);

    mutable std::array<Shard, numShards> shards_;
};

} // namespace ztx::mem

#endif // ZTX_MEM_MAIN_MEMORY_HH
