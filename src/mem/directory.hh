/**
 * @file
 * Global coherence directory: which CPUs hold each line and in what
 * state (one exclusive owner, or a set of read-only sharers), plus a
 * per-line mask of the chips whose L3 the line is resident in.
 *
 * The real machine distributes this state across the inclusive L3/L4
 * directories; a single logical directory is an exact functional model
 * of "the SMP protocol knows who owns what", which is all the TM
 * mechanisms depend on. Timing still honors the hierarchy via the
 * latency model.
 *
 * Concurrency contract (sharded scheduler, DESIGN.md §5b): during a
 * parallel phase each shard mutates only entries whose holders are
 * confined to that shard, so per-entry writes never contend; the only
 * cross-shard touches are commutative single-bit clears (remove) and
 * relaxed snapshot reads (lookup). Entry storage is therefore atomic
 * words, lookup() returns a plain snapshot by value, and idle entries
 * are never erased — erasure would mutate the map's structure (and
 * drop the L3-residency mask) while other shards read it. New entries
 * may only be created at serial points; setConcurrentPhase(true)
 * turns a creating access into a panic to enforce this.
 */

#ifndef ZTX_MEM_DIRECTORY_HH
#define ZTX_MEM_DIRECTORY_HH

#include <array>
#include <atomic>
#include <bitset>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace ztx::mem {

/** Upper bound on CPUs a directory entry can track. */
inline constexpr unsigned maxDirectoryCpus = 256;

/** Upper bound on chips the L3-residency mask can track. */
inline constexpr unsigned maxDirectoryChips = 64;

/** Point-in-time coherence state of one line (a plain snapshot). */
struct DirectoryEntry
{
    /** Exclusive owner, or invalidCpu when held read-only/not held. */
    CpuId owner = invalidCpu;

    /** Read-only holders (meaningful when owner == invalidCpu). */
    std::bitset<maxDirectoryCpus> sharers;

    /** Bit @c c set: the line is resident in chip @c c's L3. */
    std::uint64_t l3Mask = 0;

    /** True if no CPU holds the line in any state. */
    bool
    idle() const
    {
        return owner == invalidCpu && sharers.none();
    }
};

/** Map from line address to global coherence state. */
class CoherenceDirectory
{
  public:
    CoherenceDirectory() = default;

    CoherenceDirectory(const CoherenceDirectory &) = delete;
    CoherenceDirectory &operator=(const CoherenceDirectory &) = delete;

    /** Snapshot of @p line's state (absent lines read as idle). */
    DirectoryEntry lookup(Addr line) const;

    /** True if @p cpu holds @p line in any state. */
    bool holds(CpuId cpu, Addr line) const;

    /** Record @p cpu as the sole exclusive owner. */
    void setExclusive(Addr line, CpuId cpu);

    /** Add @p cpu as a read-only sharer (owner must be invalid). */
    void addSharer(Addr line, CpuId cpu);

    /**
     * Demote the exclusive owner to a read-only sharer.
     * Line must currently be owned exclusively.
     */
    void demoteOwner(Addr line);

    /** Remove @p cpu from the holders of @p line (any state). */
    void remove(Addr line, CpuId cpu);

    /** Sharers of @p line other than @p except. */
    std::vector<CpuId> sharersExcept(Addr line, CpuId except) const;

    /** Number of lines some CPU currently holds (non-idle entries). */
    std::size_t trackedLines() const;

    /** @name L3-residency mask (maintained at serial points only) @{ */
    void setL3Resident(Addr line, unsigned chip);
    void clearL3Resident(Addr line, unsigned chip);
    /** @} */

    /**
     * Guard for the sharded scheduler's parallel phase: while set,
     * any operation that would have to create a new entry panics
     * (entry creation rehashes the map under concurrent readers).
     */
    void setConcurrentPhase(bool on) { concurrent_ = on; }

    /**
     * Invoke @p fn(Addr, const DirectoryEntry &) for every tracked
     * line, idle ones included (invariant checks; serial use only).
     */
    template <typename Fn>
    void
    forEachEntry(Fn &&fn) const
    {
        for (const auto &kv : slots_)
            fn(kv.first, lookup(kv.first));
    }

  private:
    static constexpr unsigned sharerWords = maxDirectoryCpus / 64;

    /** Atomic per-line storage; see file comment for the contract. */
    struct Slot
    {
        std::atomic<CpuId> owner{invalidCpu};
        std::array<std::atomic<std::uint64_t>, sharerWords>
            sharers{};
        std::atomic<std::uint64_t> l3Mask{0};
    };

    /** The slot of @p line, created on demand (serial points only). */
    Slot &slot(Addr line);

    const Slot *findSlot(Addr line) const;

    std::unordered_map<Addr, Slot> slots_;
    bool concurrent_ = false;
};

} // namespace ztx::mem

#endif // ZTX_MEM_DIRECTORY_HH
