/**
 * @file
 * Global coherence directory: which CPUs hold each line and in what
 * state (one exclusive owner, or a set of read-only sharers).
 *
 * The real machine distributes this state across the inclusive L3/L4
 * directories; a single logical directory is an exact functional model
 * of "the SMP protocol knows who owns what", which is all the TM
 * mechanisms depend on. Timing still honors the hierarchy via the
 * latency model.
 */

#ifndef ZTX_MEM_DIRECTORY_HH
#define ZTX_MEM_DIRECTORY_HH

#include <bitset>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace ztx::mem {

/** Upper bound on CPUs a directory entry can track. */
inline constexpr unsigned maxDirectoryCpus = 256;

/** Coherence state of one line across the machine. */
struct DirectoryEntry
{
    /** Exclusive owner, or invalidCpu when held read-only/not held. */
    CpuId owner = invalidCpu;

    /** Read-only holders (meaningful when owner == invalidCpu). */
    std::bitset<maxDirectoryCpus> sharers;

    /** True if no CPU holds the line in any state. */
    bool
    idle() const
    {
        return owner == invalidCpu && sharers.none();
    }
};

/** Map from line address to global coherence state. */
class CoherenceDirectory
{
  public:
    CoherenceDirectory() = default;

    /** State of @p line (absent lines read as idle). */
    const DirectoryEntry &lookup(Addr line) const;

    /** True if @p cpu holds @p line in any state. */
    bool holds(CpuId cpu, Addr line) const;

    /** Record @p cpu as the sole exclusive owner. */
    void setExclusive(Addr line, CpuId cpu);

    /** Add @p cpu as a read-only sharer (owner must be invalid). */
    void addSharer(Addr line, CpuId cpu);

    /**
     * Demote the exclusive owner to a read-only sharer.
     * Line must currently be owned exclusively.
     */
    void demoteOwner(Addr line);

    /** Remove @p cpu from the holders of @p line (any state). */
    void remove(Addr line, CpuId cpu);

    /** Sharers of @p line other than @p except. */
    std::vector<CpuId> sharersExcept(Addr line, CpuId except) const;

    /** Number of lines with a non-idle entry. */
    std::size_t trackedLines() const;

  private:
    DirectoryEntry &entry(Addr line);

    std::unordered_map<Addr, DirectoryEntry> entries_;
    static const DirectoryEntry idleEntry_;
};

} // namespace ztx::mem

#endif // ZTX_MEM_DIRECTORY_HH
