/**
 * @file
 * Global coherence directory: which CPUs hold each line and in what
 * state (one exclusive owner, or a set of read-only sharers), plus a
 * per-line mask of the chips whose L3 the line is resident in.
 *
 * The real machine distributes this state across the inclusive L3/L4
 * directories; a single logical directory is an exact functional model
 * of "the SMP protocol knows who owns what", which is all the TM
 * mechanisms depend on. Timing still honors the hierarchy via the
 * latency model.
 *
 * Storage (perf): an open-addressed, power-of-two flat table in
 * structure-of-arrays layout — a key array probed linearly, and
 * parallel atomic value arrays (owner / sharer words / L3 mask).
 * Compared to the former @c std::unordered_map<Addr, Slot>, a
 * directory access is one hash, a short linear key scan in a single
 * cache line or two, and indexed loads from the value arrays — no
 * node pointer chase, no bucket list. The sharer-word count per line
 * is sized at configure() time from the machine's CPU count (one
 * 64-bit word per 64 CPUs), so small topologies touch one word where
 * the compile-time worst case (maxDirectoryCpus) would touch 16.
 *
 * Concurrency contract (sharded scheduler, DESIGN.md §5b): during a
 * parallel phase each shard mutates only entries whose holders are
 * confined to that shard, so per-entry writes never contend; the only
 * cross-shard touches are commutative single-bit clears (remove) and
 * relaxed snapshot reads (lookup). Entry storage is therefore atomic
 * words, lookup() returns a plain snapshot by value, and slots are
 * never erased — erasure would mutate the table's structure (and
 * drop the L3-residency mask) while other shards read it. New
 * entries may only be created — and the table only rehashed — at
 * serial points; setConcurrentPhase(true) turns a creating access
 * into a panic to enforce this. The key array is plain (non-atomic)
 * because it is written only at serial points and read during
 * parallel phases; the scheduler's quantum barrier orders those
 * writes before any concurrent reader starts.
 */

#ifndef ZTX_MEM_DIRECTORY_HH
#define ZTX_MEM_DIRECTORY_HH

#include <atomic>
#include <bitset>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ztx::mem {

/** Upper bound on CPUs a directory entry can track. */
inline constexpr unsigned maxDirectoryCpus = 1024;

/** Upper bound on chips the L3-residency mask can track. */
inline constexpr unsigned maxDirectoryChips = 64;

/** Point-in-time coherence state of one line (a plain snapshot). */
struct DirectoryEntry
{
    /** Exclusive owner, or invalidCpu when held read-only/not held. */
    CpuId owner = invalidCpu;

    /** Read-only holders (meaningful when owner == invalidCpu). */
    std::bitset<maxDirectoryCpus> sharers;

    /** Bit @c c set: the line is resident in chip @c c's L3. */
    std::uint64_t l3Mask = 0;

    /** True if no CPU holds the line in any state. */
    bool
    idle() const
    {
        return owner == invalidCpu && sharers.none();
    }
};

/** Map from line address to global coherence state. */
class CoherenceDirectory
{
  public:
    CoherenceDirectory() = default;

    CoherenceDirectory(const CoherenceDirectory &) = delete;
    CoherenceDirectory &operator=(const CoherenceDirectory &) = delete;

    /**
     * Size the per-line sharer storage for @p num_cpus CPUs (rounded
     * up to a multiple of 64, clamped to at least 64). Must be
     * called before any entry exists; the hierarchy calls it once at
     * construction. Without it the directory tracks the full
     * maxDirectoryCpus worst case.
     */
    void configure(unsigned num_cpus);

    /** Snapshot of @p line's state (absent lines read as idle). */
    DirectoryEntry lookup(Addr line) const;

    /** True if @p cpu holds @p line in any state. */
    bool holds(CpuId cpu, Addr line) const;

    /** Record @p cpu as the sole exclusive owner. */
    void setExclusive(Addr line, CpuId cpu);

    /** Add @p cpu as a read-only sharer (owner must be invalid). */
    void addSharer(Addr line, CpuId cpu);

    /**
     * Demote the exclusive owner to a read-only sharer.
     * Line must currently be owned exclusively.
     */
    void demoteOwner(Addr line);

    /** Remove @p cpu from the holders of @p line (any state). */
    void remove(Addr line, CpuId cpu);

    /** Sharers of @p line other than @p except. */
    std::vector<CpuId> sharersExcept(Addr line, CpuId except) const;

    /** Number of lines some CPU currently holds (non-idle entries). */
    std::size_t trackedLines() const;

    /** @name L3-residency mask (maintained at serial points only) @{ */
    void setL3Resident(Addr line, unsigned chip);
    void clearL3Resident(Addr line, unsigned chip);
    /** @} */

    /**
     * Guard for the sharded scheduler's parallel phase: while set,
     * any operation that would have to create a new entry panics
     * (entry creation may rehash the table under concurrent
     * readers).
     */
    void setConcurrentPhase(bool on) { concurrent_ = on; }

    /**
     * Invoke @p fn(Addr, const DirectoryEntry &) for every tracked
     * line, idle ones included (invariant checks; serial use only).
     */
    template <typename Fn>
    void
    forEachEntry(Fn &&fn) const
    {
        for (std::size_t i = 0; i < capacity_; ++i)
            if (keys_[i] != emptyKey)
                fn(keys_[i], lookup(keys_[i]));
    }

    /** @name Flat-table introspection (tests, stats) @{ */
    /** Allocated slot count (a power of two, 0 before first use). */
    std::size_t capacity() const { return capacity_; }
    /** Occupied slot count (idle entries included — never erased). */
    std::size_t size() const { return used_; }
    /** Sharer words maintained per line (configure()-dependent). */
    unsigned sharerWords() const { return sharerWords_; }
    /** @} */

  private:
    /**
     * Empty-slot sentinel. Real keys are line-aligned (low
     * lineSizeLog2 bits clear), so the all-ones pattern can never
     * collide with one.
     */
    static constexpr Addr emptyKey = ~Addr(0);
    static constexpr std::size_t npos = ~std::size_t(0);
    /** First table allocation: 256 slots. */
    static constexpr std::size_t initialCapacity = 256;

    /** Slot index of @p line's probe start. */
    std::size_t
    probeStart(Addr line) const
    {
        // Fibonacci hashing on the line number; the low bits of a
        // line address are the offset (always zero here) and the
        // next bits are dense sequential indices, so multiplicative
        // mixing matters.
        const std::uint64_t h =
            (std::uint64_t(line) >> lineSizeLog2) *
            0x9e3779b97f4a7c15ULL;
        return std::size_t(h >> 32) & mask_;
    }

    /** Slot of @p line, or npos when absent (lock-free read). */
    std::size_t findIndex(Addr line) const;

    /**
     * Slot of @p line, created on demand. Creation (and any rehash
     * it triggers) is legal at serial points only.
     */
    std::size_t ensureIndex(Addr line);

    /** Grow to @p new_cap slots and migrate every entry. */
    void rehash(std::size_t new_cap);

    /** Raw insert during rehash/creation: no growth check. */
    std::size_t insertKey(Addr line);

    unsigned sharerWords_ = maxDirectoryCpus / 64;
    std::size_t capacity_ = 0;
    std::size_t mask_ = 0;
    std::size_t used_ = 0;
    std::vector<Addr> keys_;
    std::vector<std::atomic<CpuId>> owner_;
    /** Slot-major: slot i's words at [i*sharerWords_, ...). */
    std::vector<std::atomic<std::uint64_t>> sharers_;
    std::vector<std::atomic<std::uint64_t>> l3Mask_;
    bool concurrent_ = false;
};

} // namespace ztx::mem

#endif // ZTX_MEM_DIRECTORY_HH
